(** Extracting Omega from the simulation tree (Section 4, Appendix B.6/B.7):
    bivalent-vertex location, decision gadgets (forks and hooks), and the
    round-based emulation loop. *)

open Simulator
open Simulator.Types

type gadget = {
  g_kind : [ `Fork | `Hook | `Input_fork ];
  g_instance : int;
  g_pivot : int;
  g_zero : int;
  g_one : int;
  g_decider : proc_id;
}

val pp_gadget : Format.formatter -> gadget -> unit

val first_bivalent :
  'state Sim_tree.t -> max_instance:int -> (int * int * Sim_tree.tag array) option
(** The first k-bivalent vertex for the smallest k: (k, node id, k-tags). *)

val locate_bivalent_walk :
  'state Sim_tree.t -> max_instance:int -> (int * int * Sim_tree.tag array) option
(** The literal walk of the paper's Algorithm 3 (may return [None] when the
    bounded tree runs out; {!first_bivalent} is the budget-friendly scan the
    extraction uses). *)

val find_gadget :
  'state Sim_tree.t -> instance:int -> tags:Sim_tree.tag array -> root:int ->
  gadget option
(** The smallest decision gadget in [root]'s subtree w.r.t. the k-tags. *)

type budget = {
  b_max_depth : int;
  b_max_nodes : int;
  b_width : int;
  b_max_instance : int;
}

val default_budget : budget

type outcome = {
  o_leader : proc_id;
  o_gadget : gadget option;
  o_tree_size : int;
  o_bivalent : (int * int) option;
}

val extract :
  algo:'state Pure.algo -> dag:Dag.t -> budget:budget -> self:proc_id -> unit ->
  outcome
(** One extraction pass from process [self]'s point of view; falls back to
    [self] (the CHT initial output) while no gadget is found. *)

val emulate :
  algo:'state Pure.algo -> dag:Dag.t -> budget:budget -> rounds:int ->
  round_horizon:int -> unit -> proc_id list list
(** Per round, the extraction output at every process, over a sliding DAG
    window (the loop of Figure 6, with CHT's valency stabilization realized
    by the window passing all crashes and detector stabilizations). *)

val stabilization :
  pattern:Failures.pattern -> proc_id list list -> (int * proc_id) option
(** The first round from which all correct processes output the same
    correct process forever after (within the emulated rounds). *)
