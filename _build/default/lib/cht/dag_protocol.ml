(* The communication task of the CHT reduction (Appendix B.2, Figure 1),
   as a real protocol running on the simulation engine.

   Every process periodically queries its failure-detector module, appends
   the sample as a new vertex with edges from every vertex it currently
   knows, and broadcasts its whole DAG; on receiving a peer's DAG it takes
   the union.  This realizes, executably, the properties (1)-(4) of
   Appendix B.2, and the local DAGs G_p(t) of correct processes converge
   to a common ever-growing limit.

   Unlike [Dag.build] (the deterministic synthetic builder used where
   reproducibility of a specific DAG matters), the protocol produces
   per-process DAGs that genuinely differ transiently — which is exactly
   what the per-process extraction of Figure 6 consumes.

   Representation: vertices are globally identified by (proc, index); each
   process stores, per vertex, the set of vertices it had when the vertex
   was created (its predecessor set).  Union-merging keeps predecessor
   sets exact because a vertex's predecessors are fixed at creation. *)

open Simulator
open Simulator.Types

type vkey = proc_id * int  (* (creator, k-th query) *)

type vertex_info = {
  vi_value : Fd_value.t;
  vi_time : time;  (* creation time, for diagnostics and windowing *)
  vi_preds : vkey list;
}

type graph = (vkey * vertex_info) list  (* wire format: association list *)

type Msg.payload += Dag_gossip of graph

module Vmap = Map.Make (struct
    type t = vkey
    let compare = compare
  end)

type t = {
  ctx : Engine.ctx;
  sample : unit -> Fd_value.t;
  mutable vertices : vertex_info Vmap.t;
  mutable next_index : int;
  mutable merges : int;
}

let create (ctx : Engine.ctx) ~sample =
  let t = { ctx; sample; vertices = Vmap.empty; next_index = 1; merges = 0 } in
  let on_timer () =
    (* Query the detector, add the vertex with edges from everything known,
       broadcast the whole DAG. *)
    let value = t.sample () in
    let key = (ctx.Engine.self, t.next_index) in
    t.next_index <- t.next_index + 1;
    let preds = List.map fst (Vmap.bindings t.vertices) in
    t.vertices <-
      Vmap.add key { vi_value = value; vi_time = ctx.Engine.now (); vi_preds = preds }
        t.vertices;
    ctx.Engine.broadcast (Dag_gossip (Vmap.bindings t.vertices))
  in
  let on_message ~src:_ payload =
    match payload with
    | Dag_gossip graph ->
      t.merges <- t.merges + 1;
      List.iter
        (fun (key, info) ->
           if not (Vmap.mem key t.vertices) then
             t.vertices <- Vmap.add key info t.vertices)
        graph
    | _ -> ()
  in
  (t, { Engine.on_message; on_timer; on_input = (fun _ -> ()) })

let size t = Vmap.cardinal t.vertices
let merges t = t.merges

let mem t key = Vmap.mem key t.vertices

(* Direct + derived reachability: u -> v iff u is in v's predecessor set,
   or they share a creator with u earlier (property 2), or transitively.
   Predecessor sets are transitively closed by construction (a vertex's
   preds are ALL vertices its creator knew, and the creator knew the preds
   of those too), so the direct check suffices for same-knowledge edges;
   the same-creator rule is folded in explicitly. *)
let has_edge t u v =
  match Vmap.find_opt v t.vertices with
  | None -> false
  | Some info ->
    List.mem u info.vi_preds || (fst u = fst v && snd u < snd v)

(* Export a process's local DAG in the [Dag] form consumed by the
   simulation tree and the extraction, ordering vertices by creation time
   (ties by creator id): the executable counterpart of "G_p(t)".  The
   failure pattern is supplied by the analysis harness (the protocol
   itself, realistically, does not know it). *)
let export t ~pattern =
  let ordered =
    List.sort
      (fun ((p1, k1), i1) ((p2, k2), i2) ->
         compare (i1.vi_time, p1, k1) (i2.vi_time, p2, k2))
      (Vmap.bindings t.vertices)
  in
  let index_of = Hashtbl.create 64 in
  List.iteri (fun i (key, _) -> Hashtbl.add index_of key i) ordered;
  (* Per-process sample indices follow creation order; since a process's
     own samples are totally ordered in time, this matches its k indices. *)
  let next = Hashtbl.create 8 in
  let vertices =
    Array.of_list
      (List.mapi
         (fun i ((p, _), info) ->
            let k = 1 + Option.value ~default:0 (Hashtbl.find_opt next p) in
            Hashtbl.replace next p k;
            { Dag.v_id = i; v_proc = p; v_index = k; v_time = info.vi_time;
              v_value = info.vi_value })
         ordered)
  in
  let edges =
    List.concat_map
      (fun (key, info) ->
         let vi = Hashtbl.find index_of key in
         List.filter_map
           (fun pred ->
              match Hashtbl.find_opt index_of pred with
              | Some pi -> Some (pi, vi)
              | None -> None)
           info.vi_preds)
      ordered
  in
  Dag.of_explicit ~pattern ~vertices ~edges

(* Appendix B.2 property checks on the protocol-built local DAG. *)

let check_same_creator_order t =
  Vmap.for_all
    (fun (p, k) _ ->
       k = 1 || has_edge t (p, k - 1) (p, k))
    t.vertices

let check_transitive t =
  let keys = List.map fst (Vmap.bindings t.vertices) in
  List.for_all
    (fun u ->
       List.for_all
         (fun v ->
            (not (has_edge t u v))
            || List.for_all
              (fun w -> (not (has_edge t v w)) || has_edge t u w)
              keys)
         keys)
    keys

(* The local DAGs of two processes agree on their common vertices (same
   values, same predecessor sets): convergence in the sense of B.5. *)
let agrees_with a b =
  Vmap.for_all
    (fun key info ->
       match Vmap.find_opt key b.vertices with
       | None -> true
       | Some info' ->
         Fd_value.equal info.vi_value info'.vi_value
         && info.vi_preds = info'.vi_preds)
    a.vertices

let () =
  Msg.register_payload_pp (fun ppf -> function
    | Dag_gossip graph -> Fmt.pf ppf "dag-gossip(|%d|)" (List.length graph); true
    | _ -> false)
