(** The CHT communication task (Appendix B.2, Figure 1) as a real protocol:
    every process samples its detector on each local timeout, grows its
    local DAG, and gossips it; local DAGs of correct processes converge. *)

open Simulator
open Simulator.Types

type vkey = proc_id * int
(** Global vertex identity: (creator, k-th query). *)

type graph
type Msg.payload += Dag_gossip of graph

type t

val create :
  Engine.ctx -> sample:(unit -> Fd_value.t) -> t * Engine.node
(** [sample] is the process's local failure-detector module. *)

val size : t -> int
(** Vertices currently in the local DAG. *)

val merges : t -> int
val mem : t -> vkey -> bool
val has_edge : t -> vkey -> vkey -> bool

val export : t -> pattern:Failures.pattern -> Dag.t
(** The local DAG [G_p(t)] in the form the simulation tree and extraction
    consume (explicit edges). *)

val check_same_creator_order : t -> bool
(** Appendix B.2, property (2). *)

val check_transitive : t -> bool
(** Appendix B.2, property (3); O(V^3), for tests. *)

val agrees_with : t -> t -> bool
(** Two local DAGs agree on values and predecessor sets of their common
    vertices (convergence, B.5). *)
