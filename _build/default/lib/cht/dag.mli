(** The failure-detector sample DAG [G] of Appendix B.2, built
    deterministically from a failure pattern and a detector history so that
    all four CHT DAG properties hold. *)

open Simulator
open Simulator.Types

type vertex = {
  v_id : int;  (** global creation order — the CHT "m-based" vertex order *)
  v_proc : proc_id;
  v_index : int;  (** this is [v_proc]'s k-th sample *)
  v_time : time;
  v_value : Fd_value.t;
}

type t

val build :
  pattern:Failures.pattern ->
  sampler:(proc_id -> time -> Fd_value.t) ->
  period:int ->
  gossip:int ->
  rounds:int ->
  t
(** Process [p] samples at times [k * period + p] while alive; an edge
    [(u, v)] exists iff [u] is at least [gossip] ticks older than [v] or
    they share a process with [u] earlier. *)

val of_explicit :
  pattern:Failures.pattern ->
  vertices:vertex array ->
  edges:(int * int) list ->
  t
(** A DAG with an explicit edge set (pred id, succ id), e.g. exported from
    the engine-run communication task ({!Dag_protocol}).  Ids must equal
    array positions; same-process sample order is added implicitly. *)

val vertices : t -> vertex list
val vertex : t -> int -> vertex
val size : t -> int
val pattern : t -> Failures.pattern

val has_edge : t -> vertex -> vertex -> bool
val succs : t -> vertex -> vertex list

val prefix : t -> horizon:time -> t
(** The DAG visible by [horizon]: the local DAG [G_p(t)]. *)

val window : t -> from_horizon:time -> to_horizon:time -> t
(** The samples taken during the window, reinterpreted as a fresh DAG.  The
    emulation loop slides this forward so that late windows contain only
    post-stabilization samples of correct processes — the bounded-budget
    realization of CHT's valency stabilization. *)

val extensions : t -> last:vertex option -> used:int list -> width:int -> vertex list
(** Candidate next path vertices: per process, its [width] earliest samples
    not in [used] and reachable from [last]. *)

val check_sampling : t -> sampler:(proc_id -> time -> Fd_value.t) -> bool
val check_order : t -> bool
val check_transitive : t -> bool
val check_fairness : t -> rounds:int -> period:int -> bool

val pp_vertex : Format.formatter -> vertex -> unit
val pp : Format.formatter -> t -> unit
