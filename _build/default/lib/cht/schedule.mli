(** Configurations and schedule steps for the CHT simulation. *)

open Simulator.Types

type step = {
  s_vertex : int;  (** DAG vertex id supplying (process, detector value) *)
  s_recv : (proc_id * Pure.pmsg) option;  (** [None] is the empty message *)
  s_invoke : (int * bool) option;  (** input: invoke proposeEC with a value *)
}

type 'state config = {
  states : 'state array;
  buffers : (proc_id * Pure.pmsg) list array;
  decisions : (proc_id * int * bool) list;
}

val initial : 'state Pure.algo -> n:int -> 'state config

val oldest : 'state config -> proc_id -> (proc_id * Pure.pmsg) option
(** The oldest undelivered message addressed to [p]. *)

val same_step_content : Dag.t -> step -> step -> bool
(** Equal (process, detector value, receive, invoke) — the step identity the
    fork/hook definitions use. *)

val apply : dag:Dag.t -> 'state Pure.algo -> 'state config -> step -> 'state config
(** Raises [Invalid_argument] if the received message is not the oldest
    pending one. *)

val values_for : 'state config -> instance:int -> bool list
val conflicting : 'state config -> instance:int -> bool
val enabled : 'state config -> instance:int -> bool

val pp_step : dag:Dag.t -> Format.formatter -> step -> unit
