(** The simulation tree Upsilon of Section 4 / Appendix B.3, materialized
    breadth-first under explicit budgets, with the k-tags of Section 4. *)

type 'state t

val create :
  ?allow_lambda:bool -> dag:Dag.t -> algo:'state Pure.algo -> width:int ->
  unit -> 'state t
(** [width] bounds, per process, how many alternative samples may extend a
    path — the branching knob.  [allow_lambda] (default false) additionally
    offers the empty-message step when a message is deliverable, which
    doubles branching but makes hook gadgets representable. *)

val expand : 'state t -> max_depth:int -> max_nodes:int -> unit

val size : 'state t -> int
val children : 'state t -> int -> int list
val parent : 'state t -> int -> int option
val step : 'state t -> int -> Schedule.step option
val depth : 'state t -> int -> int
val config : 'state t -> int -> 'state Schedule.config
val dag : 'state t -> Dag.t

val extension_steps : 'state t -> int -> Schedule.step list
(** The one-step extensions the expansion would create for a node. *)

type tag = { tg_values : bool list; tg_invalid : bool }

val tags : 'state t -> instance:int -> tag array
(** The k-tag of every node for instance [k], bottom-up over the
    materialized tree; empty for non-k-enabled nodes. *)

val is_bivalent : tag -> bool
val is_univalent : tag -> bool -> bool
val pp_tag : Format.formatter -> tag -> unit
