(** Purely functional automata for CHT simulation, and the pure form of
    Algorithm 4 used as the reduction's target algorithm. *)

open Simulator.Types

type pmsg = Promote of { value : bool; instance : int }

val pp_pmsg : Format.formatter -> pmsg -> unit
val compare_pmsg : pmsg -> pmsg -> int

type decision = int * bool

type 'state algo = {
  a_name : string;
  a_init : n:int -> proc_id -> 'state;
  a_pending_invocation : 'state -> int option;
      (** [Some l] iff the process is due to invoke [proposeEC_l] at its next
          step (the tree branches on the proposed value). *)
  a_step :
    n:int ->
    self:proc_id ->
    'state ->
    recv:(proc_id * pmsg) option ->
    fd:Fd_value.t ->
    invoke:(int * bool) option ->
    'state * (proc_id * pmsg) list * decision list;
}

type ec_state

val ec_omega : ec_state algo
(** Pure Algorithm 4 over Omega samples. *)

val ec_trusted : ec_state algo
(** The same automaton reading the leader through {!Fd_value.trusted}, so it
    also runs against suspicion-list detectors such as [<>P]. *)
