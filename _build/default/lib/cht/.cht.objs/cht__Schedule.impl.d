lib/cht/schedule.ml: Array Dag Fd_value Fmt List Pure Simulator
