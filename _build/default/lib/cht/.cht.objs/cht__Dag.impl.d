lib/cht/dag.ml: Array Failures Fd_value Fmt Hashtbl Int List Option Set Simulator
