lib/cht/extraction.mli: Dag Failures Format Pure Sim_tree Simulator
