lib/cht/schedule.mli: Dag Format Pure Simulator
