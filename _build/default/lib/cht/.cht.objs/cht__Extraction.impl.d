lib/cht/extraction.ml: Array Dag Failures Fd_value Fmt List Option Pure Schedule Sim_tree Simulator
