lib/cht/fd_value.mli: Format Simulator
