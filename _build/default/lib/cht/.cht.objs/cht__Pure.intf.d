lib/cht/pure.mli: Fd_value Format Simulator
