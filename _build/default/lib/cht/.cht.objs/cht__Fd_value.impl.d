lib/cht/fd_value.ml: Fmt List Simulator Stdlib
