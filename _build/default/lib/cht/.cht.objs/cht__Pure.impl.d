lib/cht/pure.ml: Fd_value Fmt List Map Simulator
