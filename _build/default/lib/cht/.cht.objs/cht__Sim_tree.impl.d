lib/cht/sim_tree.ml: Array Dag Failures Fmt List Pure Schedule Simulator
