lib/cht/dag_protocol.mli: Dag Engine Failures Fd_value Msg Simulator
