lib/cht/sim_tree.mli: Dag Format Pure Schedule
