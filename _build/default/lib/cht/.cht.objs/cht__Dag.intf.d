lib/cht/dag.mli: Failures Fd_value Format Simulator
