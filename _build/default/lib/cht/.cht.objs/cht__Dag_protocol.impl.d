lib/cht/dag_protocol.ml: Array Dag Engine Fd_value Fmt Hashtbl List Map Msg Option Simulator
