(** Failure-detector values as sampled by the CHT reduction: leader outputs
    (Omega) and suspicion lists ([<>P]). *)

open Simulator.Types

type t =
  | Leader of proc_id
  | Suspects of proc_id list

val leader : proc_id -> t
val suspects : proc_id list -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val trusted : n:int -> self:proc_id -> t -> proc_id
(** The process this value designates as leader ("trust the smallest
    unsuspected" for suspicion lists). *)

val pp : Format.formatter -> t -> unit
