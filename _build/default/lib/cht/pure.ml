(* Purely functional automata for CHT simulation.

   The reduction of Section 4 simulates runs of the target algorithm A
   offline, triggered by paths through the sample DAG.  That requires A as
   a pure transition function (no engine, no wall clock): a step consumes
   at most one message OR one input (an invocation of proposeEC with a
   chosen value), sees one failure-detector value, and yields a new state,
   messages to send, and any decisions produced.

   [ec_omega] is the pure form of Algorithm 4; [ec_trusted] generalizes it
   to any detector whose values designate a leader through
   [Fd_value.trusted] (e.g. <>P), so the reduction can be exercised with a
   detector other than Omega itself. *)

open Simulator.Types

type pmsg = Promote of { value : bool; instance : int }

let pp_pmsg ppf (Promote { value; instance }) =
  Fmt.pf ppf "promote(%b,%d)" value instance

let compare_pmsg (Promote a) (Promote b) = compare (a.instance, a.value) (b.instance, b.value)

(* One decision: (instance, value) returned by the stepping process. *)
type decision = int * bool

type 'state algo = {
  a_name : string;
  a_init : n:int -> proc_id -> 'state;
  (* The instance this process is due to invoke at its next step: Some 1
     initially, Some (l+1) right after deciding l, None while an invocation
     is outstanding.  The tree branches on the invocation's value. *)
  a_pending_invocation : 'state -> int option;
  a_step :
    n:int ->
    self:proc_id ->
    'state ->
    recv:(proc_id * pmsg) option ->
    fd:Fd_value.t ->
    invoke:(int * bool) option ->
    'state * (proc_id * pmsg) list * decision list;
}

(* ------------------------------------------------------------------ *)
(* Pure Algorithm 4                                                    *)
(* ------------------------------------------------------------------ *)

module Pm = Map.Make (struct
    type t = proc_id * int
    let compare = compare
  end)

type ec_state = {
  count : int;  (* last instance invoked; 0 before the first *)
  received : bool Pm.t;  (* (sender, instance) -> promoted value *)
  decided : int list;  (* instances already decided here *)
  awaiting : bool;  (* an invocation is outstanding (no response yet) *)
}

let ec_init ~n:_ _self = { count = 0; received = Pm.empty; decided = []; awaiting = false }

let ec_pending state =
  if state.awaiting then None
  else Some (state.count + 1)

(* After any event, Algorithm 4's timeout guard: decide the current instance
   if the currently trusted process's promote for it has been received. *)
let ec_try_decide ~n ~self state ~fd =
  let leader = Fd_value.trusted ~n ~self fd in
  if state.awaiting && not (List.mem state.count state.decided) then
    match Pm.find_opt (leader, state.count) state.received with
    | Some v ->
      ({ state with decided = state.count :: state.decided; awaiting = false },
       [ (state.count, v) ])
    | None -> (state, [])
  else (state, [])

let ec_step ~n ~self state ~recv ~fd ~invoke =
  let state, sends =
    match invoke with
    | Some (l, v) ->
      if l <> state.count + 1 || state.awaiting then
        invalid_arg "Pure.ec_step: out-of-order invocation";
      let sends = List.map (fun q -> (q, Promote { value = v; instance = l })) (all_procs n) in
      ({ state with count = l; awaiting = true }, sends)
    | None -> (state, [])
  in
  let state =
    match recv with
    | Some (src, Promote { value; instance }) ->
      if Pm.mem (src, instance) state.received then state
      else { state with received = Pm.add (src, instance) value state.received }
    | None -> state
  in
  let state, decisions = ec_try_decide ~n ~self state ~fd in
  (state, sends, decisions)

let ec_trusted =
  { a_name = "ec-trusted";
    a_init = ec_init;
    a_pending_invocation = ec_pending;
    a_step = ec_step }

let ec_omega = { ec_trusted with a_name = "ec-omega" }
