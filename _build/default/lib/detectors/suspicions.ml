(* Suspicion-list failure detectors: the eventually perfect detector <>P and
   the perfect detector P (Chandra & Toueg).

   <>P: eventually the output at every correct process is exactly the set of
   faulty processes (strong completeness + eventual strong accuracy).

   P: never suspects a process before it crashes (strong accuracy), and
   every crashed process is eventually suspected by every correct process
   (strong completeness).  We model detection with a fixed lag.

   These detectors are strictly stronger than Omega; they appear in tests
   (Omega is extractable from them) and in the related-work experiments
   (Serafini et al. use <>P to boost eventual linearizability). *)

open Simulator
open Simulator.Types

type eventually_perfect = {
  ep_pattern : Failures.pattern;
  ep_stabilize_at : time;
  ep_seed : int;
}

let eventually_perfect ?(seed = 7) pattern ~stabilize_at =
  { ep_pattern = pattern; ep_stabilize_at = stabilize_at; ep_seed = seed }

let mix seed self now q =
  let h =
    (seed * 0x9E3779B1) lxor (self * 0x85EBCA77) lxor (now * 0xC2B2AE3D)
    lxor (q * 0x165667B1)
  in
  let h = (h lxor (h lsr 13)) * 0x27D4EB2F in
  abs (h lxor (h lsr 16))

let query_ep t ~self ~now =
  if now >= t.ep_stabilize_at then Failures.faulty t.ep_pattern
  else
    (* Noisy prefix: suspect a pseudo-random subset of the other processes. *)
    List.filter
      (fun q -> q <> self && mix t.ep_seed self now q mod 3 = 0)
      (all_procs (Failures.n t.ep_pattern))

type perfect = {
  p_pattern : Failures.pattern;
  p_lag : int;
}

let perfect pattern ~lag =
  if lag < 0 then invalid_arg "Suspicions.perfect: negative lag";
  { p_pattern = pattern; p_lag = lag }

let query_p t ~self:_ ~now =
  List.filter
    (fun q ->
       match Failures.crash_time t.p_pattern q with
       | None -> false
       | Some tc -> now >= tc + t.p_lag)
    (all_procs (Failures.n t.p_pattern))

(* The eventually strong detector <>S: strong completeness (every faulty
   process is eventually suspected by every correct one) plus eventual WEAK
   accuracy (SOME correct process is eventually never suspected by any
   correct process).  Unlike <>P, correct processes other than the anchor
   may stay wrongly suspected forever — which is exactly what makes <>S the
   weakest class for consensus with a majority (Chandra-Toueg). *)
type eventually_strong = {
  es_pattern : Failures.pattern;
  es_stabilize_at : time;
  es_seed : int;
  es_anchor : proc_id;
}

let eventually_strong ?(seed = 13) pattern ~stabilize_at =
  match Failures.min_correct pattern with
  | None -> invalid_arg "Suspicions.eventually_strong: no correct process"
  | Some anchor ->
    { es_pattern = pattern; es_stabilize_at = stabilize_at; es_seed = seed;
      es_anchor = anchor }

let es_anchor t = t.es_anchor

let query_es t ~self ~now =
  let n = Failures.n t.es_pattern in
  if now >= t.es_stabilize_at then
    List.filter
      (fun q ->
         Failures.is_faulty t.es_pattern q
         (* Permanent false suspicions of non-anchor correct processes,
            stable in time so the output converges. *)
         || (q <> t.es_anchor && q <> self && mix t.es_seed self 0 q mod 3 = 0))
      (all_procs n)
  else
    List.filter (fun q -> q <> self && mix t.es_seed self now q mod 3 = 0)
      (all_procs n)

let ep_module_of t (ctx : Engine.ctx) () = query_ep t ~self:ctx.self ~now:(ctx.now ())
let p_module_of t (ctx : Engine.ctx) () = query_p t ~self:ctx.self ~now:(ctx.now ())
let es_module_of t (ctx : Engine.ctx) () = query_es t ~self:ctx.self ~now:(ctx.now ())

(* Omega is weaker than <>P: trust the smallest unsuspected process.  After
   <>P stabilizes, every correct process trusts the smallest correct one. *)
let omega_from_ep t ~self ~now =
  let suspects = query_ep t ~self ~now in
  let trusted =
    List.filter (fun q -> not (List.mem q suspects)) (all_procs (Failures.n t.ep_pattern))
  in
  match trusted with p :: _ -> p | [] -> self
