(* The leader failure detector Omega (Section 2).

   At each process, Omega outputs the id of a process; if a correct process
   exists, there is a time after which Omega outputs the id of the same
   correct process at every correct process.  Everything before that time is
   unconstrained, so the oracle takes an explicit adversarial pre-behaviour;
   all the paper's algorithms must work no matter what that prefix does. *)

open Simulator
open Simulator.Types

type pre_behaviour =
  | Self_trust
  | Fixed of proc_id
  | Rotating of int
  | Blockwise of proc_id list list
  | Seeded of int

type t = {
  pattern : Failures.pattern;
  stabilize_at : time;
  pre : pre_behaviour;
  leader : proc_id;
}

let make ?(pre = Self_trust) pattern ~stabilize_at =
  let leader =
    match Failures.min_correct pattern with
    | Some p -> p
    | None -> invalid_arg "Omega.make: no correct process in pattern"
  in
  (match pre with
   | Fixed p when not (is_valid_proc ~n:(Failures.n pattern) p) ->
     invalid_arg "Omega.make: Fixed leader out of range"
   | Rotating period when period < 1 ->
     invalid_arg "Omega.make: Rotating period must be >= 1"
   | Self_trust | Fixed _ | Rotating _ | Blockwise _ | Seeded _ -> ());
  { pattern; stabilize_at; pre; leader }

let leader t = t.leader
let stabilization_time t = t.stabilize_at

(* A cheap deterministic hash for the Seeded pre-behaviour. *)
let mix seed self now =
  let h = (seed * 0x9E3779B1) lxor (self * 0x85EBCA77) lxor (now * 0xC2B2AE3D) in
  let h = (h lxor (h lsr 13)) * 0x27D4EB2F in
  abs (h lxor (h lsr 16))

let min_alive_in t block now =
  let alive = List.filter (fun p -> Failures.is_alive t.pattern p now) block in
  match alive with [] -> None | p :: _ -> Some p

let pre_output t ~self ~now =
  let n = Failures.n t.pattern in
  match t.pre with
  | Self_trust -> self
  | Fixed p -> p
  | Rotating period -> now / period mod n
  | Seeded seed -> mix seed self now mod n
  | Blockwise blocks ->
    let rec find = function
      | [] -> t.leader
      | b :: rest -> if List.mem self b then
          (match min_alive_in t b now with Some p -> p | None -> t.leader)
        else find rest
    in
    find blocks

let query t ~self ~now =
  if now >= t.stabilize_at then t.leader else pre_output t ~self ~now

(* Capture the oracle as a per-process closure over the engine clock; this is
   how protocol nodes consult their local failure-detector module. *)
let module_of t (ctx : Engine.ctx) () = query t ~self:ctx.self ~now:(ctx.now ())

let pp ppf t =
  Fmt.pf ppf "Omega(leader=%a, stabilize_at=%d)" pp_proc t.leader t.stabilize_at
