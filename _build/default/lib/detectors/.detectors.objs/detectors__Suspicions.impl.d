lib/detectors/suspicions.ml: Engine Failures List Simulator
