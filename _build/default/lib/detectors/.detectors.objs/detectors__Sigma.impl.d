lib/detectors/sigma.ml: Engine Failures Fmt List Simulator
