lib/detectors/omega.ml: Engine Failures Fmt List Simulator
