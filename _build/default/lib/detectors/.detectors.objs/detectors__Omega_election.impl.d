lib/detectors/omega_election.ml: Array Engine Fmt List Msg Simulator
