lib/detectors/sigma.mli: Engine Failures Format Simulator
