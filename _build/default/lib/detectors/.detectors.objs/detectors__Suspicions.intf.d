lib/detectors/suspicions.mli: Engine Failures Simulator
