lib/detectors/omega_election.mli: Engine Msg Simulator
