lib/detectors/omega.mli: Engine Failures Format Simulator
