(* The quorum failure detector Sigma (Delporte-Gallet, Fauconnier, Guerraoui).

   Sigma outputs a set of processes at each process such that (i) any two
   sets output at any times by any processes intersect, and (ii) eventually
   every set output at a correct process contains only correct processes.

   The paper's headline gap result is that Omega + Sigma is the weakest
   detector for (strong) consistency in any environment, while Omega alone
   suffices for eventual consistency: Sigma is exactly the price of strong
   consistency.  We provide the oracle so tests and benches can exhibit that
   gap explicitly.

   Construction: every quorum output before stabilization contains a fixed
   anchor (the smallest-id correct process) plus possibly faulty padding;
   from the stabilization time on, the output is exactly the correct set.
   Since the anchor is correct, it belongs to every quorum ever output, so
   any two quorums intersect. *)

open Simulator
open Simulator.Types

type t = {
  pattern : Failures.pattern;
  stabilize_at : time;
  anchor : proc_id;
}

let make pattern ~stabilize_at =
  match Failures.min_correct pattern with
  | None -> invalid_arg "Sigma.make: no correct process in pattern"
  | Some anchor -> { pattern; stabilize_at; anchor }

let anchor t = t.anchor

let query t ~self ~now =
  if now >= t.stabilize_at then Failures.correct t.pattern
  else begin
    (* A deterministic, time-varying padded quorum: the anchor plus roughly
       half of the other processes, chosen by a rolling window, so early
       quorums genuinely differ between processes and times. *)
    let n = Failures.n t.pattern in
    let width = (n / 2) + 1 in
    let start = (self + now) mod n in
    let padded = List.init width (fun i -> (start + i) mod n) in
    List.sort_uniq compare (t.anchor :: padded)
  end

let module_of t (ctx : Engine.ctx) () = query t ~self:ctx.self ~now:(ctx.now ())

let pp ppf t =
  Fmt.pf ppf "Sigma(anchor=%a, stabilize_at=%d)" pp_proc t.anchor t.stabilize_at
