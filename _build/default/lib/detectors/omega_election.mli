(** A message-passing emulation of Omega: heartbeats, adaptive timeouts, and
    trust in the smallest unsuspected process.  Converges in any run whose
    delays are eventually bounded (partial synchrony). *)

open Simulator
open Simulator.Types

type Msg.payload += Heartbeat

type t

val create : Engine.ctx -> initial_timeout:int -> t * Engine.node
(** [create ctx ~initial_timeout] is the election state together with the
    protocol component to stack into the process's node.  Query {!leader}
    at any point for the current trusted process. *)

val leader : t -> proc_id
(** The smallest currently unsuspected process (self if all suspected). *)

val suspects : t -> proc_id list

val false_suspicions : t -> int
(** How many times a suspicion was retracted (each retraction doubles the
    per-process timeout). *)
