(* A message-passing emulation of Omega for partially synchronous runs.

   Oracles (Omega.t) are histories computed from the failure pattern; this
   module instead *implements* Omega the way a deployed system would: each
   process heartbeats on its local timeout, suspects processes whose
   heartbeats are overdue, and trusts the smallest unsuspected process.
   Timeouts grow adaptively on every false suspicion (the classical
   Chandra–Toueg trick), so in any run whose message delays are eventually
   bounded the emulation converges: eventually all correct processes trust
   the same correct process.

   In a fully asynchronous run no implementation of Omega exists (this is
   exactly why Omega is treated as an oracle in the paper); the emulation is
   provided to close the loop between the abstract results and a runnable
   system, and to feed the ablation benchmark (oracle vs emulated Omega). *)

open Simulator
open Simulator.Types

type Msg.payload += Heartbeat

type t = {
  ctx : Engine.ctx;
  last_heard : time array;     (* last heartbeat receipt per process *)
  timeout : int array;         (* current adaptive timeout per process *)
  suspected : bool array;
  mutable false_suspicions : int;
}

let leader t =
  let rec find p =
    if p >= t.ctx.Engine.n then t.ctx.Engine.self
    else if not t.suspected.(p) then p
    else find (p + 1)
  in
  find 0

let suspects t =
  List.filter (fun p -> t.suspected.(p)) (all_procs t.ctx.Engine.n)

let false_suspicions t = t.false_suspicions

let create (ctx : Engine.ctx) ~initial_timeout =
  if initial_timeout < 1 then
    invalid_arg "Omega_election.create: initial_timeout must be >= 1";
  let t =
    { ctx;
      last_heard = Array.make ctx.Engine.n (ctx.Engine.now ());
      timeout = Array.make ctx.Engine.n initial_timeout;
      suspected = Array.make ctx.Engine.n false;
      false_suspicions = 0 }
  in
  let on_timer () =
    let now = ctx.Engine.now () in
    ctx.Engine.broadcast Heartbeat;
    List.iter
      (fun p ->
         if p <> ctx.Engine.self
         && (not t.suspected.(p))
         && now - t.last_heard.(p) > t.timeout.(p)
         then t.suspected.(p) <- true)
      (all_procs ctx.Engine.n)
  in
  let on_message ~src payload =
    match payload with
    | Heartbeat ->
      t.last_heard.(src) <- ctx.Engine.now ();
      if t.suspected.(src) then begin
        (* False suspicion: rehabilitate and back off the timeout. *)
        t.suspected.(src) <- false;
        t.false_suspicions <- t.false_suspicions + 1;
        t.timeout.(src) <- t.timeout.(src) * 2
      end
    | _ -> ()
  in
  let node = { Engine.on_message; on_timer; on_input = (fun _ -> ()) } in
  (t, node)

let () =
  Msg.register_payload_pp (fun ppf -> function
    | Heartbeat -> Fmt.string ppf "heartbeat"; true
    | _ -> false)
