(** Suspicion-list failure detectors: eventually perfect ([<>P]) and perfect
    ([P]) (Chandra & Toueg).  Both are strictly stronger than Omega. *)

open Simulator
open Simulator.Types

type eventually_perfect

val eventually_perfect :
  ?seed:int -> Failures.pattern -> stabilize_at:time -> eventually_perfect
(** An [<>P] history: noisy suspicions before [stabilize_at], exactly the
    faulty set after. *)

val query_ep : eventually_perfect -> self:proc_id -> now:time -> proc_id list

type perfect

val perfect : Failures.pattern -> lag:int -> perfect
(** A [P] history that suspects each crashed process exactly [lag] ticks
    after its crash — never before (strong accuracy). *)

val query_p : perfect -> self:proc_id -> now:time -> proc_id list

type eventually_strong

val eventually_strong :
  ?seed:int -> Failures.pattern -> stabilize_at:time -> eventually_strong
(** An [<>S] history: strong completeness plus eventual weak accuracy — one
    correct anchor is eventually never suspected, while other correct
    processes may stay wrongly suspected forever. *)

val es_anchor : eventually_strong -> proc_id
val query_es : eventually_strong -> self:proc_id -> now:time -> proc_id list

val ep_module_of : eventually_perfect -> Engine.ctx -> unit -> proc_id list
val p_module_of : perfect -> Engine.ctx -> unit -> proc_id list
val es_module_of : eventually_strong -> Engine.ctx -> unit -> proc_id list

val omega_from_ep : eventually_perfect -> self:proc_id -> now:time -> proc_id
(** The classical reduction Omega <= [<>P]: trust the smallest unsuspected
    process. *)
