(* A replica: a deterministic state machine driven by an (E)TOB service.

   This is the paper's "eventually consistent replicated service": the
   replica applies, at every moment, the command sequence currently
   delivered by the broadcast layer.  With ETOB the applied sequence (and
   hence the state) may be revised while leaders disagree; once the
   underlying broadcast stabilizes, all replicas apply the same growing
   sequence and the service is consistent from then on.  With the strong
   TOB baseline underneath, the very same replica code is a classical
   (strongly consistent) replicated state machine — the computational gap
   between the two is exactly the subject of the paper. *)

open Simulator

type Io.input += Submit of Command.t

type Io.output += Applied of { machine : string; count : int; digest : string }

module Make (M : Machines.MACHINE) = struct
  type t = {
    etob : Ec_core.Etob_intf.service;
    ctx : Engine.ctx;
    mutable state : M.state;
    mutable log : Command.t list;  (* commands applied, in order *)
  }

  let decode_log seq =
    List.filter_map (fun m -> Command.of_tag m.Ec_core.App_msg.tag) seq

  let on_deliver t seq =
    let log = decode_log seq in
    let state = List.fold_left M.apply M.init log in
    t.state <- state;
    t.log <- log;
    t.ctx.Engine.output
      (Applied { machine = M.name; count = List.length log; digest = M.digest state })

  let submit t command =
    let m = t.etob.Ec_core.Etob_intf.fresh_msg ~tag:(Command.to_tag command) () in
    t.etob.Ec_core.Etob_intf.broadcast m

  let create (ctx : Engine.ctx) ~etob =
    let t = { etob; ctx; state = M.init; log = [] } in
    etob.Ec_core.Etob_intf.on_deliver (on_deliver t);
    let node =
      { Engine.on_message = (fun ~src:_ _ -> ());
        on_timer = (fun () -> ());
        on_input = (function Submit c -> submit t c | _ -> ()) }
    in
    (t, node)

  let state t = t.state
  let log t = t.log
  let digest t = M.digest t.state
end

let () =
  Io.register_input_pp (fun ppf -> function
    | Submit c -> Fmt.pf ppf "submit(%a)" Command.pp c; true
    | _ -> false);
  Io.register_output_pp (fun ppf -> function
    | Applied { machine; count; digest } ->
      Fmt.pf ppf "applied[%s] %d cmds -> %s" machine count digest; true
    | _ -> false)
