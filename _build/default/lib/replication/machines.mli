(** Deterministic sequential state machines for state machine replication. *)

module type MACHINE = sig
  type state

  val name : string
  val init : state

  val apply : state -> Command.t -> state
  (** Deterministic; commands not understood by the machine are no-ops. *)

  val digest : state -> string
  (** Canonical rendering: equal digests iff equal states. *)
end

module Counter : MACHINE with type state = int
module Register : MACHINE with type state = string option

module String_map : Map.S with type key = string

module Kv : MACHINE with type state = string String_map.t
module Fifo : MACHINE with type state = string list * string list

val replay :
  (module MACHINE with type state = 's) -> Command.t list -> 's
(** Apply a whole command sequence from the initial state. *)
