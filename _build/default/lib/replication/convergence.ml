(* Convergence analysis of replicated-service runs.

   Works on the [Replica.Applied] output history: per replica, the series
   of state digests over time.  Measures the divergence windows (periods
   where correct replicas report different digests while quiescent) and the
   convergence time, the quantities experiment E9 reports. *)

open Simulator
open Simulator.Types

type run = {
  r_pattern : Failures.pattern;
  r_horizon : time;
  (* Per process, chronological (time, command count, digest). *)
  r_series : (time * int * string) list array;
}

let run_of_trace pattern trace =
  let series = Array.make (Failures.n pattern) [] in
  List.iter
    (fun (t, p, o) ->
       match o with
       | Replica.Applied { count; digest; _ } ->
         series.(p) <- (t, count, digest) :: series.(p)
       | _ -> ())
    (Trace.outputs trace);
  { r_pattern = pattern;
    r_horizon = Trace.last_time trace;
    r_series = Array.map List.rev series }

let digest_at run p t =
  let rec scan best = function
    | [] -> best
    | (t', _, d) :: rest -> if t' <= t then scan d rest else best
  in
  scan "<initial>" run.r_series.(p)

let final_digest run p =
  match List.rev run.r_series.(p) with [] -> "<initial>" | (_, _, d) :: _ -> d

let final_count run p =
  match List.rev run.r_series.(p) with [] -> 0 | (_, c, _) :: _ -> c

(* All correct replicas end the run in the same state. *)
let converged run =
  match Failures.correct run.r_pattern with
  | [] -> true
  | p :: rest -> List.for_all (fun q -> final_digest run q = final_digest run p) rest

(* The earliest time from which all correct replicas always agree on the
   digest (evaluated at state-change instants).  [r_horizon + 1] if they
   never converge. *)
let convergence_time run =
  let correct = Failures.correct run.r_pattern in
  let times =
    List.sort_uniq compare
      (Array.to_list run.r_series |> List.concat_map (List.map (fun (t, _, _) -> t)))
  in
  let agree_at t =
    match correct with
    | [] -> true
    | p :: rest -> List.for_all (fun q -> digest_at run q t = digest_at run p t) rest
  in
  if not (converged run) then run.r_horizon + 1
  else List.fold_left (fun tau t -> if agree_at t then tau else max tau (t + 1)) 0 times

(* Total ticks (within [from_time, horizon]) during which some pair of
   correct replicas disagreed: the divergence window E9 reports. *)
let divergence_ticks ?(from_time = 0) run =
  let correct = Failures.correct run.r_pattern in
  let disagree_at t =
    match correct with
    | [] -> false
    | p :: rest -> List.exists (fun q -> digest_at run q t <> digest_at run p t) rest
  in
  let rec count t acc =
    if t > run.r_horizon then acc
    else count (t + 1) (if disagree_at t then acc + 1 else acc)
  in
  count from_time 0

(* Number of times a replica's applied log was revised non-monotonically
   (its command count decreased or its digest changed without the count
   growing): rollbacks visible to clients before stabilization. *)
let rollback_count run p =
  let rec scan acc prev = function
    | [] -> acc
    | (_, c, d) :: rest ->
      (match prev with
       | Some (c0, d0) when c < c0 || (c = c0 && d <> d0) ->
         scan (acc + 1) (Some (c, d)) rest
       | Some _ | None -> scan acc (Some (c, d)) rest)
  in
  scan 0 None run.r_series.(p)

let total_rollbacks run =
  List.fold_left (fun acc p -> acc + rollback_count run p) 0
    (Failures.correct run.r_pattern)
