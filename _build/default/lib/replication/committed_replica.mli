(** A replica with two read views over one delivered sequence: a fresh,
    revisable {e speculative} view (full [d_i]) and a stale, never-rolled-back
    {e committed} view (the Section 7 committed prefix) — the weak/strong
    operation split of systems like Zeno, which the paper cites. *)

open Simulator
open Simulator.Types

type Io.output +=
  | Applied_committed of { machine : string; count : int; digest : string }

module Make (M : Machines.MACHINE) : sig
  type t

  val create :
    Engine.ctx ->
    etob:Ec_core.Etob_intf.service ->
    omega:(unit -> proc_id) ->
    promotion:(unit -> Ec_core.App_msg.t list) ->
    t * Engine.node
  (** Stack onto an Algorithm-5 process (needs its promotion sequence for
      the commit component, see {!Ec_core.Etob_omega.promotion}). *)

  val submit : t -> Command.t -> unit
  val speculative_state : t -> M.state
  val speculative_digest : t -> string
  val speculative_log : t -> Command.t list
  val committed_state : t -> M.state
  val committed_digest : t -> string
  val committed_log : t -> Command.t list
end

val committed_monotone : Failures.pattern -> Trace.t -> bool
(** The committed view's applied-command count never decreases at any
    process: committed reads are never rolled back. *)
