(** Convergence analysis of replicated-service runs (experiment E9):
    divergence windows, convergence times and visible rollbacks, computed
    from the {!Replica.Applied} output history. *)

open Simulator
open Simulator.Types

type run

val run_of_trace : Failures.pattern -> Trace.t -> run

val digest_at : run -> proc_id -> time -> string
val final_digest : run -> proc_id -> string
val final_count : run -> proc_id -> int

val converged : run -> bool
(** All correct replicas end the run in the same state. *)

val convergence_time : run -> time
(** Earliest time from which all correct replicas always agree;
    [horizon + 1] if they never do. *)

val divergence_ticks : ?from_time:time -> run -> int
(** Ticks during which some pair of correct replicas disagreed. *)

val rollback_count : run -> proc_id -> int
(** Non-monotonic revisions of the applied log visible at one replica. *)

val total_rollbacks : run -> int
