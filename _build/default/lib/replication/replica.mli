(** A replica: a deterministic state machine driven by an (E)TOB service.
    Over ETOB this is the paper's eventually consistent replicated service;
    over the strong TOB baseline, a classical replicated state machine. *)

open Simulator

type Io.input += Submit of Command.t
(** Client request routed to this replica. *)

type Io.output += Applied of { machine : string; count : int; digest : string }
(** Recorded every time the replica re-applies the delivered sequence. *)

module Make (M : Machines.MACHINE) : sig
  type t

  val create : Engine.ctx -> etob:Ec_core.Etob_intf.service -> t * Engine.node

  val submit : t -> Command.t -> unit
  val state : t -> M.state
  val log : t -> Command.t list
  val digest : t -> string
end
