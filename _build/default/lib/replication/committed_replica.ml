(* A replica with two read views: speculative and committed.

   Systems built on eventual consistency expose exactly this split (the
   paper cites Zeno [27] and discusses commit indications in Section 7):

   - the SPECULATIVE view applies the full delivered sequence d_i — always
     fresh, may be revised while leaders disagree;
   - the COMMITTED view applies only the committed prefix — possibly
     stale, never rolled back (in stable-period runs certified by the
     Commit_prefix component).

   Both views run the same deterministic machine over prefixes of the same
   sequence, so the committed state is always a past state of the
   speculative one. *)

open Simulator

type Io.output +=
  | Applied_committed of { machine : string; count : int; digest : string }

module Make (M : Machines.MACHINE) = struct
  type t = {
    ctx : Engine.ctx;
    speculative : Replica.Make(M).t;
    mutable committed_state : M.state;
    mutable committed_log : Command.t list;
  }

  module Speculative = Replica.Make (M)

  let decode_log seq =
    List.filter_map (fun m -> Command.of_tag m.Ec_core.App_msg.tag) seq

  let on_committed t seq =
    let log = decode_log seq in
    let state = List.fold_left M.apply M.init log in
    t.committed_state <- state;
    t.committed_log <- log;
    t.ctx.Engine.output
      (Applied_committed
         { machine = M.name; count = List.length log; digest = M.digest state })

  let create (ctx : Engine.ctx) ~etob ~omega ~promotion =
    let speculative, spec_node = Speculative.create ctx ~etob in
    let t =
      { ctx; speculative; committed_state = M.init; committed_log = [] }
    in
    let commit, commit_node =
      Ec_core.Commit_prefix.create ctx ~omega ~etob ~promotion
    in
    (* Re-apply the committed prefix whenever it grows: watch the component
       through a polling wrapper on the timer (commit growth is only
       observable through its state). *)
    let last_len = ref 0 in
    let watcher =
      { Engine.idle_node with
        on_timer =
          (fun () ->
             let seq = Ec_core.Commit_prefix.committed commit in
             if List.length seq > !last_len then begin
               last_len := List.length seq;
               on_committed t seq
             end);
        on_message =
          (fun ~src:_ _ ->
             let seq = Ec_core.Commit_prefix.committed commit in
             if List.length seq > !last_len then begin
               last_len := List.length seq;
               on_committed t seq
             end) }
    in
    (t, Engine.stack [ spec_node; commit_node; watcher ])

  let submit t command = Speculative.submit t.speculative command
  let speculative_state t = Speculative.state t.speculative
  let speculative_digest t = Speculative.digest t.speculative
  let committed_state t = t.committed_state
  let committed_digest t = M.digest t.committed_state
  let committed_log t = t.committed_log
  let speculative_log t = Speculative.log t.speculative
end

(* Trace analysis: the committed view must be monotone (never rolled back)
   and must lag the speculative view of the same process. *)
let committed_series pattern trace =
  let series = Array.make (Simulator.Failures.n pattern) [] in
  List.iter
    (fun (t, p, o) ->
       match o with
       | Applied_committed { count; digest; _ } ->
         series.(p) <- (t, count, digest) :: series.(p)
       | _ -> ())
    (Simulator.Trace.outputs trace);
  Array.map List.rev series

let committed_monotone pattern trace =
  Array.for_all
    (fun entries ->
       let rec scan prev = function
         | [] -> true
         | (_, count, _) :: rest -> count >= prev && scan count rest
       in
       scan 0 entries)
    (committed_series pattern trace)

let () =
  Io.register_output_pp (fun ppf -> function
    | Applied_committed { machine; count; digest } ->
      Fmt.pf ppf "applied-committed[%s] %d cmds -> %s" machine count digest; true
    | _ -> false)
