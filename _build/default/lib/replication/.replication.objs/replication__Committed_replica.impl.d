lib/replication/committed_replica.ml: Array Command Ec_core Engine Fmt Io List Machines Replica Simulator
