lib/replication/replica.mli: Command Ec_core Engine Io Machines Simulator
