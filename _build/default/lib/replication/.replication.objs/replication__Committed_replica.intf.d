lib/replication/committed_replica.mli: Command Ec_core Engine Failures Io Machines Simulator Trace
