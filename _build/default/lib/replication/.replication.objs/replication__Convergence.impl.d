lib/replication/convergence.ml: Array Failures List Replica Simulator Trace
