lib/replication/machines.mli: Command Map
