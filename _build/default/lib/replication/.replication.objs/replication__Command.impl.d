lib/replication/command.ml: Fmt Option Printf String
