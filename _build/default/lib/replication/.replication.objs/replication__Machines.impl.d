lib/replication/machines.ml: Command List Map String
