lib/replication/session.mli: Command Engine Format Io Simulator Trace
