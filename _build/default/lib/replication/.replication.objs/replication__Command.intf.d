lib/replication/command.mli: Format
