lib/replication/convergence.mli: Failures Simulator Trace
