lib/replication/session.ml: Command Engine Fmt Io List Option Printf Simulator Trace
