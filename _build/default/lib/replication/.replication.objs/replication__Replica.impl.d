lib/replication/replica.ml: Command Ec_core Engine Fmt Io List Machines Simulator
