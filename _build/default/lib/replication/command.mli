(** Commands of the replicated service, serialized into broadcast message
    tags. *)

type t =
  | Incr of int
  | Put of string * string
  | Del of string
  | Enqueue of string
  | Dequeue
  | Set_reg of string

val incr : int -> t
val put : string -> string -> t
(** Raises [Invalid_argument] if key or value contains [':']. *)

val del : string -> t
val enqueue : string -> t
val dequeue : t
val set_reg : string -> t

val to_tag : t -> string
val of_tag : string -> t option
(** [of_tag (to_tag c) = Some c]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
