lib/simulator/net.mli: Rng Types
