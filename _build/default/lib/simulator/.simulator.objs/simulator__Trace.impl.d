lib/simulator/trace.ml: Fmt Io List Types
