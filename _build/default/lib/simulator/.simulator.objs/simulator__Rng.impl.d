lib/simulator/rng.ml: Array Int64 List
