lib/simulator/listeners.mli:
