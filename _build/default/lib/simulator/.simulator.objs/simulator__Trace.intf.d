lib/simulator/trace.mli: Format Io Types
