lib/simulator/engine.mli: Failures Io Msg Net Rng Trace Types
