lib/simulator/msg.mli: Format Types
