lib/simulator/msg.ml: Fmt Format Types
