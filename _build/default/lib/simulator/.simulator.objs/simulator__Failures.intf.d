lib/simulator/failures.mli: Format Rng Types
