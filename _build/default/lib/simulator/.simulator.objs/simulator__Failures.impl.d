lib/simulator/failures.ml: Array Fmt List Printf Rng Types
