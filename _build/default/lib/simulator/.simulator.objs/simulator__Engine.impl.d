lib/simulator/engine.ml: Array Failures Io List Msg Net Pqueue Rng Trace Types
