lib/simulator/types.ml: Fmt List
