lib/simulator/io.ml: Fmt Format
