lib/simulator/net.ml: Hashtbl List Rng Types
