lib/simulator/listeners.ml: List
