lib/simulator/types.mli: Format
