lib/simulator/rng.mli:
