lib/simulator/io.mli: Format
