lib/simulator/pqueue.mli:
