lib/simulator/pqueue.ml: List
