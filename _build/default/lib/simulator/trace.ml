(* Run traces.

   A trace is the observable part of a run R = (F, H, H_I, H_O, S, T): the
   input history, the output history and bookkeeping counters.  All property
   checkers in [Ec_core.Properties] and all benchmark metrics are functions
   of a trace, so that correctness is judged only on externally visible
   behaviour, exactly as the paper's problem definitions do. *)

open Types

type entry =
  | In of { t : time; proc : proc_id; input : Io.input }
  | Out of { t : time; proc : proc_id; output : Io.output }

type t = {
  n : int;
  mutable rev_entries : entry list;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable steps : int;
  mutable last_time : time;
}

let create ~n =
  { n; rev_entries = []; sent = 0; delivered = 0; dropped = 0; steps = 0; last_time = 0 }

let touch_time t time = if time > t.last_time then t.last_time <- time

let record_input t ~time ~proc input =
  touch_time t time;
  t.rev_entries <- In { t = time; proc; input } :: t.rev_entries

let record_output t ~time ~proc output =
  touch_time t time;
  t.rev_entries <- Out { t = time; proc; output } :: t.rev_entries

let count_sent t = t.sent <- t.sent + 1
let count_delivered t = t.delivered <- t.delivered + 1
let count_dropped t = t.dropped <- t.dropped + 1
let count_step t = t.steps <- t.steps + 1

let n t = t.n
let entries t = List.rev t.rev_entries
let sent t = t.sent
let delivered t = t.delivered
let dropped t = t.dropped
let steps t = t.steps
let last_time t = t.last_time

let outputs t =
  List.filter_map
    (function Out { t; proc; output } -> Some (t, proc, output) | In _ -> None)
    (entries t)

let inputs t =
  List.filter_map
    (function In { t; proc; input } -> Some (t, proc, input) | Out _ -> None)
    (entries t)

let outputs_of t p =
  List.filter_map (fun (time, proc, o) -> if proc = p then Some (time, o) else None)
    (outputs t)

let inputs_of t p =
  List.filter_map (fun (time, proc, i) -> if proc = p then Some (time, i) else None)
    (inputs t)

let pp_entry ppf = function
  | In { t; proc; input } ->
    Fmt.pf ppf "[%4d] %a <- %a" t pp_proc proc Io.pp_input input
  | Out { t; proc; output } ->
    Fmt.pf ppf "[%4d] %a -> %a" t pp_proc proc Io.pp_output output

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@,(sent=%d delivered=%d dropped=%d steps=%d end=%d)@]"
    (Fmt.list pp_entry) (entries t) t.sent t.delivered t.dropped t.steps t.last_time
