(* Network messages.

   The payload type is extensible: each protocol library defines its own
   constructors (e.g. [Promote], [Push], [Update]) and the engine treats
   payloads opaquely.  A well-formed protocol component silently ignores
   payloads it does not recognize, which is what allows protocol stacking
   (e.g. an ETOB layer and an Omega-election layer sharing one node). *)

open Types

type payload = ..

type envelope = {
  src : proc_id;
  dst : proc_id;
  payload : payload;
  sent_at : time;
  uid : int;  (* globally unique per run; preserves definability of traces *)
}

let pp_payload_hook : (Format.formatter -> payload -> bool) list ref = ref []

let register_payload_pp f = pp_payload_hook := f :: !pp_payload_hook

let pp_payload ppf p =
  let rec try_hooks = function
    | [] -> Fmt.string ppf "<payload>"
    | h :: rest -> if h ppf p then () else try_hooks rest
  in
  try_hooks !pp_payload_hook

let pp_envelope ppf e =
  Fmt.pf ppf "#%d %a->%a @%d %a" e.uid pp_proc e.src pp_proc e.dst e.sent_at
    pp_payload e.payload
