(** A tiny observer registry: services expose hooks so protocol
    transformations can stack (Algorithm 1 listens to EC decisions,
    Algorithm 2 to ETOB deliveries, ...). *)

type 'a t

val create : unit -> 'a t

val register : 'a t -> ('a -> unit) -> unit
(** Callbacks fire in registration order. *)

val fire : 'a t -> 'a -> unit
val count : 'a t -> int
