(** Basic identifiers shared by every layer of the system.

    The model follows Section 2 of the paper: a set of processes
    [{p_0, ..., p_{n-1}}] (0-based ids here) and a discrete global clock with
    range [N] to which the processes themselves have no access. *)

type proc_id = int
(** A process identifier in [0 .. n-1]. *)

type time = int
(** A tick of the discrete global clock. *)

val pp_proc : Format.formatter -> proc_id -> unit
val pp_time : Format.formatter -> time -> unit

val all_procs : int -> proc_id list
(** [all_procs n] is [[0; 1; ...; n-1]]. *)

val is_valid_proc : n:int -> proc_id -> bool
(** [is_valid_proc ~n p] holds iff [0 <= p && p < n]. *)
