(** Inputs and outputs exchanged between a process and the external world.

    A problem, in the sense of Section 2 of the paper, is a set of pairs
    [(H_I, H_O)] of input and output histories.  Each abstraction extends
    the two variant types below with its own operations (e.g.
    [broadcastETOB], [proposeEC]) and responses (e.g. [DecideEC]). *)

type input = ..
type output = ..

type input += Tick_input | String_input of string
type output += String_output of string

val register_input_pp : (Format.formatter -> input -> bool) -> unit
(** Register a printer for an extension of {!input}.  The printer returns
    [true] if it handled the value. *)

val register_output_pp : (Format.formatter -> output -> bool) -> unit

val pp_input : Format.formatter -> input -> unit
val pp_output : Format.formatter -> output -> unit
