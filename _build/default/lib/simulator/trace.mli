(** Run traces: the observable input/output histories of a simulated run.

    All property checkers and benchmark metrics are functions of a trace, so
    correctness is judged only on externally visible behaviour, as in the
    paper's problem definitions. *)

open Types

type entry =
  | In of { t : time; proc : proc_id; input : Io.input }
  | Out of { t : time; proc : proc_id; output : Io.output }

type t

val create : n:int -> t

val record_input : t -> time:time -> proc:proc_id -> Io.input -> unit
val record_output : t -> time:time -> proc:proc_id -> Io.output -> unit

val count_sent : t -> unit
val count_delivered : t -> unit
val count_dropped : t -> unit
val count_step : t -> unit

val n : t -> int
val entries : t -> entry list
(** All entries in chronological order. *)

val outputs : t -> (time * proc_id * Io.output) list
val inputs : t -> (time * proc_id * Io.input) list
val outputs_of : t -> proc_id -> (time * Io.output) list
val inputs_of : t -> proc_id -> (time * Io.input) list

val sent : t -> int
(** Total messages sent. *)

val delivered : t -> int
val dropped : t -> int
(** Messages addressed to already-crashed processes. *)

val steps : t -> int
(** Total automaton steps executed. *)

val last_time : t -> time

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
