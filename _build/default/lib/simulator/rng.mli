(** Deterministic splitmix64 pseudo-random generator.

    Every run of the simulator is a pure function of its configuration, so all
    randomness (delays, adversarial choices, workload generation) flows
    through this generator rather than [Stdlib.Random]. *)

type t

val create : int -> t
(** [create seed] is a fresh generator; equal seeds give equal streams. *)

val next_int64 : t -> int64
(** The next raw 64-bit value of the stream. *)

val next_nonneg : t -> int
(** The next non-negative [int] (63 random bits). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val in_range : t -> min:int -> max:int -> int
(** [in_range t ~min ~max] is uniform in [\[min, max\]] (inclusive). *)

val bool : t -> bool
val float : t -> float
(** [float t] is uniform in [\[0, 1)]. *)

val split : t -> t
(** [split t] is a new generator whose stream is statistically independent of
    the remainder of [t]'s stream. *)

val pick : t -> 'a list -> 'a
(** Uniformly pick an element of a non-empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher–Yates shuffle. *)
