(* Basic identifiers shared by every layer of the system.

   The model follows Section 2 of the paper: a set of processes
   {p_0, ..., p_{n-1}} (we use 0-based ids) and a discrete global clock with
   range N to which the processes themselves have no access. *)

type proc_id = int
type time = int

let pp_proc ppf p = Fmt.pf ppf "p%d" p
let pp_time ppf t = Fmt.pf ppf "t=%d" t

(* [all_procs n] is the list [0; 1; ...; n-1]. *)
let all_procs n = List.init n (fun i -> i)

let is_valid_proc ~n p = 0 <= p && p < n
