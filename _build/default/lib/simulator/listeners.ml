(* A tiny observer registry: protocol services expose "on_event" hooks so
   transformations can stack on top of each other (Algorithm 1 listens to EC
   decisions, Algorithm 2 listens to ETOB deliveries, ...). *)

type 'a t = { mutable callbacks : ('a -> unit) list }

let create () = { callbacks = [] }

let register t f = t.callbacks <- t.callbacks @ [ f ]

let fire t x = List.iter (fun f -> f x) t.callbacks

let count t = List.length t.callbacks
