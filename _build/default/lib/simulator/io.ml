(* Inputs and outputs exchanged between a process and "the external world".

   Following the Jayanti–Toueg formalization used by the paper (Section 2),
   a problem is a set of pairs (H_I, H_O) of input and output histories.  The
   concrete inputs/outputs of each abstraction (broadcastETOB, proposeEC,
   DecideEC, ...) extend these two variant types in the library that defines
   the abstraction, so that the simulation engine and the trace recorder stay
   agnostic of any particular protocol. *)

type input = ..
type output = ..

(* Generic constructors useful for tests and simple examples. *)
type input += Tick_input | String_input of string
type output += String_output of string

let pp_input_hook : (Format.formatter -> input -> bool) list ref = ref []
let pp_output_hook : (Format.formatter -> output -> bool) list ref = ref []

(* Protocol libraries register printers for their own constructors; the
   generic printers below then work for any extension. *)
let register_input_pp f = pp_input_hook := f :: !pp_input_hook
let register_output_pp f = pp_output_hook := f :: !pp_output_hook

let pp_with hooks fallback ppf v =
  let rec try_hooks = function
    | [] -> Fmt.string ppf fallback
    | h :: rest -> if h ppf v then () else try_hooks rest
  in
  try_hooks hooks

let pp_input ppf = function
  | Tick_input -> Fmt.string ppf "tick"
  | String_input s -> Fmt.pf ppf "in:%s" s
  | i -> pp_with !pp_input_hook "<input>" ppf i

let pp_output ppf = function
  | String_output s -> Fmt.pf ppf "out:%s" s
  | o -> pp_with !pp_output_hook "<output>" ppf o
