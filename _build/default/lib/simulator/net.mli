(** Network delay models.

    The paper assumes reliable links in an asynchronous system: every
    message sent to a correct process is eventually received, with no bound
    on delay.  A delay model assigns every send a finite positive delay, so
    eventual delivery holds by construction; asynchrony and partitions are
    modelled as (finitely) large delays. *)

open Types

type delay_fn = src:proc_id -> dst:proc_id -> now:time -> rng:Rng.t -> int
(** Delay, in ticks, applied to a message sent now from [src] to [dst]. *)

val constant : int -> delay_fn
(** Every message takes exactly [d >= 1] ticks: one "communication step". *)

val uniform : min:int -> max:int -> delay_fn
(** Uniformly random delay in [\[min, max\]], [1 <= min <= max]. *)

val local_fast : remote:delay_fn -> delay_fn
(** Self-addressed messages take one tick; others follow [remote]. *)

type partition_spec = {
  blocks : proc_id list list;
  from_time : time;
  until_time : time;
}
(** A partition into [blocks] during [\[from_time, until_time)). *)

val block_of : partition_spec -> proc_id -> int option
val same_block : partition_spec -> proc_id -> proc_id -> bool

val partitioned : partition_spec -> base:delay_fn -> delay_fn
(** Cross-block messages sent during the partition are delivered only after
    it heals (plus their base delay); nothing is lost. *)

val slow_period :
  from_time:time -> until_time:time -> factor:int -> base:delay_fn -> delay_fn
(** Inflate delays by [factor] during a window — an asynchrony burst. *)

val partial_synchrony : gst:time -> bound:int -> chaos_max:int -> delay_fn
(** Dwork–Lynch–Stockmeyer partial synchrony: chaotic delays up to
    [chaos_max] before the global stabilization time [gst], all delays
    within [bound] afterwards. *)

val fifo : base:delay_fn -> unit -> delay_fn
(** A stateful wrapper making each ordered link FIFO: no message overtakes
    an earlier one.  The paper's links are reliable but not FIFO; use this
    to isolate ordering-dependence in experiments.  Stateful: create a
    fresh wrapper for every run, never share one across runs. *)

val delay_of :
  delay_fn -> src:proc_id -> dst:proc_id -> now:time -> rng:Rng.t -> int
(** Evaluate a model, clamping the result to at least 1 tick. *)
