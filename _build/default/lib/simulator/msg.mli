(** Network messages with an extensible payload type.

    Each protocol library defines its own payload constructors; the engine
    treats payloads opaquely.  Protocol components ignore payloads they do
    not recognize, which allows stacking several protocols on one node. *)

open Types

type payload = ..

type envelope = {
  src : proc_id;
  dst : proc_id;
  payload : payload;
  sent_at : time;
  uid : int;
}
(** A message in transit. [uid] is unique within a run. *)

val register_payload_pp : (Format.formatter -> payload -> bool) -> unit
(** Register a printer for an extension of {!payload}; it returns [true] if
    it handled the value. *)

val pp_payload : Format.formatter -> payload -> unit
val pp_envelope : Format.formatter -> envelope -> unit
