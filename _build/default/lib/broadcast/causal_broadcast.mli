(** Causal-order broadcast (vector-clock algorithm over reliable broadcast):
    deliveries at every process respect the happens-before order. *)

open Simulator
open Simulator.Types

type Msg.payload += Cb of { origin : proc_id; vc : Vector_clock.t; inner : Msg.payload }

type t

val create :
  Engine.ctx ->
  deliver:(origin:proc_id -> vc:Vector_clock.t -> Msg.payload -> unit) ->
  t * Engine.node
(** [deliver] fires once per broadcast message, in an order consistent with
    causality; the delivered [vc] is the broadcast's timestamp. *)

val broadcast : t -> Msg.payload -> unit

val clock : t -> Vector_clock.t
(** Current delivered-state vector clock. *)

val delivered_count : t -> int
val pending_count : t -> int
(** Messages currently held back waiting for causal predecessors. *)
