(* Reliable broadcast over reliable point-to-point links.

   Guarantees (for crash failures): validity (a correct broadcaster's message
   is delivered by every correct process), agreement (if any correct process
   delivers m, all correct processes deliver m — achieved by eager relaying
   on first receipt), integrity (no duplication, no creation).  This is the
   classical eager-push algorithm; it is the substrate under the "Send(m) to
   all" clauses of Algorithms 1 and 4 whenever uniformity matters. *)

open Simulator
open Simulator.Types

type Msg.payload += Rb of { origin : proc_id; sn : int; inner : Msg.payload }

type t = {
  ctx : Engine.ctx;
  mutable next_sn : int;
  seen : (proc_id * int, unit) Hashtbl.t;
  mutable delivered_count : int;
}

let create (ctx : Engine.ctx) ~deliver =
  let t = { ctx; next_sn = 0; seen = Hashtbl.create 64; delivered_count = 0 } in
  let handle ~relay origin sn inner =
    if not (Hashtbl.mem t.seen (origin, sn)) then begin
      Hashtbl.add t.seen (origin, sn) ();
      if relay then ctx.Engine.broadcast (Rb { origin; sn; inner });
      t.delivered_count <- t.delivered_count + 1;
      deliver ~origin ~sn inner
    end
  in
  let on_message ~src:_ payload =
    match payload with
    | Rb { origin; sn; inner } -> handle ~relay:true origin sn inner
    | _ -> ()
  in
  let node = { Engine.on_message; on_timer = (fun () -> ()); on_input = (fun _ -> ()) } in
  (t, node)

let broadcast t inner =
  let sn = t.next_sn in
  t.next_sn <- sn + 1;
  t.ctx.Engine.broadcast (Rb { origin = t.ctx.Engine.self; sn; inner })

let delivered_count t = t.delivered_count

let () =
  Msg.register_payload_pp (fun ppf -> function
    | Rb { origin; sn; inner } ->
      Fmt.pf ppf "rb(%a#%d,%a)" pp_proc origin sn Msg.pp_payload inner; true
    | _ -> false)
