lib/broadcast/causal_broadcast.mli: Engine Msg Simulator Vector_clock
