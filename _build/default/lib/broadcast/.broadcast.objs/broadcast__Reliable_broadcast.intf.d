lib/broadcast/reliable_broadcast.mli: Engine Msg Simulator
