lib/broadcast/reliable_broadcast.ml: Engine Fmt Hashtbl Msg Simulator
