lib/broadcast/vector_clock.mli: Format Simulator
