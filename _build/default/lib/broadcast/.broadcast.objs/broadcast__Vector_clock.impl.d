lib/broadcast/vector_clock.ml: Array Fmt Simulator
