lib/broadcast/causal_broadcast.ml: Engine Fmt List Msg Reliable_broadcast Simulator Vector_clock
