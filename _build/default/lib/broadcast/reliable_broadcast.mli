(** Reliable broadcast over reliable links (eager push with relaying):
    validity, agreement among correct processes, integrity. *)

open Simulator
open Simulator.Types

type Msg.payload += Rb of { origin : proc_id; sn : int; inner : Msg.payload }

type t

val create :
  Engine.ctx ->
  deliver:(origin:proc_id -> sn:int -> Msg.payload -> unit) ->
  t * Engine.node
(** The broadcast state and the protocol component to stack into the node.
    [deliver] fires exactly once per (origin, sn), including for the
    broadcaster's own messages. *)

val broadcast : t -> Msg.payload -> unit

val delivered_count : t -> int
