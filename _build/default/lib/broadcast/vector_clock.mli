(** Vector clocks: a mechanically checkable witness of the causal
    (happens-before) order on messages. *)

open Simulator.Types

type t

val zero : n:int -> t
val size : t -> int
val get : t -> proc_id -> int

val tick : t -> proc_id -> t
(** Increment the local component; pure. *)

val merge : t -> t -> t
(** Componentwise maximum (least upper bound). *)

val leq : t -> t -> bool
(** The causal partial order: [leq a b] iff [a.(i) <= b.(i)] for all [i]. *)

val equal : t -> t -> bool
val lt : t -> t -> bool
val concurrent : t -> t -> bool
(** Neither [leq a b] nor [leq b a]. *)

val compare_lex : t -> t -> int
(** A total order extending equality, for deterministic tie-breaks only — it
    does {e not} extend the causal order. *)

val sum : t -> int
val to_list : t -> int list
val of_list : int list -> t
val pp : Format.formatter -> t -> unit
