(** Consensus values: the multivalued domain used by every construction in
    the paper (binary flags for the lower bound, message sequences for
    Algorithm 1, value sequences for Algorithm 6). *)

type t =
  | Flag of bool
  | Num of int
  | Seq of App_msg.t list
  | Vec of t list

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val to_tag : t -> string
(** Embed a scalar ([Flag]/[Num]) value into a message tag, as the
    ETOB-to-EC transformation requires.  Raises [Invalid_argument] on
    [Seq]/[Vec]. *)

val of_tag : string -> t option
(** Partial inverse of {!to_tag}. *)
