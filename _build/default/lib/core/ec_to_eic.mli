(** Algorithm 6 (Appendix A): the transformation from EC to eventual
    irrevocable consensus. *)

open Simulator

type t

val create : Engine.ctx -> ec:Ec_intf.service -> t * Engine.node
val service : t -> Eic_intf.service

val decision_sequence : t -> Value.t list
(** The paper's [decision_i]. *)
