(* A leaderless ordering baseline — what you get WITHOUT Omega.

   Every process gossips its causality graph and outputs a deterministic
   linearization of everything it has seen (a fixed global tie-break inside
   the causal order, with no prefix constraint).  This is the classical
   "timestamp ordering" of optimistic replication: since all processes
   apply the same deterministic rule to converging graphs, their outputs
   converge once broadcasts stop.

   It is NOT an implementation of ETOB, and that is its purpose here: a
   message with a small tie-break key arriving late inserts itself in the
   MIDDLE of already-output sequences, so ETOB-Stability keeps being
   violated as long as new messages arrive — there is no time tau, fixed
   by the environment, after which outputs are prefix-monotone.  Contrast
   with Algorithm 5, whose tau is bounded by tau_Omega + Delta_t + Delta_c
   regardless of the workload (experiment E13).  The gap is exactly the
   information Omega provides. *)

open Simulator

type Msg.payload += Gossip_graph of Causal_graph.t

type t = {
  backend : Etob_intf.backend;
  tie_break : App_msg.t -> App_msg.t -> int;
  mutable cg : Causal_graph.t;
}

let output t =
  let seq = Causal_graph.linearize ~tie_break:t.tie_break t.cg ~prefix:[] in
  if seq <> Etob_intf.current_of t.backend then
    Etob_intf.set_delivered t.backend seq

let broadcast t m =
  Etob_intf.record_broadcast t.backend m;
  t.cg <- Causal_graph.add t.cg m;
  (Etob_intf.ctx_of t.backend).Engine.broadcast (Gossip_graph t.cg);
  output t

let create ?(tie_break = Causal_graph.default_tie_break) (ctx : Engine.ctx) =
  let t = { backend = Etob_intf.backend ctx; tie_break; cg = Causal_graph.empty } in
  let on_message ~src:_ payload =
    match payload with
    | Gossip_graph cg ->
      t.cg <- Causal_graph.union t.cg cg;
      output t
    | _ -> ()
  in
  let on_timer () =
    (* Periodic anti-entropy: keeps convergence independent of who
       broadcast last. *)
    if Causal_graph.size t.cg > 0 then
      (Etob_intf.ctx_of t.backend).Engine.broadcast (Gossip_graph t.cg)
  in
  let on_input = function
    | Etob_intf.Broadcast_etob m -> broadcast t m
    | _ -> ()
  in
  (t, { Engine.on_message; on_timer; on_input })

let service t = Etob_intf.service_of t.backend ~broadcast:(fun m -> broadcast t m)

let graph t = t.cg

let () =
  Msg.register_payload_pp (fun ppf -> function
    | Gossip_graph cg -> Fmt.pf ppf "gossip(%a)" Causal_graph.pp cg; true
    | _ -> false)
