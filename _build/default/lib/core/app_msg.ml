(* Application-level messages broadcast through (E)TOB.

   A message is identified by (origin, sn) — broadcast messages are assumed
   distinct in the paper, and this identification realizes the assumption.
   [deps] is the explicit causal-dependency set C(m) of Section 5: ids of
   messages that causally precede m according to its broadcaster.  [tag] is
   opaque application content. *)

open Simulator.Types

type id = proc_id * int

type t = {
  origin : proc_id;
  sn : int;
  tag : string;
  deps : id list;
}

let make ~origin ~sn ?(tag = "") ?(deps = []) () =
  if sn < 0 then invalid_arg "App_msg.make: negative sequence number";
  { origin; sn; tag; deps = List.sort_uniq compare deps }

let id m = (m.origin, m.sn)

let compare_id (a : id) (b : id) = compare a b

(* Messages are equal iff their ids are: content is determined by identity
   within a run. *)
let compare a b = compare_id (id a) (id b)
let equal a b = compare a b = 0

let pp_id ppf (p, sn) = Fmt.pf ppf "%a#%d" pp_proc p sn

let pp ppf m =
  if m.deps = [] then Fmt.pf ppf "%a" pp_id (id m)
  else Fmt.pf ppf "%a{<-%a}" pp_id (id m) (Fmt.list ~sep:Fmt.comma pp_id) m.deps

let pp_seq ppf ms = Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ";") pp) ms

module Id_set = Set.Make (struct
    type nonrec t = id
    let compare = compare_id
  end)

module Id_map = Map.Make (struct
    type nonrec t = id
    let compare = compare_id
  end)

let ids_of_seq ms = List.fold_left (fun acc m -> Id_set.add (id m) acc) Id_set.empty ms

(* [is_prefix a b]: sequence [a] is a prefix of sequence [b]. *)
let rec is_prefix a b =
  match a, b with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' -> equal x y && is_prefix a' b'
