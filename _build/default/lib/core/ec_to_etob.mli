(** Algorithm 1: the transformation from eventual consensus to eventual
    total order broadcast (first half of Theorem 1). *)

open Simulator

type Msg.payload += Push of App_msg.t

type t

val create : Engine.ctx -> ec:Ec_intf.service -> t * Engine.node
(** Build the transformation on top of a black-box EC service.  Stack the
    returned node together with the EC implementation's node. *)

val service : t -> Etob_intf.service

val pending_count : t -> int
(** |toDeliver_i \ d_i| upper bound: messages received so far. *)

val instance : t -> int
(** The paper's [count_i]: current EC instance. *)
