lib/core/etob_to_ec.mli: Ec_intf Engine Etob_intf Simulator Value
