lib/core/ec_intf.mli: Engine Io Simulator Value
