lib/core/app_msg.ml: Fmt List Map Set Simulator
