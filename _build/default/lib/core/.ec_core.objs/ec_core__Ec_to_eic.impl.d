lib/core/ec_to_eic.ml: Ec_intf Eic_intf Engine List Simulator Value
