lib/core/binary_lift.ml: Array Ec_intf Engine Fmt Hashtbl List Msg Simulator Value
