lib/core/eic_intf.mli: Engine Io Simulator Value
