lib/core/properties.mli: App_msg Failures Format Simulator Trace Value
