lib/core/commit_prefix.mli: App_msg Engine Etob_intf Io Msg Simulator
