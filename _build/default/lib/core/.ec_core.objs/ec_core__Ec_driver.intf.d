lib/core/ec_driver.mli: Ec_intf Engine Simulator Value
