lib/core/value.ml: App_msg Fmt List Option Stdlib String
