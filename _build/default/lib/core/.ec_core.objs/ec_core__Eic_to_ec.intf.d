lib/core/eic_to_ec.mli: Ec_intf Eic_intf Engine Simulator
