lib/core/etob_intf.mli: App_msg Engine Io Simulator
