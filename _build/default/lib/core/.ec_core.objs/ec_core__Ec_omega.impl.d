lib/core/ec_omega.ml: Array Ec_intf Engine Fmt Hashtbl Msg Simulator Value
