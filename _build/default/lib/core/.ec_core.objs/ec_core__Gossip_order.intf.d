lib/core/gossip_order.mli: App_msg Causal_graph Engine Etob_intf Msg Simulator
