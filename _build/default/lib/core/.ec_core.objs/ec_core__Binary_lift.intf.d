lib/core/binary_lift.mli: Ec_intf Engine Msg Simulator Value
