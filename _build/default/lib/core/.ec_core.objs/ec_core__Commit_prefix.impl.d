lib/core/commit_prefix.ml: App_msg Array Engine Etob_intf Fmt Io List Msg Simulator
