lib/core/ec_omega.mli: Ec_intf Engine Msg Simulator Value
