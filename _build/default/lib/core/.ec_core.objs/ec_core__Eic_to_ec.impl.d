lib/core/eic_to_ec.ml: Ec_intf Eic_intf Engine Simulator
