lib/core/ec_intf.ml: Engine Fmt Io List Listeners Simulator Value
