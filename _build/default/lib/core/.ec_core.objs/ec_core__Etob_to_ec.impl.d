lib/core/etob_to_ec.ml: App_msg Ec_intf Engine Etob_intf Printf Simulator String Value
