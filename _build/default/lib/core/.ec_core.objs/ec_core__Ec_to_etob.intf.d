lib/core/ec_to_etob.mli: App_msg Ec_intf Engine Etob_intf Msg Simulator
