lib/core/etob_omega.ml: App_msg Causal_graph Engine Etob_intf Fmt Msg Simulator
