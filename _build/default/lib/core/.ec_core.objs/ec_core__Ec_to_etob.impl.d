lib/core/ec_to_etob.ml: App_msg Ec_intf Engine Etob_intf Fmt Msg Set Simulator Value
