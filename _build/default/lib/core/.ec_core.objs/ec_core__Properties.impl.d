lib/core/properties.ml: App_msg Array Commit_prefix Ec_intf Eic_intf Etob_intf Failures Fmt Format Hashtbl List Option Simulator Trace Value
