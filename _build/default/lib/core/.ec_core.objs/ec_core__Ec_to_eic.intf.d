lib/core/ec_to_eic.mli: Ec_intf Eic_intf Engine Simulator Value
