lib/core/etob_omega.mli: App_msg Causal_graph Engine Etob_intf Msg Simulator
