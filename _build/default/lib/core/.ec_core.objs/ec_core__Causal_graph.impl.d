lib/core/causal_graph.ml: App_msg Fmt List
