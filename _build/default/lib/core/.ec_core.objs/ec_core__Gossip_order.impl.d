lib/core/gossip_order.ml: App_msg Causal_graph Engine Etob_intf Fmt Msg Simulator
