lib/core/value.mli: App_msg Format
