lib/core/app_msg.mli: Format Map Set Simulator
