lib/core/ec_driver.ml: Ec_intf Engine Simulator Value
