lib/core/etob_intf.ml: App_msg Engine Fmt Io List Listeners Simulator
