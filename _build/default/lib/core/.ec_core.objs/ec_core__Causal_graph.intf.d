lib/core/causal_graph.mli: App_msg Format
