lib/core/eic_intf.ml: Engine Fmt Io List Listeners Simulator Value
