(** Drives the EC usage assumption: propose instance 1 at startup and
    instance [j+1] as soon as instance [j] decides, up to [max_instance]. *)

open Simulator

type t

val attach :
  Ec_intf.service ->
  propose_value:(instance:int -> Value.t) ->
  max_instance:int ->
  t * Engine.node

val proposed_up_to : t -> int
