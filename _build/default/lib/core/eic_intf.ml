(* The eventual irrevocable consensus (EIC) abstraction (Appendix A).

   EIC relaxes EC-Integrity instead of EC-Agreement: a process may respond
   several times to proposeEIC_l (revoking earlier responses), but only for
   finitely many instances; the response "at time t" is the last response
   before t.  Appendix A proves EIC equivalent to EC (Theorem 3). *)

open Simulator

type Io.input += Propose_eic of { instance : int; value : Value.t }

type Io.output +=
  | Proposed_eic of { instance : int; value : Value.t }
  | Decide_eic of { instance : int; value : Value.t }
      (* May be emitted several times for one instance: each later emission
         revokes the earlier ones. *)

type decision = { instance : int; value : Value.t }

type service = {
  propose : instance:int -> Value.t -> unit;
  on_decide : (decision -> unit) -> unit;
  decided : unit -> decision list;  (* all responses, latest first *)
}

type backend = {
  ctx : Engine.ctx;
  listeners : decision Listeners.t;
  mutable decisions : decision list;
}

let backend ctx = { ctx; listeners = Listeners.create (); decisions = [] }

let ctx_of backend = backend.ctx

let record_proposal backend ~instance value =
  backend.ctx.Engine.output (Proposed_eic { instance; value })

let record_decision backend ~instance value =
  let d = { instance; value } in
  backend.decisions <- d :: backend.decisions;
  backend.ctx.Engine.output (Decide_eic { instance; value });
  Listeners.fire backend.listeners d

(* The current (i.e. last) response for an instance, if any. *)
let last_decision backend ~instance =
  List.find_opt (fun d -> d.instance = instance) backend.decisions

let service_of backend ~propose =
  { propose;
    on_decide = Listeners.register backend.listeners;
    decided = (fun () -> backend.decisions) }

let () =
  Io.register_input_pp (fun ppf -> function
    | Propose_eic { instance; value } ->
      Fmt.pf ppf "proposeEIC_%d(%a)" instance Value.pp value; true
    | _ -> false);
  Io.register_output_pp (fun ppf -> function
    | Proposed_eic { instance; value } ->
      Fmt.pf ppf "proposedEIC_%d(%a)" instance Value.pp value; true
    | Decide_eic { instance; value } ->
      Fmt.pf ppf "decideEIC_%d(%a)" instance Value.pp value; true
    | _ -> false)
