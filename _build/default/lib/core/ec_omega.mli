(** Algorithm 4 of the paper: eventual consensus from Omega, correct in any
    environment (Lemma 2) — no correct-majority assumption. *)

open Simulator
open Simulator.Types

type Msg.payload += Promote_ec of { value : Value.t; instance : int }

type t

val create :
  ?layer:string -> Engine.ctx -> omega:(unit -> proc_id) -> t * Engine.node
(** [omega] is the process's local Omega module (see
    {!Detectors.Omega.module_of} or {!Detectors.Omega_election.leader}). *)

val service : t -> Ec_intf.service

val current_instance : t -> int
(** The paper's [count_i]: index of the last instance invoked here. *)
