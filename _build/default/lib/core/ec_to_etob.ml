(* Algorithm 1 of the paper: the transformation T_{EC -> ETOB}.

   Broadcast: send push(m) to all; receivers accumulate messages in the set
   toDeliver_i.  The process repeatedly runs eventual consensus on its
   current best sequence: after the response d to instance l, it sets
   d_i := d and proposes d . NewBatch(d_i, toDeliver_i) to instance l+1,
   where NewBatch lists the received messages not yet in d_i.  Once EC
   agreement kicks in, all processes agree on the same linearly growing
   sequence, which yields ETOB (Theorem 1, first half). *)

open Simulator

type Msg.payload += Push of App_msg.t

module Msg_set = Set.Make (App_msg)

type t = {
  backend : Etob_intf.backend;
  ec : Ec_intf.service;
  mutable to_deliver : Msg_set.t;
  mutable count : int;
}

(* NewBatch(d_i, toDeliver_i): the received messages missing from d_i, as a
   deterministic sequence. *)
let new_batch t =
  let in_d = App_msg.ids_of_seq (Etob_intf.current_of t.backend) in
  Msg_set.elements
    (Msg_set.filter (fun m -> not (App_msg.Id_set.mem (App_msg.id m) in_d)) t.to_deliver)

let propose_next t =
  t.count <- t.count + 1;
  t.ec.Ec_intf.propose ~instance:t.count
    (Value.Seq (Etob_intf.current_of t.backend @ new_batch t))

let broadcast t m =
  Etob_intf.record_broadcast t.backend m;
  (Etob_intf.ctx_of t.backend).Engine.broadcast (Push m)

let create (ctx : Engine.ctx) ~ec =
  let t = { backend = Etob_intf.backend ctx; ec; to_deliver = Msg_set.empty; count = 0 } in
  ec.Ec_intf.on_decide (fun d ->
      if d.Ec_intf.instance = t.count then begin
        (match d.Ec_intf.value with
         | Value.Seq seq -> Etob_intf.set_delivered t.backend seq
         | Value.Flag _ | Value.Num _ | Value.Vec _ ->
           (* EC-Validity rules this out: only sequences are proposed. *)
           invalid_arg "Ec_to_etob: non-sequence value decided");
        propose_next t
      end);
  let on_message ~src:_ payload =
    match payload with
    | Push m -> t.to_deliver <- Msg_set.add m t.to_deliver
    | _ -> ()
  in
  let on_timer () = if t.count = 0 then propose_next t in
  let on_input = function
    | Etob_intf.Broadcast_etob m -> broadcast t m
    | _ -> ()
  in
  (t, { Engine.on_message; on_timer; on_input })

let service t = Etob_intf.service_of t.backend ~broadcast:(fun m -> broadcast t m)

let pending_count t = Msg_set.cardinal t.to_deliver
let instance t = t.count

let () =
  Msg.register_payload_pp (fun ppf -> function
    | Push m -> Fmt.pf ppf "push(%a)" App_msg.pp m; true
    | _ -> false)
