(** Multivalued eventual consensus from binary eventual consensus — the
    lift the paper invokes in Section 3 ("straightforward to transform the
    binary version of EC into a multivalued one [23]").  One binary EC
    instance per proposer slot, consumed in the same global order at every
    process; candidates travel by reliable broadcast. *)

open Simulator
open Simulator.Types

type Msg.payload +=
  | Candidate of { instance : int; proposer : proc_id; value : Value.t }

type t

val create : Engine.ctx -> binary:Ec_intf.service -> t * Engine.node
(** Build the lift over a black-box {e binary} EC service (e.g. Algorithm 4
    restricted to [Flag] values, with layer ["ec-inner"]); the lift itself
    exposes a multivalued {!Ec_intf.service} on the default layer. *)

val service : t -> Ec_intf.service
