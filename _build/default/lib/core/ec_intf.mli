(** The eventual consensus (EC) abstraction: interface conventions shared by
    all EC implementations and transformations (Section 3 of the paper). *)

open Simulator

type Io.input += Propose_ec of { instance : int; value : Value.t }
(** External invocation of [proposeEC_instance(value)]. *)

type Io.output +=
  | Proposed_ec of { layer : string; instance : int; value : Value.t }
      (** Recorded by the service on every proposal — the input history
          [H_I] seen by the property checkers.  [layer] distinguishes
          stacked EC instances within one process. *)
  | Decide_ec of { layer : string; instance : int; value : Value.t }
      (** A response of [proposeEC_instance]. *)

type decision = { instance : int; value : Value.t }

val default_layer : string

type service = {
  propose : instance:int -> Value.t -> unit;
  on_decide : (decision -> unit) -> unit;
  decided : unit -> decision list;
}
(** The handle protocols stack on: propose and observe decisions. *)

(** {2 Implementation plumbing} *)

type backend

val backend : ?layer:string -> Engine.ctx -> backend
val ctx_of : backend -> Engine.ctx

val record_proposal : backend -> instance:int -> Value.t -> unit
val record_decision : backend -> instance:int -> Value.t -> unit
val has_decided : backend -> instance:int -> bool
val service_of : backend -> propose:(instance:int -> Value.t -> unit) -> service
