(* Multivalued eventual consensus from binary eventual consensus.

   Section 3 of the paper: "It is straightforward to transform the binary
   version of EC into a multivalued one with unbounded set of inputs [23]".
   This module is that transformation (in the style of Mostefaoui, Raynal
   and Tronel), which matters for the reproduction because the lower-bound
   machinery of Section 4 works on the *binary* abstraction while the
   replication stack consumes the multivalued one.

   For multivalued instance L over n processes:

   - every process broadcasts its candidate value, tagged (L, proposer);
     candidates are relayed on first receipt (reliable broadcast), so all
     correct processes eventually hold every candidate that matters;
   - the processes run one binary EC instance per proposer slot
     j = 0..n-1 (flattened into the underlying service's instance space,
     in the same order at every process), proposing "true" for slot j iff
     p_j's candidate has been received;
   - the multivalued decision is the candidate of the smallest slot whose
     binary instance returned true; a true slot whose candidate is still
     in flight is waited out (binary EC-Validity guarantees someone held
     it, and relaying delivers it);
   - if every slot returns false — possible only while the underlying
     binary EC still disagrees, i.e. before its agreement index — the
     process falls back to the smallest-proposer candidate it holds (its
     own at worst).  EC-Agreement is not yet required for such instances,
     and EC-Validity still holds since candidates are proposals.

   Once the underlying binary EC agrees, all correct processes see the same
   slot pattern, the pattern contains a true slot (every process proposes
   true for its own slot), and the same smallest winner is chosen: the lift
   preserves eventual agreement, and termination never blocks. *)

open Simulator
open Simulator.Types

type Msg.payload +=
  | Candidate of { instance : int; proposer : proc_id; value : Value.t }

type pending = {
  p_instance : int;
  mutable p_decided : bool;
}

type t = {
  backend : Ec_intf.backend;
  binary : Ec_intf.service;
  candidates : (int * proc_id, Value.t) Hashtbl.t;  (* (instance, proposer) *)
  results : (int, bool option array) Hashtbl.t;  (* flat base -> slot outcomes *)
  mutable pendings : pending list;
  mutable relayed : (int * proc_id) list;
  (* The global proposal cursor: every process proposes the flat binary
     instances 1, 2, 3, ... in this one order, never skipping a slot even
     after its multivalued instance has decided.  This keeps the underlying
     EC's usage assumption intact at every process, and guarantees that the
     eventual leader proposes every binary instance anyone ever waits on. *)
  mutable cursor : int;  (* next flat index (0-based) to propose *)
  mutable invoked_upto : int;  (* highest multivalued instance invoked here *)
}

let ctx t = Ec_intf.ctx_of t.backend
let n t = (ctx t).Engine.n

(* The same flat binary-instance numbering at every process: instance L
   occupies slots (L-1)*n + 1 .. L*n of the underlying service. *)
let flat_base t pending = (pending.p_instance - 1) * n t

let instance_of_flat t flat = (flat / n t) + 1
let slot_of_flat t flat = flat mod n t

let results_for t base =
  match Hashtbl.find_opt t.results base with
  | Some r -> r
  | None ->
    let r = Array.make (n t) None in
    Hashtbl.replace t.results base r;
    r

let decide t pending value =
  pending.p_decided <- true;
  Ec_intf.record_decision t.backend ~instance:pending.p_instance value

let try_finish t pending =
  if not pending.p_decided then begin
    let results = results_for t (flat_base t pending) in
    (* The smallest true slot wins; wait if its candidate is in flight. *)
    let rec scan j =
      if j >= n t then begin
        (* Every slot resolved false: pre-agreement fallback. *)
        let rec fallback j =
          if j < n t then
            match Hashtbl.find_opt t.candidates (pending.p_instance, j) with
            | Some v -> decide t pending v
            | None -> fallback (j + 1)
        in
        fallback 0
      end
      else
        match results.(j) with
        | None -> ()  (* still undecided: keep waiting *)
        | Some true ->
          (match Hashtbl.find_opt t.candidates (pending.p_instance, j) with
           | Some v -> decide t pending v
           | None -> () (* candidate in flight *))
        | Some false -> scan (j + 1)
    in
    scan 0
  end

(* Propose the cursor's binary instance if its multivalued instance has
   been invoked here (the cursor only waits for the application to catch
   up, never for other processes). *)
let advance_cursor t =
  let flat = t.cursor in
  if instance_of_flat t flat <= t.invoked_upto then
    t.binary.Ec_intf.propose ~instance:(flat + 1)
      (Value.Flag
         (Hashtbl.mem t.candidates (instance_of_flat t flat, slot_of_flat t flat)))

let on_binary_decide t (d : Ec_intf.decision) =
  let flat = d.Ec_intf.instance - 1 in
  let outcome = match d.Ec_intf.value with Value.Flag b -> b | _ -> false in
  let results = results_for t ((flat / n t) * n t) in
  results.(slot_of_flat t flat) <- Some outcome;
  if flat = t.cursor then begin
    t.cursor <- t.cursor + 1;
    advance_cursor t
  end;
  List.iter (fun pending -> try_finish t pending) t.pendings

let propose t ~instance value =
  if instance < 1 then invalid_arg "Binary_lift.propose: instances start at 1";
  Ec_intf.record_proposal t.backend ~instance value;
  let self = (ctx t).Engine.self in
  Hashtbl.replace t.candidates (instance, self) value;
  (ctx t).Engine.broadcast (Candidate { instance; proposer = self; value });
  let pending = { p_instance = instance; p_decided = false } in
  t.pendings <- pending :: t.pendings;
  t.invoked_upto <- max t.invoked_upto instance;
  if t.cursor = (instance - 1) * n t then advance_cursor t

let create (c : Engine.ctx) ~binary =
  let t =
    { backend = Ec_intf.backend c;
      binary;
      candidates = Hashtbl.create 64;
      results = Hashtbl.create 32;
      pendings = [];
      relayed = [];
      cursor = 0;
      invoked_upto = 0 }
  in
  binary.Ec_intf.on_decide (on_binary_decide t);
  let on_message ~src:_ payload =
    match payload with
    | Candidate { instance; proposer; value } ->
      if not (Hashtbl.mem t.candidates (instance, proposer)) then begin
        Hashtbl.replace t.candidates (instance, proposer) value;
        (* Eager relay: candidates reach everyone even if the proposer
           crashes mid-broadcast. *)
        if not (List.mem (instance, proposer) t.relayed) then begin
          t.relayed <- (instance, proposer) :: t.relayed;
          c.Engine.broadcast (Candidate { instance; proposer; value })
        end;
        (* A late candidate can unblock a true slot. *)
        List.iter (fun pending -> try_finish t pending) t.pendings
      end
    | _ -> ()
  in
  let on_input = function
    | Ec_intf.Propose_ec { instance; value } -> propose t ~instance value
    | _ -> ()
  in
  (t, { Engine.on_message; on_timer = (fun () -> ()); on_input })

let service t = Ec_intf.service_of t.backend ~propose:(fun ~instance v -> propose t ~instance v)

let () =
  Msg.register_payload_pp (fun ppf -> function
    | Candidate { instance; proposer; value } ->
      Fmt.pf ppf "cand(%d,%a,%a)" instance pp_proc proposer Value.pp value; true
    | _ -> false)
