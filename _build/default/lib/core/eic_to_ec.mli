(** Algorithm 7 (Appendix A): the transformation from eventual irrevocable
    consensus back to EC (only the first response per instance counts). *)

open Simulator

type t

val create :
  ?layer:string -> Engine.ctx -> eic:Eic_intf.service -> t * Engine.node
val service : t -> Ec_intf.service

val instance : t -> int
(** The paper's [count_i]. *)
