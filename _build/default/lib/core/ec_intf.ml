(* The eventual consensus (EC) abstraction: interface conventions.

   EC exports operations proposeEC_1, proposeEC_2, ... taking values and
   returning responses such that, in every admissible run, there is a k with
   (Section 3):
   - EC-Termination: every correct process eventually responds to every
     proposeEC_j;
   - EC-Integrity: no process responds twice to proposeEC_j;
   - EC-Validity: every value returned to proposeEC_j was proposed to it;
   - EC-Agreement: no two processes return different values to proposeEC_j
     for j >= k.

   Implementations record each proposal and each decision in the run's
   output history, so that the checkers in [Properties] can verify all four
   clauses from the trace alone. *)

open Simulator

type Io.input += Propose_ec of { instance : int; value : Value.t }

(* [layer] distinguishes stacked EC instances in one process (e.g. the
   Algorithm-4 substrate underneath Algorithm 1 underneath Algorithm 2):
   checkers analyse one layer at a time. *)
type Io.output +=
  | Proposed_ec of { layer : string; instance : int; value : Value.t }
  | Decide_ec of { layer : string; instance : int; value : Value.t }

type decision = { instance : int; value : Value.t }

let default_layer = "ec"

type service = {
  propose : instance:int -> Value.t -> unit;
  (* Register an observer of decisions; fires once per decided instance. *)
  on_decide : (decision -> unit) -> unit;
  decided : unit -> decision list;  (* all decisions so far, latest first *)
}

(* Shared plumbing for EC implementations: records the proposal/decision
   output history and drives observers. *)
type backend = {
  ctx : Engine.ctx;
  layer : string;
  listeners : decision Listeners.t;
  mutable decisions : decision list;
}

let backend ?(layer = default_layer) ctx =
  { ctx; layer; listeners = Listeners.create (); decisions = [] }

let ctx_of backend = backend.ctx

let record_proposal backend ~instance value =
  backend.ctx.Engine.output (Proposed_ec { layer = backend.layer; instance; value })

let record_decision backend ~instance value =
  let d = { instance; value } in
  backend.decisions <- d :: backend.decisions;
  backend.ctx.Engine.output (Decide_ec { layer = backend.layer; instance; value });
  Listeners.fire backend.listeners d

let has_decided backend ~instance =
  List.exists (fun d -> d.instance = instance) backend.decisions

let service_of backend ~propose =
  { propose;
    on_decide = Listeners.register backend.listeners;
    decided = (fun () -> backend.decisions) }

let () =
  Io.register_input_pp (fun ppf -> function
    | Propose_ec { instance; value } ->
      Fmt.pf ppf "proposeEC_%d(%a)" instance Value.pp value; true
    | _ -> false);
  Io.register_output_pp (fun ppf -> function
    | Proposed_ec { layer; instance; value } ->
      Fmt.pf ppf "%s:proposedEC_%d(%a)" layer instance Value.pp value; true
    | Decide_ec { layer; instance; value } ->
      Fmt.pf ppf "%s:decideEC_%d(%a)" layer instance Value.pp value; true
    | _ -> false)
