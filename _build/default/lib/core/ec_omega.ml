(* Algorithm 4 of the paper: eventual consensus using Omega, correct in ANY
   environment (Lemma 2) — no correct majority needed.

   Upon proposeEC_l(v), broadcast promote(v, l).  Store every received value
   in received[j][l].  On every local timeout, if a value from the process
   currently trusted by Omega is available for the current instance, decide
   it.  Once Omega stabilizes on a single correct leader, all processes
   decide the leader's proposals, which yields EC-Agreement for all
   instances started after stabilization. *)

open Simulator
open Simulator.Types

type Msg.payload += Promote_ec of { value : Value.t; instance : int }

type t = {
  backend : Ec_intf.backend;
  omega : unit -> proc_id;
  (* received.(j) maps instance -> value promoted by p_j. *)
  received : (int, Value.t) Hashtbl.t array;
  mutable count : int;  (* index of the last instance invoked here *)
}

let try_decide t =
  if t.count > 0 && not (Ec_intf.has_decided t.backend ~instance:t.count) then begin
    let leader = t.omega () in
    match Hashtbl.find_opt t.received.(leader) t.count with
    | None -> ()
    | Some v -> Ec_intf.record_decision t.backend ~instance:t.count v
  end

let propose t ~instance value =
  if instance < 1 then invalid_arg "Ec_omega.propose: instances start at 1";
  t.count <- instance;
  Ec_intf.record_proposal t.backend ~instance value;
  (Ec_intf.ctx_of t.backend).Engine.broadcast (Promote_ec { value; instance });
  (* The paper's "local time out" clause is a guard evaluated repeatedly; we
     additionally evaluate it at every event so a decision is never delayed
     past its enabling. *)
  try_decide t

let create ?layer (ctx : Engine.ctx) ~omega =
  let t =
    { backend = Ec_intf.backend ?layer ctx;
      omega;
      received = Array.init ctx.Engine.n (fun _ -> Hashtbl.create 16);
      count = 0 }
  in
  let on_message ~src payload =
    match payload with
    | Promote_ec { value; instance } ->
      (* p_j sends promote at most once per instance, so first write wins. *)
      if not (Hashtbl.mem t.received.(src) instance) then
        Hashtbl.add t.received.(src) instance value;
      try_decide t
    | _ -> ()
  in
  let on_input = function
    | Ec_intf.Propose_ec { instance; value } -> propose t ~instance value
    | _ -> ()
  in
  let node = { Engine.on_message; on_timer = (fun () -> try_decide t); on_input } in
  (t, node)

let service t = Ec_intf.service_of t.backend ~propose:(fun ~instance v -> propose t ~instance v)

let current_instance t = t.count

let () =
  Msg.register_payload_pp (fun ppf -> function
    | Promote_ec { value; instance } ->
      Fmt.pf ppf "promote(%a,%d)" Value.pp value instance; true
    | _ -> false)
