(* Drives the EC usage assumption of Section 3: every process invokes
   proposeEC_j as soon as it returns a response to proposeEC_{j-1}.

   The driver proposes instance 1 on the process's first local timeout and
   instance j+1 as soon as instance j decides, with values drawn from a
   caller-supplied function (the "application").  Used by tests and benches
   that exercise a bare EC implementation; the EC-to-ETOB transformation has
   its own proposing discipline and does not use the driver. *)

open Simulator

type t = {
  service : Ec_intf.service;
  propose_value : instance:int -> Value.t;
  max_instance : int;
  mutable proposed_up_to : int;
}

let propose_next t =
  let next = t.proposed_up_to + 1 in
  if next <= t.max_instance then begin
    t.proposed_up_to <- next;
    t.service.Ec_intf.propose ~instance:next (t.propose_value ~instance:next)
  end

let attach service ~propose_value ~max_instance =
  if max_instance < 1 then invalid_arg "Ec_driver.attach: max_instance must be >= 1";
  let t = { service; propose_value; max_instance; proposed_up_to = 0 } in
  service.Ec_intf.on_decide (fun d ->
      if d.Ec_intf.instance = t.proposed_up_to then propose_next t);
  let on_timer () = if t.proposed_up_to = 0 then propose_next t in
  let node =
    { Engine.on_message = (fun ~src:_ _ -> ());
      on_timer;
      on_input = (fun _ -> ()) }
  in
  (t, node)

let proposed_up_to t = t.proposed_up_to
