(** A leaderless timestamp-ordering baseline (no Omega): outputs converge
    once broadcasts stop, but ETOB-Stability is violated for as long as new
    messages arrive — there is no environment-bounded tau.  A negative
    baseline making the information content of Omega visible (E13). *)

open Simulator

type Msg.payload += Gossip_graph of Causal_graph.t

type t

val create :
  ?tie_break:(App_msg.t -> App_msg.t -> int) -> Engine.ctx -> t * Engine.node

val service : t -> Etob_intf.service
val graph : t -> Causal_graph.t
