(** The eventual irrevocable consensus (EIC) abstraction (Appendix A):
    EC with eventual integrity instead of eventual agreement — responses may
    be revoked, but only finitely often. *)

open Simulator

type Io.input += Propose_eic of { instance : int; value : Value.t }

type Io.output +=
  | Proposed_eic of { instance : int; value : Value.t }
  | Decide_eic of { instance : int; value : Value.t }
      (** May repeat per instance: each emission revokes earlier ones. *)

type decision = { instance : int; value : Value.t }

type service = {
  propose : instance:int -> Value.t -> unit;
  on_decide : (decision -> unit) -> unit;
  decided : unit -> decision list;
}

(** {2 Implementation plumbing} *)

type backend

val backend : Engine.ctx -> backend
val ctx_of : backend -> Engine.ctx
val record_proposal : backend -> instance:int -> Value.t -> unit
val record_decision : backend -> instance:int -> Value.t -> unit
val last_decision : backend -> instance:int -> decision option
val service_of : backend -> propose:(instance:int -> Value.t -> unit) -> service
