(* Algorithm 6 (Appendix A): the transformation T_{EC -> EIC}.

   proposeEIC_l(v) proposes the sequence decision_i . v to EC instance l.
   When EC instance l responds with a sequence, every component that differs
   from the locally recorded one is (re-)decided — revocations happen only
   while EC disagrees, hence finitely often (Lemma 4). *)

open Simulator

type t = {
  backend : Eic_intf.backend;
  ec : Ec_intf.service;
  mutable decision : Value.t list;  (* decision_i, index k-1 <-> instance k *)
}

let propose t ~instance value =
  if instance < 1 then invalid_arg "Ec_to_eic.propose: instances start at 1";
  Eic_intf.record_proposal t.backend ~instance value;
  t.ec.Ec_intf.propose ~instance (Value.Vec (t.decision @ [ value ]))

let on_ec_decide t (d : Ec_intf.decision) =
  match d.Ec_intf.value with
  | Value.Vec decision ->
    (* Commit the new decision sequence before firing responses: a response
       listener may immediately invoke the next proposeEIC, which must read
       the up-to-date decision_i. *)
    let known = t.decision in
    t.decision <- decision;
    List.iteri
      (fun idx v ->
         let instance = idx + 1 in
         let changed =
           match List.nth_opt known idx with
           | None -> true
           | Some v0 -> not (Value.equal v0 v)
         in
         if changed then Eic_intf.record_decision t.backend ~instance v)
      decision
  | Value.Flag _ | Value.Num _ | Value.Seq _ ->
    (* EC-Validity rules this out: only Vec values are proposed. *)
    invalid_arg "Ec_to_eic: non-sequence value decided"

let create (ctx : Engine.ctx) ~ec =
  let t = { backend = Eic_intf.backend ctx; ec; decision = [] } in
  ec.Ec_intf.on_decide (on_ec_decide t);
  let on_input = function
    | Eic_intf.Propose_eic { instance; value } -> propose t ~instance value
    | _ -> ()
  in
  let node =
    { Engine.on_message = (fun ~src:_ _ -> ());
      on_timer = (fun () -> ());
      on_input }
  in
  (t, node)

let service t = Eic_intf.service_of t.backend ~propose:(fun ~instance v -> propose t ~instance v)

let decision_sequence t = t.decision
