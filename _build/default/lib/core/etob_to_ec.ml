(* Algorithm 2 of the paper: the transformation T_{ETOB -> EC} (second half
   of Theorem 1).

   proposeEC_l(v) broadcasts the pair (l, v) through the black-box ETOB
   service.  The first message carrying instance l in the delivered sequence
   d_i determines the response to instance l: once ETOB stabilizes, all
   processes see the same first such message and agree. *)

open Simulator

type t = {
  backend : Ec_intf.backend;
  etob : Etob_intf.service;
  mutable count : int;
}

let tag_of ~instance value = Printf.sprintf "ec2:%d:%s" instance (Value.to_tag value)

let parse_tag tag =
  match String.split_on_char ':' tag with
  | "ec2" :: inst :: rest ->
    let body = String.concat ":" rest in
    (match int_of_string_opt inst, Value.of_tag body with
     | Some l, Some v -> Some (l, v)
     | _, _ -> None)
  | _ -> None

(* First(l): the value v of the first message of the form (l, v) in d_i. *)
let first t instance =
  let rec scan = function
    | [] -> None
    | m :: rest ->
      (match parse_tag m.App_msg.tag with
       | Some (l, v) when l = instance -> Some v
       | Some _ | None -> scan rest)
  in
  scan (t.etob.Etob_intf.current ())

let try_decide t =
  if t.count > 0 && not (Ec_intf.has_decided t.backend ~instance:t.count) then
    match first t t.count with
    | None -> ()
    | Some v -> Ec_intf.record_decision t.backend ~instance:t.count v

let propose t ~instance value =
  if instance < 1 then invalid_arg "Etob_to_ec.propose: instances start at 1";
  t.count <- instance;
  Ec_intf.record_proposal t.backend ~instance value;
  let m = t.etob.Etob_intf.fresh_msg ~tag:(tag_of ~instance value) () in
  t.etob.Etob_intf.broadcast m;
  try_decide t

let create ?layer (ctx : Engine.ctx) ~etob =
  let t = { backend = Ec_intf.backend ?layer ctx; etob; count = 0 } in
  etob.Etob_intf.on_deliver (fun _seq -> try_decide t);
  let on_input = function
    | Ec_intf.Propose_ec { instance; value } -> propose t ~instance value
    | _ -> ()
  in
  let node =
    { Engine.on_message = (fun ~src:_ _ -> ());
      on_timer = (fun () -> try_decide t);
      on_input }
  in
  (t, node)

let service t = Ec_intf.service_of t.backend ~propose:(fun ~instance v -> propose t ~instance v)

let instance t = t.count
