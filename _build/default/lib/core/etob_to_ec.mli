(** Algorithm 2: the transformation from eventual total order broadcast to
    eventual consensus (second half of Theorem 1).  Values must be scalar
    ([Flag]/[Num]) since they are embedded in message tags. *)

open Simulator

type t

val create :
  ?layer:string -> Engine.ctx -> etob:Etob_intf.service -> t * Engine.node
(** Build the transformation over a black-box ETOB service; stack the
    returned node with the ETOB implementation's node. *)

val service : t -> Ec_intf.service

val instance : t -> int
(** The paper's [count_i]. *)

(**/**)

val tag_of : instance:int -> Value.t -> string
val parse_tag : string -> (int * Value.t) option
