(* Algorithm 7 (Appendix A): the transformation T_{EIC -> EC}.

   proposeEC_l(v) simply invokes proposeEIC_l(v); only the FIRST EIC response
   for the current instance becomes the EC response (later revocations are
   ignored), which restores EC-Integrity (Lemma 5). *)

open Simulator

type t = {
  backend : Ec_intf.backend;
  eic : Eic_intf.service;
  mutable count : int;
}

let propose t ~instance value =
  if instance < 1 then invalid_arg "Eic_to_ec.propose: instances start at 1";
  t.count <- instance;
  Ec_intf.record_proposal t.backend ~instance value;
  t.eic.Eic_intf.propose ~instance value

let create ?layer (ctx : Engine.ctx) ~eic =
  let t = { backend = Ec_intf.backend ?layer ctx; eic; count = 0 } in
  eic.Eic_intf.on_decide (fun (d : Eic_intf.decision) ->
      if d.Eic_intf.instance = t.count
      && not (Ec_intf.has_decided t.backend ~instance:t.count)
      then Ec_intf.record_decision t.backend ~instance:t.count d.Eic_intf.value);
  let on_input = function
    | Ec_intf.Propose_ec { instance; value } -> propose t ~instance value
    | _ -> ()
  in
  let node =
    { Engine.on_message = (fun ~src:_ _ -> ());
      on_timer = (fun () -> ());
      on_input }
  in
  (t, node)

let service t = Ec_intf.service_of t.backend ~propose:(fun ~instance v -> propose t ~instance v)

let instance t = t.count
