(** Algorithm 5 of the paper: eventual total order broadcast directly from
    Omega, in any environment (Lemma 3).  Two communication steps per
    delivery under a stable leader; full TOB if Omega is stable from the
    start; causal order at all times. *)

open Simulator
open Simulator.Types

type Msg.payload +=
  | Update of Causal_graph.t
  | Promote_seq of App_msg.t list

type t

val create :
  ?tie_break:(App_msg.t -> App_msg.t -> int) ->
  ?stale_guard:bool ->
  Engine.ctx ->
  omega:(unit -> proc_id) ->
  t * Engine.node
(** [tie_break] selects among the valid UpdatePromote linearizations; any
    choice is correct (ablated in the benchmarks).  [stale_guard] (default
    true) ignores a promote that is a proper prefix of the current output —
    an older promotion reordered by the (non-FIFO) links; disabling it is
    only for the ablation that shows claim (P2) needs it. *)

val service : t -> Etob_intf.service

val graph : t -> Causal_graph.t
(** The current causality graph [CG_i]. *)

val promotion : t -> App_msg.t list
(** The current promotion sequence [promote_i]. *)

val stats : t -> int * int * int
(** (updates handled, promotes sent, promotes adopted). *)
