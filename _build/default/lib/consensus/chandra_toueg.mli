(** Chandra–Toueg rotating-coordinator consensus over [<>S] with a correct
    majority: one instance of (strong) consensus, the classical algorithm
    whose weakest-detector analysis the paper's Section 4 generalizes. *)

open Simulator
open Simulator.Types

type Msg.payload +=
  | Ct_estimate of { round : int; value : Ec_core.Value.t; stamp : int }
  | Ct_proposal of { round : int; value : Ec_core.Value.t }
  | Ct_ack of { round : int }
  | Ct_nack of { round : int }
  | Ct_decide of Ec_core.Value.t

type Io.input += Ct_propose of Ec_core.Value.t
type Io.output += Ct_decided of Ec_core.Value.t

type t

val create :
  Engine.ctx -> suspects:(unit -> proc_id list) -> t * Engine.node
(** [suspects] is the process's local [<>S] module (see
    {!Detectors.Suspicions.es_module_of}). *)

val decided : t -> Ec_core.Value.t option
val round : t -> int
(** The current asynchronous round (diagnostics). *)
