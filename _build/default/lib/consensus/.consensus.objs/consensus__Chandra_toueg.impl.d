lib/consensus/chandra_toueg.ml: Ec_core Engine Fmt Hashtbl Int Io List Msg Option Simulator
