lib/consensus/paxos_tob.mli: App_msg Ec_core Engine Msg Simulator
