lib/consensus/paxos_tob.ml: App_msg Ec_core Engine Etob_intf Fmt Hashtbl Int List Msg Set Simulator
