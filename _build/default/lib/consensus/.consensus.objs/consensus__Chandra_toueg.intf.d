lib/consensus/chandra_toueg.mli: Ec_core Engine Io Msg Simulator
