(* Chandra–Toueg rotating-coordinator consensus over <>S with a correct
   majority — the classical algorithm whose weakest-detector analysis
   (CHT [2]) the paper generalizes in Section 4.

   One instance of (strong) consensus proceeds in asynchronous rounds.  In
   round r with coordinator c = r mod n:

   - phase 1: every process sends its current estimate, stamped with the
     round in which it was last updated, to c;
   - phase 2: c, on a majority of estimates, adopts the one with the
     highest stamp and proposes it to all;
   - phase 3: a process either adopts the proposal (stamping it with r and
     acking c) or, if its <>S module suspects c, nacks and moves on; either
     way it enters round r+1;
   - phase 4: c, on a majority of acks, decides and reliably broadcasts
     the decision (eager relay on first receipt).

   Safety is the usual locking argument: a decided value was adopted by a
   majority in some round, so every later coordinator's majority of
   estimates contains it with the highest stamp.  Liveness follows from
   eventual weak accuracy: once some correct process is never suspected,
   the first round it coordinates after stabilization decides. *)

open Simulator
open Simulator.Types

type Msg.payload +=
  | Ct_estimate of { round : int; value : Ec_core.Value.t; stamp : int }
  | Ct_proposal of { round : int; value : Ec_core.Value.t }
  | Ct_ack of { round : int }
  | Ct_nack of { round : int }
  | Ct_decide of Ec_core.Value.t

type Io.input += Ct_propose of Ec_core.Value.t
type Io.output += Ct_decided of Ec_core.Value.t

type t = {
  ctx : Engine.ctx;
  suspects : unit -> proc_id list;
  majority : int;
  mutable started : bool;
  mutable round : int;
  mutable estimate : Ec_core.Value.t option;
  mutable stamp : int;
  mutable awaiting_proposal : bool;
  mutable decided : Ec_core.Value.t option;
  (* Coordinator bookkeeping, per round we coordinate. *)
  estimates : (int, (proc_id * Ec_core.Value.t * int) list) Hashtbl.t;
  proposals : (int, Ec_core.Value.t) Hashtbl.t;
  acks : (int, Int.t list) Hashtbl.t;
  (* Proposals received for ANY round, adopted when we reach that round: a
     proposal is broadcast once, so a process that enters the round after
     the broadcast has passed would otherwise wait on a correct, never
     suspected coordinator forever. *)
  proposals_seen : (int, Ec_core.Value.t) Hashtbl.t;
  mutable decide_relayed : bool;
}

let coordinator t round = round mod t.ctx.Engine.n

let decided t = t.decided
let round t = t.round

let decide t value =
  if t.decided = None then begin
    t.decided <- Some value;
    t.ctx.Engine.output (Ct_decided value)
  end;
  if not t.decide_relayed then begin
    (* Eager relay: reliable broadcast of the decision. *)
    t.decide_relayed <- true;
    t.ctx.Engine.broadcast (Ct_decide value)
  end

(* Phase 3, adoption side: take the current round's proposal if we have
   seen it (now or earlier), ack, and move on. *)
let rec maybe_adopt t =
  if t.awaiting_proposal && t.decided = None then
    match Hashtbl.find_opt t.proposals_seen t.round with
    | None -> ()
    | Some value ->
      let round = t.round in
      t.awaiting_proposal <- false;
      t.estimate <- Some value;
      t.stamp <- round;
      t.ctx.Engine.send (coordinator t round) (Ct_ack { round });
      enter_round t (round + 1)

and enter_round t round =
  match t.estimate with
  | None -> ()
  | Some estimate ->
    t.round <- round;
    t.awaiting_proposal <- true;
    t.ctx.Engine.send (coordinator t round)
      (Ct_estimate { round; value = estimate; stamp = t.stamp });
    maybe_adopt t

let start t value =
  if not t.started then begin
    t.started <- true;
    t.estimate <- Some value;
    (* The initial estimate keeps stamp -1: it must rank strictly below a
       value adopted in round 0 (stamp 0), or the coordinator's
       highest-stamp rule cannot tell a locked round-0 value from a fresh
       one and agreement breaks. *)
    t.stamp <- -1;
    enter_round t 0
  end

(* Phase 2 at the coordinator: on a majority of estimates for a round we
   have not yet proposed in, propose the highest-stamped one. *)
let try_propose t round =
  if not (Hashtbl.mem t.proposals round) then
    match Hashtbl.find_opt t.estimates round with
    | Some received when List.length received >= t.majority ->
      let _, best, _ =
        List.fold_left
          (fun ((_, _, best_stamp) as best) ((_, _, stamp) as cand) ->
             if stamp > best_stamp then cand else best)
          (List.hd received) (List.tl received)
      in
      Hashtbl.replace t.proposals round best;
      t.ctx.Engine.broadcast (Ct_proposal { round; value = best })
    | Some _ | None -> ()

let on_message t ~src payload =
  match payload with
  | Ct_estimate { round; value; stamp } ->
    if coordinator t round = t.ctx.Engine.self then begin
      let sofar = Option.value ~default:[] (Hashtbl.find_opt t.estimates round) in
      if not (List.exists (fun (q, _, _) -> q = src) sofar) then
        Hashtbl.replace t.estimates round ((src, value, stamp) :: sofar);
      try_propose t round
    end
  | Ct_proposal { round; value } ->
    if not (Hashtbl.mem t.proposals_seen round) then
      Hashtbl.replace t.proposals_seen round value;
    maybe_adopt t
  | Ct_ack { round } ->
    if coordinator t round = t.ctx.Engine.self then begin
      let sofar = Option.value ~default:[] (Hashtbl.find_opt t.acks round) in
      if not (List.mem src sofar) then Hashtbl.replace t.acks round (src :: sofar);
      match Hashtbl.find_opt t.proposals round with
      | Some value
        when List.length (Hashtbl.find t.acks round) >= t.majority ->
        decide t value
      | Some _ | None -> ()
    end
  | Ct_nack _ -> ()
  | Ct_decide value -> decide t value
  | _ -> ()

(* Phase 3 escape hatch, evaluated on the local timeout: abandon a round
   whose coordinator is suspected. *)
let on_timer t =
  if t.awaiting_proposal && t.decided = None then begin
    let c = coordinator t t.round in
    if List.mem c (t.suspects ()) then begin
      t.awaiting_proposal <- false;
      t.ctx.Engine.send c (Ct_nack { round = t.round });
      enter_round t (t.round + 1)
    end
  end

let create (ctx : Engine.ctx) ~suspects =
  let t =
    { ctx; suspects;
      majority = (ctx.Engine.n / 2) + 1;
      started = false;
      round = 0;
      estimate = None;
      stamp = -1;
      awaiting_proposal = false;
      decided = None;
      estimates = Hashtbl.create 16;
      proposals = Hashtbl.create 16;
      acks = Hashtbl.create 16;
      proposals_seen = Hashtbl.create 16;
      decide_relayed = false }
  in
  let node =
    { Engine.on_message = (fun ~src payload -> on_message t ~src payload);
      on_timer = (fun () -> on_timer t);
      on_input = (function Ct_propose v -> start t v | _ -> ()) }
  in
  (t, node)

let () =
  Msg.register_payload_pp (fun ppf -> function
    | Ct_estimate { round; value; stamp } ->
      Fmt.pf ppf "ct-est(r%d,%a,ts%d)" round Ec_core.Value.pp value stamp; true
    | Ct_proposal { round; value } ->
      Fmt.pf ppf "ct-prop(r%d,%a)" round Ec_core.Value.pp value; true
    | Ct_ack { round } -> Fmt.pf ppf "ct-ack(r%d)" round; true
    | Ct_nack { round } -> Fmt.pf ppf "ct-nack(r%d)" round; true
    | Ct_decide value -> Fmt.pf ppf "ct-decide(%a)" Ec_core.Value.pp value; true
    | _ -> false);
  Io.register_input_pp (fun ppf -> function
    | Ct_propose v -> Fmt.pf ppf "ct-propose(%a)" Ec_core.Value.pp v; true
    | _ -> false);
  Io.register_output_pp (fun ppf -> function
    | Ct_decided v -> Fmt.pf ppf "ct-decided(%a)" Ec_core.Value.pp v; true
    | _ -> false)
