(** Strong total order broadcast from repeated consensus (leader-based Paxos
    with learning by majority of [Accepted] messages) — the paper's
    strong-consistency baseline.

    Safety (agreement, total order, stability with tau = 0) holds in any
    run; liveness requires a correct majority.  Steady-state delivery takes
    three communication steps under a stable leader, versus two for
    Algorithm 5.  Exposes the same {!Ec_core.Etob_intf.service} as the ETOB
    implementations so identical checkers and workloads apply. *)

open Simulator
open Simulator.Types
open Ec_core

type Msg.payload +=
  | Req of App_msg.t
  | Prepare of { ballot : int }
  | Promise of { ballot : int; accepted : (int * int * App_msg.t list) list }
  | Accept of { ballot : int; slot : int; batch : App_msg.t list }
  | Accepted of { ballot : int; slot : int; batch : App_msg.t list }

type t

val create : Engine.ctx -> omega:(unit -> proc_id) -> t * Engine.node

val service : t -> Ec_core.Etob_intf.service

val is_leading : t -> bool
val chosen_slots : t -> int
val pending_count : t -> int
