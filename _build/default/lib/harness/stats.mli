(** Descriptive statistics over integer samples, for benchmark tables. *)

type t = {
  count : int;
  mean : float;
  min : int;
  max : int;
  p50 : int;
  p95 : int;
}

val of_list : int list -> t option
(** [None] on an empty sample list. *)

val percentile : int list -> float -> int
(** [percentile sorted p] with [sorted] ascending and [p] in (0, 1].
    Raises [Invalid_argument] on an empty list. *)

val pp : Format.formatter -> t -> unit
