(* ASCII timelines: one swimlane per process, one column per time bucket.

   Renders the externally visible life of a run — broadcasts, revisions of
   the delivered sequence, commitments, decisions, crashes — so scenarios
   can be eyeballed from the CLI (`ecsim run --timeline`) and the examples.

   Cell legend (later events in a bucket overwrite earlier, more specific
   overwrite less):

     .  alive, nothing visible        B  broadcast issued here
     d  delivered sequence revised    C  committed prefix grew
     D  EC decision returned          X  crashed (from here on: blank)      *)

open Simulator
open Simulator.Types
open Ec_core

type cell = Blank | Quiet | Broadcast | Deliver | Commit | Decide | Crash

let rank = function
  | Blank -> 0 | Quiet -> 1 | Deliver -> 2 | Commit -> 3 | Broadcast -> 4
  | Decide -> 5 | Crash -> 6

let glyph = function
  | Blank -> ' ' | Quiet -> '.' | Broadcast -> 'B' | Deliver -> 'd'
  | Commit -> 'C' | Decide -> 'D' | Crash -> 'X'

let cell_of_output = function
  | Etob_intf.Etob_broadcast _ -> Some Broadcast
  | Etob_intf.Etob_deliver _ -> Some Deliver
  | Commit_prefix.Committed _ -> Some Commit
  | Ec_intf.Decide_ec _ -> Some Decide
  | Eic_intf.Decide_eic _ -> Some Decide
  | _ -> None

let render ?(width = 72) ~pattern trace =
  let horizon = max 1 (Trace.last_time trace) in
  let columns = min width horizon in
  let bucket t = min (columns - 1) (t * columns / (horizon + 1)) in
  let n = Failures.n pattern in
  let grid = Array.make_matrix n columns Quiet in
  (* Blank out post-crash cells, mark the crash bucket. *)
  List.iter
    (fun p ->
       match Failures.crash_time pattern p with
       | None -> ()
       | Some tc ->
         let b = bucket tc in
         grid.(p).(b) <- Crash;
         let rec blank c =
           if c < columns then begin grid.(p).(c) <- Blank; blank (c + 1) end
         in
         blank (b + 1))
    (all_procs n);
  let put p t cell =
    let b = bucket t in
    if rank cell > rank grid.(p).(b) && grid.(p).(b) <> Blank && grid.(p).(b) <> Crash
    then grid.(p).(b) <- cell
  in
  List.iter
    (fun (t, p, o) ->
       match cell_of_output o with Some c -> put p t c | None -> ())
    (Trace.outputs trace);
  let buf = Buffer.create ((n + 2) * (columns + 8)) in
  Buffer.add_string buf
    (Printf.sprintf "t=0%s t=%d\n" (String.make (max 1 (columns - 4)) ' ') horizon);
  List.iter
    (fun p ->
       Buffer.add_string buf (Printf.sprintf "p%-2d " p);
       Array.iter (fun c -> Buffer.add_char buf (glyph c)) grid.(p);
       Buffer.add_char buf '\n')
    (all_procs n);
  Buffer.add_string buf
    "    (B broadcast, d deliver-revision, C commit, D decide, X crash)\n";
  Buffer.contents buf
