(** ASCII timelines of runs: one swimlane per process, with broadcasts,
    delivery revisions, commitments, decisions and crashes. *)

open Simulator

val render : ?width:int -> pattern:Failures.pattern -> Trace.t -> string
(** A multi-line rendering, [width] columns of time buckets (default 72). *)
