(* Small descriptive statistics over integer samples (latencies, counts),
   shared by the benchmark tables. *)

type t = {
  count : int;
  mean : float;
  min : int;
  max : int;
  p50 : int;
  p95 : int;
}

let percentile sorted p =
  match sorted with
  | [] -> invalid_arg "Stats.percentile: empty"
  | _ ->
    let len = List.length sorted in
    let rank = int_of_float (ceil (p *. float_of_int len)) - 1 in
    List.nth sorted (max 0 (min (len - 1) rank))

let of_list samples =
  match samples with
  | [] -> None
  | _ ->
    let sorted = List.sort compare samples in
    let count = List.length samples in
    let sum = List.fold_left ( + ) 0 samples in
    Some
      { count;
        mean = float_of_int sum /. float_of_int count;
        min = List.hd sorted;
        max = List.nth sorted (count - 1);
        p50 = percentile sorted 0.5;
        p95 = percentile sorted 0.95 }

let pp ppf t =
  Fmt.pf ppf "n=%d mean=%.1f min=%d p50=%d p95=%d max=%d" t.count t.mean t.min
    t.p50 t.p95 t.max
