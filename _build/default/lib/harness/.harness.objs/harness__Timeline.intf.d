lib/harness/timeline.mli: Failures Simulator Trace
