lib/harness/timeline.ml: Array Buffer Commit_prefix Ec_core Ec_intf Eic_intf Etob_intf Failures List Printf Simulator String Trace
