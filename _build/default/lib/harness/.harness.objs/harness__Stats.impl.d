lib/harness/stats.ml: Fmt List
