lib/harness/scenario.mli: Detectors Ec_core Engine Etob_intf Failures Io Net Properties Simulator Trace Value
