test/test_simulator.ml: Alcotest Engine Failures Format Io List Listeners Msg Net Pqueue QCheck QCheck_alcotest Rng Simulator Trace
