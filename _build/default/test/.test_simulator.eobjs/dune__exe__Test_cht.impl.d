test/test_cht.ml: Alcotest Array Cht Dag Dag_protocol Detectors Engine Extraction Failures Fd_value List Printf Pure QCheck QCheck_alcotest Schedule Sim_tree Simulator
