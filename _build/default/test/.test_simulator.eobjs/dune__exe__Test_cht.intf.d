test/test_cht.mli:
