test/test_consensus.ml: Alcotest App_msg Consensus Detectors Ec_core Engine Etob_intf Failures Format Harness List Net Printf Properties QCheck QCheck_alcotest Rng Simulator Trace Value
