test/test_harness.ml: Alcotest App_msg Detectors Ec_core Engine Failures Format Harness List Net Properties QCheck QCheck_alcotest Simulator String Trace
