test/test_broadcast.ml: Alcotest Broadcast Causal_broadcast Engine Failures Io List Msg Net Printf QCheck QCheck_alcotest Reliable_broadcast Simulator String Trace Vector_clock
