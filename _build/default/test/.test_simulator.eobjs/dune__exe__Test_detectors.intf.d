test/test_detectors.mli:
