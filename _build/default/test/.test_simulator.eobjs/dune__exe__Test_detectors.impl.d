test/test_detectors.ml: Alcotest Array Detectors Engine Failures Format List Net QCheck QCheck_alcotest Rng Simulator
