(* Tests for the failure-detector library: the Omega, Sigma, <>P and P
   oracles (their defining properties over many histories), and the
   heartbeat-based Omega emulation. *)

open Simulator
open Simulator.Types

(* ------------------------------------------------------------------ *)
(* Omega oracle                                                        *)
(* ------------------------------------------------------------------ *)

let test_omega_eventually_agrees_on_correct () =
  let pattern = Failures.of_crashes ~n:4 [ (0, 8); (2, 3) ] in
  let omega = Detectors.Omega.make pattern ~stabilize_at:20 in
  Alcotest.(check int) "leader is min correct" 1 (Detectors.Omega.leader omega);
  List.iter
    (fun p ->
       List.iter
         (fun now ->
            Alcotest.(check int) "stable output" 1
              (Detectors.Omega.query omega ~self:p ~now))
         [ 20; 25; 100 ])
    (Failures.correct pattern)

let test_omega_pre_behaviours () =
  let pattern = Failures.none ~n:4 in
  let check_pre pre expect =
    let omega = Detectors.Omega.make ~pre pattern ~stabilize_at:1000 in
    List.iter
      (fun (self, now, expected) ->
         Alcotest.(check int)
           (Format.asprintf "pre %d@%d" self now) expected
           (Detectors.Omega.query omega ~self ~now))
      expect
  in
  check_pre Detectors.Omega.Self_trust [ (0, 5, 0); (3, 5, 3) ];
  check_pre (Detectors.Omega.Fixed 2) [ (0, 5, 2); (3, 7, 2) ];
  check_pre (Detectors.Omega.Rotating 10) [ (0, 5, 0); (1, 15, 1); (2, 25, 2) ];
  check_pre (Detectors.Omega.Blockwise [ [ 0; 1 ]; [ 2; 3 ] ])
    [ (0, 5, 0); (1, 5, 0); (2, 5, 2); (3, 5, 2) ]

let test_omega_blockwise_tracks_crashes () =
  let pattern = Failures.of_crashes ~n:4 [ (0, 10) ] in
  let omega =
    Detectors.Omega.make ~pre:(Detectors.Omega.Blockwise [ [ 0; 1 ]; [ 2; 3 ] ])
      pattern ~stabilize_at:1000
  in
  Alcotest.(check int) "block leader before crash" 0
    (Detectors.Omega.query omega ~self:1 ~now:5);
  Alcotest.(check int) "block leader after crash" 1
    (Detectors.Omega.query omega ~self:1 ~now:15)

let test_omega_requires_correct_process () =
  let pattern = Failures.of_crashes ~n:2 [ (0, 1); (1, 1) ] in
  Alcotest.check_raises "no correct"
    (Invalid_argument "Omega.make: no correct process in pattern")
    (fun () -> ignore (Detectors.Omega.make pattern ~stabilize_at:0))

let prop_omega_spec =
  QCheck.Test.make ~name:"omega: eventual agreement on one correct process"
    ~count:100 QCheck.small_int
    (fun seed ->
       let rng = Rng.create seed in
       let n = 2 + Rng.int rng 5 in
       let pattern = Failures.random ~rng ~n ~max_faulty:(n - 1) ~horizon:30 in
       let stabilize_at = 30 + Rng.int rng 20 in
       let omega =
         Detectors.Omega.make ~pre:(Detectors.Omega.Seeded seed) pattern ~stabilize_at
       in
       let leader = Detectors.Omega.leader omega in
       Failures.is_correct pattern leader
       && List.for_all
         (fun p ->
            List.for_all
              (fun now -> Detectors.Omega.query omega ~self:p ~now = leader)
              [ stabilize_at; stabilize_at + 17; stabilize_at + 100 ])
         (Failures.correct pattern))

(* ------------------------------------------------------------------ *)
(* Sigma oracle                                                        *)
(* ------------------------------------------------------------------ *)

let prop_sigma_intersection =
  QCheck.Test.make ~name:"sigma: any two quorums intersect" ~count:100
    QCheck.small_int
    (fun seed ->
       let rng = Rng.create seed in
       let n = 2 + Rng.int rng 5 in
       let pattern = Failures.random ~rng ~n ~max_faulty:(n - 1) ~horizon:30 in
       let sigma = Detectors.Sigma.make pattern ~stabilize_at:40 in
       let queries =
         List.concat_map
           (fun p -> List.map (fun now -> Detectors.Sigma.query sigma ~self:p ~now)
               [ 0; 7; 39; 40; 90 ])
           (all_procs n)
       in
       List.for_all
         (fun q1 ->
            List.for_all
              (fun q2 -> List.exists (fun x -> List.mem x q2) q1)
              queries)
         queries)

let test_sigma_eventually_correct_only () =
  let pattern = Failures.of_crashes ~n:5 [ (1, 5); (4, 9) ] in
  let sigma = Detectors.Sigma.make pattern ~stabilize_at:30 in
  List.iter
    (fun p ->
       let quorum = Detectors.Sigma.query sigma ~self:p ~now:50 in
       Alcotest.(check (list int)) "only correct" [ 0; 2; 3 ] quorum)
    (Failures.correct pattern)

(* ------------------------------------------------------------------ *)
(* <>P and P oracles                                                   *)
(* ------------------------------------------------------------------ *)

let test_ep_eventually_exact () =
  let pattern = Failures.of_crashes ~n:4 [ (2, 6) ] in
  let ep = Detectors.Suspicions.eventually_perfect pattern ~stabilize_at:25 in
  List.iter
    (fun p ->
       Alcotest.(check (list int)) "exactly faulty" [ 2 ]
         (Detectors.Suspicions.query_ep ep ~self:p ~now:30))
    (Failures.correct pattern)

let test_p_strong_accuracy () =
  let pattern = Failures.of_crashes ~n:4 [ (1, 10) ] in
  let p_det = Detectors.Suspicions.perfect pattern ~lag:3 in
  (* Never suspected before the crash... *)
  Alcotest.(check (list int)) "nothing before" []
    (Detectors.Suspicions.query_p p_det ~self:0 ~now:9);
  (* ... nor during the detection lag ... *)
  Alcotest.(check (list int)) "lag" []
    (Detectors.Suspicions.query_p p_det ~self:0 ~now:12);
  (* ... and suspected forever after. *)
  Alcotest.(check (list int)) "after lag" [ 1 ]
    (Detectors.Suspicions.query_p p_det ~self:0 ~now:13)

let test_es_spec () =
  (* <>S: strong completeness + eventual weak accuracy, while other correct
     processes may stay suspected forever — the difference from <>P. *)
  let pattern = Failures.of_crashes ~n:5 [ (4, 6) ] in
  let es = Detectors.Suspicions.eventually_strong pattern ~stabilize_at:25 in
  let anchor = Detectors.Suspicions.es_anchor es in
  Alcotest.(check bool) "anchor correct" true (Failures.is_correct pattern anchor);
  List.iter
    (fun p ->
       List.iter
         (fun now ->
            let suspects = Detectors.Suspicions.query_es es ~self:p ~now in
            Alcotest.(check bool) "completeness" true (List.mem 4 suspects);
            Alcotest.(check bool) "weak accuracy" false (List.mem anchor suspects);
            (* Output is stable after stabilization. *)
            Alcotest.(check (list int)) "stable" suspects
              (Detectors.Suspicions.query_es es ~self:p ~now:(now + 50)))
         [ 25; 40; 100 ])
    (Failures.correct pattern)

let test_omega_from_ep () =
  let pattern = Failures.of_crashes ~n:3 [ (0, 4) ] in
  let ep = Detectors.Suspicions.eventually_perfect pattern ~stabilize_at:20 in
  List.iter
    (fun p ->
       Alcotest.(check int) "trusts min unsuspected" 1
         (Detectors.Suspicions.omega_from_ep ep ~self:p ~now:25))
    (Failures.correct pattern)

(* ------------------------------------------------------------------ *)
(* Omega election (heartbeat emulation)                                *)
(* ------------------------------------------------------------------ *)

let run_election ?(n = 4) ?(pattern = None) ?(deadline = 120)
    ?(delay = Net.constant 1) () =
  let pattern = match pattern with Some p -> p | None -> Failures.none ~n in
  let config = { (Engine.default_config ~n ~deadline) with pattern; delay } in
  let make_node ctx =
    let election, node = Detectors.Omega_election.create ctx ~initial_timeout:4 in
    (node, election)
  in
  let _, elections = Engine.run_with config ~make_node ~inputs:[] in
  (pattern, elections)

let test_election_failure_free () =
  let pattern, elections = run_election () in
  List.iter
    (fun p ->
       Alcotest.(check int) "everyone trusts p0" 0
         (Detectors.Omega_election.leader elections.(p)))
    (Failures.correct pattern)

let test_election_after_crash () =
  let pattern = Failures.of_crashes ~n:4 [ (0, 30) ] in
  let pattern, elections = run_election ~pattern:(Some pattern) ~deadline:200 () in
  List.iter
    (fun p ->
       Alcotest.(check int) "survivors trust p1" 1
         (Detectors.Omega_election.leader elections.(p)))
    (Failures.correct pattern)

let test_election_under_partial_synchrony () =
  (* The environment the emulation is actually justified in: chaos before
     GST, bounded delays after; the election converges on the leader. *)
  let delay = Net.partial_synchrony ~gst:120 ~bound:3 ~chaos_max:25 in
  let pattern, elections = run_election ~delay ~deadline:400 () in
  List.iter
    (fun p ->
       Alcotest.(check int) "trusts p0 after GST" 0
         (Detectors.Omega_election.leader elections.(p)))
    (Failures.correct pattern)

let test_election_recovers_from_slow_period () =
  (* A long slow period causes false suspicions; the adaptive timeout must
     rehabilitate the leader afterwards. *)
  let delay =
    Net.slow_period ~from_time:30 ~until_time:60 ~factor:12 ~base:(Net.constant 1)
  in
  let pattern, elections = run_election ~delay ~deadline:300 () in
  List.iter
    (fun p ->
       Alcotest.(check int) "back to p0" 0
         (Detectors.Omega_election.leader elections.(p)))
    (Failures.correct pattern);
  (* At least one process must have retracted a suspicion. *)
  let retractions =
    Array.fold_left
      (fun acc e -> acc + Detectors.Omega_election.false_suspicions e)
      0 elections
  in
  Alcotest.(check bool) "false suspicions occurred and were retracted" true
    (retractions > 0)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest [ prop_omega_spec; prop_sigma_intersection ] in
  Alcotest.run "detectors"
    [ ("omega",
       [ Alcotest.test_case "eventually agrees" `Quick
           test_omega_eventually_agrees_on_correct;
         Alcotest.test_case "pre-behaviours" `Quick test_omega_pre_behaviours;
         Alcotest.test_case "blockwise tracks crashes" `Quick
           test_omega_blockwise_tracks_crashes;
         Alcotest.test_case "requires correct process" `Quick
           test_omega_requires_correct_process ]);
      ("sigma",
       [ Alcotest.test_case "eventually correct-only" `Quick
           test_sigma_eventually_correct_only ]);
      ("suspicions",
       [ Alcotest.test_case "<>P eventually exact" `Quick test_ep_eventually_exact;
         Alcotest.test_case "P strong accuracy" `Quick test_p_strong_accuracy;
         Alcotest.test_case "<>S spec" `Quick test_es_spec;
         Alcotest.test_case "omega from <>P" `Quick test_omega_from_ep ]);
      ("election",
       [ Alcotest.test_case "failure-free" `Quick test_election_failure_free;
         Alcotest.test_case "after crash" `Quick test_election_after_crash;
         Alcotest.test_case "recovers from slow period" `Quick
           test_election_recovers_from_slow_period;
         Alcotest.test_case "under partial synchrony" `Quick
           test_election_under_partial_synchrony ]);
      ("oracle-properties", qc);
    ]
