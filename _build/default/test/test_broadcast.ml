(* Tests for the broadcast substrates: vector clocks (order-theoretic laws),
   reliable broadcast (validity/agreement/integrity) and causal broadcast
   (causal delivery). *)

open Simulator
open Simulator.Types
open Broadcast

(* ------------------------------------------------------------------ *)
(* Vector clocks                                                       *)
(* ------------------------------------------------------------------ *)

let vc_of = Vector_clock.of_list

let test_vc_basics () =
  let z = Vector_clock.zero ~n:3 in
  Alcotest.(check (list int)) "zero" [ 0; 0; 0 ] (Vector_clock.to_list z);
  let t = Vector_clock.tick z 1 in
  Alcotest.(check (list int)) "tick" [ 0; 1; 0 ] (Vector_clock.to_list t);
  Alcotest.(check (list int)) "tick pure" [ 0; 0; 0 ] (Vector_clock.to_list z);
  Alcotest.(check int) "get" 1 (Vector_clock.get t 1);
  Alcotest.(check int) "sum" 1 (Vector_clock.sum t)

let test_vc_order () =
  let a = vc_of [ 1; 0; 0 ] and b = vc_of [ 1; 1; 0 ] and c = vc_of [ 0; 2; 0 ] in
  Alcotest.(check bool) "a <= b" true (Vector_clock.leq a b);
  Alcotest.(check bool) "a < b" true (Vector_clock.lt a b);
  Alcotest.(check bool) "b not <= a" false (Vector_clock.leq b a);
  Alcotest.(check bool) "a || c" true (Vector_clock.concurrent a c);
  Alcotest.(check bool) "merge is lub" true
    (Vector_clock.equal (Vector_clock.merge a c) (vc_of [ 1; 2; 0 ]))

let vc_gen =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map string_of_int l))
    QCheck.Gen.(list_size (return 3) (int_range 0 5))

let prop_vc_partial_order =
  QCheck.Test.make ~name:"vector_clock: leq is a partial order" ~count:300
    (QCheck.triple vc_gen vc_gen vc_gen)
    (fun (a, b, c) ->
       let a = vc_of a and b = vc_of b and c = vc_of c in
       let leq = Vector_clock.leq in
       leq a a
       && (not (leq a b && leq b a) || Vector_clock.equal a b)
       && (not (leq a b && leq b c) || leq a c))

let prop_vc_merge_lub =
  QCheck.Test.make ~name:"vector_clock: merge is the least upper bound" ~count:300
    (QCheck.triple vc_gen vc_gen vc_gen)
    (fun (a, b, c) ->
       let a = vc_of a and b = vc_of b and c = vc_of c in
       let m = Vector_clock.merge a b in
       Vector_clock.leq a m && Vector_clock.leq b m
       && (not (Vector_clock.leq a c && Vector_clock.leq b c) || Vector_clock.leq m c))

let prop_vc_merge_commutative_idempotent =
  QCheck.Test.make ~name:"vector_clock: merge commutative and idempotent" ~count:300
    (QCheck.pair vc_gen vc_gen)
    (fun (a, b) ->
       let a = vc_of a and b = vc_of b in
       Vector_clock.equal (Vector_clock.merge a b) (Vector_clock.merge b a)
       && Vector_clock.equal (Vector_clock.merge a a) a)

(* ------------------------------------------------------------------ *)
(* Reliable broadcast                                                  *)
(* ------------------------------------------------------------------ *)

type Msg.payload += Word of string
type Io.output += Delivered_word of proc_id * int * string

(* Each process rb-broadcasts one word at its first timer tick. *)
let rb_node words (ctx : Engine.ctx) =
  let deliver ~origin ~sn payload =
    match payload with
    | Word w -> ctx.Engine.output (Delivered_word (origin, sn, w))
    | _ -> ()
  in
  let rb, rb_component = Reliable_broadcast.create ctx ~deliver in
  let fired = ref false in
  let sender =
    { Engine.idle_node with
      on_timer =
        (fun () ->
           if not !fired then begin
             fired := true;
             match List.nth_opt words ctx.Engine.self with
             | Some w -> Reliable_broadcast.broadcast rb (Word w)
             | None -> ()
           end) }
  in
  Engine.stack [ rb_component; sender ]

let rb_deliveries trace p =
  List.filter_map
    (fun (_, q, o) ->
       match o with
       | Delivered_word (origin, sn, w) when q = p -> Some (origin, sn, w)
       | _ -> None)
    (Trace.outputs trace)

let test_rb_validity_and_agreement () =
  let words = [ "a"; "b"; "c" ] in
  let config = Engine.default_config ~n:3 ~deadline:40 in
  let trace = Engine.run config ~make_node:(rb_node words) ~inputs:[] in
  List.iter
    (fun p ->
       let got = List.sort compare (rb_deliveries trace p) in
       Alcotest.(check (list (triple int int string))) "all delivered once"
         [ (0, 0, "a"); (1, 0, "b"); (2, 0, "c") ] got)
    [ 0; 1; 2 ]

let test_rb_no_duplication_under_relay () =
  (* Random delays cause relays to race; each (origin, sn) still delivers
     exactly once. *)
  let config = { (Engine.default_config ~n:4 ~deadline:80) with
                 delay = Net.uniform ~min:1 ~max:7; seed = 9 } in
  let trace = Engine.run config ~make_node:(rb_node [ "w"; "x"; "y"; "z" ]) ~inputs:[] in
  List.iter
    (fun p ->
       let got = rb_deliveries trace p in
       Alcotest.(check int) "four" 4 (List.length got);
       Alcotest.(check int) "unique" 4
         (List.length (List.sort_uniq compare got)))
    [ 0; 1; 2; 3 ]

let test_rb_agreement_with_crashed_origin () =
  (* p0 broadcasts at t=1 and crashes at t=2: with unit delays everyone has
     the message by then, and relaying preserves agreement among the rest. *)
  let pattern = Failures.of_crashes ~n:3 [ (0, 2) ] in
  let config = { (Engine.default_config ~n:3 ~deadline:40) with pattern } in
  let trace = Engine.run config ~make_node:(rb_node [ "a" ]) ~inputs:[] in
  List.iter
    (fun p ->
       Alcotest.(check (list (triple int int string))) "survivors deliver"
         [ (0, 0, "a") ] (rb_deliveries trace p))
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Causal broadcast                                                    *)
(* ------------------------------------------------------------------ *)

type Io.output += Delivered_causal of proc_id * string

(* p0 broadcasts "hello"; on delivering it, p1 broadcasts "re:hello".
   Causal delivery requires "hello" before "re:hello" everywhere. *)
let cb_node (ctx : Engine.ctx) =
  let cb_ref = ref None in
  let deliver ~origin ~vc:_ payload =
    match payload with
    | Word w ->
      ctx.Engine.output (Delivered_causal (origin, w));
      (match !cb_ref with
       | Some cb when ctx.Engine.self = 1 && w = "hello" ->
         Causal_broadcast.broadcast cb (Word "re:hello")
       | _ -> ())
    | _ -> ()
  in
  let cb, component = Causal_broadcast.create ctx ~deliver in
  cb_ref := Some cb;
  let fired = ref false in
  let sender =
    { Engine.idle_node with
      on_timer =
        (fun () ->
           if ctx.Engine.self = 0 && not !fired then begin
             fired := true;
             Causal_broadcast.broadcast cb (Word "hello")
           end) }
  in
  Engine.stack [ component; sender ]

let causal_deliveries trace p =
  List.filter_map
    (fun (_, q, o) ->
       match o with Delivered_causal (o', w) when q = p -> Some (o', w) | _ -> None)
    (Trace.outputs trace)

let test_cb_causal_order_holds () =
  (* Make p1's reply race ahead of the original with adversarial delays:
     the holdback queue must still deliver "hello" first everywhere. *)
  let config = { (Engine.default_config ~n:3 ~deadline:100) with
                 delay = Net.uniform ~min:1 ~max:9; seed = 77 } in
  let trace = Engine.run config ~make_node:cb_node ~inputs:[] in
  List.iter
    (fun p ->
       match causal_deliveries trace p with
       | [ (0, "hello"); (1, "re:hello") ] -> ()
       | got ->
         Alcotest.failf "p%d delivered %s" p
           (String.concat "," (List.map snd got)))
    [ 0; 1; 2 ]

let test_cb_all_seeds () =
  (* The causal order must hold for every seed, not by luck. *)
  let rec go seed =
    if seed < 30 then begin
      let config = { (Engine.default_config ~n:3 ~deadline:120) with
                     delay = Net.uniform ~min:1 ~max:11; seed } in
      let trace = Engine.run config ~make_node:cb_node ~inputs:[] in
      List.iter
        (fun p ->
           Alcotest.(check (list (pair int string)))
             (Printf.sprintf "seed %d p%d" seed p)
             [ (0, "hello"); (1, "re:hello") ]
             (causal_deliveries trace p))
        [ 0; 1; 2 ];
      go (seed + 1)
    end
  in
  go 0

let () =
  let qc = List.map QCheck_alcotest.to_alcotest
      [ prop_vc_partial_order; prop_vc_merge_lub; prop_vc_merge_commutative_idempotent ]
  in
  Alcotest.run "broadcast"
    [ ("vector_clock",
       [ Alcotest.test_case "basics" `Quick test_vc_basics;
         Alcotest.test_case "order" `Quick test_vc_order ]
       @ qc);
      ("reliable_broadcast",
       [ Alcotest.test_case "validity and agreement" `Quick test_rb_validity_and_agreement;
         Alcotest.test_case "no duplication" `Quick test_rb_no_duplication_under_relay;
         Alcotest.test_case "crashed origin" `Quick test_rb_agreement_with_crashed_origin ]);
      ("causal_broadcast",
       [ Alcotest.test_case "causal order" `Quick test_cb_causal_order_holds;
         Alcotest.test_case "causal order, many seeds" `Quick test_cb_all_seeds ]);
    ]
