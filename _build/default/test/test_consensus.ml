(* Tests for the strong-consistency baseline (Paxos-based total order
   broadcast): safety in all runs, strong TOB when live, three-step
   latency, and unavailability without a correct majority — the Sigma gap
   the paper isolates. *)

open Simulator
open Ec_core

let oracle ?(pre = Detectors.Omega.Self_trust) stabilize_at =
  Harness.Scenario.Oracle { stabilize_at; pre }

let run_paxos ?(inputs = []) setup =
  let trace = Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Paxos_baseline in
  (Properties.etob_run_of_trace setup.Harness.Scenario.pattern trace, trace)

let test_paxos_strong_tob_failure_free () =
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:200) with omega = oracle 0 } in
  let inputs = Harness.Scenario.spread_posts ~n:3 ~count:9 ~from_time:10 ~every:4 in
  let run, _ = run_paxos ~inputs setup in
  let report = Properties.etob_report run in
  Alcotest.(check bool)
    (Format.asprintf "strong TOB: %a" Properties.pp_etob_report report)
    true (Properties.is_strong_tob report);
  Alcotest.(check int) "all delivered" 9 (List.length (Properties.final_d run 0))

let test_paxos_survives_leader_crash () =
  (* The leader crashes mid-run; Omega repoints to p1 and the new leader
     recovers in-flight slots through the prepare phase. *)
  let pattern = Failures.of_crashes ~n:3 [ (0, 40) ] in
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:400) with
                pattern;
                omega = oracle ~pre:(Detectors.Omega.Fixed 0) 60 } in
  let inputs =
    [ (10, 1, Harness.Scenario.Post "pre-crash");
      (80, 1, Harness.Scenario.Post "post-crash");
      (100, 2, Harness.Scenario.Post "late") ]
  in
  let run, _ = run_paxos ~inputs setup in
  let report = Properties.etob_report run in
  Alcotest.(check bool) "still strong TOB" true (Properties.is_strong_tob report);
  Alcotest.(check int) "all three delivered by survivors" 3
    (List.length (Properties.final_d run 1))

let test_paxos_blocks_without_majority () =
  (* 3 of 5 crash: requests sent after the crash point are never delivered.
     This is the paper's availability gap: Sigma (quorums) is needed. *)
  let pattern = Failures.of_crashes ~n:5 [ (2, 30); (3, 30); (4, 30) ] in
  let setup = { (Harness.Scenario.default ~n:5 ~deadline:300) with
                pattern; omega = oracle 0 } in
  let inputs =
    [ (10, 0, Harness.Scenario.Post "early");
      (50, 0, Harness.Scenario.Post "blocked-1");
      (90, 1, Harness.Scenario.Post "blocked-2") ]
  in
  let run, _ = run_paxos ~inputs setup in
  let tags = List.map (fun m -> m.App_msg.tag) (Properties.final_d run 0) in
  Alcotest.(check (list string)) "only the pre-crash message delivers"
    [ "early" ] tags

let test_paxos_three_step_latency () =
  (* Steady state: request -> Accept -> Accepted = three communication
     steps (plus at most one timer period of batching at the leader). *)
  let delta = 3 in
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:200) with
                delay = Net.constant delta; omega = oracle 0; timer_period = 1 } in
  let post_at = 100 in
  let inputs =
    [ (20, 0, Harness.Scenario.Post "warmup");
      (post_at, 1, Harness.Scenario.Post "probe") ]
  in
  let run, trace = run_paxos ~inputs setup in
  let probe =
    List.find_map
      (fun (_, _, o) ->
         match o with
         | Etob_intf.Etob_broadcast m when m.App_msg.tag = "probe" -> Some m
         | _ -> None)
      (Trace.outputs trace)
  in
  match probe with
  | None -> Alcotest.fail "probe not broadcast"
  | Some m ->
    (match Properties.stable_delivery_time run m with
     | None -> Alcotest.fail "probe not delivered"
     | Some t ->
       let latency = t - post_at in
       Alcotest.(check bool)
         (Printf.sprintf "latency %d within [3D, 3D + timer]" latency)
         true
         (latency >= 3 * delta
          && latency <= (3 * delta) + setup.Harness.Scenario.timer_period + 1))

let test_paxos_majority_side_live_under_partition () =
  (* During a partition with a competing minority-side campaigner, the
     majority side must still commit (regression test for the stale-victory
     race: a leader must not adopt a ballot already preempted locally). *)
  let blocks = [ [ 0; 1; 2 ]; [ 3; 4 ] ] in
  let spec = { Net.blocks; from_time = 5; until_time = 100 } in
  let setup = { (Harness.Scenario.default ~n:5 ~deadline:300) with
                delay = Net.partitioned spec ~base:(Net.constant 1);
                omega = Harness.Scenario.Oracle
                    { stabilize_at = 100; pre = Detectors.Omega.Blockwise blocks } } in
  let inputs = [ (10, 0, Harness.Scenario.Post "maj") ] in
  let run, _ = run_paxos ~inputs setup in
  (* The majority side delivers its write well before the heal. *)
  let d_mid = Properties.d_at run 0 50 in
  Alcotest.(check int) "majority committed during partition" 1 (List.length d_mid)

let test_paxos_leader_change_no_duplication () =
  (* A request caught across a leader change may be proposed in two slots;
     delivery must still be exactly-once. *)
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:400) with
                omega = oracle ~pre:(Detectors.Omega.Rotating 15) 100 } in
  let inputs = Harness.Scenario.spread_posts ~n:3 ~count:9 ~from_time:5 ~every:8 in
  let run, _ = run_paxos ~inputs setup in
  let report = Properties.etob_report run in
  Alcotest.(check bool) "no duplication" true
    report.Properties.no_duplication.Properties.ok;
  Alcotest.(check bool) "stability never violated (safety)" true
    (report.Properties.tau_stability = 0);
  Alcotest.(check bool) "total order never violated (safety)" true
    (report.Properties.tau_total_order = 0)

(* Safety is unconditional: under random delays, random crashes and a noisy
   Omega prefix, delivered sequences never diverge, are never revised, and
   never duplicate or invent messages.  (Liveness may be lost: that is the
   point of the baseline.) *)
let prop_paxos_safety_random_runs =
  QCheck.Test.make ~name:"paxos: strong safety in any run" ~count:20
    QCheck.small_int
    (fun seed ->
       let rng = Rng.create seed in
       let n = 3 + Rng.int rng 3 in
       let pattern = Failures.random ~rng ~n ~max_faulty:(n - 1) ~horizon:60 in
       let setup = { (Harness.Scenario.default ~n ~deadline:300) with
                     pattern; seed;
                     delay = Net.uniform ~min:1 ~max:5;
                     omega = oracle ~pre:(Detectors.Omega.Seeded seed) 70 } in
       let inputs = Harness.Scenario.spread_posts ~n ~count:6 ~from_time:5 ~every:6 in
       let run, _ = run_paxos ~inputs setup in
       let report = Properties.etob_report run in
       report.Properties.no_duplication.Properties.ok
       && report.Properties.no_creation.Properties.ok
       && report.Properties.tau_stability = 0
       && report.Properties.tau_total_order = 0)

(* ------------------------------------------------------------------ *)
(* Chandra-Toueg consensus over <>S                                    *)
(* ------------------------------------------------------------------ *)

let run_ct ?(n = 5) ?(seed = 3) ?(deadline = 400) ?(delay = Net.constant 1)
    ?pattern ?(es_stabilize = 0) ~proposals () =
  let pattern = match pattern with Some p -> p | None -> Failures.none ~n in
  let es = Detectors.Suspicions.eventually_strong pattern ~stabilize_at:es_stabilize in
  let config = { (Engine.default_config ~n ~deadline) with pattern; seed; delay } in
  let make_node ctx =
    let t, node =
      Consensus.Chandra_toueg.create ctx
        ~suspects:(Detectors.Suspicions.es_module_of es ctx)
    in
    (node, t)
  in
  let inputs =
    List.mapi (fun p v -> (2, p, Consensus.Chandra_toueg.Ct_propose (Value.Num v)))
      proposals
  in
  let trace, states = Engine.run_with config ~make_node ~inputs in
  (pattern, trace, states)

let ct_decisions trace =
  List.filter_map
    (fun (t, p, o) ->
       match o with
       | Consensus.Chandra_toueg.Ct_decided v -> Some (t, p, v)
       | _ -> None)
    (Trace.outputs trace)

let check_ct_run ~proposals (pattern, trace, _) =
  let decisions = ct_decisions trace in
  (* Termination: every correct process decides exactly once. *)
  List.iter
    (fun p ->
       Alcotest.(check int)
         (Printf.sprintf "p%d decides once" p) 1
         (List.length (List.filter (fun (_, q, _) -> q = p) decisions)))
    (Failures.correct pattern);
  (* Agreement + validity. *)
  match decisions with
  | [] -> Alcotest.fail "no decisions"
  | (_, _, v) :: rest ->
    List.iter
      (fun (_, _, v') ->
         Alcotest.(check bool) "agreement" true (Value.equal v v'))
      rest;
    Alcotest.(check bool) "validity" true
      (List.exists (fun x -> Value.equal (Value.Num x) v) proposals)

let test_ct_failure_free () =
  let proposals = [ 10; 20; 30; 40; 50 ] in
  check_ct_run ~proposals (run_ct ~proposals ())

let test_ct_noisy_prefix () =
  let proposals = [ 1; 2; 3; 4; 5 ] in
  check_ct_run ~proposals
    (run_ct ~es_stabilize:60 ~deadline:800 ~delay:(Net.uniform ~min:1 ~max:4)
       ~proposals ())

let test_ct_coordinator_crash () =
  (* Round 0's coordinator (p0) crashes before proposing widely; suspicion
     moves everyone on and a later coordinator decides. *)
  let pattern = Failures.of_crashes ~n:5 [ (0, 4) ] in
  let proposals = [ 7; 8; 9; 10; 11 ] in
  let pattern', trace, _ =
    run_ct ~pattern ~es_stabilize:30 ~deadline:800 ~proposals ()
  in
  check_ct_run ~proposals (pattern', trace, [||]);
  (* The decided value came from a surviving proposer or p0's estimate --
     either is valid; what matters is that a decision happened at all. *)
  Alcotest.(check bool) "decisions exist" true (ct_decisions trace <> [])

let test_ct_initial_stamp_regression () =
  (* Regression (qcheck seed 83): with initial estimates stamped 0 instead
     of -1, a round-1 coordinator could not distinguish a locked round-0
     value from fresh estimates and proposed a conflicting value.  This
     exact configuration decided two different values. *)
  let rng = Rng.create 83 in
  let n = 3 + (2 * Rng.int rng 2) in
  let pattern = Failures.random ~rng ~n ~max_faulty:((n - 1) / 2) ~horizon:40 in
  let proposals = List.init n (fun i -> i * 11) in
  check_ct_run ~proposals
    (run_ct ~n ~seed:83 ~pattern ~es_stabilize:60 ~deadline:1000
       ~delay:(Net.uniform ~min:1 ~max:3) ~proposals ())

let test_ct_blocks_without_majority () =
  let pattern = Failures.of_crashes ~n:5 [ (1, 1); (2, 1); (3, 1) ] in
  let _, trace, _ =
    run_ct ~pattern ~es_stabilize:20 ~deadline:400
      ~proposals:[ 1; 2; 3; 4; 5 ] ()
  in
  Alcotest.(check (list (triple int int (Alcotest.testable Value.pp Value.equal))))
    "no decisions without a majority" [] (ct_decisions trace)

let prop_ct_safety_and_termination =
  QCheck.Test.make ~name:"chandra-toueg: consensus with majority (random runs)"
    ~count:20 QCheck.small_int
    (fun seed ->
       let rng = Rng.create seed in
       let n = 3 + (2 * Rng.int rng 2) in  (* 3 or 5 *)
       let max_faulty = (n - 1) / 2 in
       let pattern = Failures.random ~rng ~n ~max_faulty ~horizon:40 in
       let proposals = List.init n (fun i -> i * 11) in
       let pattern, trace, _ =
         run_ct ~n ~seed ~pattern ~es_stabilize:60 ~deadline:1000
           ~delay:(Net.uniform ~min:1 ~max:3) ~proposals ()
       in
       let decisions = ct_decisions trace in
       let values = List.sort_uniq Value.compare (List.map (fun (_, _, v) -> v) decisions) in
       List.length values = 1
       && List.for_all
         (fun p -> List.exists (fun (_, q, _) -> q = p) decisions)
         (Failures.correct pattern))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest
      [ prop_paxos_safety_random_runs; prop_ct_safety_and_termination ] in
  Alcotest.run "consensus"
    [ ("paxos_tob",
       [ Alcotest.test_case "strong TOB failure-free" `Quick
           test_paxos_strong_tob_failure_free;
         Alcotest.test_case "survives leader crash" `Quick
           test_paxos_survives_leader_crash;
         Alcotest.test_case "blocks without majority" `Quick
           test_paxos_blocks_without_majority;
         Alcotest.test_case "majority side live under partition" `Quick
           test_paxos_majority_side_live_under_partition;
         Alcotest.test_case "three-step latency" `Quick test_paxos_three_step_latency;
         Alcotest.test_case "leader change, no duplication" `Quick
           test_paxos_leader_change_no_duplication ]);
      ("chandra_toueg",
       [ Alcotest.test_case "failure-free" `Quick test_ct_failure_free;
         Alcotest.test_case "noisy <>S prefix" `Quick test_ct_noisy_prefix;
         Alcotest.test_case "coordinator crash" `Quick test_ct_coordinator_crash;
         Alcotest.test_case "initial-stamp regression (seed 83)" `Quick
           test_ct_initial_stamp_regression;
         Alcotest.test_case "blocks without majority" `Quick
           test_ct_blocks_without_majority ]);
      ("safety", qc);
    ]
