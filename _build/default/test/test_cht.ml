(* Tests for the CHT reduction machinery (Section 4 + Appendix B): sample
   DAGs, the pure Algorithm-4 automaton, simulation trees, k-tags,
   bivalence, decision gadgets and the Omega-extraction loop. *)

open Simulator
open Cht

let omega_sampler omega p t = Fd_value.leader (Detectors.Omega.query omega ~self:p ~now:t)

let ep_sampler ep p t = Fd_value.suspects (Detectors.Suspicions.query_ep ep ~self:p ~now:t)

let build_dag ?(n = 2) ?(rounds = 8) ?(period = 4) ?(gossip = 4)
    ?(pattern = None) ?(omega_stabilize = 12) ?(pre = Detectors.Omega.Self_trust) () =
  let pattern = match pattern with Some p -> p | None -> Failures.none ~n in
  let omega = Detectors.Omega.make ~pre pattern ~stabilize_at:omega_stabilize in
  let sampler = omega_sampler omega in
  (Dag.build ~pattern ~sampler ~period ~gossip ~rounds, pattern, sampler)

(* ------------------------------------------------------------------ *)
(* DAG properties (Appendix B.2)                                       *)
(* ------------------------------------------------------------------ *)

let test_dag_properties () =
  let dag, _, sampler = build_dag () in
  Alcotest.(check bool) "sampling" true (Dag.check_sampling dag ~sampler);
  Alcotest.(check bool) "order" true (Dag.check_order dag);
  Alcotest.(check bool) "transitive" true (Dag.check_transitive dag);
  Alcotest.(check bool) "fairness" true (Dag.check_fairness dag ~rounds:8 ~period:4)

let test_dag_crashed_stop_sampling () =
  let pattern = Failures.of_crashes ~n:3 [ (2, 10) ] in
  let dag, _, _ =
    build_dag ~n:3 ~pattern:(Some pattern) ~rounds:10 ()
  in
  let late_faulty =
    List.filter (fun v -> v.Dag.v_proc = 2 && v.Dag.v_time >= 10) (Dag.vertices dag)
  in
  Alcotest.(check int) "no samples after crash" 0 (List.length late_faulty);
  Alcotest.(check bool) "still transitive" true (Dag.check_transitive dag)

let test_dag_prefix () =
  let dag, _, _ = build_dag ~rounds:10 () in
  let prefix = Dag.prefix dag ~horizon:20 in
  Alcotest.(check bool) "prefix smaller" true (Dag.size prefix < Dag.size dag);
  List.iter
    (fun v -> Alcotest.(check bool) "within horizon" true (v.Dag.v_time <= 20))
    (Dag.vertices prefix)

let test_dag_extensions_bounded () =
  let dag, _, _ = build_dag ~n:2 ~rounds:8 () in
  let exts = Dag.extensions dag ~last:None ~used:[] ~width:2 in
  (* At most width per process. *)
  List.iter
    (fun p ->
       let count = List.length (List.filter (fun v -> v.Dag.v_proc = p) exts) in
       Alcotest.(check bool) "at most width" true (count <= 2))
    [ 0; 1 ]

(* ------------------------------------------------------------------ *)
(* Pure Algorithm 4                                                    *)
(* ------------------------------------------------------------------ *)

(* Hand-drive the pure automaton on a stable-leader history: both processes
   propose, the leader's promote is delivered, both decide the leader's
   value. *)
let test_pure_ec_decides_leader_value () =
  let n = 2 in
  let algo = Pure.ec_omega in
  let cfg = Schedule.initial algo ~n in
  let lead = Fd_value.leader 0 in
  (* p0 invokes instance 1 with value true. *)
  let s0 = cfg.Schedule.states.(0) in
  Alcotest.(check (option int)) "p0 due to invoke 1" (Some 1)
    (algo.Pure.a_pending_invocation s0);
  let s0', sends0, dec0 =
    algo.Pure.a_step ~n ~self:0 s0 ~recv:None ~fd:lead ~invoke:(Some (1, true))
  in
  Alcotest.(check int) "p0 sends to all" 2 (List.length sends0);
  Alcotest.(check int) "no decision yet" 0 (List.length dec0);
  (* p0 receives its own promote and decides (it trusts itself). *)
  let promote = List.assoc 0 sends0 in
  let _, _, dec0' =
    algo.Pure.a_step ~n ~self:0 s0' ~recv:(Some (0, promote)) ~fd:lead ~invoke:None
  in
  Alcotest.(check (list (pair int bool))) "p0 decides true" [ (1, true) ] dec0';
  (* p1 invokes with false but receives the leader's promote and decides
     the leader's value true. *)
  let s1 = cfg.Schedule.states.(1) in
  let s1', _, _ =
    algo.Pure.a_step ~n ~self:1 s1 ~recv:None ~fd:lead ~invoke:(Some (1, false))
  in
  let _, _, dec1 =
    algo.Pure.a_step ~n ~self:1 s1' ~recv:(Some (0, promote)) ~fd:lead ~invoke:None
  in
  Alcotest.(check (list (pair int bool))) "p1 decides leader's true" [ (1, true) ] dec1

let test_pure_ec_rejects_out_of_order () =
  let n = 2 in
  let algo = Pure.ec_omega in
  let cfg = Schedule.initial algo ~n in
  Alcotest.check_raises "skip instance"
    (Invalid_argument "Pure.ec_step: out-of-order invocation")
    (fun () ->
       ignore
         (algo.Pure.a_step ~n ~self:0 cfg.Schedule.states.(0) ~recv:None
            ~fd:(Fd_value.leader 0) ~invoke:(Some (2, true))))

(* ------------------------------------------------------------------ *)
(* Simulation tree                                                     *)
(* ------------------------------------------------------------------ *)

let test_tree_grows_and_tags () =
  let dag, _, _ = build_dag ~n:2 ~rounds:6 ~omega_stabilize:0 () in
  let tree = Sim_tree.create ~dag ~algo:Pure.ec_omega ~width:2 () in
  Sim_tree.expand tree ~max_depth:6 ~max_nodes:20_000;
  Alcotest.(check bool) "tree grew" true (Sim_tree.size tree > 10);
  let tags = Sim_tree.tags tree ~instance:1 in
  (* Invocation values branch, so with a stable leader the root must see
     both 0-deciding and 1-deciding descendants: the root is 1-bivalent. *)
  Alcotest.(check bool) "root bivalent for instance 1" true
    (Sim_tree.is_bivalent tags.(0))

let test_tree_depth_respected () =
  let dag, _, _ = build_dag ~n:2 ~rounds:6 () in
  let tree = Sim_tree.create ~dag ~algo:Pure.ec_omega ~width:1 () in
  Sim_tree.expand tree ~max_depth:3 ~max_nodes:100_000;
  let max_depth = ref 0 in
  for id = 0 to Sim_tree.size tree - 1 do
    max_depth := max !max_depth (Sim_tree.depth tree id)
  done;
  Alcotest.(check int) "depth bound" 3 !max_depth

(* Structural qcheck properties of tags over randomized scenarios. *)
let random_tree_gen =
  QCheck.make ~print:(fun (seed, stab) -> Printf.sprintf "seed=%d stab=%d" seed stab)
    QCheck.Gen.(pair (int_bound 1000) (int_range 0 24))

let with_random_tree (seed, stab) f =
  let pattern = Failures.none ~n:2 in
  let pre =
    if seed mod 2 = 0 then Detectors.Omega.Self_trust
    else Detectors.Omega.Seeded seed
  in
  let omega = Detectors.Omega.make ~pre pattern ~stabilize_at:stab in
  let dag =
    Dag.build ~pattern ~sampler:(omega_sampler omega) ~period:4 ~gossip:4 ~rounds:7
  in
  let tree = Sim_tree.create ~dag ~algo:Pure.ec_omega ~width:2 () in
  Sim_tree.expand tree ~max_depth:7 ~max_nodes:20_000;
  f tree

(* A parent's k-tag contains every child's k-tag (valencies only grow
   towards the root), and invalidity propagates upward. *)
let prop_tags_monotone_towards_root =
  QCheck.Test.make ~name:"sim_tree: k-tags contain children's k-tags" ~count:40
    random_tree_gen
    (fun input ->
       with_random_tree input (fun tree ->
           let tags = Sim_tree.tags tree ~instance:1 in
           let ok = ref true in
           for id = 0 to Sim_tree.size tree - 1 do
             List.iter
               (fun child ->
                  let tp = tags.(id) and tc = tags.(child) in
                  if not
                      (List.for_all (fun v -> List.mem v tp.Sim_tree.tg_values)
                         tc.Sim_tree.tg_values
                       && ((not tc.Sim_tree.tg_invalid) || tp.Sim_tree.tg_invalid))
                  then ok := false)
               (Sim_tree.children tree id)
           done;
           !ok))

(* Extraction is a pure function of the DAG: same DAG, same outcome. *)
let prop_extraction_deterministic =
  QCheck.Test.make ~name:"extraction: deterministic in the DAG" ~count:20
    random_tree_gen
    (fun (seed, stab) ->
       let pattern = Failures.none ~n:2 in
       let omega =
         Detectors.Omega.make ~pre:(Detectors.Omega.Seeded seed) pattern
           ~stabilize_at:stab
       in
       let dag =
         Dag.build ~pattern ~sampler:(omega_sampler omega) ~period:4 ~gossip:4
           ~rounds:8
       in
       let budget = Extraction.default_budget in
       let o1 = Extraction.extract ~algo:Pure.ec_omega ~dag ~budget ~self:0 () in
       let o2 = Extraction.extract ~algo:Pure.ec_omega ~dag ~budget ~self:0 () in
       o1.Extraction.o_leader = o2.Extraction.o_leader
       && o1.Extraction.o_tree_size = o2.Extraction.o_tree_size
       && o1.Extraction.o_bivalent = o2.Extraction.o_bivalent)

(* ------------------------------------------------------------------ *)
(* Decision gadgets on a custom automaton                              *)
(* ------------------------------------------------------------------ *)

(* "fd echo": only p0 decides, and it decides instance 1 with the value
   "my current sample designates p0" at its first step after invoking.
   With mixed samples this manufactures a textbook detector fork: the same
   p0 state, two different sampled values, opposite immediate decisions. *)
type echo_state = { e_invoked : bool; e_decided : bool }

let fd_echo : echo_state Pure.algo =
  { Pure.a_name = "fd-echo";
    a_init = (fun ~n:_ _ -> { e_invoked = false; e_decided = false });
    a_pending_invocation = (fun s -> if s.e_invoked then None else Some 1);
    a_step =
      (fun ~n ~self s ~recv:_ ~fd ~invoke ->
         match invoke with
         | Some _ -> ({ s with e_invoked = true }, [], [])
         | None ->
           if self = 0 && s.e_invoked && not s.e_decided then
             ({ s with e_decided = true }, [],
              [ (1, Fd_value.trusted ~n ~self fd = 0) ])
           else (s, [], [])) }

let test_detector_fork_found () =
  (* Samples alternate Leader 0 / Leader 1 before stabilization, so p0 has
     two reachable samples with different values from the same state. *)
  let pattern = Failures.none ~n:2 in
  let omega =
    Detectors.Omega.make ~pre:(Detectors.Omega.Rotating 4) pattern ~stabilize_at:1000
  in
  let dag =
    Dag.build ~pattern ~sampler:(omega_sampler omega) ~period:4 ~gossip:4 ~rounds:6
  in
  let tree = Sim_tree.create ~dag ~algo:fd_echo ~width:2 () in
  Sim_tree.expand tree ~max_depth:6 ~max_nodes:20_000;
  match Extraction.first_bivalent tree ~max_instance:1 with
  | None -> Alcotest.fail "no bivalent vertex"
  | Some (instance, pivot, tags) ->
    (match Extraction.find_gadget tree ~instance ~tags ~root:pivot with
     | Some g ->
       Alcotest.(check bool) "gadget is a detector fork" true
         (g.Extraction.g_kind = `Fork);
       Alcotest.(check int) "decider is the echoing process" 0
         g.Extraction.g_decider
     | None -> Alcotest.fail "no gadget found")

let test_lambda_steps_double_branching () =
  let dag, _, _ = build_dag ~n:2 ~rounds:6 ~omega_stabilize:0 () in
  let strict = Sim_tree.create ~dag ~algo:Pure.ec_omega ~width:2 () in
  let lax = Sim_tree.create ~allow_lambda:true ~dag ~algo:Pure.ec_omega ~width:2 () in
  Sim_tree.expand strict ~max_depth:5 ~max_nodes:100_000;
  Sim_tree.expand lax ~max_depth:5 ~max_nodes:100_000;
  Alcotest.(check bool) "lambda steps add schedules" true
    (Sim_tree.size lax > Sim_tree.size strict)

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

let budget = Extraction.default_budget

let test_extract_finds_bivalence () =
  (* Pre-stabilization self-trust makes decisions depend on the sampled
     leader: bivalence must be located. *)
  let dag, _, _ = build_dag ~n:2 ~rounds:8 ~omega_stabilize:12 () in
  let outcome = Extraction.extract ~algo:Pure.ec_omega ~dag ~budget ~self:1 () in
  Alcotest.(check bool) "bivalent vertex located" true (outcome.Extraction.o_bivalent <> None)

let test_algorithm3_walk_locates_bivalence () =
  (* The literal Algorithm-3 walk agrees with the scan: it locates a
     k-bivalent vertex (possibly a different one) whose tag really contains
     both values. *)
  let dag, _, _ = build_dag ~n:2 ~rounds:8 ~omega_stabilize:12 () in
  let tree = Sim_tree.create ~dag ~algo:Pure.ec_omega ~width:2 () in
  Sim_tree.expand tree ~max_depth:9 ~max_nodes:60_000;
  (match Extraction.locate_bivalent_walk tree ~max_instance:2 with
   | Some (k, node, tags) ->
     Alcotest.(check bool) "walk found bivalent" true (Sim_tree.is_bivalent tags.(node));
     Alcotest.(check bool) "instance in range" true (k >= 1 && k <= 2)
   | None -> Alcotest.fail "walk failed on a tree where the scan succeeds");
  match Extraction.first_bivalent tree ~max_instance:2 with
  | Some _ -> ()
  | None -> Alcotest.fail "scan failed"

let test_extract_gadget_decider_correct_when_all_correct () =
  let dag, pattern, _ = build_dag ~n:2 ~rounds:8 ~omega_stabilize:12 () in
  let outcome = Extraction.extract ~algo:Pure.ec_omega ~dag ~budget ~self:0 () in
  (match outcome.Extraction.o_gadget with
   | Some g ->
     Alcotest.(check bool) "decider is correct process" true
       (Failures.is_correct pattern g.Extraction.g_decider)
   | None -> ());
  Alcotest.(check bool) "leader is a valid process" true
    (outcome.Extraction.o_leader >= 0 && outcome.Extraction.o_leader < 2)

let test_emulation_stabilizes_failure_free () =
  let dag, pattern, _ =
    build_dag ~n:2 ~rounds:12 ~omega_stabilize:16 ()
  in
  let per_round =
    Extraction.emulate ~algo:Pure.ec_omega ~dag ~budget ~rounds:4 ~round_horizon:14 ()
  in
  match Extraction.stabilization ~pattern per_round with
  | Some (_, leader) ->
    Alcotest.(check bool) "stabilized on correct" true
      (Failures.is_correct pattern leader)
  | None -> Alcotest.fail "emulation did not stabilize"

let test_emulation_with_crash () =
  let pattern = Failures.of_crashes ~n:2 [ (1, 14) ] in
  let dag, _, _ =
    build_dag ~n:2 ~pattern:(Some pattern) ~rounds:12 ~omega_stabilize:16 ()
  in
  let per_round =
    Extraction.emulate ~algo:Pure.ec_omega ~dag ~budget ~rounds:4 ~round_horizon:14 ()
  in
  match Extraction.stabilization ~pattern per_round with
  | Some (_, leader) ->
    Alcotest.(check int) "stabilized on the surviving process" 0 leader
  | None -> Alcotest.fail "emulation did not stabilize"

let test_emulation_misled_then_corrected () =
  (* An adversarial prefix pointing at the (faulty) p1 must mislead the
     early extraction rounds and be corrected once the sliding window is
     past the stabilization time — the "eventually" of Omega at work. *)
  let pattern = Failures.of_crashes ~n:2 [ (1, 14) ] in
  let omega =
    Detectors.Omega.make ~pre:(Detectors.Omega.Fixed 1) pattern ~stabilize_at:18
  in
  let sampler p t = Fd_value.leader (Detectors.Omega.query omega ~self:p ~now:t) in
  let dag = Dag.build ~pattern ~sampler ~period:4 ~gossip:4 ~rounds:14 in
  let per_round =
    Extraction.emulate ~algo:Pure.ec_omega ~dag ~budget ~rounds:5 ~round_horizon:8 ()
  in
  (match per_round with
   | first :: _ ->
     Alcotest.(check (list int)) "round 0 misled towards the faulty process"
       [ 1; 1 ] first
   | [] -> Alcotest.fail "no rounds");
  match Extraction.stabilization ~pattern per_round with
  | Some (r, leader) ->
    Alcotest.(check int) "corrected to the correct process" 0 leader;
    Alcotest.(check bool) "after at least one round" true (r >= 1)
  | None -> Alcotest.fail "never stabilized"

let test_emulation_three_processes () =
  let pattern = Failures.of_crashes ~n:3 [ (2, 14) ] in
  let omega =
    Detectors.Omega.make ~pre:(Detectors.Omega.Fixed 2) pattern ~stabilize_at:18
  in
  let dag =
    Dag.build ~pattern ~sampler:(omega_sampler omega) ~period:4 ~gossip:4 ~rounds:12
  in
  let per_round =
    Extraction.emulate ~algo:Pure.ec_omega ~dag ~budget ~rounds:4 ~round_horizon:8 ()
  in
  match Extraction.stabilization ~pattern per_round with
  | Some (_, leader) ->
    Alcotest.(check bool) "n=3: stabilized on a correct process" true
      (Failures.is_correct pattern leader)
  | None -> Alcotest.fail "n=3 emulation did not stabilize"

let test_extraction_with_ep_detector () =
  (* The reduction works for any detector D implementing EC: run it with
     <>P samples feeding the trusted-leader automaton. *)
  let n = 2 in
  let pattern = Failures.none ~n in
  let ep = Detectors.Suspicions.eventually_perfect pattern ~stabilize_at:12 in
  let dag =
    Dag.build ~pattern ~sampler:(ep_sampler ep) ~period:4 ~gossip:4 ~rounds:10
  in
  let per_round =
    Extraction.emulate ~algo:Pure.ec_trusted ~dag ~budget ~rounds:3 ~round_horizon:16 ()
  in
  match Extraction.stabilization ~pattern per_round with
  | Some (_, leader) ->
    Alcotest.(check bool) "stabilized on correct" true
      (Failures.is_correct pattern leader)
  | None -> Alcotest.fail "emulation with <>P did not stabilize"

(* ------------------------------------------------------------------ *)
(* The communication task as a real protocol (Figure 1)                *)
(* ------------------------------------------------------------------ *)

let run_dag_protocol ?(n = 2) ?(deadline = 80) ?(timer_period = 3)
    ?pattern ?(stabilize = 18) ?(pre = Detectors.Omega.Fixed 1) () =
  let pattern = match pattern with Some p -> p | None -> Failures.none ~n in
  let omega = Detectors.Omega.make ~pre pattern ~stabilize_at:stabilize in
  let config = { (Engine.default_config ~n ~deadline) with pattern; timer_period } in
  let make_node ctx =
    let sample () =
      Fd_value.leader
        (Detectors.Omega.query omega ~self:ctx.Engine.self ~now:(ctx.Engine.now ()))
    in
    let t, node = Dag_protocol.create ctx ~sample in
    (node, t)
  in
  let _, states = Engine.run_with config ~make_node ~inputs:[] in
  (pattern, states)

let test_dag_protocol_grows_and_converges () =
  let pattern, states = run_dag_protocol () in
  Array.iter
    (fun t ->
       Alcotest.(check bool) "grew" true (Dag_protocol.size t > 10);
       Alcotest.(check bool) "same-creator order" true
         (Dag_protocol.check_same_creator_order t))
    states;
  (* Correct processes' local DAGs agree on common vertices. *)
  List.iter
    (fun p ->
       List.iter
         (fun q ->
            Alcotest.(check bool) "local DAGs agree" true
              (Dag_protocol.agrees_with states.(p) states.(q)))
         (Failures.correct pattern))
    (Failures.correct pattern)

let test_dag_protocol_transitive () =
  (* O(V^3): keep the run short. *)
  let _, states = run_dag_protocol ~deadline:30 () in
  Array.iter
    (fun t ->
       Alcotest.(check bool) "transitive" true (Dag_protocol.check_transitive t))
    states

let test_dag_protocol_crash_stops_contributions () =
  let pattern = Failures.of_crashes ~n:2 [ (1, 20) ] in
  let _, states = run_dag_protocol ~pattern ~deadline:80 () in
  (* p0's local DAG has no p1 vertex sampled after the crash. *)
  let dag = Dag_protocol.export states.(0) ~pattern in
  List.iter
    (fun v ->
       if v.Dag.v_proc = 1 then
         Alcotest.(check bool) "sampled while alive" true (v.Dag.v_time < 20))
    (Dag.vertices dag)

let test_extraction_from_protocol_dags () =
  (* The full Figure 6 loop over the PROTOCOL-built local DAGs: each
     correct process extracts from its own G_p, on a sliding window; all
     stabilize on the same correct process despite the adversarial prefix
     pointing at the faulty p1. *)
  let pattern = Failures.of_crashes ~n:2 [ (1, 20) ] in
  let _, states = run_dag_protocol ~pattern ~deadline:140 ~stabilize:24 () in
  let budget = Extraction.default_budget in
  let outputs_per_round r =
    List.map
      (fun p ->
         let local = Dag_protocol.export states.(p) ~pattern in
         let visible =
           Dag.window local ~from_horizon:(r * 20) ~to_horizon:((r * 20) + 40)
         in
         (Extraction.extract ~algo:Pure.ec_omega ~dag:visible ~budget ~self:p ())
           .Extraction.o_leader)
      (Failures.correct pattern)
  in
  let rounds = List.init 4 outputs_per_round in
  (* The last rounds' windows are fully post-crash, post-stabilization. *)
  match List.rev rounds with
  | last :: _ ->
    List.iter
      (fun leader ->
         Alcotest.(check bool) "extracted a correct process" true
           (Failures.is_correct pattern leader))
      last
  | [] -> Alcotest.fail "no rounds"

let () =
  let qc = List.map QCheck_alcotest.to_alcotest
      [ prop_tags_monotone_towards_root; prop_extraction_deterministic ]
  in
  Alcotest.run "cht"
    [ ("dag",
       [ Alcotest.test_case "B.2 properties" `Quick test_dag_properties;
         Alcotest.test_case "crashed processes stop sampling" `Quick
           test_dag_crashed_stop_sampling;
         Alcotest.test_case "prefix" `Quick test_dag_prefix;
         Alcotest.test_case "bounded extensions" `Quick test_dag_extensions_bounded ]);
      ("pure",
       [ Alcotest.test_case "decides leader value" `Quick
           test_pure_ec_decides_leader_value;
         Alcotest.test_case "rejects out-of-order" `Quick
           test_pure_ec_rejects_out_of_order ]);
      ("sim_tree",
       [ Alcotest.test_case "grows and tags" `Quick test_tree_grows_and_tags;
         Alcotest.test_case "depth bound" `Quick test_tree_depth_respected;
         Alcotest.test_case "lambda steps add schedules" `Quick
           test_lambda_steps_double_branching ]);
      ("gadgets",
       [ Alcotest.test_case "detector fork found" `Quick test_detector_fork_found ]);
      ("dag_protocol (figure 1)",
       [ Alcotest.test_case "grows and converges" `Quick
           test_dag_protocol_grows_and_converges;
         Alcotest.test_case "transitive" `Quick test_dag_protocol_transitive;
         Alcotest.test_case "crash stops contributions" `Quick
           test_dag_protocol_crash_stops_contributions;
         Alcotest.test_case "extraction from protocol DAGs" `Quick
           test_extraction_from_protocol_dags ]);
      ("extraction",
       [ Alcotest.test_case "finds bivalence" `Quick test_extract_finds_bivalence;
         Alcotest.test_case "algorithm 3 walk" `Quick
           test_algorithm3_walk_locates_bivalence;
         Alcotest.test_case "gadget decider correct" `Quick
           test_extract_gadget_decider_correct_when_all_correct;
         Alcotest.test_case "emulation stabilizes" `Quick
           test_emulation_stabilizes_failure_free;
         Alcotest.test_case "emulation with crash" `Quick test_emulation_with_crash;
         Alcotest.test_case "misled then corrected" `Quick
           test_emulation_misled_then_corrected;
         Alcotest.test_case "works with <>P" `Quick test_extraction_with_ep_detector;
         Alcotest.test_case "three processes" `Quick test_emulation_three_processes ]);
      ("structure", qc);
    ]
