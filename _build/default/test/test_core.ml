(* Tests for the core library: Algorithms 1, 2, 4, 5, 6, 7, the causal
   graph, values, and the property checkers themselves. *)

open Simulator
open Ec_core

let msg ?(tag = "") ?(deps = []) origin sn = App_msg.make ~origin ~sn ~tag ~deps ()

(* ------------------------------------------------------------------ *)
(* Harness: run Algorithm 5 under a configurable scenario.             *)
(* ------------------------------------------------------------------ *)

let run_etob_omega ?(n = 3) ?(seed = 1) ?(deadline = 200) ?(timer_period = 2)
    ?(delay = Net.constant 1) ?pattern ?(omega_stabilize = 0)
    ?(omega_pre = Detectors.Omega.Self_trust) ~broadcasts () =
  let pattern = match pattern with Some p -> p | None -> Failures.none ~n in
  let omega = Detectors.Omega.make ~pre:omega_pre pattern ~stabilize_at:omega_stabilize in
  let config = { (Engine.default_config ~n ~deadline) with
                 pattern; seed; timer_period; delay } in
  let make_node ctx =
    let t, node = Etob_omega.create ctx ~omega:(Detectors.Omega.module_of omega ctx) in
    (node, Etob_omega.service t)
  in
  let inputs =
    List.map (fun (t, p, m) -> (t, p, Etob_intf.Broadcast_etob m)) broadcasts
  in
  let trace, _services = Engine.run_with config ~make_node ~inputs in
  (pattern, trace)

let check_verdict name (v : Properties.verdict) =
  Alcotest.(check bool) (name ^ ": " ^ String.concat "; " v.Properties.violations)
    true v.Properties.ok

(* ------------------------------------------------------------------ *)
(* App_msg                                                             *)
(* ------------------------------------------------------------------ *)

let test_app_msg_identity () =
  let a = msg 0 1 and b = msg 0 1 ~tag:"different-content" in
  Alcotest.(check bool) "same id => equal" true (App_msg.equal a b);
  Alcotest.(check bool) "different sn" false (App_msg.equal a (msg 0 2))

let test_app_msg_prefix () =
  let a = msg 0 0 and b = msg 1 0 and c = msg 2 0 in
  Alcotest.(check bool) "empty prefix" true (App_msg.is_prefix [] [ a; b ]);
  Alcotest.(check bool) "proper prefix" true (App_msg.is_prefix [ a ] [ a; b; c ]);
  Alcotest.(check bool) "equal" true (App_msg.is_prefix [ a; b ] [ a; b ]);
  Alcotest.(check bool) "not prefix" false (App_msg.is_prefix [ b ] [ a; b ]);
  Alcotest.(check bool) "longer" false (App_msg.is_prefix [ a; b ] [ a ])

(* ------------------------------------------------------------------ *)
(* Value                                                               *)
(* ------------------------------------------------------------------ *)

let test_value_tag_roundtrip () =
  List.iter
    (fun v ->
       match Value.of_tag (Value.to_tag v) with
       | Some v' -> Alcotest.(check bool) "roundtrip" true (Value.equal v v')
       | None -> Alcotest.fail "roundtrip failed")
    [ Value.Flag true; Value.Flag false; Value.Num 0; Value.Num (-42); Value.Num 17 ]

let test_value_tag_rejects_seq () =
  Alcotest.check_raises "Seq rejected"
    (Invalid_argument "Value.to_tag: only scalar values embed in tags")
    (fun () -> ignore (Value.to_tag (Value.Seq [])))

let test_value_compare_total () =
  let vs = [ Value.Flag false; Value.Flag true; Value.Num 3; Value.Seq [ msg 0 0 ];
             Value.Vec [ Value.Num 1 ] ] in
  List.iter
    (fun a ->
       List.iter
         (fun b ->
            let ab = Value.compare a b and ba = Value.compare b a in
            Alcotest.(check int) "antisymmetric" ab (-ba);
            Alcotest.(check bool) "consistent with equal" (ab = 0) (Value.equal a b))
         vs)
    vs

(* ------------------------------------------------------------------ *)
(* Causal graph                                                        *)
(* ------------------------------------------------------------------ *)

let test_cg_linearize_respects_deps () =
  let m1 = msg 0 0 in
  let m2 = msg 1 0 ~deps:[ App_msg.id m1 ] in
  let m3 = msg 2 0 ~deps:[ App_msg.id m2 ] in
  let g = List.fold_left Causal_graph.add Causal_graph.empty [ m3; m1; m2 ] in
  let seq = Causal_graph.linearize g ~prefix:[] in
  Alcotest.(check bool) "valid" true (Causal_graph.is_valid_linearization g ~prefix:[] seq);
  Alcotest.(check (list string)) "causal order"
    [ "p0#0"; "p1#0"; "p2#0" ]
    (List.map (fun m -> Format.asprintf "%a" App_msg.pp_id (App_msg.id m)) seq)

let test_cg_prefix_kept () =
  let m1 = msg 0 0 and m2 = msg 1 0 in
  let m3 = msg 2 0 in
  let g = List.fold_left Causal_graph.add Causal_graph.empty [ m1; m2; m3 ] in
  (* A prefix that is NOT in tie-break order must be preserved verbatim. *)
  let prefix = [ m2; m1 ] in
  let seq = Causal_graph.linearize g ~prefix in
  Alcotest.(check bool) "prefix kept" true (App_msg.is_prefix prefix seq);
  Alcotest.(check int) "all messages" 3 (List.length seq)

let test_cg_union_commutative_content () =
  let m1 = msg 0 0 in
  let m2 = msg 1 0 ~deps:[ App_msg.id m1 ] in
  let g1 = Causal_graph.add Causal_graph.empty m1 in
  let g2 = Causal_graph.add Causal_graph.empty m2 in
  let u1 = Causal_graph.union g1 g2 and u2 = Causal_graph.union g2 g1 in
  Alcotest.(check int) "same size" (Causal_graph.size u1) (Causal_graph.size u2);
  Alcotest.(check bool) "same linearization" true
    (List.for_all2 App_msg.equal
       (Causal_graph.linearize u1 ~prefix:[])
       (Causal_graph.linearize u2 ~prefix:[]))

let test_cg_idempotent_add () =
  let m = msg 0 0 in
  let g = Causal_graph.add (Causal_graph.add Causal_graph.empty m) m in
  Alcotest.(check int) "one node" 1 (Causal_graph.size g)

(* qcheck: any random DAG linearizes validly, with any tie-break. *)
let arbitrary_graph =
  QCheck.make
    ~print:(fun msgs -> Format.asprintf "%a" App_msg.pp_seq msgs)
    QCheck.Gen.(
      let* count = int_range 1 12 in
      let rec build acc i =
        if i >= count then return (List.rev acc)
        else
          let* origin = int_range 0 2 in
          let* dep_mask = int_range 0 (max 1 (List.length acc)) in
          let deps =
            List.filteri (fun j _ -> j < dep_mask) acc |> List.map App_msg.id
          in
          build (App_msg.make ~origin ~sn:i ~deps () :: acc) (i + 1)
      in
      build [] 0)

let prop_linearize_valid =
  QCheck.Test.make ~name:"causal_graph: linearize is a valid topological extension"
    ~count:200 arbitrary_graph (fun msgs ->
        let g = List.fold_left Causal_graph.add Causal_graph.empty msgs in
        let seq = Causal_graph.linearize g ~prefix:[] in
        Causal_graph.is_valid_linearization g ~prefix:[] seq)

let prop_linearize_tie_break_independent =
  QCheck.Test.make
    ~name:"causal_graph: any tie-break yields a valid linearization"
    ~count:200 arbitrary_graph (fun msgs ->
        let g = List.fold_left Causal_graph.add Causal_graph.empty msgs in
        let reversed a b = App_msg.compare b a in
        let seq = Causal_graph.linearize ~tie_break:reversed g ~prefix:[] in
        Causal_graph.is_valid_linearization g ~prefix:[] seq)

let prop_linearize_monotone =
  QCheck.Test.make
    ~name:"causal_graph: relinearizing with a prior result as prefix extends it"
    ~count:200 arbitrary_graph (fun msgs ->
        match msgs with
        | [] -> true
        | _ ->
          let half = List.filteri (fun i _ -> i < List.length msgs / 2) msgs in
          let g_half = List.fold_left Causal_graph.add Causal_graph.empty half in
          let prefix = Causal_graph.linearize g_half ~prefix:[] in
          let g = List.fold_left Causal_graph.add Causal_graph.empty msgs in
          let seq = Causal_graph.linearize g ~prefix in
          App_msg.is_prefix prefix seq
          && Causal_graph.is_valid_linearization g ~prefix seq)

(* ------------------------------------------------------------------ *)
(* Algorithm 5 end-to-end                                              *)
(* ------------------------------------------------------------------ *)

let test_etob_omega_failure_free () =
  let broadcasts =
    [ (5, 0, msg 0 0 ~tag:"a"); (7, 1, msg 1 0 ~tag:"b"); (9, 2, msg 2 0 ~tag:"c") ]
  in
  let pattern, trace = run_etob_omega ~n:3 ~broadcasts () in
  let run = Properties.etob_run_of_trace pattern trace in
  let report = Properties.etob_report run in
  check_verdict "validity" report.Properties.validity;
  check_verdict "no-creation" report.Properties.no_creation;
  check_verdict "no-duplication" report.Properties.no_duplication;
  check_verdict "agreement" report.Properties.agreement;
  check_verdict "causal-order" report.Properties.causal_order;
  Alcotest.(check int) "final length" 3 (List.length (Properties.final_d run 0))

(* ------------------------------------------------------------------ *)
(* Algorithm 2's wire encoding                                         *)
(* ------------------------------------------------------------------ *)

let test_etob_to_ec_tag_roundtrip () =
  List.iter
    (fun (instance, v) ->
       let tag = Etob_to_ec.tag_of ~instance v in
       match Etob_to_ec.parse_tag tag with
       | Some (l, v') ->
         Alcotest.(check int) "instance" instance l;
         Alcotest.(check bool) "value" true (Value.equal v v')
       | None -> Alcotest.failf "failed to parse %s" tag)
    [ (1, Value.Flag true); (7, Value.Flag false); (42, Value.Num (-3));
      (1000, Value.Num 0) ]

let test_etob_to_ec_tag_rejects_garbage () =
  List.iter
    (fun tag ->
       Alcotest.(check bool) tag true (Etob_to_ec.parse_tag tag = None))
    [ ""; "ec2"; "ec2:x:f:true"; "other:1:n:3"; "ec2:1:bogus" ]

(* ------------------------------------------------------------------ *)
(* Scenario-based suites (through the shared harness)                  *)
(* ------------------------------------------------------------------ *)

let oracle ?(pre = Detectors.Omega.Self_trust) stabilize_at =
  Harness.Scenario.Oracle { stabilize_at; pre }

let num_values self ~instance = Value.Num ((self * 100) + instance)
let flag_values self ~instance = Value.Flag ((self + instance) mod 2 = 0)

(* --- Algorithm 4 (EC from Omega) ---------------------------------- *)

let test_ec_omega_stable_leader () =
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:150) with
                omega = oracle 0 } in
  let trace = Harness.Scenario.run_ec_omega setup ~propose_value:num_values
      ~max_instance:8 in
  let run = Properties.ec_run_of_trace setup.Harness.Scenario.pattern trace in
  let report = Properties.ec_report run ~instances:8 in
  check_verdict "integrity" report.Properties.integrity;
  check_verdict "validity" report.Properties.ec_validity;
  check_verdict "termination" report.Properties.termination;
  Alcotest.(check int) "agreement from the first instance" 1
    report.Properties.agreement_index

let test_ec_omega_late_stabilization () =
  (* The drivers run through roughly one instance per tick, so the instance
     count must comfortably outlast tau_Omega for post-stabilization
     instances to exist. *)
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:400) with
                omega = oracle ~pre:Detectors.Omega.Self_trust 40 } in
  let trace = Harness.Scenario.run_ec_omega setup ~propose_value:num_values
      ~max_instance:60 in
  let run = Properties.ec_run_of_trace setup.Harness.Scenario.pattern trace in
  let report = Properties.ec_report run ~instances:60 in
  Alcotest.(check bool) "all clauses with eventual agreement" true
    (Properties.ec_ok ~agreement_by:60 report);
  (* Self-trust really disagreed before stabilization. *)
  Alcotest.(check bool) "disagreement before tau_Omega" true
    (report.Properties.agreement_index > 1)

let test_ec_omega_no_majority () =
  (* The paper's headline: Algorithm 4 needs NO correct majority. *)
  let pattern = Failures.of_crashes ~n:5 [ (2, 40); (3, 40); (4, 40) ] in
  let setup = { (Harness.Scenario.default ~n:5 ~deadline:400) with
                pattern; omega = oracle 0 } in
  let trace = Harness.Scenario.run_ec_omega setup ~propose_value:num_values
      ~max_instance:10 in
  let run = Properties.ec_run_of_trace pattern trace in
  let report = Properties.ec_report run ~instances:10 in
  Alcotest.(check bool)
    "EC holds with a minority of correct processes" true
    (Properties.ec_ok ~agreement_by:10 report)

let test_ec_omega_rotating_prefix () =
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:300) with
                omega = oracle ~pre:(Detectors.Omega.Rotating 6) 50 } in
  let trace = Harness.Scenario.run_ec_omega setup ~propose_value:flag_values
      ~max_instance:10 in
  let run = Properties.ec_run_of_trace setup.Harness.Scenario.pattern trace in
  let report = Properties.ec_report run ~instances:10 in
  Alcotest.(check bool) "EC under rotating prefix" true
    (Properties.ec_ok ~agreement_by:10 report)

let test_minimum_system_size () =
  (* The paper's model starts at n = 2: both algorithms must work there,
     including with one of the two processes crashing (no majority left). *)
  let pattern = Failures.of_crashes ~n:2 [ (1, 40) ] in
  let setup = { (Harness.Scenario.default ~n:2 ~deadline:300) with
                pattern; omega = oracle 0 } in
  let trace = Harness.Scenario.run_ec_omega setup ~propose_value:num_values
      ~max_instance:8 in
  let run = Properties.ec_run_of_trace pattern trace in
  Alcotest.(check bool) "EC at n=2 with a crash" true
    (Properties.ec_ok ~agreement_by:8 (Properties.ec_report run ~instances:8));
  let setup = { (Harness.Scenario.default ~n:2 ~deadline:300) with
                pattern; omega = oracle 0 } in
  let inputs =
    [ (10, 0, Harness.Scenario.Post "both-alive");
      (100, 0, Harness.Scenario.Post "solo") ]
  in
  let trace = Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Algorithm_5 in
  let run = Properties.etob_run_of_trace pattern trace in
  Alcotest.(check bool) "ETOB at n=2 with a crash" true
    (Properties.etob_base_ok (Properties.etob_report run));
  Alcotest.(check int) "survivor delivered both" 2
    (List.length (Properties.final_d run 0))

let prop_ec_omega_any_environment =
  QCheck.Test.make ~name:"algorithm 4: EC in any environment (random runs)"
    ~count:25 QCheck.small_int
    (fun seed ->
       let rng = Rng.create seed in
       let n = 2 + Rng.int rng 4 in
       (* ANY environment: up to n-1 crashes, all before time 50. *)
       let pattern = Failures.random ~rng ~n ~max_faulty:(n - 1) ~horizon:50 in
       let setup = { (Harness.Scenario.default ~n ~deadline:600) with
                     pattern; seed;
                     delay = Net.uniform ~min:1 ~max:3;
                     omega = oracle ~pre:(Detectors.Omega.Seeded seed) 60 } in
       let trace = Harness.Scenario.run_ec_omega setup ~propose_value:num_values
           ~max_instance:50 in
       let run = Properties.ec_run_of_trace pattern trace in
       Properties.ec_ok ~agreement_by:50 (Properties.ec_report run ~instances:50))

(* --- Algorithm 5 (ETOB from Omega) --------------------------------- *)

let test_etob_omega_strong_tob_with_stable_omega () =
  (* Claim (P2) of Section 5: with Omega stable from the start, Algorithm 5
     implements full (strong) total order broadcast. *)
  let setup = { (Harness.Scenario.default ~n:4 ~deadline:200) with
                omega = oracle 0; delay = Net.uniform ~min:1 ~max:4 } in
  let inputs = Harness.Scenario.spread_posts ~n:4 ~count:10 ~from_time:5 ~every:3 in
  let trace = Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Algorithm_5 in
  let report = Harness.Scenario.etob_report setup trace in
  Alcotest.(check bool)
    (Format.asprintf "strong TOB: %a" Properties.pp_etob_report report)
    true (Properties.is_strong_tob report);
  check_verdict "causal order" report.Properties.causal_order

let partition_setup ~n ~heal =
  let blocks = [ [ 0; 1; 2 ]; [ 3; 4 ] ] in
  let spec = { Net.blocks; from_time = 5; until_time = heal } in
  { (Harness.Scenario.default ~n ~deadline:(heal * 3)) with
    delay = Net.partitioned spec ~base:(Net.constant 1);
    omega = oracle ~pre:(Detectors.Omega.Blockwise blocks) heal }

let test_etob_omega_partition_convergence () =
  (* Both sides of a partition keep making progress under their own leader;
     after healing (tau_Omega = heal) everything converges.  Causal order
     must hold throughout, including DURING the partition (claim P3). *)
  let heal = 60 in
  let setup = partition_setup ~n:5 ~heal in
  let inputs = Harness.Scenario.spread_posts ~n:5 ~count:15 ~from_time:8 ~every:3 in
  let trace = Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Algorithm_5 in
  let run = Properties.etob_run_of_trace setup.Harness.Scenario.pattern trace in
  let report = Properties.etob_report run in
  Alcotest.(check bool) "base properties" true (Properties.etob_base_ok report);
  check_verdict "causal order during partition" report.Properties.causal_order;
  check_verdict "dependencies present" (Properties.check_deps_present run);
  (* Lemma 3's bound: convergence by tau_Omega + Delta_t + Delta_c. *)
  let bound = heal + setup.Harness.Scenario.timer_period + 1 + 2 in
  let tau = Properties.etob_convergence_time report in
  Alcotest.(check bool)
    (Printf.sprintf "tau=%d <= bound=%d" tau bound) true (tau <= bound);
  (* The scenario must genuinely diverge during the partition, otherwise it
     shows nothing. *)
  Alcotest.(check bool) "divergence happened" true (tau > 0)

let test_etob_omega_no_majority () =
  (* Availability without a correct majority: 3 of 5 processes crash, and
     the survivors keep broadcasting and stably delivering. *)
  let pattern = Failures.of_crashes ~n:5 [ (2, 20); (3, 20); (4, 20) ] in
  let setup = { (Harness.Scenario.default ~n:5 ~deadline:200) with
                pattern; omega = oracle 0 } in
  let inputs =
    [ (10, 0, Harness.Scenario.Post "before");
      (40, 1, Harness.Scenario.Post "after-crashes");
      (60, 0, Harness.Scenario.Post "late") ]
  in
  let trace = Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Algorithm_5 in
  let run = Properties.etob_run_of_trace pattern trace in
  let report = Properties.etob_report run in
  Alcotest.(check bool) "base properties" true (Properties.etob_base_ok report);
  Alcotest.(check int) "all three messages stably delivered" 3
    (List.length (Properties.final_d run 0))

let test_etob_omega_two_step_latency () =
  (* Claim (P1): two communication steps per delivery under a stable
     leader.  Delta = 3 ticks; from the broadcast, the update reaches the
     leader in Delta and the promote reaches everyone in another Delta (plus
     at most one timer period of batching at the leader). *)
  let delta = 3 in
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:120) with
                delay = Net.constant delta; omega = oracle 0; timer_period = 1 } in
  let post_at = 50 in
  let inputs = [ (post_at, 1, Harness.Scenario.Post "probe") ] in
  let trace = Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Algorithm_5 in
  let run = Properties.etob_run_of_trace setup.Harness.Scenario.pattern trace in
  let probe =
    List.find_map
      (fun (_, _, o) ->
         match o with
         | Etob_intf.Etob_broadcast m when m.App_msg.tag = "probe" -> Some m
         | _ -> None)
      (Trace.outputs trace)
  in
  match probe with
  | None -> Alcotest.fail "probe not broadcast"
  | Some m ->
    (match Properties.stable_delivery_time run m with
     | None -> Alcotest.fail "probe not stably delivered"
     | Some t ->
       let latency = t - post_at in
       (* Two communication steps, plus at most one timer period of
          batching at the leader. *)
       Alcotest.(check bool)
         (Printf.sprintf "latency %d within [2D, 2D + timer]" latency)
         true
         (latency >= 2 * delta
          && latency <= (2 * delta) + setup.Harness.Scenario.timer_period + 1))

let test_etob_omega_with_elected_omega () =
  (* The full system: Algorithm 5 over the heartbeat-based Omega emulation
     rather than the oracle. *)
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:250) with
                omega = Harness.Scenario.Elected { initial_timeout = 6 } } in
  let inputs = Harness.Scenario.spread_posts ~n:3 ~count:6 ~from_time:30 ~every:5 in
  let trace = Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Algorithm_5 in
  let report = Harness.Scenario.etob_report setup trace in
  Alcotest.(check bool) "base properties over elected omega" true
    (Properties.etob_base_ok report);
  check_verdict "causal order" report.Properties.causal_order

let prop_etob_omega_random_runs =
  QCheck.Test.make ~name:"algorithm 5: ETOB in any environment (random runs)"
    ~count:25 QCheck.small_int
    (fun seed ->
       let rng = Rng.create seed in
       let n = 3 + Rng.int rng 3 in
       let pattern = Failures.random ~rng ~n ~max_faulty:(n - 1) ~horizon:40 in
       let stabilize = 50 + Rng.int rng 30 in
       let setup = { (Harness.Scenario.default ~n ~deadline:400) with
                     pattern; seed;
                     delay = Net.uniform ~min:1 ~max:4;
                     omega = oracle ~pre:(Detectors.Omega.Seeded seed) stabilize } in
       let inputs = Harness.Scenario.spread_posts ~n ~count:8 ~from_time:5 ~every:4 in
       let trace = Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Algorithm_5 in
       let run = Properties.etob_run_of_trace pattern trace in
       let report = Properties.etob_report run in
       Properties.etob_base_ok report
       && report.Properties.causal_order.Properties.ok
       && Properties.etob_convergence_time report <= stabilize + 2 + 4 + 2)

(* --- Service-level details ------------------------------------------ *)

let test_fresh_msg_causal_deps () =
  (* fresh_msg must declare genuine happens-before predecessors: the last
     own broadcast and the last delivered message. *)
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:120) with
                omega = oracle 0 } in
  let omega_of = Harness.Scenario.omega_module setup in
  let make_node ctx =
    let omega, omega_node = omega_of ctx in
    let t, node = Etob_omega.create ctx ~omega in
    let service = Etob_omega.service t in
    (Engine.stack [ omega_node; node; Harness.Scenario.post_driver service ],
     service)
  in
  let inputs =
    [ (5, 0, Harness.Scenario.Post "first");
      (40, 0, Harness.Scenario.Post "second");
      (60, 1, Harness.Scenario.Post "reply") ]
  in
  let trace, _ = Engine.run_with (Harness.Scenario.engine_config setup)
      ~make_node ~inputs in
  let broadcasts =
    List.filter_map
      (fun (_, _, o) ->
         match o with Etob_intf.Etob_broadcast m -> Some m | _ -> None)
      (Trace.outputs trace)
  in
  match List.sort App_msg.compare broadcasts with
  | [ first; second; reply ] ->
    Alcotest.(check (list (pair int int))) "first has no deps" [] first.App_msg.deps;
    (* p0's second message depends on its first (same-sender order) and on
       the last message it had delivered (its own first, here). *)
    Alcotest.(check bool) "second depends on first" true
      (List.mem (App_msg.id first) second.App_msg.deps);
    (* p1's reply depends on what it last delivered: p0's second. *)
    Alcotest.(check bool) "reply depends on second" true
      (List.mem (App_msg.id second) reply.App_msg.deps)
  | _ -> Alcotest.fail "expected three broadcasts"

let test_eic_input_driven () =
  (* The EIC abstraction driven through engine inputs rather than the
     harness driver: one instance proposed externally at each process. *)
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:200) with
                omega = oracle 0 } in
  let omega_of = Harness.Scenario.omega_module setup in
  let make_node ctx =
    let omega, omega_node = omega_of ctx in
    let ec, ec_node = Ec_omega.create ~layer:"ec-inner" ctx ~omega in
    let eic, eic_node = Ec_to_eic.create ctx ~ec:(Ec_omega.service ec) in
    ignore (Ec_to_eic.service eic);
    (Engine.stack [ omega_node; ec_node; eic_node ], ())
  in
  let inputs =
    List.map
      (fun p -> (5 + p, p, Eic_intf.Propose_eic { instance = 1;
                                                  value = Value.Num (p * 7) }))
      [ 0; 1; 2 ]
  in
  let trace, _ = Engine.run_with (Harness.Scenario.engine_config setup)
      ~make_node ~inputs in
  let run = Properties.eic_run_of_trace setup.Harness.Scenario.pattern trace in
  check_verdict "termination" (Properties.check_eic_termination run ~instances:1);
  check_verdict "validity" (Properties.check_eic_validity run);
  check_verdict "agreement" (Properties.check_eic_agreement run)

(* --- The binary-to-multivalued lift ([23] in the paper) ------------- *)

let test_binary_lift_stable_leader () =
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:400) with
                omega = oracle 0 } in
  let trace = Harness.Scenario.run_ec_lifted setup ~propose_value:num_values
      ~max_instance:6 in
  let run = Properties.ec_run_of_trace setup.Harness.Scenario.pattern trace in
  let report = Properties.ec_report run ~instances:6 in
  check_verdict "integrity" report.Properties.integrity;
  check_verdict "validity" report.Properties.ec_validity;
  check_verdict "termination" report.Properties.termination;
  Alcotest.(check int) "agreement from instance 1" 1 report.Properties.agreement_index;
  (* The decided values are genuinely multivalued (Num, not Flag). *)
  let distinct =
    List.sort_uniq compare (Properties.decided_instances run)
  in
  Alcotest.(check int) "six instances decided" 6 (List.length distinct)

let test_binary_lift_late_stabilization () =
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:800) with
                omega = oracle ~pre:Detectors.Omega.Self_trust 40 } in
  let trace = Harness.Scenario.run_ec_lifted setup ~propose_value:num_values
      ~max_instance:20 in
  let run = Properties.ec_run_of_trace setup.Harness.Scenario.pattern trace in
  let report = Properties.ec_report run ~instances:20 in
  Alcotest.(check bool)
    (Format.asprintf "lift with eventual agreement: %a" Properties.pp_ec_report report)
    true (Properties.ec_ok ~agreement_by:20 report)

let test_binary_lift_with_crash () =
  let pattern = Failures.of_crashes ~n:3 [ (2, 30) ] in
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:800) with
                pattern; omega = oracle 0 } in
  let trace = Harness.Scenario.run_ec_lifted setup ~propose_value:num_values
      ~max_instance:8 in
  let run = Properties.ec_run_of_trace pattern trace in
  let report = Properties.ec_report run ~instances:8 in
  Alcotest.(check bool)
    (Format.asprintf "lift under crash: %a" Properties.pp_ec_report report)
    true (Properties.ec_ok ~agreement_by:8 report)

(* --- Theorem 1: the transformations ------------------------------- *)

let test_alg1_over_alg4_is_etob () =
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:400) with
                omega = oracle 30 } in
  let inputs = Harness.Scenario.spread_posts ~n:3 ~count:9 ~from_time:5 ~every:4 in
  let trace =
    Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Algorithm_1_over_4
  in
  let run = Properties.etob_run_of_trace setup.Harness.Scenario.pattern trace in
  let report = Properties.etob_report run in
  Alcotest.(check bool)
    (Format.asprintf "T_EC->ETOB: %a" Properties.pp_etob_report report)
    true (Properties.etob_base_ok report);
  Alcotest.(check bool) "eventual stability" true
    (Properties.etob_convergence_time report <= 60)

let test_alg2_over_alg5_is_ec () =
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:500) with
                omega = oracle 30 } in
  let trace =
    Harness.Scenario.run_ec_via_etob setup Harness.Scenario.Algorithm_5
      ~propose_value:flag_values ~max_instance:8
  in
  let run = Properties.ec_run_of_trace setup.Harness.Scenario.pattern trace in
  let report = Properties.ec_report run ~instances:8 in
  Alcotest.(check bool)
    (Format.asprintf "T_ETOB->EC: %a" Properties.pp_ec_report report)
    true (Properties.ec_ok ~agreement_by:8 report)

let test_alg2_over_paxos_is_consensus () =
  (* Over the strong baseline, the transformation yields agreement from the
     very first instance: it is (non-eventual) repeated consensus. *)
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:600) with
                omega = oracle 0; timer_period = 3 } in
  let trace =
    Harness.Scenario.run_ec_via_etob setup Harness.Scenario.Paxos_baseline
      ~propose_value:flag_values ~max_instance:5
  in
  let run = Properties.ec_run_of_trace setup.Harness.Scenario.pattern trace in
  let report = Properties.ec_report run ~instances:5 in
  Alcotest.(check bool) "all clauses" true (Properties.ec_ok report);
  Alcotest.(check int) "agreement from instance 1" 1 report.Properties.agreement_index

(* --- Appendix A: EIC ----------------------------------------------- *)

let test_alg6_gives_eic () =
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:400) with
                omega = oracle ~pre:Detectors.Omega.Self_trust 40 } in
  let trace = Harness.Scenario.run_eic_over_ec setup ~propose_value:flag_values
      ~max_instance:50 in
  let run = Properties.eic_run_of_trace setup.Harness.Scenario.pattern trace in
  check_verdict "eic termination" (Properties.check_eic_termination run ~instances:50);
  check_verdict "eic validity" (Properties.check_eic_validity run);
  check_verdict "eic agreement" (Properties.check_eic_agreement run);
  Alcotest.(check bool) "finitely many revocations" true
    (Properties.eic_revocation_count run < 1000);
  Alcotest.(check bool) "integrity index finite" true
    (Properties.eic_integrity_index run <= 51)

let test_alg6_revokes_under_disagreement () =
  (* With a long self-trust prefix, early EIC instances genuinely get
     revoked; the point of Appendix A is that this is allowed. *)
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:500) with
                omega = oracle ~pre:Detectors.Omega.Self_trust 30 } in
  let trace = Harness.Scenario.run_eic_over_ec setup ~propose_value:num_values
      ~max_instance:60 in
  let run = Properties.eic_run_of_trace setup.Harness.Scenario.pattern trace in
  Alcotest.(check bool) "revocations occurred" true
    (Properties.eic_revocation_count run > 0);
  check_verdict "eic agreement still holds" (Properties.check_eic_agreement run)

let test_alg7_over_alg6_is_ec () =
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:500) with
                omega = oracle 40 } in
  let trace = Harness.Scenario.run_ec_via_eic setup ~propose_value:flag_values
      ~max_instance:60 in
  let run = Properties.ec_run_of_trace setup.Harness.Scenario.pattern trace in
  let report = Properties.ec_report run ~instances:60 in
  Alcotest.(check bool)
    (Format.asprintf "T_EIC->EC: %a" Properties.pp_ec_report report)
    true (Properties.ec_ok ~agreement_by:60 report)

(* --- The leaderless negative baseline ------------------------------ *)

(* Pairs of concurrent posts from different senders, racing the tie-break
   against arrival order: insertions keep happening for as long as the
   workload runs. *)
let concurrent_pairs ~until ~every =
  List.concat
    (List.init (until / every) (fun i ->
         let t = 10 + (i * every) in
         [ (t, 0, Harness.Scenario.Post (Printf.sprintf "a%d" i));
           (t, 2, Harness.Scenario.Post (Printf.sprintf "b%d" i)) ]))

let test_gossip_baseline_converges_but_never_stabilizes () =
  let workload_end = 200 in
  let inputs = concurrent_pairs ~until:workload_end ~every:10 in
  let delay = Net.uniform ~min:1 ~max:4 in
  (* The gossip baseline: correct base properties, convergence after
     quiescence, but stability violations track the workload, not any
     environment constant. *)
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:300) with
                delay; omega = oracle 0 } in
  let gossip_trace = Harness.Scenario.run_gossip_order ~inputs setup in
  let gossip_run = Properties.etob_run_of_trace setup.Harness.Scenario.pattern gossip_trace in
  let gossip_report = Properties.etob_report gossip_run in
  Alcotest.(check bool) "gossip base properties" true
    (Properties.etob_base_ok gossip_report);
  check_verdict "gossip causal order" gossip_report.Properties.causal_order;
  Alcotest.(check bool)
    (Printf.sprintf "gossip stability tracks the workload (tau=%d)"
       gossip_report.Properties.tau_stability)
    true
    (gossip_report.Properties.tau_stability > workload_end / 2);
  (* Algorithm 5 on the same workload: tau bounded by the environment. *)
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:300) with
                delay; omega = oracle 0 } in
  let etob_trace = Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Algorithm_5 in
  let etob_report = Harness.Scenario.etob_report setup etob_trace in
  Alcotest.(check bool) "algorithm 5 is strong TOB on the same workload" true
    (Properties.is_strong_tob etob_report)

(* --- Committed-prefix indications (Section 7 extension) ------------ *)

let test_commit_prefix_stable_period () =
  (* Under a stable leader with a correct majority, every broadcast is
     eventually committed, and commitments are never rolled back. *)
  let setup = { (Harness.Scenario.default ~n:5 ~deadline:200) with
                omega = oracle 0 } in
  let inputs = Harness.Scenario.spread_posts ~n:5 ~count:10 ~from_time:8 ~every:4 in
  let trace = Harness.Scenario.run_etob_with_commits ~inputs setup in
  let pattern = setup.Harness.Scenario.pattern in
  let commits = Properties.commit_run_of_trace pattern trace in
  let etob = Properties.etob_run_of_trace pattern trace in
  check_verdict "commit stability" (Properties.check_commit_stability commits);
  check_verdict "commit consistency" (Properties.check_commit_consistent commits etob);
  List.iter
    (fun p ->
       Alcotest.(check int) "everything committed" 10
         (Properties.committed_count commits p))
    (Failures.correct pattern)

let test_commit_prefix_latency_after_delivery () =
  (* A commitment needs one more round trip than stable delivery: the
     acknowledgments and the mark. *)
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:200) with
                delay = Net.constant 2; omega = oracle 0; timer_period = 1 } in
  let inputs = [ (50, 1, Harness.Scenario.Post "probe") ] in
  let trace = Harness.Scenario.run_etob_with_commits ~inputs setup in
  let pattern = setup.Harness.Scenario.pattern in
  let commits = Properties.commit_run_of_trace pattern trace in
  let etob = Properties.etob_run_of_trace pattern trace in
  let m =
    List.find_map
      (fun (_, _, o) ->
         match o with
         | Etob_intf.Etob_broadcast m when m.App_msg.tag = "probe" -> Some m
         | _ -> None)
      (Trace.outputs trace)
    |> Option.get
  in
  match Properties.stable_delivery_time etob m, Properties.commit_time commits m with
  | Some deliver, Some commit ->
    Alcotest.(check bool)
      (Printf.sprintf "commit (%d) after delivery (%d)" commit deliver)
      true (commit >= deliver);
    Alcotest.(check bool) "within two extra round trips" true
      (commit - deliver <= 4 * 2 + 2 * setup.Harness.Scenario.timer_period)
  | None, _ -> Alcotest.fail "probe never stably delivered"
  | _, None -> Alcotest.fail "probe never committed"

let test_commit_prefix_abstains_without_majority () =
  (* With only a minority alive, deliveries continue (eventual consistency)
     but nothing new commits: exactly the paper's stable-period caveat. *)
  let pattern = Failures.of_crashes ~n:5 [ (2, 30); (3, 30); (4, 30) ] in
  let setup = { (Harness.Scenario.default ~n:5 ~deadline:300) with
                pattern; omega = oracle 0 } in
  let inputs =
    [ (10, 0, Harness.Scenario.Post "early");
      (60, 0, Harness.Scenario.Post "uncommittable-1");
      (90, 1, Harness.Scenario.Post "uncommittable-2") ]
  in
  let trace = Harness.Scenario.run_etob_with_commits ~inputs setup in
  let commits = Properties.commit_run_of_trace pattern trace in
  let etob = Properties.etob_run_of_trace pattern trace in
  check_verdict "commit stability" (Properties.check_commit_stability commits);
  check_verdict "commit consistency" (Properties.check_commit_consistent commits etob);
  (* All three delivered... *)
  Alcotest.(check int) "delivered" 3 (List.length (Properties.final_d etob 0));
  (* ...but the post-crash broadcasts are not committed. *)
  let committed = Properties.final_committed commits 0 in
  Alcotest.(check bool) "post-crash messages uncommitted" true
    (not (List.exists (fun m -> m.App_msg.tag = "uncommittable-2") committed))

let test_commit_prefix_partition_commits_majority_side_only () =
  let heal = 60 in
  let setup = partition_setup ~n:5 ~heal in
  let inputs =
    [ (10, 0, Harness.Scenario.Post "maj");
      (12, 3, Harness.Scenario.Post "min") ]
  in
  let trace = Harness.Scenario.run_etob_with_commits ~inputs setup in
  let pattern = setup.Harness.Scenario.pattern in
  let commits = Properties.commit_run_of_trace pattern trace in
  let etob = Properties.etob_run_of_trace pattern trace in
  check_verdict "commit stability" (Properties.check_commit_stability commits);
  check_verdict "commit consistency" (Properties.check_commit_consistent commits etob);
  let maj_msg, min_msg =
    let find tag =
      List.find_map
        (fun (_, _, o) ->
           match o with
           | Etob_intf.Etob_broadcast m when m.App_msg.tag = tag -> Some m
           | _ -> None)
        (Trace.outputs trace)
      |> Option.get
    in
    (find "maj", find "min")
  in
  (* The majority side's message commits during the partition; the minority
     side's only after healing. *)
  (match Properties.commit_time commits maj_msg with
   | Some t -> Alcotest.(check bool) "maj commits after heal is also fine" true (t > 0)
   | None -> Alcotest.fail "majority message never committed");
  (match Properties.commit_time commits min_msg with
   | Some t ->
     Alcotest.(check bool)
       (Printf.sprintf "minority message commits only after heal (%d)" t) true
       (t >= heal)
   | None -> Alcotest.fail "minority message never committed")

(* With a stable-from-the-start leader (the oracle accounts for crashes:
   its constant output is the smallest process that never crashes), the
   commit indication must be safe under arbitrary crash patterns. *)
let prop_commit_safety_random_crashes =
  QCheck.Test.make ~name:"commit prefix: never rolled back under random crashes"
    ~count:25 QCheck.small_int
    (fun seed ->
       let rng = Rng.create seed in
       let n = 3 + Rng.int rng 3 in
       let pattern = Failures.random ~rng ~n ~max_faulty:(n - 1) ~horizon:80 in
       let setup = { (Harness.Scenario.default ~n ~deadline:300) with
                     pattern; seed;
                     delay = Net.uniform ~min:1 ~max:3;
                     omega = oracle 0 } in
       let inputs = Harness.Scenario.spread_posts ~n ~count:8 ~from_time:5 ~every:6 in
       let trace = Harness.Scenario.run_etob_with_commits ~inputs setup in
       let commits = Properties.commit_run_of_trace pattern trace in
       let etob = Properties.etob_run_of_trace pattern trace in
       (Properties.check_commit_stability commits).Properties.ok
       && (Properties.check_commit_consistent commits etob).Properties.ok)

(* The full realistic stack — elected omega, jittered delays, mid-run
   crashes — keeps every always-clause of ETOB and converges by the end. *)
let prop_full_stack_chaos =
  QCheck.Test.make ~name:"algorithm 5 + elected omega: chaos runs"
    ~count:15 QCheck.small_int
    (fun seed ->
       let rng = Rng.create seed in
       let n = 3 + Rng.int rng 3 in
       let pattern = Failures.random ~rng ~n ~max_faulty:(n - 1) ~horizon:100 in
       let setup = { (Harness.Scenario.default ~n ~deadline:600) with
                     pattern; seed;
                     delay = Net.uniform ~min:1 ~max:4;
                     omega = Harness.Scenario.Elected { initial_timeout = 8 } } in
       let inputs = Harness.Scenario.spread_posts ~n ~count:8 ~from_time:5 ~every:8 in
       let trace = Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Algorithm_5 in
       let run = Properties.etob_run_of_trace pattern trace in
       let report = Properties.etob_report run in
       Properties.etob_base_ok report
       && report.Properties.causal_order.Properties.ok
       (* Converged well before the horizon: the election stabilizes after
          the last crash (by 100) plus its adaptive timeouts. *)
       && Properties.etob_convergence_time report <= 450)

(* --- Property-checker self-tests ----------------------------------- *)

(* Build a synthetic trace of ETOB outputs and check the checkers see what
   they should. *)
let synthetic_trace entries broadcasts ~n =
  let trace = Trace.create ~n in
  List.iter
    (fun (t, p, m) -> Trace.record_output trace ~time:t ~proc:p (Etob_intf.Etob_broadcast m))
    broadcasts;
  List.iter
    (fun (t, p, seq) -> Trace.record_output trace ~time:t ~proc:p (Etob_intf.Etob_deliver seq))
    entries;
  trace

let test_checker_flags_duplication () =
  let m = msg 0 0 in
  let trace = synthetic_trace [ (5, 0, [ m; m ]) ] [ (1, 0, m) ] ~n:2 in
  let run = Properties.etob_run_of_trace (Failures.none ~n:2) trace in
  Alcotest.(check bool) "flagged" false (Properties.check_no_duplication run).Properties.ok

let test_checker_flags_creation () =
  let m = msg 0 0 in
  let trace = synthetic_trace [ (5, 0, [ m ]) ] [] ~n:2 in
  let run = Properties.etob_run_of_trace (Failures.none ~n:2) trace in
  Alcotest.(check bool) "flagged" false (Properties.check_no_creation run).Properties.ok

let test_checker_flags_causal_violation () =
  let m1 = msg 0 0 in
  let m2 = msg 1 0 ~deps:[ App_msg.id m1 ] in
  let trace =
    synthetic_trace [ (5, 0, [ m2; m1 ]) ] [ (1, 0, m1); (2, 1, m2) ] ~n:2
  in
  let run = Properties.etob_run_of_trace (Failures.none ~n:2) trace in
  Alcotest.(check bool) "flagged" false (Properties.check_causal_order run).Properties.ok

let test_checker_measures_stability_tau () =
  let a = msg 0 0 and b = msg 1 0 in
  (* p0 delivers [a], revises to [b] at t=10 (breaking the prefix), then
     extends: tau must be 10. *)
  let trace =
    synthetic_trace
      [ (5, 0, [ a ]); (10, 0, [ b ]); (15, 0, [ b; a ]) ]
      [ (1, 0, a); (1, 1, b) ] ~n:2
  in
  let run = Properties.etob_run_of_trace (Failures.none ~n:2) trace in
  Alcotest.(check int) "tau = 10" 10 (Properties.stability_time run)

let test_checker_measures_total_order_tau () =
  let a = msg 0 0 and b = msg 1 0 in
  (* At t=10 the two processes order {a,b} oppositely; at t=20 they agree. *)
  let trace =
    synthetic_trace
      [ (10, 0, [ a; b ]); (10, 1, [ b; a ]); (20, 1, [ a; b ]) ]
      [ (1, 0, a); (1, 1, b) ] ~n:2
  in
  let run = Properties.etob_run_of_trace (Failures.none ~n:2) trace in
  Alcotest.(check int) "tau = 11" 11 (Properties.total_order_time run)

let test_checker_orders_agree () =
  let a = msg 0 0 and b = msg 1 0 and c = msg 2 0 in
  Alcotest.(check bool) "disjoint ok" true (Properties.orders_agree [ a ] [ b ]);
  Alcotest.(check bool) "consistent" true
    (Properties.orders_agree [ a; b; c ] [ a; c ]);
  Alcotest.(check bool) "inconsistent" false
    (Properties.orders_agree [ a; b ] [ b; a ])

let test_checker_agreement_flags_missing () =
  let a = msg 0 0 in
  let trace = synthetic_trace [ (5, 0, [ a ]) ] [ (1, 0, a) ] ~n:2 in
  let run = Properties.etob_run_of_trace (Failures.none ~n:2) trace in
  Alcotest.(check bool) "flagged: p1 never delivers" false
    (Properties.check_agreement run).Properties.ok

let () =
  let qc = List.map QCheck_alcotest.to_alcotest
      [ prop_linearize_valid; prop_linearize_tie_break_independent;
        prop_linearize_monotone ]
  in
  let qc_runs = List.map QCheck_alcotest.to_alcotest
      [ prop_ec_omega_any_environment; prop_etob_omega_random_runs;
        prop_commit_safety_random_crashes; prop_full_stack_chaos ]
  in
  Alcotest.run "ec_core"
    [ ("app_msg",
       [ Alcotest.test_case "identity" `Quick test_app_msg_identity;
         Alcotest.test_case "prefix" `Quick test_app_msg_prefix ]);
      ("value",
       [ Alcotest.test_case "tag roundtrip" `Quick test_value_tag_roundtrip;
         Alcotest.test_case "tag rejects seq" `Quick test_value_tag_rejects_seq;
         Alcotest.test_case "compare total" `Quick test_value_compare_total ]);
      ("causal_graph",
       [ Alcotest.test_case "respects deps" `Quick test_cg_linearize_respects_deps;
         Alcotest.test_case "prefix kept" `Quick test_cg_prefix_kept;
         Alcotest.test_case "union commutative" `Quick test_cg_union_commutative_content;
         Alcotest.test_case "idempotent add" `Quick test_cg_idempotent_add ]
       @ qc);
      ("ec_omega (algorithm 4)",
       [ Alcotest.test_case "stable leader" `Quick test_ec_omega_stable_leader;
         Alcotest.test_case "late stabilization" `Quick test_ec_omega_late_stabilization;
         Alcotest.test_case "no correct majority" `Quick test_ec_omega_no_majority;
         Alcotest.test_case "rotating prefix" `Quick test_ec_omega_rotating_prefix;
         Alcotest.test_case "minimum system size (n=2)" `Quick
           test_minimum_system_size ]);
      ("etob_omega (algorithm 5)",
       [ Alcotest.test_case "failure-free run" `Quick test_etob_omega_failure_free;
         Alcotest.test_case "strong TOB with stable omega (P2)" `Quick
           test_etob_omega_strong_tob_with_stable_omega;
         Alcotest.test_case "partition convergence + Lemma 3 bound" `Quick
           test_etob_omega_partition_convergence;
         Alcotest.test_case "no correct majority" `Quick test_etob_omega_no_majority;
         Alcotest.test_case "two-step latency (P1)" `Quick
           test_etob_omega_two_step_latency;
         Alcotest.test_case "over elected omega" `Quick
           test_etob_omega_with_elected_omega ]);
      ("service details",
       [ Alcotest.test_case "fresh_msg causal deps" `Quick test_fresh_msg_causal_deps;
         Alcotest.test_case "EIC driven by inputs" `Quick test_eic_input_driven ]);
      ("binary lift ([23])",
       [ Alcotest.test_case "stable leader" `Quick test_binary_lift_stable_leader;
         Alcotest.test_case "late stabilization" `Quick
           test_binary_lift_late_stabilization;
         Alcotest.test_case "with crash" `Quick test_binary_lift_with_crash ]);
      ("transformations (theorem 1)",
       [ Alcotest.test_case "algorithm 2 tag roundtrip" `Quick
           test_etob_to_ec_tag_roundtrip;
         Alcotest.test_case "algorithm 2 tag rejects garbage" `Quick
           test_etob_to_ec_tag_rejects_garbage;
         Alcotest.test_case "algorithm 1 over 4 is ETOB" `Quick
           test_alg1_over_alg4_is_etob;
         Alcotest.test_case "algorithm 2 over 5 is EC" `Quick test_alg2_over_alg5_is_ec;
         Alcotest.test_case "algorithm 2 over paxos is consensus" `Quick
           test_alg2_over_paxos_is_consensus ]);
      ("gossip baseline (no omega)",
       [ Alcotest.test_case "converges but never stabilizes" `Quick
           test_gossip_baseline_converges_but_never_stabilizes ]);
      ("commit_prefix (section 7)",
       [ Alcotest.test_case "stable period commits everything" `Quick
           test_commit_prefix_stable_period;
         Alcotest.test_case "commit follows delivery" `Quick
           test_commit_prefix_latency_after_delivery;
         Alcotest.test_case "abstains without majority" `Quick
           test_commit_prefix_abstains_without_majority;
         Alcotest.test_case "partition: majority side only" `Quick
           test_commit_prefix_partition_commits_majority_side_only ]);
      ("eic (appendix A)",
       [ Alcotest.test_case "algorithm 6 gives EIC" `Quick test_alg6_gives_eic;
         Alcotest.test_case "revocations happen and stop" `Quick
           test_alg6_revokes_under_disagreement;
         Alcotest.test_case "algorithm 7 over 6 is EC" `Quick test_alg7_over_alg6_is_ec ]);
      ("property checkers",
       [ Alcotest.test_case "flags duplication" `Quick test_checker_flags_duplication;
         Alcotest.test_case "flags creation" `Quick test_checker_flags_creation;
         Alcotest.test_case "flags causal violation" `Quick
           test_checker_flags_causal_violation;
         Alcotest.test_case "measures stability tau" `Quick
           test_checker_measures_stability_tau;
         Alcotest.test_case "measures total-order tau" `Quick
           test_checker_measures_total_order_tau;
         Alcotest.test_case "orders_agree" `Quick test_checker_orders_agree;
         Alcotest.test_case "agreement flags missing" `Quick
           test_checker_agreement_flags_missing ]);
      ("random runs", qc_runs);
    ]
