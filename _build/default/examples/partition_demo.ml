(* Partition demo: eventual consistency vs strong consistency under a
   network partition — the motivation of the paper in one run.

   Five processes split into a majority block {p0,p1,p2} and a minority
   block {p3,p4} from t=5 to t=60.  During the partition, Omega outputs a
   different leader on each side (the Blockwise pre-behaviour).  Both
   blocks keep writing.

   - Over ETOB (Algorithm 5), BOTH sides keep delivering — including the
     minority — and converge shortly after the partition heals.
   - Over the Paxos baseline, only proposals that reach a majority commit:
     the minority side is unavailable for the whole partition.

     dune exec examples/partition_demo.exe *)

open Simulator
open Ec_core

let blocks = [ [ 0; 1; 2 ]; [ 3; 4 ] ]
let heal = 60

let setup () =
  let spec = { Net.blocks; from_time = 5; until_time = heal } in
  { (Harness.Scenario.default ~n:5 ~deadline:180) with
    delay = Net.partitioned spec ~base:(Net.constant 1);
    omega = Harness.Scenario.Oracle
        { stabilize_at = heal; pre = Detectors.Omega.Blockwise blocks } }

let inputs =
  [ (10, 0, Harness.Scenario.Post "maj-write-1");
    (15, 3, Harness.Scenario.Post "min-write-1");
    (25, 1, Harness.Scenario.Post "maj-write-2");
    (30, 4, Harness.Scenario.Post "min-write-2") ]

let describe name trace pattern =
  let run = Properties.etob_run_of_trace pattern trace in
  Format.printf "@.%s:@." name;
  print_string (Harness.Timeline.render ~width:64 ~pattern trace);
  let show_at t =
    Format.printf "  t=%3d  d_p0 = %a@." t App_msg.pp_seq (Properties.d_at run 0 t);
    Format.printf "         d_p3 = %a@." App_msg.pp_seq (Properties.d_at run 3 t)
  in
  show_at 50;   (* during the partition *)
  show_at 120;  (* well after healing *)
  let report = Properties.etob_report run in
  Format.printf "  convergence time: %d (partition healed at %d)@."
    (Properties.etob_convergence_time report) heal;
  Format.printf "  causal order: %s; agreement: %s@."
    (if report.Properties.causal_order.Properties.ok then "held throughout" else "VIOLATED")
    (if report.Properties.agreement.Properties.ok then "ok" else "VIOLATED")

let () =
  print_endline "partition demo: 5 processes, minority block {p3,p4}, heal at t=60";
  let s = setup () in
  let etob_trace = Harness.Scenario.run_etob ~inputs s Harness.Scenario.Algorithm_5 in
  describe "ETOB (Algorithm 5)" etob_trace s.Harness.Scenario.pattern;
  let s = setup () in
  let paxos_trace = Harness.Scenario.run_etob ~inputs s Harness.Scenario.Paxos_baseline in
  describe "strong TOB (Paxos baseline)" paxos_trace s.Harness.Scenario.pattern;
  print_endline "";
  print_endline "Note how at t=50 the ETOB minority side has delivered its own";
  print_endline "writes (availability under partition), while under Paxos the";
  print_endline "minority delivers nothing it initiated until the heal.  This";
  print_endline "availability gap is exactly the failure detector Sigma: strong";
  print_endline "consistency needs Omega + Sigma, eventual consistency only Omega."
