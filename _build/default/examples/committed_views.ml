(* Committed vs speculative reads: the Section 7 extension, end to end.

   A replicated KV store over Algorithm 5 exposes two views at every
   replica: the speculative state (applies the full delivered sequence —
   fresh, revisable while leaders disagree) and the committed state
   (applies only the majority-certified prefix — possibly stale, never
   rolled back).  A partition makes the difference visible: the minority
   side's speculative view contains its own writes immediately, while its
   committed view withholds them until the heal.

     dune exec examples/committed_views.exe *)

open Simulator
open Replication

module Dual = Committed_replica.Make (Machines.Kv)

let blocks = [ [ 0; 1; 2 ]; [ 3; 4 ] ]
let heal = 60

let () =
  print_endline "committed_views: speculative vs committed reads across a partition";
  let spec = { Net.blocks; from_time = 5; until_time = heal } in
  let setup =
    { (Harness.Scenario.default ~n:5 ~deadline:150) with
      delay = Net.partitioned spec ~base:(Net.constant 1);
      omega = Harness.Scenario.Oracle
          { stabilize_at = heal; pre = Detectors.Omega.Blockwise blocks } }
  in
  (* Probe the two views at chosen instants via handles collected here. *)
  let probes : (int * int * string * string) list ref = ref [] in
  let make_node ctx =
    let omega, omega_node = Harness.Scenario.omega_module setup ctx in
    let etob, etob_node = Ec_core.Etob_omega.create ctx ~omega in
    let service = Ec_core.Etob_omega.service etob in
    let replica, replica_node =
      Dual.create ctx ~etob:service ~omega
        ~promotion:(fun () -> Ec_core.Etob_omega.promotion etob)
    in
    let prober =
      { Engine.idle_node with
        on_input = (function
          | Io.String_input "probe" ->
            probes := (ctx.Engine.now (), ctx.Engine.self,
                       Dual.speculative_digest replica,
                       Dual.committed_digest replica) :: !probes
          | _ -> ()) }
    in
    (Engine.stack [ omega_node; etob_node; replica_node; prober ], replica)
  in
  let inputs =
    [ (10, 0, Replica.Submit (Command.put "seen-by" "majority"));
      (12, 3, Replica.Submit (Command.put "drafted-by" "minority"));
      (* Probe both sides during the partition and after healing. *)
      (45, 0, Io.String_input "probe"); (45, 3, Io.String_input "probe");
      (120, 0, Io.String_input "probe"); (120, 3, Io.String_input "probe") ]
  in
  let trace, replicas =
    Engine.run_with (Harness.Scenario.engine_config setup) ~make_node ~inputs
  in
  List.iter
    (fun (t, p, speculative, committed) ->
       Format.printf "  t=%3d p%d  speculative {%s}@." t p speculative;
       Format.printf "            committed   {%s}@." committed)
    (List.rev !probes);
  Format.printf "@.final states (all replicas):@.";
  Array.iteri
    (fun p r ->
       Format.printf "  p%d: speculative {%s} / committed {%s}@." p
         (Dual.speculative_digest r) (Dual.committed_digest r))
    replicas;
  Format.printf "@.committed view monotone everywhere: %b@."
    (Committed_replica.committed_monotone setup.Harness.Scenario.pattern trace);
  print_endline "";
  print_endline "During the partition (t=45), p3's speculative view already shows";
  print_endline "its local draft while its committed view withholds it: nothing is";
  print_endline "certified without a majority of acknowledgments.  After healing,";
  print_endline "both views converge — and no committed read was ever rolled back."
