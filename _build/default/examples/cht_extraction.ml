(* Watching the lower bound run: extracting Omega from eventual consensus.

   Theorem 2's necessity direction says that ANY algorithm solving EC with
   ANY failure detector D can be used to emulate Omega.  This example runs
   the executable form of that reduction:

     1. sample D into a CHT DAG (here: an Omega history whose adversarial
        prefix points at p1, which crashes);
     2. simulate runs of the target EC algorithm (pure Algorithm 4) along
        DAG paths, building the simulation tree;
     3. tag vertices with k-valencies, locate a k-bivalent vertex, find the
        smallest decision gadget (fork / input-fork / hook);
     4. output the gadget's deciding process — eventually the same correct
        process at everyone: Omega, emulated.

     dune exec examples/cht_extraction.exe *)

open Simulator

let () =
  print_endline "cht_extraction: emulating Omega from an EC black box";
  let pattern = Failures.of_crashes ~n:2 [ (1, 14) ] in
  let omega =
    Detectors.Omega.make ~pre:(Detectors.Omega.Fixed 1) pattern ~stabilize_at:18
  in
  let sampler p t =
    Cht.Fd_value.leader (Detectors.Omega.query omega ~self:p ~now:t)
  in
  let dag = Cht.Dag.build ~pattern ~sampler ~period:4 ~gossip:4 ~rounds:14 in
  Format.printf "failure pattern: %a@." Failures.pp pattern;
  Format.printf "detector: adversarial prefix trusts p1 (faulty!) until t=18@.";
  Format.printf "sample DAG: %d vertices@." (Cht.Dag.size dag);
  (* One verbose extraction round over an early window. *)
  let window = Cht.Dag.window dag ~from_horizon:0 ~to_horizon:16 in
  let budget = Cht.Extraction.default_budget in
  let outcome = Cht.Extraction.extract ~algo:Cht.Pure.ec_omega ~dag:window ~budget
      ~self:0 () in
  Format.printf "@.early window [0,16] (all samples point at p1):@.";
  Format.printf "  simulation tree: %d vertices@." outcome.Cht.Extraction.o_tree_size;
  (match outcome.Cht.Extraction.o_bivalent with
   | Some (k, node) ->
     Format.printf "  first bivalent vertex: instance %d, tree node %d@." k node
   | None -> Format.printf "  no bivalent vertex located@.");
  (match outcome.Cht.Extraction.o_gadget with
   | Some g -> Format.printf "  decision gadget: %a@." Cht.Extraction.pp_gadget g
   | None -> Format.printf "  no gadget found (falling back to self)@.");
  Format.printf "  emulated Omega output: p%d@." outcome.Cht.Extraction.o_leader;
  (* The full round loop. *)
  let per_round =
    Cht.Extraction.emulate ~algo:Cht.Pure.ec_omega ~dag ~budget ~rounds:5
      ~round_horizon:8 ()
  in
  Format.printf "@.emulation rounds (output at [p0, p1] per round):@.";
  List.iteri
    (fun r outputs ->
       Format.printf "  round %d: [%s]@." r
         (String.concat ", " (List.map (fun p -> "p" ^ string_of_int p) outputs)))
    per_round;
  (match Cht.Extraction.stabilization ~pattern per_round with
   | Some (r, leader) ->
     Format.printf
       "@.stabilized from round %d on p%d, which is %s — Omega emulated.@." r leader
       (if Failures.is_correct pattern leader then "correct" else "FAULTY (bug!)")
   | None -> Format.printf "@.did not stabilize within the emulated rounds@.");
  print_endline "";
  print_endline "Round 0 is genuinely misled (the only evidence in its window";
  print_endline "points at p1); as the window slides past p1's crash and the";
  print_endline "detector's stabilization time, the located gadget's deciding";
  print_endline "process settles on the correct p0 — the 'eventually' of Omega."
