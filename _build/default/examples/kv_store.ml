(* An eventually consistent key-value store, Dynamo-style.

   Five replicas run a KV state machine over ETOB (Algorithm 5), with the
   heartbeat-based Omega emulation — no oracle anywhere, every component is
   a running protocol.  A crash and concurrent writes to the same key show
   the divergence window and the convergence the paper's abstractions
   guarantee.

     dune exec examples/kv_store.exe *)

open Simulator
open Replication

module Kv_replica = Replica.Make (Machines.Kv)

let () =
  print_endline "kv_store: 5 replicas, elected leader, one crash, conflicting writes";
  let n = 5 in
  let pattern = Failures.of_crashes ~n [ (0, 70) ] in
  let setup =
    { (Harness.Scenario.default ~n ~deadline:300) with
      pattern;
      delay = Net.uniform ~min:1 ~max:3;
      (* A real leader election: p0 leads until it crashes at t=70, then the
         survivors elect p1. *)
      omega = Harness.Scenario.Elected { initial_timeout = 6 } }
  in
  let make_node ctx =
    let proto_node, etob =
      Harness.Scenario.etob_node setup Harness.Scenario.Algorithm_5 ctx
    in
    let replica, replica_node = Kv_replica.create ctx ~etob in
    (Engine.stack [ proto_node; replica_node ], replica)
  in
  let put t p k v = (t, p, Replica.Submit (Command.put k v)) in
  let inputs =
    [ put 20 1 "user" "alice";
      put 25 3 "user" "bob";  (* conflicting write to the same key *)
      put 40 2 "cart" "3-items";
      put 100 1 "status" "post-crash";  (* after the leader crashed *)
      put 120 4 "cart" "4-items" ]
  in
  let trace, replicas =
    Engine.run_with (Harness.Scenario.engine_config setup) ~make_node ~inputs
  in
  print_endline "final replica states:";
  Array.iteri
    (fun p replica ->
       if Failures.is_correct pattern p then
         Format.printf "  p%d: {%s}@." p (Kv_replica.digest replica))
    replicas;
  let run = Convergence.run_of_trace pattern trace in
  Format.printf "converged: %b, convergence time: %d@."
    (Convergence.converged run) (Convergence.convergence_time run);
  Format.printf "divergence window: %d ticks; visible rollbacks: %d@."
    (Convergence.divergence_ticks ~from_time:20 run)
    (Convergence.total_rollbacks run);
  print_endline "";
  print_endline "The conflicting writes to \"user\" were ordered the same way at";
  print_endline "every replica (last-writer-in-the-total-order wins), the crash of";
  print_endline "the elected leader was absorbed by re-election, and writes issued";
  print_endline "after the crash still committed: Omega alone suffices."
