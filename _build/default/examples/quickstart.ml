(* Quickstart: a replicated counter over eventual total order broadcast.

   Three processes run Algorithm 5 (ETOB from Omega) and a counter state
   machine on top.  Clients submit increments at different replicas; once
   the broadcast layer stabilizes, every replica has applied the same
   sequence and holds the same value.

     dune exec examples/quickstart.exe *)

open Simulator
open Replication

module Counter_replica = Replica.Make (Machines.Counter)

let () =
  print_endline "quickstart: a replicated counter over ETOB (Algorithm 5)";
  let n = 3 in
  (* Omega as an oracle that stabilizes at time 0: the common case of a
     stable deployment.  Swap in `Elected { initial_timeout = 6 }` to run
     the heartbeat-based leader election instead. *)
  let setup =
    { (Harness.Scenario.default ~n ~deadline:100) with
      omega = Harness.Scenario.Oracle { stabilize_at = 0;
                                        pre = Detectors.Omega.Self_trust } }
  in
  (* Each process: the ETOB protocol plus a counter replica on top. *)
  let make_node ctx =
    let proto_node, etob =
      Harness.Scenario.etob_node setup Harness.Scenario.Algorithm_5 ctx
    in
    let replica, replica_node = Counter_replica.create ctx ~etob in
    (Engine.stack [ proto_node; replica_node ], replica)
  in
  (* The workload: three clients, one increment each. *)
  let inputs =
    [ (5, 0, Replica.Submit (Command.incr 3));
      (8, 1, Replica.Submit (Command.incr 4));
      (12, 2, Replica.Submit (Command.incr 35)) ]
  in
  let trace, replicas =
    Engine.run_with (Harness.Scenario.engine_config setup) ~make_node ~inputs
  in
  Array.iteri
    (fun p replica ->
       Format.printf "  replica p%d: value = %d, applied %d commands@." p
         (Counter_replica.state replica)
         (List.length (Counter_replica.log replica)))
    replicas;
  (* And the formal view: the run satisfies the ETOB specification. *)
  let report = Harness.Scenario.etob_report setup trace in
  Format.printf "  broadcast layer: %a@." Ec_core.Properties.pp_etob_report report;
  if Ec_core.Properties.is_strong_tob report then
    print_endline "  (omega was stable from the start, so the run is even strong TOB)"
