examples/committed_views.ml: Array Command Committed_replica Detectors Ec_core Engine Format Harness Io List Machines Net Replica Replication Simulator
