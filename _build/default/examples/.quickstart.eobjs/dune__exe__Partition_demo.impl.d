examples/partition_demo.ml: App_msg Detectors Ec_core Format Harness Net Properties Simulator
