examples/cht_extraction.mli:
