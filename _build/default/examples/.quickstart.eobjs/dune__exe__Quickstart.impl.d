examples/quickstart.ml: Array Command Detectors Ec_core Engine Format Harness List Machines Replica Replication Simulator
