examples/cht_extraction.ml: Cht Detectors Failures Format List Simulator String
