examples/committed_views.mli:
