examples/kv_store.ml: Array Command Convergence Engine Failures Format Harness Machines Net Replica Replication Simulator
