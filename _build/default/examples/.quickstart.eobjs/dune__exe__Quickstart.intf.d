examples/quickstart.mli:
