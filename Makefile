# Developer entry points.  `make check` is the tier-1 gate used by CI and
# by every PR: it must stay green.

.PHONY: all check build test smoke fmt bench clean

all: build

build:
	dune build

test:
	dune runtest

check: build test

# Adversarial smoke: both faithful targets (crash-stop and crash-recovery)
# clean over the budget; every seeded mutant — the four Algorithm 5 bugs
# and the skip-log-replay amnesia bug — found, shrunk and replayed from
# its repro file.  Shrunk repro files land in _artifacts/smoke/.
smoke:
	dune exec bin/ecsim.exe -- explore --smoke --plans 500 -j 2 --artifacts _artifacts/smoke

# Requires ocamlformat (version pinned in .ocamlformat); a no-op check
# elsewhere so environments without the formatter can still run `make check`.
fmt:
	dune build @fmt --auto-promote

bench:
	dune exec bench/main.exe

clean:
	dune clean
