# Developer entry points.  `make check` is the tier-1 gate used by CI and
# by every PR: it must stay green.

.PHONY: all check build test lint smoke soak service fmt bench clean

all: build

build:
	dune build

test:
	dune runtest

check: build test

# Static analysis, both halves (DESIGN.md §12 and §17).  detlint works
# on the parsetree alone: unseeded randomness, wall-clock leakage,
# unordered Hashtbl iteration, polymorphic compare in protocol modules,
# Marshal/== outside lib/persist, unsealed library modules.  alloclint
# works on typedtrees (cmt files, hence the `dune build @check`): heap
# allocation, unknown calls, polymorphic compares, Obj escapes and
# growable structures reachable from the hot-path registry and from
# [@alloc.zero] functions.  A hard CI gate either way: exit 1 on any
# finding not covered by a justified `detlint:` allowlist comment.
lint:
	dune exec bin/detlint.exe -- lib bin test
	dune build @check
	dune exec bin/alloclint.exe -- lib

# Adversarial smoke: all three faithful targets (crash-stop,
# crash-recovery, and anti-entropy-under-watchdog with message-losing
# partitions) clean over the budget; every seeded mutant — the four
# Algorithm 5 bugs, the skip-log-replay amnesia bug and the skip-digest
# anti-entropy bug — found, shrunk and replayed from its repro file.
# One finding additionally roundtrips through the builder-spec text form
# (DESIGN.md §13): found -> spec file -> parsed -> re-run, with the trace
# digest required to reproduce byte-for-byte.  Shrunk repro and spec
# files land in _artifacts/smoke/.
smoke:
	dune exec bin/ecsim.exe -- explore --smoke --plans 500 -j 2 --artifacts _artifacts/smoke

# Long-budget crash-safe soak campaign (DESIGN.md §15): the
# partition-hardened legs (anti-entropy digests under the convergence
# watchdog, with and without crash-recovery adversities) explored far
# past the CI budget.  Every run is guarded by an event budget and a
# monotonic wall-clock deadline (stuck runs poison their seed instead
# of hanging the campaign), findings are quarantined and auto-shrunk to
# replayable .spec repros, and campaign state is journaled through the
# framed CRC32 codec — interrupt it (Ctrl-C, SIGKILL, power loss) and
# `dune exec bin/ecsim.exe -- soak --resume _artifacts/soak/campaign.journal`
# continues deterministically.
soak:
	dune exec bin/ecsim.exe -- soak --budget 5000 -j 4 \
	  --artifacts _artifacts/soak

# Closed-loop service-layer gate (DESIGN.md §16): runs experiment E22 —
# the full client population (timeouts, capped backoff, retry budgets,
# admission control, circuit breakers, crash-triggered migration) over
# ETOB vs the Paxos baseline under a crash+partition schedule — and the
# generator-driven determinism/retry-amplification smoke.  Hard-fails if
# ETOB's degraded (speculative) availability does not strictly beat
# Paxos in the minority partition, if retry amplification exceeds 2x, if
# replica-side dedup leaks a duplicate apply, or if replay diverges.
# BENCH_service.json and the latency histograms land in
# _artifacts/service/.
service:
	dune exec bin/ecsim.exe -- service --smoke --artifacts _artifacts/service

# Requires ocamlformat (version pinned in .ocamlformat); a no-op check
# elsewhere so environments without the formatter can still run `make check`.
fmt:
	dune build @fmt --auto-promote

bench:
	dune exec bench/main.exe

clean:
	dune clean
