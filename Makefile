# Developer entry points.  `make check` is the tier-1 gate used by CI and
# by every PR: it must stay green.

.PHONY: all check build test smoke fmt bench clean

all: build

build:
	dune build

test:
	dune runtest

check: build test

# Adversarial smoke: faithful Algorithm 5 clean over the budget; every
# seeded mutant found, shrunk and replayed from its repro file.
smoke:
	dune exec bin/ecsim.exe -- explore --smoke --plans 500 -j 2

# Requires ocamlformat (version pinned in .ocamlformat); a no-op check
# elsewhere so environments without the formatter can still run `make check`.
fmt:
	dune build @fmt --auto-promote

bench:
	dune exec bench/main.exe

clean:
	dune clean
