(* Declarative client-population spec for the closed-loop service layer.

   This is pure data plus its text form and QCheck generators: the Builder
   carries it in spec files (one `service ...` line) and the interpreter
   lives in lib/service, keeping the dependency direction
   service -> harness.  Every knob is an integer or flag so the spec
   roundtrips byte-exactly and shrinks well. *)

type arrival =
  | Closed of { think : int }
  | Open_loop of { gap : int }
  | Bursty of { burst : int; gap : int }

type t = {
  clients : int;
  arrival : arrival;
  keys : int;
  skew_pct : int;
  write_pct : int;
  req_deadline : int;
  retries : int;
  backoff_base : int;
  backoff_cap : int;
  jitter_pct : int;
  queue_limit : int;
  breaker_k : int;
  breaker_cooldown : int;
  strong : bool;
  migrate_after : int;
  window : int;
}

let default =
  { clients = 4;
    arrival = Closed { think = 4 };
    keys = 4;
    skew_pct = 50;
    write_pct = 50;
    req_deadline = 16;
    retries = 3;
    backoff_base = 2;
    backoff_cap = 16;
    jitter_pct = 50;
    queue_limit = 8;
    breaker_k = 3;
    breaker_cooldown = 24;
    strong = true;
    migrate_after = 3;
    window = 30 }

let arrival_to_string = function
  | Closed { think } -> Printf.sprintf "closed:%d" think
  | Open_loop { gap } -> Printf.sprintf "open:%d" gap
  | Bursty { burst; gap } -> Printf.sprintf "bursty:%d:%d" burst gap

let arrival_of_string s =
  match String.split_on_char ':' s with
  | [ "closed"; t ] ->
    Option.map (fun think -> Closed { think }) (int_of_string_opt t)
  | [ "open"; g ] -> Option.map (fun gap -> Open_loop { gap }) (int_of_string_opt g)
  | [ "bursty"; b; g ] ->
    (match (int_of_string_opt b, int_of_string_opt g) with
     | Some burst, Some gap -> Some (Bursty { burst; gap })
     | _ -> None)
  | _ -> None

let validate t =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let pct what v =
    if v < 0 || v > 100 then Some (what, v, "a percentage in [0, 100]") else None
  in
  let pos what v = if v < 1 then Some (what, v, ">= 1") else None in
  let arrival_bad =
    match t.arrival with
    | Closed { think } -> pos "arrival think time" think
    | Open_loop { gap } -> pos "arrival gap" gap
    | Bursty { burst; gap } ->
      (match pos "burst size" burst with
       | Some _ as e -> e
       | None -> pos "burst gap" gap)
  in
  match
    List.find_map Fun.id
      [ pos "clients" t.clients; arrival_bad; pos "keys" t.keys;
        pct "skew" t.skew_pct; pct "writes" t.write_pct;
        pos "timeout" t.req_deadline;
        (if t.retries < 0 then Some ("retries", t.retries, ">= 0") else None);
        pos "backoff base" t.backoff_base;
        (if t.backoff_cap < t.backoff_base then
           Some ("backoff cap", t.backoff_cap, ">= the base")
         else None);
        pct "jitter" t.jitter_pct; pos "queue limit" t.queue_limit;
        pos "breaker threshold" t.breaker_k;
        pos "breaker cooldown" t.breaker_cooldown;
        pos "migrate threshold" t.migrate_after; pos "window" t.window ]
  with
  | Some (what, v, want) -> err "%s must be %s (got %d)" what want v
  | None -> Ok t

let to_string t =
  Printf.sprintf
    "clients=%d arrival=%s keys=%d skew=%d writes=%d timeout=%d retries=%d \
     backoff=%d:%d jitter=%d queue=%d breaker=%d:%d mode=%s migrate=%d \
     window=%d"
    t.clients (arrival_to_string t.arrival) t.keys t.skew_pct t.write_pct
    t.req_deadline t.retries t.backoff_base t.backoff_cap t.jitter_pct
    t.queue_limit t.breaker_k t.breaker_cooldown
    (if t.strong then "strong" else "weak")
    t.migrate_after t.window

let of_fields fields =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let int_field k v f acc =
    match int_of_string_opt v with
    | Some n -> Ok (f acc n)
    | None -> err "field %s wants an integer, got %S" k v
  in
  let pair_field k v f acc =
    match String.split_on_char ':' v with
    | [ a; b ] ->
      (match (int_of_string_opt a, int_of_string_opt b) with
       | Some a, Some b -> Ok (f acc a b)
       | _ -> err "field %s wants <int>:<int>, got %S" k v)
    | _ -> err "field %s wants <int>:<int>, got %S" k v
  in
  let parse acc (k, v) =
    match acc with
    | Error _ -> acc
    | Ok acc ->
      (match k with
       | "clients" -> int_field k v (fun t n -> { t with clients = n }) acc
       | "arrival" ->
         (match arrival_of_string v with
          | Some arrival -> Ok { acc with arrival }
          | None ->
            err
              "field arrival wants closed:<think>, open:<gap> or \
               bursty:<burst>:<gap>, got %S"
              v)
       | "keys" -> int_field k v (fun t n -> { t with keys = n }) acc
       | "skew" -> int_field k v (fun t n -> { t with skew_pct = n }) acc
       | "writes" -> int_field k v (fun t n -> { t with write_pct = n }) acc
       | "timeout" -> int_field k v (fun t n -> { t with req_deadline = n }) acc
       | "retries" -> int_field k v (fun t n -> { t with retries = n }) acc
       | "backoff" ->
         pair_field k v
           (fun t base cap -> { t with backoff_base = base; backoff_cap = cap })
           acc
       | "jitter" -> int_field k v (fun t n -> { t with jitter_pct = n }) acc
       | "queue" -> int_field k v (fun t n -> { t with queue_limit = n }) acc
       | "breaker" ->
         pair_field k v
           (fun t bk cd -> { t with breaker_k = bk; breaker_cooldown = cd })
           acc
       | "mode" ->
         (match v with
          | "strong" -> Ok { acc with strong = true }
          | "weak" -> Ok { acc with strong = false }
          | _ -> err "field mode wants strong or weak, got %S" v)
       | "migrate" -> int_field k v (fun t n -> { t with migrate_after = n }) acc
       | "window" -> int_field k v (fun t n -> { t with window = n }) acc
       | _ -> err "unknown service field %S" k)
  in
  match List.fold_left parse (Ok default) fields with
  | Error _ as e -> e
  | Ok t -> validate t

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* ------------------------------------------------------------------ *)
(* QCheck generators (test/qgen re-exports these)                      *)
(* ------------------------------------------------------------------ *)

let arrival_gen =
  QCheck.Gen.(
    oneof
      [ map (fun think -> Closed { think }) (int_range 1 8);
        map (fun gap -> Open_loop { gap }) (int_range 2 10);
        map2
          (fun burst gap -> Bursty { burst; gap })
          (int_range 2 5) (int_range 4 16) ])

let gen =
  QCheck.Gen.(
    let* clients = int_range 1 6 in
    let* arrival = arrival_gen in
    let* keys = int_range 1 6 in
    let* skew_pct = int_range 0 100 in
    let* write_pct = int_range 0 100 in
    let* req_deadline = int_range 8 32 in
    let* retries = int_range 0 4 in
    let* backoff_base = int_range 1 4 in
    let* backoff_cap = int_range backoff_base (4 * backoff_base) in
    let* jitter_pct = int_range 0 100 in
    let* queue_limit = int_range 1 12 in
    let* breaker_k = int_range 1 6 in
    let* breaker_cooldown = int_range 8 48 in
    let* strong = bool in
    let* migrate_after = int_range 1 4 in
    let+ window = int_range 10 60 in
    { clients; arrival; keys; skew_pct; write_pct; req_deadline; retries;
      backoff_base; backoff_cap; jitter_pct; queue_limit; breaker_k;
      breaker_cooldown; strong; migrate_after; window })

(* Shrink towards [default], field by field: keeps the spec valid by
   construction. *)
let shrink t yield =
  let try_ t' = if t' <> t then yield t' in
  try_ { t with clients = max 1 (t.clients / 2) };
  try_ { t with arrival = default.arrival };
  try_ { t with keys = max 1 (t.keys / 2) };
  try_ { t with skew_pct = 0 };
  try_ { t with write_pct = 50 };
  try_ { t with retries = max 0 (t.retries - 1) };
  try_ { t with jitter_pct = 0 };
  try_ { t with strong = true };
  try_ { t with queue_limit = t.queue_limit + 4 }

let arbitrary =
  QCheck.make gen ~print:to_string ~shrink
