(** Declarative test builder: one immutable value that composes a protocol
    {!stack}, a {!workload}, an {!Adversity.t} plan (plus conditional
    {!boost} multipliers), a detector source, {!checker} policies and a
    search budget — and one interpreter, {!run}, behind every way this
    repository builds a run.  {!Scenario}'s [run_*] entrypoints are thin
    presets over builders, [Explore.Explorer] generates and shrinks builder
    values, and the [ecsim] subcommands decode their flags (or a
    [--spec FILE]) into one.

    Builders made of plain data (a {!Decl} base, no escape hatches) have a
    stable text form ({!to_lines}/{!of_lines}) that subsumes the explorer's
    repro headers: {!of_lines} also accepts the legacy
    ["ecsim-explore-repro v1"] format, and replaying either through {!run}
    is byte-identical to the original paths (enforced by the differential
    tests in [test/test_builder.ml]). *)

open Simulator
open Simulator.Types
open Ec_core

(** Base delay model, as data (a {!Simulator.Net.model} consumes
    randomness differently per constructor, so the distinction must
    survive serialization byte-exactly). *)
type delay_model = Constant of int | Uniform of { min_d : int; max_d : int }

type decl_base = {
  n : int;
  seed : int;
  deadline : time;
  timer_period : int;
  delay : delay_model;
}

(** The declarative base scenario, or an arbitrary prebuilt setup (escape
    hatch for the {!Scenario} shims; not serializable). *)
type base = Decl of decl_base | Opaque of Stacks.setup

(** Which protocol stack the run drives; mirrors the [Stacks.run_*]
    catalogue. *)
type stack =
  | Etob of Stacks.etob_impl  (** bare ETOB: Algorithm 5 / Paxos / 1-over-4 *)
  | Etob_ae  (** Algorithm 5 + anti-entropy digest exchange *)
  | Recoverable of { ae : bool }
      (** Algorithm 5 under the crash-recovery wrapper, optionally with
          anti-entropy *)
  | Etob_commits  (** Algorithm 5 + Section 7 committed-prefix indications *)
  | Gossip  (** the leaderless negative baseline *)
  | Ec  (** bare Algorithm 4 with the self-driving proposer *)
  | Ec_lifted  (** multivalued EC through the binary lift *)
  | Ec_via_etob of Stacks.etob_impl  (** Algorithm 2 over an ETOB stack *)
  | Eic  (** Algorithm 6 over Algorithm 4 *)
  | Ec_via_eic  (** Algorithm 7 over (6 over 4) *)

(** The workload: what gets posted, by whom, when. *)
type workload =
  | No_posts
  | Posts of { count : int; from_time : time; every : int }
      (** round-robin {!Stacks.spread_posts} *)
  | Auto_posts of { count : int; stretch : bool }
      (** the explorer's posting policy: start at {!auto_post_from}, cadence
          {!auto_post_every} (stretched across the horizon for recovery
          targets so restarted processes post again) *)
  | Weighted of {
      count : int;
      from_time : time;
      every : int;
      jitter : int;  (** deterministic per-post arrival jitter in [0,jitter] *)
      mix : (string * int) list;  (** weighted tag mix, smooth round-robin *)
    }
  | Explicit of (time * proc_id * string) list  (** explicit [Post] tags *)
  | Raw of (time * proc_id * Io.input) list
      (** arbitrary engine inputs (escape hatch; not serializable) *)

(** Convergence-tau policy of the ETOB checker: a fixed bound, or the
    explorer's plan-aware bound ({!tau_bound}). *)
type tau_policy = Tau_auto | Tau_fixed of int

type watchdog_policy = Wd_auto | Wd_fixed of { settle : time; bound : int }

(** Checkers evaluated by {!run}, in order; their messages concatenate
    into the outcome's [violations]. *)
type checker = Etob_spec of tau_policy | Watchdog of watchdog_policy

(** Conditional adversity multipliers keyed on system state. *)
type boost =
  | Drop_boost_while_partitioned of { factor : int }
      (** While any partition window of the plan (buffering or lossy) is
          open, every [Drop] window's percentage is multiplied by [factor]
          (capped at 100): drop windows are split at partition boundaries
          and each segment gets its effective rate. *)

(** On-disk trace formats: jsonl ([Sink.jsonl], one JSON object per line)
    or the framed binary codec ([Sink.binary] over [Persist.Frame]). *)
type trace_format = Jsonl | Binary

val trace_format_name : trace_format -> string
(** "jsonl" / "bin" — the [--trace-format] vocabulary. *)

val trace_format_of_name : string -> trace_format option

type t = {
  base : base;
  stack : stack;
  workload : workload;
  plan : Adversity.t;
  boosts : boost list;
  omega : Stacks.omega_source option;
      (** [None] = the base's detector (oracle stable from 0 unless the
          plan flaps it) *)
  checkers : checker list;
  budget : int option;  (** exploration budget hint, carried by spec files *)
  mutation : Etob_omega.mutation option;
  rmutation : Recoverable.mutation option;
  ae_mutation : Anti_entropy.mutation option;
  (* Escape hatches: all [None] for declarative builders. *)
  rconfig : Recoverable.config option;
  ae_config : Anti_entropy.config option;
  commits : bool option;  (** Recoverable commit-prefix toggle *)
  stores : Persist.Store.t array option;
  sink : Sink.t option;
  trace_out : (string * trace_format) option;
      (** stream the run's events to a trace file (path, format); the
          outcome still carries the full trace (a capturing recorder is
          teed in), so checkers and digests are unaffected *)
  propose : (proc_id -> instance:int -> Value.t) option;
      (** EC-stack proposer; [None] = {!default_propose} *)
  max_instance : int;  (** EC-stack instance horizon (0 = drive nothing) *)
  service : Service_spec.t option;
      (** closed-loop client population riding this stack — carried and
          serialized here (one [service ...] spec line), interpreted by
          [lib/service]; {!run} itself ignores it *)
}

val create :
  ?seed:int ->
  ?timer_period:int ->
  ?delay:delay_model ->
  n:int -> deadline:time -> stack -> t
(** A declarative builder over {!Stacks.default}'s conventions: seed 42,
    timer period 2, constant unit delays, no workload, no plan, no
    checkers. *)

val of_setup : Stacks.setup -> stack -> t
(** Wrap a prebuilt setup ({!Opaque} base); used by the {!Scenario}
    shims.  Not serializable. *)

val default_propose : proc_id -> instance:int -> Value.t
(** [Num (1000*p + instance)]: the deterministic proposer EC stacks use
    when [propose] is [None]. *)

(** {2 Derived values and policies}

    The explorer's fairness and bound formulas, keyed on the builder.
    All of these require a {!Decl} base (they need the delay bounds as
    data) and raise [Invalid_argument] on an {!Opaque} one. *)

val n_of : t -> int
val seed_of : t -> int
val deadline_of : t -> time

val base_max_of : t -> int
(** The base delay model's largest delay. *)

val auto_post_from : int
(** First posting time of {!Auto_posts} workloads (8). *)

val post_count : t -> int
(** How many messages the workload posts. *)

val stack_name : stack -> string
(** The stack's stable spec-file name (["alg5"], ["recoverable+ae"], ...). *)

val auto_post_every : t -> int
(** {!Auto_posts} cadence: 3, stretched across the horizon when
    [stretch]. *)

val slack : t -> int
(** Recovery headroom granted on top of a plan's settle time. *)

val inputs : t -> (time * proc_id * Io.input) list
(** Materialize the workload (any workload, including [Raw]). *)

val last_post : t -> time
(** When the workload ends; convergence cannot precede it. *)

val drop_safe_until : t -> time
(** Start of the final full posting round of an {!Auto_posts} workload. *)

val ae_used : t -> bool
(** The stack includes the anti-entropy layer. *)

val ae_catchup : t -> int
(** Worst-case post-heal catch-up time of the digest exchange. *)

val lossy_safe_until : t -> time
(** Latest admissible heal time for message-losing partition windows. *)

val tau_bound : t -> time
(** The plan-aware convergence bound ({!Tau_auto}): [0] for Algorithm-5
    stacks under a never-flapping oracle and a recovery-free plan;
    otherwise settle + slack (+ retransmission backoff under recovery,
    + anti-entropy catch-up when partition loss meets the digest layer). *)

val watchdog_settle : t -> time
val watchdog_bound : t -> int

val setup_of : t -> Stacks.setup
(** The engine setup this builder denotes: base, then the [omega]/[sink]
    clauses, then the plan ({!Adversity.apply}), then the boosts. *)

(** {2 Running} *)

type handles =
  | No_handles
  | Ae_handles of (Etob_omega.t * Anti_entropy.t) array
  | Recoverable_handles of Recoverable.t array * Persist.Store.t array

type outcome = {
  builder : t;
  trace : Trace.t option;  (** [None] iff the run raised under [~catch] *)
  report : Properties.etob_report option;
      (** computed iff the builder has checkers and the run completed *)
  violations : string list;  (** [[]] = clean *)
  digest : string;  (** trace digest (hex) iff [~digest]; [""] otherwise *)
  handles : handles;
}

val run : ?digest:bool -> ?catch:bool -> ?guard:(unit -> unit) -> t -> outcome
(** Interpret the builder: build the setup, materialize the workload, run
    the stack, evaluate the checkers in order.  Deterministic: equal
    builders give byte-identical runs.  [digest] (default false) records
    the trace digest; [catch] (default false) turns a raising run into an
    ["exception: ..."] violation instead of propagating.  [guard] is
    called once per engine-observable event ({!Sink.on_every}), before
    any recording — a soak watchdog raises from it to abort a wedged run
    (event budget, wall-clock deadline); the guard never changes what a
    completing run computes (trace, report, digest are unaffected).
    Under [catch] a raising guard is folded into an ["exception: ..."]
    violation like any other; run with [catch:false] to pattern-match
    the guard's own exception (the soak runner does, to tell a stuck
    run from a crashing one). *)

(** {2 Exploration and shrinking} *)

type exploration = { found : outcome option; plans_run : int; budget : int }

val explore :
  ?domains:int ->
  ?on_progress:(plans_run:int -> unit) ->
  gen:(int -> t) ->
  budget:int -> unit -> exploration
(** Run builders [gen 0 .. gen (budget-1)] until the first violation.
    [domains > 1] fans chunks of [4 * domains] over OCaml domains via
    {!Sweep.map_safe}; the reported finding is the lowest-index violation
    regardless of domain count.  Runs use [~digest:true ~catch:true]. *)

val shrink : rebuild:(Adversity.t -> t) -> outcome -> outcome
(** Greedy plan minimization: drop whole adversities, then substitute
    {!Adversity.weaken} variants, re-running [rebuild plan] at every step
    (so the caller decides how a smaller plan maps back to a builder —
    e.g. the explorer re-derives the stack, since dropping the last
    downtime window may demote a recoverable run to crash-stop). *)

(** {2 Stable text form} *)

val header : string
(** ["ecsim-spec v1"]. *)

val legacy_header : string
(** ["ecsim-explore-repro v1"]; {!of_lines} accepts this too, mapping the
    repro fields onto builder clauses so legacy files replay
    byte-identically. *)

val to_lines : ?digest:string -> ?violations:string list -> t -> string list
(** Serialize a declarative builder (raises [Invalid_argument] on
    {!Opaque} bases, [Raw] workloads or any escape hatch).  [digest] and
    [violations] are recorded for humans and {!recorded_digest};
    {!of_lines} ignores them otherwise. *)

val to_string : ?digest:string -> ?violations:string list -> t -> string

val of_lines : string list -> (t, string) result
(** Parse either text form; every error names the offending line.  New
    -format plans are normalized ({!Adversity.make}); legacy repro plans
    are kept verbatim. *)

val of_string : string -> (t, string) result

val recorded_digest : string -> string option
(** The [digest] header of a spec or repro string, if present. *)

val write : string -> ?digest:string -> ?violations:string list -> t -> unit
val read : string -> (t, string) result

(** {2 Binary trace artifacts}

    A [.trace.bin] artifact written through [trace_out] plus
    {!append_binary_spec} is a self-contained replay unit: the framed
    event stream followed by a spec record carrying the run's spec text
    (digest and violations included). *)

val append_binary_spec :
  string -> ?digest:string -> ?violations:string list -> t -> unit
(** Append one spec record with {!to_string}'s text to an existing binary
    trace file.  Raises [Invalid_argument] like {!to_lines} if the
    builder is not serializable. *)

val binary_spec : string -> (string, string) result
(** Read a binary trace file and return its embedded spec text (the last
    spec record), ready for {!of_string} / {!recorded_digest}. *)

(** {2 QCheck generators}

    The unclamped adversity generators formerly hand-rolled in
    [test/qgen] (which now re-exports these), plus a generator of whole
    declarative builders.  Plans are {!Adversity.make}-normalized, so the
    roundtrip property [of_lines (to_lines b) = b] holds structurally. *)

val subset_gen : int -> proc_id list QCheck.Gen.t
val window_gen : int -> (time * time) QCheck.Gen.t
val spec_gen : n:int -> deadline:int -> Adversity.spec QCheck.Gen.t
val plan_gen : n:int -> deadline:int -> Adversity.t QCheck.Gen.t
val spec_shrink : Adversity.spec -> Adversity.spec QCheck.Iter.t
val plan_arb : n:int -> deadline:int -> Adversity.t QCheck.arbitrary
val recovery_spec_gen : n:int -> deadline:int -> Adversity.spec QCheck.Gen.t
val recovery_plan_gen : n:int -> deadline:int -> Adversity.t QCheck.Gen.t
val recovery_plan_arb : n:int -> deadline:int -> Adversity.t QCheck.arbitrary

val partition_loss_spec_gen :
  n:int -> deadline:int -> Adversity.spec QCheck.Gen.t

val partition_recovery_plan_gen :
  n:int -> deadline:int -> Adversity.t QCheck.Gen.t

val partition_recovery_plan_arb :
  n:int -> deadline:int -> Adversity.t QCheck.arbitrary

val arbitrary : t QCheck.arbitrary
(** Serializable declarative builders (ETOB-family stacks, data workloads,
    normalized plans, policy checkers); shrinks by shrinking the plan. *)
