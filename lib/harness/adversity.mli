(** Adversity plans: first-class, composable descriptions of everything the
    explorer may do to a run beyond the base scenario.  A plan is plain
    data; {!apply} folds it into any {!Stacks.setup}, and the stable text
    form ({!to_lines}/{!of_lines}) is what repro and builder-spec files
    embed, so the same value drives exploration, shrinking and replay.
    {!make} is the normalizing smart constructor (flap dedupe, canonical
    spec order); it never changes what {!apply} builds. *)

open Simulator.Types

type spec =
  | Crash of { proc : proc_id; at : time }
  | Partition of { left : proc_id list; from_time : time; until_time : time }
      (** [left] vs everyone else; cross-block messages are delayed until
          the partition heals at [until_time] (nothing is lost). *)
  | Lossy_partition of {
      left : proc_id list;
      from_time : time;
      until_time : time;
    }
      (** Like [Partition], but cross-block sends in the window are
          {e dropped}, not buffered ({!Simulator.Net.lossy_partition}):
          recovering the lost traffic is the protocol's problem (re-gossip
          or {!Ec_core.Anti_entropy}). *)
  | Oneway_partition of {
      left : proc_id list;
      from_time : time;
      until_time : time;
    }
      (** Asymmetric link failure: sends from [left] to the rest are
          dropped while the reverse direction flows
          ({!Simulator.Net.oneway_partition}). *)
  | Flapping_partition of {
      left : proc_id list;
      from_time : time;
      until_time : time;
      period : int;
    }
      (** Lossy partition flapping over the window: cut for [period] ticks,
          healed for [period], repeating
          ({!Simulator.Net.flapping_partition}). *)
  | Delay_spike of {
      link : (proc_id * proc_id) option;  (** [None] = every link *)
      from_time : time;
      until_time : time;
      factor : int;
    }
  | Drop of { from_time : time; until_time : time; pct : int }
      (** Drop each send in the window with probability [pct]%. *)
  | Duplicate of { from_time : time; until_time : time; copies : int }
      (** Deliver [copies] extra copies with independent delays. *)
  | Omega_flap of { until_time : time; period : int }
      (** The oracle rotates its leader with [period] until [until_time],
          then stabilizes (only meaningful for oracle setups). *)
  | Crash_recover of { proc : proc_id; at : time; recover_at : time }
      (** A downtime window: [proc] loses its volatile state at [at] and is
          restarted at [recover_at] (see {!Simulator.Failures.crash_recover_at}
          and the engine's restart hook).  Only meaningful for recoverable
          stacks; a non-recoverable process simply restarts empty. *)
  | Disk_fault of { proc : proc_id; kind : Persist.Store.fault }
      (** Damage the dirty tail of [proc]'s stable store at its next crash.
          [apply] ignores it (the setup carries no stores); runners arm it
          on their pool via {!arm_disk_faults}. *)

type t = spec list

val make : spec list -> t
(** Normalizing smart constructor: keeps only the last [Omega_flap]
    ("last wins" is enforced here rather than documented) and stable-sorts
    specs into a canonical rank order — crashes, then downtime windows,
    then disk faults, then delay-model wrappers, then fault windows, then
    the flap.  Kinds folding into the same setup field share a rank, so
    sort stability preserves their relative order and
    [apply (make plan) setup] builds byte-identically the same setup as
    [apply plan setup].  {!of_lines} normalizes; generators should too. *)

val size : t -> int
val has_flap : t -> bool

val has_recovery : t -> bool
(** The plan contains a downtime window or a disk fault, i.e. it needs the
    recoverable stack to be meaningful. *)

val has_partition_loss : t -> bool
(** The plan can silently lose messages (a lossy, one-way or flapping
    partition), so convergence needs post-heal re-gossip or anti-entropy. *)

val crash_procs : t -> proc_id list
val recover_procs : t -> proc_id list
val disk_faults : t -> (proc_id * Persist.Store.fault) list

val arm_disk_faults : t -> Persist.Store.t array -> unit
(** Arm the plan's disk faults on a store pool, in plan order (several
    faults against one process queue FIFO, one per crash). *)

val settle_time : base_max:int -> t -> time
(** The time from which the network and detector behave nominally again:
    every window closed, every delayed message flushed ([base_max] is the
    base model's largest delay).  Tau bounds are computed relative to
    this. *)

val apply : t -> Stacks.setup -> Stacks.setup
(** Fold the plan into a setup.  Plan order is irrelevant: crashes commute,
    delay wrappers and fault windows compose; of several [Omega_flap]s the
    last wins ({!make} enforces at most one). *)

val weaken : spec -> spec list
(** Strictly weaker variants, strongest reduction first, for the shrinker.
    Weakening never moves an adversity later into the run, so its settle
    time only shrinks.  [[]] when the spec is atomic (e.g. a crash). *)

val pp_spec : Format.formatter -> spec -> unit
val pp : Format.formatter -> t -> unit

val to_line : spec -> string
(** One-line stable form, parsed back by {!of_line}. *)

val to_lines : t -> string list

val of_line : string -> (spec, string) result
(** Parse one spec line; [Error] names the offending field and quotes the
    line.  Does not normalize (repro files replay their plan verbatim). *)

val of_lines : string list -> (t, string) result
(** Parse a whole plan and {!make}-normalize it. *)
