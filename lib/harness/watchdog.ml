(* Convergence-progress liveness watchdog.

   Safety checkers (Properties) can only say a finished run never violated
   an invariant; they cannot distinguish "converged" from "quietly stalled
   forever" — a replica that a partition (or an anti-entropy bug like
   [Anti_entropy.Skip_digest]) left permanently behind produces a run with
   pristine safety and no convergence.  This watchdog closes that gap: it
   takes the time by which the environment has settled (failures
   stabilized, partitions healed, workload posted) and a progress bound
   (how long a correct stack may legitimately take to catch up — gossip
   slack plus anti-entropy digest rounds plus retransmission backoff), and
   flags a liveness violation when some correct process has still not
   reached the converged state by settle + bound.

   The converged state is the union, over correct processes, of every
   finally delivered AND every broadcast message: whatever any correct
   process eventually stably delivered — or asked to be delivered — all of
   them must deliver.  A process "reaches" the target at its
   first d-revision from which its id-set covers the target and never
   stops covering it (a later regression, e.g. from a mutant, un-reaches
   it).  The verdict carries a per-laggard diagnosis: the time of its last
   observable progress and how many target messages it still misses, so a
   stall reads as "p2 last grew its state at t=41, 3 messages behind" and
   not just "failed". *)

open Simulator.Types
open Ec_core

type laggard = {
  proc : proc_id;
  last_progress : time;  (* last d-revision that grew the id-set; -1 if none *)
  missing : int;  (* target messages absent from the final d *)
}

type verdict =
  | Converged of { at : time }
  | Stalled of { deadline : time; laggards : laggard list }

let ids_of seq = App_msg.ids_of_seq seq

(* The union, over correct processes, of everything finally delivered AND
   everything broadcast.  Including broadcasts matters: Algorithm 5's
   leader re-teaches d through periodic promotes, so a process can only
   stall on a message the leader itself never learned — a correct poster's
   broadcast swallowed by a lossy partition.  Such a message is in no d at
   all; a final-d union would silently shrink the target around exactly
   the stall the watchdog exists to flag. *)
let target run =
  let correct = Properties.correct_procs run in
  let delivered =
    List.fold_left
      (fun acc p -> App_msg.Id_set.union acc (ids_of (Properties.final_d run p)))
      App_msg.Id_set.empty correct
  in
  List.fold_left
    (fun acc (_, p, m) ->
       if List.mem p correct then App_msg.Id_set.add (App_msg.id m) acc
       else acc)
    delivered (Properties.broadcasts run)

(* The first revision time from which p's id-set covers [tgt] and keeps
   covering it for the rest of the run; None if it never (stably) does. *)
let reached run tgt p =
  List.fold_left
    (fun acc (t, seq) ->
       if App_msg.Id_set.subset tgt (ids_of seq) then
         match acc with None -> Some t | some -> some
       else None)
    None (Properties.revisions run p)

(* The last revision that strictly grew p's id-set; -1 if none ever did. *)
let last_progress run p =
  let _, t =
    List.fold_left
      (fun (known, last) (t, seq) ->
         let ids = ids_of seq in
         if App_msg.Id_set.cardinal ids > known
         then (App_msg.Id_set.cardinal ids, t)
         else (known, last))
      (0, -1) (Properties.revisions run p)
  in
  t

let check ~settle ~bound run =
  let deadline = settle + bound in
  let tgt = target run in
  let correct = Properties.correct_procs run in
  let late =
    List.filter_map
      (fun p ->
         match reached run tgt p with
         | Some t when t <= deadline -> None
         | _ ->
           Some
             { proc = p;
               last_progress = last_progress run p;
               missing =
                 App_msg.Id_set.cardinal
                   (App_msg.Id_set.diff tgt (ids_of (Properties.final_d run p))) })
      correct
  in
  if late = [] then
    let at =
      List.fold_left
        (fun acc p ->
           match reached run tgt p with Some t -> max acc t | None -> acc)
        0 correct
    in
    Converged { at }
  else Stalled { deadline; laggards = late }

let of_trace ~settle ~bound pattern trace =
  check ~settle ~bound (Properties.etob_run_of_trace pattern trace)

let violations = function
  | Converged _ -> []
  | Stalled { deadline; laggards } ->
    List.map
      (fun l ->
         Printf.sprintf
           "liveness: %s not converged by %d (last progress at %d, %d message%s behind)"
           (Format.asprintf "%a" pp_proc l.proc)
           deadline l.last_progress l.missing
           (if l.missing = 1 then "" else "s"))
      laggards

let pp ppf = function
  | Converged { at } -> Fmt.pf ppf "converged at %d" at
  | Stalled { deadline; laggards } ->
    Fmt.pf ppf "@[<v>STALLED past %d:@,%a@]" deadline
      (Fmt.list (fun ppf l ->
           Fmt.pf ppf "%a: last progress %d, %d behind" pp_proc l.proc
             l.last_progress l.missing))
      laggards
