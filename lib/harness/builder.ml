(* Declarative test builder: one immutable value composing stack, workload,
   adversity plan (plus conditional boosts), detector source, checkers and
   budget — and one interpreter, [run], behind every way this repository
   builds a run.  [Scenario]'s run_* entrypoints are presets over builders,
   the explorer generates and shrinks builder values, and ecsim decodes its
   flags (or a --spec file) into one.

   Determinism is the design constraint throughout: a builder made of plain
   data serializes to a stable text form and replays byte-identically, and
   the policy formulas (posting cadence, tau and watchdog bounds,
   generation clamps) live here so the explorer, the CLI and spec-file
   replays compute exactly the same numbers. *)

open Simulator
open Simulator.Types
open Ec_core

type delay_model = Constant of int | Uniform of { min_d : int; max_d : int }

type decl_base = {
  n : int;
  seed : int;
  deadline : time;
  timer_period : int;
  delay : delay_model;
}

type base = Decl of decl_base | Opaque of Stacks.setup

type stack =
  | Etob of Stacks.etob_impl
  | Etob_ae
  | Recoverable of { ae : bool }
  | Etob_commits
  | Gossip
  | Ec
  | Ec_lifted
  | Ec_via_etob of Stacks.etob_impl
  | Eic
  | Ec_via_eic

type workload =
  | No_posts
  | Posts of { count : int; from_time : time; every : int }
  | Auto_posts of { count : int; stretch : bool }
  | Weighted of {
      count : int;
      from_time : time;
      every : int;
      jitter : int;
      mix : (string * int) list;
    }
  | Explicit of (time * proc_id * string) list
  | Raw of (time * proc_id * Io.input) list

type tau_policy = Tau_auto | Tau_fixed of int
type watchdog_policy = Wd_auto | Wd_fixed of { settle : time; bound : int }
type checker = Etob_spec of tau_policy | Watchdog of watchdog_policy
type boost = Drop_boost_while_partitioned of { factor : int }
type trace_format = Jsonl | Binary

let trace_format_name = function Jsonl -> "jsonl" | Binary -> "bin"

let trace_format_of_name = function
  | "jsonl" -> Some Jsonl
  | "bin" -> Some Binary
  | _ -> None

type t = {
  base : base;
  stack : stack;
  workload : workload;
  plan : Adversity.t;
  boosts : boost list;
  omega : Stacks.omega_source option;
  checkers : checker list;
  budget : int option;
  mutation : Etob_omega.mutation option;
  rmutation : Recoverable.mutation option;
  ae_mutation : Anti_entropy.mutation option;
  rconfig : Recoverable.config option;
  ae_config : Anti_entropy.config option;
  commits : bool option;
  stores : Persist.Store.t array option;
  sink : Sink.t option;
  trace_out : (string * trace_format) option;
  propose : (proc_id -> instance:int -> Value.t) option;
  max_instance : int;
  service : Service_spec.t option;
}

let create ?(seed = 42) ?(timer_period = 2) ?(delay = Constant 1) ~n ~deadline
    stack =
  { base = Decl { n; seed; deadline; timer_period; delay };
    stack;
    workload = No_posts;
    plan = [];
    boosts = [];
    omega = None;
    checkers = [];
    budget = None;
    mutation = None;
    rmutation = None;
    ae_mutation = None;
    rconfig = None;
    ae_config = None;
    commits = None;
    stores = None;
    sink = None;
    trace_out = None;
    propose = None;
    max_instance = 0;
    service = None }

let of_setup setup stack =
  { (create ~n:setup.Stacks.n ~deadline:setup.Stacks.deadline stack) with
    base = Opaque setup }

let default_propose p ~instance = Value.Num ((1000 * p) + instance)

(* ------------------------------------------------------------------ *)
(* Derived values and policies (the explorer's formulas, verbatim)     *)
(* ------------------------------------------------------------------ *)

let n_of t = match t.base with Decl d -> d.n | Opaque s -> s.Stacks.n
let seed_of t = match t.base with Decl d -> d.seed | Opaque s -> s.Stacks.seed

let deadline_of t =
  match t.base with Decl d -> d.deadline | Opaque s -> s.Stacks.deadline

let timer_period_of t =
  match t.base with
  | Decl d -> d.timer_period
  | Opaque s -> s.Stacks.timer_period

let decl_of t =
  match t.base with
  | Decl d -> d
  | Opaque _ ->
    invalid_arg "Builder: this policy needs a declarative (Decl) base"

let base_max_of t =
  match (decl_of t).delay with
  | Constant d -> d
  | Uniform { max_d; _ } -> max_d

let auto_post_from = 8
let auto_post_every_base = 3

(* Recovery headroom granted on top of a plan's settle time: a few promote
   rounds plus message flushes.  Deliberately generous — the bound only
   needs to separate "converged late" from "never converged". *)
let slack t = (8 * timer_period_of t) + (6 * base_max_of t) + 10

(* The workload's post count, for the policy formulas below. *)
let post_count t =
  match t.workload with
  | Auto_posts { count; _ } | Posts { count; _ } | Weighted { count; _ } ->
    count
  | No_posts -> 0
  | Explicit posts -> List.length posts
  | Raw inputs -> List.length inputs

(* Stretched cadence for recovery targets: a process restarted by a mid-run
   downtime window still posts afterwards — the amnesia mutant only reuses
   a sequence number if its victim broadcasts again after the restart. *)
let auto_post_every t =
  let stretch =
    match t.workload with Auto_posts { stretch; _ } -> stretch | _ -> false
  in
  if stretch then
    max auto_post_every_base
      ((deadline_of t - auto_post_from - slack t) / max 1 (post_count t))
  else auto_post_every_base

(* Start of the final full posting round: from here on every correct
   process posts (and re-gossips its whole causality graph) at least
   once. *)
let drop_safe_until t =
  auto_post_from + (max 0 (post_count t - n_of t) * auto_post_every t)

let last_post t =
  match t.workload with
  | No_posts -> 0
  | Auto_posts { count; _ } ->
    auto_post_from + (max 0 (count - 1) * auto_post_every t)
  | Posts { count; from_time; every } ->
    from_time + (max 0 (count - 1) * every)
  | Weighted { count; from_time; every; jitter; _ } ->
    from_time + (max 0 (count - 1) * every) + jitter
  | Explicit posts ->
    List.fold_left (fun acc (tm, _, _) -> max acc tm) 0 posts
  | Raw inputs -> List.fold_left (fun acc (tm, _, _) -> max acc tm) 0 inputs

let ae_used t =
  match t.stack with
  | Etob_ae | Recoverable { ae = true } -> true
  | _ -> false

(* Worst-case post-heal catch-up time of the digest exchange: the laggard's
   next digest broadcast, one full resend backoff, and delta delivery. *)
let ae_catchup t =
  let ae = Option.value t.ae_config ~default:Anti_entropy.default_config in
  ((ae.Anti_entropy.every + ae.Anti_entropy.max_backoff + 2)
   * timer_period_of t)
  + (2 * base_max_of t)

let lossy_safe_until t =
  if ae_used t then deadline_of t - slack t - ae_catchup t
  else drop_safe_until t

let alg5_based t =
  match t.stack with
  | Etob Stacks.Algorithm_5 | Etob_ae | Recoverable _ -> true
  | _ -> false

(* The plan-aware convergence bound.  With a never-flapping oracle and no
   restarts, every adoption in Algorithm 5 is a same-lineage promote from
   the one stable leader, so tau = 0 is mandatory no matter what else the
   plan contains; otherwise the plan's settle time plus slack, plus the
   retransmission backoff a restarted process may wait out, plus the
   digest-exchange catch-up a partition-isolated process may need. *)
let tau_bound t =
  let recovery = Adversity.has_recovery t.plan in
  if alg5_based t && (not (Adversity.has_flap t.plan)) && not recovery then 0
  else
    Adversity.settle_time ~base_max:(base_max_of t) t.plan
    + slack t
    + (if recovery then Recoverable.default_config.Recoverable.max_backoff
       else 0)
    + (if ae_used t && Adversity.has_partition_loss t.plan then ae_catchup t
       else 0)

let watchdog_settle t =
  max (Adversity.settle_time ~base_max:(base_max_of t) t.plan) (last_post t)

let watchdog_bound t =
  slack t
  + (if ae_used t then ae_catchup t else 0)
  + (match t.stack with
     | Recoverable _ -> Recoverable.default_config.Recoverable.max_backoff
     | _ -> 0)

(* ------------------------------------------------------------------ *)
(* Workload materialization                                            *)
(* ------------------------------------------------------------------ *)

(* Smooth weighted round-robin over the mix: deterministic, no randomness,
   the classic "add weights, take the max, subtract the total" scheduler.
   Arrival jitter draws from a seed-derived stream so reruns are stable. *)
let weighted_posts ~n ~seed ~count ~from_time ~every ~jitter ~mix =
  let mix = match mix with [] -> [ ("m", 1) ] | mix -> mix in
  let weights = Array.of_list (List.map snd mix) in
  let names = Array.of_list (List.map fst mix) in
  let total = Array.fold_left ( + ) 0 weights in
  let current = Array.make (Array.length weights) 0 in
  let rng = Rng.create (seed lxor 0x5eed) in
  let posts =
    List.init count (fun i ->
        Array.iteri (fun j w -> current.(j) <- current.(j) + w) weights;
        let best = ref 0 in
        Array.iteri
          (fun j c -> if c > current.(!best) then best := j)
          current;
        current.(!best) <- current.(!best) - total;
        let tm =
          from_time + (i * every)
          + (if jitter > 0 then Rng.int rng (jitter + 1) else 0)
        in
        (tm, i mod n, Stacks.Post (Printf.sprintf "%s%d" names.(!best) i)))
  in
  List.stable_sort (fun (a, _, _) (b, _, _) -> Int.compare a b) posts

let inputs t =
  let n = n_of t in
  match t.workload with
  | No_posts -> []
  | Posts { count; from_time; every } ->
    Stacks.spread_posts ~n ~count ~from_time ~every
  | Auto_posts { count; _ } ->
    Stacks.spread_posts ~n ~count ~from_time:auto_post_from
      ~every:(auto_post_every t)
  | Weighted { count; from_time; every; jitter; mix } ->
    weighted_posts ~n ~seed:(seed_of t) ~count ~from_time ~every ~jitter ~mix
  | Explicit posts ->
    List.map (fun (tm, p, tag) -> (tm, p, Stacks.Post tag)) posts
  | Raw raw -> raw

(* ------------------------------------------------------------------ *)
(* Setup construction (base, clauses, plan, boosts)                    *)
(* ------------------------------------------------------------------ *)

let partition_windows plan =
  List.filter_map
    (function
      | Adversity.Partition { from_time; until_time; _ }
      | Adversity.Lossy_partition { from_time; until_time; _ }
      | Adversity.Oneway_partition { from_time; until_time; _ }
      | Adversity.Flapping_partition { from_time; until_time; _ } ->
        Some (from_time, until_time)
      | _ -> None)
    plan

let boost_factor t =
  List.fold_left
    (fun acc (Drop_boost_while_partitioned { factor }) -> acc * max 1 factor)
    1 t.boosts

(* With boosts, the plan's drop windows are split at the partition-window
   boundaries and every segment that starts inside an open partition gets
   the boosted rate.  Without boosts this is exactly [Adversity.apply], so
   legacy plans stay byte-identical. *)
let apply_plan t s =
  if t.boosts = [] then Adversity.apply t.plan s
  else begin
    let factor = boost_factor t in
    let windows = partition_windows t.plan in
    let without_drops =
      List.filter (function Adversity.Drop _ -> false | _ -> true) t.plan
    in
    let s = Adversity.apply without_drops s in
    let in_partition tm = List.exists (fun (f, u) -> f <= tm && tm < u) windows in
    List.fold_left
      (fun s spec ->
         match spec with
         | Adversity.Drop { from_time; until_time; pct } ->
           let cuts =
             List.sort_uniq Int.compare
               (from_time :: until_time
                :: List.concat_map
                  (fun (a, b) ->
                     List.filter
                       (fun c -> from_time < c && c < until_time)
                       [ a; b ])
                  windows)
           in
           let rec segments = function
             | a :: (b :: _ as rest) -> (a, b) :: segments rest
             | _ -> []
           in
           List.fold_left
             (fun s (a, b) ->
                let pct' =
                  if in_partition a then min 100 (pct * factor) else pct
                in
                { s with
                  Stacks.faults =
                    Net.compose_faults
                      [ s.Stacks.faults;
                        Net.drop_window ~from_time:a ~until_time:b pct' ] })
             s (segments cuts)
         | _ -> s)
      s t.plan
  end

let setup_of t =
  let s =
    match t.base with
    | Opaque s -> s
    | Decl { n; seed; deadline; timer_period; delay } ->
      { (Stacks.default ~n ~deadline) with
        Stacks.seed;
        timer_period;
        delay =
          (match delay with
           | Constant d -> Net.constant d
           | Uniform { min_d; max_d } -> Net.uniform ~min:min_d ~max:max_d) }
  in
  let s = match t.omega with None -> s | Some omega -> { s with Stacks.omega } in
  let s =
    match t.sink with None -> s | Some sink -> { s with Stacks.sink = Some sink }
  in
  apply_plan t s

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

type handles =
  | No_handles
  | Ae_handles of (Etob_omega.t * Anti_entropy.t) array
  | Recoverable_handles of Recoverable.t array * Persist.Store.t array

type outcome = {
  builder : t;
  trace : Trace.t option;
  report : Properties.etob_report option;
  violations : string list;
  digest : string;
  handles : handles;
}

let propose_of t = Option.value t.propose ~default:default_propose

let run ?(digest = false) ?(catch = false) ?guard t =
  let orig = t in
  (* [attempt t capture] runs the (possibly sink-augmented) builder [t];
     when a [capture] trace is teed in through the sink, it supersedes the
     engine's own (then empty) trace for checkers and digests. *)
  let attempt t capture () =
    let setup = setup_of t in
    let inputs = inputs t in
    let trace, handles =
      match t.stack with
      | Etob impl ->
        (Stacks.run_etob ~inputs ?mutation:t.mutation setup impl, No_handles)
      | Etob_ae ->
        let trace, hs =
          Stacks.run_etob_ae ~inputs ?mutation:t.mutation
            ?ae_config:t.ae_config ?ae_mutation:t.ae_mutation setup
        in
        (trace, Ae_handles hs)
      | Recoverable { ae } ->
        let stores =
          match t.stores with
          | Some stores -> stores
          | None -> Persist.Store.pool ~n:setup.Stacks.n
        in
        Adversity.arm_disk_faults t.plan stores;
        let ae_cfg =
          if ae then
            Some (Option.value t.ae_config ~default:Anti_entropy.default_config)
          else None
        in
        let trace, hs, stores =
          Stacks.run_recoverable ~inputs ?rconfig:t.rconfig
            ?mutation:t.rmutation ?etob_mutation:t.mutation ?commits:t.commits
            ?ae:ae_cfg ?ae_mutation:t.ae_mutation ~stores setup
        in
        (trace, Recoverable_handles (hs, stores))
      | Etob_commits ->
        (Stacks.run_etob_with_commits ~inputs setup, No_handles)
      | Gossip -> (Stacks.run_gossip_order ~inputs setup, No_handles)
      | Ec ->
        ( Stacks.run_ec_omega ~inputs setup ~propose_value:(propose_of t)
            ~max_instance:t.max_instance,
          No_handles )
      | Ec_lifted ->
        ( Stacks.run_ec_lifted ~inputs setup ~propose_value:(propose_of t)
            ~max_instance:t.max_instance,
          No_handles )
      | Ec_via_etob impl ->
        ( Stacks.run_ec_via_etob ~inputs setup impl
            ~propose_value:(propose_of t) ~max_instance:t.max_instance,
          No_handles )
      | Eic ->
        ( Stacks.run_eic_over_ec ~inputs setup ~propose_value:(propose_of t)
            ~max_instance:t.max_instance,
          No_handles )
      | Ec_via_eic ->
        ( Stacks.run_ec_via_eic ~inputs setup ~propose_value:(propose_of t)
            ~max_instance:t.max_instance,
          No_handles )
    in
    let trace = match capture with Some c -> c | None -> trace in
    let report, violations =
      if t.checkers = [] then (None, [])
      else begin
        let erun = Properties.etob_run_of_trace setup.Stacks.pattern trace in
        let report = Properties.etob_report erun in
        let violations =
          List.concat_map
            (function
              | Etob_spec policy ->
                let bound =
                  match policy with
                  | Tau_auto -> tau_bound t
                  | Tau_fixed bound -> bound
                in
                Properties.etob_violations ~tau_bound:bound report
              | Watchdog policy ->
                let settle, bound =
                  match policy with
                  | Wd_auto -> (watchdog_settle t, watchdog_bound t)
                  | Wd_fixed { settle; bound } -> (settle, bound)
                in
                Watchdog.violations (Watchdog.check ~settle ~bound erun))
            t.checkers
        in
        (Some report, violations)
      end
    in
    let dg =
      if digest then
        Digest.to_hex (Digest.string (Format.asprintf "%a" Trace.pp trace))
      else ""
    in
    { builder = orig;
      trace = Some trace;
      report;
      violations;
      digest = dg;
      handles }
  in
  (* The trace-file escape hatch and the guard hook share one pattern:
     tee the extra sinks (and the caller's own, if any) with a capturing
     recorder, so the outcome still carries the full trace for checkers
     and digests (an engine given an explicit sink returns an empty
     trace).  The guard fires first, before any recording work, so a
     deadline or event-budget breach raises out of a wedged run at the
     earliest observable point. *)
  let guarded sink =
    match guard with None -> sink | Some g -> Sink.tee (Sink.on_every g) sink
  in
  let go () =
    match t.trace_out with
    | None ->
      (match guard with
       | None -> attempt t None ()
       | Some _ ->
         let capture = Trace.create ~n:(n_of t) in
         let sink = guarded (Sink.recorder capture) in
         let sink =
           match t.sink with
           | None -> sink
           | Some user -> Sink.tee sink user
         in
         attempt { t with sink = Some sink } (Some capture) ())
    | Some (path, format) ->
      let capture = Trace.create ~n:(n_of t) in
      let with_file =
        match format with
        | Jsonl -> Sink.with_jsonl path
        | Binary -> Sink.with_binary path
      in
      with_file (fun file_sink ->
          let sink = guarded (Sink.tee (Sink.recorder capture) file_sink) in
          let sink =
            match t.sink with
            | None -> sink
            | Some user -> Sink.tee sink user
          in
          attempt
            { t with trace_out = None; sink = Some sink }
            (Some capture) ())
  in
  if not catch then go ()
  else
    match go () with
    | o -> o
    | exception e ->
      (* A raising run is a finding, not an infrastructure error: mutants
         may corrupt state into genuinely impossible configurations. *)
      { builder = t;
        trace = None;
        report = None;
        violations = [ "exception: " ^ Printexc.to_string e ];
        digest = "";
        handles = No_handles }

(* ------------------------------------------------------------------ *)
(* Stable text form                                                    *)
(* ------------------------------------------------------------------ *)

let header = "ecsim-spec v1"
let legacy_header = "ecsim-explore-repro v1"

let stack_name = function
  | Etob Stacks.Algorithm_5 -> "alg5"
  | Etob Stacks.Paxos_baseline -> "paxos"
  | Etob Stacks.Algorithm_1_over_4 -> "alg1"
  | Etob_ae -> "alg5+ae"
  | Recoverable { ae = false } -> "recoverable"
  | Recoverable { ae = true } -> "recoverable+ae"
  | Etob_commits -> "alg5+commits"
  | Gossip -> "gossip"
  | Ec -> "ec"
  | Ec_lifted -> "ec-lifted"
  | Ec_via_etob Stacks.Algorithm_5 -> "ec-via-alg5"
  | Ec_via_etob Stacks.Paxos_baseline -> "ec-via-paxos"
  | Ec_via_etob Stacks.Algorithm_1_over_4 -> "ec-via-alg1"
  | Eic -> "eic"
  | Ec_via_eic -> "ec-via-eic"

let stack_of_name = function
  | "alg5" -> Some (Etob Stacks.Algorithm_5)
  | "paxos" -> Some (Etob Stacks.Paxos_baseline)
  | "alg1" -> Some (Etob Stacks.Algorithm_1_over_4)
  | "alg5+ae" -> Some Etob_ae
  | "recoverable" -> Some (Recoverable { ae = false })
  | "recoverable+ae" -> Some (Recoverable { ae = true })
  | "alg5+commits" -> Some Etob_commits
  | "gossip" -> Some Gossip
  | "ec" -> Some Ec
  | "ec-lifted" -> Some Ec_lifted
  | "ec-via-alg5" -> Some (Ec_via_etob Stacks.Algorithm_5)
  | "ec-via-paxos" -> Some (Ec_via_etob Stacks.Paxos_baseline)
  | "ec-via-alg1" -> Some (Ec_via_etob Stacks.Algorithm_1_over_4)
  | "eic" -> Some Eic
  | "ec-via-eic" -> Some Ec_via_eic
  | _ -> None

let pre_to_string = function
  | Detectors.Omega.Self_trust -> "self"
  | Detectors.Omega.Fixed p -> Printf.sprintf "fixed:%d" p
  | Detectors.Omega.Rotating k -> Printf.sprintf "rotating:%d" k
  | Detectors.Omega.Seeded s -> Printf.sprintf "seeded:%d" s
  | Detectors.Omega.Blockwise blocks ->
    "blockwise:"
    ^ String.concat ";"
        (List.map
           (fun block -> String.concat "," (List.map string_of_int block))
           blocks)

let pre_of_string s =
  match String.index_opt s ':' with
  | None -> if s = "self" then Some Detectors.Omega.Self_trust else None
  | Some i ->
    let kind = String.sub s 0 i in
    let arg = String.sub s (i + 1) (String.length s - i - 1) in
    (match kind with
     | "fixed" ->
       Option.map (fun p -> Detectors.Omega.Fixed p) (int_of_string_opt arg)
     | "rotating" ->
       Option.map (fun k -> Detectors.Omega.Rotating k) (int_of_string_opt arg)
     | "seeded" ->
       Option.map (fun s -> Detectors.Omega.Seeded s) (int_of_string_opt arg)
     | "blockwise" ->
       let blocks =
         List.map
           (fun block ->
              List.filter_map int_of_string_opt
                (String.split_on_char ',' block))
           (String.split_on_char ';' arg)
       in
       Some (Detectors.Omega.Blockwise blocks)
     | _ -> None)

(* Violation messages come from Format and may contain line breaks; the
   file format is line-oriented, so collapse each onto a single line. *)
let one_line s =
  String.concat " "
    (List.filter (fun w -> w <> "")
       (String.split_on_char ' '
          (String.map (function '\n' | '\t' | '\r' -> ' ' | c -> c) s)))

let mix_ok (name, _) =
  name <> ""
  && String.for_all
       (fun c -> c <> ',' && c <> ':' && c <> ' ' && c <> '=')
       name

let workload_lines = function
  | No_posts -> [ "workload none" ]
  | Posts { count; from_time; every } ->
    [ Printf.sprintf "workload posts count=%d from=%d every=%d" count
        from_time every ]
  | Auto_posts { count; stretch } ->
    [ Printf.sprintf "workload auto count=%d stretch=%s" count
        (if stretch then "on" else "off") ]
  | Weighted { count; from_time; every; jitter; mix } ->
    if not (List.for_all mix_ok mix) then
      invalid_arg "Builder.to_lines: weighted mix names must be plain words";
    [ Printf.sprintf "workload weighted count=%d from=%d every=%d jitter=%d mix=%s"
        count from_time every jitter
        (String.concat ","
           (List.map (fun (name, w) -> Printf.sprintf "%s:%d" name w) mix)) ]
  | Explicit posts ->
    "workload explicit"
    :: List.map
      (fun (tm, p, tag) -> Printf.sprintf "post %d %d %s" tm p tag)
      posts
  | Raw _ -> invalid_arg "Builder.to_lines: Raw workloads are not serializable"

let checker_line = function
  | Etob_spec Tau_auto -> "check etob tau=auto"
  | Etob_spec (Tau_fixed bound) -> Printf.sprintf "check etob tau=%d" bound
  | Watchdog Wd_auto -> "check watchdog auto"
  | Watchdog (Wd_fixed { settle; bound }) ->
    Printf.sprintf "check watchdog settle=%d bound=%d" settle bound

let to_lines ?digest ?(violations = []) t =
  let d =
    match t.base with
    | Decl d -> d
    | Opaque _ -> invalid_arg "Builder.to_lines: opaque bases are not serializable"
  in
  (match (t.rconfig, t.ae_config, t.commits) with
   | None, None, None -> ()
   | _ ->
     invalid_arg "Builder.to_lines: config escape hatches are not serializable");
  (match (t.stores, t.sink, t.propose, t.trace_out) with
   | None, None, None, None -> ()
   | _ ->
     invalid_arg "Builder.to_lines: handle escape hatches are not serializable");
  [ header;
    "stack " ^ stack_name t.stack;
    Printf.sprintf "n %d" d.n;
    Printf.sprintf "seed %d" d.seed;
    Printf.sprintf "deadline %d" d.deadline;
    Printf.sprintf "timer-period %d" d.timer_period;
    (match d.delay with
     | Constant dl -> Printf.sprintf "delay constant %d" dl
     | Uniform { min_d; max_d } ->
       Printf.sprintf "delay uniform min=%d max=%d" min_d max_d) ]
  @ (match t.omega with
     | None -> []
     | Some (Stacks.Oracle { stabilize_at; pre }) ->
       [ Printf.sprintf "omega oracle stable=%d pre=%s" stabilize_at
           (pre_to_string pre) ]
     | Some (Stacks.Elected { initial_timeout }) ->
       [ Printf.sprintf "omega elected timeout=%d" initial_timeout ])
  @ workload_lines t.workload
  @ (match t.service with
     | None -> []
     | Some s -> [ "service " ^ Service_spec.to_string s ])
  @ (match t.mutation with
     | None -> []
     | Some m -> [ "mutant " ^ Etob_omega.mutation_name m ])
  @ (match t.rmutation with
     | None -> []
     | Some m -> [ "rmutant " ^ Recoverable.mutation_name m ])
  @ (match t.ae_mutation with
     | None -> []
     | Some m -> [ "ae-mutant " ^ Anti_entropy.mutation_name m ])
  @ List.map
    (fun (Drop_boost_while_partitioned { factor }) ->
       Printf.sprintf "boost drop-while-partitioned factor=%d" factor)
    t.boosts
  @ List.map checker_line t.checkers
  @ (if t.max_instance > 0 then
       [ Printf.sprintf "max-instance %d" t.max_instance ]
     else [])
  @ (match t.budget with
     | None -> []
     | Some b -> [ Printf.sprintf "budget %d" b ])
  @ (match digest with
     | None -> []
     | Some dg -> [ "digest " ^ (if dg = "" then "-" else dg) ])
  @ List.map (fun v -> "violation " ^ one_line v) violations
  @ [ Printf.sprintf "plan %d" (Adversity.size t.plan) ]
  @ Adversity.to_lines t.plan
  @ [ "end" ]

let to_string ?digest ?violations t =
  String.concat "\n" (to_lines ?digest ?violations t) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Exploration and shrinking                                           *)
(* ------------------------------------------------------------------ *)

type exploration = { found : outcome option; plans_run : int; budget : int }

(* Sequential mode stops at the first violation; parallel mode fans chunks
   over domains through [Sweep.map_safe] and stops after the first chunk
   containing one, always reporting the lowest-index violation for
   determinism across domain counts. *)
let explore ?(domains = 1) ?(on_progress = fun ~plans_run:_ -> ()) ~gen
    ~budget () =
  let finish found plans_run = { found; plans_run; budget } in
  if domains <= 1 then begin
    let rec go i =
      if i >= budget then finish None budget
      else begin
        let o = run ~digest:true ~catch:true (gen i) in
        if o.violations <> [] then finish (Some o) (i + 1)
        else begin
          on_progress ~plans_run:(i + 1);
          go (i + 1)
        end
      end
    in
    go 0
  end
  else begin
    let chunk = domains * 4 in
    let rec go i =
      if i >= budget then finish None budget
      else begin
        let hi = min budget (i + chunk) in
        let idxs = List.init (hi - i) (fun j -> i + j) in
        (* The sweep context attaches the failing plan's spec text to the
           error payload, so an uncaught worker exception is reproducible
           without re-running the exploration (builders with opaque
           clauses have no text form; name the index instead). *)
        let context ~seed:idx =
          match to_lines (gen idx) with
          | lines -> String.concat "\n" lines
          | exception Invalid_argument _ ->
            Printf.sprintf "<plan %d: no spec form>" idx
        in
        let results =
          Sweep.map_safe ~domains ~context ~seeds:idxs (fun ~seed:idx ->
              run ~digest:true ~catch:true (gen idx))
        in
        let outcomes =
          List.map
            (fun (r : _ Sweep.result) ->
               match r.Sweep.value with
               | Ok o -> o
               | Error e ->
                 { builder = gen r.Sweep.seed;
                   trace = None;
                   report = None;
                   violations = [ "exception: " ^ e ];
                   digest = "";
                   handles = No_handles })
            results
        in
        match List.find_opt (fun o -> o.violations <> []) outcomes with
        | Some o -> finish (Some o) hi
        | None ->
          on_progress ~plans_run:hi;
          go hi
      end
    in
    go 0
  end

(* Greedy minimization to a local minimum: repeatedly drop whole
   adversities while a violation survives, then substitute each spec's
   weaker variants (re-running removal after every successful weakening).
   [rebuild] maps the candidate plan back to a builder, so the caller can
   re-derive plan-dependent choices (e.g. the stack).  Terminates because
   removal shrinks the plan and every [Adversity.weaken] variant strictly
   decreases a positive integer measure of its spec. *)
let shrink ~rebuild (o : outcome) =
  let try_plan plan =
    let o' = run ~digest:true ~catch:true (rebuild plan) in
    if o'.violations <> [] then Some o' else None
  in
  let rec drop_pass o =
    let plan = o.builder.plan in
    let len = List.length plan in
    let rec try_at i =
      if i >= len then None
      else
        match try_plan (List.filteri (fun j _ -> j <> i) plan) with
        | Some o' -> Some o'
        | None -> try_at (i + 1)
    in
    match try_at 0 with Some o' -> drop_pass o' | None -> o
  in
  let rec weaken_pass o =
    let plan = Array.of_list o.builder.plan in
    let weaker_at i =
      List.find_map
        (fun weaker ->
           try_plan
             (Array.to_list
                (Array.mapi (fun j s -> if j = i then weaker else s) plan)))
        (Adversity.weaken plan.(i))
    in
    let rec at i =
      if i >= Array.length plan then None
      else match weaker_at i with Some o' -> Some o' | None -> at (i + 1)
    in
    match at 0 with Some o' -> weaken_pass (drop_pass o') | None -> o
  in
  weaken_pass (drop_pass o)

exception Parse of string

let parse_fail fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt
let at lineno fmt = Printf.ksprintf (fun m -> parse_fail "line %d: %s" lineno m) fmt

(* Key=value fields of a line tail, repro-file style. *)
let kv_fields fields =
  List.filter_map
    (fun f ->
       match String.index_opt f '=' with
       | None -> None
       | Some i ->
         Some
           (String.sub f 0 i, String.sub f (i + 1) (String.length f - i - 1)))
    fields

let tokens_of line =
  List.filter (( <> ) "") (String.split_on_char ' ' (String.trim line))

(* Shared by both parsers: take [count] plan lines, expect "end". *)
let parse_plan_section ~count rest =
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] ->
      parse_fail "plan section truncated: expected %d adversity lines" count
    | l :: rest -> take (k - 1) (l :: acc) rest
  in
  let plan_lines, tail = take count [] rest in
  (match tail with
   | [ (_, "end") ] -> ()
   | (lineno, l) :: _ ->
     at lineno "expected end after %d plan lines, got %S" count l
   | [] -> parse_fail "missing end line (file truncated?)");
  List.map
    (fun (lineno, l) ->
       match Adversity.of_line l with
       | Ok spec -> spec
       | Error msg -> at lineno "%s" msg)
    plan_lines

(* The legacy repro header: the explorer's target fields, mapped onto
   builder clauses with exactly the explorer's stack-selection and posting
   policies, so a recorded repro replays byte-identically through the
   builder path.  The plan is kept verbatim (not normalized). *)
let parse_legacy rest =
  let impl = ref Stacks.Algorithm_5 in
  let mutation = ref None and rmutation = ref None and ae_mutation = ref None in
  let n = ref 4 and seed = ref 0 and deadline = ref 240 in
  let timer_period = ref 2 and posts = ref 12 in
  let base_min = ref 1 and base_max = ref 3 in
  let recovery = ref false and ae = ref false and watchdog = ref false in
  let finish plan =
    let uses_ae = !impl = Stacks.Algorithm_5 && (!ae || !ae_mutation <> None) in
    let uses_recovery =
      !impl = Stacks.Algorithm_5
      && (!recovery || !rmutation <> None || Adversity.has_recovery plan)
    in
    let stack =
      if uses_recovery then Recoverable { ae = uses_ae }
      else if uses_ae then Etob_ae
      else Etob !impl
    in
    { (create ~seed:!seed ~timer_period:!timer_period
         ~delay:(Uniform { min_d = !base_min; max_d = !base_max })
         ~n:!n ~deadline:!deadline stack)
      with
      workload = Auto_posts { count = !posts; stretch = !recovery };
      plan;
      mutation = !mutation;
      rmutation = !rmutation;
      ae_mutation = !ae_mutation;
      checkers =
        Etob_spec Tau_auto :: (if !watchdog then [ Watchdog Wd_auto ] else [])
    }
  in
  let flag lineno key v r =
    match v with
    | "on" | "true" -> r := true
    | "off" | "false" -> r := false
    | _ -> at lineno "%s must be on or off, got %S" key v
  in
  let rec headers = function
    | [] -> parse_fail "missing plan section (file truncated?)"
    | (lineno, line) :: rest ->
      let key, v =
        match String.index_opt line ' ' with
        | None -> (line, "")
        | Some i ->
          ( String.sub line 0 i,
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          )
      in
      let int v =
        match int_of_string_opt v with
        | Some i -> i
        | None -> at lineno "expected an integer, got %S" v
      in
      (match key with
       | "impl" ->
         (match
            (match v with
             | "alg5" -> Some Stacks.Algorithm_5
             | "paxos" -> Some Stacks.Paxos_baseline
             | "alg1" -> Some Stacks.Algorithm_1_over_4
             | _ -> None)
          with
          | Some i -> impl := i
          | None -> at lineno "unknown impl %S" v);
         headers rest
       | "mutant" ->
         (if v <> "none" then
            match Etob_omega.mutation_of_string v with
            | Some m -> mutation := Some m
            | None -> at lineno "unknown mutant %S" v);
         headers rest
       | "rmutant" ->
         (if v <> "none" then
            match Recoverable.mutation_of_string v with
            | Some m -> rmutation := Some m
            | None -> at lineno "unknown recovery mutant %S" v);
         headers rest
       | "ae-mutant" ->
         (if v <> "none" then
            match Anti_entropy.mutation_of_string v with
            | Some m -> ae_mutation := Some m
            | None -> at lineno "unknown anti-entropy mutant %S" v);
         headers rest
       | "recovery" -> flag lineno key v recovery; headers rest
       | "ae" -> flag lineno key v ae; headers rest
       | "watchdog" -> flag lineno key v watchdog; headers rest
       | "n" -> n := int v; headers rest
       | "seed" -> seed := int v; headers rest
       | "deadline" -> deadline := int v; headers rest
       | "timer-period" -> timer_period := int v; headers rest
       | "posts" -> posts := int v; headers rest
       | "base-min" -> base_min := int v; headers rest
       | "base-max" -> base_max := int v; headers rest
       | "digest" | "violation" -> headers rest
       | "plan" -> finish (parse_plan_section ~count:(int v) rest)
       | k -> at lineno "unknown header %S" k)
  in
  headers rest

let parse_new rest =
  let t = ref (create ~n:4 ~deadline:240 (Etob Stacks.Algorithm_5)) in
  let set_decl f =
    match !t.base with
    | Decl d -> t := { !t with base = Decl (f d) }
    | Opaque _ -> assert false
  in
  let checkers = ref [] and boosts = ref [] and posts = ref [] in
  let explicit = ref false in
  let finish plan =
    let workload =
      if !explicit then Explicit (List.rev !posts) else !t.workload
    in
    { !t with
      workload;
      plan = Adversity.make plan;
      checkers = List.rev !checkers;
      boosts = List.rev !boosts }
  in
  let rec headers = function
    | [] -> parse_fail "missing plan section (file truncated?)"
    | (lineno, line) :: rest ->
      let int v =
        match int_of_string_opt v with
        | Some i -> i
        | None -> at lineno "expected an integer, got %S" v
      in
      let kv_int kv k =
        match List.assoc_opt k kv with
        | Some v -> int v
        | None -> at lineno "missing field %s" k
      in
      (match tokens_of line with
       | [] -> headers rest
       | "stack" :: [ name ] ->
         (match stack_of_name name with
          | Some stack -> t := { !t with stack }
          | None -> at lineno "unknown stack %S" name);
         headers rest
       | "n" :: [ v ] -> set_decl (fun d -> { d with n = int v }); headers rest
       | "seed" :: [ v ] ->
         set_decl (fun d -> { d with seed = int v });
         headers rest
       | "deadline" :: [ v ] ->
         set_decl (fun d -> { d with deadline = int v });
         headers rest
       | "timer-period" :: [ v ] ->
         set_decl (fun d -> { d with timer_period = int v });
         headers rest
       | "delay" :: "constant" :: [ v ] ->
         set_decl (fun d -> { d with delay = Constant (int v) });
         headers rest
       | "delay" :: "uniform" :: fields ->
         let kv = kv_fields fields in
         set_decl (fun d ->
             { d with
               delay =
                 Uniform { min_d = kv_int kv "min"; max_d = kv_int kv "max" } });
         headers rest
       | "omega" :: "oracle" :: fields ->
         let kv = kv_fields fields in
         let pre =
           match List.assoc_opt "pre" kv with
           | None -> Detectors.Omega.Self_trust
           | Some p ->
             (match pre_of_string p with
              | Some pre -> pre
              | None -> at lineno "unknown omega pre-behaviour %S" p)
         in
         t :=
           { !t with
             omega =
               Some (Stacks.Oracle { stabilize_at = kv_int kv "stable"; pre })
           };
         headers rest
       | "omega" :: "elected" :: fields ->
         let kv = kv_fields fields in
         t :=
           { !t with
             omega =
               Some (Stacks.Elected { initial_timeout = kv_int kv "timeout" })
           };
         headers rest
       | "workload" :: [ "none" ] ->
         t := { !t with workload = No_posts };
         headers rest
       | "workload" :: "posts" :: fields ->
         let kv = kv_fields fields in
         t :=
           { !t with
             workload =
               Posts
                 { count = kv_int kv "count";
                   from_time = kv_int kv "from";
                   every = kv_int kv "every" } };
         headers rest
       | "workload" :: "auto" :: fields ->
         let kv = kv_fields fields in
         let stretch =
           match List.assoc_opt "stretch" kv with
           | Some "on" | Some "true" -> true
           | Some "off" | Some "false" | None -> false
           | Some v -> at lineno "stretch must be on or off, got %S" v
         in
         t :=
           { !t with
             workload = Auto_posts { count = kv_int kv "count"; stretch } };
         headers rest
       | "workload" :: "weighted" :: fields ->
         let kv = kv_fields fields in
         let mix =
           match List.assoc_opt "mix" kv with
           | None -> at lineno "missing field mix"
           | Some m ->
             List.map
               (fun entry ->
                  match String.index_opt entry ':' with
                  | None -> at lineno "bad mix entry %S" entry
                  | Some i ->
                    ( String.sub entry 0 i,
                      int
                        (String.sub entry (i + 1)
                           (String.length entry - i - 1)) ))
               (String.split_on_char ',' m)
         in
         t :=
           { !t with
             workload =
               Weighted
                 { count = kv_int kv "count";
                   from_time = kv_int kv "from";
                   every = kv_int kv "every";
                   jitter = kv_int kv "jitter";
                   mix } };
         headers rest
       | [ "workload"; "explicit" ] ->
         explicit := true;
         headers rest
       | "post" :: tm :: p :: tag_words when !explicit ->
         posts := (int tm, int p, String.concat " " tag_words) :: !posts;
         headers rest
       | "service" :: fields ->
         (match Service_spec.of_fields (kv_fields fields) with
          | Ok s -> t := { !t with service = Some s }
          | Error msg -> at lineno "service: %s" msg);
         headers rest
       | "mutant" :: [ v ] ->
         (if v <> "none" then
            match Etob_omega.mutation_of_string v with
            | Some m -> t := { !t with mutation = Some m }
            | None -> at lineno "unknown mutant %S" v);
         headers rest
       | "rmutant" :: [ v ] ->
         (if v <> "none" then
            match Recoverable.mutation_of_string v with
            | Some m -> t := { !t with rmutation = Some m }
            | None -> at lineno "unknown recovery mutant %S" v);
         headers rest
       | "ae-mutant" :: [ v ] ->
         (if v <> "none" then
            match Anti_entropy.mutation_of_string v with
            | Some m -> t := { !t with ae_mutation = Some m }
            | None -> at lineno "unknown anti-entropy mutant %S" v);
         headers rest
       | "boost" :: "drop-while-partitioned" :: fields ->
         let kv = kv_fields fields in
         boosts :=
           Drop_boost_while_partitioned { factor = kv_int kv "factor" }
           :: !boosts;
         headers rest
       | "check" :: "etob" :: fields ->
         let kv = kv_fields fields in
         let policy =
           match List.assoc_opt "tau" kv with
           | Some "auto" | None -> Tau_auto
           | Some v -> Tau_fixed (int v)
         in
         checkers := Etob_spec policy :: !checkers;
         headers rest
       | [ "check"; "watchdog"; "auto" ] ->
         checkers := Watchdog Wd_auto :: !checkers;
         headers rest
       | "check" :: "watchdog" :: fields ->
         let kv = kv_fields fields in
         checkers :=
           Watchdog
             (Wd_fixed
                { settle = kv_int kv "settle"; bound = kv_int kv "bound" })
           :: !checkers;
         headers rest
       | "max-instance" :: [ v ] ->
         t := { !t with max_instance = int v };
         headers rest
       | "budget" :: [ v ] ->
         t := { !t with budget = Some (int v) };
         headers rest
       | "digest" :: _ | "violation" :: _ -> headers rest
       | "plan" :: [ v ] -> finish (parse_plan_section ~count:(int v) rest)
       | _ -> at lineno "unknown spec line %S" line)
  in
  headers rest

let of_lines lines =
  let lines =
    List.filteri
      (fun _ (_, l) -> l <> "")
      (List.mapi (fun i l -> (i + 1, String.trim l)) lines)
  in
  let parse () =
    match lines with
    | (_, h) :: rest when h = header -> parse_new rest
    | (_, h) :: rest when h = legacy_header -> parse_legacy rest
    | (lineno, l) :: _ ->
      parse_fail "line %d: not a %s or %s file (found %S)" lineno header
        legacy_header l
    | [] -> parse_fail "empty file: not a %s file" header
  in
  match parse () with t -> Ok t | exception Parse msg -> Error msg

let of_string s = of_lines (String.split_on_char '\n' s)

let recorded_digest s =
  List.find_map
    (fun line ->
       match tokens_of line with
       | [ "digest"; v ] when v <> "-" -> Some v
       | _ -> None)
    (String.split_on_char '\n' s)

let write path ?digest ?violations t =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string ?digest ?violations t))

let read path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Binary trace artifacts                                              *)
(* ------------------------------------------------------------------ *)

(* A binary trace artifact is a self-contained replay unit: the event
   stream written by [trace_out], followed by one appended spec record
   carrying the run's spec text (with digest and violations).  Appending
   is legal in the frame format — readers take the last spec record — so
   the spec, known only after the run, never has to be seeked in. *)

let append_binary_spec path ?digest ?violations t =
  let text = to_string ?digest ?violations t in
  let oc = Out_channel.open_gen [ Open_append; Open_binary ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> Out_channel.close_noerr oc)
    (fun () -> Out_channel.output_string oc (Persist.Frame.spec_record text))

let binary_spec path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents ->
    (match Persist.Frame.decode contents with
     | Error e -> Error (Format.asprintf "%s: %a" path Persist.Frame.pp_error e)
     | Ok items ->
       (match Persist.Frame.spec items with
        | Some text -> Ok text
        | None -> Error (path ^ ": binary trace carries no spec record")))

(* ------------------------------------------------------------------ *)
(* QCheck generators                                                   *)
(* ------------------------------------------------------------------ *)

(* Deliberately NOT fairness-clamped (unlike [Explore.Explorer.random_plan],
   which keeps plans recoverable so liveness checks are meaningful): safety
   properties must hold under any plan whatsoever, so these cover the whole
   space — drop windows that never heal, partitions to the horizon,
   flapping forever.  Plan generators normalize through [Adversity.make],
   so the text-form roundtrip is structural equality. *)

let subset_gen n =
  let open QCheck.Gen in
  let* mask = int_range 1 ((1 lsl n) - 2) in
  return (List.filter (fun p -> mask land (1 lsl p) <> 0) (List.init n Fun.id))

let window_gen deadline =
  let open QCheck.Gen in
  let* from_time = int_range 0 (deadline - 2) in
  let* len = int_range 1 (deadline - from_time) in
  return (from_time, from_time + len)

let spec_gen ~n ~deadline =
  let open QCheck.Gen in
  frequency
    [ ( 1,
        let* proc = int_range 1 (n - 1) in
        let* at = int_range 0 deadline in
        return (Adversity.Crash { proc; at }) );
      ( 2,
        let* left = subset_gen n in
        let* from_time, until_time = window_gen deadline in
        return (Adversity.Partition { left; from_time; until_time }) );
      ( 2,
        let* link =
          oneof
            [ return None;
              (let* src = int_range 0 (n - 1) in
               let* dst = int_range 0 (n - 1) in
               return (if src = dst then None else Some (src, dst))) ]
        in
        let* from_time, until_time = window_gen deadline in
        let* factor = int_range 2 6 in
        return (Adversity.Delay_spike { link; from_time; until_time; factor })
      );
      ( 2,
        let* from_time, until_time = window_gen deadline in
        let* pct = int_range 1 100 in
        return (Adversity.Drop { from_time; until_time; pct }) );
      ( 2,
        let* from_time, until_time = window_gen deadline in
        let* copies = int_range 1 3 in
        return (Adversity.Duplicate { from_time; until_time; copies }) );
      ( 2,
        let* until_time = int_range 1 deadline in
        let* period = int_range 1 6 in
        return (Adversity.Omega_flap { until_time; period }) ) ]

let plan_gen ~n ~deadline =
  QCheck.Gen.map Adversity.make
    QCheck.Gen.(list_size (int_range 0 5) (spec_gen ~n ~deadline))

let spec_shrink spec = QCheck.Iter.of_list (Adversity.weaken spec)

let plan_print plan = String.concat "; " (Adversity.to_lines plan)

let plan_arb ~n ~deadline =
  QCheck.make ~print:plan_print
    ~shrink:(QCheck.Shrink.list ~shrink:spec_shrink)
    (plan_gen ~n ~deadline)

(* Crash-recover windows and disk faults over processes 1..n-1.  Windows
   may overlap, touch, or sit anywhere in the horizon, and disk faults may
   target processes that never restart (then they are no-ops). *)
let recovery_spec_gen ~n ~deadline =
  let open QCheck.Gen in
  let* proc = int_range 1 (n - 1) in
  frequency
    [ ( 3,
        let* at = int_range 1 (deadline - 2) in
        let* len = int_range 1 (deadline - at) in
        return (Adversity.Crash_recover { proc; at; recover_at = at + len }) );
      ( 1,
        let* kind =
          oneofl
            [ Persist.Store.Torn_tail;
              Persist.Store.Lost_suffix 1;
              Persist.Store.Lost_suffix 3;
              Persist.Store.Corrupt_record ]
        in
        return (Adversity.Disk_fault { proc; kind }) ) ]

let recovery_plan_gen ~n ~deadline =
  let open QCheck.Gen in
  let* base = list_size (int_range 0 2) (spec_gen ~n ~deadline) in
  let* rec_specs = list_size (int_range 1 3) (recovery_spec_gen ~n ~deadline) in
  return (Adversity.make (base @ rec_specs))

let recovery_plan_arb ~n ~deadline =
  QCheck.make ~print:plan_print
    ~shrink:(QCheck.Shrink.list ~shrink:spec_shrink)
    (recovery_plan_gen ~n ~deadline)

(* Lossy, one-way and flapping partitions anywhere in the horizon —
   including schedules that never heal before the deadline or cut the
   leader off asymmetrically. *)
let partition_loss_spec_gen ~n ~deadline =
  let open QCheck.Gen in
  let* left = subset_gen n in
  frequency
    [ ( 2,
        let* from_time, until_time = window_gen deadline in
        return (Adversity.Lossy_partition { left; from_time; until_time }) );
      ( 1,
        let* from_time, until_time = window_gen deadline in
        return (Adversity.Oneway_partition { left; from_time; until_time }) );
      ( 1,
        let* from_time, until_time = window_gen deadline in
        let* period = int_range 1 6 in
        return
          (Adversity.Flapping_partition { left; from_time; until_time; period })
      ) ]

let partition_recovery_plan_gen ~n ~deadline =
  let open QCheck.Gen in
  let* base = list_size (int_range 0 2) (spec_gen ~n ~deadline) in
  let* losses =
    list_size (int_range 1 3) (partition_loss_spec_gen ~n ~deadline)
  in
  let* rec_specs = list_size (int_range 0 2) (recovery_spec_gen ~n ~deadline) in
  return (Adversity.make (base @ losses @ rec_specs))

let partition_recovery_plan_arb ~n ~deadline =
  QCheck.make ~print:plan_print
    ~shrink:(QCheck.Shrink.list ~shrink:spec_shrink)
    (partition_recovery_plan_gen ~n ~deadline)

let arbitrary =
  let open QCheck.Gen in
  let gen =
    let* n = int_range 3 5 in
    let* seed = int_range 0 999 in
    let* deadline = int_range 120 300 in
    let* delay =
      oneof
        [ (let* d = int_range 1 2 in
           return (Constant d));
          (let* min_d = int_range 1 2 in
           let* span = int_range 0 3 in
           return (Uniform { min_d; max_d = min_d + span })) ]
    in
    let* stack =
      oneofl
        [ Etob Stacks.Algorithm_5;
          Etob Stacks.Paxos_baseline;
          Etob Stacks.Algorithm_1_over_4;
          Etob_ae;
          Recoverable { ae = false };
          Recoverable { ae = true };
          Gossip ]
    in
    let* workload =
      oneof
        [ return No_posts;
          (let* count = int_range 1 20 in
           let* from_time = int_range 0 20 in
           let* every = int_range 1 8 in
           return (Posts { count; from_time; every }));
          (let* count = int_range 1 20 in
           let* stretch = bool in
           return (Auto_posts { count; stretch }));
          (let* count = int_range 1 12 in
           let* every = int_range 1 8 in
           let* jitter = int_range 0 3 in
           return
             (Weighted
                { count;
                  from_time = 8;
                  every;
                  jitter;
                  mix = [ ("a", 3); ("b", 1) ] })) ]
    in
    let* plan = plan_gen ~n ~deadline in
    let* checkers =
      oneofl
        [ [];
          [ Etob_spec Tau_auto ];
          [ Etob_spec Tau_auto; Watchdog Wd_auto ];
          [ Etob_spec (Tau_fixed 40) ] ]
    in
    let* boosts =
      oneofl [ []; [ Drop_boost_while_partitioned { factor = 2 } ] ]
    in
    let* mutation =
      oneofl (None :: List.map Option.some Etob_omega.all_mutations)
    in
    let* omega =
      oneofl
        [ None;
          Some
            (Stacks.Oracle
               { stabilize_at = 0; pre = Detectors.Omega.Self_trust });
          Some
            (Stacks.Oracle
               { stabilize_at = 40; pre = Detectors.Omega.Rotating 3 });
          Some (Stacks.Elected { initial_timeout = 6 }) ]
    in
    let* budget = oneofl [ None; Some 100 ] in
    let* service =
      oneof [ return None; map Option.some Service_spec.gen ]
    in
    return
      { (create ~seed ~delay ~n ~deadline stack) with
        workload;
        plan;
        checkers;
        boosts;
        mutation;
        omega;
        budget;
        service }
  in
  QCheck.make
    ~print:(fun b -> to_string b)
    ~shrink:(fun b ->
      QCheck.Iter.map
        (fun plan -> { b with plan })
        (QCheck.Shrink.list ~shrink:spec_shrink b.plan))
    gen
