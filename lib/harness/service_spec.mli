(** Declarative client-population spec for the closed-loop service layer
    (DESIGN.md §16).

    Pure data plus its spec-file text form and QCheck generators; the
    interpreter — arrival processes, retry/backoff loops, admission
    control, circuit breakers — lives in [lib/service].  The {!Builder}
    carries one optional spec per run as a [service ...] line. *)

type arrival =
  | Closed of { think : int }
      (** Closed loop: after each completion, think for [~think] ticks
          (uniform jitter around the mean) before the next request. *)
  | Open_loop of { gap : int }
      (** Paced arrivals roughly every [gap] ticks, independent of
          completions (collapses to back-to-back when the loop lags). *)
  | Bursty of { burst : int; gap : int }
      (** [burst] back-to-back requests, then an idle [gap]. *)

type t = {
  clients : int;  (** client processes appended after the replicas *)
  arrival : arrival;
  keys : int;  (** distinct non-hot keys *)
  skew_pct : int;  (** percentage of requests hitting the one hot key *)
  write_pct : int;  (** percentage of requests that are writes *)
  req_deadline : int;  (** per-attempt timeout, in ticks *)
  retries : int;  (** retry budget per logical request *)
  backoff_base : int;  (** capped exponential backoff, base ticks *)
  backoff_cap : int;
  jitter_pct : int;  (** seeded jitter added to each backoff, in percent *)
  queue_limit : int;  (** per-replica admission: max watched writes *)
  breaker_k : int;  (** consecutive strong failures that open the breaker *)
  breaker_cooldown : int;  (** ticks before a half-open probe *)
  strong : bool;  (** start on the strong (committed-prefix) path *)
  migrate_after : int;  (** consecutive dead attempts before migrating *)
  window : int;  (** availability window, in ticks *)
}

val default : t

val validate : t -> (t, string) result
(** Range checks; every constructor path below yields a valid spec. *)

val to_string : t -> string
(** One line of [k=v] fields, parseable by {!of_fields};
    [of_fields (fields (to_string t)) = Ok t]. *)

val of_fields : (string * string) list -> (t, string) result
(** Fold [k=v] fields over {!default}; [Error] names the offending field.
    The caller (Builder) prefixes the line number. *)

val arrival_to_string : arrival -> string
val arrival_of_string : string -> arrival option
val pp : Format.formatter -> t -> unit

val arrival_gen : arrival QCheck.Gen.t
val gen : t QCheck.Gen.t
(** Always-valid specs over the small ranges the smoke gate exercises. *)

val shrink : t QCheck.Shrink.t
val arbitrary : t QCheck.arbitrary
