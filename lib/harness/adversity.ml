(* Adversity plans: first-class, composable descriptions of everything the
   explorer may do to a run beyond the base scenario — crashes, timed
   healing partitions, per-link delay spikes, message drops/duplication and
   leader flapping.  A plan folds into any [Stacks.setup] with [apply], so
   the same plan value drives exploration, shrinking and replay.

   Plans are *data*, not closures: they print to a stable one-line-per-spec
   format ([to_lines]/[of_lines]) that repro and builder-spec files embed
   verbatim.  [make] is the normalizing smart constructor: it dedupes
   [Omega_flap] (last wins, now enforced rather than documented) and
   stable-sorts specs into a canonical rank order that [apply] is
   insensitive to (kinds touching the same setup field share a rank, so
   stability preserves their relative order). *)

open Simulator
open Simulator.Types
module Scenario = Stacks

type spec =
  | Crash of { proc : proc_id; at : time }
  | Partition of { left : proc_id list; from_time : time; until_time : time }
      (* [left] vs everyone else, healing at [until_time] *)
  | Lossy_partition of {
      left : proc_id list;
      from_time : time;
      until_time : time;
    }
      (* like [Partition], but cross-block sends are DROPPED, not buffered:
         recovering the lost traffic is the protocol's problem *)
  | Oneway_partition of {
      left : proc_id list;
      from_time : time;
      until_time : time;
    }
      (* asymmetric: sends from [left] to the rest are dropped, the reverse
         direction still flows *)
  | Flapping_partition of {
      left : proc_id list;
      from_time : time;
      until_time : time;
      period : int;
    }
      (* lossy, cut for [period] ticks / healed for [period], repeating *)
  | Delay_spike of {
      link : (proc_id * proc_id) option;  (* None = every link *)
      from_time : time;
      until_time : time;
      factor : int;
    }
  | Drop of { from_time : time; until_time : time; pct : int }
  | Duplicate of { from_time : time; until_time : time; copies : int }
  | Omega_flap of { until_time : time; period : int }
      (* Oracle rotates with [period] until [until_time], stable after *)
  | Crash_recover of { proc : proc_id; at : time; recover_at : time }
      (* a downtime window: volatile state lost at [at], process restarted
         at [recover_at] — only meaningful for recoverable stacks *)
  | Disk_fault of { proc : proc_id; kind : Persist.Store.fault }
      (* damage [proc]'s dirty log tail at its next crash; armed on the
         store pool by the runner ([apply] cannot see the stores) *)

type t = spec list

(* Canonical spec order for [make]: kinds that fold into the same setup
   field share a rank, so the stable sort never reorders two specs whose
   relative order matters (delay-model wrappers nest in plan order; fault
   windows compose in plan order).  Across ranks the folds touch
   independent setup fields and therefore commute, so sorting cannot
   change what [apply] builds. *)
let rank = function
  | Crash _ -> 0
  | Crash_recover _ -> 1
  | Disk_fault _ -> 2
  | Partition _ | Delay_spike _ -> 3
  | Lossy_partition _ | Oneway_partition _ | Flapping_partition _ | Drop _
  | Duplicate _ -> 4
  | Omega_flap _ -> 5

(* Smart constructor: of several [Omega_flap]s only the last is
   meaningful ([apply] overwrites the omega source), so [make] keeps only
   that one; then specs are stable-sorted by rank into the canonical
   order.  [apply (make plan)] and [apply plan] build the same setup. *)
let make plan =
  let last_flap =
    List.fold_left
      (fun acc spec ->
         match spec with Omega_flap _ -> Some spec | _ -> acc)
      None plan
  in
  let plan =
    match last_flap with
    | None -> plan
    | Some _ ->
      List.filter (function Omega_flap _ -> false | _ -> true) plan
      @ Option.to_list last_flap
  in
  List.stable_sort (fun a b -> Int.compare (rank a) (rank b)) plan

let size = List.length

let has_flap = List.exists (function Omega_flap _ -> true | _ -> false)

let has_recovery =
  List.exists (function Crash_recover _ | Disk_fault _ -> true | _ -> false)

(* The plan can silently lose messages: lossy/one-way/flapping partitions
   drop cross-block sends on the floor (unlike the buffering [Partition]),
   so liveness needs either post-heal re-gossip or the anti-entropy
   layer. *)
let has_partition_loss =
  List.exists
    (function
      | Lossy_partition _ | Oneway_partition _ | Flapping_partition _ -> true
      | _ -> false)

let crash_procs plan =
  List.filter_map (function Crash { proc; _ } -> Some proc | _ -> None) plan

let recover_procs plan =
  List.filter_map
    (function Crash_recover { proc; _ } -> Some proc | _ -> None)
    plan

let disk_faults plan =
  List.filter_map
    (function Disk_fault { proc; kind } -> Some (proc, kind) | _ -> None)
    plan

(* The time from which the network and the detector behave nominally again
   — every window closed, every delayed message flushed.  Tau bounds are
   computed relative to this. *)
let settle_time ~base_max plan =
  List.fold_left
    (fun acc spec ->
       max acc
         (match spec with
          | Crash { at; _ } -> at
          | Partition { until_time; _ } -> until_time + base_max
          (* lossy windows buffer nothing, so the network is nominal the
             moment they close; catching up on what was LOST is protocol
             work, accounted for in the caller's slack, not here *)
          | Lossy_partition { until_time; _ }
          | Oneway_partition { until_time; _ }
          | Flapping_partition { until_time; _ } -> until_time
          | Delay_spike { until_time; factor; _ } ->
            until_time + (base_max * factor)
          | Drop { until_time; _ } -> until_time
          | Duplicate { until_time; _ } -> until_time + base_max
          | Omega_flap { until_time; _ } -> until_time
          | Crash_recover { recover_at; _ } -> recover_at + base_max
          | Disk_fault _ -> 0 (* bites at a crash; settles with its window *)))
    0 plan

let complement ~n left =
  List.filter (fun p -> not (List.mem p left)) (all_procs n)

(* Fold one adversity into a setup.  Order within the plan is irrelevant:
   crashes commute, delay wrappers compose, fault windows compose through
   [Net.compose_faults], and at most one flap is meaningful (the generator
   and the shrinker maintain that invariant; if violated, the last one
   wins).  [Omega_flap] only affects oracle setups — the heartbeat
   emulation's flapping is an emergent behaviour, not a config. *)
let apply_spec (s : Scenario.setup) spec : Scenario.setup =
  match spec with
  | Crash { proc; at } ->
    { s with pattern = Failures.crash_at s.pattern proc at }
  | Partition { left; from_time; until_time } ->
    let blocks = [ left; complement ~n:s.n left ] in
    { s with
      delay = Net.partitioned { Net.blocks; from_time; until_time } ~base:s.delay }
  | Lossy_partition { left; from_time; until_time } ->
    let blocks = [ left; complement ~n:s.n left ] in
    { s with
      faults =
        Net.compose_faults
          [ s.faults;
            Net.lossy_partition { Net.blocks; from_time; until_time } ] }
  | Oneway_partition { left; from_time; until_time } ->
    { s with
      faults =
        Net.compose_faults
          [ s.faults; Net.oneway_partition ~from_block:left ~from_time ~until_time ] }
  | Flapping_partition { left; from_time; until_time; period } ->
    let blocks = [ left; complement ~n:s.n left ] in
    { s with
      faults =
        Net.compose_faults
          [ s.faults;
            Net.flapping_partition ~blocks ~from_time ~until_time ~period ] }
  | Delay_spike { link; from_time; until_time; factor } ->
    let only = Option.map (fun l -> [ l ]) link in
    { s with delay = Net.slow_links ?only ~from_time ~until_time ~factor s.delay }
  | Drop { from_time; until_time; pct } ->
    { s with
      faults =
        Net.compose_faults
          [ s.faults; Net.drop_window ~from_time ~until_time pct ] }
  | Duplicate { from_time; until_time; copies } ->
    { s with
      faults =
        Net.compose_faults
          [ s.faults; Net.duplicate_window ~from_time ~until_time copies ] }
  | Omega_flap { until_time; period } ->
    (match s.omega with
     | Scenario.Oracle _ ->
       { s with
         omega =
           Scenario.Oracle
             { stabilize_at = until_time;
               pre = Detectors.Omega.Rotating period } }
     | Scenario.Elected _ -> s)
  | Crash_recover { proc; at; recover_at } ->
    { s with pattern = Failures.crash_recover_at s.pattern proc ~at ~recover_at }
  | Disk_fault _ -> s
    (* acts on the store pool, not the setup; see [disk_faults] *)

let apply plan setup = List.fold_left apply_spec setup plan

(* Arm the plan's disk faults on a store pool (in plan order, so several
   faults against one process queue up FIFO, one per crash). *)
let arm_disk_faults plan stores =
  List.iter
    (fun (proc, kind) ->
       if proc >= 0 && proc < Array.length stores then
         Persist.Store.arm_fault stores.(proc) kind)
    (disk_faults plan)

(* Strictly weaker variants of one adversity, strongest reduction first;
   the shrinker tries them in order.  Window halvings keep [from_time], so
   a weakened plan never moves an adversity later into the run (its settle
   time — and therefore its tau bound — only shrinks). *)
let weaken spec =
  let halve_until ~from_time ~until_time k =
    let len = until_time - from_time in
    if len <= 1 then [] else [ k (from_time + (len / 2)) ]
  in
  match spec with
  | Crash _ -> []
  | Partition { left; from_time; until_time } ->
    halve_until ~from_time ~until_time (fun until_time ->
        Partition { left; from_time; until_time })
  (* The lossy family weakens only by closing earlier (halve_until keeps
     [from_time]), so a weakened plan's settle time — and tau bound — never
     grows.  Shrinking a flap's period would lengthen individual down
     windows, which is not strictly weaker, so the period stays. *)
  | Lossy_partition { left; from_time; until_time } ->
    halve_until ~from_time ~until_time (fun until_time ->
        Lossy_partition { left; from_time; until_time })
  | Oneway_partition { left; from_time; until_time } ->
    halve_until ~from_time ~until_time (fun until_time ->
        Oneway_partition { left; from_time; until_time })
  | Flapping_partition { left; from_time; until_time; period } ->
    halve_until ~from_time ~until_time (fun until_time ->
        Flapping_partition { left; from_time; until_time; period })
  | Delay_spike { link; from_time; until_time; factor } ->
    (if factor > 2 then
       [ Delay_spike { link; from_time; until_time; factor = factor / 2 } ]
     else [])
    @ halve_until ~from_time ~until_time (fun until_time ->
        Delay_spike { link; from_time; until_time; factor })
  | Drop { from_time; until_time; pct } ->
    (if pct > 25 then [ Drop { from_time; until_time; pct = pct / 2 } ] else [])
    @ halve_until ~from_time ~until_time (fun until_time ->
        Drop { from_time; until_time; pct })
  | Duplicate { from_time; until_time; copies } ->
    (if copies > 1 then
       [ Duplicate { from_time; until_time; copies = copies / 2 } ]
     else [])
    @ halve_until ~from_time ~until_time (fun until_time ->
        Duplicate { from_time; until_time; copies })
  | Omega_flap { until_time; period } ->
    if until_time / 2 >= period then
      [ Omega_flap { until_time = until_time / 2; period } ]
    else []
  | Crash_recover { proc; at; recover_at } ->
    let len = recover_at - at in
    if len <= 1 then []
    else [ Crash_recover { proc; at; recover_at = at + (len / 2) } ]
  | Disk_fault { proc; kind } ->
    (match kind with
     | Persist.Store.Lost_suffix k when k > 1 ->
       [ Disk_fault { proc; kind = Persist.Store.Lost_suffix (k / 2) } ]
     | _ -> [])

(* ------------------------------------------------------------------ *)
(* Stable text form (embedded in repro files)                          *)
(* ------------------------------------------------------------------ *)

let pp_procs ppf procs =
  Fmt.pf ppf "%s" (String.concat "," (List.map string_of_int procs))

let pp_spec ppf = function
  | Crash { proc; at } -> Fmt.pf ppf "crash p=%d at=%d" proc at
  | Partition { left; from_time; until_time } ->
    Fmt.pf ppf "partition left=%a from=%d until=%d" pp_procs left from_time
      until_time
  | Lossy_partition { left; from_time; until_time } ->
    Fmt.pf ppf "lossy left=%a from=%d until=%d" pp_procs left from_time
      until_time
  | Oneway_partition { left; from_time; until_time } ->
    Fmt.pf ppf "oneway left=%a from=%d until=%d" pp_procs left from_time
      until_time
  | Flapping_partition { left; from_time; until_time; period } ->
    Fmt.pf ppf "flapping left=%a from=%d until=%d period=%d" pp_procs left
      from_time until_time period
  | Delay_spike { link; from_time; until_time; factor } ->
    let pp_link ppf = function
      | None -> Fmt.pf ppf "all"
      | Some (s, d) -> Fmt.pf ppf "%d>%d" s d
    in
    Fmt.pf ppf "spike link=%a from=%d until=%d factor=%d" pp_link link
      from_time until_time factor
  | Drop { from_time; until_time; pct } ->
    Fmt.pf ppf "drop from=%d until=%d pct=%d" from_time until_time pct
  | Duplicate { from_time; until_time; copies } ->
    Fmt.pf ppf "dup from=%d until=%d copies=%d" from_time until_time copies
  | Omega_flap { until_time; period } ->
    Fmt.pf ppf "flap until=%d period=%d" until_time period
  | Crash_recover { proc; at; recover_at } ->
    Fmt.pf ppf "crashrec p=%d at=%d until=%d" proc at recover_at
  | Disk_fault { proc; kind } ->
    Fmt.pf ppf "disk p=%d kind=%s" proc (Persist.Store.fault_to_string kind)

let pp ppf plan =
  if plan = [] then Fmt.pf ppf "(no adversities)"
  else Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_spec) plan

let to_line spec = Format.asprintf "%a" pp_spec spec
let to_lines plan = List.map to_line plan

exception Parse of string

let parse_fail fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt

let spec_of_line_exn line =
  let tokens =
    List.filter (( <> ) "") (String.split_on_char ' ' (String.trim line))
  in
  match tokens with
  | [] -> parse_fail "empty adversity line"
  | kind :: fields ->
    let kv =
      List.filter_map
        (fun f ->
           match String.index_opt f '=' with
           | None -> None
           | Some i ->
             Some
               ( String.sub f 0 i,
                 String.sub f (i + 1) (String.length f - i - 1) ))
        fields
    in
    let str k =
      match List.assoc_opt k kv with
      | Some v -> v
      | None -> parse_fail "missing field %s in %S" k line
    in
    let int k =
      match int_of_string_opt (str k) with
      | Some v -> v
      | None -> parse_fail "field %s is not an integer in %S" k line
    in
    let procs k =
      List.filter_map int_of_string_opt (String.split_on_char ',' (str k))
    in
    (match kind with
     | "crash" -> Crash { proc = int "p"; at = int "at" }
     | "partition" ->
       Partition
         { left = procs "left"; from_time = int "from"; until_time = int "until" }
     | "lossy" ->
       Lossy_partition
         { left = procs "left"; from_time = int "from"; until_time = int "until" }
     | "oneway" ->
       Oneway_partition
         { left = procs "left"; from_time = int "from"; until_time = int "until" }
     | "flapping" ->
       let period = int "period" in
       if period < 1 then parse_fail "flapping period must be >= 1 in %S" line;
       Flapping_partition
         { left = procs "left";
           from_time = int "from";
           until_time = int "until";
           period }
     | "spike" ->
       let link =
         match str "link" with
         | "all" -> None
         | l ->
           (match String.split_on_char '>' l with
            | [ s; d ] ->
              (match int_of_string_opt s, int_of_string_opt d with
               | Some s, Some d -> Some (s, d)
               | _ -> parse_fail "bad link %S" l)
            | _ -> parse_fail "bad link %S" l)
       in
       Delay_spike
         { link;
           from_time = int "from";
           until_time = int "until";
           factor = int "factor" }
     | "drop" ->
       Drop { from_time = int "from"; until_time = int "until"; pct = int "pct" }
     | "dup" ->
       Duplicate
         { from_time = int "from";
           until_time = int "until";
           copies = int "copies" }
     | "flap" -> Omega_flap { until_time = int "until"; period = int "period" }
     | "crashrec" ->
       let at = int "at" and recover_at = int "until" in
       if recover_at <= at then
         parse_fail "crashrec window is empty or inverted in %S" line;
       Crash_recover { proc = int "p"; at; recover_at }
     | "disk" ->
       (match Persist.Store.fault_of_string (str "kind") with
        | Some kind -> Disk_fault { proc = int "p"; kind }
        | None -> parse_fail "unknown disk fault kind %S in %S" (str "kind") line)
     | k -> parse_fail "unknown adversity kind %S" k)

let of_line line =
  match spec_of_line_exn line with
  | spec -> Ok spec
  | exception Parse msg -> Error msg

let of_lines lines =
  let rec go acc = function
    | [] -> Ok (make (List.rev acc))
    | line :: rest ->
      (match of_line line with
       | Ok spec -> go (spec :: acc) rest
       | Error msg -> Error msg)
  in
  go [] lines
