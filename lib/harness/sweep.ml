(* Domain-parallel seed sweeps.

   Deterministic-simulation power comes from running the same scenario
   under many seeds.  Every [Engine.run] is self-contained — per-process
   RNGs and the network RNG are derived from [config.seed], stateful delay
   models are re-instantiated per run ([Net.per_run]), and the event queue,
   trace and sinks are allocated inside the run — so seed sweeps are
   embarrassingly parallel.  This module fans one run function over a seed
   range using OCaml 5 domains.

   Determinism: workers share nothing and results are reassembled in seed
   order, so the output list (and anything folded over it) is independent
   of the domain count and of scheduling. *)

type 'a result = { seed : int; value : 'a }

let default_domains () =
  max 2 (min 8 (Domain.recommended_domain_count ()))

let seed_range ~base ~count = List.init count (fun i -> base + i)

let map ?domains ~seeds (f : seed:int -> 'a) : 'a result list =
  let seeds = Array.of_list seeds in
  let total = Array.length seeds in
  if total = 0 then []
  else begin
    let domains =
      let d = match domains with Some d -> d | None -> default_domains () in
      max 1 (min d total)
    in
    if domains = 1 then
      Array.to_list
        (Array.map (fun seed -> { seed; value = f ~seed }) seeds)
    else begin
      (* Strided assignment: worker w runs seeds w, w+domains, ... — a
         static, scheduling-independent partition. *)
      let results = Array.make total None in
      let worker w () =
        let rec go i acc =
          if i >= total then acc else go (i + domains) ((i, f ~seed:seeds.(i)) :: acc)
        in
        go w []
      in
      let handles =
        List.init (domains - 1) (fun w -> Domain.spawn (worker (w + 1)))
      in
      let own = worker 0 () in
      let fill = List.iter (fun (i, v) -> results.(i) <- Some v) in
      fill own;
      List.iter (fun h -> fill (Domain.join h)) handles;
      Array.to_list
        (Array.mapi
           (fun i v ->
              match v with
              | Some value -> { seed = seeds.(i); value }
              | None -> assert false)
           results)
    end
  end

(* An exception raised inside a worker must not abort the whole sweep
   (exploration runs buggy protocol variants on purpose, and a raising run
   is a *finding*, not an infrastructure error): capture it per seed.
   [Printexc.to_string] runs inside the worker domain so backtraces stay
   attached to the run that raised.  The payload names the failing seed
   and, when the caller supplies [context] (e.g. the builder spec text of
   the run), appends it — so a quarantined finding is reproducible from
   the error alone, without re-running the campaign.  [context] runs
   inside the worker too, and its own failure never masks the original
   exception. *)
let map_safe ?domains ?context ~seeds f =
  map ?domains ~seeds (fun ~seed ->
      match f ~seed with
      | value -> Ok value
      | exception e ->
        let base = Printf.sprintf "seed %d: %s" seed (Printexc.to_string e) in
        Error
          (match context with
           | None -> base
           | Some c ->
             let ctx =
               match c ~seed with
               | s -> s
               | exception _ -> "<context unavailable>"
             in
             if ctx = "" then base else base ^ "\n" ^ ctx))

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

type verdicts = { runs : int; passed : int; failed_seeds : int list }

let verdicts results ~ok =
  let runs = List.length results in
  let failed =
    List.filter_map (fun r -> if ok r.value then None else Some r.seed) results
  in
  { runs; passed = runs - List.length failed; failed_seeds = failed }

let pp_verdicts ppf v =
  if v.failed_seeds = [] then Fmt.pf ppf "%d/%d passed" v.passed v.runs
  else
    Fmt.pf ppf "%d/%d passed (failing seeds: %a)" v.passed v.runs
      (Fmt.list ~sep:Fmt.comma Fmt.int) v.failed_seeds

let mean_stddev xs =
  match xs with
  | [] -> None
  | _ ->
    let n = float_of_int (List.length xs) in
    let mean = List.fold_left ( +. ) 0.0 xs /. n in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. n
    in
    Some (mean, sqrt var)

(* Merge per-run latency sample sets into one distribution summary. *)
let merged_latency_stats (samples : int array list) =
  let all = List.concat_map Array.to_list samples in
  Stats.of_list all
