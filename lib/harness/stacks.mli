(** Raw stack wiring: protocols, detectors, workloads and the engine, glued
    together process by process.  The bottom layer of the harness:
    {!Builder} composes these runners declaratively and {!Scenario}
    re-exports them as the stable public entrypoints.  Tests normally go
    through those layers; this one exists so the builder has something
    lower-level than itself to call. *)

open Simulator
open Simulator.Types
open Ec_core

type omega_source =
  | Oracle of { stabilize_at : time; pre : Detectors.Omega.pre_behaviour }
      (** The paper's model: Omega as a history oracle. *)
  | Elected of { initial_timeout : int }
      (** The heartbeat-based emulation of a running system. *)

type setup = {
  n : int;
  seed : int;
  deadline : time;
  timer_period : int;  (** the paper's Delta_t *)
  delay : Net.model;
  faults : Net.fault_model;
      (** link-fault injection (drops/duplicates); {!Net.no_faults} by
          default, which keeps runs byte-identical to fault-free builds *)
  pattern : Failures.pattern;
  omega : omega_source;
  sink : Sink.t option;
      (** threaded into {!Engine.config}: [None] records a full trace,
          [Some s] sends run events to [s] and the returned trace is
          empty (see {!Engine.config}). *)
}

val default : n:int -> deadline:time -> setup
(** Failure-free, unit delays, oracle Omega stable from time 0, recording
    sink. *)

val engine_config : setup -> Engine.config

val omega_module :
  setup -> Engine.ctx -> (unit -> proc_id) * Engine.node
(** Per-process Omega module: query closure plus maintaining component. *)

val omega_stabilization : setup -> time option
(** The configured tau_Omega, or [None] for the emulation. *)

(** {2 Workloads} *)

type Io.input += Post of string
(** Ask the process to broadcast a fresh message with genuine causal
    dependencies (allocated through the ETOB service). *)

val post_driver : Etob_intf.service -> Engine.node

val spread_posts :
  n:int -> count:int -> from_time:time -> every:int ->
  (time * proc_id * Io.input) list
(** Round-robin senders posting one message every [every] ticks. *)

(** {2 Protocol stacks} *)

type etob_impl =
  | Algorithm_5  (** the paper's direct ETOB from Omega *)
  | Paxos_baseline  (** strong TOB from repeated consensus *)
  | Algorithm_1_over_4  (** the EC-to-ETOB transformation over Algorithm 4 *)

val etob_node :
  ?mutation:Etob_omega.mutation ->
  setup -> etob_impl -> Engine.ctx -> Engine.node * Etob_intf.service
(** [mutation] seeds a bug into Algorithm 5; the other stacks ignore it. *)

val run_etob :
  ?inputs:(time * proc_id * Io.input) list ->
  ?mutation:Etob_omega.mutation ->
  setup -> etob_impl -> Trace.t

val etob_report : setup -> Trace.t -> Properties.etob_report

val run_etob_ae :
  ?inputs:(time * proc_id * Io.input) list ->
  ?mutation:Etob_omega.mutation ->
  ?ae_config:Anti_entropy.config ->
  ?ae_mutation:Anti_entropy.mutation ->
  setup ->
  Trace.t * (Etob_omega.t * Anti_entropy.t) array
(** Algorithm 5 plus the {!Ec_core.Anti_entropy} catch-up component: the
    partition-hardened crash-stop stack.  Returns the per-process protocol
    and anti-entropy handles so tests and benches can read
    {!Ec_core.Anti_entropy.stats} (e.g. E18's digest-vs-flood traffic
    comparison). *)

val recoverable_node :
  ?rconfig:Recoverable.config ->
  ?mutation:Recoverable.mutation ->
  ?etob_mutation:Etob_omega.mutation ->
  ?commits:bool ->
  ?ae:Anti_entropy.config ->
  ?ae_mutation:Anti_entropy.mutation ->
  setup ->
  stores:Persist.Store.t array ->
  Engine.ctx ->
  Engine.node * Recoverable.t
(** One process of the crash-recovery stack (Algorithm 5 under
    {!Ec_core.Recoverable}), drawing its stable store from [stores] —
    usable directly as the engine's restart hook, since the store array
    outlives the incarnations. *)

val run_recoverable :
  ?inputs:(time * proc_id * Io.input) list ->
  ?rconfig:Recoverable.config ->
  ?mutation:Recoverable.mutation ->
  ?etob_mutation:Etob_omega.mutation ->
  ?commits:bool ->
  ?ae:Anti_entropy.config ->
  ?ae_mutation:Anti_entropy.mutation ->
  ?stores:Persist.Store.t array ->
  setup ->
  Trace.t * Recoverable.t array * Persist.Store.t array
(** Run the crash-recovery stack under the setup's failure pattern
    (including downtime windows).  Returns the trace, the latest
    incarnation handles, and the stores (fresh ones unless [stores] is
    given, e.g. with disk faults already armed). *)

val run_gossip_order :
  ?inputs:(time * proc_id * Io.input) list -> setup -> Trace.t
(** The leaderless gossip-ordering baseline (no Omega): converges only when
    broadcasts stop — the E13 negative control. *)

val run_etob_with_commits :
  ?inputs:(time * proc_id * Io.input) list -> setup -> Trace.t
(** Algorithm 5 plus the Section 7 committed-prefix indications. *)

val run_ec_omega :
  ?inputs:(time * proc_id * Io.input) list ->
  setup ->
  propose_value:(proc_id -> instance:int -> Value.t) ->
  max_instance:int ->
  Trace.t
(** Bare Algorithm 4 with the self-driving proposer. *)

val run_ec_lifted :
  ?inputs:(time * proc_id * Io.input) list ->
  setup ->
  propose_value:(proc_id -> instance:int -> Value.t) ->
  max_instance:int ->
  Trace.t
(** Multivalued EC through the binary lift over binary Algorithm 4 (inner
    layer "ec-inner"). *)

val run_ec_via_etob :
  ?inputs:(time * proc_id * Io.input) list ->
  setup ->
  etob_impl ->
  propose_value:(proc_id -> instance:int -> Value.t) ->
  max_instance:int ->
  Trace.t
(** EC through Algorithm 2 over the given ETOB implementation. *)

val run_eic_over_ec :
  ?inputs:(time * proc_id * Io.input) list ->
  setup ->
  propose_value:(proc_id -> instance:int -> Value.t) ->
  max_instance:int ->
  Trace.t
(** EIC through Algorithm 6 over Algorithm 4 (inner EC layer "ec-inner"). *)

val run_ec_via_eic :
  ?inputs:(time * proc_id * Io.input) list ->
  setup ->
  propose_value:(proc_id -> instance:int -> Value.t) ->
  max_instance:int ->
  Trace.t
(** EC through Algorithm 7 over (Algorithm 6 over Algorithm 4). *)
