(** Domain-parallel seed sweeps.

    Fans a self-contained run function over a seed range using OCaml 5
    domains.  Safe because every [Engine.run] derives all its randomness
    from [config.seed] and allocates all its mutable state (queue, trace,
    sinks, stateful delay models) inside the run.  Results are reassembled
    in seed order, so output is independent of domain count and
    scheduling. *)

type 'a result = { seed : int; value : 'a }

val default_domains : unit -> int
(** At least 2 (the sweep layer exists to use parallelism), at most 8 or
    the hardware's recommended domain count. *)

val seed_range : base:int -> count:int -> int list

val map : ?domains:int -> seeds:int list -> (seed:int -> 'a) -> 'a result list
(** [map ~seeds f] runs [f ~seed] for every seed, in parallel across
    [domains] (default {!default_domains}, clamped to the seed count), and
    returns results in the order of [seeds].  [f] must not touch shared
    mutable state; scenario runs qualify. *)

val map_safe :
  ?domains:int -> ?context:(seed:int -> string) -> seeds:int list ->
  (seed:int -> 'a) -> ('a, string) Result.t result list
(** Like {!map}, but a run that raises yields
    [Error "seed N: <exception>"] for its seed instead of aborting the
    sweep.  [context ~seed] (run inside the worker, its own exceptions
    swallowed) appends a reproduction payload — typically the builder
    spec text of the failing run — so a finding is replayable without
    re-running the sweep.  Combine with {!verdicts} ([ok:Result.is_ok]
    or stricter) so a crashing run counts as a failed verdict —
    adversarial exploration runs deliberately broken protocol variants,
    where an exception is a finding. *)

(** {2 Aggregation} *)

type verdicts = { runs : int; passed : int; failed_seeds : int list }

val verdicts : 'a result list -> ok:('a -> bool) -> verdicts
val pp_verdicts : Format.formatter -> verdicts -> unit

val mean_stddev : float list -> (float * float) option
(** Mean and population standard deviation; [None] on the empty list. *)

val merged_latency_stats : int array list -> Stats.t option
(** Pool per-run latency samples into one {!Stats.t}. *)
