(* The one sanctioned wall-clock gateway (see clock.mli).  Everything
   here is about *observing* real time safely; nothing here may feed a
   simulation.  detlint D2 still flags any other wall-clock call in
   lib/ bin/ test/ — the allow below is the carve-out, justified because
   stuck-run detection is meaningless against simulated time. *)

type t =
  | Monotonic of { mutable last : int }
  | Manual of { mutable now : int }

let monotonic () = Monotonic { last = 0 }

let manual ?(start = 0) () = Manual { now = start }

let advance t ms =
  match t with
  | Manual m -> if ms > 0 then m.now <- m.now + ms
  | Monotonic _ -> invalid_arg "Clock.advance: monotonic clock"

let sample_ms () =
  (* detlint: allow D2 soak deadline clock: the single sanctioned wall-clock site; readings gate campaign waiting only, never run results (DESIGN.md S15) *)
  int_of_float (Unix.gettimeofday () *. 1000.)

let now_ms t =
  match t with
  | Manual m -> m.now
  | Monotonic m ->
    let v = sample_ms () in
    (* Clamp: a system-clock step backwards must not produce a decreasing
       reading (elapsed times stay >= 0; deadlines fire late, not early). *)
    if v > m.last then m.last <- v;
    m.last

let elapsed_ms t ~since = max 0 (now_ms t - since)
