(** Convergence-progress liveness watchdog.

    Safety checkers cannot tell "converged" from "quietly stalled": a
    replica left permanently behind by a lossy partition (or an
    anti-entropy bug such as {!Ec_core.Anti_entropy.mutation}) yields a
    run with pristine safety and no convergence.  The watchdog flags
    exactly that: once the environment has settled (failures stabilized,
    partitions healed, workload posted — the caller's [settle]) a correct
    stack must reach the converged state within [bound] ticks (gossip
    slack + anti-entropy rounds + retransmission backoff, computed by the
    caller), or the run is a liveness violation with a per-process
    diagnosis of who stalled where. *)

open Simulator
open Simulator.Types
open Ec_core

type laggard = {
  proc : proc_id;
  last_progress : time;
      (** time of the last d-revision that grew this process's
          delivered-message set; [-1] if none ever did *)
  missing : int;  (** target messages absent from its final d *)
}

type verdict =
  | Converged of { at : time }
      (** every correct process stably covered the target by [at] *)
  | Stalled of { deadline : time; laggards : laggard list }

val target : Properties.etob_run -> App_msg.Id_set.t
(** The converged state: the union, over correct processes, of everything
    finally delivered and everything broadcast.  Broadcasts are included
    because a lossy partition can swallow a correct poster's message
    before {e any} process delivers it — the one stall a final-d union
    could not see. *)

val check : settle:time -> bound:int -> Properties.etob_run -> verdict
(** A process reaches the target at its first d-revision from which its
    id-set covers the target for the rest of the run; every correct
    process must reach it by [settle + bound]. *)

val of_trace :
  settle:time -> bound:int -> Failures.pattern -> Trace.t -> verdict

val violations : verdict -> string list
(** Explorer-style violation lines; empty iff converged. *)

val pp : Format.formatter -> verdict -> unit
