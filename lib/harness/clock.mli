(** Monotonic wall-clock shim for stuck-run deadlines.

    The determinism contract (detlint rule D2) bans wall clocks from the
    simulator and protocol layers: simulated time is the only time a run
    may observe.  Soak campaigns, however, need a *real* clock for exactly
    one job — detecting that a run wedged and will never finish on its
    own.  This module is the single sanctioned gateway: one allowlisted
    [Unix.gettimeofday] call site, clamped to be non-decreasing, plus a
    manual clock so deadline logic stays unit-testable without sleeping.

    Clock readings must never influence what a run computes — only
    whether the campaign keeps waiting for it.  Resume-equivalence of
    soak journals (DESIGN.md §15) depends on this separation. *)

type t
(** A millisecond clock.  Readings are non-decreasing. *)

val monotonic : unit -> t
(** Real wall clock.  Readings are [Unix.gettimeofday]-based milliseconds,
    clamped so a system-clock step backwards never yields a decreasing
    reading (deadlines may fire late under clock steps, never spuriously
    from a negative elapsed time). *)

val manual : ?start:int -> unit -> t
(** A test clock that only moves when {!advance} is called.  [start]
    defaults to [0]. *)

val advance : t -> int -> unit
(** [advance t ms] moves a {!manual} clock forward by [ms] (negative
    deltas are ignored).  Raises [Invalid_argument] on a {!monotonic}
    clock. *)

val now_ms : t -> int
(** Current reading in milliseconds.  Non-decreasing across calls. *)

val elapsed_ms : t -> since:int -> int
(** [elapsed_ms t ~since] is [max 0 (now_ms t - since)]. *)
