(* Raw stack wiring: protocols, detectors, workloads and the engine, glued
   together process by process.  This is the bottom layer of the harness —
   [Builder] composes these runners declaratively, and [Scenario] re-exports
   them (implemented through the builder) as the stable public entrypoints.
   Nothing here knows about adversity plans or spec files. *)

open Simulator
open Simulator.Types
open Ec_core

(* Where each process's Omega module comes from: a history oracle (the
   paper's model) or the heartbeat-based emulation (a running system). *)
type omega_source =
  | Oracle of { stabilize_at : time; pre : Detectors.Omega.pre_behaviour }
  | Elected of { initial_timeout : int }

type setup = {
  n : int;
  seed : int;
  deadline : time;
  timer_period : int;
  delay : Net.model;
  faults : Net.fault_model;
  pattern : Failures.pattern;
  omega : omega_source;
  sink : Sink.t option;
}

let default ~n ~deadline =
  { n;
    seed = 42;
    deadline;
    timer_period = 2;
    delay = Net.constant 1;
    faults = Net.no_faults;
    pattern = Failures.none ~n;
    omega = Oracle { stabilize_at = 0; pre = Detectors.Omega.Self_trust };
    sink = None }

let engine_config setup =
  { Engine.n = setup.n;
    pattern = setup.pattern;
    delay = setup.delay;
    faults = setup.faults;
    timer_period = setup.timer_period;
    seed = setup.seed;
    deadline = setup.deadline;
    sink = setup.sink }

(* Per-process Omega module: a query closure plus the protocol component
   that maintains it (idle for oracles). *)
let omega_module setup =
  match setup.omega with
  | Oracle { stabilize_at; pre } ->
    let oracle = Detectors.Omega.make ~pre setup.pattern ~stabilize_at in
    fun ctx -> (Detectors.Omega.module_of oracle ctx, Engine.idle_node)
  | Elected { initial_timeout } ->
    fun ctx ->
      let election, node = Detectors.Omega_election.create ctx ~initial_timeout in
      ((fun () -> Detectors.Omega_election.leader election), node)

(* The nominal stabilization time tau_Omega of the setup's detector; None
   for the emulation (its stabilization is a run property, not a config). *)
let omega_stabilization setup =
  match setup.omega with
  | Oracle { stabilize_at; _ } -> Some stabilize_at
  | Elected _ -> None

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

(* A [Post tag] input asks the process to broadcast a fresh message with
   genuine causal dependencies (allocated through the service), which is
   what realistic clients do; tests that need hand-crafted dependencies use
   Etob_intf.Broadcast_etob directly. *)
type Io.input += Post of string

let post_driver (service : Etob_intf.service) =
  { Engine.on_message = (fun ~src:_ _ -> ());
    on_timer = (fun () -> ());
    on_input = (function
      | Post tag -> service.Etob_intf.broadcast (service.Etob_intf.fresh_msg ~tag ())
      | Etob_intf.Broadcast_etob m -> service.Etob_intf.broadcast m
      | _ -> ()) }

(* [spread_posts ~n ~count ~from_time ~every] posts one message at a time
   from round-robin senders: the generic broadcast workload. *)
let spread_posts ~n ~count ~from_time ~every =
  List.init count (fun i ->
      (from_time + (i * every), i mod n, Post (Printf.sprintf "m%d" i)))

(* ------------------------------------------------------------------ *)
(* Stacks                                                              *)
(* ------------------------------------------------------------------ *)

type etob_impl = Algorithm_5 | Paxos_baseline | Algorithm_1_over_4

(* Build one process of the chosen ETOB implementation; returns the node
   and the ETOB service handle.  [mutation] seeds a bug into Algorithm 5
   (ignored by the other stacks — the mutation harness targets Algorithm 5
   only). *)
let etob_node ?mutation setup impl =
  let omega_of = omega_module setup in
  fun ctx ->
    let omega, omega_node = omega_of ctx in
    let service, proto_node =
      match impl with
      | Algorithm_5 ->
        let t, node = Etob_omega.create ?mutation ctx ~omega in
        (Etob_omega.service t, node)
      | Paxos_baseline ->
        let t, node = Consensus.Paxos_tob.create ctx ~omega in
        (Consensus.Paxos_tob.service t, node)
      | Algorithm_1_over_4 ->
        let ec, ec_node = Ec_omega.create ~layer:"ec-inner" ctx ~omega in
        let t, node = Ec_to_etob.create ctx ~ec:(Ec_omega.service ec) in
        (Ec_to_etob.service t, Engine.combine ec_node node)
    in
    (Engine.stack [ omega_node; proto_node; post_driver service ], service)

let run_etob ?(inputs = []) ?mutation setup impl =
  let trace, _ =
    Engine.run_with (engine_config setup)
      ~make_node:(etob_node ?mutation setup impl) ~inputs
  in
  trace

let etob_report setup trace =
  Properties.etob_report (Properties.etob_run_of_trace setup.pattern trace)

(* Algorithm 5 plus the anti-entropy catch-up component: the
   partition-hardened crash-stop stack.  AE reads the protocol's graph and
   feeds digest-exchange deltas back through [Etob_omega.learn], so an
   isolated replica resynchronizes after a lossy partition heals. *)
let etob_ae_node ?mutation ?ae_config ?ae_mutation setup =
  let omega_of = omega_module setup in
  fun ctx ->
    let omega, omega_node = omega_of ctx in
    let t, node = Etob_omega.create ?mutation ctx ~omega in
    let ae, ae_node =
      Anti_entropy.create ?config:ae_config ?mutation:ae_mutation ctx
        ~graph:(fun () -> Etob_omega.graph t)
        ~learn:(Etob_omega.learn t)
    in
    ( Engine.stack [ omega_node; node; ae_node; post_driver (Etob_omega.service t) ],
      (t, ae) )

let run_etob_ae ?(inputs = []) ?mutation ?ae_config ?ae_mutation setup =
  Engine.run_with (engine_config setup)
    ~make_node:(etob_ae_node ?mutation ?ae_config ?ae_mutation setup)
    ~inputs

(* The crash-recovery stack: Algorithm 5 under the Recoverable wrapper
   (durable log + retransmission links), one stable store per process.
   The driver here handles [Post] only: the wrapper's own node intercepts
   Broadcast_etob (so the durable path runs exactly once), and stacking
   the full [post_driver] beside it would dispatch every broadcast
   twice. *)
let recoverable_post_driver (service : Etob_intf.service) =
  { Engine.on_message = (fun ~src:_ _ -> ());
    on_timer = (fun () -> ());
    on_input = (function
      | Post tag -> service.Etob_intf.broadcast (service.Etob_intf.fresh_msg ~tag ())
      | _ -> ()) }

let recoverable_node ?rconfig ?mutation ?etob_mutation ?commits ?ae
    ?ae_mutation setup ~stores =
  let omega_of = omega_module setup in
  fun ctx ->
    let omega, omega_node = omega_of ctx in
    let t, node, service =
      Recoverable.create ?config:rconfig ?mutation ?etob_mutation ?commits
        ?anti_entropy:ae ?ae_mutation ~store:stores.(ctx.Engine.self) ~omega
        ctx
    in
    (Engine.stack [ omega_node; node; recoverable_post_driver service ], t)

let run_recoverable ?(inputs = []) ?rconfig ?mutation ?etob_mutation ?commits
    ?ae ?ae_mutation ?stores setup =
  let stores =
    match stores with
    | Some stores -> stores
    | None -> Persist.Store.pool ~n:setup.n
  in
  let trace, handles =
    Engine.run_with (engine_config setup)
      ~make_node:(recoverable_node ?rconfig ?mutation ?etob_mutation ?commits
                    ?ae ?ae_mutation setup ~stores)
      ~inputs
  in
  (trace, handles, stores)

(* The leaderless gossip-ordering baseline: no Omega anywhere. *)
let run_gossip_order ?(inputs = []) setup =
  let make_node ctx =
    let t, node = Gossip_order.create ctx in
    (Engine.combine node (post_driver (Gossip_order.service t)), ())
  in
  let trace, _ = Engine.run_with (engine_config setup) ~make_node ~inputs in
  trace

(* Algorithm 5 plus the Section 7 committed-prefix indication component. *)
let run_etob_with_commits ?(inputs = []) setup =
  let omega_of = omega_module setup in
  let make_node ctx =
    let omega, omega_node = omega_of ctx in
    let t, etob_node = Etob_omega.create ctx ~omega in
    let service = Etob_omega.service t in
    let _, commit_node =
      Commit_prefix.create ctx ~omega ~etob:service
        ~promotion:(fun () -> Etob_omega.promotion t)
    in
    (Engine.stack [ omega_node; etob_node; commit_node; post_driver service ], ())
  in
  let trace, _ = Engine.run_with (engine_config setup) ~make_node ~inputs in
  trace

(* Bare EC (Algorithm 4) with the self-driving proposer. *)
let run_ec_omega ?(inputs = []) setup ~propose_value ~max_instance =
  let omega_of = omega_module setup in
  let make_node ctx =
    let omega, omega_node = omega_of ctx in
    let ec, ec_node = Ec_omega.create ctx ~omega in
    let _, driver_node =
      Ec_driver.attach (Ec_omega.service ec)
        ~propose_value:(propose_value ctx.Engine.self) ~max_instance
    in
    (Engine.stack [ omega_node; ec_node; driver_node ], ())
  in
  let trace, _ = Engine.run_with (engine_config setup) ~make_node ~inputs in
  trace

(* Multivalued EC through the binary lift over binary Algorithm 4. *)
let run_ec_lifted ?(inputs = []) setup ~propose_value ~max_instance =
  let omega_of = omega_module setup in
  let make_node ctx =
    let omega, omega_node = omega_of ctx in
    let binary, binary_node = Ec_omega.create ~layer:"ec-inner" ctx ~omega in
    let lift, lift_node = Binary_lift.create ctx ~binary:(Ec_omega.service binary) in
    let _, driver_node =
      Ec_driver.attach (Binary_lift.service lift)
        ~propose_value:(propose_value ctx.Engine.self) ~max_instance
    in
    (Engine.stack [ omega_node; binary_node; lift_node; driver_node ], ())
  in
  let trace, _ = Engine.run_with (engine_config setup) ~make_node ~inputs in
  trace

(* EC obtained through Algorithm 2 over an ETOB implementation. *)
let run_ec_via_etob ?(inputs = []) setup impl ~propose_value ~max_instance =
  let omega_of = omega_module setup in
  let make_node ctx =
    let omega, omega_node = omega_of ctx in
    let etob_service, etob_node =
      match impl with
      | Algorithm_5 ->
        let t, node = Etob_omega.create ctx ~omega in
        (Etob_omega.service t, node)
      | Paxos_baseline ->
        let t, node = Consensus.Paxos_tob.create ctx ~omega in
        (Consensus.Paxos_tob.service t, node)
      | Algorithm_1_over_4 ->
        let ec, ec_node = Ec_omega.create ~layer:"ec-inner" ctx ~omega in
        let t, node = Ec_to_etob.create ctx ~ec:(Ec_omega.service ec) in
        (Ec_to_etob.service t, Engine.combine ec_node node)
    in
    let ec, ec_node = Etob_to_ec.create ctx ~etob:etob_service in
    let _, driver_node =
      Ec_driver.attach (Etob_to_ec.service ec)
        ~propose_value:(propose_value ctx.Engine.self) ~max_instance
    in
    (Engine.stack [ omega_node; etob_node; ec_node; driver_node ], ())
  in
  let trace, _ = Engine.run_with (engine_config setup) ~make_node ~inputs in
  trace

(* EIC obtained through Algorithm 6 over Algorithm 4, driven like EC. *)
let run_eic_over_ec ?(inputs = []) setup ~propose_value ~max_instance =
  let omega_of = omega_module setup in
  let make_node ctx =
    let omega, omega_node = omega_of ctx in
    let ec, ec_node = Ec_omega.create ~layer:"ec-inner" ctx ~omega in
    let eic, eic_node = Ec_to_eic.create ctx ~ec:(Ec_omega.service ec) in
    let eic_service = Ec_to_eic.service eic in
    (* Drive the EIC usage assumption: propose instance l+1 after the first
       response to instance l. *)
    let proposed = ref 0 in
    let responded = Hashtbl.create 16 in
    let propose_next () =
      let next = !proposed + 1 in
      if next <= max_instance then begin
        proposed := next;
        eic_service.Eic_intf.propose ~instance:next
          (propose_value ctx.Engine.self ~instance:next)
      end
    in
    eic_service.Eic_intf.on_decide (fun (d : Eic_intf.decision) ->
        if not (Hashtbl.mem responded d.Eic_intf.instance) then begin
          Hashtbl.add responded d.Eic_intf.instance ();
          if d.Eic_intf.instance = !proposed then propose_next ()
        end);
    let driver =
      { Engine.on_message = (fun ~src:_ _ -> ());
        on_timer = (fun () -> if !proposed = 0 then propose_next ());
        on_input = (fun _ -> ()) }
    in
    (Engine.stack [ omega_node; ec_node; eic_node; driver ], ())
  in
  let trace, _ = Engine.run_with (engine_config setup) ~make_node ~inputs in
  trace

(* EC recovered through Algorithm 7 over (Algorithm 6 over Algorithm 4). *)
let run_ec_via_eic ?(inputs = []) setup ~propose_value ~max_instance =
  let omega_of = omega_module setup in
  let make_node ctx =
    let omega, omega_node = omega_of ctx in
    let ec0, ec0_node = Ec_omega.create ~layer:"ec-inner" ctx ~omega in
    let eic, eic_node = Ec_to_eic.create ctx ~ec:(Ec_omega.service ec0) in
    let ec, ec_node = Eic_to_ec.create ctx ~eic:(Ec_to_eic.service eic) in
    let _, driver_node =
      Ec_driver.attach (Eic_to_ec.service ec)
        ~propose_value:(propose_value ctx.Engine.self) ~max_instance
    in
    (Engine.stack [ omega_node; ec0_node; eic_node; ec_node; driver_node ], ())
  in
  let trace, _ = Engine.run_with (engine_config setup) ~make_node ~inputs in
  trace

let () =
  Io.register_input_pp (fun ppf -> function
    | Post tag -> Fmt.pf ppf "post(%s)" tag; true
    | _ -> false)
