(* Scenario harness, as a facade: the raw process-by-process wiring lives
   in [Stacks], and every run_* entrypoint below is a thin preset over
   [Builder] — an opaque-base builder carrying the caller's setup, inputs
   and knobs, interpreted by [Builder.run].  Callers keep the historical
   signatures; the builder is the single code path underneath. *)

include Stacks

let builder_of inputs setup stack =
  { (Builder.of_setup setup stack) with Builder.workload = Builder.Raw inputs }

let trace_of (o : Builder.outcome) =
  match o.Builder.trace with
  | Some trace -> trace
  | None -> assert false (* run without ~catch never loses the trace *)

let run_etob ?(inputs = []) ?mutation setup impl =
  trace_of
    (Builder.run
       { (builder_of inputs setup (Builder.Etob impl)) with Builder.mutation })

let run_etob_ae ?(inputs = []) ?mutation ?ae_config ?ae_mutation setup =
  let o =
    Builder.run
      { (builder_of inputs setup Builder.Etob_ae) with
        Builder.mutation;
        ae_config;
        ae_mutation }
  in
  match o.Builder.handles with
  | Builder.Ae_handles handles -> (trace_of o, handles)
  | _ -> assert false

let run_recoverable ?(inputs = []) ?rconfig ?mutation ?etob_mutation ?commits
    ?ae ?ae_mutation ?stores setup =
  let o =
    Builder.run
      { (builder_of inputs setup (Builder.Recoverable { ae = ae <> None }))
        with
        Builder.rconfig;
        rmutation = mutation;
        mutation = etob_mutation;
        commits;
        ae_config = ae;
        ae_mutation;
        stores }
  in
  match o.Builder.handles with
  | Builder.Recoverable_handles (handles, stores) ->
    (trace_of o, handles, stores)
  | _ -> assert false

let run_gossip_order ?(inputs = []) setup =
  trace_of (Builder.run (builder_of inputs setup Builder.Gossip))

let run_etob_with_commits ?(inputs = []) setup =
  trace_of (Builder.run (builder_of inputs setup Builder.Etob_commits))

let run_ec ?(inputs = []) setup stack ~propose_value ~max_instance =
  trace_of
    (Builder.run
       { (builder_of inputs setup stack) with
         Builder.propose = Some propose_value;
         max_instance })

let run_ec_omega ?inputs setup ~propose_value ~max_instance =
  run_ec ?inputs setup Builder.Ec ~propose_value ~max_instance

let run_ec_lifted ?inputs setup ~propose_value ~max_instance =
  run_ec ?inputs setup Builder.Ec_lifted ~propose_value ~max_instance

let run_ec_via_etob ?inputs setup impl ~propose_value ~max_instance =
  run_ec ?inputs setup (Builder.Ec_via_etob impl) ~propose_value ~max_instance

let run_eic_over_ec ?inputs setup ~propose_value ~max_instance =
  run_ec ?inputs setup Builder.Eic ~propose_value ~max_instance

let run_ec_via_eic ?inputs setup ~propose_value ~max_instance =
  run_ec ?inputs setup Builder.Ec_via_eic ~propose_value ~max_instance
