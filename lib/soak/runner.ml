(* The campaign loop (see runner.mli).

   Determinism contract: the sequence of digest-relevant journal entries
   is a function of the campaign config and the executor alone —
   independent of domain count, chunk boundaries, interruption points
   and the degradation ladder.  The loop guarantees this by processing
   jobs in ascending order, folding each chunk's results in that order,
   and re-evaluating every stop condition per job (never per chunk), so
   an interrupted-and-resumed campaign records exactly the same entry
   prefix as an uninterrupted one. *)

module Explorer = Explore.Explorer
module Builder = Harness.Builder
module Sweep = Harness.Sweep
module Clock = Harness.Clock

exception Stuck of string

type attempt = Finished of Builder.outcome | Wedged of string

type exec =
  guard:(unit -> unit) ->
  Explorer.target ->
  seed:int ->
  Harness.Adversity.t ->
  attempt

let default_exec ~guard target ~seed plan =
  let b = Explorer.builder_of target ~seed plan in
  match Builder.run ~digest:true ~guard b with
  | o -> Finished o
  | exception Stuck reason -> Wedged reason
  | exception e ->
    (* A crashing run is a finding (quarantine path), not an infra
       error; mirror Builder.run ~catch so the violation text matches
       what the explorer would report. *)
    Finished
      { Builder.builder = b;
        trace = None;
        report = None;
        violations = [ "exception: " ^ Printexc.to_string e ];
        digest = "";
        handles = Builder.No_handles }

type outcome = { state : Campaign.state; journal : string }

(* ------------------------------------------------------------------ *)
(* Guard                                                               *)
(* ------------------------------------------------------------------ *)

(* Event budget is checked on every event; the wall clock only every
   256th (a syscall per event would dominate small runs).  The clock is
   shared across worker domains: Clock.now_ms mutates one immediate int
   field, which cannot tear — a stale clamp at worst delays a deadline
   by one sample, never fires it early. *)
let make_guard ~clock ~event_budget ~deadline_ms () =
  let started = Clock.now_ms clock in
  let events = ref 0 in
  fun () ->
    incr events;
    if !events > event_budget then
      raise
        (Stuck (Printf.sprintf "event budget exceeded (%d events)" event_budget));
    if
      !events land 255 = 0
      && Clock.elapsed_ms clock ~since:started > deadline_ms
    then
      raise
        (Stuck
           (Printf.sprintf "wall deadline exceeded (%d ms at %d events)"
              deadline_ms !events))

(* ------------------------------------------------------------------ *)
(* Filesystem                                                          *)
(* ------------------------------------------------------------------ *)

let rec mkdirs dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* The loop                                                            *)
(* ------------------------------------------------------------------ *)

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let run_loop ~domains:d0 ~clock ~exec ~stop_after ~on_progress
    (config : Campaign.config) writer state =
  let total = Campaign.total_jobs config in
  let findings_count (s : Campaign.state) = List.length s.Campaign.findings in
  let emit st entry =
    Persist.Journal.append writer (Journal.encode entry);
    Campaign.apply st entry
  in
  let worker ~seed:job =
    let leg = Campaign.leg_of_job config job in
    let plan = Campaign.plan_of_job config job in
    let eseed = Campaign.engine_seed config job in
    let guard =
      make_guard ~clock ~event_budget:config.Campaign.event_budget
        ~deadline_ms:config.Campaign.deadline_ms ()
    in
    match exec ~guard leg.Campaign.target ~seed:eseed plan with
    | Wedged reason -> Journal.Poisoned { job; kind = "stuck"; detail = reason }
    | Finished o when o.Builder.violations = [] ->
      Journal.Run { job; digest = o.Builder.digest }
    | Finished o ->
      Quarantine.quarantine ~artifacts:config.Campaign.artifacts
        ~target:leg.Campaign.target ~job ~seed:eseed ~plan
        ~violations:o.Builder.violations ~digest:o.Builder.digest
  in
  (* Worker-crash context (satellite of Sweep.map_safe): the failing
     job's spec text rides the error payload, so even an
     infrastructure-level crash leaves a reproducible record. *)
  let context ~seed:job =
    let leg = Campaign.leg_of_job config job in
    let plan = Campaign.plan_of_job config job in
    Builder.to_string
      (Explorer.builder_of leg.Campaign.target
         ~seed:(Campaign.engine_seed config job)
         plan)
  in
  (* Per-job ladder and stop rules, applied while folding a chunk in job
     order.  Jobs computed after a stop point are discarded unjournaled —
     wasted work, but the recorded stream stays chunk-independent. *)
  let step (st, done_now, stopped) (r : _ Sweep.result) =
    if stopped then (st, done_now, stopped)
    else begin
      let entry =
        match r.Sweep.value with
        | Ok e -> e
        | Error payload ->
          Journal.Poisoned { job = r.Sweep.seed; kind = "worker"; detail = payload }
      in
      let st = emit st entry in
      let done_now = done_now + 1 in
      (* Ladder rung 3: sacrifice budget exhausted — abort. *)
      if st.Campaign.poisoned > config.Campaign.max_poisoned then begin
        let st =
          emit st
            (Journal.Degrade
               { domains = 0;
                 reason =
                   Printf.sprintf "poisoned-seed budget exhausted (%d > %d)"
                     st.Campaign.poisoned config.Campaign.max_poisoned })
        in
        (st, done_now, true)
      end
      else begin
        (* Ladder rung 1: repeated worker failure halves concurrency. *)
        let st =
          if
            st.Campaign.streak >= 2
            && max 1 (d0 lsr st.Campaign.halvings) > 1
          then
            emit st
              (Journal.Degrade
                 { domains = max 1 (d0 lsr (st.Campaign.halvings + 1));
                   reason =
                     Printf.sprintf
                       "%d consecutive poisoned jobs: halving concurrency"
                       st.Campaign.streak })
          else st
        in
        let stopped =
          findings_count st >= config.Campaign.max_findings
          || (match stop_after with Some k -> done_now >= k | None -> false)
        in
        (st, done_now, stopped)
      end
    end
  in
  let rec loop st done_now =
    if st.Campaign.aborted <> None then st
    else if findings_count st >= config.Campaign.max_findings then st
    else if (match stop_after with Some k -> done_now >= k | None -> false)
    then st
    else
      match Campaign.pending config st with
      | [] -> st
      | pending ->
        let domains = max 1 (d0 lsr st.Campaign.halvings) in
        let chunk = take (max 1 (domains * 4)) pending in
        let results =
          Sweep.map_safe ~domains ~context ~seeds:chunk worker
        in
        let st, done_now, stopped =
          List.fold_left step (st, done_now, false) results
        in
        if not stopped then begin
          (match Campaign.pending config st with
           | [] -> ()
           | next :: _ ->
             Persist.Journal.append writer
               (Journal.encode (Journal.Checkpoint { next })));
          on_progress ~done_:(total - List.length (Campaign.pending config st))
            ~total
        end;
        loop st done_now
  in
  loop state 0

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let finish writer journal state =
  Persist.Journal.close writer;
  Ok { state; journal }

let start ?domains ?clock ?(exec = default_exec) ?stop_after
    ?(on_progress = fun ~done_:_ ~total:_ -> ()) ~journal config =
  let domains =
    match domains with Some d -> max 1 d | None -> Sweep.default_domains ()
  in
  let clock = match clock with Some c -> c | None -> Clock.monotonic () in
  mkdirs config.Campaign.artifacts;
  mkdirs (Filename.dirname journal);
  match Persist.Journal.create journal with
  | exception Sys_error e -> Error e
  | writer ->
    Persist.Journal.append writer (Journal.encode (Campaign.config_entry config));
    let state =
      run_loop ~domains ~clock ~exec ~stop_after ~on_progress config writer
        (Campaign.initial config)
    in
    finish writer journal state

let resume_with ?domains ?clock ?(exec = default_exec) ?stop_after
    ?(on_progress = fun ~done_:_ ~total:_ -> ()) ~journal config =
  let domains =
    match domains with Some d -> max 1 d | None -> Sweep.default_domains ()
  in
  let clock = match clock with Some c -> c | None -> Clock.monotonic () in
  match Persist.Journal.resume journal with
  | Error e -> Error e
  | Ok (contents, writer) ->
    let decoded =
      List.fold_left
        (fun acc payload ->
           match acc with
           | Error _ as e -> e
           | Ok entries ->
             (match Journal.decode payload with
              | Ok e -> Ok (e :: entries)
              | Error e -> Error ("undecodable journal record: " ^ e)))
        (Ok []) contents.Persist.Journal.records
    in
    (match decoded with
     | Error e ->
       Persist.Journal.close writer;
       Error e
     | Ok rev_entries ->
       (match List.rev rev_entries with
        | Journal.Config jc :: entries ->
          (match Campaign.check_config config jc with
           | Error e ->
             Persist.Journal.close writer;
             Error e
           | Ok () ->
             mkdirs config.Campaign.artifacts;
             let state = Campaign.replay config entries in
             let state =
               run_loop ~domains ~clock ~exec ~stop_after ~on_progress config
                 writer state
             in
             finish writer journal state)
        | _ ->
          Persist.Journal.close writer;
          Error "journal does not start with a config record"))

let resume ?domains ?clock ?(on_progress = fun ~done_:_ ~total:_ -> ())
    ~journal () =
  match Persist.Journal.read journal with
  | Error e -> Error e
  | Ok { Persist.Journal.records = []; _ } ->
    Error "empty journal (no config record)"
  | Ok { Persist.Journal.records = first :: _; _ } ->
    (match Journal.decode first with
     | Ok (Journal.Config jc) ->
       (match Campaign.config_of_journal jc with
        | Error e -> Error e
        | Ok config ->
          resume_with ?domains ?clock ~on_progress ~journal config)
     | Ok _ -> Error "journal does not start with a config record"
     | Error e -> Error ("undecodable config record: " ^ e))
