(** Campaign summary and exit verdict.

    Verdict severity, in order: an aborted campaign (sacrifice budget
    exhausted) and unshrinkable findings are infrastructure-grade
    failures (exit 2, CI hard-fail); reproducible findings are protocol
    bugs (exit 1); a completed clean campaign exits 0. *)

type verdict =
  | Clean
  | Findings of int  (** all quarantined findings replay from their repro *)
  | Unshrinkable of int  (** findings whose shrunk repro fails to replay *)
  | Aborted of string

val verdict : Campaign.state -> verdict
val exit_code : verdict -> int

val per_leg : Campaign.config -> Campaign.state -> (string * int * int * int) list
(** Per-leg coverage counters [(name, clean, findings, poisoned)], in
    campaign leg order. *)

val pp : Campaign.config -> Format.formatter -> Campaign.state -> unit
(** Human summary: totals, per-leg coverage, findings with artifacts,
    poisoned seeds, degradation rungs, coverage digest. *)
