(* Quarantine: shrink, verify, write artifact (see quarantine.mli). *)

module Explorer = Explore.Explorer
module Builder = Harness.Builder

let quarantine ~artifacts ~target ~job ~seed ~plan ~violations ~digest =
  let outcome =
    { Explorer.plan; seed; violations; report = None; digest }
  in
  (* The shrinker re-runs candidate plans with exceptions folded into
     violations, so it minimizes crashing runs too; its own failure
     (e.g. a plan that only violates under the original timing) keeps
     the unshrunk original — degrade, don't abort. *)
  let shrunk =
    match Explorer.shrink target outcome with
    | s -> s
    | exception _ -> outcome
  in
  (* Replay the shrunk plan from scratch: a repro that does not
     reproduce is flagged, not shipped silently. *)
  let check =
    match
      Explorer.run_plan target ~seed:shrunk.Explorer.seed shrunk.Explorer.plan
    with
    | o -> Some o
    | exception _ -> None
  in
  let shrunk_ok =
    match check with
    | Some o -> o.Explorer.violations <> []
    | None -> false
  in
  let builder =
    Explorer.builder_of target ~seed:shrunk.Explorer.seed shrunk.Explorer.plan
  in
  let replay_digest =
    match check with Some o -> o.Explorer.digest | None -> ""
  in
  let spec =
    Builder.to_lines
      ?digest:(if replay_digest = "" then None else Some replay_digest)
      ~violations:shrunk.Explorer.violations builder
  in
  let artifact =
    let file = Printf.sprintf "finding-%d.spec" job in
    match
      Builder.write
        (Filename.concat artifacts file)
        ?digest:(if replay_digest = "" then None else Some replay_digest)
        ~violations:shrunk.Explorer.violations builder
    with
    | () -> file
    | exception _ -> ""
  in
  Journal.Finding
    { job;
      violations = shrunk.Explorer.violations;
      spec;
      shrunk_ok;
      artifact }
