(** The campaign loop: guarded runs, chunked domain fan-out, the
    degradation ladder, and crash-safe journaling.

    Every job runs under a {e guard} called once per engine-observable
    event ([Builder.run ?guard]): the guard raises {!Stuck} when the
    run exceeds the campaign's event budget or its monotonic wall-clock
    deadline ({!Harness.Clock}) — the only way a wedged run (infinite
    promotion loop, event storm) ends.  A stuck run poisons its seed; a
    violating or crashing run is quarantined and shrunk
    ({!Quarantine}); a clean run records its trace digest.  Entries are
    journaled in job order with a flush per record, so killing the
    process at any instant loses at most the in-flight chunk.

    Degradation ladder, in order: two consecutive poisoned jobs halve
    the domain count (repeatable down to 1); poisoned seeds are never
    retried (their cost is the logged coverage sacrifice); when the
    sacrifice budget [max_poisoned] is exhausted the campaign aborts
    with a journaled [Degrade {domains = 0}] mark. *)

exception Stuck of string
(** Raised by the guard inside a wedged run. *)

type attempt =
  | Finished of Harness.Builder.outcome
  | Wedged of string  (** guard verdict: why the run was declared stuck *)

type exec =
  guard:(unit -> unit) ->
  Explore.Explorer.target ->
  seed:int ->
  Harness.Adversity.t ->
  attempt
(** How one job is executed.  {!default_exec} interprets the builder;
    tests inject wedged or crashing executors to exercise the ladder
    deterministically. *)

val default_exec : exec
(** [Builder.run ~digest:true ~guard] with exceptions split: {!Stuck}
    becomes [Wedged], any other exception becomes a [Finished] outcome
    with an ["exception: ..."] violation (a finding, not an infra
    error). *)

type outcome = { state : Campaign.state; journal : string }
(** Final campaign state plus the journal path it was written to. *)

val start :
  ?domains:int ->
  ?clock:Harness.Clock.t ->
  ?exec:exec ->
  ?stop_after:int ->
  ?on_progress:(done_:int -> total:int -> unit) ->
  journal:string ->
  Campaign.config ->
  (outcome, string) result
(** Run a fresh campaign, creating [journal] (its first record is the
    config).  [domains] defaults to {!Harness.Sweep.default_domains};
    [clock] defaults to {!Harness.Clock.monotonic} (tests pass a manual
    clock); [stop_after] processes at most that many jobs then returns
    early — the deterministic stand-in for SIGKILL in resume tests. *)

val resume_with :
  ?domains:int ->
  ?clock:Harness.Clock.t ->
  ?exec:exec ->
  ?stop_after:int ->
  ?on_progress:(done_:int -> total:int -> unit) ->
  journal:string ->
  Campaign.config ->
  (outcome, string) result
(** Resume from an existing journal with an explicitly supplied config
    (validated against the journaled one — digest-relevant fields must
    match).  Tolerates a torn journal tail: the clean prefix is
    compacted ([Persist.Journal.resume]) and the campaign continues
    from exactly the recorded jobs.  Works with legs outside the
    catalogue (tests with mutant targets). *)

val resume :
  ?domains:int ->
  ?clock:Harness.Clock.t ->
  ?on_progress:(done_:int -> total:int -> unit) ->
  journal:string ->
  unit ->
  (outcome, string) result
(** The [--resume FILE] path: the config is read from the journal
    itself, legs resolved through {!Campaign.catalogue}. *)
