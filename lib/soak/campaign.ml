(* Campaign configuration and state machine (see campaign.mli). *)

module Explorer = Explore.Explorer

type leg = { name : string; target : Explorer.target }

type config = {
  legs : leg list;
  budget : int;
  seed : int;
  max_adversities : int;
  event_budget : int;
  deadline_ms : int;
  max_findings : int;
  max_poisoned : int;
  artifacts : string;
}

let default_config ?(artifacts = "_artifacts/soak") legs =
  { legs;
    budget = 200;
    seed = 1;
    max_adversities = 4;
    event_budget = 200_000;
    deadline_ms = 10_000;
    max_findings = 16;
    max_poisoned = 8;
    artifacts }

(* The named legs the CLI accepts.  The two ae legs are the retired
   `make soak` recipe (explore --ae --watchdog [--recovery]); alg5 is
   the bare crash-stop stack for quick campaigns. *)
let catalogue =
  [ ("alg5", Explorer.default_target);
    ( "ae-watchdog",
      { Explorer.default_target with Explorer.ae = true; watchdog = true } );
    ( "ae-watchdog-recovery",
      { Explorer.default_target with
        Explorer.ae = true;
        watchdog = true;
        recovery = true } ) ]

let leg_of_name name =
  match List.assoc_opt name catalogue with
  | Some target -> Ok { name; target }
  | None ->
    Error
      (Printf.sprintf "unknown leg %S (known: %s)" name
         (String.concat ", " (List.map fst catalogue)))

let journal_config c : Journal.config =
  { Journal.legs = List.map (fun l -> l.name) c.legs;
    budget = c.budget;
    seed = c.seed;
    max_adversities = c.max_adversities;
    event_budget = c.event_budget;
    deadline_ms = c.deadline_ms;
    max_findings = c.max_findings;
    max_poisoned = c.max_poisoned;
    artifacts = c.artifacts }

let config_entry c = Journal.Config (journal_config c)

let config_of_journal (j : Journal.config) =
  let rec legs acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest ->
      (match leg_of_name name with
       | Ok leg -> legs (leg :: acc) rest
       | Error _ as e -> e)
  in
  match legs [] j.Journal.legs with
  | Error e -> Error e
  | Ok legs ->
    Ok
      { legs;
        budget = j.Journal.budget;
        seed = j.Journal.seed;
        max_adversities = j.Journal.max_adversities;
        event_budget = j.Journal.event_budget;
        deadline_ms = j.Journal.deadline_ms;
        max_findings = j.Journal.max_findings;
        max_poisoned = j.Journal.max_poisoned;
        artifacts = j.Journal.artifacts }

let check_config c (j : Journal.config) =
  let mine = journal_config c in
  let mismatch what = Error ("journal config mismatch: " ^ what) in
  if not (List.equal String.equal mine.Journal.legs j.Journal.legs) then
    mismatch "legs"
  else if mine.Journal.budget <> j.Journal.budget then mismatch "budget"
  else if mine.Journal.seed <> j.Journal.seed then mismatch "seed"
  else if mine.Journal.max_adversities <> j.Journal.max_adversities then
    mismatch "max-adversities"
  else Ok ()

(* ------------------------------------------------------------------ *)
(* Job geometry                                                        *)
(* ------------------------------------------------------------------ *)

let total_jobs c = List.length c.legs * c.budget
let leg_of_job c job = List.nth c.legs (job / c.budget)
let plan_index c job = job mod c.budget

(* Plan i runs under engine seed (seed + i): the Explorer.explore
   pairing, so soak findings replay through explorer repro machinery
   unchanged. *)
let engine_seed c job = c.seed + plan_index c job

let plan_of_job c job =
  Explorer.plan_at (leg_of_job c job).target ~seed:c.seed
    ~max_adversities:c.max_adversities (plan_index c job)

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type state = {
  processed : int list;
  processed_set : bool array;
  clean : int;
  findings : Journal.entry list;
  unshrunk : int;
  poisoned : int;
  streak : int;
  halvings : int;
  aborted : string option;
  digest_lines : string list;
}

let initial c =
  { processed = [];
    processed_set = Array.make (max 1 (total_jobs c)) false;
    clean = 0;
    findings = [];
    unshrunk = 0;
    poisoned = 0;
    streak = 0;
    halvings = 0;
    aborted = None;
    digest_lines = [] }

let record s job =
  let set = Array.copy s.processed_set in
  if job >= 0 && job < Array.length set then set.(job) <- true;
  { s with processed = job :: s.processed; processed_set = set }

let with_digest s e =
  match Journal.digest_line e with
  | None -> s
  | Some line -> { s with digest_lines = line :: s.digest_lines }

let apply s e =
  let s = with_digest s e in
  match e with
  | Journal.Config _ | Journal.Checkpoint _ -> s
  | Journal.Run { job; _ } ->
    { (record s job) with clean = s.clean + 1; streak = 0 }
  | Journal.Finding { job; shrunk_ok; _ } ->
    { (record s job) with
      findings = e :: s.findings;
      unshrunk = (s.unshrunk + if shrunk_ok then 0 else 1);
      streak = 0 }
  | Journal.Poisoned { job; _ } ->
    { (record s job) with poisoned = s.poisoned + 1; streak = s.streak + 1 }
  | Journal.Degrade { domains; reason } ->
    if domains = 0 then { s with aborted = Some reason }
    else { s with halvings = s.halvings + 1; streak = 0 }

let replay c entries = List.fold_left apply (initial c) entries

let pending c s =
  let total = total_jobs c in
  let rec go job acc =
    if job < 0 then acc
    else
      go (job - 1)
        (if job < Array.length s.processed_set && s.processed_set.(job) then
           acc
         else job :: acc)
  in
  go (total - 1) []

let coverage_digest s =
  let lines = List.sort String.compare s.digest_lines in
  Digest.to_hex (Digest.string (String.concat "\n" lines))

let job_of_finding = function
  | Journal.Finding { job; _ } -> job
  | _ -> max_int

let finding_list s =
  List.sort (fun a b -> Int.compare (job_of_finding a) (job_of_finding b))
    s.findings
