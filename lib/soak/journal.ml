(* Campaign journal entries (see journal.mli).  The codec is line-based
   text inside a checksummed frame: the frame layer already guarantees
   integrity, so the payload optimizes for greppability and a stable
   coverage digest, not compactness.  Every embedded free-form string is
   JSON-escaped per line, so record structure survives arbitrary
   violation messages (including the multi-line spec contexts Sweep
   attaches to worker errors). *)

type config = {
  legs : string list;
  budget : int;
  seed : int;
  max_adversities : int;
  event_budget : int;
  deadline_ms : int;
  max_findings : int;
  max_poisoned : int;
  artifacts : string;
}

type entry =
  | Config of config
  | Run of { job : int; digest : string }
  | Finding of {
      job : int;
      violations : string list;
      spec : string list;
      shrunk_ok : bool;
      artifact : string;
    }
  | Poisoned of { job : int; kind : string; detail : string }
  | Degrade of { domains : int; reason : string }
  | Checkpoint of { next : int }

(* One escaped, newline-free line per input string: multi-line inputs
   are flattened through the escape (\n -> \\n), so counted line blocks
   below always parse back. *)
let esc s = Persist.Frame.json_escape s

let encode = function
  | Config c ->
    String.concat "\n"
      [ "config v1";
        "legs " ^ String.concat "," (List.map esc c.legs);
        Printf.sprintf "budget %d" c.budget;
        Printf.sprintf "seed %d" c.seed;
        Printf.sprintf "max-adversities %d" c.max_adversities;
        Printf.sprintf "event-budget %d" c.event_budget;
        Printf.sprintf "deadline-ms %d" c.deadline_ms;
        Printf.sprintf "max-findings %d" c.max_findings;
        Printf.sprintf "max-poisoned %d" c.max_poisoned;
        "artifacts " ^ esc c.artifacts ]
  | Run { job; digest } -> Printf.sprintf "run %d %s" job digest
  | Finding { job; violations; spec; shrunk_ok; artifact } ->
    String.concat "\n"
      ([ Printf.sprintf "finding %d shrunk=%b artifact=%s" job shrunk_ok
           (esc artifact);
         Printf.sprintf "violations %d" (List.length violations) ]
       @ List.map esc violations
       @ [ Printf.sprintf "spec %d" (List.length spec) ]
       @ List.map esc spec)
  | Poisoned { job; kind; detail } ->
    Printf.sprintf "poisoned %d %s %s" job (esc kind) (esc detail)
  | Degrade { domains; reason } ->
    Printf.sprintf "degrade %d %s" domains (esc reason)
  | Checkpoint { next } -> Printf.sprintf "checkpoint %d" next

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

(* Inverse of {!esc} (Frame.json_escape), so decode is a left inverse
   of encode: resumed entries re-encode (and digest) byte-identically to
   the live run that journaled them — double-escaping on resume would
   silently fork the coverage digest.  Total: a malformed escape is kept
   literally rather than rejected. *)
let unesc s =
  match String.index_opt s '\\' with
  | None -> s
  | Some _ ->
    let n = String.length s in
    let b = Buffer.create n in
    let rec go i =
      if i >= n then ()
      else if s.[i] <> '\\' || i = n - 1 then begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
      else
        match s.[i + 1] with
        | '"' ->
          Buffer.add_char b '"';
          go (i + 2)
        | '\\' ->
          Buffer.add_char b '\\';
          go (i + 2)
        | 'n' ->
          Buffer.add_char b '\n';
          go (i + 2)
        | 't' ->
          Buffer.add_char b '\t';
          go (i + 2)
        | 'u' when i + 5 < n ->
          (match int_of_string_opt ("0x" ^ String.sub s (i + 2) 4) with
           | Some code when code >= 0 && code < 0x20 ->
             Buffer.add_char b (Char.chr code);
             go (i + 6)
           | _ ->
             Buffer.add_char b '\\';
             go (i + 1))
        | _ ->
          Buffer.add_char b '\\';
          go (i + 1)
    in
    go 0;
    Buffer.contents b

let int_of s = int_of_string_opt s

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

let req_int what s =
  match int_of s with Some i -> Ok i | None -> fail "%s: not an int: %s" what s

(* "key rest-of-line" split; rest may be empty. *)
let cut line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
    (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))

let take what n lines =
  let rec go n acc = function
    | rest when n = 0 -> Ok (List.rev acc, rest)
    | [] -> fail "%s: truncated block (%d lines missing)" what n
    | l :: rest -> go (n - 1) (l :: acc) rest
  in
  go n [] lines

let decode_config lines =
  let field key = function
    | [] -> fail "config: missing %s" key
    | line :: rest ->
      let k, v = cut line in
      if k <> key then fail "config: expected %s, got %s" key k else Ok (v, rest)
  in
  let int_field key lines =
    let* v, rest = field key lines in
    let* i = req_int key v in
    Ok (i, rest)
  in
  let* legs, lines = field "legs" lines in
  let* budget, lines = int_field "budget" lines in
  let* seed, lines = int_field "seed" lines in
  let* max_adversities, lines = int_field "max-adversities" lines in
  let* event_budget, lines = int_field "event-budget" lines in
  let* deadline_ms, lines = int_field "deadline-ms" lines in
  let* max_findings, lines = int_field "max-findings" lines in
  let* max_poisoned, lines = int_field "max-poisoned" lines in
  let* artifacts, lines = field "artifacts" lines in
  match lines with
  | [] ->
    Ok
      (Config
         { legs =
             (if legs = "" then []
              else List.map unesc (String.split_on_char ',' legs));
           budget;
           seed;
           max_adversities;
           event_budget;
           deadline_ms;
           max_findings;
           max_poisoned;
           artifacts = unesc artifacts })
  | l :: _ -> fail "config: trailing line: %s" l

let decode_finding head lines =
  match String.split_on_char ' ' head with
  | [ job; shrunk; artifact ] ->
    let* job = req_int "finding job" job in
    let* shrunk_ok =
      match shrunk with
      | "shrunk=true" -> Ok true
      | "shrunk=false" -> Ok false
      | s -> fail "finding: bad shrunk field: %s" s
    in
    let* artifact =
      match String.length artifact >= 9 && String.sub artifact 0 9 = "artifact=" with
      | true -> Ok (unesc (String.sub artifact 9 (String.length artifact - 9)))
      | false -> fail "finding: bad artifact field: %s" artifact
    in
    let* violations, lines =
      match lines with
      | [] -> fail "finding: missing violations block"
      | l :: rest ->
        let k, v = cut l in
        if k <> "violations" then fail "finding: expected violations, got %s" k
        else
          let* n = req_int "violations count" v in
          take "violations" n rest
    in
    let* spec, lines =
      match lines with
      | [] -> fail "finding: missing spec block"
      | l :: rest ->
        let k, v = cut l in
        if k <> "spec" then fail "finding: expected spec, got %s" k
        else
          let* n = req_int "spec count" v in
          take "spec" n rest
    in
    (match lines with
     | [] ->
       Ok
         (Finding
            { job;
              violations = List.map unesc violations;
              spec = List.map unesc spec;
              shrunk_ok;
              artifact })
     | l :: _ -> fail "finding: trailing line: %s" l)
  | _ -> fail "finding: bad header: %s" head

let decode payload =
  match String.split_on_char '\n' payload with
  | [] -> Error "empty payload"
  | head :: rest ->
    let kind, tail = cut head in
    (match kind with
     | "config" ->
       if tail <> "v1" then fail "config: unsupported version %s" tail
       else decode_config rest
     | "run" ->
       (match String.split_on_char ' ' tail with
        | [ job; digest ] ->
          let* job = req_int "run job" job in
          if rest <> [] then fail "run: trailing lines"
          else Ok (Run { job; digest })
        | _ -> fail "run: bad record: %s" tail)
     | "finding" -> decode_finding tail rest
     | "poisoned" ->
       (match String.split_on_char ' ' tail with
        | job :: kind :: detail ->
          let* job = req_int "poisoned job" job in
          if rest <> [] then fail "poisoned: trailing lines"
          else
            Ok
              (Poisoned
                 { job;
                   kind = unesc kind;
                   detail = unesc (String.concat " " detail) })
        | _ -> fail "poisoned: bad record: %s" tail)
     | "degrade" ->
       let d, reason = cut tail in
       let* domains = req_int "degrade domains" d in
       if rest <> [] then fail "degrade: trailing lines"
       else Ok (Degrade { domains; reason = unesc reason })
     | "checkpoint" ->
       let* next = req_int "checkpoint next" tail in
       if rest <> [] then fail "checkpoint: trailing lines"
       else Ok (Checkpoint { next })
     | k -> fail "unknown entry kind: %s" k)

(* ------------------------------------------------------------------ *)
(* Coverage digest lines                                               *)
(* ------------------------------------------------------------------ *)

(* What "the same campaign" means across interruptions: the per-job
   results, nothing about how the runner got there.  Poisoned details
   (wall-clock diagnostics) and degradation marks (resume restarts the
   ladder at the journaled rung, but streak phase may differ) are
   excluded; the poisoned *kind* is kept — a run that was stuck must
   still be stuck when the campaign is replayed uninterrupted. *)
let digest_line = function
  | Config _ | Degrade _ | Checkpoint _ -> None
  | Run { job; digest } -> Some (Printf.sprintf "run %d %s" job digest)
  | Finding { job; violations; spec; shrunk_ok; artifact = _ } ->
    Some
      (Printf.sprintf "finding %d shrunk=%b violations=%s spec=%s" job
         shrunk_ok
         (String.concat "|" (List.map esc violations))
         (Digest.to_hex (Digest.string (String.concat "\n" spec))))
  | Poisoned { job; kind; detail = _ } ->
    Some (Printf.sprintf "poisoned %d %s" job (esc kind))
