(** Campaign journal entries and their stable text codec.

    One entry per {!Persist.Journal} record.  The vocabulary covers
    everything a resumed campaign needs: the immutable configuration
    (first record of every journal), one record per completed job —
    clean run, quarantined finding, or poisoned seed — plus degradation
    marks and checkpoints.

    Entries are encoded as plain text payloads (framed and checksummed
    by the journal layer).  Embedded strings are JSON-escaped line-wise
    on encode and unescaped on decode, so a violation message containing
    newlines cannot corrupt the record structure, and {!decode} is a
    left inverse of {!encode}: a resumed campaign re-encodes (and
    digests) journaled entries byte-identically to the live run that
    wrote them. *)

type config = {
  legs : string list;  (** leg names, in campaign order *)
  budget : int;  (** plans per leg *)
  seed : int;  (** base engine seed; plan [i] runs under [seed + i] *)
  max_adversities : int;
  event_budget : int;  (** per-run events before the guard declares it stuck *)
  deadline_ms : int;  (** per-run wall deadline (monotonic, {!Harness.Clock}) *)
  max_findings : int;  (** stop the campaign after this many findings *)
  max_poisoned : int;  (** coverage-sacrifice budget: poisoned seeds allowed *)
  artifacts : string;  (** directory receiving shrunk .spec repros *)
}

type entry =
  | Config of config
  | Run of { job : int; digest : string }  (** clean run *)
  | Finding of {
      job : int;
      violations : string list;
      spec : string list;  (** shrunk builder spec text, line-wise *)
      shrunk_ok : bool;  (** the shrunk repro replays to a violation *)
      artifact : string;  (** repro filename under [artifacts]; [""] if none *)
    }
  | Poisoned of { job : int; kind : string; detail : string }
      (** a seed sacrificed to keep the campaign alive: [kind] is
          ["stuck"] (deadline or event budget) or ["worker"] (the worker
          domain itself failed); [detail] is diagnostic only and excluded
          from the coverage digest *)
  | Degrade of { domains : int; reason : string }
      (** ladder step: concurrency halved to [domains]; [domains = 0]
          records campaign abort (sacrifice budget exhausted) *)
  | Checkpoint of { next : int }  (** all jobs below [next] are recorded *)

val encode : entry -> string
(** Stable text payload, ready for [Persist.Journal.append]. *)

val decode : string -> (entry, string) result
(** Total: malformed payloads yield [Error], never an exception. *)

val digest_line : entry -> string option
(** The entry's canonical line in the coverage digest, [None] for
    digest-irrelevant entries (config, degradation marks, checkpoints,
    and the free-text [detail] of poisoned seeds — everything that may
    legitimately differ between an interrupted-and-resumed campaign and
    an uninterrupted one). *)
