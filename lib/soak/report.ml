(* Campaign summary (see report.mli). *)

type verdict =
  | Clean
  | Findings of int
  | Unshrinkable of int
  | Aborted of string

let verdict (s : Campaign.state) =
  match s.Campaign.aborted with
  | Some reason -> Aborted reason
  | None ->
    if s.Campaign.unshrunk > 0 then Unshrinkable s.Campaign.unshrunk
    else if s.Campaign.findings <> [] then
      Findings (List.length s.Campaign.findings)
    else Clean

let exit_code = function
  | Clean -> 0
  | Findings _ -> 1
  | Unshrinkable _ | Aborted _ -> 2

let leg_index (config : Campaign.config) job = job / config.Campaign.budget

let per_leg (config : Campaign.config) (s : Campaign.state) =
  let n = List.length config.Campaign.legs in
  let clean = Array.make n 0 and found = Array.make n 0
  and poisoned = Array.make n 0 in
  List.iter
    (fun line ->
       (* digest lines are canonical: "run J ...", "finding J ...",
          "poisoned J ..." *)
       match String.split_on_char ' ' line with
       | kind :: job :: _ ->
         (match int_of_string_opt job with
          | Some job when leg_index config job < n ->
            let k = leg_index config job in
            (match kind with
             | "run" -> clean.(k) <- clean.(k) + 1
             | "finding" -> found.(k) <- found.(k) + 1
             | "poisoned" -> poisoned.(k) <- poisoned.(k) + 1
             | _ -> ())
          | _ -> ())
       | _ -> ())
    s.Campaign.digest_lines;
  List.mapi
    (fun k (leg : Campaign.leg) ->
       (leg.Campaign.name, clean.(k), found.(k), poisoned.(k)))
    config.Campaign.legs

let pp config ppf (s : Campaign.state) =
  let total = Campaign.total_jobs config in
  let done_ = total - List.length (Campaign.pending config s) in
  Fmt.pf ppf "soak campaign: %d/%d jobs recorded@." done_ total;
  List.iter
    (fun (name, clean, found, poisoned) ->
       Fmt.pf ppf "  leg %-24s clean %-5d findings %-3d poisoned %d@." name
         clean found poisoned)
    (per_leg config s);
  List.iter
    (fun entry ->
       match entry with
       | Journal.Finding { job; violations; shrunk_ok; artifact; _ } ->
         Fmt.pf ppf "  finding job %d%s%s@.    %s@." job
           (if shrunk_ok then "" else " [UNSHRINKABLE]")
           (if artifact = "" then ""
            else
              " -> " ^ Filename.concat config.Campaign.artifacts artifact)
           (match violations with v :: _ -> v | [] -> "(no violation text)")
       | _ -> ())
    (Campaign.finding_list s);
  if s.Campaign.poisoned > 0 then
    Fmt.pf ppf
      "  coverage sacrificed: %d poisoned seed(s) (budget %d), %d ladder \
       rung(s)@."
      s.Campaign.poisoned config.Campaign.max_poisoned s.Campaign.halvings;
  (match s.Campaign.aborted with
   | Some reason -> Fmt.pf ppf "  ABORTED: %s@." reason
   | None -> ());
  Fmt.pf ppf "  coverage digest %s@." (Campaign.coverage_digest s);
  match verdict s with
  | Clean -> Fmt.pf ppf "  verdict: clean@."
  | Findings n -> Fmt.pf ppf "  verdict: %d reproducible finding(s)@." n
  | Unshrinkable n ->
    Fmt.pf ppf "  verdict: %d unshrinkable finding(s) — hard failure@." n
  | Aborted _ -> Fmt.pf ppf "  verdict: aborted — hard failure@."
