(** Campaign configuration and the pure state machine over journal
    entries.

    A campaign is [legs × budget] jobs: leg [k]'s job [j] (global index
    [k * budget + j]) runs plan [j] of that leg's explorer target under
    engine seed [seed + j] — exactly the plan/seed pairing of
    [Explorer.explore], so a soak finding replays through the same
    machinery as an explorer finding.

    {!apply} is the {e only} way campaign state advances, both live (the
    runner applies each entry as it journals it) and on resume (fold
    {!apply} over the decoded journal) — resume-equivalence holds by
    construction rather than by parallel bookkeeping. *)

type leg = { name : string; target : Explore.Explorer.target }

type config = {
  legs : leg list;
  budget : int;
  seed : int;
  max_adversities : int;
  event_budget : int;
  deadline_ms : int;
  max_findings : int;
  max_poisoned : int;
  artifacts : string;
}

val default_config : ?artifacts:string -> leg list -> config
(** Budget 200/leg, seed 1, 4 adversities, 200k events, 10 s per run,
    16 findings, 8 poisoned seeds. *)

val catalogue : (string * Explore.Explorer.target) list
(** The named legs [ecsim soak] accepts: [alg5], [ae-watchdog],
    [ae-watchdog-recovery] (the latter two mirroring the retired
    [make soak] recipe). *)

val leg_of_name : string -> (leg, string) result

val config_entry : config -> Journal.entry
(** The [Config] journal entry (first record of every campaign). *)

val config_of_journal : Journal.config -> (config, string) result
(** Rebuild a runnable config from a journaled one, resolving leg names
    through {!catalogue} — the [--resume FILE] path. *)

val check_config : config -> Journal.config -> (unit, string) result
(** Validate that a journaled config matches [config] (legs, budget,
    seed, adversities — everything digest-relevant).  The API-resume
    path for campaigns whose legs are not in the catalogue. *)

(** {2 Job geometry} *)

val total_jobs : config -> int
val leg_of_job : config -> int -> leg
val plan_index : config -> int -> int
val engine_seed : config -> int -> int
val plan_of_job : config -> int -> Harness.Adversity.t

(** {2 State} *)

type state = {
  processed : int list;  (** recorded jobs, descending (head = latest) *)
  processed_set : bool array;  (** indexed by job *)
  clean : int;
  findings : Journal.entry list;  (** [Finding] entries, reverse order *)
  unshrunk : int;  (** findings whose shrunk repro failed to replay *)
  poisoned : int;
  streak : int;  (** consecutive poisoned jobs (ladder trigger) *)
  halvings : int;  (** degradation rungs taken *)
  aborted : string option;  (** [Some reason] once the ladder hit abort *)
  digest_lines : string list;  (** canonical digest lines, reverse order *)
}

val initial : config -> state
val apply : state -> Journal.entry -> state

val replay : config -> Journal.entry list -> state
(** Fold {!apply} over a decoded journal (skipping the [Config] head). *)

val pending : config -> state -> int list
(** Unrecorded jobs, ascending. *)

val coverage_digest : state -> string
(** MD5 (hex) over the sorted canonical digest lines: byte-identical
    between an interrupted-and-resumed campaign and an uninterrupted
    one. *)

val finding_list : state -> Journal.entry list
(** [Finding] entries in job order. *)
