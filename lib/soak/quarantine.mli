(** Turning a bad run into a replayable, minimal finding.

    A violating (or crashing) run is quarantined rather than fatal: its
    plan is greedily shrunk with the explorer's shrinker, the shrunk
    repro is re-run to verify it still violates, and a self-contained
    [.spec] artifact is written so the finding replays with
    [ecsim --replay] long after the campaign is gone.  Every step
    degrades instead of raising: a shrinker crash keeps the original
    plan, a failed artifact write keeps the journal entry. *)

val quarantine :
  artifacts:string ->
  target:Explore.Explorer.target ->
  job:int ->
  seed:int ->
  plan:Harness.Adversity.t ->
  violations:string list ->
  digest:string ->
  Journal.entry
(** Always returns a [Journal.Finding].  [shrunk_ok] records whether the
    shrunk plan still violates on replay — the CI gate hard-fails on
    quarantined-but-unshrinkable findings, because a finding that cannot
    be reproduced from its own repro is worse than a test failure. *)
