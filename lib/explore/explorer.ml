(* Bounded adversarial exploration.

   The explorer enumerates adversity plans against one target protocol
   stack, runs each through the deterministic engine, and flags runs whose
   property report violates the ETOB specification *for that plan*: safety
   violations always count, and the measured convergence taus are checked
   against a per-plan bound.

   The bound is where the correctness argument lives.  With an oracle that
   never flaps, every adoption in Algorithm 5 is a same-lineage promote
   from the one stable leader, so strong stability and total order
   (tau = 0) are mandatory no matter which crashes, partitions, spikes,
   drops or duplicates the plan contains — any revision is a bug.  With
   flapping, tau may legitimately reach the plan's settle time, so the
   bound is settle + slack.

   The other half of the argument is generation-side fairness: every
   generated plan must be recoverable before the horizon, or a faithful
   protocol would be flagged.  All such clamps (drop windows closing before
   the final re-gossip round, spike tails fitting in the horizon, crash
   counts admitted by the target's environment) live in [random_spec] /
   [sanitize], so exploration can trust any plan it draws. *)

open Simulator
open Simulator.Types
open Ec_core
module Scenario = Harness.Scenario

type target = {
  impl : Scenario.etob_impl;
  mutation : Etob_omega.mutation option;
  n : int;
  deadline : time;
  posts : int;
  timer_period : int;
  base_min : int;
  base_max : int;
  recovery : bool;
  rmutation : Recoverable.mutation option;
  ae : bool;
  ae_mutation : Anti_entropy.mutation option;
  watchdog : bool;
}

let default_target =
  { impl = Scenario.Algorithm_5;
    mutation = None;
    n = 4;
    deadline = 240;
    posts = 12;
    timer_period = 2;
    base_min = 1;
    base_max = 3;
    recovery = false;
    rmutation = None;
    ae = false;
    ae_mutation = None;
    watchdog = false }

(* Names match the ecsim --impl catalogue. *)
let impl_name = function
  | Scenario.Algorithm_5 -> "alg5"
  | Scenario.Paxos_baseline -> "paxos"
  | Scenario.Algorithm_1_over_4 -> "alg1"

let impl_of_string = function
  | "alg5" -> Some Scenario.Algorithm_5
  | "paxos" -> Some Scenario.Paxos_baseline
  | "alg1" -> Some Scenario.Algorithm_1_over_4
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Base scenario and the per-plan tau bound                            *)
(* ------------------------------------------------------------------ *)

let post_from = 8
let post_every = 3

(* Recovery headroom granted on top of a plan's settle time: a few promote
   rounds plus message flushes.  Deliberately generous — the bound only
   needs to separate "converged late" from "never converged". *)
let slack target = (8 * target.timer_period) + (6 * target.base_max) + 10

(* Recovery targets stretch the posting cadence across the horizon, so a
   process restarted by a mid-run downtime window still posts afterwards —
   the amnesia mutant only reuses a sequence number if its victim
   broadcasts again after the restart. *)
let post_every_of target =
  if target.recovery then
    max post_every
      ((target.deadline - post_from - slack target) / max 1 target.posts)
  else post_every

let inputs target =
  Scenario.spread_posts ~n:target.n ~count:target.posts ~from_time:post_from
    ~every:(post_every_of target)

(* Start of the final full posting round: from here on every correct
   process posts (and therefore re-gossips its whole causality graph) at
   least once.  Drop windows must close before it, or a faithful run could
   lose messages for good and show a spurious validity violation. *)
let drop_safe_until target =
  post_from + (max 0 (target.posts - target.n) * post_every_of target)

(* The time of the last post: nothing can converge before the workload
   ends, so the watchdog's settle point is at least this. *)
let last_post target =
  post_from + (max 0 (target.posts - 1) * post_every_of target)

(* The anti-entropy stack only wraps Algorithm 5 (it reads and feeds the
   causality graph); it runs whenever the target opts in or seeds an
   anti-entropy mutation. *)
let uses_ae target =
  target.impl = Scenario.Algorithm_5
  && (target.ae || target.ae_mutation <> None)

(* Worst-case post-heal catch-up time of the digest exchange: the laggard's
   next digest broadcast (up to [every] timer rounds away), one full resend
   backoff (its pre-heal digest may be byte-identical, so peers wait out
   the armed backoff before re-answering), and delta delivery. *)
let ae_catchup target =
  let ae = Anti_entropy.default_config in
  ((ae.Anti_entropy.every + ae.Anti_entropy.max_backoff + 2)
   * target.timer_period)
  + (2 * target.base_max)

(* Latest admissible heal time for message-LOSING partition windows.
   Without anti-entropy, a lost message is re-taught only by the full-graph
   re-gossip riding later posts, so — exactly like drop windows — the
   partition must close before the final full posting round.  With
   anti-entropy the digest exchange recovers losses regardless of the
   workload, so windows may extend much later (this is what lets the
   watchdog catch the skip-digest mutant: past [drop_safe_until] nothing
   but anti-entropy can repair the damage). *)
let lossy_safe_until target =
  if uses_ae target then target.deadline - slack target - ae_catchup target
  else drop_safe_until target

let tau_bound target plan =
  let recovery = Adversity.has_recovery plan in
  match target.impl with
  | Scenario.Algorithm_5 when not (Adversity.has_flap plan) && not recovery ->
    0
  | _ ->
    Adversity.settle_time ~base_max:target.base_max plan
    + slack target
    (* a restarted process may wait out one full retransmission backoff
       before the frames that resynchronize it are re-sent *)
    + (if recovery then Recoverable.default_config.Recoverable.max_backoff
       else 0)
    (* a partition-isolated process may catch up only through the digest
       exchange, whose cadence and backoff add to legitimate lateness *)
    + (if uses_ae target && Adversity.has_partition_loss plan
       then ae_catchup target
       else 0)

let base_setup target ~seed =
  { (Scenario.default ~n:target.n ~deadline:target.deadline) with
    seed;
    timer_period = target.timer_period;
    delay = Net.uniform ~min:target.base_min ~max:target.base_max }

(* ------------------------------------------------------------------ *)
(* Running one plan                                                    *)
(* ------------------------------------------------------------------ *)

type outcome = {
  plan : Adversity.t;
  seed : int;  (* the engine seed of this very run *)
  violations : string list;  (* [] = clean *)
  report : Properties.etob_report option;  (* None if the run raised *)
  digest : string;  (* trace digest (hex); "" if the run raised *)
}

(* The recoverable stack wraps Algorithm 5 only; it runs whenever the
   target opts in, a recovery mutation is seeded, or the plan itself
   contains recovery adversities (downtime windows are only fair against a
   stack that can replay its stable store). *)
let uses_recovery target plan =
  target.impl = Scenario.Algorithm_5
  && (target.recovery || target.rmutation <> None
      || Adversity.has_recovery plan)

(* Convergence headroom granted to the watchdog past the settle point.
   Like [tau_bound], generous on purpose: a stalled replica stays stalled
   forever, so any finite bound separates the two — a tight one would only
   risk flagging a faithful late joiner. *)
let watchdog_bound target plan =
  slack target
  + (if uses_ae target then ae_catchup target else 0)
  + (if uses_recovery target plan
     then Recoverable.default_config.Recoverable.max_backoff
     else 0)

(* The watchdog's settle point: the environment has calmed down AND the
   workload has finished (convergence cannot precede the last post). *)
let watchdog_settle target plan =
  max (Adversity.settle_time ~base_max:target.base_max plan) (last_post target)

let run_plan target ~seed plan =
  match
    let setup = Adversity.apply plan (base_setup target ~seed) in
    let trace =
      if uses_recovery target plan then begin
        let stores = Persist.Store.pool ~n:target.n in
        Adversity.arm_disk_faults plan stores;
        let trace, _, _ =
          Scenario.run_recoverable ~inputs:(inputs target)
            ?mutation:target.rmutation ?etob_mutation:target.mutation
            ?ae:(if uses_ae target then Some Anti_entropy.default_config
                 else None)
            ?ae_mutation:target.ae_mutation ~stores setup
        in
        trace
      end
      else if uses_ae target then
        fst
          (Scenario.run_etob_ae ~inputs:(inputs target)
             ?mutation:target.mutation ?ae_mutation:target.ae_mutation setup)
      else
        Scenario.run_etob ~inputs:(inputs target) ?mutation:target.mutation
          setup target.impl
    in
    let run = Properties.etob_run_of_trace setup.Scenario.pattern trace in
    let report = Properties.etob_report run in
    let liveness =
      if not target.watchdog then []
      else
        Harness.Watchdog.violations
          (Harness.Watchdog.check ~settle:(watchdog_settle target plan)
             ~bound:(watchdog_bound target plan) run)
    in
    let digest =
      Digest.to_hex (Digest.string (Format.asprintf "%a" Trace.pp trace))
    in
    (report, liveness, digest)
  with
  | report, liveness, digest ->
    { plan;
      seed;
      violations =
        Properties.etob_violations ~tau_bound:(tau_bound target plan) report
        @ liveness;
      report = Some report;
      digest }
  | exception e ->
    (* A raising run is a finding, not an infrastructure error: mutants may
       corrupt state into genuinely impossible configurations. *)
    { plan;
      seed;
      violations = [ "exception: " ^ Printexc.to_string e ];
      report = None;
      digest = "" }

(* ------------------------------------------------------------------ *)
(* Plan generation                                                     *)
(* ------------------------------------------------------------------ *)

let max_crashes target =
  match target.impl with
  | Scenario.Algorithm_5 -> target.n - 1  (* any environment *)
  | _ -> (target.n - 1) / 2  (* quorum stacks need a correct majority *)

let random_spec target ~rng =
  let open Adversity in
  let d = target.deadline in
  let window ~latest_until =
    let latest_until = max 2 latest_until in
    let from_time = Rng.int rng (latest_until - 1) in
    let len = 1 + Rng.int rng (max 1 (d / 4)) in
    (from_time, min latest_until (from_time + len))
  in
  let healed_latest = d - slack target - target.base_max in
  (* Drops exist only for Algorithm 5, whose full-graph re-gossip makes a
     closed drop window recoverable; the quorum baselines have no such
     blanket retransmission, so dropping their messages could flag a
     faithful run.  Recovery adversities exist only for recovery targets
     (the recoverable stack wraps Algorithm 5). *)
  (* A nonempty proper subset of the processes, drawn uniformly-ish. *)
  let random_side () =
    match List.filter (fun _ -> Rng.int rng 2 = 0) (all_procs target.n) with
    | [] -> [ 0 ]
    | l when List.length l = target.n -> [ 0 ]
    | l -> l
  in
  let kind_pool =
    [ 0; 1; 2; 3; 4 ]
    @ (if target.impl = Scenario.Algorithm_5 && drop_safe_until target > 2
       then [ 5 ]
       else [])
    @ (if target.recovery && target.impl = Scenario.Algorithm_5
       then [ 6; 7 ]
       else [])
      (* Message-LOSING partitions are only fair against Algorithm 5, whose
         full-graph re-gossip (or anti-entropy layer) can recover the loss;
         see [lossy_safe_until] for the window clamp.  They join the pool
         only for partition-aware targets (anti-entropy or watchdog on):
         that is where they have teeth — and legacy targets keep drawing
         exactly the plans they always did, so recorded repros and tuned
         search budgets stay valid. *)
    @ (if target.impl = Scenario.Algorithm_5
          && (uses_ae target || target.watchdog)
          && lossy_safe_until target > 2
       then [ 8; 9; 10; 11 ]
       else [])
  in
  match List.nth kind_pool (Rng.int rng (List.length kind_pool)) with
  | 0 when max_crashes target >= 1 ->
    Crash { proc = Rng.int rng target.n; at = Rng.int rng d }
  | 1 ->
    let left =
      match List.filter (fun _ -> Rng.int rng 2 = 0) (all_procs target.n) with
      | [] -> [ 0 ]
      | l when List.length l = target.n -> [ 0 ]
      | l -> l
    in
    let from_time, until_time = window ~latest_until:healed_latest in
    Partition { left; from_time; until_time }
  | 2 ->
    let factor = 2 + Rng.int rng 7 in
    let latest = d - slack target - (target.base_max * factor) in
    let from_time, until_time = window ~latest_until:latest in
    let link =
      if Rng.int rng 2 = 0 then None
      else Some (Rng.int rng target.n, Rng.int rng target.n)
    in
    Delay_spike { link; from_time; until_time; factor }
  | 3 ->
    let from_time, until_time = window ~latest_until:healed_latest in
    Duplicate { from_time; until_time; copies = 1 + Rng.int rng 3 }
  | 4 ->
    Omega_flap
      { until_time = 4 + Rng.int rng (d / 2);
        period = 1 + Rng.int rng (3 * target.timer_period) }
  | 5 ->
    let from_time, until_time = window ~latest_until:(drop_safe_until target) in
    Drop { from_time; until_time; pct = 25 * (1 + Rng.int rng 4) }
  | 6 ->
    (* The window must close early enough for retransmission to catch the
       restarted process up before the horizon. *)
    let at, recover_at = window ~latest_until:healed_latest in
    Crash_recover { proc = Rng.int rng target.n; at; recover_at }
  | 7 ->
    let kind =
      match Rng.int rng 3 with
      | 0 -> Persist.Store.Torn_tail
      | 1 -> Persist.Store.Lost_suffix (1 + Rng.int rng 4)
      | _ -> Persist.Store.Corrupt_record
    in
    Disk_fault { proc = Rng.int rng target.n; kind }
  | 8 ->
    (* Split-brain: a contiguous run of n/2 processes against the rest. *)
    let off = Rng.int rng target.n in
    let left =
      List.init (max 1 (target.n / 2)) (fun i -> (off + i) mod target.n)
    in
    let from_time, until_time = window ~latest_until:(lossy_safe_until target) in
    Lossy_partition { left; from_time; until_time }
  | 9 ->
    (* Minority isolation: one process alone behind the loss. *)
    let from_time, until_time = window ~latest_until:(lossy_safe_until target) in
    Lossy_partition { left = [ Rng.int rng target.n ]; from_time; until_time }
  | 10 ->
    let from_time, until_time = window ~latest_until:(lossy_safe_until target) in
    Oneway_partition { left = random_side (); from_time; until_time }
  | 11 ->
    let from_time, until_time = window ~latest_until:(lossy_safe_until target) in
    Flapping_partition
      { left = random_side ();
        from_time;
        until_time;
        period = 1 + Rng.int rng (2 * target.timer_period) }
  | _ ->
    (* crash drawn but the environment admits none *)
    Duplicate { from_time = 0; until_time = target.base_max; copies = 1 }

(* Enforce plan-level invariants the independent draws cannot see: the
   crash count stays admitted by the target's environment (one crash per
   process), at most one flap survives, permanent crashes and downtime
   windows never hit the same process, recovery adversities only target
   the recoverable stack, and a disk fault without a crash to apply it at
   is dead weight. *)
let sanitize target plan =
  let crashes = ref 0 and flapped = ref false in
  let crashed = Hashtbl.create 4 in
  let windowed = Hashtbl.create 4 in
  let recovery_ok = target.impl = Scenario.Algorithm_5 in
  let plan =
    List.filter
      (fun spec ->
         match spec with
         | Adversity.Crash { proc; _ } ->
           if Hashtbl.mem crashed proc || Hashtbl.mem windowed proc
              || !crashes >= max_crashes target
           then false
           else begin
             Hashtbl.add crashed proc ();
             incr crashes;
             true
           end
         | Adversity.Omega_flap _ ->
           if !flapped then false
           else begin
             flapped := true;
             true
           end
         | Adversity.Crash_recover { proc; _ } ->
           if (not recovery_ok) || Hashtbl.mem crashed proc
              || Hashtbl.mem windowed proc
           then false
           else begin
             Hashtbl.add windowed proc ();
             true
           end
         | Adversity.Disk_fault _ -> recovery_ok
         | _ -> true)
      plan
  in
  let windows = Adversity.recover_procs plan in
  List.filter
    (function
      | Adversity.Disk_fault { proc; _ } -> List.mem proc windows
      | _ -> true)
    plan

let random_plan target ~rng ~max_adversities =
  let k = Rng.int rng (max_adversities + 1) in
  let rec build i acc =
    if i = 0 then List.rev acc
    else build (i - 1) (random_spec target ~rng :: acc)
  in
  sanitize target (build k [])

(* Plan [i] of an exploration: index 0 is always the empty plan (bugs that
   need no adversity at all should be found — and shrunk — immediately);
   later indices draw from an index-derived rng, so any plan can be
   regenerated without replaying the whole search. *)
let plan_at target ~seed ~max_adversities i =
  if i = 0 then []
  else
    let rng = Rng.create ((seed * 0x1000003) lxor (i * 0x9e3779b9)) in
    random_plan target ~rng ~max_adversities

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

type exploration = { found : outcome option; plans_run : int; budget : int }

(* Each plan runs under its own engine seed [seed + i] so the search also
   sweeps network randomness.  Sequential mode stops at the first
   violation; parallel mode fans chunks over domains through
   [Sweep.map_safe] and stops after the first chunk containing one, always
   reporting the lowest-index violation for determinism across domain
   counts. *)
let explore ?(domains = 1) ?(on_progress = fun ~plans_run:_ -> ()) target
    ~seed ~budget ~max_adversities () =
  let plan_at = plan_at target ~seed ~max_adversities in
  let finish found plans_run = { found; plans_run; budget } in
  if domains <= 1 then begin
    let rec go i =
      if i >= budget then finish None budget
      else begin
        let o = run_plan target ~seed:(seed + i) (plan_at i) in
        if o.violations <> [] then finish (Some o) (i + 1)
        else begin
          on_progress ~plans_run:(i + 1);
          go (i + 1)
        end
      end
    in
    go 0
  end
  else begin
    let chunk = domains * 4 in
    let rec go i =
      if i >= budget then finish None budget
      else begin
        let hi = min budget (i + chunk) in
        let idxs = List.init (hi - i) (fun j -> i + j) in
        let results =
          Harness.Sweep.map_safe ~domains ~seeds:idxs (fun ~seed:idx ->
              run_plan target ~seed:(seed + idx) (plan_at idx))
        in
        let outcomes =
          List.map
            (fun (r : _ Harness.Sweep.result) ->
               match r.Harness.Sweep.value with
               | Ok o -> o
               | Error e ->
                 { plan = plan_at r.Harness.Sweep.seed;
                   seed = seed + r.Harness.Sweep.seed;
                   violations = [ "exception: " ^ e ];
                   report = None;
                   digest = "" })
            results
        in
        match List.find_opt (fun o -> o.violations <> []) outcomes with
        | Some o -> finish (Some o) hi
        | None ->
          on_progress ~plans_run:hi;
          go hi
      end
    in
    go 0
  end

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* Greedy minimization to a local minimum: repeatedly drop whole
   adversities while a violation survives, then substitute each spec's
   weaker variants (re-running removal after every successful weakening).
   Candidates run under the outcome's own engine seed, so the shrunk plan
   is a deterministic repro of the same run family.  Terminates because
   removal shrinks the plan and every [Adversity.weaken] variant strictly
   decreases a positive integer measure of its spec. *)
let shrink target (o : outcome) =
  let try_plan plan =
    let o' = run_plan target ~seed:o.seed plan in
    if o'.violations <> [] then Some o' else None
  in
  let rec drop_pass o =
    let len = List.length o.plan in
    let rec try_at i =
      if i >= len then None
      else
        match try_plan (List.filteri (fun j _ -> j <> i) o.plan) with
        | Some o' -> Some o'
        | None -> try_at (i + 1)
    in
    match try_at 0 with Some o' -> drop_pass o' | None -> o
  in
  let rec weaken_pass o =
    let plan = Array.of_list o.plan in
    let weaker_at i =
      List.find_map
        (fun weaker ->
           try_plan
             (Array.to_list
                (Array.mapi (fun j s -> if j = i then weaker else s) plan)))
        (Adversity.weaken plan.(i))
    in
    let rec at i =
      if i >= Array.length plan then None
      else match weaker_at i with Some o' -> Some o' | None -> at (i + 1)
    in
    match at 0 with Some o' -> weaken_pass (drop_pass o') | None -> o
  in
  weaken_pass (drop_pass o)
