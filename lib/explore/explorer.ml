(* Bounded adversarial exploration.

   The explorer enumerates adversity plans against one target protocol
   stack, runs each through the deterministic engine, and flags runs whose
   property report violates the ETOB specification *for that plan*.  Since
   the [Harness.Builder] refactor it owns only the target description and
   plan generation: a target plus a plan maps to a declarative builder
   ([builder_of]), and running, bound computation, exploration and
   shrinking all delegate to the builder — the same code path that serves
   spec files and the scenario presets, so a found plan replays
   byte-identically everywhere.

   The per-plan tau bound is where the correctness argument lives.  With an
   oracle that never flaps, every adoption in Algorithm 5 is a same-lineage
   promote from the one stable leader, so strong stability and total order
   (tau = 0) are mandatory no matter which crashes, partitions, spikes,
   drops or duplicates the plan contains — any revision is a bug.  With
   flapping, tau may legitimately reach the plan's settle time, so the
   bound is settle + slack ([Builder.tau_bound]).

   The other half of the argument is generation-side fairness: every
   generated plan must be recoverable before the horizon, or a faithful
   protocol would be flagged.  All such clamps (drop windows closing before
   the final re-gossip round, spike tails fitting in the horizon, crash
   counts admitted by the target's environment) live in [random_spec] /
   [sanitize], so exploration can trust any plan it draws. *)

open Simulator
open Simulator.Types
open Ec_core
module Scenario = Harness.Scenario
module Builder = Harness.Builder

type target = {
  impl : Scenario.etob_impl;
  mutation : Etob_omega.mutation option;
  n : int;
  deadline : time;
  posts : int;
  timer_period : int;
  base_min : int;
  base_max : int;
  recovery : bool;
  rmutation : Recoverable.mutation option;
  ae : bool;
  ae_mutation : Anti_entropy.mutation option;
  watchdog : bool;
}

let default_target =
  { impl = Scenario.Algorithm_5;
    mutation = None;
    n = 4;
    deadline = 240;
    posts = 12;
    timer_period = 2;
    base_min = 1;
    base_max = 3;
    recovery = false;
    rmutation = None;
    ae = false;
    ae_mutation = None;
    watchdog = false }

(* Names match the ecsim --impl catalogue. *)
let impl_name = function
  | Scenario.Algorithm_5 -> "alg5"
  | Scenario.Paxos_baseline -> "paxos"
  | Scenario.Algorithm_1_over_4 -> "alg1"

let impl_of_string = function
  | "alg5" -> Some Scenario.Algorithm_5
  | "paxos" -> Some Scenario.Paxos_baseline
  | "alg1" -> Some Scenario.Algorithm_1_over_4
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Targets as builders                                                 *)
(* ------------------------------------------------------------------ *)

(* The anti-entropy stack only wraps Algorithm 5 (it reads and feeds the
   causality graph); it runs whenever the target opts in or seeds an
   anti-entropy mutation. *)
let uses_ae target =
  target.impl = Scenario.Algorithm_5
  && (target.ae || target.ae_mutation <> None)

(* The recoverable stack wraps Algorithm 5 only; it runs whenever the
   target opts in, a recovery mutation is seeded, or the plan itself
   contains recovery adversities (downtime windows are only fair against a
   stack that can replay its stable store). *)
let uses_recovery target plan =
  target.impl = Scenario.Algorithm_5
  && (target.recovery || target.rmutation <> None
      || Adversity.has_recovery plan)

(* The builder a target denotes under one plan: stack selection as above,
   the explorer's posting policy as an [Auto_posts] workload, the ETOB
   checker with the plan-aware tau bound, and the liveness watchdog when
   the target opts in.  Everything downstream — running, bounds, repro
   text, differential replay — is the builder's. *)
let builder_of target ~seed plan =
  let stack =
    if uses_recovery target plan then
      Builder.Recoverable { ae = uses_ae target }
    else if uses_ae target then Builder.Etob_ae
    else Builder.Etob target.impl
  in
  { (Builder.create ~seed ~timer_period:target.timer_period
       ~delay:
         (Builder.Uniform { min_d = target.base_min; max_d = target.base_max })
       ~n:target.n ~deadline:target.deadline stack)
    with
    Builder.workload =
      Builder.Auto_posts { count = target.posts; stretch = target.recovery };
    plan;
    mutation = target.mutation;
    rmutation = target.rmutation;
    ae_mutation = target.ae_mutation;
    checkers =
      Builder.Etob_spec Builder.Tau_auto
      :: (if target.watchdog then [ Builder.Watchdog Builder.Wd_auto ] else [])
  }

(* The inverse direction, for [ecsim explore --spec]: read the target
   fields back off a declarative builder.  The spec's plan is a starting
   point the search discards (exploration generates its own); only stacks
   the generator knows how to be fair to are accepted. *)
let target_of (b : Builder.t) =
  match b.Builder.base with
  | Builder.Opaque _ ->
    Error "exploration needs a declarative (spec-file) base"
  | Builder.Decl d ->
    let base_min, base_max =
      match d.Builder.delay with
      | Builder.Constant dl -> (dl, dl)
      | Builder.Uniform { min_d; max_d } -> (min_d, max_d)
    in
    (match b.Builder.stack with
     | Builder.Etob impl -> Ok (impl, false, false)
     | Builder.Etob_ae -> Ok (Scenario.Algorithm_5, true, false)
     | Builder.Recoverable { ae } -> Ok (Scenario.Algorithm_5, ae, true)
     | s ->
       Error
         (Printf.sprintf "exploration does not cover the %s stack"
            (Builder.stack_name s)))
    |> Result.map (fun (impl, ae, recovery) ->
        { impl;
          mutation = b.Builder.mutation;
          n = d.Builder.n;
          deadline = d.Builder.deadline;
          posts = Builder.post_count b;
          timer_period = d.Builder.timer_period;
          base_min;
          base_max;
          recovery =
            recovery
            || (match b.Builder.workload with
                | Builder.Auto_posts { stretch; _ } -> stretch
                | _ -> false);
          rmutation = b.Builder.rmutation;
          ae = ae || b.Builder.ae_mutation <> None;
          ae_mutation = b.Builder.ae_mutation;
          watchdog =
            List.exists
              (function Builder.Watchdog _ -> true | _ -> false)
              b.Builder.checkers })

(* ------------------------------------------------------------------ *)
(* Policies (delegated to the builder's formulas)                      *)
(* ------------------------------------------------------------------ *)

let b0 target plan = builder_of target ~seed:0 plan
let slack target = Builder.slack (b0 target [])
let inputs target = Builder.inputs (b0 target [])
let drop_safe_until target = Builder.drop_safe_until (b0 target [])
let last_post target = Builder.last_post (b0 target [])
let ae_catchup target = Builder.ae_catchup (b0 target [])
let lossy_safe_until target = Builder.lossy_safe_until (b0 target [])
let tau_bound target plan = Builder.tau_bound (b0 target plan)
let watchdog_settle target plan = Builder.watchdog_settle (b0 target plan)
let watchdog_bound target plan = Builder.watchdog_bound (b0 target plan)
let base_setup target ~seed = Builder.setup_of (builder_of target ~seed [])

(* ------------------------------------------------------------------ *)
(* Running one plan                                                    *)
(* ------------------------------------------------------------------ *)

type outcome = {
  plan : Adversity.t;
  seed : int;  (* the engine seed of this very run *)
  violations : string list;  (* [] = clean *)
  report : Properties.etob_report option;  (* None if the run raised *)
  digest : string;  (* trace digest (hex); "" if the run raised *)
}

let outcome_of (o : Builder.outcome) =
  { plan = o.Builder.builder.Builder.plan;
    seed = Builder.seed_of o.Builder.builder;
    violations = o.Builder.violations;
    report = o.Builder.report;
    digest = o.Builder.digest }

let run_plan target ~seed plan =
  outcome_of (Builder.run ~digest:true ~catch:true (builder_of target ~seed plan))

(* ------------------------------------------------------------------ *)
(* Plan generation                                                     *)
(* ------------------------------------------------------------------ *)

let max_crashes target =
  match target.impl with
  | Scenario.Algorithm_5 -> target.n - 1  (* any environment *)
  | _ -> (target.n - 1) / 2  (* quorum stacks need a correct majority *)

let random_spec target ~rng =
  let open Adversity in
  let d = target.deadline in
  let window ~latest_until =
    let latest_until = max 2 latest_until in
    let from_time = Rng.int rng (latest_until - 1) in
    let len = 1 + Rng.int rng (max 1 (d / 4)) in
    (from_time, min latest_until (from_time + len))
  in
  let healed_latest = d - slack target - target.base_max in
  (* Drops exist only for Algorithm 5, whose full-graph re-gossip makes a
     closed drop window recoverable; the quorum baselines have no such
     blanket retransmission, so dropping their messages could flag a
     faithful run.  Recovery adversities exist only for recovery targets
     (the recoverable stack wraps Algorithm 5). *)
  (* A nonempty proper subset of the processes, drawn uniformly-ish. *)
  let random_side () =
    match List.filter (fun _ -> Rng.int rng 2 = 0) (all_procs target.n) with
    | [] -> [ 0 ]
    | l when List.length l = target.n -> [ 0 ]
    | l -> l
  in
  let kind_pool =
    [ 0; 1; 2; 3; 4 ]
    @ (if target.impl = Scenario.Algorithm_5 && drop_safe_until target > 2
       then [ 5 ]
       else [])
    @ (if target.recovery && target.impl = Scenario.Algorithm_5
       then [ 6; 7 ]
       else [])
      (* Message-LOSING partitions are only fair against Algorithm 5, whose
         full-graph re-gossip (or anti-entropy layer) can recover the loss;
         see [lossy_safe_until] for the window clamp.  They join the pool
         only for partition-aware targets (anti-entropy or watchdog on):
         that is where they have teeth — and legacy targets keep drawing
         exactly the plans they always did, so recorded repros and tuned
         search budgets stay valid. *)
    @ (if target.impl = Scenario.Algorithm_5
          && (uses_ae target || target.watchdog)
          && lossy_safe_until target > 2
       then [ 8; 9; 10; 11 ]
       else [])
  in
  match List.nth kind_pool (Rng.int rng (List.length kind_pool)) with
  | 0 when max_crashes target >= 1 ->
    Crash { proc = Rng.int rng target.n; at = Rng.int rng d }
  | 1 ->
    let left =
      match List.filter (fun _ -> Rng.int rng 2 = 0) (all_procs target.n) with
      | [] -> [ 0 ]
      | l when List.length l = target.n -> [ 0 ]
      | l -> l
    in
    let from_time, until_time = window ~latest_until:healed_latest in
    Partition { left; from_time; until_time }
  | 2 ->
    let factor = 2 + Rng.int rng 7 in
    let latest = d - slack target - (target.base_max * factor) in
    let from_time, until_time = window ~latest_until:latest in
    let link =
      if Rng.int rng 2 = 0 then None
      else Some (Rng.int rng target.n, Rng.int rng target.n)
    in
    Delay_spike { link; from_time; until_time; factor }
  | 3 ->
    let from_time, until_time = window ~latest_until:healed_latest in
    Duplicate { from_time; until_time; copies = 1 + Rng.int rng 3 }
  | 4 ->
    Omega_flap
      { until_time = 4 + Rng.int rng (d / 2);
        period = 1 + Rng.int rng (3 * target.timer_period) }
  | 5 ->
    let from_time, until_time = window ~latest_until:(drop_safe_until target) in
    Drop { from_time; until_time; pct = 25 * (1 + Rng.int rng 4) }
  | 6 ->
    (* The window must close early enough for retransmission to catch the
       restarted process up before the horizon. *)
    let at, recover_at = window ~latest_until:healed_latest in
    Crash_recover { proc = Rng.int rng target.n; at; recover_at }
  | 7 ->
    let kind =
      match Rng.int rng 3 with
      | 0 -> Persist.Store.Torn_tail
      | 1 -> Persist.Store.Lost_suffix (1 + Rng.int rng 4)
      | _ -> Persist.Store.Corrupt_record
    in
    Disk_fault { proc = Rng.int rng target.n; kind }
  | 8 ->
    (* Split-brain: a contiguous run of n/2 processes against the rest. *)
    let off = Rng.int rng target.n in
    let left =
      List.init (max 1 (target.n / 2)) (fun i -> (off + i) mod target.n)
    in
    let from_time, until_time = window ~latest_until:(lossy_safe_until target) in
    Lossy_partition { left; from_time; until_time }
  | 9 ->
    (* Minority isolation: one process alone behind the loss. *)
    let from_time, until_time = window ~latest_until:(lossy_safe_until target) in
    Lossy_partition { left = [ Rng.int rng target.n ]; from_time; until_time }
  | 10 ->
    let from_time, until_time = window ~latest_until:(lossy_safe_until target) in
    Oneway_partition { left = random_side (); from_time; until_time }
  | 11 ->
    let from_time, until_time = window ~latest_until:(lossy_safe_until target) in
    Flapping_partition
      { left = random_side ();
        from_time;
        until_time;
        period = 1 + Rng.int rng (2 * target.timer_period) }
  | _ ->
    (* crash drawn but the environment admits none *)
    Duplicate { from_time = 0; until_time = target.base_max; copies = 1 }

(* Enforce plan-level invariants the independent draws cannot see: the
   crash count stays admitted by the target's environment (one crash per
   process), at most one flap survives, permanent crashes and downtime
   windows never hit the same process, recovery adversities only target
   the recoverable stack, and a disk fault without a crash to apply it at
   is dead weight. *)
let sanitize target plan =
  let crashes = ref 0 and flapped = ref false in
  let crashed = Hashtbl.create 4 in
  let windowed = Hashtbl.create 4 in
  let recovery_ok = target.impl = Scenario.Algorithm_5 in
  let plan =
    List.filter
      (fun spec ->
         match spec with
         | Adversity.Crash { proc; _ } ->
           if Hashtbl.mem crashed proc || Hashtbl.mem windowed proc
              || !crashes >= max_crashes target
           then false
           else begin
             Hashtbl.add crashed proc ();
             incr crashes;
             true
           end
         | Adversity.Omega_flap _ ->
           if !flapped then false
           else begin
             flapped := true;
             true
           end
         | Adversity.Crash_recover { proc; _ } ->
           if (not recovery_ok) || Hashtbl.mem crashed proc
              || Hashtbl.mem windowed proc
           then false
           else begin
             Hashtbl.add windowed proc ();
             true
           end
         | Adversity.Disk_fault _ -> recovery_ok
         | _ -> true)
      plan
  in
  let windows = Adversity.recover_procs plan in
  List.filter
    (function
      | Adversity.Disk_fault { proc; _ } -> List.mem proc windows
      | _ -> true)
    plan

let random_plan target ~rng ~max_adversities =
  let k = Rng.int rng (max_adversities + 1) in
  let rec build i acc =
    if i = 0 then List.rev acc
    else build (i - 1) (random_spec target ~rng :: acc)
  in
  Adversity.make (sanitize target (build k []))

(* Plan [i] of an exploration: index 0 is always the empty plan (bugs that
   need no adversity at all should be found — and shrunk — immediately);
   later indices draw from an index-derived rng, so any plan can be
   regenerated without replaying the whole search. *)
let plan_at target ~seed ~max_adversities i =
  if i = 0 then []
  else
    let rng = Rng.create ((seed * 0x1000003) lxor (i * 0x9e3779b9)) in
    random_plan target ~rng ~max_adversities

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

type exploration = { found : outcome option; plans_run : int; budget : int }

(* Each plan runs under its own engine seed [seed + i] so the search also
   sweeps network randomness; the loop itself (sequential early exit, or
   chunks fanned over domains with lowest-index reporting) is
   [Builder.explore]'s. *)
let explore ?domains ?on_progress target ~seed ~budget ~max_adversities () =
  let plan_at = plan_at target ~seed ~max_adversities in
  let r =
    Builder.explore ?domains ?on_progress
      ~gen:(fun i -> builder_of target ~seed:(seed + i) (plan_at i))
      ~budget ()
  in
  { found = Option.map outcome_of r.Builder.found;
    plans_run = r.Builder.plans_run;
    budget = r.Builder.budget }

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* [Builder.shrink] with candidates rebuilt under the outcome's own engine
   seed, so the shrunk plan is a deterministic repro of the same run
   family.  [builder_of] re-derives the stack per candidate plan — that is
   the point of the [rebuild] hook: dropping the last downtime window may
   demote a recoverable run back to crash-stop. *)
let shrink target (o : outcome) =
  let seed = o.seed in
  let bo =
    { Builder.builder = builder_of target ~seed o.plan;
      trace = None;
      report = o.report;
      violations = o.violations;
      digest = o.digest;
      handles = Builder.No_handles }
  in
  outcome_of (Builder.shrink ~rebuild:(fun plan -> builder_of target ~seed plan) bo)
