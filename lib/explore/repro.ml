(* Self-contained repro files.

   A finding is only useful if someone else can replay it: the file embeds
   the full target (implementation, mutation, scale, workload, delays), the
   exact engine seed, the shrunk adversity plan and the golden trace digest
   of the violating run.  [replay] rebuilds the run from the file alone and
   checks both that the violation reproduces and that the trace is
   byte-identical (via its digest) to the recorded one. *)

open Ec_core

type t = {
  target : Explorer.target;
  seed : int;
  plan : Adversity.t;
  digest : string;
  violations : string list;
}

let of_outcome target (o : Explorer.outcome) =
  { target;
    seed = o.Explorer.seed;
    plan = o.Explorer.plan;
    digest = o.Explorer.digest;
    violations = o.Explorer.violations }

let header = "ecsim-explore-repro v1"

(* Violation messages come from Format and may contain line breaks; the file
   format is line-oriented, so collapse each onto a single line. *)
let one_line s =
  String.concat " "
    (List.filter (fun w -> w <> "")
       (String.split_on_char ' '
          (String.map (function '\n' | '\t' | '\r' -> ' ' | c -> c) s)))

let to_lines r =
  let t = r.target in
  [ header;
    "impl " ^ Explorer.impl_name t.Explorer.impl;
    "mutant "
    ^ (match t.Explorer.mutation with
       | None -> "none"
       | Some m -> Etob_omega.mutation_name m);
    Printf.sprintf "n %d" t.Explorer.n ]
  @ (if t.Explorer.recovery then [ "recovery on" ] else [])
  @ (match t.Explorer.rmutation with
     | None -> []
     | Some m -> [ "rmutant " ^ Recoverable.mutation_name m ])
  @ (if t.Explorer.ae then [ "ae on" ] else [])
  @ (match t.Explorer.ae_mutation with
     | None -> []
     | Some m -> [ "ae-mutant " ^ Anti_entropy.mutation_name m ])
  @ (if t.Explorer.watchdog then [ "watchdog on" ] else [])
  @ [ Printf.sprintf "seed %d" r.seed;
    Printf.sprintf "deadline %d" t.Explorer.deadline;
    Printf.sprintf "timer-period %d" t.Explorer.timer_period;
    Printf.sprintf "posts %d" t.Explorer.posts;
    Printf.sprintf "base-min %d" t.Explorer.base_min;
    Printf.sprintf "base-max %d" t.Explorer.base_max;
    "digest " ^ (if r.digest = "" then "-" else r.digest) ]
  @ List.map (fun v -> "violation " ^ one_line v) r.violations
  @ [ Printf.sprintf "plan %d" (Adversity.size r.plan) ]
  @ Adversity.to_lines r.plan
  @ [ "end" ]

let to_string r = String.concat "\n" (to_lines r) ^ "\n"

let write path r =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string r))

exception Parse of string

let parse_fail fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt

(* Every parse error names the offending line — its number in the original
   file and its content — so a hand-edited or truncated repro file fails
   with something actionable, never an escaping exception. *)
let of_string s =
  let lines =
    List.filteri
      (fun _ (_, l) -> l <> "")
      (List.mapi (fun i l -> (i + 1, String.trim l))
         (String.split_on_char '\n' s))
  in
  let field line =
    match String.index_opt line ' ' with
    | None -> (line, "")
    | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
  in
  let at lineno fmt =
    Printf.ksprintf (fun m -> parse_fail "line %d: %s" lineno m) fmt
  in
  let parse () =
    match lines with
    | (_, h) :: rest when h = header ->
      let target = ref Explorer.default_target in
      let seed = ref 0 in
      let digest = ref "" in
      let violations = ref [] in
      let int lineno v = match int_of_string_opt v with
        | Some i -> i
        | None -> at lineno "expected an integer, got %S" v
      in
      let rec headers = function
        | [] -> parse_fail "missing plan section (file truncated?)"
        | (lineno, line) :: rest ->
          let key, v = field line in
          let int v = int lineno v in
          (match key with
           | "impl" ->
             (match Explorer.impl_of_string v with
              | Some impl -> target := { !target with Explorer.impl }
              | None -> at lineno "unknown impl %S" v);
             headers rest
           | "mutant" ->
             (if v <> "none" then
                match Etob_omega.mutation_of_string v with
                | Some m -> target := { !target with Explorer.mutation = Some m }
                | None -> at lineno "unknown mutant %S" v);
             headers rest
           | "recovery" ->
             (match v with
              | "on" | "true" ->
                target := { !target with Explorer.recovery = true }
              | "off" | "false" ->
                target := { !target with Explorer.recovery = false }
              | _ -> at lineno "recovery must be on or off, got %S" v);
             headers rest
           | "rmutant" ->
             (if v <> "none" then
                match Recoverable.mutation_of_string v with
                | Some m ->
                  target := { !target with Explorer.rmutation = Some m }
                | None -> at lineno "unknown recovery mutant %S" v);
             headers rest
           | "ae" ->
             (match v with
              | "on" | "true" -> target := { !target with Explorer.ae = true }
              | "off" | "false" ->
                target := { !target with Explorer.ae = false }
              | _ -> at lineno "ae must be on or off, got %S" v);
             headers rest
           | "ae-mutant" ->
             (if v <> "none" then
                match Anti_entropy.mutation_of_string v with
                | Some m ->
                  target := { !target with Explorer.ae_mutation = Some m }
                | None -> at lineno "unknown anti-entropy mutant %S" v);
             headers rest
           | "watchdog" ->
             (match v with
              | "on" | "true" ->
                target := { !target with Explorer.watchdog = true }
              | "off" | "false" ->
                target := { !target with Explorer.watchdog = false }
              | _ -> at lineno "watchdog must be on or off, got %S" v);
             headers rest
           | "n" -> target := { !target with Explorer.n = int v }; headers rest
           | "seed" -> seed := int v; headers rest
           | "deadline" ->
             target := { !target with Explorer.deadline = int v };
             headers rest
           | "timer-period" ->
             target := { !target with Explorer.timer_period = int v };
             headers rest
           | "posts" ->
             target := { !target with Explorer.posts = int v };
             headers rest
           | "base-min" ->
             target := { !target with Explorer.base_min = int v };
             headers rest
           | "base-max" ->
             target := { !target with Explorer.base_max = int v };
             headers rest
           | "digest" -> digest := (if v = "-" then "" else v); headers rest
           | "violation" -> violations := v :: !violations; headers rest
           | "plan" ->
             let count = int v in
             let plan_lines, tail =
               let rec take k acc = function
                 | rest when k = 0 -> (List.rev acc, rest)
                 | [] ->
                   parse_fail
                     "plan section truncated: expected %d adversity lines"
                     count
                 | l :: rest -> take (k - 1) (l :: acc) rest
               in
               take count [] rest
             in
             (match tail with
              | [ (_, "end") ] -> ()
              | (lineno, l) :: _ ->
                at lineno "expected end after %d plan lines, got %S" count l
              | [] -> parse_fail "missing end line (file truncated?)");
             let plan =
               List.map
                 (fun (lineno, l) ->
                    match Adversity.of_line l with
                    | Ok spec -> spec
                    | Error msg -> at lineno "%s" msg)
                 plan_lines
             in
             { target = !target;
               seed = !seed;
               plan;
               digest = !digest;
               violations = List.rev !violations }
           | k -> at lineno "unknown header %S" k)
      in
      headers rest
    | (lineno, l) :: _ ->
      parse_fail "line %d: not a %s file (found %S)" lineno header l
    | [] -> parse_fail "empty file: not a %s file" header
  in
  match parse () with r -> Ok r | exception Parse msg -> Error msg

let read path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error msg -> Error msg

(* Replay from the file alone.  The digest check is strict golden-trace
   equality: the replayed run must be byte-identical, not merely violating
   in the same way. *)
let replay r =
  let o = Explorer.run_plan r.target ~seed:r.seed r.plan in
  if o.Explorer.violations = [] then
    Error "replay was clean: no violation reproduced"
  else if r.digest <> "" && o.Explorer.digest <> r.digest then
    Error
      (Printf.sprintf
         "violation reproduced but trace digest mismatch: recorded %s, \
          replayed %s (did the protocol or engine change?)"
         r.digest o.Explorer.digest)
  else Ok o
