(** Adversity plans, re-exported from {!Harness.Adversity} (their home
    since the {!Harness.Builder} refactor — the builder composes plans, so
    they live below the explorer).  Same types, same values: [spec] and
    [t] here are equal to the harness ones, so plans flow freely between
    the explorer, builders and repro files. *)

include module type of struct
  include Harness.Adversity
end
