(** Bounded adversarial exploration: enumerate adversity plans against one
    protocol stack, flag runs violating the ETOB specification for their
    plan, and greedily shrink findings to a locally minimal plan.

    The violation predicate is plan-aware: safety violations always count,
    and the measured convergence taus are compared to a per-plan bound —
    [0] for Algorithm 5 under a never-flapping oracle (any revision is a
    bug, whatever else the plan does), and the plan's settle time plus
    slack otherwise.  Dually, plan {e generation} is clamped so a faithful
    protocol can always recover before the horizon (drop windows close
    before the final re-gossip round, spike tails fit the deadline, crash
    counts stay admitted by the target's environment): a flagged run is a
    real finding, not an artifact of an unfair plan. *)

open Simulator.Types
open Ec_core
module Scenario = Harness.Scenario
module Builder = Harness.Builder

type target = {
  impl : Scenario.etob_impl;
  mutation : Etob_omega.mutation option;  (** seeded bug (Algorithm 5 only) *)
  n : int;
  deadline : time;
  posts : int;  (** workload size (round-robin spread posts) *)
  timer_period : int;
  base_min : int;  (** base delay-model bounds *)
  base_max : int;
  recovery : bool;
      (** run the crash-recovery stack ({!Ec_core.Recoverable} around
          Algorithm 5), generate recovery adversities (downtime windows,
          disk faults), and stretch the posting cadence across the horizon
          so restarted processes broadcast again *)
  rmutation : Recoverable.mutation option;
      (** seeded bug in the recovery path itself (implies the recovery
          stack for this run) *)
  ae : bool;
      (** stack the anti-entropy digest exchange
          ({!Ec_core.Anti_entropy}) beside Algorithm 5, and let generated
          message-losing partitions heal much later (anti-entropy, not the
          workload's re-gossip, repairs them) *)
  ae_mutation : Anti_entropy.mutation option;
      (** seeded bug in the anti-entropy layer (implies the layer for this
          run) — the skip-digest negative control the watchdog must flag *)
  watchdog : bool;
      (** check convergence-progress liveness ({!Harness.Watchdog}) on
          every run: a correct process that has not reached the union of
          final delivered sets by settle + bound is a violation *)
}

val default_target : target
(** Algorithm 5, unmutated: n=4, deadline=240, 12 posts, delays in [1,3],
    no recovery. *)

val impl_name : Scenario.etob_impl -> string
(** Names match the [ecsim --impl] catalogue: alg5, paxos, alg1. *)

val impl_of_string : string -> Scenario.etob_impl option

val inputs : target -> (time * proc_id * Simulator.Io.input) list
val drop_safe_until : target -> time
val slack : target -> int

val last_post : target -> time
(** When the workload ends; convergence cannot precede it. *)

val uses_ae : target -> bool
(** This target stacks the anti-entropy layer (opt-in or seeded
    anti-entropy mutation; Algorithm 5 only). *)

val ae_catchup : target -> int
(** Worst-case post-heal catch-up time of the digest exchange: next digest
    broadcast + one full resend backoff + delta delivery. *)

val lossy_safe_until : target -> time
(** Latest admissible heal time for generated message-losing partitions:
    before the final full posting round without anti-entropy (re-gossip
    must repair the loss), far later with it. *)

val watchdog_settle : target -> Adversity.t -> time
(** When the watchdog starts its countdown: adversities settled and the
    workload finished. *)

val watchdog_bound : target -> Adversity.t -> int
(** Convergence headroom past the settle point (slack + anti-entropy
    catch-up + retransmission backoff where applicable). *)

val tau_bound : target -> Adversity.t -> time
(** [0] for Algorithm 5 under a never-flapping oracle and a recovery-free
    plan; otherwise settle + slack, plus one retransmission backoff cap
    when the plan restarts processes (recovery legitimately perturbs
    stability around the restart). *)

val base_setup : target -> seed:int -> Scenario.setup

val uses_recovery : target -> Adversity.t -> bool
(** This (target, plan) pair runs the recoverable stack: the target opts
    in, seeds a recovery mutation, or the plan carries recovery
    adversities. *)

val builder_of : target -> seed:int -> Adversity.t -> Builder.t
(** The declarative builder a target denotes under one plan: stack per
    {!uses_recovery}/{!uses_ae}, the posting policy as an [Auto_posts]
    workload, the plan-aware ETOB checker, plus the watchdog when the
    target opts in.  Running, bounds, repro text and replay all go through
    this value — the explorer's single bridge to {!Harness.Builder}. *)

val target_of : Builder.t -> (target, string) result
(** Read the target fields back off a declarative builder (for
    [ecsim explore --spec]).  The builder's own plan is discarded —
    exploration generates its plans — and only ETOB-family stacks are
    accepted (the plan generator knows how to be fair to them). *)

type outcome = {
  plan : Adversity.t;
  seed : int;  (** the engine seed of this very run *)
  violations : string list;  (** [[]] = clean *)
  report : Properties.etob_report option;  (** [None] if the run raised *)
  digest : string;  (** trace digest (hex); [""] if the run raised *)
}

val run_plan : target -> seed:int -> Adversity.t -> outcome
(** Deterministic: same target, seed and plan always give the same
    outcome.  A raising run yields an ["exception: ..."] violation rather
    than propagating. *)

val max_crashes : target -> int
val random_plan : target -> rng:Simulator.Rng.t -> max_adversities:int -> Adversity.t
val sanitize : target -> Adversity.t -> Adversity.t

val plan_at : target -> seed:int -> max_adversities:int -> int -> Adversity.t
(** Plan [i] of an exploration; index 0 is always the empty plan, later
    plans are regenerable from their index alone. *)

type exploration = { found : outcome option; plans_run : int; budget : int }

val explore :
  ?domains:int ->
  ?on_progress:(plans_run:int -> unit) ->
  target ->
  seed:int -> budget:int -> max_adversities:int -> unit -> exploration
(** Run plans [0 .. budget-1] (each under engine seed [seed + i]) until the
    first violation.  [domains > 1] fans chunks over OCaml domains via
    {!Harness.Sweep.map_safe}; the reported finding is the lowest-index
    violation regardless of domain count. *)

val shrink : target -> outcome -> outcome
(** Greedy minimization to a local minimum: drop whole adversities, then
    substitute weaker variants ({!Adversity.weaken}), re-running the plan
    under the outcome's own seed at every step.  The result still
    violates. *)
