(** Self-contained repro files for explorer findings: the full target, the
    exact engine seed, the (shrunk) adversity plan, the recorded violations
    and the golden trace digest, in a line-oriented text format.
    {!replay} rebuilds the run from the file alone and checks that the
    violation reproduces on a byte-identical trace. *)

type t = {
  target : Explorer.target;
  seed : int;
  plan : Adversity.t;
  digest : string;  (** trace digest (hex); [""] when the run raised *)
  violations : string list;
}

val of_outcome : Explorer.target -> Explorer.outcome -> t

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parsing never raises: a malformed or truncated file yields [Error]
    naming the offending line (original line number and content). *)

val write : string -> t -> unit

val read : string -> (t, string) result
(** {!of_string} on the file's content; an unreadable file yields [Error]
    with the system message. *)

val replay : t -> (Explorer.outcome, string) result
(** Re-run the recorded target/seed/plan.  [Ok] iff the run violates again
    {e and} (when a digest was recorded) the trace digest matches —
    byte-identical replay, not merely a similar failure. *)
