(* Adversity plans moved into the harness (so [Harness.Builder] can carry
   them); this module re-exports them under the historical path for the
   explorer and its callers. *)

include Harness.Adversity
