(* Failure-detector values as they appear in CHT samples.

   The reduction of Section 4 works for an arbitrary detector D; the sample
   DAG stores D's outputs opaquely.  We cover the two ranges our target
   algorithms consume: leader outputs (Omega) and suspicion lists (<>P). *)

open Simulator.Types

type t =
  | Leader of proc_id
  | Suspects of proc_id list

let leader p = Leader p
let suspects ps = Suspects (List.sort_uniq Int.compare ps)

let compare a b =
  match a, b with
  | Leader p, Leader q -> Int.compare p q
  | Suspects ps, Suspects qs -> List.compare Int.compare ps qs
  | Leader _, Suspects _ -> -1
  | Suspects _, Leader _ -> 1

let equal a b = compare a b = 0

(* The process this value designates as leader: direct for Omega; for a
   suspicion list, the classical reduction "trust the smallest unsuspected
   process" (falling back to [self] if everyone is suspected). *)
let trusted ~n ~self = function
  | Leader p -> p
  | Suspects suspects ->
    let rec find p =
      if p >= n then self else if List.mem p suspects then find (p + 1) else p
    in
    find 0

let pp ppf = function
  | Leader p -> Fmt.pf ppf "lead:%a" pp_proc p
  | Suspects ps -> Fmt.pf ppf "susp:{%a}" (Fmt.list ~sep:Fmt.comma pp_proc) ps
