(* Extracting Omega from the simulation tree (Section 4 + Appendix B.6/B.7).

   The paper's reduction, adapted to bounded exploration:

   1. Locate a k-bivalent vertex: the first vertex (in creation order, the
      executable stand-in for the CHT m-based order) whose k-tag contains
      both 0 and 1, for the smallest such k (Algorithm 3 establishes one
      exists in the limit tree).
   2. Search its subtree for a decision gadget — a fork (one process, same
      received message, two detector values leading to opposite k-univalent
      vertices) or a hook (the same step applied before and after an
      intermediate step of q flips the k-valency).  The deciding process of
      the smallest gadget is the emulated Omega output; Lemmas 7-9 of the
      paper show this stabilizes on a correct process in the limit.
   3. While the bounded tree exhibits no gadget yet, fall back to the CHT
      initial output: the extracting process itself.

   [emulate] packages the growing-DAG loop of Figure 6: at each round the
   reduction re-runs on a longer DAG prefix, and the per-round outputs are
   what experiment E7 reports. *)

open Simulator
open Simulator.Types

type gadget = {
  g_kind : [ `Fork | `Hook | `Input_fork ];
  g_instance : int;
  g_pivot : int;  (* tree node id of S *)
  g_zero : int;   (* k-0-valent branch node *)
  g_one : int;    (* k-1-valent branch node *)
  g_decider : proc_id;
}

let pp_gadget ppf g =
  Fmt.pf ppf "%s(k=%d, pivot=%d, decider=%a)"
    (match g.g_kind with
     | `Fork -> "fork" | `Hook -> "hook" | `Input_fork -> "input-fork")
    g.g_instance g.g_pivot pp_proc g.g_decider

let rec descendants tree id =
  id :: List.concat_map (descendants tree) (Sim_tree.children tree id)

(* The literal walk of the paper's Algorithm 3, on the bounded tree:

     k := 1; sigma := root
     while sigma is not k-bivalent:
       sigma1 := a descendant of sigma where EC-Agreement fails for k
       sigma2 := a descendant of sigma1 where every correct process has
                 completed proposeEC_k and received everything sent to it
       pick k' > k and sigma3, a descendant of sigma2, whose k'-tag
       contains {0, 1}; k := k'; sigma := sigma3

   Each step is a bounded search here, so the walk may run out of explored
   tree and return [None]; the paper's argument is that on the infinite
   tree it cannot loop forever without exhibiting an admissible run that
   violates EC-Agreement infinitely often.  [first_bivalent] below is the
   global-scan counterpart used by the extraction (deterministic and
   budget-friendly); the walk is exercised by tests for fidelity. *)
let locate_bivalent_walk tree ~max_instance =
  let pattern = Dag.pattern (Sim_tree.dag tree) in
  let correct = Failures.correct pattern in
  let rec go k sigma fuel =
    if k > max_instance || fuel = 0 then None
    else begin
      let tags = Sim_tree.tags tree ~instance:k in
      if Sim_tree.is_bivalent tags.(sigma) then Some (k, sigma, tags)
      else
        let below = descendants tree sigma in
        (* sigma1: agreement fails for instance k in that run. *)
        match
          List.find_opt
            (fun id -> Schedule.conflicting (Sim_tree.config tree id) ~instance:k)
            below
        with
        | None -> None
        | Some sigma1 ->
          (* sigma2: every correct process decided k and has an empty
             buffer (all messages sent to it were received). *)
          (match
             List.find_opt
               (fun id ->
                  let config = Sim_tree.config tree id in
                  List.for_all
                    (fun p ->
                       config.Schedule.buffers.(p) = []
                       && List.exists (fun (q, l, _) -> q = p && l = k)
                         config.Schedule.decisions)
                    correct)
               (descendants tree sigma1)
           with
           | None -> None
           | Some sigma2 ->
             let k' = k + 1 in
             if k' > max_instance then None
             else
               let tags' = Sim_tree.tags tree ~instance:k' in
               (match
                  List.find_opt (fun id -> Sim_tree.is_bivalent tags'.(id))
                    (descendants tree sigma2)
                with
                | None -> None
                | Some sigma3 -> go k' sigma3 (fuel - 1)))
    end
  in
  go 1 0 (max_instance + 1)

(* The first (in creation order) k-bivalent vertex for the smallest k. *)
let first_bivalent tree ~max_instance =
  let rec per_instance k =
    if k > max_instance then None
    else begin
      let tags = Sim_tree.tags tree ~instance:k in
      let rec scan id =
        if id >= Sim_tree.size tree then None
        else if Sim_tree.is_bivalent tags.(id) then Some (k, id, tags)
        else scan (id + 1)
      in
      match scan 0 with Some found -> Some found | None -> per_instance (k + 1)
    end
  in
  per_instance 1

let step_proc tree id =
  match Sim_tree.step tree id with
  | None -> None
  | Some s -> Some (Dag.vertex (Sim_tree.dag tree) s.Schedule.s_vertex).Dag.v_proc

(* Same receive and invocation, same stepping process, different detector
   value: the two arms of a (detector) fork. *)
let fork_arms tree a b =
  match Sim_tree.step tree a, Sim_tree.step tree b with
  | Some sa, Some sb ->
    let dag = Sim_tree.dag tree in
    let va = Dag.vertex dag sa.Schedule.s_vertex
    and vb = Dag.vertex dag sb.Schedule.s_vertex in
    va.Dag.v_proc = vb.Dag.v_proc
    && sa.Schedule.s_recv = sb.Schedule.s_recv
    && sa.Schedule.s_invoke = sb.Schedule.s_invoke
    && not (Fd_value.equal va.Dag.v_value vb.Dag.v_value)
  | _, _ -> false

(* Same stepping process invoking instance [k] with value 0 in one arm and
   1 in the other: an input fork.  This is the single-tree analog of CHT's
   univalent critical index: if flipping p's proposal for instance k flips
   the k-valency, then every run deciding k adopts p's value, so (in the
   limit tree, by the Lemma 7 argument) p must keep participating — p is
   correct. *)
let input_fork_arms tree ~instance a b =
  match Sim_tree.step tree a, Sim_tree.step tree b with
  | Some sa, Some sb ->
    let dag = Sim_tree.dag tree in
    let va = Dag.vertex dag sa.Schedule.s_vertex
    and vb = Dag.vertex dag sb.Schedule.s_vertex in
    va.Dag.v_proc = vb.Dag.v_proc
    && sa.Schedule.s_recv = sb.Schedule.s_recv
    && (match sa.Schedule.s_invoke, sb.Schedule.s_invoke with
        | Some (la, va'), Some (lb, vb') ->
          la = instance && lb = instance && va' <> vb'
        | _, _ -> false)
  | _, _ -> false

(* Search the subtree of [root] for the smallest decision gadget w.r.t. the
   k-tags in [tags].  Nodes are scanned in creation order, so the first hit
   is the "smallest" gadget in the same sense as the paper. *)
let find_gadget tree ~instance ~tags ~root =
  let in_subtree = Array.make (Sim_tree.size tree) false in
  let rec mark id =
    in_subtree.(id) <- true;
    List.iter mark (Sim_tree.children tree id)
  in
  mark root;
  let univalent id v = Sim_tree.is_univalent tags.(id) v in
  let opposed a b =
    (univalent a false && univalent b true) || (univalent a true && univalent b false)
  in
  let fork_like kind arms_ok s =
    let kids = Sim_tree.children tree s in
    let rec pairs = function
      | [] -> None
      | a :: rest ->
        (match List.find_opt (fun b -> arms_ok a b && opposed a b) rest with
         | Some b ->
           let zero, one = if univalent a false then (a, b) else (b, a) in
           Some { g_kind = kind; g_instance = instance; g_pivot = s;
                  g_zero = zero; g_one = one;
                  g_decider = Option.get (step_proc tree zero) }
         | None -> pairs rest)
    in
    if Sim_tree.is_bivalent tags.(s) then pairs kids else None
  in
  let fork_at = fork_like `Fork (fork_arms tree) in
  let input_fork_at = fork_like `Input_fork (input_fork_arms tree ~instance) in
  let hook_at s =
    if not (Sim_tree.is_bivalent tags.(s)) then None
    else
      let dag = Sim_tree.dag tree in
      let kids = Sim_tree.children tree s in
      (* S0 = S . e ; S1 = S . e_q . e  for some intermediate step e_q. *)
      List.find_map
        (fun s0 ->
           match Sim_tree.step tree s0 with
           | None -> None
           | Some e ->
             List.find_map
               (fun s' ->
                  if s' = s0 then None
                  else
                    List.find_map
                      (fun s1 ->
                         match Sim_tree.step tree s1 with
                         | Some e1 when Schedule.same_step_content dag e e1 ->
                           if univalent s0 false && univalent s1 true then
                             Some { g_kind = `Hook; g_instance = instance;
                                    g_pivot = s; g_zero = s0; g_one = s1;
                                    g_decider = Option.get (step_proc tree s') }
                           else if univalent s0 true && univalent s1 false then
                             Some { g_kind = `Hook; g_instance = instance;
                                    g_pivot = s; g_zero = s1; g_one = s0;
                                    g_decider = Option.get (step_proc tree s') }
                           else None
                         | Some _ | None -> None)
                      (Sim_tree.children tree s'))
               kids)
        kids
  in
  let rec scan id =
    if id >= Sim_tree.size tree then None
    else if not in_subtree.(id) then scan (id + 1)
    else
      match fork_at id with
      | Some g -> Some g
      | None ->
        (match input_fork_at id with
         | Some g -> Some g
         | None ->
           (match hook_at id with Some g -> Some g | None -> scan (id + 1)))
  in
  scan root

type budget = {
  b_max_depth : int;
  b_max_nodes : int;
  b_width : int;
  b_max_instance : int;
}

let default_budget =
  { b_max_depth = 9; b_max_nodes = 60_000; b_width = 2; b_max_instance = 2 }

type outcome = {
  o_leader : proc_id;
  o_gadget : gadget option;
  o_tree_size : int;
  o_bivalent : (int * int) option;  (* (instance, node id) located *)
}

(* One extraction pass over a (prefix of a) DAG, from the point of view of
   process [self]. *)
let extract (type s) ~(algo : s Pure.algo) ~dag ~budget ~self () =
  let tree = Sim_tree.create ~dag ~algo ~width:budget.b_width () in
  Sim_tree.expand tree ~max_depth:budget.b_max_depth ~max_nodes:budget.b_max_nodes;
  match first_bivalent tree ~max_instance:budget.b_max_instance with
  | None ->
    { o_leader = self; o_gadget = None; o_tree_size = Sim_tree.size tree;
      o_bivalent = None }
  | Some (instance, pivot, tags) ->
    (match find_gadget tree ~instance ~tags ~root:pivot with
     | Some g ->
       { o_leader = g.g_decider; o_gadget = Some g;
         o_tree_size = Sim_tree.size tree; o_bivalent = Some (instance, pivot) }
     | None ->
       { o_leader = self; o_gadget = None; o_tree_size = Sim_tree.size tree;
         o_bivalent = Some (instance, pivot) })

(* The round-based emulation loop of Figure 6.  CHT reruns the reduction on
   an ever-growing DAG and relies on valencies stabilizing; with bounded
   exploration budgets we realize the same limit behaviour with a sliding
   window: round r extracts from the samples taken during
   [r * round_horizon, r * round_horizon + 2 * round_horizon].  Once the
   window passes every crash and detector stabilization, it contains only
   stable samples of correct processes and the extraction output freezes.
   Returns, per round, the output at every process. *)
let emulate (type s) ~(algo : s Pure.algo) ~dag ~budget ~rounds ~round_horizon () =
  let n = Failures.n (Dag.pattern dag) in
  List.init rounds (fun r ->
      let from_horizon = r * round_horizon in
      let visible =
        Dag.window dag ~from_horizon ~to_horizon:(from_horizon + (2 * round_horizon))
      in
      List.init n (fun p -> (extract ~algo ~dag:visible ~budget ~self:p ()).o_leader))

(* The emulation satisfies Omega on this run when all correct processes'
   outputs stabilize on one correct process: returns the stabilization round
   (0-based) and the leader. *)
let stabilization ~pattern per_round =
  let correct = Failures.correct pattern in
  let agree outputs =
    match correct with
    | [] -> None
    | p :: rest ->
      let v = List.nth outputs p in
      if List.for_all (fun q -> List.nth outputs q = v) rest
      && Failures.is_correct pattern v
      then Some v
      else None
  in
  let rec scan i = function
    | [] -> None
    | outputs :: rest ->
      (match agree outputs with
       | Some v when List.for_all (fun o -> Option.equal Int.equal (agree o) (Some v)) rest ->
         Some (i, v)
       | Some _ | None -> scan (i + 1) rest)
  in
  scan 0 per_round
