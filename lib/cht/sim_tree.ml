(* The simulation tree Upsilon of Section 4 / Appendix B.3.

   Vertices are finite schedules of the target algorithm triggered by paths
   through the sample DAG; each vertex carries the configuration its
   schedule produces.  The infinite tree is materialized breadth-first up to
   explicit depth and node budgets; the per-process path-extension [width]
   (how many alternative samples of the same process may extend a path)
   bounds the branching while preserving what forks and hooks need —
   several detector values applicable to the same automaton state.

   Branch points:
   - which DAG vertex (process + detector value) takes the next step;
   - when the process is due to invoke the next proposeEC: the proposed
     value, 0 or 1 (the single-tree encoding of the CHT initial
     configurations, cf. the paper's footnote 2);
   - message receipt: the oldest pending message, or lambda when the buffer
     is empty (a fair-scheduling family sufficient for the reduction). *)

open Simulator

type 'state t = {
  dag : Dag.t;
  algo : 'state Pure.algo;
  width : int;
  allow_lambda : bool;
  mutable nodes : (int option * Schedule.step option * int) array;  (* parent, step, depth *)
  mutable configs : 'state Schedule.config array;
  mutable last_vertex : int array;  (* last DAG vertex id on path; -1 at root *)
  mutable used : int list array;  (* DAG vertex ids used on path *)
  mutable children : int list array;  (* filled in creation order *)
  mutable count : int;
}

let grow t =
  let cap = Array.length t.nodes in
  if t.count >= cap then begin
    let cap' = max 16 (cap * 2) in
    let extend a fill = Array.init cap' (fun i -> if i < cap then a.(i) else fill) in
    t.nodes <- extend t.nodes (None, None, 0);
    t.configs <- extend t.configs t.configs.(0);
    t.last_vertex <- extend t.last_vertex (-1);
    t.used <- extend t.used [];
    t.children <- extend t.children []
  end

let add_node t ~parent ~step ~config ~last_vertex ~used ~depth =
  grow t;
  let id = t.count in
  t.count <- id + 1;
  t.nodes.(id) <- (parent, step, depth);
  t.configs.(id) <- config;
  t.last_vertex.(id) <- last_vertex;
  t.used.(id) <- used;
  t.children.(id) <- [];
  (match parent with
   | Some p -> t.children.(p) <- t.children.(p) @ [ id ]
   | None -> ());
  id

let create ?(allow_lambda = false) ~dag ~algo ~width () =
  let n = Failures.n (Dag.pattern dag) in
  let root_config = Schedule.initial algo ~n in
  let t =
    { dag; algo; width; allow_lambda;
      nodes = Array.make 16 (None, None, 0);
      configs = Array.make 16 root_config;
      last_vertex = Array.make 16 (-1);
      used = Array.make 16 [];
      children = Array.make 16 [];
      count = 0 }
  in
  ignore
    (add_node t ~parent:None ~step:None ~config:root_config ~last_vertex:(-1)
       ~used:[] ~depth:0);
  t

let size t = t.count
let children t id = t.children.(id)
let parent t id = match t.nodes.(id) with p, _, _ -> p
let step t id = match t.nodes.(id) with _, s, _ -> s
let depth t id = match t.nodes.(id) with _, _, d -> d
let config t id = t.configs.(id)
let dag t = t.dag

(* The candidate one-step extensions of a node, per the branch points
   documented above. *)
let extension_steps t id =
  let cfg = t.configs.(id) in
  let last =
    if t.last_vertex.(id) < 0 then None else Some (Dag.vertex t.dag t.last_vertex.(id))
  in
  let candidates = Dag.extensions t.dag ~last ~used:t.used.(id) ~width:t.width in
  List.concat_map
    (fun v ->
       let p = v.Dag.v_proc in
       match t.algo.Pure.a_pending_invocation cfg.Schedule.states.(p) with
       | Some l ->
         [ { Schedule.s_vertex = v.Dag.v_id; s_recv = None; s_invoke = Some (l, false) };
           { Schedule.s_vertex = v.Dag.v_id; s_recv = None; s_invoke = Some (l, true) } ]
       | None ->
         (match Schedule.oldest cfg p with
          | None -> [ { Schedule.s_vertex = v.Dag.v_id; s_recv = None; s_invoke = None } ]
          | Some m ->
            (* The empty-message step next to a deliverable one is what
               hooks are made of; it doubles branching, so it is opt-in. *)
            let receive =
              { Schedule.s_vertex = v.Dag.v_id; s_recv = Some m; s_invoke = None }
            in
            if t.allow_lambda then
              [ receive;
                { Schedule.s_vertex = v.Dag.v_id; s_recv = None; s_invoke = None } ]
            else [ receive ]))
    candidates

let expand_node t id =
  List.iter
    (fun (s : Schedule.step) ->
       let config = Schedule.apply ~dag:t.dag t.algo t.configs.(id) s in
       ignore
         (add_node t ~parent:(Some id) ~step:(Some s) ~config
            ~last_vertex:s.Schedule.s_vertex
            ~used:(s.Schedule.s_vertex :: t.used.(id))
            ~depth:(depth t id + 1)))
    (extension_steps t id)

(* Breadth-first materialization up to the given budgets: nodes are created
   in BFS order, so a single pass over ids in creation order visits the
   frontier in order. *)
let expand t ~max_depth ~max_nodes =
  let rec go id =
    if id < t.count && t.count < max_nodes then begin
      if depth t id < max_depth then expand_node t id;
      go (id + 1)
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Tags and valency (Section 4)                                        *)
(* ------------------------------------------------------------------ *)

type tag = { tg_values : bool list; tg_invalid : bool }

(* The k-tag of every node, computed bottom-up over the materialized tree:
   the values returned for instance k in any explored descendant run, plus
   the invalidity mark when some descendant run returns two different
   values for k. *)
let tags t ~instance =
  let tags = Array.make t.count { tg_values = []; tg_invalid = false } in
  let merge a b =
    { tg_values = List.sort_uniq Bool.compare (a.tg_values @ b.tg_values);
      tg_invalid = a.tg_invalid || b.tg_invalid }
  in
  (* Nodes are created in BFS order, so children always have larger ids:
     a reverse scan is a valid bottom-up pass. *)
  let rec scan id =
    if id >= 0 then begin
      let own =
        { tg_values = Schedule.values_for t.configs.(id) ~instance;
          tg_invalid = Schedule.conflicting t.configs.(id) ~instance }
      in
      let with_children =
        List.fold_left (fun acc c -> merge acc tags.(c)) own (children t id)
      in
      tags.(id) <-
        (if Schedule.enabled t.configs.(id) ~instance then with_children
         else { tg_values = []; tg_invalid = false });
      scan (id - 1)
    end
  in
  scan (t.count - 1);
  tags

let is_bivalent tag = List.mem false tag.tg_values && List.mem true tag.tg_values

let is_univalent tag v =
  (match tag.tg_values with [ x ] -> Bool.equal x v | _ -> false)
  && not tag.tg_invalid

let pp_tag ppf tag =
  Fmt.pf ppf "{%a%s}" (Fmt.list ~sep:Fmt.comma Fmt.bool) tag.tg_values
    (if tag.tg_invalid then ",bot" else "")
