(* Configurations and schedule steps for the CHT simulation (Appendix B.3).

   A configuration holds every process's automaton state, the per-process
   FIFO message buffers and the cumulative decision log.  A step is
   triggered by a DAG vertex [p, d, k]: process p takes one step in which it
   receives the oldest message addressed to it (or the empty message
   lambda), or accepts an input (an invocation of proposeEC with a chosen
   value), sees failure-detector value d, and sends its messages. *)

open Simulator.Types

type step = {
  s_vertex : int;  (* DAG vertex id supplying (process, detector value) *)
  s_recv : (proc_id * Pure.pmsg) option;
  s_invoke : (int * bool) option;
}

type 'state config = {
  states : 'state array;
  buffers : (proc_id * Pure.pmsg) list array;  (* oldest first *)
  decisions : (proc_id * int * bool) list;  (* chronological *)
}

let initial (algo : 'state Pure.algo) ~n =
  { states = Array.init n (fun p -> algo.Pure.a_init ~n p);
    buffers = Array.make n [];
    decisions = [] }

let oldest config p =
  match config.buffers.(p) with [] -> None | m :: _ -> Some m

(* Steps are content-equal when they would drive the automaton identically;
   the DAG vertex id may differ (two samples with the same value). *)
let same_step_content dag a b =
  let va = Dag.vertex dag a.s_vertex and vb = Dag.vertex dag b.s_vertex in
  va.Dag.v_proc = vb.Dag.v_proc
  && Fd_value.equal va.Dag.v_value vb.Dag.v_value
  && a.s_recv = b.s_recv
  && a.s_invoke = b.s_invoke

let apply ~dag (algo : 'state Pure.algo) config step =
  let v = Dag.vertex dag step.s_vertex in
  let p = v.Dag.v_proc in
  let n = Array.length config.states in
  let buffers = Array.copy config.buffers in
  (match step.s_recv with
   | None -> ()
   | Some m ->
     (match buffers.(p) with
      | m' :: rest when m' = m -> buffers.(p) <- rest
      | _ -> invalid_arg "Schedule.apply: received message is not the oldest pending"));
  let state', sends, decs =
    algo.Pure.a_step ~n ~self:p config.states.(p)
      ~recv:step.s_recv ~fd:v.Dag.v_value ~invoke:step.s_invoke
  in
  List.iter (fun (dst, m) -> buffers.(dst) <- buffers.(dst) @ [ (p, m) ]) sends;
  let states = Array.copy config.states in
  states.(p) <- state';
  { states;
    buffers;
    decisions = config.decisions @ List.map (fun (l, v) -> (p, l, v)) decs }

(* Values decided for instance [k] anywhere in the configuration's run. *)
let values_for config ~instance =
  List.sort_uniq Bool.compare
    (List.filter_map (fun (_, l, v) -> if l = instance then Some v else None)
       config.decisions)

(* Two different values returned for the same instance within this single
   run: the "bottom" tag of Section 4 (the vertex is k-invalid). *)
let conflicting config ~instance = List.length (values_for config ~instance) > 1

(* The run contains a response to proposeEC_{k-1} (k-enabledness). *)
let enabled config ~instance =
  instance = 1 || List.exists (fun (_, l, _) -> l = instance - 1) config.decisions

let pp_step ~dag ppf step =
  let v = Dag.vertex dag step.s_vertex in
  Fmt.pf ppf "(%a,%a,%a%a)" pp_proc v.Dag.v_proc
    (Fmt.option ~none:(Fmt.any "lambda") (Fmt.pair ~sep:(Fmt.any ":") pp_proc Pure.pp_pmsg))
    step.s_recv Fd_value.pp v.Dag.v_value
    (Fmt.option (fun ppf (l, b) -> Fmt.pf ppf ",invoke%d(%b)" l b))
    step.s_invoke
