(* The failure-detector sample DAG G of Appendix B.2.

   A vertex [p, d, k] records that p's k-th query of its detector module
   returned d; an edge (u, v) records that u's sample was taken, and known
   to v's process, before v was taken.  The communication task of Figure 1
   makes the local DAGs of correct processes converge to a common infinite
   DAG with properties (1)-(4) of Appendix B.2.

   We build the DAG synthetically from a failure pattern and a sampler:
   process p takes its k-th sample at time [k * period + p] (while alive),
   and an edge (u, v) exists iff u was sampled at least [gossip] ticks
   before v (its sample had time to propagate), or u and v belong to the
   same process with u earlier.  This satisfies all four CHT properties —
   including transitivity — and is deterministic, which is what the tests
   and the extraction benches need.  A prefix of the DAG (what is visible
   at a given time) models the local DAG G_p(t) of a correct process. *)

open Simulator
open Simulator.Types

type vertex = {
  v_id : int;  (* global creation order: the CHT "m-based" vertex order *)
  v_proc : proc_id;
  v_index : int;  (* k: this is v_proc's k-th sample *)
  v_time : time;
  v_value : Fd_value.t;
}

module Int_set = Set.Make (Int)

type t = {
  pattern : Failures.pattern;
  gossip : int;
  vertices : vertex array;  (* sorted by v_id, i.e. by (v_time, v_proc) *)
  (* [None]: the edge relation is the synthetic gossip-time rule below.
     [Some preds]: explicit predecessor id sets, as exported from the
     engine-run communication task (Dag_protocol). *)
  explicit_preds : Int_set.t array option;
}

let build ~pattern ~sampler ~period ~gossip ~rounds =
  if period < 1 then invalid_arg "Dag.build: period must be >= 1";
  if gossip < 1 then invalid_arg "Dag.build: gossip must be >= 1";
  let n = Failures.n pattern in
  let cells = ref [] in
  for k = 1 to rounds do
    for p = 0 to n - 1 do
      let time = (k * period) + p in
      if Failures.is_alive pattern p time then
        cells := (time, p, k) :: !cells
    done
  done;
  let compare_cell (t1, p1, k1) (t2, p2, k2) =
    let c = Int.compare t1 t2 in
    if c <> 0 then c
    else
      let c = Int.compare p1 p2 in
      if c <> 0 then c else Int.compare k1 k2
  in
  let ordered = List.sort compare_cell (List.rev !cells) in
  let vertices =
    Array.of_list
      (List.mapi
         (fun i (time, p, k) ->
            { v_id = i; v_proc = p; v_index = k; v_time = time;
              v_value = sampler p time })
         ordered)
  in
  { pattern; gossip; vertices; explicit_preds = None }

(* A DAG with explicit edges, e.g. exported from the engine-run
   communication task.  [edges] are (pred id, succ id) pairs over the given
   vertex array (ids must equal array positions); the same-process sample
   order is added implicitly. *)
let of_explicit ~pattern ~vertices ~edges =
  Array.iteri
    (fun i v ->
       if v.v_id <> i then invalid_arg "Dag.of_explicit: ids must match positions")
    vertices;
  let preds = Array.make (Array.length vertices) Int_set.empty in
  List.iter
    (fun (u, v) ->
       if u < 0 || v < 0 || u >= Array.length vertices || v >= Array.length vertices
       then invalid_arg "Dag.of_explicit: edge out of range";
       preds.(v) <- Int_set.add u preds.(v))
    edges;
  Array.iteri
    (fun i v ->
       Array.iteri
         (fun j u ->
            if u.v_proc = v.v_proc && u.v_index < v.v_index then
              preds.(i) <- Int_set.add j preds.(i))
         vertices)
    vertices;
  { pattern; gossip = 1; vertices; explicit_preds = Some preds }

let vertices t = Array.to_list t.vertices
let vertex t id = t.vertices.(id)
let size t = Array.length t.vertices

let pattern t = t.pattern

(* Edge relation: explicit when present; otherwise the synthetic rule —
   same process in sample order, or enough time for gossip. *)
let has_edge t u v =
  match t.explicit_preds with
  | Some preds -> Int_set.mem u.v_id preds.(v.v_id)
  | None ->
    (u.v_proc = v.v_proc && u.v_index < v.v_index)
    || u.v_time + t.gossip <= v.v_time

let succs t u =
  List.filter (fun v -> has_edge t u v) (vertices t)

(* Renumber ids to array positions and per-process sample indices to 1..k,
   so a filtered DAG is again a well-formed DAG; explicit edges (if any)
   are remapped and restricted to the kept vertices. *)
let renumber t kept =
  let old_to_new = Hashtbl.create 64 in
  List.iteri (fun i v -> Hashtbl.add old_to_new v.v_id i) kept;
  let next_index = Hashtbl.create 8 in
  let vertices =
    Array.of_list
      (List.mapi
         (fun i v ->
            let k = 1 + Option.value ~default:0 (Hashtbl.find_opt next_index v.v_proc) in
            Hashtbl.replace next_index v.v_proc k;
            { v with v_id = i; v_index = k })
         kept)
  in
  let explicit_preds =
    Option.map
      (fun preds ->
         Array.of_list
           (List.map
              (fun v ->
                 Int_set.fold
                   (fun old acc ->
                      match Hashtbl.find_opt old_to_new old with
                      | Some fresh -> Int_set.add fresh acc
                      | None -> acc)
                   preds.(v.v_id) Int_set.empty)
              kept))
      t.explicit_preds
  in
  { pattern = t.pattern; gossip = t.gossip; vertices; explicit_preds }

(* The prefix of the DAG visible by [horizon]: the CHT local DAG G_p(t),
   identical at all correct processes up to gossip lag. *)
let prefix t ~horizon =
  renumber t (List.filter (fun v -> v.v_time <= horizon) (Array.to_list t.vertices))

(* A window of the DAG: the samples taken during [from_horizon, to_horizon],
   reinterpreted as a fresh run starting at the window.  The emulation loop
   slides this window forward: once it passes all crashes and detector
   stabilizations, the window contains only stable samples of correct
   processes, which is how the bounded reduction realizes CHT's "valencies
   eventually stabilize" on finite budgets. *)
let window t ~from_horizon ~to_horizon =
  renumber t
    (List.filter
       (fun v -> from_horizon <= v.v_time && v.v_time <= to_horizon)
       (Array.to_list t.vertices))

(* The candidate next steps along a path whose last vertex is [last]: for
   every process, its [width] earliest unused samples reachable from [last]
   (every vertex when the path is empty).  Restricting to a small [width]
   keeps simulation trees tractable while still offering, per process,
   several different detector values for the same automaton state — which is
   what forks and hooks are made of. *)
let extensions t ~last ~used ~width =
  let ok v =
    (not (List.mem v.v_id used))
    && (match last with None -> true | Some u -> has_edge t u v)
  in
  let per_proc = Hashtbl.create 8 in
  Array.iter
    (fun v ->
       if ok v then begin
         let sofar = Option.value ~default:[] (Hashtbl.find_opt per_proc v.v_proc) in
         if List.length sofar < width then
           Hashtbl.replace per_proc v.v_proc (sofar @ [ v ])
       end)
    t.vertices;
  (* detlint: sorted — accumulation order is discarded by the v_id sort below *)
  Hashtbl.fold (fun _ vs acc -> vs @ acc) per_proc []
  |> List.sort (fun a b -> Int.compare a.v_id b.v_id)

(* CHT property checks (Appendix B.2), used by the test suite. *)

(* (1a) every vertex was sampled while its process was alive, with the value
   the history prescribes. *)
let check_sampling t ~sampler =
  Array.for_all
    (fun v ->
       Failures.is_alive t.pattern v.v_proc v.v_time
       && Fd_value.equal v.v_value (sampler v.v_proc v.v_time))
    t.vertices

(* (1b)+(2) edges respect time and same-process sample order is total. *)
let check_order t =
  let ok = ref true in
  Array.iter
    (fun u ->
       Array.iter
         (fun v ->
            if has_edge t u v then begin
              if u.v_time >= v.v_time then ok := false
            end;
            if u.v_proc = v.v_proc && u.v_index < v.v_index && not (has_edge t u v)
            then ok := false)
         t.vertices)
    t.vertices;
  !ok

(* (3) transitivity. *)
let check_transitive t =
  let vs = t.vertices in
  let ok = ref true in
  Array.iter
    (fun u ->
       Array.iter
         (fun v ->
            if has_edge t u v then
              Array.iter
                (fun w -> if has_edge t v w && not (has_edge t u w) then ok := false)
                vs)
         vs)
    vs;
  !ok

(* (4) fairness on the built prefix: every correct process has a sample
   after every vertex that is old enough to gossip to it. *)
let check_fairness t ~rounds ~period =
  let horizon = rounds * period in
  List.for_all
    (fun p ->
       let last_sample =
         Array.fold_left
           (fun acc v -> if v.v_proc = p then max acc v.v_time else acc)
           (-1) t.vertices
       in
       last_sample >= horizon - period)
    (Failures.correct t.pattern)

let pp_vertex ppf v =
  Fmt.pf ppf "[%a,%a,%d]@%d" pp_proc v.v_proc Fd_value.pp v.v_value v.v_index v.v_time

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_vertex) (vertices t)
