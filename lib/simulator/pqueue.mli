(** A stable priority queue (mutable array-based binary heap) used for the
    event queue.

    Elements with equal priorities are returned in insertion (FIFO) order,
    which makes simulation runs fully deterministic.  The pop order is
    identical to {!Pqueue_persistent}, the original persistent leftist heap
    retained for differential testing. *)

type 'a t

val create : unit -> 'a t
(** A fresh empty queue.  Queues are mutable and must not be shared across
    concurrent runs; every {!Engine.run} allocates its own. *)

val is_empty : 'a t -> bool
val size : 'a t -> int

val insert : 'a t -> prio:int -> 'a -> unit
(** [insert t ~prio v] adds [v] with priority [prio] (smaller pops first). *)

val pop : 'a t -> (int * 'a) option
(** [pop t] removes and returns the minimum-priority element, FIFO among
    ties, or [None] if the queue is empty.  Allocates the result pair;
    the engine's event loop uses the zero-allocation triple below. *)

val min_prio : 'a t -> int
(** Priority of the next element to pop.  Zero-allocation; raises
    [Invalid_argument] on an empty queue (check {!is_empty} first). *)

val min_value : 'a t -> 'a
(** The next element to pop, without removing it.  Zero-allocation;
    raises [Invalid_argument] on an empty queue. *)

val remove_min : 'a t -> unit
(** Discard the minimum element ([min_prio]/[min_value] read it first).
    Zero-allocation; raises [Invalid_argument] on an empty queue. *)

val peek_prio : 'a t -> int option
(** Priority of the next element to pop, if any. *)

val fold : ('acc -> int -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Fold over all elements in unspecified order. *)

val to_sorted_list : 'a t -> (int * 'a) list
(** All elements in pop order, without disturbing the queue.  O(n log n);
    intended for tests. *)
