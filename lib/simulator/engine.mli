(** The discrete-event simulation engine: the executable form of the paper's
    computational model (Section 2).

    Each process is a deterministic automaton whose steps are triggered by
    message deliveries, periodic local timeouts and external inputs.  Every
    run is a pure function of its {!config}: the same configuration always
    produces the same trace. *)

open Types

type ctx = {
  self : proc_id;
  n : int;
  now : unit -> time;  (** current global time — for oracles, not protocols *)
  send : proc_id -> Msg.payload -> unit;
  broadcast : Msg.payload -> unit;  (** send to every process, including self *)
  output : Io.output -> unit;  (** record an output-history event *)
  rng : Rng.t;  (** per-process deterministic randomness *)
}
(** Capabilities handed to a process at construction time. *)

type node = {
  on_message : src:proc_id -> Msg.payload -> unit;
  on_timer : unit -> unit;
  on_input : Io.input -> unit;
}
(** A protocol component.  Components must ignore payloads and inputs they do
    not recognize, so several components can share one process. *)

val idle_node : node

val combine : node -> node -> node
(** Run two components side by side; both see every event. *)

val stack : node list -> node

type config = {
  n : int;
  pattern : Failures.pattern;
  delay : Net.model;  (** stateful models are re-instantiated per run *)
  faults : Net.fault_model;
      (** adversarial drop/duplication of individual sends; the default
          {!Net.no_faults} keeps the engine on the historical fault-free
          path, byte-identical to pre-fault builds.  A dropped send is
          reported through the sink's [on_drop] at its send time. *)
  timer_period : int;  (** the paper's local-timeout period, Delta_t *)
  seed : int;
  deadline : time;  (** run horizon; only truncation, never unfairness *)
  sink : Sink.t option;
      (** where run events go.  [None] (the default) records the full
          input/output history into the returned trace; [Some s] sends
          every event to [s] instead, and the returned trace stays empty —
          combine with {!Sink.recorder} and {!Sink.tee} to observe both. *)
}

val default_config : n:int -> deadline:time -> config
(** Failure-free, unit delays, timer period 2, seed 42, recording sink. *)

val run :
  config ->
  make_node:(ctx -> node) ->
  inputs:(time * proc_id * Io.input) list ->
  Trace.t
(** Run to the deadline and return the trace.  Processes take no steps
    while down (permanently crashed, or inside a downtime window of the
    pattern); messages addressed to them are dropped; all other messages
    are delivered after their model delay.

    Crash-recovery: for every downtime window [(p, at, recover_at)] of
    [config.pattern], the engine discards p's in-flight volatile state at
    [at] (the automaton is dropped; nothing survives but what it wrote to
    its own stable store) and restarts p at [recover_at] by invoking
    [make_node] again with a fresh ctx — [make_node] is the per-process
    restart hook, and is where a recoverable protocol replays its store
    (see lib/persist and Ec_core.Recoverable).  The restarted process's
    timers resume within one timer period.  Both transitions are reported
    through the sink's [on_crash]/[on_recover]; the default recorder
    ignores them, so crash-stop runs are byte-identical to pre-recovery
    builds. *)

val run_with :
  config ->
  make_node:(ctx -> node * 'a) ->
  inputs:(time * proc_id * Io.input) list ->
  Trace.t * 'a array
(** Like {!run} but also returns one caller-chosen handle per process
    (typically a view on the protocol's internal state).  If a process was
    restarted, its slot holds the handle of the latest incarnation. *)
