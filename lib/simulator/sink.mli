(** Trace sinks: the engine's observability abstraction.

    The engine emits every observable event of a run into exactly one sink.
    The default is {!recorder} over a {!Trace.t} (full input/output history,
    unchanged [Properties] checkers); {!counters} keeps O(1) scalars plus
    per-process send-to-deliver latency samples for cheap large sweeps;
    {!jsonl} streams events for offline analysis.  A sink is private to one
    run and is called from a single domain in deterministic event order. *)

open Types

type t = {
  on_input : at:time -> proc:proc_id -> Io.input -> unit;
  on_output : at:time -> proc:proc_id -> Io.output -> unit;
  on_send : Msg.envelope -> unit;
  on_deliver : at:time -> Msg.envelope -> unit;
  on_drop : at:time -> Msg.envelope -> unit;
  on_step : at:time -> proc:proc_id -> unit;
  on_crash : at:time -> proc:proc_id -> unit;
      (** the process enters a downtime window of the failure pattern *)
  on_recover : at:time -> proc:proc_id -> unit;
      (** the engine restarted the process (see {!Engine.run_with}) *)
}

val null : t
(** Observes nothing. *)

val tee : t -> t -> t
(** [tee a b] forwards every event to [a] then [b]. *)

val on_every : (unit -> unit) -> t
(** [on_every f] calls [f ()] once per observed event, ignoring payloads.
    Tee it in front of a recorder to give a watchdog (event budget,
    wall-clock deadline) a chance to raise out of a wedged run at every
    engine-observable event. *)

val recorder : Trace.t -> t
(** The historical behaviour: record entries and counters into [trace].
    Crash/recover marks are ignored, so traces of crash-stop runs are
    byte-identical to pre-recovery builds. *)

(** {2 Counters-only sink} *)

type counters
(** Scalar counters plus per-process latency samples; no per-entry
    allocation beyond one unboxed int per delivery. *)

val counters : n:int -> counters
val counters_sink : counters -> t

val sent : counters -> int
val delivered : counters -> int
val dropped : counters -> int
val steps : counters -> int
val inputs : counters -> int
val outputs : counters -> int
val last_time : counters -> time

val latencies : counters -> proc_id -> int array
(** Send-to-deliver latencies, in ticks, of messages delivered to [p], in
    delivery order. *)

val all_latencies : counters -> int array

type latency_summary =
  { count : int; p50 : int; p95 : int; p99 : int; p999 : int; max : int }

val nearest_rank : int array -> permille:int -> int
(** [nearest_rank sorted ~permille] is the deterministic nearest-rank
    quantile of an ascending-sorted, non-empty sample: the value at 1-based
    rank [ceil(permille/1000 * len)], computed entirely in integers (p50 =
    500 permille, p999 = 999 permille).  Raises [Invalid_argument] on an
    empty sample or a permille outside [0, 1000]. *)

val summarize : int array -> latency_summary option
(** Nearest-rank summary of an arbitrary (unsorted) sample; [None] when
    empty.  Every quantile is a member of the sample. *)

val latency_summary : counters -> proc_id -> latency_summary option
val total_latency_summary : counters -> latency_summary option
val pp_latency_summary : Format.formatter -> latency_summary -> unit

(** {2 JSONL streaming sink} *)

val jsonl : emit:(string -> unit) -> t
(** One JSON object per event, passed to [emit] without a trailing newline.
    Inputs and outputs are rendered through their registered printers;
    message payloads stay opaque and are identified by uid/src/dst/times. *)

val json_escape : string -> string

val with_jsonl : string -> (t -> 'a) -> 'a
(** [with_jsonl path f] opens [path], passes [f] a {!jsonl} sink writing
    one event per line, and flushes and closes the channel whether [f]
    returns or raises (bracket style). *)

(** {2 Binary framed sink} *)

val binary : emit:(string -> unit) -> t
(** The binary counterpart of {!jsonl}: one [Persist.Frame] event record
    (framed, CRC-checksummed bytes) per event, passed to [emit].  The
    caller owns the file header ({!Persist.Frame.header}); decoding the
    stream and exporting with [Persist.Frame.to_jsonl] reproduces the
    {!jsonl} stream byte for byte. *)

val with_binary : string -> (t -> 'a) -> 'a
(** [with_binary path f] opens [path] in binary mode, writes the format
    header, passes [f] a {!binary} sink, and flushes and closes the
    channel whether [f] returns or raises (bracket style). *)
