(* A tiny observer registry: protocol services expose "on_event" hooks so
   transformations can stack on top of each other (Algorithm 1 listens to EC
   decisions, Algorithm 2 listens to ETOB deliveries, ...).

   [fire] is on the engine's hot path (every delivery and decision fans out
   through it), so the registration-order callback sequence is kept as a
   prebuilt array snapshot: [register] pays the O(n) rebuild — registration
   happens only at node construction — and [fire] is a plain
   allocation-free index loop.  Callbacks are stored most-recent-first so
   the list work before the rebuild stays O(1). *)

type 'a t = {
  mutable rev_callbacks : ('a -> unit) list;
  mutable snapshot : ('a -> unit) array;
}

let create () = { rev_callbacks = []; snapshot = [||] }

let register t f =
  t.rev_callbacks <- f :: t.rev_callbacks;
  t.snapshot <- Array.of_list (List.rev t.rev_callbacks)

let[@alloc.zero] fire t x =
  for i = 0 to Array.length t.snapshot - 1 do
    (* detlint: allow A2 observer callbacks are the extension boundary; charged to the E23 bytes-per-event budget *)
    (Array.unsafe_get t.snapshot i) x
  done

let count t = Array.length t.snapshot
