(* A tiny observer registry: protocol services expose "on_event" hooks so
   transformations can stack on top of each other (Algorithm 1 listens to EC
   decisions, Algorithm 2 listens to ETOB deliveries, ...).

   Callbacks are stored most-recent-first so registration is O(1) — the old
   append-with-[@] made registering n listeners O(n^2) — and [fire] walks
   the reversal so observers still see events in registration order. *)

type 'a t = { mutable rev_callbacks : ('a -> unit) list }

let create () = { rev_callbacks = [] }

let register t f = t.rev_callbacks <- f :: t.rev_callbacks

let fire t x = List.iter (fun f -> f x) (List.rev t.rev_callbacks)

let count t = List.length t.rev_callbacks
