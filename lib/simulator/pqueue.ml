(* A stable priority queue of simulation events, implemented as a mutable
   array-based binary heap keyed by (priority, insertion sequence number).

   Stability (FIFO order among equal priorities) matters for reproducibility:
   two events scheduled for the same tick are processed in the order they
   were scheduled, so a run is a pure function of the configuration.  The
   (prio, seq) key is identical to the one used by the original persistent
   implementation (kept as [Pqueue_persistent]), so the two pop in exactly
   the same order — a differential test in the suite holds us to that.

   The heap is mutable on purpose: the engine's event loop is the hottest
   path in the system, and the persistent leftist heap allocated a node per
   insert plus O(log n) nodes per merge.  Here inserts and pops allocate
   nothing beyond the amortized array growth.  Priorities and sequence
   numbers live in unboxed int arrays. *)

type 'a t = {
  mutable prios : int array;
  mutable seqs : int array;
  mutable values : 'a array;  (* meaningful in [0, size) *)
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  { prios = [||]; seqs = [||]; values = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0
let size t = t.size

(* Lexicographic (prio, seq) order; seq values are unique so this is total. *)
let leq t i j =
  t.prios.(i) < t.prios.(j)
  || (t.prios.(i) = t.prios.(j) && t.seqs.(i) <= t.seqs.(j))

let swap t i j =
  let p = t.prios.(i) in t.prios.(i) <- t.prios.(j); t.prios.(j) <- p;
  let s = t.seqs.(i) in t.seqs.(i) <- t.seqs.(j); t.seqs.(j) <- s;
  let v = t.values.(i) in t.values.(i) <- t.values.(j); t.values.(j) <- v

let grow t filler =
  let cap =
    if 2 * Array.length t.values < 16 then 16 else 2 * Array.length t.values
  in
  (* detlint: allow A1 amortized doubling: growth copies are off the steady-state insert path *)
  let prios = Array.make cap 0 in
  (* detlint: allow A1 amortized doubling: growth copies are off the steady-state insert path *)
  let seqs = Array.make cap 0 in
  (* detlint: allow A1 amortized doubling: growth copies are off the steady-state insert path *)
  let values = Array.make cap filler in
  Array.blit t.prios 0 prios 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.values 0 values 0 t.size;
  t.prios <- prios; t.seqs <- seqs; t.values <- values

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if leq t i parent then begin swap t i parent; sift_up t parent end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && leq t l i then l else i in
  let smallest = if r < t.size && leq t r smallest then r else smallest in
  if smallest <> i then begin swap t i smallest; sift_down t smallest end

let insert t ~prio value =
  if t.size = Array.length t.values then grow t value;
  let i = t.size in
  t.prios.(i) <- prio;
  t.seqs.(i) <- t.next_seq;
  t.values.(i) <- value;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t i

(* Zero-allocation min access: the engine's event loop reads the head
   with [min_prio]/[min_value] and discards it with [remove_min], so the
   steady-state pop path builds no option or tuple.  [pop] below remains
   the convenient interface for non-hot callers. *)

let[@alloc.zero] min_prio t =
  (* detlint: allow A1 empty-queue misuse raises on the error path only; the engine checks is_empty first *)
  if t.size = 0 then invalid_arg "Pqueue.min_prio: empty queue"
  else t.prios.(0)

let[@alloc.zero] min_value t =
  (* detlint: allow A1 empty-queue misuse raises on the error path only; the engine checks is_empty first *)
  if t.size = 0 then invalid_arg "Pqueue.min_value: empty queue"
  else t.values.(0)

let[@alloc.zero] remove_min t =
  (* detlint: allow A1 empty-queue misuse raises on the error path only; the engine checks is_empty first *)
  if t.size = 0 then invalid_arg "Pqueue.remove_min: empty queue"
  else begin
    let last = t.size - 1 in
    swap t 0 last;
    t.size <- last;
    (* Drop the popped value's reference so the heap never pins dead
       events; slot [last] still holds a live value when size > 0. *)
    if last > 0 then t.values.(last) <- t.values.(0);
    sift_down t 0
  end

let pop t =
  if t.size = 0 then None
  else begin
    let prio = t.prios.(0) and value = t.values.(0) in
    remove_min t;
    (* detlint: allow A1 legacy interface allocates its option-of-pair result; the engine loop uses min_prio/min_value/remove_min instead *)
    Some (prio, value)
  end

let peek_prio t =
  (* detlint: allow A1 option result; hot callers read min_prio after is_empty *)
  if t.size = 0 then None else Some t.prios.(0)

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.size - 1 do
    acc := f !acc t.prios.(i) t.values.(i)
  done;
  !acc

(* Non-destructive: drains a structural copy. *)
let to_sorted_list t =
  let copy =
    { prios = Array.copy t.prios;
      seqs = Array.copy t.seqs;
      values = Array.copy t.values;
      size = t.size;
      next_seq = t.next_seq }
  in
  let rec drain acc =
    match pop copy with
    | None -> List.rev acc
    | Some pv -> drain (pv :: acc)
  in
  drain []
