(** The original persistent stable priority queue (leftist heap), retained
    as the reference implementation for differential tests against the
    mutable {!Pqueue}.  Same (prio, seq) key, same pop order. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val insert : 'a t -> prio:int -> 'a -> 'a t
(** [insert t ~prio v] adds [v] with priority [prio] (smaller pops first). *)

val pop : 'a t -> ((int * 'a) * 'a t) option
(** [pop t] removes and returns the minimum-priority element, FIFO among
    ties, or [None] if the queue is empty. *)

val peek_prio : 'a t -> int option
(** Priority of the next element to pop, if any. *)

val fold : ('acc -> int -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Fold over all elements in unspecified order. *)

val to_sorted_list : 'a t -> (int * 'a) list
(** All elements in pop order. O(n log n); intended for tests. *)
