(* Network delay models.

   The paper assumes reliable links between every pair of processes in an
   asynchronous system: messages sent to correct processes are eventually
   received, but with no bound on delay.  A delay model assigns every send a
   finite positive delay, so eventual delivery holds by construction;
   asynchrony and partitions are modelled as (finitely) large delays.

   A [model] is what run configurations carry.  Most models are stateless
   pure functions shared freely across runs; stateful models (e.g. [fifo])
   carry a creation thunk instead, which the engine forces once per
   [Engine.run] so that no per-run mutable state ever leaks from one run
   into the next.  This is what keeps runs pure functions of their
   configuration even when one configuration value is reused for a whole
   seed sweep, including sweeps executing in parallel domains. *)

open Types

type delay_fn = src:proc_id -> dst:proc_id -> now:time -> rng:Rng.t -> int

type model =
  | Stateless of delay_fn
  | Per_run of (unit -> delay_fn)

let of_fn f = Stateless f
let per_run mk = Per_run mk

let instantiate = function Stateless f -> f | Per_run mk -> mk ()

(* Map a delay_fn transformer over a model, preserving statefulness. *)
let lift f = function
  | Stateless g -> Stateless (f g)
  | Per_run mk -> Per_run (fun () -> f (mk ()))

let constant d =
  if d < 1 then invalid_arg "Net.constant: delay must be >= 1";
  Stateless (fun ~src:_ ~dst:_ ~now:_ ~rng:_ -> d)

let uniform ~min ~max =
  if min < 1 || max < min then invalid_arg "Net.uniform: need 1 <= min <= max";
  Stateless (fun ~src:_ ~dst:_ ~now:_ ~rng -> Rng.in_range rng ~min ~max)

(* Local delivery (self messages) in one tick, remote per [remote]. *)
let local_fast ~remote =
  lift
    (fun remote ~src ~dst ~now ~rng ->
       if src = dst then 1 else remote ~src ~dst ~now ~rng)
    remote

(* A partition separates the processes into blocks during [from, until).
   Messages crossing blocks during the partition are delayed until just
   after the partition heals (plus their base delay), which models a
   partition in an asynchronous system with reliable links: nothing is lost,
   everything is late. *)
type partition_spec = {
  blocks : proc_id list list;
  from_time : time;
  until_time : time;
}

let block_index blocks p =
  let rec find i = function
    | [] -> None
    | b :: rest -> if List.mem p b then Some i else find (i + 1) rest
  in
  find 0 blocks

let block_of spec p = block_index spec.blocks p

let same_block_of blocks p q =
  match block_index blocks p, block_index blocks q with
  | Some i, Some j -> i = j
  | _, _ -> true (* processes outside every block are unaffected *)

let same_block spec p q = same_block_of spec.blocks p q

let partitioned spec ~base =
  if spec.until_time < spec.from_time then
    invalid_arg "Net.partitioned: until_time < from_time";
  lift
    (fun base ~src ~dst ~now ~rng ->
       let d = base ~src ~dst ~now ~rng in
       if now >= spec.from_time && now < spec.until_time
          && not (same_block spec src dst)
       then spec.until_time - now + d
       else d)
    base

(* Multi-window partition schedules.  A schedule is a list of disjoint
   [(from, until)] windows in increasing order; during each window,
   cross-block messages are buffered until that window's own heal time
   (plus their base delay) — the single-window [partitioned] semantics
   repeated.  A one-window schedule computes exactly the same delays as
   [partitioned], so existing callers stay byte-identical. *)
let check_schedule ~name windows =
  let rec go prev = function
    | [] -> ()
    | (f, u) :: rest ->
      if u < f then invalid_arg (name ^ ": window with until < from");
      if f < prev then
        invalid_arg (name ^ ": windows must be disjoint and increasing");
      go u rest
  in
  go min_int windows

let window_closing windows now =
  List.find_map
    (fun (f, u) -> if now >= f && now < u then Some u else None)
    windows

let partitioned_windows ~blocks ~windows ~base =
  check_schedule ~name:"Net.partitioned_windows" windows;
  lift
    (fun base ~src ~dst ~now ~rng ->
       let d = base ~src ~dst ~now ~rng in
       match window_closing windows now with
       | Some heal when not (same_block_of blocks src dst) -> heal - now + d
       | _ -> d)
    base

(* Alternating up/down windows: the partition is down (cut) for [down]
   ticks, then up (healed) for [up] ticks, starting down at [from_time],
   clipped to [until_time] — a flapping bridge.  [repeating_windows
   ~from_time ~until_time ~down ~up] is the schedule of the cut spans. *)
let repeating_windows ~from_time ~until_time ~down ~up =
  if down < 1 || up < 1 then
    invalid_arg "Net.repeating_windows: down and up must be >= 1";
  if until_time < from_time then
    invalid_arg "Net.repeating_windows: until_time < from_time";
  let rec go t acc =
    if t >= until_time then List.rev acc
    else
      let u = min until_time (t + down) in
      go (u + up) ((t, u) :: acc)
  in
  go from_time []

(* An asynchrony burst: during [from, until), delays are inflated by
   [factor].  Used to exercise the "no bound on delay between steps"
   clause without a structured partition. *)
let slow_period ~from_time ~until_time ~factor ~base =
  if factor < 1 then invalid_arg "Net.slow_period: factor must be >= 1";
  lift
    (fun base ~src ~dst ~now ~rng ->
       let d = base ~src ~dst ~now ~rng in
       if now >= from_time && now < until_time then d * factor else d)
    base

let in_window ~from_time ~until_time now = now >= from_time && now < until_time

(* [only = None] means every link; otherwise only the listed directed
   (src, dst) pairs are affected. *)
let on_link only src dst =
  match only with None -> true | Some links -> List.mem (src, dst) links

(* Per-link asynchrony burst: like [slow_period] but confined to chosen
   directed links, so an adversary can slow exactly one channel (e.g. the
   leader's promotes to one follower) while the rest of the network stays
   fast. *)
let slow_links ?only ~from_time ~until_time ~factor base =
  if factor < 1 then invalid_arg "Net.slow_links: factor must be >= 1";
  if until_time < from_time then invalid_arg "Net.slow_links: until < from";
  lift
    (fun base ~src ~dst ~now ~rng ->
       let d = base ~src ~dst ~now ~rng in
       if in_window ~from_time ~until_time now && on_link only src dst then
         d * factor
       else d)
    base

(* Partial synchrony with a global stabilization time (Dwork-Lynch-
   Stockmeyer): before [gst], delays are chaotic up to [chaos_max]; from
   [gst] on, every delay is bounded by [bound].  This is the environment
   in which timeout-based Omega emulations are actually justified — fully
   asynchronous runs admit no Omega implementation at all, which is why
   the paper treats Omega as an oracle. *)
let partial_synchrony ~gst ~bound ~chaos_max =
  if bound < 1 || chaos_max < bound then
    invalid_arg "Net.partial_synchrony: need 1 <= bound <= chaos_max";
  Stateless
    (fun ~src:_ ~dst:_ ~now ~rng ->
       if now >= gst then 1 + Rng.int rng bound
       else 1 + Rng.int rng chaos_max)

(* A stateful FIFO wrapper: per ordered pair (src, dst), a message never
   overtakes an earlier one — its delivery time is clamped to strictly
   after the previous message's.  The paper's links are reliable but not
   FIFO; this wrapper lets experiments isolate how much of a protocol's
   behaviour depends on ordering (e.g. the stale-promote guard of
   Algorithm 5 becomes unnecessary under FIFO).  The clamp table is
   allocated inside the per-run thunk, so one [fifo] model value can be
   reused across any number of runs without cross-run contamination. *)
let fifo_fn ~(base : delay_fn) : delay_fn =
  let last_arrival : (proc_id * proc_id, time) Hashtbl.t = Hashtbl.create 64 in
  fun ~src ~dst ~now ~rng ->
    let d = base ~src ~dst ~now ~rng in
    let arrival = now + max 1 d in
    let arrival =
      match Hashtbl.find_opt last_arrival (src, dst) with
      | Some prev when arrival <= prev -> prev + 1
      | Some _ | None -> arrival
    in
    Hashtbl.replace last_arrival (src, dst) arrival;
    arrival - now

let fifo ~base = Per_run (fun () -> fifo_fn ~base:(instantiate base))

let delay_of (f : delay_fn) ~src ~dst ~now ~rng =
  (* detlint: allow A2 the delay model is the experiment's plug-in point; model cost is governed by the E23 bytes-per-event budget *)
  let d = f ~src ~dst ~now ~rng in
  if d < 1 then 1 else d

(* ------------------------------------------------------------------ *)
(* Link faults                                                         *)
(* ------------------------------------------------------------------ *)

(* Delay models keep the paper's reliable-links assumption: every send
   eventually arrives.  Fault models deliberately step OUTSIDE that model —
   they drop or duplicate individual sends — and exist for the adversarial
   explorer: windowed faults that heal before the run ends let eventual
   properties recover while safety properties must survive the abuse.
   [No_faults] is distinguished structurally so the engine can skip fault
   evaluation entirely (and consume no randomness) on the default path,
   keeping historical runs byte-identical. *)

type fault = Deliver | Drop | Duplicate of int (* extra copies, >= 1 *)

type fault_fn = src:proc_id -> dst:proc_id -> now:time -> rng:Rng.t -> fault

type fault_model =
  | No_faults
  | Fault_stateless of fault_fn
  | Fault_per_run of (unit -> fault_fn)

let no_faults = No_faults
let fault_of_fn f = Fault_stateless f
let fault_per_run mk = Fault_per_run mk

let instantiate_faults = function
  | No_faults -> None
  | Fault_stateless f -> Some f
  | Fault_per_run mk -> Some (mk ())

let check_window ~name ~from_time ~until_time =
  if from_time < 0 then invalid_arg (name ^ ": negative from_time");
  if until_time < from_time then invalid_arg (name ^ ": until_time < from_time")

(* Drop each message sent inside the window with probability [pct]/100
   ([pct = 100] drops deterministically and consumes no randomness). *)
let drop_window ?only ~from_time ~until_time pct =
  check_window ~name:"Net.drop_window" ~from_time ~until_time;
  if pct < 1 || pct > 100 then invalid_arg "Net.drop_window: pct must be in [1, 100]";
  Fault_stateless
    (fun ~src ~dst ~now ~rng ->
       if in_window ~from_time ~until_time now
       && on_link only src dst
       && (pct = 100 || Rng.int rng 100 < pct)
       then Drop
       else Deliver)

(* Deliver [copies] extra copies of each message sent inside the window,
   each with an independently drawn delay. *)
let duplicate_window ?only ~from_time ~until_time copies =
  check_window ~name:"Net.duplicate_window" ~from_time ~until_time;
  if copies < 1 then invalid_arg "Net.duplicate_window: copies must be >= 1";
  Fault_stateless
    (fun ~src ~dst ~now ~rng:_ ->
       if in_window ~from_time ~until_time now && on_link only src dst then
         Duplicate copies
       else Deliver)

(* Lossy partitions: unlike [partitioned] (which buffers cross-block
   sends until heal — reliable links, just late), these *drop* every
   cross-block send inside the window.  Nothing is retransmitted at this
   layer; recovery is the protocol's problem (re-gossip, anti-entropy),
   which is exactly what the partition-hardening machinery exercises.
   Deterministic: no randomness is consumed. *)
let lossy_partition_windows ~blocks ~windows =
  check_schedule ~name:"Net.lossy_partition_windows" windows;
  Fault_stateless
    (fun ~src ~dst ~now ~rng:_ ->
       match window_closing windows now with
       | Some _ when not (same_block_of blocks src dst) -> Drop
       | _ -> Deliver)

let lossy_partition spec =
  check_window ~name:"Net.lossy_partition" ~from_time:spec.from_time
    ~until_time:spec.until_time;
  lossy_partition_windows ~blocks:spec.blocks
    ~windows:[ (spec.from_time, spec.until_time) ]

(* A one-way (asymmetric) partition: during the window, sends from a
   member of [from_block] to a process outside it are dropped, while the
   reverse direction still flows.  This is the adversary against which
   timeout-based leader emulations misbehave: a process may keep hearing
   a leader it cannot answer. *)
let oneway_partition ~from_block ~from_time ~until_time =
  check_window ~name:"Net.oneway_partition" ~from_time ~until_time;
  Fault_stateless
    (fun ~src ~dst ~now ~rng:_ ->
       if in_window ~from_time ~until_time now
       && List.mem src from_block
       && not (List.mem dst from_block)
       then Drop
       else Deliver)

(* A flapping lossy partition: the cut is down for [period] ticks, up for
   [period] ticks, repeating over [from_time, until_time). *)
let flapping_partition ~blocks ~from_time ~until_time ~period =
  if period < 1 then invalid_arg "Net.flapping_partition: period must be >= 1";
  check_window ~name:"Net.flapping_partition" ~from_time ~until_time;
  lossy_partition_windows ~blocks
    ~windows:(repeating_windows ~from_time ~until_time ~down:period ~up:period)

let is_no_faults = function No_faults -> true | _ -> false

(* Combine fault models: any Drop wins, Duplicate extras add up.  Every
   component is evaluated on every send so randomness consumption does not
   depend on earlier components' answers. *)
let compose_faults models =
  match List.filter (fun m -> not (is_no_faults m)) models with
  | [] -> No_faults
  | [ m ] -> m
  | ms ->
    Fault_per_run
      (fun () ->
         let fs =
           List.map (fun m -> Option.get (instantiate_faults m)) ms
         in
         fun ~src ~dst ~now ~rng ->
           List.fold_left
             (fun acc f ->
                let v = f ~src ~dst ~now ~rng in
                match acc, v with
                | Drop, _ | _, Drop -> Drop
                | Duplicate a, Duplicate b -> Duplicate (a + b)
                | Duplicate a, Deliver | Deliver, Duplicate a -> Duplicate a
                | Deliver, Deliver -> Deliver)
             Deliver fs)

let fault_of (f : fault_fn) ~src ~dst ~now ~rng =
  (* detlint: allow A2 the fault model is the experiment's plug-in point; model cost is governed by the E23 bytes-per-event budget *)
  match f ~src ~dst ~now ~rng with
  | Duplicate k when k < 1 -> Deliver
  | v -> v
