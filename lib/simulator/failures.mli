(** Failure patterns and environments (Section 2 of the paper), extended
    with crash-recovery.

    A failure pattern is a function [F : N -> 2^Pi] giving the set of
    processes down at each time.  The paper's model is crash-stop; this
    module additionally supports finitely many downtime windows
    [[at, recover_at)] per process, during which the process takes no
    steps and loses every message addressed to it, after which the engine
    restarts it (see {!Engine}).  Patterns built only from {!none},
    {!crash_at} and {!of_crashes} have no downtime windows and keep the
    original crash-stop semantics exactly.

    Correctness keeps the paper's meaning adapted to crash-recovery in
    the standard way: a process is {e correct} iff it is eventually up
    forever — i.e. it has no permanent crash time.  Downtime windows do
    not make a process faulty.  An environment is a set of failure
    patterns. *)

open Types

type pattern

val none : n:int -> pattern
(** The failure-free pattern over [n >= 2] processes. *)

val crash_at : pattern -> proc_id -> time -> pattern
(** [crash_at f p t] permanently crashes [p] at time [t] (keeps the
    earlier time if [p] was already crashed).  This is the paper's
    crash-stop event: [p] never takes a step at or after [t]. *)

val of_crashes : n:int -> (proc_id * time) list -> pattern

val crash_recover_at : pattern -> proc_id -> at:time -> recover_at:time -> pattern
(** [crash_recover_at f p ~at ~recover_at] adds a downtime window
    [[at, recover_at)]: [p] crashes at [at], takes no steps and receives
    nothing while down, and restarts at [recover_at].  Requires
    [0 <= at < recover_at]; overlapping or touching windows are merged.
    A permanent crash before [recover_at] takes precedence: the process
    then never restarts. *)

val n : pattern -> int

val crash_time : pattern -> proc_id -> time option
(** The permanent crash time, if any.  Downtime windows are not reported
    here; see {!downtimes}. *)

val downtimes : pattern -> proc_id -> (time * time) list
(** The disjoint, ascending downtime windows of [p]. *)

val has_recovery : pattern -> bool
(** Some process has at least one downtime window. *)

val recovery_events : pattern -> (proc_id * time * time) list
(** Every downtime window as [(p, at, recover_at)], sorted by crash time:
    the engine's crash/restart schedule. *)

val is_faulty : pattern -> proc_id -> bool
(** [p] permanently crashes in this pattern.  A process that only goes
    through downtime windows is not faulty. *)

val is_correct : pattern -> proc_id -> bool
(** [p] is eventually up forever: it has no permanent crash time (it may
    still have downtime windows). *)

val is_alive : pattern -> proc_id -> time -> bool
(** [is_alive f p t] holds iff [p] is up at time [t]: it has not
    permanently crashed by [t] and [t] lies in none of its downtime
    windows. *)

type status = Up | Down | Crashed

val status : pattern -> proc_id -> time -> status
(** The view behind {!is_alive}: [Up] = taking steps now, [Down] = inside
    a downtime window (will restart), [Crashed] = permanently crashed. *)

val crashed_by : pattern -> time -> proc_id list
(** [F(t)]: processes down at time [t] (permanently crashed or inside a
    downtime window). *)

val correct : pattern -> proc_id list
(** [correct(F)], ascending: processes that are eventually up forever. *)

val faulty : pattern -> proc_id list
(** [faulty(F)], ascending. *)

val correct_count : pattern -> int
val has_correct_majority : pattern -> bool

val min_correct : pattern -> proc_id option
(** The smallest-id correct process (the canonical eventual leader). *)

type environment = { name : string; admits : pattern -> bool }

val any_environment : environment
(** Any pattern with at least one correct process — the paper's "any
    environment". *)

val majority_environment : environment
val t_resilient : int -> environment
val admits : environment -> pattern -> bool

val random :
  rng:Rng.t -> n:int -> max_faulty:int -> horizon:time -> pattern
(** A deterministic random crash-stop pattern with at most
    [max_faulty < n] crashes, all at times within [0, horizon].  The
    result is guaranteed (and internally asserted) to be admitted by
    [t_resilient max_faulty]. *)

val random_admitted :
  ?attempts:int ->
  rng:Rng.t -> env:environment -> n:int -> max_faulty:int -> horizon:time ->
  unit -> pattern
(** Like {!random} but rejection-samples until [env] admits the pattern
    (falling back to the failure-free pattern after [attempts] redraws).
    Use this when the target protocol needs a stricter environment than
    [t_resilient max_faulty], e.g. {!majority_environment} for
    quorum-based baselines. *)

val pp : Format.formatter -> pattern -> unit
