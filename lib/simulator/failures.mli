(** Failure patterns and environments (Section 2 of the paper).

    A failure pattern is a function [F : N -> 2^Pi] giving the set of
    processes crashed by each time; processes never recover.  An environment
    is a set of failure patterns. *)

open Types

type pattern

val none : n:int -> pattern
(** The failure-free pattern over [n >= 2] processes. *)

val crash_at : pattern -> proc_id -> time -> pattern
(** [crash_at f p t] crashes [p] at time [t] (keeps the earlier time if [p]
    was already crashed). *)

val of_crashes : n:int -> (proc_id * time) list -> pattern

val n : pattern -> int
val crash_time : pattern -> proc_id -> time option

val is_faulty : pattern -> proc_id -> bool
(** [p] eventually crashes in this pattern. *)

val is_correct : pattern -> proc_id -> bool

val is_alive : pattern -> proc_id -> time -> bool
(** [is_alive f p t] holds iff [p] has not crashed by time [t]. *)

val crashed_by : pattern -> time -> proc_id list
(** [F(t)]: processes crashed by time [t]. *)

val correct : pattern -> proc_id list
(** [correct(F)], ascending. *)

val faulty : pattern -> proc_id list
(** [faulty(F)], ascending. *)

val correct_count : pattern -> int
val has_correct_majority : pattern -> bool

val min_correct : pattern -> proc_id option
(** The smallest-id correct process (the canonical eventual leader). *)

type environment = { name : string; admits : pattern -> bool }

val any_environment : environment
(** Any pattern with at least one correct process — the paper's "any
    environment". *)

val majority_environment : environment
val t_resilient : int -> environment
val admits : environment -> pattern -> bool

val random :
  rng:Rng.t -> n:int -> max_faulty:int -> horizon:time -> pattern
(** A deterministic random pattern with at most [max_faulty < n] crashes, all
    at times within [0, horizon].  The result is guaranteed (and internally
    asserted) to be admitted by [t_resilient max_faulty]. *)

val random_admitted :
  ?attempts:int ->
  rng:Rng.t -> env:environment -> n:int -> max_faulty:int -> horizon:time ->
  unit -> pattern
(** Like {!random} but rejection-samples until [env] admits the pattern
    (falling back to the failure-free pattern after [attempts] redraws).
    Use this when the target protocol needs a stricter environment than
    [t_resilient max_faulty], e.g. {!majority_environment} for
    quorum-based baselines. *)

val pp : Format.formatter -> pattern -> unit
