(* The original persistent stable priority queue: a leftist heap keyed by
   (priority, insertion sequence number).

   Superseded as the engine's event queue by the mutable binary heap in
   [Pqueue], but retained as the reference implementation: the differential
   test in the suite checks that both structures pop in exactly the same
   (prio, seq) order on random interleavings, which is what makes the heap
   swap trace-preserving. *)

type 'a heap =
  | Empty
  | Node of { rank : int; prio : int; seq : int; value : 'a; left : 'a heap; right : 'a heap }

type 'a t = { heap : 'a heap; next_seq : int; size : int }

let empty = { heap = Empty; next_seq = 0; size = 0 }

let is_empty t = t.size = 0
let size t = t.size

let rank = function Empty -> 0 | Node { rank; _ } -> rank

let make_node prio seq value left right =
  if rank left >= rank right then
    Node { rank = rank right + 1; prio; seq; value; left; right }
  else Node { rank = rank left + 1; prio; seq; value; left = right; right = left }

let leq p1 s1 p2 s2 = p1 < p2 || (p1 = p2 && s1 <= s2)

let rec merge h1 h2 =
  match h1, h2 with
  | Empty, h | h, Empty -> h
  | Node n1, Node n2 ->
    if leq n1.prio n1.seq n2.prio n2.seq then
      make_node n1.prio n1.seq n1.value n1.left (merge n1.right h2)
    else make_node n2.prio n2.seq n2.value n2.left (merge h1 n2.right)

let insert t ~prio value =
  let node = make_node prio t.next_seq value Empty Empty in
  { heap = merge t.heap node; next_seq = t.next_seq + 1; size = t.size + 1 }

let pop t =
  match t.heap with
  | Empty -> None
  | Node { prio; value; left; right; _ } ->
    Some ((prio, value), { t with heap = merge left right; size = t.size - 1 })

let peek_prio t =
  match t.heap with Empty -> None | Node { prio; _ } -> Some prio

let rec fold_heap f acc = function
  | Empty -> acc
  | Node { prio; value; left; right; _ } ->
    fold_heap f (fold_heap f (f acc prio value) left) right

let fold f acc t = fold_heap f acc t.heap

let to_sorted_list t =
  let rec drain acc t =
    match pop t with
    | None -> List.rev acc
    | Some (pv, t') -> drain (pv :: acc) t'
  in
  drain [] t
