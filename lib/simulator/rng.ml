(* Deterministic splitmix64 pseudo-random generator.

   Every run of the simulator is a pure function of its configuration, so all
   randomness (delays, adversarial choices, workload generation) flows through
   this generator rather than [Stdlib.Random].  Splitmix64 is simple, fast and
   splittable, which lets independent subsystems (network, scheduler,
   workload) draw from statistically independent streams derived from one
   seed. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(* The Int64 arithmetic below boxes its intermediates.  That is pinned:
   splitmix64 over boxed Int64 is the generator every committed golden
   trace and digest was drawn from, so changing the representation (e.g.
   to untagged int tricks) would change every stream.  The boxes are
   allowlisted one by one and charged to the E23 bytes-per-event budget
   instead. *)
let next_int64 t =
  (* detlint: allow A1 splitmix64's int64 boxing is pinned by golden-stream compatibility; charged to the E23 budget *)
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  (* detlint: allow A1 splitmix64's int64 boxing is pinned by golden-stream compatibility; charged to the E23 budget *)
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  (* detlint: allow A1 splitmix64's int64 boxing is pinned by golden-stream compatibility; charged to the E23 budget *)
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  (* detlint: allow A1 splitmix64's int64 boxing is pinned by golden-stream compatibility; charged to the E23 budget *)
  Int64.logxor z (Int64.shift_right_logical z 31)

(* OCaml ints are 63-bit on 64-bit platforms: keep 62 random bits so the
   conversion can never wrap negative. *)
let next_nonneg t =
  (* detlint: allow A1 one boxed shift per draw, pinned by golden-stream compatibility; charged to the E23 budget *)
  Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  (* detlint: allow A1 bad-bound misuse raises on the error path only *)
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next_nonneg t mod bound

let in_range t ~min ~max =
  (* detlint: allow A1 bad-range misuse raises on the error path only *)
  if max < min then invalid_arg "Rng.in_range: max < min";
  min + int t (max - min + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  (* 53 random bits mapped into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

let split t =
  let seed = Int64.to_int (next_int64 t) in
  { state = Int64.of_int seed }

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
