(** Network delay models.

    The paper assumes reliable links in an asynchronous system: every
    message sent to a correct process is eventually received, with no bound
    on delay.  A delay model assigns every send a finite positive delay, so
    eventual delivery holds by construction; asynchrony and partitions are
    modelled as (finitely) large delays.

    Configurations carry a {!model}.  Stateless models are plain shared
    functions; stateful models ({!fifo}) are re-instantiated by the engine
    once per {!Engine.run}, so reusing one model value across a seed sweep
    — sequential or Domain-parallel — never leaks state between runs. *)

open Types

type delay_fn = src:proc_id -> dst:proc_id -> now:time -> rng:Rng.t -> int
(** Delay, in ticks, applied to a message sent now from [src] to [dst]. *)

type model
(** A delay model specification, as carried by run configurations. *)

val of_fn : delay_fn -> model
(** A stateless custom model, shared across runs. *)

val per_run : (unit -> delay_fn) -> model
(** A stateful custom model; the thunk runs once per [Engine.run]. *)

val instantiate : model -> delay_fn
(** Force a model for one run.  The engine calls this exactly once per run;
    call it yourself only to drive a model by hand (e.g. in tests). *)

val constant : int -> model
(** Every message takes exactly [d >= 1] ticks: one "communication step". *)

val uniform : min:int -> max:int -> model
(** Uniformly random delay in [\[min, max\]], [1 <= min <= max]. *)

val local_fast : remote:model -> model
(** Self-addressed messages take one tick; others follow [remote]. *)

type partition_spec = {
  blocks : proc_id list list;
  from_time : time;
  until_time : time;
}
(** A partition into [blocks] during [\[from_time, until_time)). *)

val block_of : partition_spec -> proc_id -> int option
val same_block : partition_spec -> proc_id -> proc_id -> bool

val partitioned : partition_spec -> base:model -> model
(** Cross-block messages sent during the partition are delivered only after
    it heals (plus their base delay); nothing is lost. *)

val partitioned_windows :
  blocks:proc_id list list -> windows:(time * time) list -> base:model -> model
(** Multi-window generalization of {!partitioned}: [windows] is a list of
    disjoint [(from, until)] spans in increasing order, and cross-block
    messages sent inside a window are buffered until that window's own
    heal time.  A one-window schedule computes exactly the delays of
    {!partitioned}, so single-window callers stay byte-identical.  Raises
    [Invalid_argument] on overlapping, decreasing or inverted windows. *)

val repeating_windows :
  from_time:time -> until_time:time -> down:int -> up:int -> (time * time) list
(** The alternating schedule that starts down (cut) at [from_time] for
    [down] ticks, heals for [up] ticks, and repeats until [until_time]
    (the last window is clipped to it): the flapping-bridge shape, usable
    with both {!partitioned_windows} and {!lossy_partition_windows}. *)

val slow_period :
  from_time:time -> until_time:time -> factor:int -> base:model -> model
(** Inflate delays by [factor] during a window — an asynchrony burst. *)

val slow_links :
  ?only:(proc_id * proc_id) list ->
  from_time:time -> until_time:time -> factor:int -> model -> model
(** Like {!slow_period} but confined to the listed directed links
    ([only = None] affects every link): a per-link delay spike. *)

val partial_synchrony : gst:time -> bound:int -> chaos_max:int -> model
(** Dwork–Lynch–Stockmeyer partial synchrony: chaotic delays up to
    [chaos_max] before the global stabilization time [gst], all delays
    within [bound] afterwards. *)

val fifo : base:model -> model
(** A stateful wrapper making each ordered link FIFO: no message overtakes
    an earlier one.  The paper's links are reliable but not FIFO; use this
    to isolate ordering-dependence in experiments.  The per-link clamp
    table is allocated afresh for every run, so the model value itself is
    safe to reuse and to share across sweep workers. *)

val delay_of :
  delay_fn -> src:proc_id -> dst:proc_id -> now:time -> rng:Rng.t -> int
(** Evaluate an instantiated model, clamping the result to at least 1
    tick. *)

(** {2 Link faults}

    Delay models preserve the paper's reliable links (everything arrives,
    possibly late).  Fault models deliberately step outside that model:
    they drop or duplicate individual sends.  They exist for adversarial
    exploration — windowed faults that heal before the horizon let the
    eventual properties recover while the safety properties must survive. *)

type fault = Deliver | Drop | Duplicate of int
(** The fate of one send: delivered normally, silently dropped, or
    delivered once plus [k >= 1] extra copies (independent delays). *)

type fault_fn = src:proc_id -> dst:proc_id -> now:time -> rng:Rng.t -> fault

type fault_model
(** A fault-injection specification, carried by run configurations. *)

val no_faults : fault_model
(** The default: no send is ever dropped or duplicated, and no randomness
    is consumed — runs are byte-identical to a fault-free engine. *)

val fault_of_fn : fault_fn -> fault_model
val fault_per_run : (unit -> fault_fn) -> fault_model

val instantiate_faults : fault_model -> fault_fn option
(** [None] exactly for {!no_faults}; the engine skips fault evaluation
    entirely in that case. *)

val drop_window :
  ?only:(proc_id * proc_id) list ->
  from_time:time -> until_time:time -> int -> fault_model
(** Drop each message sent during [\[from_time, until_time)) with
    probability [pct]% ([pct = 100] is deterministic and draws no
    randomness).  [only] restricts the fault to the listed directed
    links. *)

val duplicate_window :
  ?only:(proc_id * proc_id) list ->
  from_time:time -> until_time:time -> int -> fault_model
(** Deliver [copies >= 1] extra copies of each message sent during the
    window, each with an independently drawn delay. *)

val lossy_partition : partition_spec -> fault_model
(** A {e lossy} partition: every cross-block send inside the window is
    dropped — not buffered as {!partitioned} does.  Recovering the lost
    traffic is the protocol's problem (full-graph re-gossip, or the
    anti-entropy layer of [Ec_core.Anti_entropy]).  Deterministic; no
    randomness is consumed. *)

val lossy_partition_windows :
  blocks:proc_id list list -> windows:(time * time) list -> fault_model
(** {!lossy_partition} over a multi-window schedule (see
    {!partitioned_windows} for the window discipline). *)

val oneway_partition :
  from_block:proc_id list -> from_time:time -> until_time:time -> fault_model
(** An asymmetric partition: during the window, sends {e from} a member of
    [from_block] to a process outside it are dropped, while the reverse
    direction still flows.  One-way links are the adversary under which
    timeout-based leader emulations misbehave (see
    [Detectors.Omega.module_of] docs). *)

val flapping_partition :
  blocks:proc_id list list ->
  from_time:time -> until_time:time -> period:int -> fault_model
(** A flapping lossy partition: cut for [period] ticks, healed for
    [period] ticks, repeating over the window
    ({!repeating_windows} + {!lossy_partition_windows}). *)

val compose_faults : fault_model list -> fault_model
(** Combine fault models: any [Drop] wins, [Duplicate] extras add up.
    Every component is evaluated on every send, so randomness consumption
    is independent of the components' answers. *)

val fault_of :
  fault_fn -> src:proc_id -> dst:proc_id -> now:time -> rng:Rng.t -> fault
(** Evaluate an instantiated fault model, normalizing degenerate
    duplications to [Deliver]. *)
