(* Failure patterns and environments (Section 2 of the paper).

   A failure pattern is a function F : N -> 2^Pi giving the set of processes
   crashed by each time; processes never recover.  We represent it compactly
   as an optional crash time per process.  An environment is a set of failure
   patterns; we represent environments as predicates plus generators. *)

open Types

type pattern = { n : int; crash_time : time option array }

let none ~n =
  if n < 2 then invalid_arg "Failures.none: need n >= 2";
  { n; crash_time = Array.make n None }

let crash_at pattern p t =
  if not (is_valid_proc ~n:pattern.n p) then invalid_arg "Failures.crash_at: bad proc";
  if t < 0 then invalid_arg "Failures.crash_at: negative time";
  let crash_time = Array.copy pattern.crash_time in
  (* Keep the earliest crash time if crashed twice. *)
  (match crash_time.(p) with
   | Some t0 when t0 <= t -> ()
   | _ -> crash_time.(p) <- Some t);
  { pattern with crash_time }

let of_crashes ~n crashes =
  List.fold_left (fun acc (p, t) -> crash_at acc p t) (none ~n) crashes

let n pattern = pattern.n

let crash_time pattern p = pattern.crash_time.(p)

let is_faulty pattern p = crash_time pattern p <> None
let is_correct pattern p = crash_time pattern p = None

let is_alive pattern p t =
  match crash_time pattern p with None -> true | Some tc -> t < tc

let crashed_by pattern t =
  List.filter (fun p -> not (is_alive pattern p t)) (all_procs pattern.n)

let correct pattern = List.filter (is_correct pattern) (all_procs pattern.n)
let faulty pattern = List.filter (is_faulty pattern) (all_procs pattern.n)

let correct_count pattern = List.length (correct pattern)

let has_correct_majority pattern = 2 * correct_count pattern > pattern.n

let min_correct pattern =
  match correct pattern with
  | [] -> None
  | p :: _ -> Some p (* all_procs is ascending, so the head is the minimum *)

(* Environments, i.e. admissible sets of failure patterns. *)
type environment = {
  name : string;
  admits : pattern -> bool;
}

let any_environment =
  { name = "any"; admits = (fun pattern -> correct_count pattern >= 1) }

let majority_environment =
  { name = "majority-correct"; admits = has_correct_majority }

let t_resilient t =
  { name = Printf.sprintf "%d-resilient" t;
    admits = (fun pattern -> List.length (faulty pattern) <= t) }

let admits env pattern = env.admits pattern

(* Deterministic random pattern generation for tests and sweeps.
   [max_faulty] bounds the number of crashes; crash times fall in
   [0, horizon]. *)
let random ~rng ~n ~max_faulty ~horizon =
  if max_faulty >= n then invalid_arg "Failures.random: at least one correct process required";
  if max_faulty < 0 then invalid_arg "Failures.random: negative max_faulty";
  if horizon < 0 then invalid_arg "Failures.random: negative horizon";
  let faulty_count = Rng.int rng (max_faulty + 1) in
  let victims =
    let shuffled = Rng.shuffle rng (all_procs n) in
    List.filteri (fun i _ -> i < faulty_count) shuffled
  in
  let pattern =
    List.fold_left
      (fun acc p -> crash_at acc p (Rng.int rng (horizon + 1)))
      (none ~n) victims
  in
  (* The contract the callers (and the explorer's generators) rely on:
     a generated pattern is admitted by the resilience environment it was
     drawn for, and every crash lands within the horizon. *)
  assert (admits (t_resilient max_faulty) pattern);
  assert (
    List.for_all
      (fun p ->
         match crash_time pattern p with
         | None -> true
         | Some t -> 0 <= t && t <= horizon)
      (all_procs n));
  pattern

(* Rejection-sample a pattern admitted by an arbitrary environment (e.g.
   [majority_environment] for quorum-based baselines).  [t_resilient
   max_faulty] holds by construction, so the redraw loop only matters for
   stricter environments; after [attempts] failures, fall back to the
   failure-free pattern, which every environment with a correct process
   admits. *)
let random_admitted ?(attempts = 100) ~rng ~env ~n ~max_faulty ~horizon () =
  let rec draw k =
    if k = 0 then none ~n
    else
      let pattern = random ~rng ~n ~max_faulty ~horizon in
      if admits env pattern then pattern else draw (k - 1)
  in
  draw attempts

let pp ppf pattern =
  let pp_one ppf p =
    match crash_time pattern p with
    | None -> Fmt.pf ppf "%a:ok" pp_proc p
    | Some t -> Fmt.pf ppf "%a:crash@%d" pp_proc p t
  in
  Fmt.pf ppf "{%a}" (Fmt.list ~sep:Fmt.comma pp_one) (all_procs pattern.n)
