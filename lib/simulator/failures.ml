(* Failure patterns and environments (Section 2 of the paper), extended
   with crash-recovery.

   The paper's failure pattern is a function F : N -> 2^Pi giving the set
   of processes crashed by each time, and in the paper processes never
   recover.  We generalize: a process may additionally go through finitely
   many downtime windows [at, recover_at) during which it takes no steps
   and receives no messages, after which it restarts (with whatever state
   its stable store preserved — see lib/persist).  The crash-stop fragment
   is untouched: a pattern built only from [none] / [crash_at] /
   [of_crashes] has no downtime windows and behaves byte-identically to
   the original representation.

   Correctness keeps the paper's meaning adapted to crash-recovery in the
   standard way: a process is *correct* iff it is eventually up forever,
   i.e. it has no permanent crash time — downtime windows do not make it
   faulty.  An environment is a set of failure patterns; we represent
   environments as predicates plus generators. *)

open Types

type pattern = {
  n : int;
  crash_time : time option array;  (* permanent (crash-stop) crashes *)
  downtime : (time * time) list array;
      (* per process: disjoint, ascending [at, recover_at) windows *)
}

let none ~n =
  if n < 2 then invalid_arg "Failures.none: need n >= 2";
  { n; crash_time = Array.make n None; downtime = Array.make n [] }

let crash_at pattern p t =
  if not (is_valid_proc ~n:pattern.n p) then invalid_arg "Failures.crash_at: bad proc";
  if t < 0 then invalid_arg "Failures.crash_at: negative time";
  let crash_time = Array.copy pattern.crash_time in
  (* Keep the earliest crash time if crashed twice. *)
  (match crash_time.(p) with
   | Some t0 when t0 <= t -> ()
   | _ -> crash_time.(p) <- Some t);
  { pattern with crash_time }

let of_crashes ~n crashes =
  List.fold_left (fun acc (p, t) -> crash_at acc p t) (none ~n) crashes

(* Insert a downtime window, merging overlapping or touching windows so the
   per-process list stays disjoint and ascending (the engine schedules
   exactly one restart per window). *)
let crash_recover_at pattern p ~at ~recover_at =
  if not (is_valid_proc ~n:pattern.n p) then
    invalid_arg "Failures.crash_recover_at: bad proc";
  if at < 0 then invalid_arg "Failures.crash_recover_at: negative time";
  if recover_at <= at then
    invalid_arg "Failures.crash_recover_at: recovery must follow the crash";
  let rec insert = function
    | [] -> [ (at, recover_at) ]
    | (a, b) :: rest ->
      if recover_at < a then (at, recover_at) :: (a, b) :: rest
      else if b < at then (a, b) :: insert rest
      else
        (* Overlap or touch: fuse, then keep fusing rightwards. *)
        let rec fuse lo hi = function
          | (a', b') :: rest' when a' <= hi -> fuse lo (max hi b') rest'
          | rest' -> (lo, hi) :: rest'
        in
        fuse (min a at) (max b recover_at) rest
  in
  let downtime = Array.copy pattern.downtime in
  downtime.(p) <- insert downtime.(p);
  { pattern with downtime }

let n pattern = pattern.n

let crash_time pattern p = pattern.crash_time.(p)

let downtimes pattern p = pattern.downtime.(p)

let has_recovery pattern = Array.exists (fun w -> w <> []) pattern.downtime

(* All downtime windows as (proc, at, recover_at), sorted by crash time
   (ties by recovery time, then process id): the engine's restart
   schedule. *)
let recovery_events pattern =
  let events = ref [] in
  Array.iteri
    (fun p windows ->
       List.iter (fun (at, recover_at) -> events := (at, recover_at, p) :: !events)
         windows)
    pattern.downtime;
  List.map (fun (at, recover_at, p) -> (p, at, recover_at))
    (List.sort compare !events)

let is_faulty pattern p = crash_time pattern p <> None
let is_correct pattern p = crash_time pattern p = None

(* Closure-free window test: [is_alive] sits on the engine's per-event
   hot path, so the walk must not build a predicate closure the way
   [List.exists] would.  The [time] annotation keeps the comparisons
   monomorphic — left to inference this function generalizes and the
   comparisons become polymorphic-compare calls (alloclint rule A3). *)
let rec in_windows (t : time) = function
  | [] -> false
  | ((a : time), b) :: rest -> (a <= t && t < b) || in_windows t rest

let in_downtime pattern p t = in_windows t pattern.downtime.(p)

let is_alive pattern p t =
  (match crash_time pattern p with None -> true | Some tc -> t < tc)
  && not (in_downtime pattern p t)

type status = Up | Down | Crashed

let status pattern p t =
  match crash_time pattern p with
  | Some tc when t >= tc -> Crashed
  | _ -> if in_downtime pattern p t then Down else Up

let crashed_by pattern t =
  List.filter (fun p -> not (is_alive pattern p t)) (all_procs pattern.n)

let correct pattern = List.filter (is_correct pattern) (all_procs pattern.n)
let faulty pattern = List.filter (is_faulty pattern) (all_procs pattern.n)

let correct_count pattern = List.length (correct pattern)

let has_correct_majority pattern = 2 * correct_count pattern > pattern.n

let min_correct pattern =
  match correct pattern with
  | [] -> None
  | p :: _ -> Some p (* all_procs is ascending, so the head is the minimum *)

(* Environments, i.e. admissible sets of failure patterns. *)
type environment = {
  name : string;
  admits : pattern -> bool;
}

let any_environment =
  { name = "any"; admits = (fun pattern -> correct_count pattern >= 1) }

let majority_environment =
  { name = "majority-correct"; admits = has_correct_majority }

let t_resilient t =
  { name = Printf.sprintf "%d-resilient" t;
    admits = (fun pattern -> List.length (faulty pattern) <= t) }

let admits env pattern = env.admits pattern

(* Deterministic random pattern generation for tests and sweeps.
   [max_faulty] bounds the number of crashes; crash times fall in
   [0, horizon]. *)
let random ~rng ~n ~max_faulty ~horizon =
  if max_faulty >= n then invalid_arg "Failures.random: at least one correct process required";
  if max_faulty < 0 then invalid_arg "Failures.random: negative max_faulty";
  if horizon < 0 then invalid_arg "Failures.random: negative horizon";
  let faulty_count = Rng.int rng (max_faulty + 1) in
  let victims =
    let shuffled = Rng.shuffle rng (all_procs n) in
    List.filteri (fun i _ -> i < faulty_count) shuffled
  in
  let pattern =
    List.fold_left
      (fun acc p -> crash_at acc p (Rng.int rng (horizon + 1)))
      (none ~n) victims
  in
  (* The contract the callers (and the explorer's generators) rely on:
     a generated pattern is admitted by the resilience environment it was
     drawn for, and every crash lands within the horizon. *)
  assert (admits (t_resilient max_faulty) pattern);
  assert (
    List.for_all
      (fun p ->
         match crash_time pattern p with
         | None -> true
         | Some t -> 0 <= t && t <= horizon)
      (all_procs n));
  pattern

(* Rejection-sample a pattern admitted by an arbitrary environment (e.g.
   [majority_environment] for quorum-based baselines).  [t_resilient
   max_faulty] holds by construction, so the redraw loop only matters for
   stricter environments; after [attempts] failures, fall back to the
   failure-free pattern, which every environment with a correct process
   admits. *)
let random_admitted ?(attempts = 100) ~rng ~env ~n ~max_faulty ~horizon () =
  let rec draw k =
    if k = 0 then none ~n
    else
      let pattern = random ~rng ~n ~max_faulty ~horizon in
      if admits env pattern then pattern else draw (k - 1)
  in
  draw attempts

let pp ppf pattern =
  let pp_one ppf p =
    (match crash_time pattern p with
     | None -> Fmt.pf ppf "%a:ok" pp_proc p
     | Some t -> Fmt.pf ppf "%a:crash@%d" pp_proc p t);
    List.iter (fun (a, b) -> Fmt.pf ppf "~down@%d-%d" a b) pattern.downtime.(p)
  in
  Fmt.pf ppf "{%a}" (Fmt.list ~sep:Fmt.comma pp_one) (all_procs pattern.n)
