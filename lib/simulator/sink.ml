(* Trace sinks: the engine's observability abstraction.

   The engine emits every observable event of a run — inputs, outputs,
   sends, deliveries, drops, automaton steps — into exactly one sink.  The
   default sink is [recorder], which reproduces the historical behaviour of
   recording the full input/output history into a [Trace.t] (so all
   [Properties] checkers are unchanged).  Long sweeps that only need
   aggregate numbers use [counters], which keeps O(1) scalars plus compact
   unboxed latency samples instead of a per-entry list; offline analysis
   streams events with [jsonl].

   Sinks are plain records of closures, so custom observers compose with
   the shipped ones through [tee].  A sink is private to one run: the
   engine calls it from a single domain, in deterministic event order. *)

open Types

type t = {
  on_input : at:time -> proc:proc_id -> Io.input -> unit;
  on_output : at:time -> proc:proc_id -> Io.output -> unit;
  on_send : Msg.envelope -> unit;
  on_deliver : at:time -> Msg.envelope -> unit;
  on_drop : at:time -> Msg.envelope -> unit;
  on_step : at:time -> proc:proc_id -> unit;
  on_crash : at:time -> proc:proc_id -> unit;
  on_recover : at:time -> proc:proc_id -> unit;
}

let null =
  { on_input = (fun ~at:_ ~proc:_ _ -> ());
    on_output = (fun ~at:_ ~proc:_ _ -> ());
    on_send = (fun _ -> ());
    on_deliver = (fun ~at:_ _ -> ());
    on_drop = (fun ~at:_ _ -> ());
    on_step = (fun ~at:_ ~proc:_ -> ());
    on_crash = (fun ~at:_ ~proc:_ -> ());
    on_recover = (fun ~at:_ ~proc:_ -> ()) }

let tee a b =
  { on_input = (fun ~at ~proc i -> a.on_input ~at ~proc i; b.on_input ~at ~proc i);
    on_output = (fun ~at ~proc o -> a.on_output ~at ~proc o; b.on_output ~at ~proc o);
    on_send = (fun env -> a.on_send env; b.on_send env);
    on_deliver = (fun ~at env -> a.on_deliver ~at env; b.on_deliver ~at env);
    on_drop = (fun ~at env -> a.on_drop ~at env; b.on_drop ~at env);
    on_step = (fun ~at ~proc -> a.on_step ~at ~proc; b.on_step ~at ~proc);
    on_crash = (fun ~at ~proc -> a.on_crash ~at ~proc; b.on_crash ~at ~proc);
    on_recover = (fun ~at ~proc -> a.on_recover ~at ~proc; b.on_recover ~at ~proc) }

(* A sink that calls [f] once per observed event, ignoring the payload.
   This is the soak runner's guard hook: teed in front of a recorder it
   turns every engine-observable event into a chance to check an event
   budget or a wall-clock deadline (Harness.Clock) and raise out of a
   wedged run.  Zero allocation per event. *)
let on_every f =
  { on_input = (fun ~at:_ ~proc:_ _ -> f ());
    on_output = (fun ~at:_ ~proc:_ _ -> f ());
    on_send = (fun _ -> f ());
    on_deliver = (fun ~at:_ _ -> f ());
    on_drop = (fun ~at:_ _ -> f ());
    on_step = (fun ~at:_ ~proc:_ -> f ());
    on_crash = (fun ~at:_ ~proc:_ -> f ());
    on_recover = (fun ~at:_ ~proc:_ -> f ()) }

(* ------------------------------------------------------------------ *)
(* Full recorder: the historical Trace.t behaviour                     *)
(* ------------------------------------------------------------------ *)

let recorder trace =
  { on_input = (fun ~at ~proc i -> Trace.record_input trace ~time:at ~proc i);
    on_output = (fun ~at ~proc o -> Trace.record_output trace ~time:at ~proc o);
    on_send = (fun _ -> Trace.count_sent trace);
    on_deliver = (fun ~at:_ _ -> Trace.count_delivered trace);
    on_drop = (fun ~at:_ _ -> Trace.count_dropped trace);
    on_step = (fun ~at:_ ~proc:_ -> Trace.count_step trace);
    (* Crash/restart marks carry no input/output history, so the recorder
       ignores them: traces of crash-stop runs stay byte-identical. *)
    on_crash = (fun ~at:_ ~proc:_ -> ());
    on_recover = (fun ~at:_ ~proc:_ -> ()) }

(* ------------------------------------------------------------------ *)
(* Counters-only sink with per-process latency histograms              *)
(* ------------------------------------------------------------------ *)

(* Growable unboxed int buffer: one word per sample, amortized. *)
type samples = { mutable buf : int array; mutable len : int }

let samples_create () = { buf = [||]; len = 0 }

let samples_push s x =
  if s.len = Array.length s.buf then begin
    let cap =
      if 2 * Array.length s.buf < 64 then 64 else 2 * Array.length s.buf
    in
    (* detlint: allow A1 amortized doubling: the growth copy is off the steady-state per-sample path *)
    let buf = Array.make cap 0 in
    Array.blit s.buf 0 buf 0 s.len;
    s.buf <- buf
  end;
  s.buf.(s.len) <- x;
  s.len <- s.len + 1

type counters = {
  n : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable steps : int;
  mutable inputs : int;
  mutable outputs : int;
  mutable last_time : time;
  latency : samples array;  (* indexed by destination process *)
}

let counters ~n =
  { n; sent = 0; delivered = 0; dropped = 0; steps = 0; inputs = 0;
    outputs = 0; last_time = 0;
    latency = Array.init n (fun _ -> samples_create ()) }

let counters_sink c =
  { on_input = (fun ~at ~proc:_ _ ->
        c.inputs <- c.inputs + 1;
        if at > c.last_time then c.last_time <- at);
    on_output = (fun ~at ~proc:_ _ ->
        c.outputs <- c.outputs + 1;
        if at > c.last_time then c.last_time <- at);
    on_send = (fun _ -> c.sent <- c.sent + 1);
    on_deliver = (fun ~at env ->
        c.delivered <- c.delivered + 1;
        samples_push c.latency.(env.Msg.dst) (at - env.Msg.sent_at));
    on_drop = (fun ~at:_ _ -> c.dropped <- c.dropped + 1);
    on_step = (fun ~at:_ ~proc:_ -> c.steps <- c.steps + 1);
    on_crash = (fun ~at ~proc:_ -> if at > c.last_time then c.last_time <- at);
    on_recover = (fun ~at ~proc:_ -> if at > c.last_time then c.last_time <- at) }

let sent c = c.sent
let delivered c = c.delivered
let dropped c = c.dropped
let steps c = c.steps
let inputs c = c.inputs
let outputs c = c.outputs
let last_time c = c.last_time

let latencies c p = Array.sub c.latency.(p).buf 0 c.latency.(p).len

let all_latencies c =
  Array.concat (List.map (fun s -> Array.sub s.buf 0 s.len) (Array.to_list c.latency))

type latency_summary =
  { count : int; p50 : int; p95 : int; p99 : int; p999 : int; max : int }

(* Nearest-rank selection, all in integers: the value at 1-based rank
   ceil(permille/1000 * len) of the ascending-sorted sample.  Quantiles of
   integer samples are themselves sample members, identical on every
   platform — no float rounding at the p999 tail. *)
let nearest_rank sorted ~permille =
  let len = Array.length sorted in
  if len = 0 then invalid_arg "Sink.nearest_rank: empty sample";
  if permille < 0 || permille > 1000 then
    invalid_arg "Sink.nearest_rank: permille out of [0, 1000]";
  let rank = ((permille * len) + 999) / 1000 in
  sorted.(max 0 (rank - 1))

let summarize a =
  if Array.length a = 0 then None
  else begin
    let sorted = Array.copy a in
    Array.sort Int.compare sorted;
    let pct permille = nearest_rank sorted ~permille in
    Some
      { count = Array.length sorted;
        p50 = pct 500;
        p95 = pct 950;
        p99 = pct 990;
        p999 = pct 999;
        max = sorted.(Array.length sorted - 1) }
  end

let latency_summary c p = summarize (latencies c p)
let total_latency_summary c = summarize (all_latencies c)

let pp_latency_summary ppf s =
  Fmt.pf ppf "n=%d p50=%d p95=%d p99=%d p999=%d max=%d" s.count s.p50 s.p95
    s.p99 s.p999 s.max

(* ------------------------------------------------------------------ *)
(* JSONL streaming sink                                                *)
(* ------------------------------------------------------------------ *)

let json_escape = Persist.Frame.json_escape

(* One JSON object per event line.  Message payloads stay opaque to the
   simulator, so envelopes are identified by (uid, src, dst, times); inputs
   and outputs are rendered through their registered printers. *)
let jsonl ~emit =
  let line fmt = Printf.ksprintf emit fmt in
  { on_input = (fun ~at ~proc i ->
        line {|{"ev":"input","t":%d,"proc":%d,"v":"%s"}|} at proc
          (json_escape (Format.asprintf "%a" Io.pp_input i)));
    on_output = (fun ~at ~proc o ->
        line {|{"ev":"output","t":%d,"proc":%d,"v":"%s"}|} at proc
          (json_escape (Format.asprintf "%a" Io.pp_output o)));
    on_send = (fun env ->
        line {|{"ev":"send","t":%d,"src":%d,"dst":%d,"uid":%d}|}
          env.Msg.sent_at env.Msg.src env.Msg.dst env.Msg.uid);
    on_deliver = (fun ~at env ->
        line {|{"ev":"deliver","t":%d,"src":%d,"dst":%d,"uid":%d,"lat":%d}|}
          at env.Msg.src env.Msg.dst env.Msg.uid (at - env.Msg.sent_at));
    on_drop = (fun ~at env ->
        line {|{"ev":"drop","t":%d,"src":%d,"dst":%d,"uid":%d}|}
          at env.Msg.src env.Msg.dst env.Msg.uid);
    on_step = (fun ~at:_ ~proc:_ -> ());
    on_crash = (fun ~at ~proc ->
        line {|{"ev":"crash","t":%d,"proc":%d}|} at proc);
    on_recover = (fun ~at ~proc ->
        line {|{"ev":"recover","t":%d,"proc":%d}|} at proc) }

(* Exception-safe file-backed jsonl sink: the channel is flushed and
   closed even when the run raises mid-sweep. *)
let with_jsonl path f =
  let oc = Out_channel.open_text path in
  Fun.protect
    ~finally:(fun () ->
        (try Out_channel.flush oc with Sys_error _ -> ());
        Out_channel.close_noerr oc)
    (fun () ->
       f (jsonl ~emit:(fun s ->
           Out_channel.output_string oc s;
           Out_channel.output_char oc '\n')))

(* ------------------------------------------------------------------ *)
(* Binary framed sink                                                  *)
(* ------------------------------------------------------------------ *)

(* The binary counterpart of [jsonl]: the same event vocabulary encoded
   as [Persist.Frame] event records (one framed record per [emit] call,
   no separators).  Inputs and outputs are rendered through the same
   registered printers, so decoding a binary stream and exporting it with
   [Frame.to_jsonl] reproduces the jsonl stream byte for byte — the
   differential test battery holds the two formats to that contract. *)
let binary ~emit =
  let ev e = emit (Persist.Frame.event_record e) in
  { on_input = (fun ~at ~proc i ->
        ev (Persist.Frame.Input
              { t = at; proc; v = Format.asprintf "%a" Io.pp_input i }));
    on_output = (fun ~at ~proc o ->
        ev (Persist.Frame.Output
              { t = at; proc; v = Format.asprintf "%a" Io.pp_output o }));
    on_send = (fun env ->
        ev (Persist.Frame.Send
              { t = env.Msg.sent_at; src = env.Msg.src; dst = env.Msg.dst;
                uid = env.Msg.uid }));
    on_deliver = (fun ~at env ->
        ev (Persist.Frame.Deliver
              { t = at; src = env.Msg.src; dst = env.Msg.dst;
                uid = env.Msg.uid; lat = at - env.Msg.sent_at }));
    on_drop = (fun ~at env ->
        ev (Persist.Frame.Drop
              { t = at; src = env.Msg.src; dst = env.Msg.dst;
                uid = env.Msg.uid }));
    on_step = (fun ~at:_ ~proc:_ -> ());
    on_crash = (fun ~at ~proc -> ev (Persist.Frame.Crash { t = at; proc }));
    on_recover = (fun ~at ~proc -> ev (Persist.Frame.Recover { t = at; proc })) }

(* File-backed binary sink: writes the format header, then one framed
   record per event; bracket-style like [with_jsonl]. *)
let with_binary path f =
  let oc = Out_channel.open_bin path in
  Fun.protect
    ~finally:(fun () ->
        (try Out_channel.flush oc with Sys_error _ -> ());
        Out_channel.close_noerr oc)
    (fun () ->
       Out_channel.output_string oc Persist.Frame.header;
       f (binary ~emit:(fun s -> Out_channel.output_string oc s)))
