(* The discrete-event simulation engine.

   This is the executable form of the computational model of Section 2: each
   process is a deterministic automaton whose steps are triggered by message
   deliveries, periodic local timeouts (the paper's "on local timeout"
   clauses) and external inputs.  A step runs atomically: it may consult a
   failure detector (protocols capture a detector closure at construction
   time), update local state, send messages and produce outputs.

   Admissibility (Section 2): every correct process takes infinitely many
   steps, and every message sent to a correct process is eventually
   received.  The engine realizes both on any finite horizon: timers fire
   forever at every alive process, and every send is assigned a finite
   delay, so only the configured deadline truncates the run.

   Runtime notes.  The event queue is a mutable binary heap ([Pqueue])
   driven in place; determinism rests on its stable (prio, seq) order,
   which is differentially tested against the original persistent heap.
   Observability goes through exactly one [Sink.t]: by default a [Sink.
   recorder] over the returned trace (the historical behaviour), or the
   caller's sink from [config.sink] — in which case the returned trace
   stays empty and the caller observes the run through the sink alone. *)

open Types

type ctx = {
  self : proc_id;
  n : int;
  now : unit -> time;
  send : proc_id -> Msg.payload -> unit;
  broadcast : Msg.payload -> unit;
  output : Io.output -> unit;
  rng : Rng.t;
}

type node = {
  on_message : src:proc_id -> Msg.payload -> unit;
  on_timer : unit -> unit;
  on_input : Io.input -> unit;
}

let idle_node =
  { on_message = (fun ~src:_ _ -> ()); on_timer = (fun () -> ()); on_input = (fun _ -> ()) }

(* Run two protocol components side by side on the same process.  Both see
   every event; components ignore payloads and inputs that are not theirs. *)
let combine a b =
  { on_message = (fun ~src payload -> a.on_message ~src payload; b.on_message ~src payload);
    on_timer = (fun () -> a.on_timer (); b.on_timer ());
    on_input = (fun input -> a.on_input input; b.on_input input) }

let stack nodes = List.fold_left combine idle_node nodes

type event =
  | Deliver of Msg.envelope
  | Timer of proc_id
  | External_input of proc_id * Io.input
  | Crash of proc_id  (* entry into a downtime window of the pattern *)
  | Recover of proc_id  (* end of a downtime window: restart the process *)

type config = {
  n : int;
  pattern : Failures.pattern;
  delay : Net.model;
  faults : Net.fault_model;
  timer_period : int;
  seed : int;
  deadline : time;
  sink : Sink.t option;
}

let default_config ~n ~deadline =
  { n;
    pattern = Failures.none ~n;
    delay = Net.constant 1;
    faults = Net.no_faults;
    timer_period = 2;
    seed = 42;
    deadline;
    sink = None }

let check_config config =
  if config.n < 2 then invalid_arg "Engine.run: n must be >= 2";
  if Failures.n config.pattern <> config.n then
    invalid_arg "Engine.run: pattern size does not match n";
  if config.timer_period < 1 then invalid_arg "Engine.run: timer_period must be >= 1";
  if config.deadline < 1 then invalid_arg "Engine.run: deadline must be >= 1"

type state = {
  config : config;
  sink : Sink.t;
  delay : Net.delay_fn;  (* instantiated once for this run *)
  faults : Net.fault_fn option;  (* None = pure reliable links *)
  net_rng : Rng.t;
  queue : event Pqueue.t;  (* mutated in place *)
  mutable clock : time;
  mutable next_uid : int;
}

let schedule state ~at event = Pqueue.insert state.queue ~prio:at event

let alive state p = Failures.is_alive state.config.pattern p state.clock

let make_ctx state p =
  let send dst payload =
    let now = state.clock in
    match state.faults with
    | None ->
      (* The historical fault-free path, kept byte-identical (same order of
         randomness draws) so golden traces replay exactly. *)
      let delay = Net.delay_of state.delay ~src:p ~dst ~now ~rng:state.net_rng in
      let uid = state.next_uid in
      state.next_uid <- uid + 1;
      let env = { Msg.src = p; dst; payload; sent_at = now; uid } in
      state.sink.Sink.on_send env;
      schedule state ~at:(now + delay) (Deliver env)
    | Some faults ->
      let uid = state.next_uid in
      state.next_uid <- uid + 1;
      let env = { Msg.src = p; dst; payload; sent_at = now; uid } in
      state.sink.Sink.on_send env;
      let deliver_once () =
        let delay =
          Net.delay_of state.delay ~src:p ~dst ~now ~rng:state.net_rng
        in
        schedule state ~at:(now + delay) (Deliver env)
      in
      (match Net.fault_of faults ~src:p ~dst ~now ~rng:state.net_rng with
       | Net.Deliver -> deliver_once ()
       | Net.Drop -> state.sink.Sink.on_drop ~at:now env
       | Net.Duplicate extra ->
         for _ = 0 to extra do deliver_once () done)
  in
  { self = p;
    n = state.config.n;
    now = (fun () -> state.clock);
    send;
    broadcast = (fun payload -> List.iter (fun q -> send q payload) (all_procs state.config.n));
    output = (fun o -> state.sink.Sink.on_output ~at:state.clock ~proc:p o);
    rng = Rng.create (state.config.seed lxor (0x5157 * (p + 1)));
  }

(* One event's worth of work: the per-event step of the engine loop,
   hoisted to the top level so alloclint can hold it (and everything it
   reaches) to the zero-allocation contract.  The steady-state paths
   (Deliver, Timer) allocate nothing themselves: timer events come from
   the preallocated [timer_events] array, the queue entry was already
   removed by the caller, and the remaining calls cross into the sink,
   node and revival closures — the three extension boundaries, each
   allowlisted below and charged to the E23 bytes-per-event budget.

   [revive] rebuilds a node after a downtime window ([make_node] over a
   fresh ctx); [pairs]/[nodes]/[timer_running] are the per-run arrays
   owned by [run_with]. *)
let dispatch state nodes pairs timer_running timer_events ~revive ~at event =
  match event with
  | Deliver env ->
    if alive state env.Msg.dst then begin
      (* detlint: allow A2 sink callbacks are the observability boundary; charged to the E23 bytes-per-event budget *)
      state.sink.Sink.on_deliver ~at env;
      (* detlint: allow A2 sink callbacks are the observability boundary; charged to the E23 bytes-per-event budget *)
      state.sink.Sink.on_step ~at ~proc:env.Msg.dst;
      (* detlint: allow A2 protocol automata are the workload boundary; charged to the E23 bytes-per-event budget *)
      nodes.(env.Msg.dst).on_message ~src:env.Msg.src env.Msg.payload
    end
    else
      (* detlint: allow A2 sink callbacks are the observability boundary; charged to the E23 bytes-per-event budget *)
      state.sink.Sink.on_drop ~at env
  | Timer p ->
    if alive state p then begin
      (* detlint: allow A2 sink callbacks are the observability boundary; charged to the E23 bytes-per-event budget *)
      state.sink.Sink.on_step ~at ~proc:p;
      (* detlint: allow A2 protocol automata are the workload boundary; charged to the E23 bytes-per-event budget *)
      nodes.(p).on_timer ();
      schedule state ~at:(at + state.config.timer_period) timer_events.(p)
    end
    else timer_running.(p) <- false
  | External_input (p, input) ->
    if alive state p then begin
      (* detlint: allow A2 sink callbacks are the observability boundary; charged to the E23 bytes-per-event budget *)
      state.sink.Sink.on_input ~at ~proc:p input;
      (* detlint: allow A2 sink callbacks are the observability boundary; charged to the E23 bytes-per-event budget *)
      state.sink.Sink.on_step ~at ~proc:p;
      (* detlint: allow A2 protocol automata are the workload boundary; charged to the E23 bytes-per-event budget *)
      nodes.(p).on_input input
    end
  | Crash p ->
    (* Drop the in-flight volatile state: the old automaton is
       discarded; only what it put into its stable store (see
       lib/persist) survives to the restart.  Deliveries, timers
       and inputs during the window are already suppressed by the
       [alive] guards above. *)
    nodes.(p) <- idle_node;
    (* detlint: allow A2 sink callbacks are the observability boundary; charged to the E23 bytes-per-event budget *)
    state.sink.Sink.on_crash ~at ~proc:p
  | Recover p ->
    (* Restart hook: re-run the caller's [make_node] for p.  The
       fresh automaton starts from its initial state (plus whatever
       it replays from stable storage inside [make_node]); its ctx
       draws from a freshly re-seeded per-process rng, so runs stay
       deterministic.  Skipped if a permanent crash precedes the
       restart. *)
    if alive state p then begin
      (* detlint: allow A2 sink callbacks are the observability boundary; charged to the E23 bytes-per-event budget *)
      state.sink.Sink.on_recover ~at ~proc:p;
      (* detlint: allow A2 node revival after a downtime window is off the steady-state event path *)
      let pair = revive p in
      pairs.(p) <- pair;
      nodes.(p) <- fst pair;
      if not timer_running.(p) then begin
        timer_running.(p) <- true;
        schedule state
          ~at:(at + 1 + (p mod state.config.timer_period))
          timer_events.(p)
      end
    end

let run_with config ~make_node ~inputs =
  check_config config;
  let trace = Trace.create ~n:config.n in
  let sink =
    match config.sink with None -> Sink.recorder trace | Some s -> s
  in
  let state =
    { config;
      sink;
      delay = Net.instantiate config.delay;
      faults = Net.instantiate_faults config.faults;
      net_rng = Rng.create (config.seed lxor 0x6e65);
      queue = Pqueue.create ();
      clock = 0;
      next_uid = 0 }
  in
  let pairs =
    Array.init config.n (fun p -> make_node (make_ctx state p))
  in
  let nodes = Array.map fst pairs in
  let revive p = make_node (make_ctx state p) in
  (* Timer events never carry state beyond the process id, so one
     preallocated event per process serves every tick of the run: the
     steady-state timer chain allocates nothing. *)
  let timer_events = Array.init config.n (fun p -> Timer p) in
  (* Whether process p currently has a pending Timer event in the queue.
     A timer chain dies when it fires while its process is down; Recover
     starts a fresh chain only if the old one is gone, so a short downtime
     window never doubles the timer rate. *)
  let timer_running = Array.make config.n true in
  (* Stagger first timer fires so processes are not in lockstep. *)
  List.iter
    (fun p ->
       schedule state ~at:(1 + (p mod config.timer_period)) timer_events.(p))
    (all_procs config.n);
  (* Crash/restart schedule from the pattern's downtime windows.  These
     are scheduled before the run starts, so at equal times they order
     before any same-time Deliver/Timer inserted while running: a freshly
     restarted process sees the deliveries of its recovery instant. *)
  List.iter
    (fun (p, at, recover_at) ->
       schedule state ~at (Crash p);
       schedule state ~at:recover_at (Recover p))
    (Failures.recovery_events config.pattern);
  List.iter
    (fun (t, p, input) ->
       if t < 0 then invalid_arg "Engine.run: negative input time";
       schedule state ~at:t (External_input (p, input)))
    inputs;
  (* The event loop proper: peek, deadline-check, remove, dispatch.
     Reading the head with min_prio/min_value + remove_min (instead of
     [pop]) keeps the steady state free of option/pair allocation; an
     event beyond the deadline simply stays queued, which is observably
     identical to the historical pop-then-discard. *)
  let rec loop () =
    if not (Pqueue.is_empty state.queue) then begin
      let at = Pqueue.min_prio state.queue in
      if at <= config.deadline then begin
        let event = Pqueue.min_value state.queue in
        Pqueue.remove_min state.queue;
        state.clock <- at;
        dispatch state nodes pairs timer_running timer_events ~revive ~at
          event;
        loop ()
      end
    end
  in
  loop ();
  (trace, Array.map snd pairs)

let run config ~make_node ~inputs =
  let trace, _ =
    run_with config ~make_node:(fun ctx -> (make_node ctx, ())) ~inputs
  in
  trace
