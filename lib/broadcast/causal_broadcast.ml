(* Causal-order broadcast: deliveries respect happens-before.

   The classical vector-clock algorithm: each broadcast carries the sender's
   vector clock; receivers hold back a message until every causally earlier
   broadcast has been delivered.  Built on reliable broadcast so that
   agreement holds (all correct processes deliver the same message set).

   This is a substrate: the ETOB algorithm of Section 5 carries explicit
   dependency sets in its causality graph instead, but the run checkers use
   both encodings to cross-validate the TOB-Causal-Order property. *)

open Simulator
open Simulator.Types

type Msg.payload += Cb of { origin : proc_id; vc : Vector_clock.t; inner : Msg.payload }

type pending = { p_origin : proc_id; p_vc : Vector_clock.t; p_inner : Msg.payload }

type t = {
  ctx : Engine.ctx;
  rb : Reliable_broadcast.t;
  mutable clock : Vector_clock.t;
  mutable holdback : pending list;
  mutable delivered_count : int;
}

(* m is deliverable at state V iff vc.(origin) = V.(origin) + 1 and
   vc.(k) <= V.(k) for every k <> origin. *)
let deliverable clock p =
  let n = Vector_clock.size clock in
  let ok_origin = Vector_clock.get p.p_vc p.p_origin = Vector_clock.get clock p.p_origin + 1 in
  let rec others k =
    k >= n
    || ((k = p.p_origin || Vector_clock.get p.p_vc k <= Vector_clock.get clock k)
        && others (k + 1))
  in
  ok_origin && others 0

let create (ctx : Engine.ctx) ~deliver =
  let holder = ref None in
  let rec flush t =
    match List.find_opt (deliverable t.clock) t.holdback with
    | None -> ()
    | Some p ->
      (* detlint: allow D5 removes exactly the cell find_opt returned; structural <> would also drop distinct holdback entries that happen to be equal *)
      t.holdback <- List.filter (fun q -> q != p) t.holdback;
      t.clock <- Vector_clock.tick t.clock p.p_origin;
      t.delivered_count <- t.delivered_count + 1;
      deliver ~origin:p.p_origin ~vc:p.p_vc p.p_inner;
      flush t
  in
  let on_rb_deliver ~origin:_ ~sn:_ inner =
    match !holder, inner with
    | Some t, Cb { origin; vc; inner } ->
      t.holdback <- { p_origin = origin; p_vc = vc; p_inner = inner } :: t.holdback;
      flush t
    | _, _ -> ()
  in
  let rb, rb_node = Reliable_broadcast.create ctx ~deliver:on_rb_deliver in
  let t =
    { ctx; rb;
      clock = Vector_clock.zero ~n:ctx.Engine.n;
      holdback = [];
      delivered_count = 0 }
  in
  holder := Some t;
  (t, rb_node)

let broadcast t inner =
  let vc = Vector_clock.tick t.clock t.ctx.Engine.self in
  Reliable_broadcast.broadcast t.rb (Cb { origin = t.ctx.Engine.self; vc; inner })

let clock t = t.clock
let delivered_count t = t.delivered_count
let pending_count t = List.length t.holdback

let () =
  Msg.register_payload_pp (fun ppf -> function
    | Cb { origin; vc; inner } ->
      Fmt.pf ppf "cb(%a,%a,%a)" pp_proc origin Vector_clock.pp vc Msg.pp_payload inner;
      true
    | _ -> false)
