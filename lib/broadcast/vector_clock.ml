(* Vector clocks: the standard witness of the causal (happens-before) order.

   The paper's TOB-Causal-Order property is stated on explicit dependency
   sets C(m); vector clocks give an equivalent, mechanically checkable
   encoding of the same order, used by the causal-broadcast substrate and by
   the causal-order run checkers. *)

open Simulator.Types

type t = int array

let zero ~n =
  if n < 1 then invalid_arg "Vector_clock.zero: n must be >= 1";
  Array.make n 0

let size t = Array.length t

let get t p =
  if not (is_valid_proc ~n:(Array.length t) p) then
    invalid_arg "Vector_clock.get: bad proc";
  t.(p)

let tick t p =
  if not (is_valid_proc ~n:(Array.length t) p) then
    invalid_arg "Vector_clock.tick: bad proc";
  let t' = Array.copy t in
  t'.(p) <- t'.(p) + 1;
  t'

let merge a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vector_clock.merge: size mismatch";
  Array.init (Array.length a) (fun i -> max a.(i) b.(i))

let leq a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vector_clock.leq: size mismatch";
  let rec go i = i >= Array.length a || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let equal a b = leq a b && leq b a
let lt a b = leq a b && not (equal a b)
let concurrent a b = (not (leq a b)) && not (leq b a)

(* An arbitrary total order extending nothing in particular — lexicographic —
   used only for deterministic tie-breaking in tests. *)
let compare_lex a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vector_clock.compare_lex: size mismatch";
  List.compare Int.compare (Array.to_list a) (Array.to_list b)

let sum t = Array.fold_left ( + ) 0 t

let to_list = Array.to_list
let of_list l = Array.of_list l

let pp ppf t =
  Fmt.pf ppf "<%a>" Fmt.(list ~sep:comma int) (Array.to_list t)
