(* Run a client population against a replicated service, in one engine.

   Process layout: replicas occupy procs [0, r) and clients [r, r + c).
   The replica-group protocols (Omega, Algorithm 5, Paxos) are built with a
   *shimmed* ctx whose [n] is [r] and whose [broadcast] spans only the
   replicas, so quorum arithmetic and leader election are oblivious to the
   client processes sharing the engine.  The endpoint component uses the
   real ctx to talk to clients.

   The setup's delay and fault models (partitions included) apply to the
   replica fabric only; client<->endpoint links are constant unit delay and
   fault-free.  Clients therefore always reach a live endpoint, and any
   unavailability they observe is the protocol's — which is exactly what
   the E22 availability gate wants to measure.  Replica crash schedules
   extend over the widened process space untouched; clients never fail.

   Replicas serve a Kv machine behind the first-occurrence {!Dedup} filter,
   so cross-endpoint retry duplicates are dropped at apply time.  The
   runner re-derives each replica's deduplicated state from its raw log and
   checks the machine agrees — the "zero duplicate applies" CI gate. *)

open Simulator
open Simulator.Types
open Replication

module Dkv = Dedup.Make (Machines.Kv)
module Committed = Committed_replica.Make (Dkv)
module Plain = Replica.Make (Dkv)

type replica_view = {
  rv_weak_digest : unit -> string;
  rv_strong_digest : unit -> string;
  rv_log : unit -> Command.t list;
  rv_state : unit -> Dkv.state;
  rv_pending : unit -> int;
}

type handle = Replica_handle of replica_view | Client_handle of Client.t

type outcome = {
  trace : Trace.t;
  digest : string;
  report : Metrics.t;
  replicas : int;
  clients : int;
  horizon : time;
  dedup_ok : bool;
  duplicates_delivered : int;
  suppressed : int;
  weak_digests : string list;
  strong_digests : string list;
}

let find_in map key = Machines.String_map.find_opt key map

let log_has log ~client ~rid =
  List.exists (fun c -> Command.rid_of c = Some (client, rid)) log

(* Extend the replica-side crash/recovery schedule over the widened
   process space; clients never fail. *)
let widen_pattern base ~r ~n_total =
  let p = ref (Failures.none ~n:n_total) in
  for q = 0 to r - 1 do
    (match Failures.crash_time base q with
     | Some t -> p := Failures.crash_at !p q t
     | None -> ());
    List.iter
      (fun (at, recover_at) -> p := Failures.crash_recover_at !p q ~at ~recover_at)
      (Failures.downtimes base q)
  done;
  !p

let engine_config (setup : Harness.Stacks.setup) ~(spec : Harness.Service_spec.t) =
  let r = setup.n in
  let n_total = r + spec.clients in
  let base = Harness.Stacks.engine_config setup in
  let fabric_only_delay =
    Net.per_run (fun () ->
        let fabric = Net.instantiate base.delay in
        fun ~src ~dst ~now ~rng ->
          if src < r && dst < r then fabric ~src ~dst ~now ~rng else 1)
  in
  let fabric_only_faults =
    match Net.instantiate_faults base.faults with
    | None -> Net.no_faults
    | Some _ ->
      Net.fault_per_run (fun () ->
          match Net.instantiate_faults base.faults with
          | None -> fun ~src:_ ~dst:_ ~now:_ ~rng:_ -> Net.Deliver
          | Some f ->
            fun ~src ~dst ~now ~rng ->
              if src < r && dst < r then f ~src ~dst ~now ~rng else Net.Deliver)
  in
  { base with
    n = n_total;
    pattern = widen_pattern base.pattern ~r ~n_total;
    delay = fabric_only_delay;
    faults = fabric_only_faults;
    sink = None (* metrics and the digest need the recorded trace *) }

let replica_node setup impl (spec : Harness.Service_spec.t) ctx =
  let r = (setup : Harness.Stacks.setup).n in
  let rctx =
    Engine.
      { ctx with
        n = r;
        broadcast =
          (fun payload ->
            for q = 0 to r - 1 do
              ctx.send q payload
            done) }
  in
  let omega, omega_node = Harness.Stacks.omega_module setup rctx in
  let protocol_nodes, view, views =
    match (impl : Harness.Stacks.etob_impl) with
    | Algorithm_5 ->
      let etob, etob_node = Ec_core.Etob_omega.create rctx ~omega in
      let rep, rep_node =
        Committed.create rctx
          ~etob:(Ec_core.Etob_omega.service etob)
          ~omega
          ~promotion:(fun () -> Ec_core.Etob_omega.promotion etob)
      in
      let view =
        { rv_weak_digest = (fun () -> Committed.speculative_digest rep);
          rv_strong_digest = (fun () -> Committed.committed_digest rep);
          rv_log = (fun () -> Committed.speculative_log rep);
          rv_state = (fun () -> Committed.speculative_state rep);
          rv_pending = (fun () -> 0) }
      in
      let views =
        Endpoint.
          { weak_find =
              (fun key -> find_in (Dkv.inner (Committed.speculative_state rep)) key);
            strong_find =
              (fun key -> find_in (Dkv.inner (Committed.committed_state rep)) key);
            weak_has =
              (fun ~client ~rid ->
                log_has (Committed.speculative_log rep) ~client ~rid);
            strong_has =
              (fun ~client ~rid ->
                log_has (Committed.committed_log rep) ~client ~rid);
            submit = Committed.submit rep }
      in
      ([ etob_node; rep_node ], view, views)
    | Paxos_baseline ->
      let paxos, paxos_node = Consensus.Paxos_tob.create rctx ~omega in
      let rep, rep_node =
        Plain.create rctx ~etob:(Consensus.Paxos_tob.service paxos)
      in
      (* One applied log: the strong and weak views coincide. *)
      let view =
        { rv_weak_digest = (fun () -> Plain.digest rep);
          rv_strong_digest = (fun () -> Plain.digest rep);
          rv_log = (fun () -> Plain.log rep);
          rv_state = (fun () -> Plain.state rep);
          rv_pending = (fun () -> 0) }
      in
      let views =
        Endpoint.
          { weak_find = (fun key -> find_in (Dkv.inner (Plain.state rep)) key);
            strong_find = (fun key -> find_in (Dkv.inner (Plain.state rep)) key);
            weak_has = (fun ~client ~rid -> log_has (Plain.log rep) ~client ~rid);
            strong_has = (fun ~client ~rid -> log_has (Plain.log rep) ~client ~rid);
            submit = Plain.submit rep }
      in
      ([ paxos_node; rep_node ], view, views)
    | Algorithm_1_over_4 ->
      invalid_arg
        "Service.Runner: the service layer runs over Algorithm 5 or the Paxos \
         baseline"
  in
  let ep, ep_node = Endpoint.create ctx ~spec ~views in
  let view = { view with rv_pending = (fun () -> Endpoint.pending_count ep) } in
  (* Endpoint last: its polls must see this step's deliveries. *)
  (Engine.stack ((omega_node :: protocol_nodes) @ [ ep_node ]), Replica_handle view)

let dedup_check view =
  let log = view.rv_log () in
  let state = view.rv_state () in
  let replayed = Machines.replay (module Machines.Kv) (Dedup.filter log) in
  String.equal (Machines.Kv.digest replayed) (Machines.Kv.digest (Dkv.inner state))
  && Dkv.suppressed state = Dedup.duplicates log

let run ~setup ~spec ~impl =
  let r = (setup : Harness.Stacks.setup).n in
  let spec =
    match Harness.Service_spec.validate spec with
    | Ok spec -> spec
    | Error msg -> invalid_arg ("Service.Runner: " ^ msg)
  in
  let cfg = engine_config setup ~spec in
  let make_node ctx =
    if Engine.(ctx.self) < r then replica_node setup impl spec ctx
    else
      let client, node =
        Client.create ctx ~spec ~replicas:r ~index:(Engine.(ctx.self) - r)
      in
      (node, Client_handle client)
  in
  let trace, handles = Engine.run_with cfg ~make_node ~inputs:[] in
  let views =
    Array.to_list handles
    |> List.filter_map (function Replica_handle v -> Some v | _ -> None)
  in
  let horizon = (setup : Harness.Stacks.setup).deadline in
  { trace;
    digest = Digest.to_hex (Digest.string (Format.asprintf "%a" Trace.pp trace));
    report = Metrics.of_trace ~spec ~horizon trace;
    replicas = r;
    clients = spec.clients;
    horizon;
    dedup_ok = List.for_all dedup_check views;
    duplicates_delivered =
      List.fold_left (fun acc v -> acc + Dedup.duplicates (v.rv_log ())) 0 views;
    suppressed =
      List.fold_left (fun acc v -> acc + Dkv.suppressed (v.rv_state ())) 0 views;
    weak_digests = List.map (fun v -> v.rv_weak_digest ()) views;
    strong_digests = List.map (fun v -> v.rv_strong_digest ()) views }

let run_builder b =
  match (b : Harness.Builder.t).service with
  | None -> Error "spec has no service line"
  | Some spec ->
    (match b.stack with
     | Harness.Builder.Etob ((Algorithm_5 | Paxos_baseline) as impl) ->
       Ok (run ~setup:(Harness.Builder.setup_of b) ~spec ~impl)
     | _ ->
       Error
         "the service layer runs over stack etob alg5 or the paxos baseline")
