(* The client/endpoint wire protocol and the observable service events.

   Requests and replies travel as ordinary simulator messages, so they ride
   the same delay and fault models as the protocol fabric.  Every
   client-visible milestone (attempt, completion, shed, migration, breaker
   transition) is an [Io.output], which makes the whole service layer a
   function of the trace: metrics, CI gates and the determinism digest all
   read the same history. *)

open Simulator
open Simulator.Types

type op = Write of { key : string; value : string } | Read of { key : string }

type Msg.payload +=
  | Request of { client : proc_id; rid : int; strong : bool; op : op }
  | Ack of { rid : int }
  | Reply of {
      rid : int;
      ok : bool;
      overloaded : bool;
      strong : bool;
      value : string option;
    }

type Io.output +=
  | Attempt of {
      client : proc_id;
      rid : int;
      attempt : int;
      endpoint : proc_id;
      strong : bool;
    }
  | Completed of {
      client : proc_id;
      rid : int;
      ok : bool;
      overloaded : bool;
      write : bool;
      strong : bool;
      latency : int;
      attempts : int;
      endpoint : proc_id;
    }
  | Shed of { endpoint : proc_id }
  | Duplicate_submit of { endpoint : proc_id; client : proc_id; rid : int }
  | Migrated of { client : proc_id; from_endpoint : proc_id; to_endpoint : proc_id }
  | Breaker of { client : proc_id; opened : bool }

let pp_op ppf = function
  | Write { key; value } -> Fmt.pf ppf "put %s=%s" key value
  | Read { key } -> Fmt.pf ppf "get %s" key

let mode strong = if strong then "strong" else "weak"

let () =
  Msg.register_payload_pp (fun ppf -> function
    | Request { client; rid; strong; op } ->
      Fmt.pf ppf "req c%d#%d %s %a" client rid (mode strong) pp_op op;
      true
    | Ack { rid } ->
      Fmt.pf ppf "ack #%d" rid;
      true
    | Reply { rid; ok; overloaded; strong; value } ->
      Fmt.pf ppf "reply #%d %s%s %s%a" rid
        (if ok then "ok" else "fail")
        (if overloaded then "(overloaded)" else "")
        (mode strong)
        Fmt.(option (any "=" ++ string))
        value;
      true
    | _ -> false);
  Io.register_output_pp (fun ppf -> function
    | Attempt { client; rid; attempt; endpoint; strong } ->
      Fmt.pf ppf "c%d#%d attempt %d -> r%d %s" client rid attempt endpoint
        (mode strong);
      true
    | Completed { client; rid; ok; overloaded; write; strong; latency; attempts;
                  endpoint } ->
      Fmt.pf ppf "c%d#%d %s%s %s %s lat=%d tries=%d r%d" client rid
        (if ok then "done" else "gave-up")
        (if overloaded then "(overloaded)" else "")
        (if write then "put" else "get")
        (mode strong) latency attempts endpoint;
      true
    | Shed { endpoint } ->
      Fmt.pf ppf "r%d sheds" endpoint;
      true
    | Duplicate_submit { endpoint; client; rid } ->
      Fmt.pf ppf "r%d dup c%d#%d" endpoint client rid;
      true
    | Migrated { client; from_endpoint; to_endpoint } ->
      Fmt.pf ppf "c%d migrates r%d -> r%d" client from_endpoint to_endpoint;
      true
    | Breaker { client; opened } ->
      Fmt.pf ppf "c%d breaker %s" client (if opened then "opens" else "closes");
      true
    | _ -> false)
