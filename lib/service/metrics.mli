(** Service-level metrics, computed purely from the trace: goodput,
    retry amplification, shed/duplicate/migration counters, nearest-rank
    latency quantiles (p50/p95/p99/p999) and per-window availability keyed
    by request start time. *)

open Simulator
open Simulator.Types

type window = { w_from : time; w_until : time; w_started : int; w_ok : int }

type t = {
  requests : int;  (** completed logical requests, successful or not *)
  ok : int;
  failed : int;
  overloaded_failures : int;  (** gave up on a load-shed final attempt *)
  attempts : int;
  retries : int;  (** attempts beyond each request's first *)
  weak_ok : int;  (** successes served on the speculative path *)
  strong_ok : int;
  sheds : int;
  duplicate_submits : int;
  migrations : int;
  breaker_opens : int;
  breaker_closes : int;
  max_attempts : int;
  latency : Sink.latency_summary option;
  windows : window list;
}

val of_trace : spec:Harness.Service_spec.t -> horizon:int -> Trace.t -> t

val availability : t -> float
(** [ok / requests]; 1.0 when no requests completed. *)

val amplification : t -> float
(** [attempts / ok] — the retry-amplification CI gate; [infinity] when
    nothing succeeded. *)

val goodput_per_kilotick : t -> horizon:int -> int

val availability_in :
  Trace.t -> endpoints:proc_id list -> from_time:time -> until_time:time ->
  int * int
(** [(started, ok)] over requests whose final attempt landed on one of
    [endpoints] and whose {e start} time falls in the window — the
    minority-partition availability probe. *)

val ratio : int * int -> float
(** [(started, ok)] as a fraction; 1.0 for an empty sample. *)

val pp : Format.formatter -> t -> unit
