(** Experiment E22: measured availability under faults (EXPERIMENTS.md).

    One crash+partition schedule, run over Algorithm 5 (with the
    committed/speculative split to degrade across) and over the Paxos
    baseline, plus a replay of the first run.  Four gates: a strict
    minority-partition availability gap in ETOB's favour, bounded retry
    amplification, zero duplicate applies through the dedup machine, and a
    byte-identical replay digest.  Shared by [bench E22] and
    [ecsim service]; this module only computes and renders JSON — callers
    write the files. *)

type side = {
  s_name : string;
  s_outcome : Runner.outcome;
  s_minority : int * int;  (** (started, ok) in the partition probe window *)
}

type gate = { g_name : string; g_pass : bool; g_detail : string }

type t = {
  etob : side;
  paxos : side;
  gates : gate list;
  pass : bool;
  gc_minor_words : float;  (** minor-heap words allocated across the runs *)
  gc_major_words : float;  (** major-heap words promoted/allocated *)
}

val spec : Harness.Service_spec.t
(** The client population both sides run. *)

val setup : seed:int -> Harness.Stacks.setup
(** Five replicas, lossy partition isolating {3,4} for [60, 180), majority
    replica 1 crashing at 200, blockwise oracle Omega. *)

val minority : Simulator.Types.proc_id list
val max_amplification : float

val run : ?seed:int -> unit -> t

val to_json : t -> string
(** The BENCH_service.json payload. *)

val histogram_json : side -> string
(** Raw successful-request latencies — the CI latency-histogram artifact. *)

val sample_specs : seed:int -> count:int -> Harness.Service_spec.t list
(** Deterministic QCheck samples of {!Harness.Service_spec.gen}, shared by
    the smoke gate and the generator tests. *)
