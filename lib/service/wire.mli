(** The client/endpoint wire protocol (requests, acks, replies) and the
    observable service events.  Everything the metrics, CI gates and the
    determinism digest consume is an [Io.output] here, so the service layer
    is judged purely on the trace (DESIGN.md §16). *)

open Simulator
open Simulator.Types

type op = Write of { key : string; value : string } | Read of { key : string }

type Msg.payload +=
  | Request of { client : proc_id; rid : int; strong : bool; op : op }
      (** One attempt of client request [rid]; retries reuse the id, so the
          request is idempotent end to end. *)
  | Ack of { rid : int }
      (** Immediate receipt from the endpoint.  Its absence — not a slow
          reply — is the client's crash signal: only un-acked attempts count
          towards session migration, so a partitioned-but-alive endpoint
          keeps its pinned clients. *)
  | Reply of {
      rid : int;
      ok : bool;
      overloaded : bool;  (** load-shed by admission control *)
      strong : bool;  (** served from the committed (vs speculative) view *)
      value : string option;
    }

type Io.output +=
  | Attempt of {
      client : proc_id;
      rid : int;
      attempt : int;  (** 1-based *)
      endpoint : proc_id;
      strong : bool;
    }
  | Completed of {
      client : proc_id;
      rid : int;
      ok : bool;
      overloaded : bool;  (** the final attempt failed by shedding *)
      write : bool;
      strong : bool;  (** mode of the final attempt *)
      latency : int;  (** completion time minus first-attempt time *)
      attempts : int;
      endpoint : proc_id;  (** endpoint of the final attempt *)
    }
  | Shed of { endpoint : proc_id }  (** admission control refused a write *)
  | Duplicate_submit of { endpoint : proc_id; client : proc_id; rid : int }
      (** A retry reached an endpoint that already watches or re-submitted a
          command for this rid — the replica-side dedup observable. *)
  | Migrated of { client : proc_id; from_endpoint : proc_id; to_endpoint : proc_id }
  | Breaker of { client : proc_id; opened : bool }

val pp_op : Format.formatter -> op -> unit
