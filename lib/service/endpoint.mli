(** The replica-side request endpoint: immediate acks, reads served from the
    requested view, watched writes with queue-depth admission control
    (load-shedding past [queue_limit]), and submit-side idempotency for
    retried request ids.  Stack it {e after} the protocol and replica
    components so its polls see the step's deliveries. *)

open Simulator
open Simulator.Types

type views = {
  weak_find : string -> string option;  (** speculative read of a key *)
  strong_find : string -> string option;  (** committed-prefix read *)
  weak_has : client:proc_id -> rid:int -> bool;
      (** the rid's write is in the delivered (speculative) log *)
  strong_has : client:proc_id -> rid:int -> bool;
      (** … in the committed prefix *)
  submit : Replication.Command.t -> unit;
      (** hand a command to the replication fabric *)
}
(** How the endpoint reads and writes its replica; closures over the
    replica handle, supplied by {!Runner}. *)

type t

val create :
  Engine.ctx -> spec:Harness.Service_spec.t -> views:views -> t * Engine.node

val pending_count : t -> int
(** Currently watched writes (the admission queue depth). *)

val shed_count : t -> int
