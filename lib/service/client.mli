(** The closed-loop client state machine: seeded arrival processes
    (closed / open-loop / bursty), per-attempt deadlines, capped
    exponential backoff with seeded jitter, bounded retry budgets over an
    idempotent request id, ack-based crash suspicion driving session
    migration, and the strong-to-speculative degradation breaker
    (DESIGN.md §16).  All timing comes from the engine's clock and all
    randomness from the per-process {!Simulator.Rng}. *)

open Simulator
open Simulator.Types

type t

val create :
  Engine.ctx ->
  spec:Harness.Service_spec.t ->
  replicas:int ->
  index:int ->
  t * Engine.node
(** [index] is the client's rank in the population (pins it to replica
    [index mod replicas]); [ctx.self] is its process id and request
    provenance. *)

val pin : t -> proc_id
(** The replica this client currently sends to. *)

val requests_started : t -> int
val breaker_open : t -> bool
