(* Service-level metrics, computed purely from the trace.

   Every number here folds over the Wire outputs recorded by clients and
   endpoints, so two runs with equal traces get equal reports — the same
   determinism contract the rest of the harness lives by.  Latency
   quantiles come from Sink.summarize (nearest-rank, so p999 is an actual
   sample).  Availability is windowed by request *start* time
   (completion time minus latency): a request launched into a partition
   counts against the partition's window even if it limps home later. *)

open Simulator
open Simulator.Types

type window = { w_from : time; w_until : time; w_started : int; w_ok : int }

type t = {
  requests : int;
  ok : int;
  failed : int;
  overloaded_failures : int;
  attempts : int;
  retries : int;
  weak_ok : int;
  strong_ok : int;
  sheds : int;
  duplicate_submits : int;
  migrations : int;
  breaker_opens : int;
  breaker_closes : int;
  max_attempts : int;
  latency : Sink.latency_summary option;
  windows : window list;
}

let availability t =
  if t.requests = 0 then 1.0 else float_of_int t.ok /. float_of_int t.requests

let amplification t =
  if t.ok = 0 then infinity
  else float_of_int t.attempts /. float_of_int t.ok

let goodput_per_kilotick t ~horizon =
  if horizon <= 0 then 0 else t.ok * 1000 / horizon

let of_trace ~spec ~horizon trace =
  let window_len = (spec : Harness.Service_spec.t).window in
  let nwin = max 1 ((horizon + window_len - 1) / window_len) in
  let w_started = Array.make nwin 0 in
  let w_ok = Array.make nwin 0 in
  let requests = ref 0 and ok = ref 0 and failed = ref 0 in
  let overloaded_failures = ref 0 in
  let attempts = ref 0 and max_attempts = ref 0 in
  let weak_ok = ref 0 and strong_ok = ref 0 in
  let sheds = ref 0 and duplicate_submits = ref 0 in
  let migrations = ref 0 in
  let breaker_opens = ref 0 and breaker_closes = ref 0 in
  let latencies = ref [] in
  List.iter
    (fun (time, _proc, output) ->
      match output with
      | Wire.Attempt _ -> incr attempts
      | Wire.Completed { ok = was_ok; overloaded; strong; latency; attempts = a; _ }
        ->
        incr requests;
        if a > !max_attempts then max_attempts := a;
        let started = time - latency in
        let w = min (nwin - 1) (max 0 (started / window_len)) in
        w_started.(w) <- w_started.(w) + 1;
        if was_ok then begin
          incr ok;
          w_ok.(w) <- w_ok.(w) + 1;
          latencies := latency :: !latencies;
          if strong then incr strong_ok else incr weak_ok
        end
        else begin
          incr failed;
          if overloaded then incr overloaded_failures
        end
      | Wire.Shed _ -> incr sheds
      | Wire.Duplicate_submit _ -> incr duplicate_submits
      | Wire.Migrated _ -> incr migrations
      | Wire.Breaker { opened; _ } ->
        if opened then incr breaker_opens else incr breaker_closes
      | _ -> ())
    (Trace.outputs trace);
  let completions = !requests in
  let windows =
    List.init nwin (fun i ->
        { w_from = i * window_len;
          w_until = min horizon ((i + 1) * window_len);
          w_started = w_started.(i);
          w_ok = w_ok.(i) })
  in
  { requests = completions;
    ok = !ok;
    failed = !failed;
    overloaded_failures = !overloaded_failures;
    attempts = !attempts;
    retries = !attempts - completions;
    weak_ok = !weak_ok;
    strong_ok = !strong_ok;
    sheds = !sheds;
    duplicate_submits = !duplicate_submits;
    migrations = !migrations;
    breaker_opens = !breaker_opens;
    breaker_closes = !breaker_closes;
    max_attempts = !max_attempts;
    latency = Sink.summarize (Array.of_list (List.rev !latencies));
    windows }

let availability_in trace ~endpoints ~from_time ~until_time =
  let started = ref 0 and ok = ref 0 in
  List.iter
    (fun (time, _proc, output) ->
      match output with
      | Wire.Completed { ok = was_ok; latency; endpoint; _ }
        when List.mem endpoint endpoints ->
        let t0 = time - latency in
        if t0 >= from_time && t0 < until_time then begin
          incr started;
          if was_ok then incr ok
        end
      | _ -> ())
    (Trace.outputs trace);
  (!started, !ok)

let ratio (started, ok) =
  if started = 0 then 1.0 else float_of_int ok /. float_of_int started

let pp ppf t =
  Fmt.pf ppf
    "@[<v>requests=%d ok=%d failed=%d (overloaded %d)@,\
     attempts=%d retries=%d max-tries=%d amplification=%.2f@,\
     strong-ok=%d weak-ok=%d sheds=%d dups=%d migrations=%d breaker=+%d/-%d@,\
     latency %a@]"
    t.requests t.ok t.failed t.overloaded_failures t.attempts t.retries
    t.max_attempts (amplification t) t.strong_ok t.weak_ok t.sheds
    t.duplicate_submits t.migrations t.breaker_opens t.breaker_closes
    Fmt.(option ~none:(any "-") Sink.pp_latency_summary)
    t.latency
