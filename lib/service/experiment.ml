(* Experiment E22: measured availability under faults, ETOB vs Paxos.

   One crash+partition schedule, two runs that differ only in the
   replication stack: Algorithm 5 with the committed prefix (speculative
   reads to degrade to) versus the Paxos strong baseline (one view, no
   degradation).  Five replicas; a lossy partition isolates the {3,4}
   minority for [60, 180), and a majority replica crashes at 200 — after
   the heal — to exercise crash-triggered session migration and the retry
   dedup path.

   During the partition, minority-pinned clients of the ETOB stack fail
   their strong (committed-prefix) requests, trip the breaker, and degrade
   to speculative operations that the minority's block leader keeps
   serving; the same clients of the Paxos stack can still read stale state
   but every write needs a majority and dies exhausting its retry budget.
   The availability gate demands the gap be strict.  The remaining gates
   pin the robustness loop itself: retry amplification stays bounded,
   replica-side dedup lets zero duplicate applies through, and the whole
   closed loop is deterministic (same spec + seed -> byte-identical trace
   digest on a rerun).

   This module computes; the callers (bench E22, `ecsim service`) print
   and write files. *)

open Simulator
open Harness

let replicas = 5
let deadline = 280
let blocks = [ [ 0; 1; 2 ]; [ 3; 4 ] ]
let partition_from = 60
let partition_until = 180
let crash_proc = 1
let crash_at_time = 200
let minority = [ 3; 4 ]

(* Measured strictly inside the partition so edge requests straddling the
   cut or the heal don't blur the gap. *)
let probe_from = partition_from + 10
let probe_until = partition_until - 10

let spec =
  { Service_spec.clients = 6;
    arrival = Service_spec.Closed { think = 3 };
    keys = 4;
    skew_pct = 30;
    write_pct = 60;
    req_deadline = 16;
    retries = 3;
    backoff_base = 2;
    backoff_cap = 12;
    jitter_pct = 50;
    queue_limit = 8;
    breaker_k = 2;
    breaker_cooldown = 16;
    strong = true;
    migrate_after = 3;
    window = 20 }

let setup ~seed =
  { (Stacks.default ~n:replicas ~deadline) with
    seed;
    faults =
      Net.lossy_partition
        { blocks; from_time = partition_from; until_time = partition_until };
    pattern =
      Failures.crash_at (Failures.none ~n:replicas) crash_proc crash_at_time;
    omega =
      Stacks.Oracle
        { stabilize_at = partition_until;
          pre = Detectors.Omega.Blockwise blocks } }

type side = {
  s_name : string;
  s_outcome : Runner.outcome;
  s_minority : int * int;
}

type gate = { g_name : string; g_pass : bool; g_detail : string }

type t = {
  etob : side;
  paxos : side;
  gates : gate list;
  pass : bool;
  gc_minor_words : float;
  gc_major_words : float;
}

let side ~name ~seed impl =
  let outcome = Runner.run ~setup:(setup ~seed) ~spec ~impl in
  { s_name = name;
    s_outcome = outcome;
    s_minority =
      Metrics.availability_in outcome.trace ~endpoints:minority
        ~from_time:probe_from ~until_time:probe_until }

let max_amplification = 2.0

let run ?(seed = 42) () =
  let gc0 = Gc.quick_stat () in
  let etob = side ~name:"etob" ~seed Stacks.Algorithm_5 in
  let paxos = side ~name:"paxos" ~seed Stacks.Paxos_baseline in
  let replay = side ~name:"etob-replay" ~seed Stacks.Algorithm_5 in
  let e_avail = Metrics.ratio etob.s_minority in
  let p_avail = Metrics.ratio paxos.s_minority in
  let e_started, e_ok = etob.s_minority in
  let p_started, p_ok = paxos.s_minority in
  let amp = Metrics.amplification etob.s_outcome.report in
  let budget = 1 + spec.retries in
  let max_tries =
    max etob.s_outcome.report.max_attempts paxos.s_outcome.report.max_attempts
  in
  let gates =
    [ { g_name = "availability-gap";
        g_pass = e_started > 0 && p_started > 0 && e_avail > p_avail;
        g_detail =
          Printf.sprintf "minority etob %d/%d (%.2f) vs paxos %d/%d (%.2f)"
            e_ok e_started e_avail p_ok p_started p_avail };
      { g_name = "retry-amplification";
        g_pass = amp <= max_amplification && max_tries <= budget;
        g_detail =
          Printf.sprintf "etob attempts/ok = %.2f (cap %.1f), max tries %d/%d"
            amp max_amplification max_tries budget };
      { g_name = "dedup";
        g_pass = etob.s_outcome.dedup_ok && paxos.s_outcome.dedup_ok;
        g_detail =
          Printf.sprintf
            "zero duplicate applies; %d+%d duplicate deliveries suppressed"
            etob.s_outcome.suppressed paxos.s_outcome.suppressed };
      { g_name = "determinism";
        g_pass = String.equal etob.s_outcome.digest replay.s_outcome.digest;
        g_detail =
          Printf.sprintf "replay digest %s %s" replay.s_outcome.digest
            (if String.equal etob.s_outcome.digest replay.s_outcome.digest then
               "== first run"
             else "!= " ^ etob.s_outcome.digest) } ]
  in
  let gc1 = Gc.quick_stat () in
  { etob;
    paxos;
    gates;
    pass = List.for_all (fun g -> g.g_pass) gates;
    gc_minor_words = gc1.Gc.minor_words -. gc0.Gc.minor_words;
    gc_major_words = gc1.Gc.major_words -. gc0.Gc.major_words }

(* ------------------------------------------------------------------ *)
(* JSON renderers (callers write the files)                            *)
(* ------------------------------------------------------------------ *)

let side_json s =
  let o = s.s_outcome in
  let r = o.report in
  let started, ok = s.s_minority in
  let lat =
    match r.latency with
    | None -> "null"
    | Some l ->
      Printf.sprintf
        "{ \"count\": %d, \"p50\": %d, \"p95\": %d, \"p99\": %d, \"p999\": %d, \
         \"max\": %d }"
        l.count l.p50 l.p95 l.p99 l.p999 l.max
  in
  Printf.sprintf
    "    { \"impl\": %S, \"requests\": %d, \"ok\": %d, \"failed\": %d,\n\
    \      \"availability\": %.4f, \"minority_started\": %d, \
     \"minority_ok\": %d, \"minority_availability\": %.4f,\n\
    \      \"attempts\": %d, \"retries\": %d, \"amplification\": %.4f, \
     \"max_attempts\": %d,\n\
    \      \"goodput_per_kilotick\": %d, \"sheds\": %d, \
     \"duplicate_submits\": %d, \"migrations\": %d,\n\
    \      \"breaker_opens\": %d, \"strong_ok\": %d, \"weak_ok\": %d,\n\
    \      \"duplicates_delivered\": %d, \"suppressed\": %d, \
     \"dedup_ok\": %b, \"digest\": %S,\n\
    \      \"latency\": %s }"
    s.s_name r.requests r.ok r.failed
    (Metrics.availability r)
    started ok
    (Metrics.ratio s.s_minority)
    r.attempts r.retries
    (Metrics.amplification r)
    r.max_attempts
    (Metrics.goodput_per_kilotick r ~horizon:o.horizon)
    r.sheds r.duplicate_submits r.migrations r.breaker_opens r.strong_ok
    r.weak_ok o.duplicates_delivered o.suppressed o.dedup_ok o.digest lat

let gate_json g =
  Printf.sprintf "    { \"gate\": %S, \"pass\": %b, \"detail\": %S }" g.g_name
    g.g_pass g.g_detail

let to_json t =
  Printf.sprintf
    "{\n\
    \  \"experiment\": \"E22\",\n\
    \  \"replicas\": %d,\n\
    \  \"clients\": %d,\n\
    \  \"deadline\": %d,\n\
    \  \"partition\": [%d, %d],\n\
    \  \"crash\": { \"proc\": %d, \"at\": %d },\n\
    \  \"spec\": %S,\n\
    \  \"sides\": [\n%s\n  ],\n\
    \  \"gates\": [\n%s\n  ],\n\
    \  \"gc_minor_words\": %.0f,\n\
    \  \"gc_major_words\": %.0f,\n\
    \  \"pass\": %b\n\
     }\n"
    replicas spec.clients deadline partition_from partition_until crash_proc
    crash_at_time
    (Service_spec.to_string spec)
    (String.concat ",\n" [ side_json t.etob; side_json t.paxos ])
    (String.concat ",\n" (List.map gate_json t.gates))
    t.gc_minor_words t.gc_major_words t.pass

(* The raw per-request latency series, for the CI failure artifact: enough
   to re-derive any histogram offline. *)
let histogram_json s =
  let lats =
    List.filter_map
      (fun (_, _, output) ->
        match output with
        | Wire.Completed { ok = true; latency; _ } -> Some (string_of_int latency)
        | _ -> None)
      (Trace.outputs s.s_outcome.trace)
  in
  Printf.sprintf
    "{ \"impl\": %S, \"count\": %d, \"latencies_ticks\": [%s] }\n" s.s_name
    (List.length lats) (String.concat "," lats)

(* Deterministic QCheck sampling of service specs, shared by the smoke
   gate and the generator tests. *)
let sample_specs ~seed ~count =
  (* detlint: allow D1 the state is derived from the caller's fixed seed, so every sampled spec replays deterministically *)
  let rand = Random.State.make [| 0x5e11; seed |] in
  QCheck.Gen.generate ~n:count ~rand Service_spec.gen
