(* The replica-side request endpoint: admission control and reply plumbing.

   One endpoint rides each replica process, stacked after the protocol and
   replica components so that, by the time it runs on any event, the
   replica views already reflect that event's deliveries.  Reads are
   answered immediately from the requested view.  Writes are submitted to
   the replication fabric and watched until the request id becomes visible
   in the requested view's log; the watch list doubles as the admission
   queue — past [queue_limit] pending writes the endpoint sheds load with a
   distinct overloaded reply instead of queueing more.

   Every request is acked on receipt, whatever its fate.  The ack is the
   client's liveness signal: a partitioned endpoint still acks (and still
   serves weak reads), so only a crashed endpoint looks dead.

   Idempotency: retries of rid already watched or already visible never
   re-enter the fabric — the endpoint re-watches (or re-replies) and emits
   a [Duplicate_submit] observable instead.  Cross-endpoint retries can
   still double-submit; the {!Replication.Dedup} machine filters those at apply
   time, and the runner checks that none leak into the state. *)

open Simulator
open Simulator.Types
open Replication

type views = {
  weak_find : string -> string option;
  strong_find : string -> string option;
  weak_has : client:proc_id -> rid:int -> bool;
  strong_has : client:proc_id -> rid:int -> bool;
  submit : Command.t -> unit;
}

type watch = { w_client : proc_id; w_rid : int; w_strong : bool }

type t = {
  ctx : Engine.ctx;
  spec : Harness.Service_spec.t;
  views : views;
  mutable pending : watch list;  (** in arrival order *)
  mutable submitted : (proc_id * int) list;  (** rids this endpoint put in *)
  mutable sheds : int;
}

let visible t ~strong ~client ~rid =
  if strong then t.views.strong_has ~client ~rid
  else t.views.weak_has ~client ~rid

let reply_ok t ~client ~rid ~strong ~value =
  t.ctx.send client (Wire.Reply { rid; ok = true; overloaded = false; strong; value })

let poll t =
  let ready, waiting =
    List.partition
      (fun w -> visible t ~strong:w.w_strong ~client:w.w_client ~rid:w.w_rid)
      t.pending
  in
  t.pending <- waiting;
  List.iter
    (fun w -> reply_ok t ~client:w.w_client ~rid:w.w_rid ~strong:w.w_strong ~value:None)
    ready

let handle_write t ~client ~rid ~strong ~key ~value =
  if visible t ~strong ~client ~rid then
    (* The write already reached the requested view (an earlier attempt
       landed): idempotent re-ack, nothing re-enters the fabric. *)
    reply_ok t ~client ~rid ~strong ~value:None
  else if List.exists (fun w -> w.w_client = client && w.w_rid = rid) t.pending
  then begin
    (* A retry caught up with its own watch; refresh the mode (the client
       may have degraded between attempts) without growing the queue. *)
    t.ctx.output (Wire.Duplicate_submit { endpoint = t.ctx.self; client; rid });
    t.pending <-
      List.map
        (fun w ->
          if w.w_client = client && w.w_rid = rid then { w with w_strong = strong }
          else w)
        t.pending
  end
  else if List.length t.pending >= t.spec.queue_limit then begin
    t.sheds <- t.sheds + 1;
    t.ctx.output (Wire.Shed { endpoint = t.ctx.self });
    t.ctx.send client
      (Wire.Reply { rid; ok = false; overloaded = true; strong; value = None })
  end
  else begin
    (if List.mem (client, rid) t.submitted || t.views.weak_has ~client ~rid then
       (* Already in flight through this endpoint (or visible speculatively
          while the client waits for commit): don't re-broadcast. *)
       t.ctx.output (Wire.Duplicate_submit { endpoint = t.ctx.self; client; rid })
     else begin
       t.submitted <- (client, rid) :: t.submitted;
       t.views.submit (Command.wput ~client ~rid key value)
     end);
    t.pending <- t.pending @ [ { w_client = client; w_rid = rid; w_strong = strong } ]
  end

let handle_request t ~client ~rid ~strong ~op =
  t.ctx.send client (Wire.Ack { rid });
  match (op : Wire.op) with
  | Read { key } ->
    let value =
      if strong then t.views.strong_find key else t.views.weak_find key
    in
    reply_ok t ~client ~rid ~strong ~value
  | Write { key; value } -> handle_write t ~client ~rid ~strong ~key ~value

let create ctx ~spec ~views =
  let t = { ctx; spec; views; pending = []; submitted = []; sheds = 0 } in
  let node =
    Engine.
      { on_message =
          (fun ~src:_ payload ->
            (match payload with
             | Wire.Request { client; rid; strong; op } ->
               handle_request t ~client ~rid ~strong ~op
             | _ -> ());
            (* Any payload (an Update, an Accepted quorum…) may have grown
               the views this step. *)
            poll t);
        on_timer = (fun () -> poll t);
        on_input = (fun _ -> ());
      }
  in
  (t, node)

let pending_count t = List.length t.pending
let shed_count t = t.sheds
