(* The closed-loop client: arrivals, retries, backoff, migration and the
   degradation breaker — the robustness loop every request travels.

   One client process drives one logical request at a time through a small
   state machine:

     Idle --(arrival)--> Waiting --(ok reply)-----------------> Idle
                            |  ^                                  ^
            (deadline/shed) |  | (resend at backoff expiry)       |
                            v  |                                  |
                          Backoff --(budget exhausted)------------+

   Retries reuse the request id, so the request stays idempotent end to
   end; the per-attempt backoff is capped exponential with seeded jitter.
   Crash suspicion is ack-based: only attempts that receive no Ack at all
   count towards the migration streak, so a partitioned-but-alive endpoint
   keeps its pinned clients and the availability gap stays a protocol
   property, not a routing artifact.  Strong-mode failures feed a circuit
   breaker (closed -> open -> half-open probe, cooldown doubling up to 8x);
   while the breaker is open the client degrades committed-prefix requests
   to the speculative path — the graceful-degradation switch of
   DESIGN.md §16. *)

open Simulator
open Simulator.Types
open Harness

type breaker = Closed | Open_until of time | Half_open

type inflight = {
  rid : int;
  op : Wire.op;
  write : bool;
  mutable strong : bool;  (* mode of the current attempt *)
  mutable attempt : int;  (* 1-based *)
  first_sent : time;
  mutable sent_at : time;
  mutable acked : bool;
  mutable endpoint : proc_id;
}

type phase = Idle | Waiting of inflight | Backoff of inflight

type t = {
  ctx : Engine.ctx;
  spec : Service_spec.t;
  replicas : int;
  mutable pin : proc_id;
  mutable phase : phase;
  mutable next_at : time;  (* arrival (Idle) or resend (Backoff) time *)
  mutable rid_next : int;
  mutable dead_streak : int;  (* consecutive fully-unacked attempts *)
  mutable strong_fails : int;  (* consecutive strong-mode failures *)
  mutable breaker : breaker;
  mutable cooldown : int;
  mutable sched : time;  (* open-loop arrival cursor *)
  mutable burst_left : int;
}

(* Uniform in [1, 2m-1]: jitter with mean m, never zero. *)
let draw_mean t m = 1 + Rng.int t.ctx.rng (max 1 ((2 * m) - 1))

let schedule_next t ~now =
  (match t.spec.arrival with
   | Service_spec.Closed { think } -> t.next_at <- now + draw_mean t think
   | Service_spec.Open_loop { gap } ->
     (* Paced independently of completions; a lagging loop collapses the
        backlog to back-to-back rather than replaying it. *)
     t.sched <- max t.sched now;
     t.sched <- t.sched + draw_mean t gap;
     t.next_at <- t.sched
   | Service_spec.Bursty { burst; gap } ->
     if t.burst_left > 0 then begin
       t.burst_left <- t.burst_left - 1;
       t.next_at <- now
     end
     else begin
       t.burst_left <- burst - 1;
       t.next_at <- now + gap
     end);
  t.phase <- Idle

(* The mode of the next attempt, advancing an expired cooldown to the
   half-open probe state. *)
let attempt_strong t ~now =
  if not t.spec.strong then false
  else
    match t.breaker with
    | Closed | Half_open -> true
    | Open_until until ->
      if now >= until then begin
        t.breaker <- Half_open;
        true
      end
      else false

let send_attempt t (inf : inflight) ~now =
  inf.attempt <- inf.attempt + 1;
  inf.strong <- attempt_strong t ~now;
  inf.sent_at <- now;
  inf.acked <- false;
  inf.endpoint <- t.pin;
  t.ctx.output
    (Wire.Attempt
       { client = t.ctx.self; rid = inf.rid; attempt = inf.attempt;
         endpoint = t.pin; strong = inf.strong });
  t.ctx.send t.pin
    (Wire.Request { client = t.ctx.self; rid = inf.rid; strong = inf.strong;
                    op = inf.op });
  t.phase <- Waiting inf

let start_request t ~now =
  let rid = t.rid_next in
  t.rid_next <- rid + 1;
  let key =
    if Rng.int t.ctx.rng 100 < t.spec.skew_pct then "hot"
    else Printf.sprintf "k%d" (Rng.int t.ctx.rng t.spec.keys)
  in
  let write = Rng.int t.ctx.rng 100 < t.spec.write_pct in
  let op =
    if write then
      Wire.Write { key; value = Printf.sprintf "v%d.%d" t.ctx.self rid }
    else Wire.Read { key }
  in
  let inf =
    { rid; op; write; strong = false; attempt = 0; first_sent = now;
      sent_at = now; acked = false; endpoint = t.pin }
  in
  send_attempt t inf ~now

let finish t (inf : inflight) ~now ~ok ~overloaded =
  t.ctx.output
    (Wire.Completed
       { client = t.ctx.self; rid = inf.rid; ok; overloaded; write = inf.write;
         strong = inf.strong; latency = now - inf.first_sent;
         attempts = inf.attempt; endpoint = inf.endpoint });
  schedule_next t ~now

(* Feed one strong-mode attempt result to the circuit breaker. *)
let breaker_feed t ~now ~ok ~strong =
  if strong then
    if ok then begin
      t.strong_fails <- 0;
      match t.breaker with
      | Half_open ->
        t.breaker <- Closed;
        t.cooldown <- t.spec.breaker_cooldown;
        t.ctx.output (Wire.Breaker { client = t.ctx.self; opened = false })
      | Closed | Open_until _ -> ()
    end
    else
      match t.breaker with
      | Half_open ->
        (* Failed probe: reopen, doubling the cooldown up to 8x. *)
        t.cooldown <- min (2 * t.cooldown) (8 * t.spec.breaker_cooldown);
        t.breaker <- Open_until (now + t.cooldown);
        t.ctx.output (Wire.Breaker { client = t.ctx.self; opened = true })
      | Closed ->
        t.strong_fails <- t.strong_fails + 1;
        if t.strong_fails >= t.spec.breaker_k then begin
          t.breaker <- Open_until (now + t.cooldown);
          t.ctx.output (Wire.Breaker { client = t.ctx.self; opened = true })
        end
      | Open_until _ -> ()

let attempt_failed t (inf : inflight) ~now ~overloaded =
  (* Crash suspicion: only silent attempts count.  A shed or a timed-out
     strong reply still proves the endpoint alive. *)
  if inf.acked then t.dead_streak <- 0
  else begin
    t.dead_streak <- t.dead_streak + 1;
    if t.dead_streak >= t.spec.migrate_after && t.replicas > 1 then begin
      let from_endpoint = t.pin in
      t.pin <- (t.pin + 1) mod t.replicas;
      t.dead_streak <- 0;
      t.ctx.output
        (Wire.Migrated { client = t.ctx.self; from_endpoint; to_endpoint = t.pin })
    end
  end;
  breaker_feed t ~now ~ok:false ~strong:inf.strong;
  if inf.attempt <= t.spec.retries then begin
    let exp = min 20 (inf.attempt - 1) in
    let base = min t.spec.backoff_cap (t.spec.backoff_base * (1 lsl exp)) in
    let span = base * t.spec.jitter_pct / 100 in
    let jitter = if span <= 0 then 0 else Rng.int t.ctx.rng (span + 1) in
    t.next_at <- now + base + jitter;
    t.phase <- Backoff inf
  end
  else finish t inf ~now ~ok:false ~overloaded

let succeed t (inf : inflight) ~now =
  breaker_feed t ~now ~ok:true ~strong:inf.strong;
  t.dead_streak <- 0;
  finish t inf ~now ~ok:true ~overloaded:false

let on_message t ~src payload =
  let now = t.ctx.now () in
  match payload with
  | Wire.Ack { rid } ->
    (match t.phase with
     | Waiting inf when inf.rid = rid && src = inf.endpoint ->
       inf.acked <- true;
       t.dead_streak <- 0
     | _ -> ())
  | Wire.Reply { rid; ok; overloaded; _ } ->
    (match t.phase with
     | Waiting inf when inf.rid = rid ->
       if ok then succeed t inf ~now
       else attempt_failed t inf ~now ~overloaded
     | Backoff inf when inf.rid = rid && ok ->
       (* A slow success overtook its own timeout: the operation did
          complete, so count it and cancel the retry. *)
       succeed t inf ~now
     | _ -> ())
  | _ -> ()

let on_timer t () =
  let now = t.ctx.now () in
  match t.phase with
  | Idle -> if now >= t.next_at then start_request t ~now
  | Backoff inf -> if now >= t.next_at then send_attempt t inf ~now
  | Waiting inf ->
    if now >= inf.sent_at + t.spec.req_deadline then
      attempt_failed t inf ~now ~overloaded:false

let create ctx ~spec ~replicas ~index =
  let mean_gap =
    match (spec : Service_spec.t).arrival with
    | Service_spec.Closed { think } -> think
    | Service_spec.Open_loop { gap } -> gap
    | Service_spec.Bursty { gap; _ } -> gap
  in
  let t =
    { ctx; spec; replicas;
      pin = index mod replicas;
      phase = Idle;
      (* Stagger first arrivals so a population doesn't fire in lockstep. *)
      next_at = 1 + Rng.int ctx.rng (mean_gap + 1);
      rid_next = 0;
      dead_streak = 0;
      strong_fails = 0;
      breaker = Closed;
      cooldown = spec.breaker_cooldown;
      sched = 0;
      burst_left =
        (match spec.arrival with
         | Service_spec.Bursty { burst; _ } -> burst - 1
         | _ -> 0) }
  in
  t.sched <- t.next_at;
  let node =
    Engine.
      { on_message = on_message t;
        on_timer = on_timer t;
        on_input = (fun _ -> ()) }
  in
  (t, node)

let pin t = t.pin
let requests_started t = t.rid_next
let breaker_open t = match t.breaker with Closed -> false | _ -> true
