(** Run a closed-loop client population (per {!Harness.Service_spec}) against
    a replicated-service stack, all inside one deterministic engine run.

    Replicas occupy processes [0, r) and clients [r, r + clients); the
    replica-group protocols run behind a shimmed ctx (group-local [n] and
    [broadcast]) so quorums ignore the client processes.  Partition and
    fault schedules apply to the replica fabric only — observed
    unavailability is the protocol's, not the routing's.  Replicas serve a
    Kv machine behind the {!Replication.Dedup} filter; the outcome carries
    the replayed dedup cross-check ("zero duplicate applies"). *)

open Simulator
open Simulator.Types
open Replication

module Dkv : sig
  include Machines.MACHINE

  val inner : state -> Machines.Kv.state
  val applied : state -> int
  val suppressed : state -> int
end
(** The served machine: Kv behind first-occurrence dedup. *)

type outcome = {
  trace : Trace.t;
  digest : string;  (** md5 of the printed trace — the determinism digest *)
  report : Metrics.t;
  replicas : int;
  clients : int;
  horizon : time;
  dedup_ok : bool;
      (** every replica's machine state equals a replay of its raw log
          through {!Replication.Dedup.filter}, with matching suppression
          counts *)
  duplicates_delivered : int;  (** duplicate deliveries across replica logs *)
  suppressed : int;  (** duplicates the machines dropped at apply time *)
  weak_digests : string list;  (** final speculative digest per replica *)
  strong_digests : string list;  (** final committed digest per replica *)
}

val run :
  setup:Harness.Stacks.setup ->
  spec:Harness.Service_spec.t ->
  impl:Harness.Stacks.etob_impl ->
  outcome
(** [setup.n] is the replica count.  Raises [Invalid_argument] on an
    invalid spec or on [Algorithm_1_over_4] (no committed prefix to serve
    strong reads from). *)

val run_builder : Harness.Builder.t -> (outcome, string) result
(** Interpret a parsed spec file: needs a [service ...] line and a
    [stack etob ...] over Algorithm 5 or the Paxos baseline. *)
