(* Client sessions and the classical session guarantees.

   Eventual consistency is specified here (as in the paper) on the
   replicas' delivered sequences; what a CLIENT experiences is usually
   phrased as session guarantees (Terry et al.): read-your-writes and
   monotonic reads.  This module runs a session client against a local
   replica view and counts guarantee violations over the run — zero after
   the broadcast layer stabilizes, measurably positive before, and a
   different trade-off for the speculative vs the committed view
   (experiment E14).

   Protocol of a session: client c, pinned to replica p, writes the key
   "s<c>" with strictly increasing integer values and reads it back
   between writes.  With per-session keys:
   - a READ-YOUR-WRITES violation is a read returning a value smaller than
     the session's last written value (or missing entirely);
   - a MONOTONIC-READS violation is a read returning a value smaller than
     a previous read of the session. *)

open Simulator
open Simulator.Types

type Io.input += Session_step | Session_step_for of int
type Io.output +=
  | Session_write of { session : int; value : int }
  | Session_read of { session : int; view : string; value : int option }

type view = { v_name : string; v_lookup : unit -> string option }

type t = {
  ctx : Engine.ctx;
  session : int;
  key : string;
  views : view list;
  submit : Command.t -> unit;
  mutable written : int;
}

let key_of session = Printf.sprintf "s%d" session

(* One session step: read every view, then write the next value. *)
let step t =
  List.iter
    (fun view ->
       let value = Option.bind (view.v_lookup ()) int_of_string_opt in
       t.ctx.Engine.output
         (Session_read { session = t.session; view = view.v_name; value }))
    t.views;
  t.written <- t.written + 1;
  t.ctx.Engine.output (Session_write { session = t.session; value = t.written });
  t.submit (Command.put t.key (string_of_int t.written))

(* [resume_at] hands a migrated session its pre-crash write counter: a
   correct migration resumes the monotone value stream, a naive one
   restarts at 0 and the guarantee checkers flag every re-written value. *)
let create ?(resume_at = 0) (ctx : Engine.ctx) ~session ~views ~submit =
  let t =
    { ctx; session; key = key_of session; views; submit; written = resume_at }
  in
  let node =
    { Engine.idle_node with
      on_input = (function
        | Session_step -> step t
        | Session_step_for s when s = session -> step t
        | _ -> ()) }
  in
  (t, node)

(* ------------------------------------------------------------------ *)
(* Trace analysis                                                      *)
(* ------------------------------------------------------------------ *)

type tally = {
  reads : int;
  ryw_violations : int;  (* read-your-writes *)
  mr_violations : int;  (* monotonic reads *)
  last_violation : time;  (* 0 if none *)
}

(* Violations for one (session, view) stream. *)
let tally_of_trace trace ~session ~view =
  let reads = ref 0 and ryw = ref 0 and mr = ref 0 and last = ref 0 in
  let written = ref 0 and last_read = ref 0 in
  List.iter
    (fun (t, _, o) ->
       match o with
       | Session_write { session = s; value } when s = session -> written := value
       | Session_read { session = s; view = v; value } when s = session && v = view ->
         incr reads;
         let seen = Option.value ~default:0 value in
         if seen < !written then begin incr ryw; last := max !last t end;
         if seen < !last_read then begin incr mr; last := max !last t end;
         last_read := max !last_read seen
       | _ -> ())
    (Trace.outputs trace);
  { reads = !reads; ryw_violations = !ryw; mr_violations = !mr;
    last_violation = !last }

let pp_tally ppf t =
  Fmt.pf ppf "reads=%d ryw=%d mr=%d last@%d" t.reads t.ryw_violations
    t.mr_violations t.last_violation

let () =
  Io.register_input_pp (fun ppf -> function
    | Session_step -> Fmt.string ppf "session-step"; true
    | Session_step_for s -> Fmt.pf ppf "session-step(s%d)" s; true
    | _ -> false);
  Io.register_output_pp (fun ppf -> function
    | Session_write { session; value } ->
      Fmt.pf ppf "s%d writes %d" session value; true
    | Session_read { session; view; value } ->
      Fmt.pf ppf "s%d reads[%s] %a" session view Fmt.(option ~none:(any "-") int) value;
      true
    | _ -> false)
