(** Replica-side deduplication of idempotent client writes.

    Client retries may inject the same [(client, rid)] write into the
    broadcast layer more than once (e.g. re-submitted through a different
    endpoint after a crash-triggered session migration), and every copy is
    eventually delivered at every replica.  Deduplication is a
    deterministic filter over the {e delivered} sequence — keep the first
    occurrence of each id, drop the rest — so all replicas converge to the
    same deduplicated state and a restarted replica re-derives the same
    duplicate set from its replayed log. *)

val filter : Command.t list -> Command.t list
(** First-occurrence filter over [(client, rid)] ids; commands without
    provenance ({!Command.rid_of} = [None]) pass through untouched. *)

val duplicates : Command.t list -> int
(** Number of commands {!filter} would drop. *)

module Make (M : Machines.MACHINE) : sig
  include Machines.MACHINE

  val inner : state -> M.state
  (** The wrapped machine's state, with every duplicate applied once. *)

  val applied : state -> int
  (** Provenance-carrying writes applied (unique ids seen). *)

  val suppressed : state -> int
  (** Duplicate provenance-carrying writes dropped at apply time. *)
end
(** [Make (M)] is [M] behind the first-occurrence filter: duplicates of a
    [(client, rid)] write are dropped at apply time and counted instead of
    re-applied. *)
