(* Replica-side deduplication of idempotent client writes.

   A client retry can reach the broadcast layer twice — most visibly when a
   crash of the pinned replica migrates the session and the retried request
   is re-submitted through a different endpoint.  Both copies are then
   (eventually) delivered at every replica.  Deduplication must therefore
   happen at APPLY time, on the delivered sequence itself: every replica
   keeps the first occurrence of each [(client, rid)] and drops the rest.
   Because the filter is a deterministic function of the sequence, all
   replicas converge to the same deduplicated state, and a restarted
   replica re-derives the same duplicate set from its replayed log — no
   separate dedup table has to survive the crash. *)

module Rid = struct
  type t = int * int

  let compare (a, b) (c, d) =
    match Int.compare a c with 0 -> Int.compare b d | o -> o
end

module Rid_set = Set.Make (Rid)

let filter commands =
  let seen = ref Rid_set.empty in
  List.filter
    (fun c ->
       match Command.rid_of c with
       | None -> true
       | Some rid ->
         if Rid_set.mem rid !seen then false
         else begin seen := Rid_set.add rid !seen; true end)
    commands

let duplicates commands =
  List.length commands - List.length (filter commands)

module Make (M : Machines.MACHINE) = struct
  type state = {
    inner : M.state;
    seen : Rid_set.t;
    applied : int;
    suppressed : int;
  }

  let name = M.name ^ "+dedup"
  let init = { inner = M.init; seen = Rid_set.empty; applied = 0; suppressed = 0 }

  let apply state c =
    match Command.rid_of c with
    | Some rid when Rid_set.mem rid state.seen ->
      { state with suppressed = state.suppressed + 1 }
    | Some rid ->
      { inner = M.apply state.inner c;
        seen = Rid_set.add rid state.seen;
        applied = state.applied + 1;
        suppressed = state.suppressed }
    | None -> { state with inner = M.apply state.inner c }

  (* The seen-set is a function of (applied, suppressed, inner) over any
     fixed delivered sequence, so the digest stays canonical for the
     convergence checkers without rendering the whole set. *)
  let digest state =
    Printf.sprintf "%s|applied=%d|suppressed=%d" (M.digest state.inner)
      state.applied state.suppressed

  let inner state = state.inner
  let applied state = state.applied
  let suppressed state = state.suppressed
end
