(** Commands of the replicated service, serialized into broadcast message
    tags. *)

type t =
  | Incr of int
  | Put of string * string
  | Del of string
  | Enqueue of string
  | Dequeue
  | Set_reg of string
  | Wput of { client : int; rid : int; key : string; value : string }
      (** A [Put] carrying its provenance: the issuing client and an
          idempotent per-client request id, so replicas can deduplicate
          client retries that reach the broadcast layer more than once
          (e.g. after a crash-triggered session migration). *)

val incr : int -> t
val put : string -> string -> t
(** Raises [Invalid_argument] if key or value contains [':']. *)

val del : string -> t
val enqueue : string -> t
val dequeue : t
val set_reg : string -> t

val wput : client:int -> rid:int -> string -> string -> t
(** Raises [Invalid_argument] if key or value contains [':'] or an id is
    negative. *)

val rid_of : t -> (int * int) option
(** [(client, rid)] of a provenance-carrying write; [None] otherwise. *)

val to_tag : t -> string
val of_tag : string -> t option
(** [of_tag (to_tag c) = Some c]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
