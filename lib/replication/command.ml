(* Commands of the replicated service.

   Commands are the application messages of the title's "replicated
   service": clients broadcast them through (E)TOB and replicas apply the
   delivered sequence to a deterministic state machine.  A command is
   serialized into the broadcast message's tag; keys and values must not
   contain ':' (checked at construction). *)

type t =
  | Incr of int
  | Put of string * string
  | Del of string
  | Enqueue of string
  | Dequeue
  | Set_reg of string
  | Wput of { client : int; rid : int; key : string; value : string }

let check_atom what s =
  if String.contains s ':' then
    invalid_arg (Printf.sprintf "Command: %s must not contain ':' (%S)" what s)

let incr amount = Incr amount
let put key value = check_atom "key" key; check_atom "value" value; Put (key, value)
let del key = check_atom "key" key; Del key
let enqueue item = check_atom "item" item; Enqueue item
let dequeue = Dequeue
let set_reg value = check_atom "value" value; Set_reg value

let wput ~client ~rid key value =
  if client < 0 || rid < 0 then
    invalid_arg "Command.wput: client and rid must be non-negative";
  check_atom "key" key;
  check_atom "value" value;
  Wput { client; rid; key; value }

let rid_of = function
  | Wput { client; rid; _ } -> Some (client, rid)
  | Incr _ | Put _ | Del _ | Enqueue _ | Dequeue | Set_reg _ -> None

let to_tag = function
  | Incr n -> Printf.sprintf "incr:%d" n
  | Put (k, v) -> Printf.sprintf "put:%s:%s" k v
  | Del k -> Printf.sprintf "del:%s" k
  | Enqueue x -> Printf.sprintf "enq:%s" x
  | Dequeue -> "deq"
  | Set_reg v -> Printf.sprintf "set:%s" v
  | Wput { client; rid; key; value } ->
    Printf.sprintf "wput:%d:%d:%s:%s" client rid key value

let of_tag tag =
  match String.split_on_char ':' tag with
  | [ "incr"; n ] -> Option.map (fun n -> Incr n) (int_of_string_opt n)
  | [ "put"; k; v ] -> Some (Put (k, v))
  | [ "del"; k ] -> Some (Del k)
  | [ "enq"; x ] -> Some (Enqueue x)
  | [ "deq" ] -> Some Dequeue
  | [ "set"; v ] -> Some (Set_reg v)
  | [ "wput"; c; r; key; value ] ->
    (match (int_of_string_opt c, int_of_string_opt r) with
     | Some client, Some rid when client >= 0 && rid >= 0 ->
       Some (Wput { client; rid; key; value })
     | _ -> None)
  | _ -> None

let equal a b = a = b

let pp ppf c = Fmt.string ppf (to_tag c)
