(** Client sessions and the classical session guarantees (read-your-writes,
    monotonic reads), counted over a run for any replica view — the
    client-visible face of eventual consistency (experiment E14). *)

open Simulator
open Simulator.Types

type Io.input += Session_step | Session_step_for of int
(** Drive one session step: read every view, then write the next value.
    [Session_step] steps every session node on the process;
    [Session_step_for s] steps only session [s] — needed when a migrated
    session coexists with the replica's own session on one process. *)

type Io.output +=
  | Session_write of { session : int; value : int }
  | Session_read of { session : int; view : string; value : int option }

type view = { v_name : string; v_lookup : unit -> string option }
(** A named way to read the session's key at the local replica. *)

type t

val key_of : int -> string
(** The per-session key ("s<id>"). *)

val create :
  ?resume_at:int ->
  Engine.ctx ->
  session:int ->
  views:view list ->
  submit:(Command.t -> unit) ->
  t * Engine.node
(** [resume_at] (default 0) seeds the write counter — the state a correct
    session migration must carry over to the new replica.  A migrated
    session created with the default restarts its value stream at 1 and
    the guarantee checkers flag the regression. *)

type tally = {
  reads : int;
  ryw_violations : int;
  mr_violations : int;
  last_violation : time;
}

val tally_of_trace : Trace.t -> session:int -> view:string -> tally
val pp_tally : Format.formatter -> tally -> unit
