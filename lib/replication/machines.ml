(* Deterministic sequential state machines.

   State machine replication (Section 1) requires a deterministic machine:
   replicas that apply the same command sequence reach the same state.  The
   [digest] is a canonical rendering used by the convergence checkers —
   equal digests iff equal states. *)

module type MACHINE = sig
  type state

  val name : string
  val init : state
  val apply : state -> Command.t -> state
  val digest : state -> string
end

module Counter : MACHINE with type state = int = struct
  type state = int

  let name = "counter"
  let init = 0

  let apply state = function
    | Command.Incr n -> state + n
    | Command.Put _ | Command.Del _ | Command.Enqueue _ | Command.Dequeue
    | Command.Set_reg _ | Command.Wput _ -> state

  let digest = string_of_int
end

module Register : MACHINE with type state = string option = struct
  type state = string option

  let name = "register"
  let init = None

  let apply state = function
    | Command.Set_reg v -> Some v
    | Command.Incr _ | Command.Put _ | Command.Del _ | Command.Enqueue _
    | Command.Dequeue | Command.Wput _ -> state

  let digest = function None -> "<none>" | Some v -> v
end

module String_map = Map.Make (String)

module Kv : MACHINE with type state = string String_map.t = struct
  type state = string String_map.t

  let name = "kv"
  let init = String_map.empty

  let apply state = function
    | Command.Put (k, v) | Command.Wput { key = k; value = v; _ } ->
      String_map.add k v state
    | Command.Del k -> String_map.remove k state
    | Command.Incr _ | Command.Enqueue _ | Command.Dequeue | Command.Set_reg _ ->
      state

  let digest state =
    String_map.bindings state
    |> List.map (fun (k, v) -> k ^ "=" ^ v)
    |> String.concat ","
end

module Fifo : MACHINE with type state = string list * string list = struct
  (* A functional queue: (front, reversed back). *)
  type state = string list * string list

  let name = "fifo"
  let init = ([], [])

  let apply (front, back) = function
    | Command.Enqueue x -> (front, x :: back)
    | Command.Dequeue ->
      (match front with
       | _ :: rest -> (rest, back)
       | [] ->
         (match List.rev back with
          | _ :: rest -> (rest, [])
          | [] -> ([], [])))
    | Command.Incr _ | Command.Put _ | Command.Del _ | Command.Set_reg _
    | Command.Wput _ -> (front, back)

  let digest (front, back) = String.concat "|" (front @ List.rev back)
end

(* Shared by tests: replay a full command sequence from the initial state. *)
let replay (type s) (module M : MACHINE with type state = s) commands =
  List.fold_left M.apply M.init commands
