(** The leader failure detector Omega (Section 2 of the paper).

    At each process, Omega outputs a process id; if a correct process exists,
    there is a time after which it outputs the id of the same correct process
    at every correct process.  The prefix before that time is unconstrained,
    so the oracle takes an explicit adversarial pre-behaviour.

    Under crash-recovery patterns ({!Failures.crash_recover_at}), correct
    means {e eventually up forever}: downtime windows do not disqualify a
    process from leadership, so the stabilized output may name a process
    that is currently down — legitimate, since Omega's specification only
    constrains the eventual output, and the protocols above it must ride
    out a down leader the same way they ride out the unstable prefix. *)

open Simulator
open Simulator.Types

type pre_behaviour =
  | Self_trust  (** every process trusts itself before stabilization *)
  | Fixed of proc_id  (** everyone trusts a fixed (possibly faulty) process *)
  | Rotating of int  (** leader rotates: [(now / period) mod n] *)
  | Blockwise of proc_id list list
      (** each block trusts its own smallest alive member — the output of
          Omega during a partition *)
  | Seeded of int  (** deterministic pseudo-random noise *)

type t

val make : ?pre:pre_behaviour -> Failures.pattern -> stabilize_at:time -> t
(** [make pattern ~stabilize_at] is an Omega history for [pattern] whose
    output at every process from [stabilize_at] on is the smallest-id correct
    process.  Raises [Invalid_argument] if the pattern has no correct
    process.  Default pre-behaviour is [Self_trust]. *)

val leader : t -> proc_id
(** The eventual leader (smallest-id correct process). *)

val stabilization_time : t -> time
(** The paper's tau_Omega for this history. *)

val query : t -> self:proc_id -> now:time -> proc_id
(** The value output by the Omega module of [self] at time [now]. *)

val module_of : t -> Engine.ctx -> unit -> proc_id
(** [module_of t ctx] is the local failure-detector module of process
    [ctx.self]: a closure protocols query once per step. *)

val pp : Format.formatter -> t -> unit
