(** The quorum failure detector Sigma.

    Sigma outputs a set of processes at each process such that any two sets
    output at any times intersect, and eventually every set output at a
    correct process contains only correct processes.  Per the paper, Sigma
    is exactly the computational gap between strong and eventual
    consistency.

    Under crash-recovery patterns, correct means eventually up forever
    (see {!Failures}): a process inside a downtime window may legally
    appear in output quorums — quorum members need not be up, only
    eventually-correct. *)

open Simulator
open Simulator.Types

type t

val make : Failures.pattern -> stabilize_at:time -> t
(** Raises [Invalid_argument] if the pattern has no correct process. *)

val anchor : t -> proc_id
(** The correct process contained in every quorum this history ever
    outputs (the witness of the intersection property). *)

val query : t -> self:proc_id -> now:time -> proc_id list
(** The quorum output at [self] at time [now]; sorted, duplicate-free. *)

val module_of : t -> Engine.ctx -> unit -> proc_id list

val pp : Format.formatter -> t -> unit
