(** A message-passing emulation of Omega: heartbeats, adaptive timeouts, and
    trust in the smallest unsuspected process.  Converges in any run whose
    delays are eventually bounded (partial synchrony).

    Caveat — one-way partitions ({!Simulator.Net.oneway_partition}): the
    election trusts whoever it {e hears from}, so under an asymmetric cut
    the two sides can disagree forever-while-it-lasts: a process whose
    heartbeats are dropped outbound still hears the leader (and happily
    follows it) while the leader's side suspects {e it} — harmless — but
    when the {e leader's} outbound direction is cut, the deaf side elects
    a second leader while the leader keeps trusting itself.  Omega's spec
    only requires convergence after the cut heals (delays become bounded
    again, timeouts adapt); during the window, split leadership is
    expected and is exactly what ETOB's safety properties must absorb.
    The explorer's one-way adversities exercise this against the oracle
    detector; pair this module with them deliberately when studying
    detector-level divergence. *)

open Simulator
open Simulator.Types

type Msg.payload += Heartbeat

type t

val create : Engine.ctx -> initial_timeout:int -> t * Engine.node
(** [create ctx ~initial_timeout] is the election state together with the
    protocol component to stack into the process's node.  Query {!leader}
    at any point for the current trusted process. *)

val leader : t -> proc_id
(** The smallest currently unsuspected process (self if all suspected). *)

val suspects : t -> proc_id list

val false_suspicions : t -> int
(** How many times a suspicion was retracted (each retraction doubles the
    per-process timeout). *)
