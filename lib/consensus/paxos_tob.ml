(* Strong total order broadcast from repeated consensus: the baseline the
   paper compares against.

   A leader-based Paxos (synod per log slot, leadership from Omega, learning
   by majority of Accepted messages broadcast to everyone).  Guarantees the
   full (strong) TOB specification whenever it delivers at all — d_i only
   ever grows — but requires a majority of correct processes for liveness:
   this is exactly the availability gap the paper attributes to Sigma.

   Steady-state delivery latency under a stable leader is three
   communication steps (request -> Accept -> Accepted), matching Lamport's
   lower bound for consensus, versus two for Algorithm 5 (experiment E1).

   The baseline implements the same Etob_intf service as Algorithm 5, so
   identical property checkers and workloads apply to both. *)

open Simulator
open Simulator.Types
open Ec_core

type Msg.payload +=
  | Req of App_msg.t
  | Prepare of { ballot : int }
  | Promise of { ballot : int; accepted : (int * int * App_msg.t list) list }
  | Accept of { ballot : int; slot : int; batch : App_msg.t list }
  | Accepted of { ballot : int; slot : int; batch : App_msg.t list }

module Msg_set = Set.Make (App_msg)
module Int_set = Set.Make (Int)

type t = {
  backend : Etob_intf.backend;
  omega : unit -> proc_id;
  majority : int;
  (* Acceptor state. *)
  mutable promised : int;
  acceptor_log : (int, int * App_msg.t list) Hashtbl.t;  (* slot -> ballot, batch *)
  (* Leader state. *)
  mutable ballot : int;          (* my current ballot (when campaigning/leading) *)
  mutable leading : bool;
  mutable campaigning : bool;
  mutable promises : (proc_id * (int * int * App_msg.t list) list) list;
  mutable next_slot : int;
  mutable in_flight : int option;
  mutable pending : Msg_set.t;
  (* Learner state. *)
  votes : (int * int, Int_set.t * App_msg.t list) Hashtbl.t;  (* slot,ballot -> voters,batch *)
  chosen : (int, App_msg.t list) Hashtbl.t;
  mutable delivered_upto : int;  (* next slot to deliver *)
  mutable delivered_ids : App_msg.Id_set.t;
}

let ctx t = Etob_intf.ctx_of t.backend
let self t = (ctx t).Engine.self

(* Ballots are globally unique and proposer-identifying: round * n + self. *)
let next_ballot t above =
  let n = (ctx t).Engine.n in
  let round = (max above t.ballot / n) + 1 in
  (round * n) + self t

(* Bindings of a slot-keyed table in increasing slot order: every
   iteration that feeds sends or message contents goes through this, so
   wire-visible order never depends on hash order. *)
let sorted_bindings tbl =
  (* detlint: sorted — accumulation order is discarded by the slot sort below *)
  Hashtbl.fold (fun slot v acc -> (slot, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let chosen_ids t =
  (* detlint: sorted — set union is order-insensitive *)
  Hashtbl.fold
    (fun _ batch acc ->
       List.fold_left (fun acc m -> App_msg.Id_set.add (App_msg.id m) acc) acc batch)
    t.chosen App_msg.Id_set.empty

(* Deliver every contiguously chosen slot, skipping messages already
   delivered through an earlier slot (a message can be re-proposed across a
   leader change and appear in two batches). *)
let rec try_deliver t =
  match Hashtbl.find_opt t.chosen t.delivered_upto with
  | None -> ()
  | Some batch ->
    t.delivered_upto <- t.delivered_upto + 1;
    let fresh =
      List.filter (fun m -> not (App_msg.Id_set.mem (App_msg.id m) t.delivered_ids)) batch
    in
    if fresh <> [] then begin
      t.delivered_ids <-
        List.fold_left (fun acc m -> App_msg.Id_set.add (App_msg.id m) acc)
          t.delivered_ids fresh;
      Etob_intf.set_delivered t.backend (Etob_intf.current_of t.backend @ fresh)
    end;
    try_deliver t

let record_vote t ~voter ~ballot ~slot ~batch =
  let key = (slot, ballot) in
  let voters, batch =
    match Hashtbl.find_opt t.votes key with
    | None -> (Int_set.singleton voter, batch)
    | Some (vs, b) -> (Int_set.add voter vs, b)
  in
  Hashtbl.replace t.votes key (voters, batch);
  if Int_set.cardinal voters >= t.majority && not (Hashtbl.mem t.chosen slot) then begin
    Hashtbl.replace t.chosen slot batch;
    if Option.equal Int.equal t.in_flight (Some slot) then t.in_flight <- None;
    try_deliver t
  end

let send_accept t ~slot ~batch =
  (ctx t).Engine.broadcast (Accept { ballot = t.ballot; slot; batch })

(* On winning phase 1: adopt, for every slot, the accepted value of the
   highest ballot reported by the promise quorum (plus our own acceptor
   state) and re-propose it; then resume proposing fresh batches above. *)
let become_leader t =
  t.leading <- true;
  t.campaigning <- false;
  let merged = Hashtbl.create 16 in
  let consider (slot, ballot, batch) =
    match Hashtbl.find_opt merged slot with
    | Some (b, _) when b >= ballot -> ()
    | Some _ | None -> Hashtbl.replace merged slot (ballot, batch)
  in
  List.iter (fun (_, acc) -> List.iter consider acc) t.promises;
  List.iter
    (fun (slot, (ballot, batch)) -> consider (slot, ballot, batch))
    (sorted_bindings t.acceptor_log);
  (* Re-proposals go out in increasing slot order: acceptor logs and the
     resulting Accepted floods replay byte-identically across runs. *)
  let adopted = sorted_bindings merged in
  let max_slot =
    List.fold_left (fun acc (slot, _) -> max acc (slot + 1)) 0 adopted
  in
  List.iter (fun (slot, (_, batch)) -> send_accept t ~slot ~batch) adopted;
  t.next_slot <- max (max max_slot t.next_slot) t.delivered_upto;
  t.in_flight <- None

let campaign t =
  t.ballot <- next_ballot t t.promised;
  t.leading <- false;
  t.campaigning <- true;
  t.promises <- [];
  (ctx t).Engine.broadcast (Prepare { ballot = t.ballot })

let step_down t =
  t.leading <- false;
  t.campaigning <- false;
  t.in_flight <- None

let propose_fresh t =
  let already = chosen_ids t in
  let fresh =
    Msg_set.elements
      (Msg_set.filter
         (fun m -> not (App_msg.Id_set.mem (App_msg.id m) already))
         t.pending)
  in
  if fresh <> [] then begin
    let slot = t.next_slot in
    t.next_slot <- slot + 1;
    t.in_flight <- Some slot;
    send_accept t ~slot ~batch:fresh
  end

let on_timer t =
  if t.omega () = self t then begin
    if t.leading then begin
      if t.in_flight = None then propose_fresh t
    end
    (* Campaign, or re-campaign if a higher ballot has preempted ours. *)
    else if (not t.campaigning) || t.promised > t.ballot then campaign t
  end
  else if t.leading || t.campaigning then step_down t

let broadcast t m =
  Etob_intf.record_broadcast t.backend m;
  (ctx t).Engine.broadcast (Req m)

let on_message t ~src payload =
  match payload with
  | Req m -> t.pending <- Msg_set.add m t.pending
  | Prepare { ballot } ->
    if ballot > t.promised then begin
      t.promised <- ballot;
      if t.leading && ballot > t.ballot then step_down t;
      let accepted =
        List.map (fun (slot, (b, batch)) -> (slot, b, batch))
          (sorted_bindings t.acceptor_log)
      in
      (ctx t).Engine.send src (Promise { ballot; accepted })
    end
  | Promise { ballot; accepted } ->
    (* [t.ballot >= t.promised] rejects stale victories: if a higher ballot
       already preempted ours locally, our Accepts would be silently
       rejected by every acceptor, so leadership at this ballot is useless
       and the next timeout re-campaigns above the preemptor instead. *)
    if ballot = t.ballot && t.campaigning && not t.leading
    && t.ballot >= t.promised then begin
      if not (List.mem_assoc src t.promises) then
        t.promises <- (src, accepted) :: t.promises;
      if List.length t.promises >= t.majority then become_leader t
    end
  | Accept { ballot; slot; batch } ->
    if ballot >= t.promised then begin
      t.promised <- ballot;
      if t.leading && ballot > t.ballot then step_down t;
      Hashtbl.replace t.acceptor_log slot (ballot, batch);
      (ctx t).Engine.broadcast (Accepted { ballot; slot; batch })
    end
  | Accepted { ballot; slot; batch } ->
    record_vote t ~voter:src ~ballot ~slot ~batch
  | _ -> ()

let create (c : Engine.ctx) ~omega =
  let t =
    { backend = Etob_intf.backend c;
      omega;
      majority = (c.Engine.n / 2) + 1;
      promised = -1;
      acceptor_log = Hashtbl.create 32;
      ballot = -1;
      leading = false;
      campaigning = false;
      promises = [];
      next_slot = 0;
      in_flight = None;
      pending = Msg_set.empty;
      votes = Hashtbl.create 64;
      chosen = Hashtbl.create 32;
      delivered_upto = 0;
      delivered_ids = App_msg.Id_set.empty }
  in
  let node =
    { Engine.on_message = (fun ~src payload -> on_message t ~src payload);
      on_timer = (fun () -> on_timer t);
      on_input = (function
        | Etob_intf.Broadcast_etob m -> broadcast t m
        | _ -> ()) }
  in
  (t, node)

let service t = Etob_intf.service_of t.backend ~broadcast:(fun m -> broadcast t m)

let is_leading t = t.leading
let chosen_slots t = Hashtbl.length t.chosen
let pending_count t = Msg_set.cardinal t.pending

let () =
  Msg.register_payload_pp (fun ppf -> function
    | Req m -> Fmt.pf ppf "req(%a)" App_msg.pp m; true
    | Prepare { ballot } -> Fmt.pf ppf "prepare(b%d)" ballot; true
    | Promise { ballot; accepted } ->
      Fmt.pf ppf "promise(b%d,|%d|)" ballot (List.length accepted); true
    | Accept { ballot; slot; batch } ->
      Fmt.pf ppf "accept(b%d,s%d,%a)" ballot slot App_msg.pp_seq batch; true
    | Accepted { ballot; slot; _ } -> Fmt.pf ppf "accepted(b%d,s%d)" ballot slot; true
    | _ -> false)
