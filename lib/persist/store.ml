(* Deterministic simulated stable storage: an append-only write-ahead log
   plus an atomically installed snapshot, per process.

   The store is the only state that survives an engine restart (see
   Engine.run's crash-recovery contract): a store outlives the automaton
   that writes to it, so the harness creates one per process per run and
   the recoverable protocol wrapper re-opens it from its restart hook.

   Durability model.  [append] writes a record; [sync] is the fsync
   barrier: everything appended before the last [sync] survives any crash
   undamaged.  Records appended after the last barrier form the "dirty
   tail" and are where injected disk faults bite:

   - [Torn_tail]: the newest dirty record was half-written when the
     process died; its checksum no longer verifies.
   - [Lost_suffix k]: the newest k dirty records never reached the disk.
   - [Corrupt_record]: the oldest dirty record was written but damaged on
     the medium; the checksum detects it on replay.

   Every record carries a real checksum, verified on [open_]; replay
   stops at the first record that fails verification, so a damaged record
   also hides everything logged after it — exactly the contract of a real
   WAL reader.  [install_snapshot] models the usual
   write-new-file-then-rename protocol: it is atomic, durable, and
   truncates the log; the snapshot bytes are checksummed like any record
   and verified on every open.

   Checksum schemes.  The default is [Crc32]: the record is stored as its
   [Frame.frame] encoding — [len][crc32][payload] — and verification is a
   whole-frame parse (length intact, CRC matches, no trailing bytes), one
   table lookup per byte with no per-record allocation beyond the frame
   itself.  [Md5] is the legacy scheme (payload stored raw beside its
   16-byte MD5) kept so the benchmark can measure old-vs-new on the same
   fault battery; both schemes expose identical decoded-level semantics —
   same surviving records, same stats — under every fault.  (One
   documented corner: a torn *empty* record is detectable under Crc32,
   whose 8-byte frame tears visibly, but vacuously verifies under Md5,
   where half of an empty payload is still the empty payload.  The
   protocols never log empty records.)

   Faults damage the stored bytes — the frame under Crc32, the raw
   payload under Md5 — and are armed ahead of time ([arm_fault]) and
   applied, one per crash in arming order, when the store is re-opened
   after a crash.  Nothing reads the store between the crash and the
   restart, so applying the damage lazily at re-open is observationally
   equivalent to applying it at the crash instant, and keeps the store
   independent of the engine's clock. *)

type fault = Torn_tail | Lost_suffix of int | Corrupt_record

let fault_to_string = function
  | Torn_tail -> "torn"
  | Lost_suffix k -> Printf.sprintf "lose:%d" k
  | Corrupt_record -> "corrupt"

let fault_of_string s =
  match s with
  | "torn" -> Some Torn_tail
  | "corrupt" -> Some Corrupt_record
  | _ ->
    (match String.index_opt s ':' with
     | Some i when String.sub s 0 i = "lose" ->
       (match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some k when k > 0 -> Some (Lost_suffix k)
        | _ -> None)
     | _ -> None)

let pp_fault ppf f = Fmt.string ppf (fault_to_string f)

type checksum = Md5 | Crc32

let checksum_name = function Md5 -> "md5" | Crc32 -> "crc32"

(* [stored] is what sits on the simulated medium and is what faults
   damage; [check] is the side checksum for Md5 (empty under Crc32, where
   the frame embeds its own CRC). *)
type record = { mutable stored : string; check : string }

type stats = {
  appends : int;
  syncs : int;
  snapshots : int;
  restarts : int;
  records_lost : int;
  corrupt_detected : int;
}

type t = {
  checksum : checksum;
  mutable log : record list;  (* newest first *)
  mutable log_len : int;
  mutable synced : int;  (* count of records covered by the last barrier *)
  mutable snapshot : record option;
  mutable opened : bool;  (* an incarnation is running and has not closed *)
  mutable armed : fault list;  (* FIFO: one applied per crash *)
  mutable appends : int;
  mutable syncs : int;
  mutable snapshots : int;
  mutable restarts : int;
  mutable records_lost : int;
  mutable corrupt_detected : int;
}

let create ?(checksum = Crc32) () =
  { checksum;
    log = [];
    log_len = 0;
    synced = 0;
    snapshot = None;
    opened = false;
    armed = [];
    appends = 0;
    syncs = 0;
    snapshots = 0;
    restarts = 0;
    records_lost = 0;
    corrupt_detected = 0 }

let pool ~n = Array.init n (fun _ -> create ())

let checksum t = t.checksum

let encode t payload =
  match t.checksum with
  | Crc32 -> { stored = Frame.frame payload; check = "" }
  | Md5 -> { stored = payload; check = Digest.string payload }

(* Decode and verify one stored record; [None] means the checksum caught
   damage (or, under Crc32, the frame no longer parses cleanly). *)
let verify t r =
  match t.checksum with
  | Md5 -> if String.equal (Digest.string r.stored) r.check then Some r.stored else None
  | Crc32 ->
    (match Frame.read_frame r.stored 0 with
     | Ok (payload, next) when next = String.length r.stored -> Some payload
     | Ok _ | Error _ -> None)

let append t payload =
  t.log <- encode t payload :: t.log;
  t.log_len <- t.log_len + 1;
  t.appends <- t.appends + 1

let sync t =
  t.synced <- t.log_len;
  t.syncs <- t.syncs + 1

let install_snapshot t payload =
  t.snapshot <- Some (encode t payload);
  t.log <- [];
  t.log_len <- 0;
  t.synced <- 0;
  t.snapshots <- t.snapshots + 1

let arm_fault t fault = t.armed <- t.armed @ [ fault ]

let log_length t = t.log_len

(* Damage the dirty tail according to one armed fault.  [t.log] is newest
   first, so the dirty records are the first [log_len - synced]. *)
let apply_fault t fault =
  let dirty = t.log_len - t.synced in
  match fault with
  | Torn_tail ->
    if dirty > 0 then begin
      (match t.log with
       | r :: _ ->
         r.stored <- String.sub r.stored 0 (String.length r.stored / 2)
       | [] -> assert false)
    end
  | Lost_suffix k ->
    let k = min k dirty in
    let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
    t.log <- drop k t.log;
    t.log_len <- t.log_len - k;
    t.records_lost <- t.records_lost + k
  | Corrupt_record ->
    if dirty > 0 then begin
      (* The oldest dirty record: maximal damage that a checksum still
         detects, since replay stops there and loses the whole tail. *)
      let oldest_dirty = List.nth t.log (dirty - 1) in
      let b = Bytes.of_string oldest_dirty.stored in
      if Bytes.length b > 0 then
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x5a));
      oldest_dirty.stored <- Bytes.to_string b
    end

type opening = {
  snapshot : string option;
  records : string list;  (* oldest first, checksum-verified prefix *)
  restarted : bool;  (* a previous incarnation crashed without closing *)
}

let open_ t =
  let restarted = t.opened in
  if restarted then begin
    t.restarts <- t.restarts + 1;
    (match t.armed with
     | [] -> ()
     | fault :: rest ->
       t.armed <- rest;
       apply_fault t fault)
  end;
  t.opened <- true;
  (* The snapshot was installed atomically, so a verification failure here
     can only come from a hand-damaged image (fixtures, tests); it is
     detected and counted, and recovery proceeds as if no snapshot
     existed. *)
  let snapshot =
    match t.snapshot with
    | None -> None
    | Some r ->
      (match verify t r with
       | Some payload -> Some payload
       | None ->
         t.corrupt_detected <- t.corrupt_detected + 1;
         t.snapshot <- None;
         None)
  in
  (* Verify checksums oldest-to-newest; stop at the first bad record. *)
  let rec verified acc = function
    | [] -> List.rev acc
    | r :: rest ->
      (match verify t r with
       | Some payload -> verified (payload :: acc) rest
       | None ->
         t.corrupt_detected <- t.corrupt_detected + 1;
         t.records_lost <- t.records_lost + 1 + List.length rest;
         List.rev acc)
  in
  let records = verified [] (List.rev t.log) in
  (* Truncate the log to the verified prefix, as a real recovery pass
     would: the damaged tail is gone for every later incarnation too (and
     is not double-counted in the stats). *)
  if List.length records <> t.log_len then begin
    t.log <- List.rev_map (encode t) records;
    t.log_len <- List.length records;
    t.synced <- min t.synced t.log_len
  end;
  { snapshot; records; restarted }

let stats t =
  { appends = t.appends;
    syncs = t.syncs;
    snapshots = t.snapshots;
    restarts = t.restarts;
    records_lost = t.records_lost;
    corrupt_detected = t.corrupt_detected }

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "appends=%d syncs=%d snapshots=%d restarts=%d lost=%d corrupt=%d"
    s.appends s.syncs s.snapshots s.restarts s.records_lost s.corrupt_detected
