(* Append-only framed journal (see journal.mli).  Reuses the bare
   CRC-32 frame of [Frame] — the same wire format the WAL and trace
   files use — under its own 8-byte magic so a journal is never mistaken
   for a trace.  The durability contract is flush-per-append: a record
   handed to [append] survives any subsequent crash of this process
   (modulo OS/page-cache loss, which the torn-tail reader absorbs). *)

let magic = "ECSOAKJ\x01"

type writer = { oc : Out_channel.t; mutable closed : bool }

let create path =
  let oc = Out_channel.open_bin path in
  Out_channel.output_string oc magic;
  Out_channel.flush oc;
  { oc; closed = false }

let append w payload =
  Out_channel.output_string w.oc (Frame.frame payload);
  Out_channel.flush w.oc

let close w =
  if not w.closed then begin
    w.closed <- true;
    (try Out_channel.flush w.oc with Sys_error _ -> ());
    Out_channel.close_noerr w.oc
  end

type contents = { records : string list; torn : bool }

let read path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | s ->
    let mlen = String.length magic in
    if String.length s < mlen || String.sub s 0 mlen <> magic then
      Error (path ^ ": not a campaign journal (bad magic)")
    else begin
      (* Collect whole frames; the first torn or corrupt one ends the
         clean prefix — everything after it is unreachable anyway (frame
         boundaries are only discoverable left to right). *)
      let len = String.length s in
      let rec go pos acc =
        if pos >= len then (List.rev acc, false)
        else
          match Frame.read_frame s pos with
          | Ok (payload, next) -> go next (payload :: acc)
          | Error _ -> (List.rev acc, true)
      in
      let records, torn = go mlen [] in
      Ok { records; torn }
    end

let resume path =
  match read path with
  | Error e -> Error e
  | Ok contents ->
    let tmp = path ^ ".tmp" in
    (match
       let w = create tmp in
       List.iter (append w) contents.records;
       close w;
       Sys.rename tmp path;
       (* Reopen for append without truncating: open_gen with Append. *)
       let oc =
         Out_channel.open_gen
           [ Open_wronly; Open_append; Open_binary ] 0o644 path
       in
       { oc; closed = false }
     with
     | w -> Ok (contents, w)
     | exception Sys_error e -> Error e)
