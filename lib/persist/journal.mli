(** Append-only framed journal with torn-tail-tolerant recovery.

    A journal file is an 8-byte header ("ECSOAKJ" + version byte)
    followed by a sequence of bare CRC-32 {!Frame} records, one per
    appended entry, flushed after every append — so a process killed at
    any instant (SIGKILL, power loss) leaves a decodable prefix whose
    last frame is either whole or detectably torn.

    {!read} stops at the first torn or corrupt frame and reports how
    many clean records precede it; {!resume} compacts that clean prefix
    into a fresh file (atomic rename) and reopens it for append, so a
    campaign can continue writing after a crash without ever appending
    past damaged bytes.

    Record payloads are opaque strings; the soak layer (Soak.Journal)
    defines the campaign entry vocabulary on top. *)

type writer
(** An open journal being appended to. *)

val magic : string
(** The 8-byte file header (magic + version). *)

val create : string -> writer
(** [create path] truncates/creates [path], writes the header, and
    returns a writer.  Raises [Sys_error] on I/O failure. *)

val append : writer -> string -> unit
(** Append one framed record and flush, so the entry is on its way to
    the OS before the caller proceeds (checkpoint durability). *)

val close : writer -> unit
(** Flush and close.  Safe to call twice. *)

type contents = {
  records : string list;  (** clean-prefix payloads, in append order *)
  torn : bool;
      (** [true] when trailing bytes after the clean prefix were
          unreadable (torn or corrupt frame) and were ignored *)
}

val read : string -> (contents, string) result
(** Decode a journal file.  [Error] only on a missing/unopenable file or
    a bad header — damage {e after} the header degrades to a shorter
    clean prefix with [torn = true], never to an error. *)

val resume : string -> (contents * writer, string) result
(** [resume path] reads the clean prefix, rewrites it compacted to a
    temporary file, atomically renames over [path], and reopens for
    append.  After a torn tail this is the only safe way to continue
    the journal: appending in place would bury readable frames behind
    damaged bytes. *)
