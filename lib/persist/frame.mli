(** Versioned framed binary codec for trace files and WAL records.

    A {e frame} is [[u32le length][u32le CRC-32][payload]]; a {e trace
    file} is the 8-byte {!header} ("ECTRACE" + version byte) followed by a
    sequence of frames whose payloads each start with a one-byte tag:
    ['E'] for a binary-encoded engine event, ['S'] for an embedded run
    spec text.  WAL records ({!Store}) reuse the bare frame without the
    file header.

    The checksum is the reflected CRC-32 (polynomial [0xEDB88320], the
    zlib/IEEE checksum), computed incrementally over the payload on plain
    OCaml ints.  Decoders never raise on malformed input: they return a
    positioned {!error} describing where and why parsing stopped. *)

(** {2 CRC-32} *)

val crc32 : string -> int
(** Finalized CRC-32 of a whole string; the value fits in 32 bits. *)

val crc32_init : int
val crc32_feed : int -> string -> int
val crc32_finish : int -> int
(** Incremental interface: [crc32 s = crc32_finish (crc32_feed crc32_init s)],
    and [crc32_feed] distributes over concatenation. *)

(** {2 Positioned decode errors} *)

type error = { pos : int; reason : string }
(** [pos] is the byte offset (of the frame, for in-frame damage) where
    decoding stopped. *)

val pp_error : Format.formatter -> error -> unit

(** {2 Bare frames (WAL records)} *)

val frame : string -> string
(** Wrap a payload as [[len][crc][payload]]. *)

val read_frame : string -> int -> (string * int, error) result
(** [read_frame s pos] parses one frame at [pos], verifying the checksum;
    returns the payload and the position after the frame. *)

(** {2 Events} *)

type event =
  | Input of { t : int; proc : int; v : string }
  | Output of { t : int; proc : int; v : string }
  | Send of { t : int; src : int; dst : int; uid : int }
  | Deliver of { t : int; src : int; dst : int; uid : int; lat : int }
  | Drop of { t : int; src : int; dst : int; uid : int }
  | Crash of { t : int; proc : int }
  | Recover of { t : int; proc : int }
      (** Mirrors the jsonl sink's event vocabulary; [v] carries the
          already-rendered input/output text, and all integers are
          non-negative. *)

val event_to_jsonl : event -> string
(** The jsonl line for an event, byte-identical to what [Sink.jsonl]
    emits for the same event (no trailing newline). *)

val json_escape : string -> string
(** The jsonl string escaper shared with [Sink.jsonl]. *)

(** {2 Trace files} *)

val header : string
(** The 8-byte file header: magic "ECTRACE" plus the format version. *)

val version : int

type item = Spec of string | Event of event

val event_record : event -> string
(** One framed event record, ready to append after {!header}. *)

val spec_record : string -> string
(** One framed spec record embedding a run spec text.  Writers append it
    after the event stream; on decode the last spec record wins. *)

val decode : string -> (item list, error) result
(** Decode a whole trace file (header plus frames).  Fails with a
    positioned error on bad magic, unsupported version, torn frames,
    checksum mismatches or undecodable records — never raises. *)

val events : item list -> event list
val spec : item list -> string option

val to_jsonl : item list -> string list
(** The jsonl export of the event stream (spec records are not part of
    the jsonl format and are skipped). *)
