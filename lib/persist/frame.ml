(* Versioned framed binary codec for trace files and WAL records.

   One wire shape serves both consumers: a *frame* is

     [u32le payload length][u32le CRC-32 of payload][payload bytes]

   and a *trace file* is an 8-byte header ("ECTRACE" + version byte)
   followed by a sequence of frames.  Each trace-file payload starts with
   a one-byte record tag: 'E' for an engine event (binary-encoded, LEB128
   varints), 'S' for an embedded spec text (the builder spec of the run
   that produced the file, so a `.trace.bin` artifact is replayable on its
   own).  WAL records ([Store]) reuse the bare frame without the file
   header: the store checksums each record by framing it.

   The CRC is the usual reflected CRC-32 (polynomial 0xEDB88320, init and
   final xor 0xFFFFFFFF) — the zlib/IEEE 802.3 checksum — computed
   incrementally over the payload as it is appended, one table lookup per
   byte, on plain OCaml ints (the value fits 32 bits, far inside the
   native 63).  Decoding never raises on malformed input: every reader
   returns a [result] whose error carries the byte position where parsing
   stopped and a human-readable reason, so torn or damaged files are
   diagnosed, not crashed on. *)

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)
(* ------------------------------------------------------------------ *)

let crc_table =
  let t = Array.make 256 0 in
  for i = 0 to 255 do
    let c = ref i in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(i) <- !c
  done;
  t

let crc32_init = 0xffffffff

let crc32_feed crc s =
  let c = ref crc in
  for i = 0 to String.length s - 1 do
    c :=
      Array.unsafe_get crc_table
        ((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c

let crc32_finish crc = crc lxor 0xffffffff
let crc32 s = crc32_finish (crc32_feed crc32_init s)

(* ------------------------------------------------------------------ *)
(* Positioned decode errors                                            *)
(* ------------------------------------------------------------------ *)

type error = { pos : int; reason : string }

let pp_error ppf e = Fmt.pf ppf "byte %d: %s" e.pos e.reason
let errorf pos fmt = Printf.ksprintf (fun reason -> Error { pos; reason }) fmt

(* ------------------------------------------------------------------ *)
(* Primitive writers/readers                                           *)
(* ------------------------------------------------------------------ *)

let add_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

let get_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

(* Unsigned LEB128: 7 bits per byte, low bits first, high bit = more. *)
let add_varint b v =
  if v < 0 then invalid_arg "Frame.add_varint: negative";
  let rec go v =
    if v < 0x80 then Buffer.add_char b (Char.chr v)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

let read_varint s pos =
  let len = String.length s in
  let rec go acc shift p =
    if p >= len then errorf pos "truncated varint"
    else if shift > 56 then errorf pos "varint overflow"
    else begin
      let c = Char.code s.[p] in
      let acc = acc lor ((c land 0x7f) lsl shift) in
      if c < 0x80 then Ok (acc, p + 1) else go acc (shift + 7) (p + 1)
    end
  in
  go 0 0 pos

let add_lstring b s =
  add_varint b (String.length s);
  Buffer.add_string b s

let read_lstring s pos =
  match read_varint s pos with
  | Error _ as e -> e
  | Ok (n, p) ->
    if p + n > String.length s then errorf pos "truncated string (need %d bytes)" n
    else Ok (String.sub s p n, p + n)

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)
(* ------------------------------------------------------------------ *)

let add_frame b payload =
  add_u32 b (String.length payload);
  add_u32 b (crc32 payload);
  Buffer.add_string b payload

let frame payload =
  let b = Buffer.create (String.length payload + 8) in
  add_frame b payload;
  Buffer.contents b

let read_frame s pos =
  let len = String.length s in
  if pos + 8 > len then
    errorf pos "truncated frame header (%d of 8 bytes)" (len - pos)
  else begin
    let n = get_u32 s pos in
    let crc = get_u32 s (pos + 4) in
    if pos + 8 + n > len then
      errorf pos "truncated frame payload (%d of %d bytes)" (len - pos - 8) n
    else begin
      let payload = String.sub s (pos + 8) n in
      if crc32 payload <> crc then errorf pos "frame checksum mismatch"
      else Ok (payload, pos + 8 + n)
    end
  end

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

type event =
  | Input of { t : int; proc : int; v : string }
  | Output of { t : int; proc : int; v : string }
  | Send of { t : int; src : int; dst : int; uid : int }
  | Deliver of { t : int; src : int; dst : int; uid : int; lat : int }
  | Drop of { t : int; src : int; dst : int; uid : int }
  | Crash of { t : int; proc : int }
  | Recover of { t : int; proc : int }

let tag_spec = 'S'
let tag_event = 'E'

let event_payload ev =
  let b = Buffer.create 32 in
  Buffer.add_char b tag_event;
  (match ev with
   | Input { t; proc; v } ->
     Buffer.add_char b '\x00'; add_varint b t; add_varint b proc; add_lstring b v
   | Output { t; proc; v } ->
     Buffer.add_char b '\x01'; add_varint b t; add_varint b proc; add_lstring b v
   | Send { t; src; dst; uid } ->
     Buffer.add_char b '\x02'; add_varint b t; add_varint b src;
     add_varint b dst; add_varint b uid
   | Deliver { t; src; dst; uid; lat } ->
     Buffer.add_char b '\x03'; add_varint b t; add_varint b src;
     add_varint b dst; add_varint b uid; add_varint b lat
   | Drop { t; src; dst; uid } ->
     Buffer.add_char b '\x04'; add_varint b t; add_varint b src;
     add_varint b dst; add_varint b uid
   | Crash { t; proc } ->
     Buffer.add_char b '\x05'; add_varint b t; add_varint b proc
   | Recover { t; proc } ->
     Buffer.add_char b '\x06'; add_varint b t; add_varint b proc);
  Buffer.contents b

(* [at] is the file position of the enclosing frame, used for error
   reporting; [payload] starts at the record tag. *)
let decode_event ~at payload =
  let ( let* ) r k = match r with Error _ as e -> e | Ok v -> k v in
  let fin pos ev =
    if pos = String.length payload then Ok ev
    else errorf at "trailing bytes after event"
  in
  if String.length payload < 2 then errorf at "event record too short"
  else
    let* () =
      if payload.[0] = tag_event then Ok ()
      else errorf at "not an event record"
    in
    let p = 2 in
    match payload.[1] with
    | '\x00' | '\x01' ->
      let* t, p = read_varint payload p in
      let* proc, p = read_varint payload p in
      let* v, p = read_lstring payload p in
      fin p
        (if payload.[1] = '\x00' then Input { t; proc; v }
         else Output { t; proc; v })
    | '\x02' | '\x04' ->
      let* t, p = read_varint payload p in
      let* src, p = read_varint payload p in
      let* dst, p = read_varint payload p in
      let* uid, p = read_varint payload p in
      fin p
        (if payload.[1] = '\x02' then Send { t; src; dst; uid }
         else Drop { t; src; dst; uid })
    | '\x03' ->
      let* t, p = read_varint payload p in
      let* src, p = read_varint payload p in
      let* dst, p = read_varint payload p in
      let* uid, p = read_varint payload p in
      let* lat, p = read_varint payload p in
      fin p (Deliver { t; src; dst; uid; lat })
    | '\x05' ->
      let* t, p = read_varint payload p in
      let* proc, p = read_varint payload p in
      fin p (Crash { t; proc })
    | '\x06' ->
      let* t, p = read_varint payload p in
      let* proc, p = read_varint payload p in
      fin p (Recover { t; proc })
    | c -> errorf at "unknown event kind 0x%02x" (Char.code c)

(* ------------------------------------------------------------------ *)
(* JSONL export                                                        *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let event_to_jsonl = function
  | Input { t; proc; v } ->
    Printf.sprintf {|{"ev":"input","t":%d,"proc":%d,"v":"%s"}|} t proc
      (json_escape v)
  | Output { t; proc; v } ->
    Printf.sprintf {|{"ev":"output","t":%d,"proc":%d,"v":"%s"}|} t proc
      (json_escape v)
  | Send { t; src; dst; uid } ->
    Printf.sprintf {|{"ev":"send","t":%d,"src":%d,"dst":%d,"uid":%d}|} t src
      dst uid
  | Deliver { t; src; dst; uid; lat } ->
    Printf.sprintf {|{"ev":"deliver","t":%d,"src":%d,"dst":%d,"uid":%d,"lat":%d}|}
      t src dst uid lat
  | Drop { t; src; dst; uid } ->
    Printf.sprintf {|{"ev":"drop","t":%d,"src":%d,"dst":%d,"uid":%d}|} t src
      dst uid
  | Crash { t; proc } ->
    Printf.sprintf {|{"ev":"crash","t":%d,"proc":%d}|} t proc
  | Recover { t; proc } ->
    Printf.sprintf {|{"ev":"recover","t":%d,"proc":%d}|} t proc

(* ------------------------------------------------------------------ *)
(* Trace files                                                         *)
(* ------------------------------------------------------------------ *)

let magic = "ECTRACE"
let version = 1
let header = magic ^ String.make 1 (Char.chr version)

type item = Spec of string | Event of event

let event_record ev = frame (event_payload ev)
let spec_record text = frame (String.make 1 tag_spec ^ text)

let item_of_payload ~at payload =
  if String.length payload = 0 then errorf at "empty record"
  else if payload.[0] = tag_spec then
    Ok (Spec (String.sub payload 1 (String.length payload - 1)))
  else if payload.[0] = tag_event then
    match decode_event ~at payload with
    | Ok ev -> Ok (Event ev)
    | Error _ as e -> e
  else errorf at "unknown record tag %C" payload.[0]

let decode s =
  let len = String.length s in
  if len < 8 then errorf 0 "truncated header (%d of 8 bytes)" len
  else if not (String.equal (String.sub s 0 7) magic) then
    errorf 0 "bad magic (not a binary trace file)"
  else if Char.code s.[7] <> version then
    errorf 7 "unsupported format version %d (expected %d)" (Char.code s.[7])
      version
  else begin
    let rec go acc pos =
      if pos = len then Ok (List.rev acc)
      else
        match read_frame s pos with
        | Error _ as e -> e
        | Ok (payload, next) ->
          (match item_of_payload ~at:pos payload with
           | Error _ as e -> e
           | Ok item -> go (item :: acc) next)
    in
    go [] 8
  end

let events items =
  List.filter_map (function Event ev -> Some ev | Spec _ -> None) items

let spec items =
  (* The last spec record wins: artifact writers append it after the
     event stream, and appending a fresh one supersedes the old. *)
  List.fold_left
    (fun acc -> function Spec s -> Some s | Event _ -> acc)
    None items

let to_jsonl items = List.map event_to_jsonl (events items)
