(** Deterministic simulated stable storage: append-only write-ahead log
    plus an atomically installed snapshot, per process.

    A store outlives the automaton that writes to it: the harness creates
    one per process per run, and a recoverable protocol re-opens it from
    the engine's restart hook (see [Engine.run]'s crash-recovery
    contract).

    Durability model: everything appended before the last {!sync} barrier
    survives any crash undamaged.  Records appended after the barrier form
    the dirty tail, which injected disk faults can tear, lose or corrupt;
    every record carries a checksum verified on {!open_}, and replay stops
    at the first record that fails verification.  {!install_snapshot}
    models write-then-rename: atomic, durable, truncates the log; the
    snapshot is checksummed like any record and verified on every open.

    Records are checksummed with one of two schemes: the default
    {!Crc32}, which stores each record as its [Frame.frame] encoding
    ([len][crc32][payload], incremental CRC, no hashing allocation), or
    the legacy {!Md5} kept so benchmarks can measure old-vs-new.  Both
    expose identical decoded-level fault semantics. *)

type t

type checksum = Md5 | Crc32

val checksum_name : checksum -> string

val checksum : t -> checksum

type fault =
  | Torn_tail  (** the newest dirty record was half-written at the crash *)
  | Lost_suffix of int  (** the newest k dirty records never hit the disk *)
  | Corrupt_record
      (** the oldest dirty record is damaged on the medium; the checksum
          detects it on replay, which then discards the whole tail *)

val fault_to_string : fault -> string
(** Stable text form ("torn", "lose:3", "corrupt") used by the explorer's
    adversity plans and repro files. *)

val fault_of_string : string -> fault option
val pp_fault : Format.formatter -> fault -> unit

val create : ?checksum:checksum -> unit -> t
(** An empty store: no snapshot, empty log, nothing armed.  [checksum]
    defaults to {!Crc32}. *)

val pool : n:int -> t array
(** One store per process. *)

val append : t -> string -> unit
(** Append one opaque record to the log (checksummed, not yet durable). *)

val sync : t -> unit
(** Durability barrier: every record appended so far survives any later
    crash undamaged. *)

val install_snapshot : t -> string -> unit
(** Atomically replace the snapshot and truncate the log (implies
    durability of the snapshot). *)

val arm_fault : t -> fault -> unit
(** Queue a disk fault; one armed fault is applied per crash, in arming
    order, to the dirty tail only.  A fault with an empty dirty tail is a
    no-op. *)

type opening = {
  snapshot : string option;
  records : string list;
      (** log records, oldest first: the checksum-verified prefix *)
  restarted : bool;
      (** true iff a previous incarnation opened this store and then
          crashed without closing — i.e. this open is a post-crash
          recovery, and one armed fault (if any) was just applied *)
}

val open_ : t -> opening
(** Open the store for a (re)starting process and replay its durable
    state.  On a post-crash open, the next armed fault is applied first,
    then checksums are verified and the log is truncated to the verified
    prefix. *)

val log_length : t -> int

type stats = {
  appends : int;
  syncs : int;
  snapshots : int;
  restarts : int;
  records_lost : int;  (** dropped by faults or discarded after damage *)
  corrupt_detected : int;  (** records that failed checksum verification *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
