(** The causality graph [CG_i] of Algorithm 5 with the paper's three
    operations: [UpdateCG] ({!add}), [UnionCG] ({!union}) and
    [UpdatePromote] ({!linearize}). *)

type t

val empty : t
val size : t -> int
val mem : t -> App_msg.id -> bool
val find : t -> App_msg.id -> App_msg.t option

val messages : t -> App_msg.t list
(** All nodes, in id order. *)

val preds : t -> App_msg.id -> App_msg.Id_set.t
(** Direct causal predecessors recorded for a node (possibly including ids
    not present in the graph). *)

val add : t -> App_msg.t -> t
(** [UpdateCG(m, C(m))]: add node [m] and edges from each of its
    dependencies.  Idempotent. *)

val union : t -> t -> t
(** [UnionCG]: union of nodes and edges. *)

val edges : t -> (App_msg.id * App_msg.id) list
(** All recorded edges [(m1, m2)] with [m2] present ([m1] may be absent). *)

val ready : t -> t
(** The dependency-closed restriction: the largest subgraph in which every
    node's recorded predecessors are all present.  Nodes with a dangling
    (not-yet-arrived) dependency are excluded transitively.  Algorithm 5
    linearizes [ready g] rather than [g] — the "dependency wait" that keeps
    causal order valid even when a dependency is still in flight. *)

val default_tie_break : App_msg.t -> App_msg.t -> int

exception Cycle of App_msg.id list

val linearize :
  ?tie_break:(App_msg.t -> App_msg.t -> int) -> t -> prefix:App_msg.t list ->
  App_msg.t list
(** [UpdatePromote]: a sequence [s] such that [prefix] is a prefix of [s],
    [s] contains every message of the graph exactly once, and for every edge
    [(m1, m2)] with both present, [m1] appears before [m2].  Deterministic
    given [tie_break].  Raises {!Cycle} on a cyclic dependency relation
    (impossible for genuine causality). *)

val is_valid_linearization : t -> prefix:App_msg.t list -> App_msg.t list -> bool
(** Checks the three UpdatePromote conditions; tie-break independent. *)

val pp : Format.formatter -> t -> unit
