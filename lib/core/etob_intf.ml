(* The eventual total order broadcast (ETOB) abstraction: interface
   conventions (Section 3).

   ETOB maintains at each process p_i an output variable d_i, the sequence
   of messages delivered so far.  Implementations record the whole current
   value of d_i on every change, so the trace contains the full output
   history d_i(t) needed by the checkers (stability is a statement about
   *revisions* of d_i, which incremental delivery events could not express).

   In every admissible run ETOB satisfies TOB-Validity, TOB-No-creation,
   TOB-No-duplication and TOB-Agreement, plus ETOB-Stability and
   ETOB-Total-order from some unknown time tau on.  Strong TOB is the tau=0
   case. *)

open Simulator

type Io.input += Broadcast_etob of App_msg.t

type Io.output +=
  | Etob_broadcast of App_msg.t
      (* Recorded on every broadcast: the input history for the checkers. *)
  | Etob_deliver of App_msg.t list
      (* The new value of d_i. *)

type service = {
  broadcast : App_msg.t -> unit;
  current : unit -> App_msg.t list;  (* d_i now *)
  on_deliver : (App_msg.t list -> unit) -> unit;
  fresh_msg : ?tag:string -> unit -> App_msg.t;
  (* Allocate the next message of this process, with causal dependencies
     C(m) = {last own broadcast} U {last element of d_i}: both are genuine
     happens-before predecessors (conditions (1) and (2) of the paper's
     causal-dependency definition). *)
}

type backend = {
  ctx : Engine.ctx;
  listeners : App_msg.t list Listeners.t;
  mutable current : App_msg.t list;
  mutable next_sn : int;
  mutable last_own : App_msg.id option;
}

let backend ctx =
  { ctx; listeners = Listeners.create (); current = []; next_sn = 0; last_own = None }

let ctx_of backend = backend.ctx
let current_of backend = backend.current

let record_broadcast backend m =
  backend.last_own <- Some (App_msg.id m);
  backend.ctx.Engine.output (Etob_broadcast m)

(* Recovery path (see Recoverable): reinstate replayed state without
   emitting outputs or firing listeners — the caller decides what single
   revision to announce afterwards. *)
let restore_backend backend ~current ~next_sn ~last_own =
  backend.current <- current;
  backend.next_sn <- next_sn;
  backend.last_own <- last_own

let next_sn_of backend = backend.next_sn

let set_delivered backend seq =
  backend.current <- seq;
  backend.ctx.Engine.output (Etob_deliver seq);
  Listeners.fire backend.listeners seq

let alloc_msg backend ?(tag = "") () =
  let sn = backend.next_sn in
  backend.next_sn <- sn + 1;
  let last_delivered =
    match List.rev backend.current with [] -> [] | m :: _ -> [ App_msg.id m ]
  in
  let deps =
    match backend.last_own with
    | None -> last_delivered
    | Some own -> own :: last_delivered
  in
  App_msg.make ~origin:backend.ctx.Engine.self ~sn ~tag ~deps ()

let service_of backend ~broadcast =
  { broadcast;
    current = (fun () -> backend.current);
    on_deliver = Listeners.register backend.listeners;
    fresh_msg = (fun ?tag () -> alloc_msg backend ?tag ()) }

let () =
  Io.register_input_pp (fun ppf -> function
    | Broadcast_etob m -> Fmt.pf ppf "broadcastETOB(%a)" App_msg.pp m; true
    | _ -> false);
  Io.register_output_pp (fun ppf -> function
    | Etob_broadcast m -> Fmt.pf ppf "etob-bcast(%a)" App_msg.pp m; true
    | Etob_deliver seq -> Fmt.pf ppf "d_i:=%a" App_msg.pp_seq seq; true
    | _ -> false)
