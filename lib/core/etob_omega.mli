(** Algorithm 5 of the paper: eventual total order broadcast directly from
    Omega, in any environment (Lemma 3).  Two communication steps per
    delivery under a stable leader; full TOB if Omega is stable from the
    start; causal order at all times. *)

open Simulator
open Simulator.Types

type Msg.payload +=
  | Update of Causal_graph.t
  | Promote_seq of App_msg.t list

type t

type mutation =
  | Skip_dependency_wait
      (** UpdatePromote linearizes the whole graph instead of its
          dependency-closed ({!Causal_graph.ready}) part, promoting
          messages whose causal past has not arrived. *)
  | Forget_promote_prefix
      (** UpdatePromote re-linearizes from scratch instead of extending the
          previous promotion. *)
  | Drop_graph_union
      (** UnionCG replaced by overwrite: concurrent graphs lose messages. *)
  | Disable_stale_guard
      (** Adopt reordered same-lineage promotions (d_i can regress). *)
(** Seedable single-decision bugs, one per protocol clause, used by the
    adversarial explorer and the mutation-test harness.  Omitting the
    [?mutation] argument gives the faithful Algorithm 5. *)

val all_mutations : mutation list
val mutation_name : mutation -> string
val mutation_of_string : string -> mutation option

val create :
  ?tie_break:(App_msg.t -> App_msg.t -> int) ->
  ?stale_guard:bool ->
  ?mutation:mutation ->
  Engine.ctx ->
  omega:(unit -> proc_id) ->
  t * Engine.node
(** [tie_break] selects among the valid UpdatePromote linearizations; any
    choice is correct (ablated in the benchmarks).  [stale_guard] (default
    true) ignores a promote that is a proper prefix of the current output —
    an older promotion reordered by the (non-FIFO) links; disabling it is
    only for the ablation that shows claim (P2) needs it.  [mutation]
    installs one seeded bug (see {!mutation}). *)

val restore : t -> msgs:App_msg.t list -> delivered:App_msg.t list -> unit
(** Crash-recovery entry point, called from the engine's restart hook by
    {!Recoverable}: reinstate the replayed graph nodes [msgs] and the last
    durable [d_i] value [delivered], recompute [promote_i] and the
    allocation state from them, and announce the restored [d_i] as one
    output revision. *)

val learn : t -> App_msg.t list -> unit
(** Anti-entropy entry point (see {!Anti_entropy}): merge a batch of
    messages learnt out-of-band — a digest-exchange delta rather than an
    update(CG_j) — into the causality graph and re-run UpdatePromote,
    exactly as if their updates had arrived.  Idempotent. *)

val service : t -> Etob_intf.service

val graph : t -> Causal_graph.t
(** The current causality graph [CG_i]. *)

val promotion : t -> App_msg.t list
(** The current promotion sequence [promote_i]. *)

val stats : t -> int * int * int
(** (updates handled, promotes sent, promotes adopted). *)
