(* Algorithm 5 of the paper (protocol "ET OB"): eventual total order
   broadcast directly from Omega, in any environment (Lemma 3).

   - On broadcastETOB(m, C(m)): add m to the local causality graph and send
     update(CG_i) to all (including self).
   - On update(CG_j): merge the graphs and extend the local promotion
     sequence (UpdatePromote) to a causal linearization of the merged graph
     keeping the previous promotion as a prefix.
   - On a local timeout, a process that trusts itself sends
     promote(promote_i) to all.
   - On promote(promote_j) from p_j: adopt the sequence iff Omega currently
     trusts p_j.

   Headline properties (Section 5): delivery takes two communication steps
   under a stable leader (update in, promote out); if Omega is stable from
   the start the protocol implements full TOB; and TOB-Causal-Order holds
   at all times, even while Omega outputs different leaders at different
   processes (partitions). *)

open Simulator
open Simulator.Types

type Msg.payload +=
  | Update of Causal_graph.t
  | Promote_seq of App_msg.t list

(* Seedable single-decision mutants of the protocol, used by the adversarial
   explorer (lib/explore) and the mutation-test harness to check that the
   checker/explorer stack actually detects the class of bug each mutation
   represents.  [None] is the faithful Algorithm 5. *)
type mutation =
  | Skip_dependency_wait
      (* UpdatePromote linearizes the whole graph instead of its
         dependency-closed part: messages whose causal past has not arrived
         are promoted anyway. *)
  | Forget_promote_prefix
      (* UpdatePromote linearizes from scratch instead of extending the
         previous promotion: revisions stop being extensions. *)
  | Drop_graph_union
      (* UnionCG replaced by overwrite: concurrently received graphs lose
         messages. *)
  | Disable_stale_guard
      (* Adopt reordered same-lineage promotions: d_i can revise backwards
         under non-FIFO links. *)

let all_mutations =
  [ Skip_dependency_wait; Forget_promote_prefix; Drop_graph_union;
    Disable_stale_guard ]

let mutation_name = function
  | Skip_dependency_wait -> "skip-dependency-wait"
  | Forget_promote_prefix -> "forget-promote-prefix"
  | Drop_graph_union -> "drop-graph-union"
  | Disable_stale_guard -> "disable-stale-guard"

let mutation_of_string s =
  List.find_opt (fun m -> mutation_name m = s) all_mutations

type t = {
  backend : Etob_intf.backend;
  omega : unit -> proc_id;
  tie_break : App_msg.t -> App_msg.t -> int;
  stale_guard : bool;
  mutation : mutation option;
  mutable cg : Causal_graph.t;      (* CG_i *)
  mutable promote : App_msg.t list; (* promote_i *)
  mutable updates_handled : int;
  mutable promotes_sent : int;
  mutable promotes_adopted : int;
}

let broadcast t m =
  (* The dependencies C(m) travel inside m itself; the full graph travels in
     the update so receivers always hold every dependency of every node. *)
  Etob_intf.record_broadcast t.backend m;
  t.cg <- Causal_graph.add t.cg m;
  (Etob_intf.ctx_of t.backend).Engine.broadcast (Update t.cg)

(* UpdatePromote: extend the promotion sequence to a causal linearization
   of the (dependency-closed part of the) current graph.  The dependency
   wait: only the part of the graph whose causal past has fully arrived is
   promotable.  A message can carry a dependency this process has never
   seen as a graph node (its deps come from an adopted promote, and the
   dependency's own update may still be in flight); promoting it now would
   lock it into the prefix ahead of the dependency and permanently violate
   causal order. *)
let update_promote t =
  let promotable =
    match t.mutation with
    | Some Skip_dependency_wait -> t.cg
    | _ -> Causal_graph.ready t.cg
  in
  let prefix =
    match t.mutation with
    | Some Forget_promote_prefix -> []
    | _ -> t.promote
  in
  t.promote <- Causal_graph.linearize ~tie_break:t.tie_break promotable ~prefix

(* Anti-entropy entry point (see Anti_entropy): merge a batch of messages
   learnt out-of-band — a digest-exchange delta, not an update(CG_j) — into
   the graph and re-run UpdatePromote, exactly as if their updates had
   arrived.  Idempotent: already-known messages change nothing. *)
let learn t msgs =
  t.cg <- List.fold_left Causal_graph.add t.cg msgs;
  update_promote t

let create ?(tie_break = Causal_graph.default_tie_break) ?(stale_guard = true)
    ?mutation (ctx : Engine.ctx) ~omega =
  let stale_guard =
    stale_guard
    && (match mutation with Some Disable_stale_guard -> false | _ -> true)
  in
  let t =
    { backend = Etob_intf.backend ctx;
      omega;
      tie_break;
      stale_guard;
      mutation;
      cg = Causal_graph.empty;
      promote = [];
      updates_handled = 0;
      promotes_sent = 0;
      promotes_adopted = 0 }
  in
  let on_message ~src payload =
    match payload with
    | Update cg_j ->
      (match t.mutation with
       | Some Drop_graph_union -> t.cg <- cg_j
       | _ -> t.cg <- Causal_graph.union t.cg cg_j);
      update_promote t;
      t.updates_handled <- t.updates_handled + 1
    | Promote_seq promote_j ->
      (* Adopt only from the currently trusted leader, and ignore stale
         promotions: UpdatePromote makes one leader's promotions totally
         ordered by the prefix relation, so an incoming sequence that is a
         proper prefix of the current output is an older promotion arriving
         out of order (the links of Section 2 are reliable but not FIFO).
         Without this guard a reordered pair of promotes would revise d_i
         backwards even under a stable leader, violating claim (P2). *)
      if omega () = src
      && promote_j <> Etob_intf.current_of t.backend
      && not (t.stale_guard
              && App_msg.is_prefix promote_j (Etob_intf.current_of t.backend))
      then begin
        t.promotes_adopted <- t.promotes_adopted + 1;
        Etob_intf.set_delivered t.backend promote_j
      end
    | _ -> ()
  in
  let on_timer () =
    if omega () = ctx.Engine.self then begin
      t.promotes_sent <- t.promotes_sent + 1;
      ctx.Engine.broadcast (Promote_seq t.promote)
    end
  in
  let on_input = function
    | Etob_intf.Broadcast_etob m -> broadcast t m
    | _ -> ()
  in
  let node = { Engine.on_message; on_timer; on_input } in
  (t, node)

(* Crash-recovery: reinstate the state replayed from a stable store (see
   Recoverable).  [msgs] are the known messages (graph nodes), [delivered]
   the last durable value of d_i.  Everything else is recomputed the same
   way the live protocol would: promote_i re-linearizes the dependency-
   closed graph over the delivered prefix, and the allocation state
   (next_sn, last own broadcast) is derived from the own messages among
   [msgs] — which the wrapper logs durably before sending, precisely so
   sequence numbers never regress across a restart.  The restored d_i is
   announced as one output revision, marking the recovery in the trace. *)
let restore t ~msgs ~delivered =
  t.cg <- List.fold_left Causal_graph.add Causal_graph.empty msgs;
  t.promote <-
    Causal_graph.linearize ~tie_break:t.tie_break (Causal_graph.ready t.cg)
      ~prefix:delivered;
  let self = (Etob_intf.ctx_of t.backend).Engine.self in
  let own_sns =
    List.filter_map
      (fun m -> if m.App_msg.origin = self then Some m.App_msg.sn else None)
      (msgs @ delivered)
  in
  let next_sn = List.fold_left (fun acc sn -> max acc (sn + 1)) 0 own_sns in
  let last_own =
    if next_sn = 0 then None else Some (self, next_sn - 1)
  in
  Etob_intf.restore_backend t.backend ~current:delivered ~next_sn ~last_own;
  Etob_intf.set_delivered t.backend delivered

let service t = Etob_intf.service_of t.backend ~broadcast:(fun m -> broadcast t m)

let graph t = t.cg
let promotion t = t.promote
let stats t = (t.updates_handled, t.promotes_sent, t.promotes_adopted)

let () =
  Msg.register_payload_pp (fun ppf -> function
    | Update cg -> Fmt.pf ppf "update(%a)" Causal_graph.pp cg; true
    | Promote_seq seq -> Fmt.pf ppf "promote(%a)" App_msg.pp_seq seq; true
    | _ -> false)
