(* The causality graph CG_i of Algorithm 5.

   Nodes are application messages; an edge (m1, m2) records that m2 causally
   depends on m1 (m1 in C(m2)).  The three functions of the paper:

   - UpdateCG(m, C(m))  -> [add]
   - UnionCG(CG_j)      -> [union]
   - UpdatePromote()    -> [linearize]

   [linearize] must return a sequence s such that (i) the given prefix is a
   prefix of s, (ii) s contains every message of the graph exactly once, and
   (iii) for every edge (m1, m2), m1 appears before m2.  Any topological
   extension qualifies; for determinism we extend with Kahn's algorithm using
   a configurable tie-break (default: smallest (origin, sn) first).  The
   ablation benchmark checks that correctness is tie-break-independent. *)

type t = {
  nodes : App_msg.t App_msg.Id_map.t;
  (* For each node id, the ids of its direct causal predecessors that are
     known to the graph.  Dependencies on unknown messages are kept so the
     union can reinstate them; [linearize] only orders present nodes, which
     matches the paper: the promoted sequence contains all messages of the
     graph itself. *)
  preds : App_msg.Id_set.t App_msg.Id_map.t;
}

let empty = { nodes = App_msg.Id_map.empty; preds = App_msg.Id_map.empty }

let size g = App_msg.Id_map.cardinal g.nodes
let mem g id = App_msg.Id_map.mem id g.nodes
let find g id = App_msg.Id_map.find_opt id g.nodes
let messages g = List.map snd (App_msg.Id_map.bindings g.nodes)

let preds g id =
  match App_msg.Id_map.find_opt id g.preds with
  | None -> App_msg.Id_set.empty
  | Some s -> s

(* UpdateCG(m, C(m)): add the node m and the edges {(m', m) | m' in C(m)}. *)
let add g m =
  let mid = App_msg.id m in
  if mem g mid then g
  else
    let dep_set =
      List.fold_left (fun acc d -> App_msg.Id_set.add d acc) App_msg.Id_set.empty
        m.App_msg.deps
    in
    { nodes = App_msg.Id_map.add mid m g.nodes;
      preds = App_msg.Id_map.add mid dep_set g.preds }

(* UnionCG: union of nodes and of edge sets. *)
let union a b =
  let nodes =
    App_msg.Id_map.union (fun _ m _ -> Some m) a.nodes b.nodes
  in
  let preds =
    App_msg.Id_map.union (fun _ sa sb -> Some (App_msg.Id_set.union sa sb))
      a.preds b.preds
  in
  { nodes; preds }

let edges g =
  App_msg.Id_map.fold
    (fun mid ps acc ->
       App_msg.Id_set.fold (fun p acc -> (p, mid) :: acc) ps acc)
    g.preds []

(* The dependency-closed restriction: the largest subgraph in which every
   node's recorded predecessors are all present.  A node with a dangling
   dependency — its causal past has not fully arrived — is excluded,
   together with everything that depends on it.  Algorithm 5 promotes only
   this part of the graph (the "dependency wait"): promoting a message
   before its dependency is known would lock it into the prefix ahead of
   the dependency and permanently violate causal order once it arrives. *)
let ready g =
  let rec shrink nodes =
    let nodes' =
      App_msg.Id_map.filter
        (fun id _ ->
           App_msg.Id_set.for_all
             (fun p -> App_msg.Id_map.mem p nodes)
             (preds g id))
        nodes
    in
    if App_msg.Id_map.cardinal nodes' = App_msg.Id_map.cardinal nodes then nodes
    else shrink nodes'
  in
  let nodes = shrink g.nodes in
  { nodes;
    preds = App_msg.Id_map.filter (fun id _ -> App_msg.Id_map.mem id nodes) g.preds }

let default_tie_break = App_msg.compare

exception Cycle of App_msg.id list

(* UpdatePromote: extend [prefix] to a topological linearization of the full
   graph.  Messages already in [prefix] keep their positions; remaining
   messages are appended in an order respecting every (present-node) edge.
   Raises [Cycle] if the dependency relation restricted to present nodes is
   cyclic, which cannot happen for genuine causal dependencies. *)
let linearize ?(tie_break = default_tie_break) g ~prefix =
  let placed = App_msg.ids_of_seq prefix in
  let remaining =
    List.filter (fun m -> not (App_msg.Id_set.mem (App_msg.id m) placed)) (messages g)
  in
  (* Unsatisfied predecessor count, counting only predecessors that are
     present in the graph and not already placed by the prefix. *)
  let blocking m =
    App_msg.Id_set.fold
      (fun p acc ->
         if mem g p && not (App_msg.Id_set.mem p placed) then p :: acc else acc)
      (preds g (App_msg.id m)) []
  in
  let rec kahn placed acc remaining =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let ready, blocked =
        List.partition
          (fun m ->
             App_msg.Id_set.for_all
               (fun p -> (not (mem g p)) || App_msg.Id_set.mem p placed)
               (preds g (App_msg.id m)))
          remaining
      in
      (match List.sort tie_break ready with
       | [] -> raise (Cycle (List.concat_map blocking blocked))
       | next :: _ ->
         let placed = App_msg.Id_set.add (App_msg.id next) placed in
         kahn placed (next :: acc)
           (List.filter (fun m -> not (App_msg.equal m next)) remaining))
  in
  prefix @ kahn placed [] remaining

(* A linearization is valid for g and prefix iff it extends the prefix,
   enumerates the graph's messages exactly once and respects all edges among
   present nodes.  Used by tests and by the tie-break ablation. *)
let is_valid_linearization g ~prefix seq =
  let indexed = List.mapi (fun i m -> (App_msg.id m, i)) seq in
  let index_of id = List.assoc_opt id indexed in
  let extends = App_msg.is_prefix prefix seq in
  let all_present =
    size g = List.length seq
    && List.for_all (fun m -> mem g (App_msg.id m)) seq
  in
  let no_dup =
    List.length (List.sort_uniq App_msg.compare_id (List.map App_msg.id seq))
    = List.length seq
  in
  let edges_ok =
    List.for_all
      (fun (p, m) ->
         match index_of p, index_of m with
         | Some ip, Some im -> ip < im
         | None, _ -> true (* predecessor unknown to the graph *)
         | Some _, None -> false)
      (edges g)
  in
  extends && all_present && no_dup && edges_ok

let pp ppf g =
  let pp_node ppf (id, _) = App_msg.pp_id ppf id in
  Fmt.pf ppf "CG{%a}" (Fmt.list ~sep:Fmt.comma pp_node) (App_msg.Id_map.bindings g.nodes)
