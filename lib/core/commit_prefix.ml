(* Committed-prefix indications on top of ETOB (Section 7 of the paper).

   "Such systems sometimes produce indications when a prefix of operations
   on the replicated service is committed, i.e., is not subject to further
   changes.  A prefix of operations can be committed, e.g., in sufficiently
   long periods of synchrony, when a majority of correct processes elect
   the same leader and all incoming and outgoing messages of the leader to
   the correct majority are delivered within some fixed bound.  We believe
   that such indications could easily be implemented, during the stable
   periods, on top of ETOB."

   This component implements exactly that:

   - every process, on each revision of its output d_i, acknowledges the
     adopted sequence to the process it currently trusts;
   - a process that trusts itself counts, for each sequence length, how
     many distinct processes (itself included) currently hold that prefix
     of its promotion sequence; when a majority does, it marks the prefix
     committed and announces it;
   - processes record the longest announced committed prefix coming from
     their current leader.

   As the paper says, the indication is guaranteed *during stable periods*:
   once a majority of correct processes permanently trust one correct
   leader, every commitment extends the previous ones, because the leader's
   promotion sequence is prefix-monotone and acknowledgments only ever
   concern its prefixes.  During unstable periods the component simply
   (and safely) refrains: commitments require a majority of *current*
   acknowledgments naming this very leader, so two concurrently trusted
   leaders would need overlapping majorities trusting each at the same
   acknowledgment round.  The checkers in [Properties] measure, rather than
   assume, that announced commitments are never rolled back in a given run;
   the tests exercise both the guarantee under stability and the abstention
   under minority. *)

open Simulator
open Simulator.Types

type Msg.payload +=
  | Commit_ack of { seq : App_msg.t list }
  | Commit_mark of { seq : App_msg.t list }

type Io.output += Committed of App_msg.t list

type t = {
  ctx : Engine.ctx;
  omega : unit -> proc_id;
  etob : Etob_intf.service;
  promotion : unit -> App_msg.t list;  (* the leader-side sequence we certify *)
  majority : int;
  acked : int array;  (* per process, length of our prefix it last acked *)
  mutable committed : App_msg.t list;
  mutable marks_sent : int;
}

let committed t = t.committed

let record t seq =
  t.committed <- seq;
  t.ctx.Engine.output (Committed seq)

(* Leader side: the k-th largest acknowledged length (k = majority) is the
   committed watermark. *)
let try_commit t =
  t.acked.(t.ctx.Engine.self) <- List.length (t.promotion ());
  let lengths = Array.copy t.acked in
  Array.sort (fun a b -> Int.compare b a) lengths;
  let watermark = lengths.(t.majority - 1) in
  if watermark > List.length t.committed then begin
    let seq = List.filteri (fun i _ -> i < watermark) (t.promotion ()) in
    record t seq;
    t.marks_sent <- t.marks_sent + 1;
    t.ctx.Engine.broadcast (Commit_mark { seq })
  end

let create (ctx : Engine.ctx) ~omega ~etob ~promotion =
  let t =
    { ctx; omega; etob; promotion;
      majority = (ctx.Engine.n / 2) + 1;
      acked = Array.make ctx.Engine.n 0;
      committed = [];
      marks_sent = 0 }
  in
  (* Acknowledge every adoption to the process we currently trust. *)
  etob.Etob_intf.on_deliver (fun seq ->
      let leader = omega () in
      if leader <> ctx.Engine.self then
        ctx.Engine.send leader (Commit_ack { seq }));
  let on_message ~src payload =
    match payload with
    | Commit_ack { seq } ->
      (* Count the ack only while we trust ourselves and the acked sequence
         is (still) a prefix of our promotion: acknowledgments for another
         leader's sequence do not certify ours. *)
      if omega () = ctx.Engine.self && App_msg.is_prefix seq (t.promotion ()) then begin
        t.acked.(src) <- max t.acked.(src) (List.length seq);
        try_commit t
      end
    | Commit_mark { seq } ->
      if omega () = src && List.length seq > List.length t.committed then
        record t seq
    | _ -> ()
  in
  let on_timer () = if omega () = ctx.Engine.self then try_commit t in
  (t, { Engine.on_message; on_timer; on_input = (fun _ -> ()) })

(* Crash-recovery: reinstate a durably logged commitment and re-announce
   it.  Commitments are externally visible promises ("not subject to
   further changes"), so the recoverable wrapper logs them with a sync
   barrier and the restored announcement extends the pre-crash one. *)
let restore t seq = if seq <> [] then record t seq

let marks_sent t = t.marks_sent

let () =
  Msg.register_payload_pp (fun ppf -> function
    | Commit_ack { seq } -> Fmt.pf ppf "commit-ack(%a)" App_msg.pp_seq seq; true
    | Commit_mark { seq } -> Fmt.pf ppf "commit-mark(%a)" App_msg.pp_seq seq; true
    | _ -> false);
  Io.register_output_pp (fun ppf -> function
    | Committed seq -> Fmt.pf ppf "committed:%a" App_msg.pp_seq seq; true
    | _ -> false)
