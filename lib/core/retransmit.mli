(** Epoch-tagged retransmission links: sender-side retransmission with
    per-destination sequence numbers, receiver-side dedup, and bounded
    exponential backoff.  Factored out of {!Recoverable} (PR 3's reliable
    links for restarted processes) so any component needing reliable
    delivery over the engine's lossy extensions — crash downtime windows,
    lossy partitions — reuses one implementation.

    Usage: the owner calls {!send}/{!broadcast} instead of the raw engine
    sends, drives {!retry} from its local timer, routes incoming [Rlink]
    frames through {!admit} (delivering the inner payload only on
    [`Deliver], and answering with [Rlink_ack] per its own durability
    rule, e.g. log-before-ack), and feeds [Rlink_ack] frames to {!ack}. *)

open Simulator
open Simulator.Types

type Msg.payload +=
  | Rlink of { epoch : int; seq : int; inner : Msg.payload }
      (** A retransmission-layer frame around a protocol payload.  [epoch]
          is the sender incarnation's restart count: receivers key their
          dedup state on it, so a restarted sender (whose [seq] starts
          over) is not swallowed as a duplicate of its former self. *)
  | Rlink_ack of { epoch : int; seq : int }

type config = {
  ack_timeout : int;  (** initial retransmission timeout, in ticks *)
  max_backoff : int;  (** retransmission backoff cap, in ticks *)
}

val default_config : config
(** [{ ack_timeout = 4; max_backoff = 32 }]. *)

type t

val create : ?config:config -> epoch:int -> Engine.ctx -> t
(** One link layer for one process incarnation; [epoch] is its restart
    count (0 for a never-restarted process). *)

val send : t -> proc_id -> Msg.payload -> unit
(** Frame [payload], send it, and retransmit until acknowledged. *)

val broadcast : t -> Msg.payload -> unit
(** {!send} to every process, including self. *)

val retry : t -> unit
(** Retransmit every overdue unacknowledged frame, doubling its backoff
    up to the cap.  Drive this from the owner's local timer. *)

val admit : t -> src:proc_id -> epoch:int -> seq:int -> [ `Stale | `Duplicate | `Deliver ]
(** Receiver-side dedup for an incoming [Rlink] frame.  [`Deliver]: first
    time seen, deliver the inner payload and acknowledge. [`Duplicate]:
    already delivered (the ack was lost) — re-acknowledge without
    re-delivering.  [`Stale]: a dead incarnation's in-flight frame —
    ignore. *)

val ack : t -> src:proc_id -> epoch:int -> seq:int -> unit
(** Process an incoming [Rlink_ack]: stop retransmitting that frame.
    Acks carrying a different epoch (addressed to an earlier incarnation)
    are ignored. *)

val epoch : t -> int
val retransmitted : t -> int
(** Frames re-sent by this incarnation's link layer. *)
