(** Committed-prefix indications on top of ETOB — the extension sketched in
    Section 7 of the paper: during stable periods (a majority of correct
    processes trusting one correct leader), a growing prefix of the
    delivered sequence is marked as not subject to further change. *)

open Simulator
open Simulator.Types

type Msg.payload +=
  | Commit_ack of { seq : App_msg.t list }
  | Commit_mark of { seq : App_msg.t list }

type Io.output += Committed of App_msg.t list
(** Recorded whenever the locally known committed prefix grows. *)

type t

val create :
  Engine.ctx ->
  omega:(unit -> proc_id) ->
  etob:Etob_intf.service ->
  promotion:(unit -> App_msg.t list) ->
  t * Engine.node
(** Stack onto an Algorithm-5 process.  [promotion] exposes the local
    promotion sequence (see {!Etob_omega.promotion}); only a process that
    currently trusts itself certifies commitments, from a majority of
    current acknowledgments of its own prefixes. *)

val committed : t -> App_msg.t list
(** The longest locally known committed prefix. *)

val restore : t -> App_msg.t list -> unit
(** Crash-recovery: reinstate a durably logged commitment and re-announce
    it (no-op for the empty prefix).  Used by {!Recoverable}. *)

val marks_sent : t -> int
