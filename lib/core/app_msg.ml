(* Application-level messages broadcast through (E)TOB.

   A message is identified by (origin, sn) — broadcast messages are assumed
   distinct in the paper, and this identification realizes the assumption.
   [deps] is the explicit causal-dependency set C(m) of Section 5: ids of
   messages that causally precede m according to its broadcaster.  [tag] is
   opaque application content. *)

open Simulator.Types

type id = proc_id * int

type t = {
  origin : proc_id;
  sn : int;
  tag : string;
  deps : id list;
}

let compare_id ((p1, sn1) : id) ((p2, sn2) : id) =
  let c = Int.compare p1 p2 in
  if c <> 0 then c else Int.compare sn1 sn2

let make ~origin ~sn ?(tag = "") ?(deps = []) () =
  if sn < 0 then invalid_arg "App_msg.make: negative sequence number";
  { origin; sn; tag; deps = List.sort_uniq compare_id deps }

let id m = (m.origin, m.sn)

(* Messages are equal iff their ids are: content is determined by identity
   within a run. *)
let compare a b = compare_id (id a) (id b)
let equal a b = compare a b = 0

let pp_id ppf (p, sn) = Fmt.pf ppf "%a#%d" pp_proc p sn

let pp ppf m =
  if m.deps = [] then Fmt.pf ppf "%a" pp_id (id m)
  else Fmt.pf ppf "%a{<-%a}" pp_id (id m) (Fmt.list ~sep:Fmt.comma pp_id) m.deps

let pp_seq ppf ms = Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ";") pp) ms

module Id_set = Set.Make (struct
    type nonrec t = id
    let compare = compare_id
  end)

module Id_map = Map.Make (struct
    type nonrec t = id
    let compare = compare_id
  end)

let ids_of_seq ms = List.fold_left (fun acc m -> Id_set.add (id m) acc) Id_set.empty ms

(* [is_prefix a b]: sequence [a] is a prefix of sequence [b]. *)
let rec is_prefix a b =
  match a, b with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' -> equal x y && is_prefix a' b'

(* ------------------------------------------------------------------ *)
(* Wire codec                                                          *)
(* ------------------------------------------------------------------ *)

(* Single-line, space-free-tag encoding for write-ahead-log records (see
   lib/persist and Recoverable): "origin sn hex(tag) deps" where deps is
   "-" or comma-separated "origin.sn" pairs.  The tag is hex-encoded so a
   record is always one line of space-separated fields regardless of
   application content. *)

let hex_of_string s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex h =
  if String.length h mod 2 <> 0 then None
  else
    try
      Some
        (String.init (String.length h / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2))))
    with Failure _ -> None

let to_wire m =
  let deps =
    match m.deps with
    | [] -> "-"
    | deps ->
      String.concat ","
        (List.map (fun (p, sn) -> Printf.sprintf "%d.%d" p sn) deps)
  in
  Printf.sprintf "%d %d %s %s" m.origin m.sn (hex_of_string m.tag) deps

let dep_of_string s =
  match String.split_on_char '.' s with
  | [ p; sn ] ->
    (match int_of_string_opt p, int_of_string_opt sn with
     | Some p, Some sn when p >= 0 && sn >= 0 -> Some (p, sn)
     | _ -> None)
  | _ -> None

let of_wire line =
  match String.split_on_char ' ' line with
  | [ origin; sn; tag; deps ] ->
    let deps =
      if deps = "-" then Some []
      else
        let parts = String.split_on_char ',' deps in
        let parsed = List.filter_map dep_of_string parts in
        if List.length parsed = List.length parts then Some parsed else None
    in
    (match int_of_string_opt origin, int_of_string_opt sn,
           string_of_hex tag, deps with
     | Some origin, Some sn, Some tag, Some deps
       when origin >= 0 && sn >= 0 ->
       Some (make ~origin ~sn ~tag ~deps ())
     | _ -> None)
  | _ -> None

let seq_to_wire ms = String.concat "|" (List.map to_wire ms)

let seq_of_wire line =
  if line = "" then Some []
  else
    let parts = String.split_on_char '|' line in
    let parsed = List.filter_map of_wire parts in
    if List.length parsed = List.length parts then Some parsed else None
