(** Crash-recovery wrapper for Algorithm 5: a durable write-ahead log with
    periodic checkpoints (lib/persist), replay-on-restart, and sender-side
    retransmission links with receiver dedup — restoring, under the
    engine's crash-recovery extension, the volatile-state and
    reliable-link assumptions the paper's crash-stop model grants for
    free.

    Durability policy: own broadcasts and messages learnt from peers are
    logged with a sync barrier before the corresponding send or
    acknowledgment (so sequence-number allocation never regresses and
    acknowledged messages survive); revisions of [d_i] are logged without
    a barrier (a lost suffix only rewinds to an older adopted promotion,
    which the leader re-teaches); committed prefixes are logged with a
    barrier (externally visible promises). *)

open Simulator.Types

(** The retransmission frames ([Rlink]/[Rlink_ack]) live in {!Retransmit},
    the reusable link layer this wrapper drives. *)

type config = {
  snapshot_every : int;  (** checkpoint after this many log appends *)
  ack_timeout : int;  (** initial retransmission timeout, in ticks *)
  max_backoff : int;  (** retransmission backoff cap, in ticks *)
}

val default_config : config
(** [{ snapshot_every = 8; ack_timeout = 4; max_backoff = 32 }]. *)

type mutation = Skip_log_replay
      (** Restart with amnesia: open the store but skip the replay, so the
          process reuses already-allocated sequence numbers — violating
          the paper's distinct-messages assumption.  The explorer's
          recovery adversities must catch this. *)

val all_mutations : mutation list
val mutation_name : mutation -> string
val mutation_of_string : string -> mutation option

type t

val create :
  ?config:config ->
  ?mutation:mutation ->
  ?etob_mutation:Etob_omega.mutation ->
  ?commits:bool ->
  ?anti_entropy:Anti_entropy.config ->
  ?ae_mutation:Anti_entropy.mutation ->
  store:Persist.Store.t ->
  omega:(unit -> proc_id) ->
  Simulator.Engine.ctx ->
  t * Simulator.Engine.node * Etob_intf.service
(** Build one process of the recoverable stack: open (or re-open) [store],
    replay snapshot-then-log into a fresh Algorithm-5 instance, and wrap
    its node and service so every send is framed and retransmitted until
    acknowledged and every state change hits the log per the durability
    policy.  Meant to be called from the engine's restart hook
    ([make_node]), with [store] taken from a per-process pool that
    outlives the incarnations ({!Persist.Store.pool}).

    [commits] additionally stacks the committed-prefix component
    ({!Commit_prefix}) under the same log.  [anti_entropy] (or
    [ae_mutation]) additionally stacks the {!Anti_entropy} digest-exchange
    component beside the protocol — it sends unframed (it is its own
    retransmission mechanism) and everything it learns flows into the
    write-ahead log like any other graph growth.  [etob_mutation] seeds a
    bug in the wrapped protocol; [mutation] seeds a bug in the recovery
    path itself; [ae_mutation] seeds one in the anti-entropy layer. *)

val etob : t -> Etob_omega.t
val commit_state : t -> Commit_prefix.t option

val retransmitted : t -> int
(** Frames re-sent by the link layer of this incarnation. *)

val was_restarted : t -> bool
(** This incarnation was created by a post-crash re-open. *)

val replayed_msgs : t -> int
(** Distinct messages recovered from the store by this incarnation. *)
