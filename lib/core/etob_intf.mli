(** The eventual total order broadcast (ETOB) abstraction: interface
    conventions shared by all ETOB implementations (Section 3). *)

open Simulator

type Io.input += Broadcast_etob of App_msg.t
(** External invocation of [broadcastETOB(m)]. *)

type Io.output +=
  | Etob_broadcast of App_msg.t
      (** Recorded on every broadcast: the input history for checkers. *)
  | Etob_deliver of App_msg.t list
      (** The new value of the delivered sequence [d_i]. *)

type service = {
  broadcast : App_msg.t -> unit;
  current : unit -> App_msg.t list;
  on_deliver : (App_msg.t list -> unit) -> unit;
  fresh_msg : ?tag:string -> unit -> App_msg.t;
      (** Allocate this process's next message with genuine causal
          dependencies (last own broadcast and last delivered message). *)
}

(** {2 Implementation plumbing} *)

type backend

val backend : Engine.ctx -> backend
val ctx_of : backend -> Engine.ctx
val current_of : backend -> App_msg.t list
val record_broadcast : backend -> App_msg.t -> unit
val set_delivered : backend -> App_msg.t list -> unit

val restore_backend :
  backend -> current:App_msg.t list -> next_sn:int ->
  last_own:App_msg.id option -> unit
(** Reinstate state replayed from stable storage, silently: no output is
    recorded and no listener fires.  Used by the crash-recovery wrapper
    ({!Recoverable}); the caller announces the restored [d_i] itself. *)

val next_sn_of : backend -> int
val alloc_msg : backend -> ?tag:string -> unit -> App_msg.t
val service_of : backend -> broadcast:(App_msg.t -> unit) -> service
