(* Crash-recovery wrapper for Algorithm 5 (and its committed-prefix
   replica): durable logs, checkpoint/restore, and re-established reliable
   links for restarted processes.

   The paper's model is crash-stop, so Algorithm 5 keeps everything in
   volatile memory and relies on reliable links.  Under the engine's
   crash-recovery extension both assumptions break: a restarting process
   loses its state, and every message addressed to it during a downtime
   window is gone.  This wrapper restores both invariants:

   Durability.  The wrapper owns a [Persist.Store] write-ahead log:

   - "m <msg>"  — a message known to the process (graph node).  Own
     broadcasts are logged and synced *before* the send, so the allocation
     state (next_sn) derived from them on replay can never regress — a
     regressed sn would re-issue an already-used message id and violate
     the paper's distinct-messages assumption (that is exactly the
     [Skip_log_replay] mutant, which the explorer must catch).  Messages
     learnt from update(CG_j) are logged and synced before the link-layer
     acknowledgment, the classic log-before-ack rule: once a peer stops
     retransmitting, the message must be recoverable locally.
   - "d <seq>"  — a revision of the output d_i.  Logged without a sync
     barrier: a lost suffix of d-revisions only sets the process back to
     an older adopted promotion, which the leader's periodic promote
     broadcast re-teaches — so this is where injected disk faults get to
     bite without breaking any guarantee.
   - "c <seq>"  — a committed-prefix announcement (when [commits] is on).
     Synced: a commitment is an externally visible promise that must not
     roll back across a restart.

   Every [snapshot_every] appends the whole state is checkpointed with
   [install_snapshot] (atomic, truncates the log) so replay stays short.

   Restore.  On a post-crash open, the wrapper parses snapshot-then-log,
   hands the surviving state to [Etob_omega.restore] (which recomputes
   promote_i and the allocation state, and announces the restored d_i),
   re-announces the committed prefix, and rebroadcasts update(CG_i) so
   peers that progressed while this process was down resynchronize it —
   and it them.

   Reliable links.  Sender-side retransmission with per-destination
   sequence numbers, receiver-side dedup, and bounded exponential backoff
   ([ack_timeout] doubling up to [max_backoff]): every payload is framed,
   retransmitted until acknowledged, and delivered to the protocol at
   most once.  A message sent into a downtime window is therefore
   re-delivered after the restart, which re-establishes the reliable-link
   guarantee the protocol's liveness arguments need. *)

open Simulator

type config = {
  snapshot_every : int;  (** checkpoint after this many log appends *)
  ack_timeout : int;  (** initial retransmission timeout, in ticks *)
  max_backoff : int;  (** retransmission backoff cap, in ticks *)
}

let default_config = { snapshot_every = 8; ack_timeout = 4; max_backoff = 32 }

type mutation = Skip_log_replay

let all_mutations = [ Skip_log_replay ]

let mutation_name = function Skip_log_replay -> "skip-log-replay"

let mutation_of_string s =
  List.find_opt (fun m -> mutation_name m = s) all_mutations

(* The reliable-link layer lives in {!Retransmit} (factored out in PR 4 so
   the anti-entropy component and future subsystems reuse it); this
   wrapper owns one link per incarnation and keeps its historical framing
   behaviour — [Rlink]/[Rlink_ack] payloads, backoff, dedup — unchanged. *)
let link_config config =
  { Retransmit.ack_timeout = config.ack_timeout;
    max_backoff = config.max_backoff }

(* ------------------------------------------------------------------ *)
(* Write-ahead-log records                                             *)
(* ------------------------------------------------------------------ *)

(* One record per line: "m <msg>", "d <seq>", "c <seq>" (App_msg wire
   forms).  A snapshot is the same records joined with newlines, replayed
   before the log. *)

type replayed = {
  mutable r_msgs : App_msg.t list;  (* reversed arrival order *)
  mutable r_ids : App_msg.Id_set.t;
  mutable r_delivered : App_msg.t list;
  mutable r_committed : App_msg.t list;
}

let replay_record acc line =
  let payload tag =
    let k = String.length tag in
    if String.length line > k && String.sub line 0 k = tag
    then Some (String.sub line k (String.length line - k))
    else None
  in
  match payload "m " with
  | Some wire ->
    (match App_msg.of_wire wire with
     | Some m when not (App_msg.Id_set.mem (App_msg.id m) acc.r_ids) ->
       acc.r_msgs <- m :: acc.r_msgs;
       acc.r_ids <- App_msg.Id_set.add (App_msg.id m) acc.r_ids
     | _ -> ())
  | None ->
    (match payload "d " with
     | Some wire ->
       (match App_msg.seq_of_wire wire with
        | Some seq -> acc.r_delivered <- seq
        | None -> ())
     | None ->
       (match payload "c " with
        | Some wire ->
          (match App_msg.seq_of_wire wire with
           | Some seq -> acc.r_committed <- seq
           | None -> ())
        | None -> ()))

let replay (opening : Persist.Store.opening) =
  let acc =
    { r_msgs = []; r_ids = App_msg.Id_set.empty; r_delivered = [];
      r_committed = [] }
  in
  (match opening.Persist.Store.snapshot with
   | None -> ()
   | Some snap ->
     List.iter (replay_record acc) (String.split_on_char '\n' snap));
  List.iter (replay_record acc) opening.Persist.Store.records;
  acc

(* ------------------------------------------------------------------ *)
(* The wrapper                                                         *)
(* ------------------------------------------------------------------ *)

type t = {
  etob : Etob_omega.t;
  link : Retransmit.t;
  store : Persist.Store.t;
  commit : Commit_prefix.t option;
  restarted : bool;  (* this incarnation came from a post-crash open *)
  mutable replayed_msgs : int;
}

let etob t = t.etob
let commit_state t = t.commit
let retransmitted t = Retransmit.retransmitted t.link
let was_restarted t = t.restarted
let replayed_msgs t = t.replayed_msgs

let create ?(config = default_config) ?mutation ?etob_mutation
    ?(commits = false) ?anti_entropy ?ae_mutation ~store ~omega
    (ctx : Engine.ctx) =
  let opening = Persist.Store.open_ store in
  let amnesia = match mutation with Some Skip_log_replay -> true | None -> false in
  let epoch = (Persist.Store.stats store).Persist.Store.restarts in
  let link = Retransmit.create ~config:(link_config config) ~epoch ctx in
  let lctx =
    { ctx with
      Engine.send = Retransmit.send link;
      broadcast = Retransmit.broadcast link }
  in
  let etob_t, etob_node = Etob_omega.create ?mutation:etob_mutation lctx ~omega in
  let inner_service = Etob_omega.service etob_t in
  (* The anti-entropy layer (when enabled) sends through the raw ctx, not
     the retransmitting link: digests are periodic and deltas re-answer
     fresh digests, so the layer is its own retransmission mechanism and
     framing it would only add ack traffic.  Messages it learns flow into
     the write-ahead log through [after_event] like any other graph
     growth. *)
  let ae_node =
    match anti_entropy, ae_mutation with
    | None, None -> Engine.idle_node
    | config, mutation ->
      snd
        (Anti_entropy.create ?config ?mutation ctx
           ~graph:(fun () -> Etob_omega.graph etob_t)
           ~learn:(Etob_omega.learn etob_t))
  in
  let logged = ref App_msg.Id_set.empty in
  let appends = ref 0 in
  (* Replay snapshot-then-log into the protocol; the amnesia mutant skips
     exactly this step and restarts from scratch. *)
  let restored =
    if opening.Persist.Store.restarted && not amnesia then begin
      let acc = replay opening in
      let msgs = List.rev acc.r_msgs in
      Etob_omega.restore etob_t ~msgs ~delivered:acc.r_delivered;
      logged := acc.r_ids;
      Some acc
    end
    else None
  in
  let t =
    { etob = etob_t;
      link;
      store;
      commit = None;  (* patched below *)
      restarted = opening.Persist.Store.restarted;
      replayed_msgs =
        (match restored with
         | None -> 0
         | Some acc -> App_msg.Id_set.cardinal acc.r_ids) }
  in
  let commit_parts =
    if not commits then None
    else begin
      let ct, cnode =
        Commit_prefix.create lctx ~omega ~etob:inner_service
          ~promotion:(fun () -> Etob_omega.promotion etob_t)
      in
      (match restored with
       | Some acc -> Commit_prefix.restore ct acc.r_committed
       | None -> ());
      Some (ct, cnode)
    end
  in
  let t =
    match commit_parts with
    | Some (ct, _) -> { t with commit = Some ct }
    | None -> t
  in
  let log_append line =
    Persist.Store.append store line;
    incr appends
  in
  (* d-revisions: logged on every delivery, deliberately without a sync
     barrier (see the header comment).  Registered after the restore so
     the replayed revision is not immediately re-appended. *)
  inner_service.Etob_intf.on_deliver
    (fun seq -> log_append ("d " ^ App_msg.seq_to_wire seq));
  let log_msg m =
    if not (App_msg.Id_set.mem (App_msg.id m) !logged) then begin
      logged := App_msg.Id_set.add (App_msg.id m) !logged;
      log_append ("m " ^ App_msg.to_wire m)
    end
  in
  (* Log (and sync) every graph node not yet on disk; returns whether any
     record was written, i.e. whether a barrier was taken. *)
  let log_new_msgs () =
    let before = !appends in
    List.iter log_msg (Causal_graph.messages (Etob_omega.graph etob_t));
    if !appends > before then Persist.Store.sync store
  in
  let last_committed_len =
    ref (match restored with None -> 0 | Some acc -> List.length acc.r_committed)
  in
  let log_commit_growth () =
    match t.commit with
    | None -> ()
    | Some ct ->
      let c = Commit_prefix.committed ct in
      if List.length c > !last_committed_len then begin
        last_committed_len := List.length c;
        log_append ("c " ^ App_msg.seq_to_wire c);
        Persist.Store.sync store
      end
  in
  let maybe_snapshot () =
    if !appends >= config.snapshot_every then begin
      appends := 0;
      let lines =
        List.map (fun m -> "m " ^ App_msg.to_wire m)
          (Causal_graph.messages (Etob_omega.graph etob_t))
        @ [ "d " ^ App_msg.seq_to_wire (inner_service.Etob_intf.current ()) ]
        @ (match t.commit with
           | Some ct -> [ "c " ^ App_msg.seq_to_wire (Commit_prefix.committed ct) ]
           | None -> [])
      in
      Persist.Store.install_snapshot store (String.concat "\n" lines)
    end
  in
  let after_event () =
    log_new_msgs ();
    log_commit_growth ();
    maybe_snapshot ()
  in
  (* Peers may have progressed while this process was down (and its own
     unacknowledged sends died with the old incarnation): rebroadcast the
     restored graph once, through the retransmitting link. *)
  (match restored with
   | Some _ when Causal_graph.size (Etob_omega.graph etob_t) > 0 ->
     lctx.Engine.broadcast (Etob_omega.Update (Etob_omega.graph etob_t))
   | _ -> ());
  let broadcast m =
    (* Log-and-sync before the send: next_sn must survive any crash. *)
    log_msg m;
    Persist.Store.sync store;
    inner_service.Etob_intf.broadcast m;
    after_event ()
  in
  let dispatch_message ~src payload =
    etob_node.Engine.on_message ~src payload;
    ae_node.Engine.on_message ~src payload;
    (match commit_parts with
     | Some (_, cnode) -> cnode.Engine.on_message ~src payload
     | None -> ())
  in
  let on_message ~src payload =
    match payload with
    | Retransmit.Rlink { epoch; seq; inner } ->
      (match Retransmit.admit link ~src ~epoch ~seq with
       | `Stale -> ()  (* a dead incarnation's in-flight frame *)
       | `Duplicate ->
         (* Retransmission after a lost ack: re-acknowledge without
            re-delivering. *)
         ctx.Engine.send src (Retransmit.Rlink_ack { epoch; seq })
       | `Deliver ->
         dispatch_message ~src inner;
         after_event ();
         (* Acknowledge only once the new state is durable
            (log-before-ack): the sender may now stop retransmitting. *)
         ctx.Engine.send src (Retransmit.Rlink_ack { epoch; seq }))
    | Retransmit.Rlink_ack { epoch; seq } -> Retransmit.ack link ~src ~epoch ~seq
    | other ->
      (* Unframed payloads from non-recoverable peers (and the
         anti-entropy layer, which is its own retransmission mechanism):
         deliver directly. *)
      dispatch_message ~src other;
      after_event ()
  in
  let on_timer () =
    Retransmit.retry link;
    etob_node.Engine.on_timer ();
    ae_node.Engine.on_timer ();
    (match commit_parts with
     | Some (_, cnode) -> cnode.Engine.on_timer ()
     | None -> ());
    after_event ()
  in
  let on_input = function
    | Etob_intf.Broadcast_etob m ->
      (* Handled here (not forwarded to the inner node) so the broadcast
         goes through the durable path exactly once. *)
      broadcast m
    | input -> etob_node.Engine.on_input input
  in
  let service =
    { inner_service with Etob_intf.broadcast }
  in
  (t, { Engine.on_message; on_timer; on_input }, service)
