(** Application-level messages broadcast through (E)TOB.

    A message is identified by [(origin, sn)], realizing the paper's
    assumption that broadcast messages are distinct.  [deps] is the explicit
    causal-dependency set [C(m)] of Section 5. *)

open Simulator.Types

type id = proc_id * int

type t = {
  origin : proc_id;
  sn : int;
  tag : string;  (** opaque application content *)
  deps : id list;  (** C(m): ids of causal predecessors, sorted, unique *)
}

val make :
  origin:proc_id -> sn:int -> ?tag:string -> ?deps:id list -> unit -> t

val id : t -> id
val compare_id : id -> id -> int
val compare : t -> t -> int
val equal : t -> t -> bool

val pp_id : Format.formatter -> id -> unit
val pp : Format.formatter -> t -> unit
val pp_seq : Format.formatter -> t list -> unit

module Id_set : Set.S with type elt = id
module Id_map : Map.S with type key = id

val ids_of_seq : t list -> Id_set.t

val is_prefix : t list -> t list -> bool
(** [is_prefix a b]: sequence [a] is a prefix of sequence [b]. *)

(** {2 Wire codec}

    Single-line encoding used by the crash-recovery write-ahead log (see
    lib/persist and {!Recoverable}); the tag is hex-encoded, so a message
    is one line of space-separated fields and a sequence joins messages
    with ['|']. *)

val to_wire : t -> string
val of_wire : string -> t option
(** [None] on any malformed field (decode never raises). *)

val seq_to_wire : t list -> string
val seq_of_wire : string -> t list option

