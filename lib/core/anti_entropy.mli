(** Anti-entropy catch-up for Algorithm 5's causality graph: periodic
    digest exchange of known-prefix/message summaries, answered with
    O(missing) deltas, so a replica isolated through a {e lossy} partition
    ({!Simulator.Net.lossy_partition}) resynchronizes after the heal
    without flood-on-heal or a full history replay.

    Every [every] timer rounds each process broadcasts a constant-size
    digest (per origin: longest contiguous sequence-number prefix plus
    out-of-order extras); a peer answers with exactly the messages the
    digest does not cover.  Per-peer exponential backoff (reset on
    progress) stops identical deltas from being re-sent every round, and
    the receiver filters already-known messages before integrating, so
    repeated deltas are deduplicated and integration is idempotent.

    The layer is transport-agnostic: it sends through the raw engine ctx
    (not through {!Retransmit} links — anti-entropy {e is} its own
    retransmission mechanism) and integrates through a [learn] callback,
    so it wires identically under the crash-stop stack
    ([Harness.Scenario.run_etob_ae]) and inside {!Recoverable}. *)

open Simulator
open Simulator.Types

type summary = (proc_id * int * int list) list
(** Per origin: [(origin, prefix, extras)] — every [sn < prefix] is known,
    plus the sorted extras beyond the contiguous prefix. *)

type Msg.payload +=
  | Ae_digest of summary
  | Ae_delta of App_msg.t list
  | Ae_full of App_msg.t list  (** Flood mode's periodic full-set push *)

type mode =
  | Digest  (** digest + O(missing) delta: the real protocol *)
  | Flood
      (** periodically push the whole known message set — the O(history)
          strawman bench E18 compares against *)

type mutation = Skip_digest
      (** Never advertise the local digest: peers then never learn what
          this process is missing, so an isolated replica stays behind
          forever.  The negative control for the explorer's
          watchdog-backed liveness targets. *)

val all_mutations : mutation list
val mutation_name : mutation -> string
val mutation_of_string : string -> mutation option

type config = {
  mode : mode;
  every : int;  (** digest broadcast period, in local timer rounds *)
  max_backoff : int;  (** per-peer delta resend backoff cap, in rounds *)
}

val default_config : config
(** [{ mode = Digest; every = 3; max_backoff = 8 }]. *)

type stats = {
  digests_sent : int;  (** digest broadcasts *)
  deltas_sent : int;  (** delta messages sent (one per answered digest) *)
  delta_msgs : int;  (** application messages carried in deltas *)
  floods_sent : int;  (** full-set broadcasts (Flood mode) *)
  flood_msgs : int;
      (** application messages carried in floods, counted per recipient *)
  learned : int;  (** previously unknown messages integrated *)
}

type t

val create :
  ?config:config ->
  ?mutation:mutation ->
  Engine.ctx ->
  graph:(unit -> Causal_graph.t) ->
  learn:(App_msg.t list -> unit) ->
  t * Engine.node
(** One anti-entropy component for one process.  [graph] reads the current
    causality graph; [learn] integrates a batch of genuinely new messages
    (already filtered against [graph]) — for Algorithm 5 this is
    {!Etob_omega.learn}.  Stack the node beside the protocol's. *)

val summarize : Causal_graph.t -> summary
val stats : t -> stats
