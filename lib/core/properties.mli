(** Run-property checkers for every property of Section 3 and Appendix A,
    evaluated on finished run traces.

    "Eventually" clauses are interpreted against the run horizon (e.g.
    TOB-Validity becomes membership in the broadcaster's final delivered
    sequence), and the stabilization times tau are measured rather than
    asserted, so benches can compare them to the paper's bound
    tau_Omega + Delta_t + Delta_c. *)

open Simulator
open Simulator.Types

type verdict = { ok : bool; violations : string list }

val pass : verdict
val fail : string list -> verdict
val of_violations : string list -> verdict
val combine : verdict list -> verdict
val pp_verdict : Format.formatter -> verdict -> unit

(** {2 ETOB runs} *)

type etob_run

val etob_run_of_trace : Failures.pattern -> Trace.t -> etob_run

val final_d : etob_run -> proc_id -> App_msg.t list
val d_at : etob_run -> proc_id -> time -> App_msg.t list
val broadcast_time : etob_run -> App_msg.t -> time option

val revisions : etob_run -> proc_id -> (time * App_msg.t list) list
(** The chronological revisions of [d_p] — what the liveness watchdog
    ({!Harness.Watchdog}) scans for convergence progress. *)

val broadcasts : etob_run -> (time * proc_id * App_msg.t) list
(** Every broadcastETOB event of the run, chronological. *)

val horizon : etob_run -> time
(** The run horizon (time of the last trace event). *)

val correct_procs : etob_run -> proc_id list

val check_validity : etob_run -> verdict
(** TOB-Validity. *)

val check_no_creation : etob_run -> verdict
val check_no_duplication : etob_run -> verdict
val check_agreement : etob_run -> verdict

val stability_time : etob_run -> time
(** Measured ETOB-Stability tau; [0] means strong TOB-Stability. *)

val total_order_time : etob_run -> time
(** Measured ETOB-Total-order tau; [0] means strong TOB-Total-order. *)

val check_causal_order : etob_run -> verdict
(** TOB-Causal-Order, required at {e all} times. *)

val check_deps_present : etob_run -> verdict
(** Stronger, Algorithm-5-specific property: a delivered message's causal
    dependencies are themselves delivered. *)

val check_distinct_broadcasts : etob_run -> verdict
(** The paper's standing assumption that broadcast messages are distinct,
    made checkable: no (origin, sn) id is broadcast twice.  A process that
    recovers from a crash with amnesia (lost allocation state) is exactly
    what breaks it. *)

val orders_agree : App_msg.t list -> App_msg.t list -> bool
(** Common messages of the two sequences appear in the same relative order. *)

type etob_report = {
  validity : verdict;
  no_creation : verdict;
  no_duplication : verdict;
  agreement : verdict;
  causal_order : verdict;
  distinct_broadcasts : verdict;
  tau_stability : time;
  tau_total_order : time;
}

val etob_report : etob_run -> etob_report

val etob_base_ok : etob_report -> bool
(** The paper's four base TOB properties (validity, no-creation,
    no-duplication, agreement) hold.  [distinct_broadcasts] is a check on
    the model's {e assumption} rather than on the protocol, so it is
    reported separately (and folded into {!etob_violations}). *)

val is_strong_tob : etob_report -> bool
(** All six strong TOB properties hold (tau = 0). *)

val etob_violations : ?tau_bound:time -> etob_report -> string list
(** Flatten a report into the violated-property messages the explorer
    consumes: all safety violations, plus — when [tau_bound] is given — the
    measured taus exceeding it.  Use [tau_bound:0] for runs whose detector
    never flaps (strong TOB is then mandatory) and the plan's settle time
    plus slack otherwise; omit it to check eventual properties only.
    Empty list = clean run. *)

val etob_convergence_time : etob_report -> time
val pp_etob_report : Format.formatter -> etob_report -> unit

val stable_delivery_time : etob_run -> App_msg.t -> time option
(** The time by which every correct process has stably delivered [m]. *)

(** {2 Committed-prefix runs (Section 7 extension)} *)

type commit_run

val commit_run_of_trace : Failures.pattern -> Trace.t -> commit_run

val check_commit_stability : commit_run -> verdict
(** A committed prefix is never rolled back: every announcement extends the
    previous one at the same process. *)

val final_committed : commit_run -> proc_id -> App_msg.t list

val check_commit_consistent : commit_run -> etob_run -> verdict
(** Every committed prefix is a prefix of what every correct process
    eventually delivers. *)

val commit_time : commit_run -> App_msg.t -> time option
(** The time by which every correct process knows [m] committed. *)

val committed_count : commit_run -> proc_id -> int

(** {2 EC runs} *)

type ec_run

val ec_run_of_trace : ?layer:string -> Failures.pattern -> Trace.t -> ec_run
(** Extract the EC history of one layer (default {!Ec_intf.default_layer}). *)

val check_ec_integrity : ec_run -> verdict
val check_ec_validity : ec_run -> verdict
val check_ec_termination : ec_run -> instances:int -> verdict

val ec_agreement_index : ec_run -> int
(** Measured EC-Agreement index k: all decisions agree from instance k on;
    [1] means agreement throughout. *)

val decided_instances : ec_run -> int list

type ec_report = {
  integrity : verdict;
  ec_validity : verdict;
  termination : verdict;
  agreement_index : int;
}

val ec_report : ec_run -> instances:int -> ec_report
val ec_ok : ?agreement_by:int -> ec_report -> bool
val pp_ec_report : Format.formatter -> ec_report -> unit

(** {2 EIC runs (Appendix A)} *)

type eic_run

val eic_run_of_trace : Failures.pattern -> Trace.t -> eic_run

val eic_final_response : eic_run -> proc_id -> int -> Value.t option

val eic_integrity_index : eic_run -> int
(** Measured EIC-Integrity index k: no double response for instances >= k. *)

val eic_revocation_count : eic_run -> int
(** Total number of revocations (extra responses) in the run — EIC allows
    finitely many. *)

val check_eic_agreement : eic_run -> verdict
val check_eic_validity : eic_run -> verdict
val check_eic_termination : eic_run -> instances:int -> verdict
