(* Run-property checkers.

   Each checker decides one property from Section 3 (or Appendix A) of the
   paper over a finished run's trace.  A run is finite, so the "eventually"
   clauses are interpreted against the run horizon: e.g. TOB-Validity
   becomes "the message is in the broadcaster's final delivered sequence",
   and the stabilization times tau are *measured* rather than asserted.
   Tests pick horizons comfortably past all scheduled stabilizations, so a
   failed check is a genuine violation, and benches report the measured tau
   against the paper's bound tau_Omega + Delta_t + Delta_c (Lemma 3). *)

open Simulator
open Simulator.Types

type verdict = { ok : bool; violations : string list }

let pass = { ok = true; violations = [] }

let fail violations = { ok = false; violations }

let of_violations violations = { ok = violations = []; violations }

let combine verdicts =
  of_violations (List.concat_map (fun v -> v.violations) verdicts)

let pp_verdict ppf v =
  if v.ok then Fmt.string ppf "ok"
  else Fmt.pf ppf "@[<v>FAIL:@,%a@]" (Fmt.list Fmt.string) v.violations

(* ------------------------------------------------------------------ *)
(* ETOB runs                                                           *)
(* ------------------------------------------------------------------ *)

type etob_run = {
  e_pattern : Failures.pattern;
  e_horizon : time;
  (* Every broadcastETOB(m) event: (time, broadcaster, m). *)
  e_broadcasts : (time * proc_id * App_msg.t) list;
  (* Per process, the chronological revisions of d_i: (time, sequence). *)
  e_snapshots : (time * App_msg.t list) list array;
}

let etob_run_of_trace pattern trace =
  let n = Failures.n pattern in
  let broadcasts = ref [] in
  let snapshots = Array.make n [] in
  List.iter
    (fun (t, p, o) ->
       match o with
       | Etob_intf.Etob_broadcast m -> broadcasts := (t, p, m) :: !broadcasts
       | Etob_intf.Etob_deliver seq -> snapshots.(p) <- (t, seq) :: snapshots.(p)
       | _ -> ())
    (Trace.outputs trace);
  { e_pattern = pattern;
    e_horizon = Trace.last_time trace;
    e_broadcasts = List.rev !broadcasts;
    e_snapshots = Array.map List.rev snapshots }

let final_d run p =
  match run.e_snapshots.(p) with [] -> [] | l -> snd (List.nth l (List.length l - 1))

(* d_p(t): the last revision at or before t (initially the empty sequence). *)
let d_at run p t =
  let rec scan best = function
    | [] -> best
    | (t', seq) :: rest -> if t' <= t then scan seq rest else best
  in
  scan [] run.e_snapshots.(p)

let correct_procs run = Failures.correct run.e_pattern

let revisions run p = run.e_snapshots.(p)

let broadcasts run = run.e_broadcasts

let horizon run = run.e_horizon

let broadcast_time run m =
  List.find_map
    (fun (t, _, m') -> if App_msg.equal m m' then Some t else None)
    run.e_broadcasts

let str fmt = Format.asprintf fmt

(* TOB-Validity: a correct broadcaster eventually stably delivers its own
   message (finite-run form: it is in the broadcaster's final d). *)
let check_validity run =
  of_violations
    (List.filter_map
       (fun (t, p, m) ->
          if Failures.is_correct run.e_pattern p
          && not (List.exists (App_msg.equal m) (final_d run p))
          then Some (str "validity: %a broadcast by %a at %d missing from its final d"
                       App_msg.pp m pp_proc p t)
          else None)
       run.e_broadcasts)

(* TOB-No-creation: every delivered message was broadcast no later than its
   delivery.  (Same-tick is allowed: a broadcaster may output its own
   message within the very step that broadcasts it, and the discrete clock
   cannot order events inside one step.) *)
let check_no_creation run =
  let violations = ref [] in
  Array.iteri
    (fun p revs ->
       List.iter
         (fun (t, seq) ->
            List.iter
              (fun m ->
                 match broadcast_time run m with
                 | Some tb when tb <= t -> ()
                 | Some tb ->
                   violations :=
                     str "no-creation: %a in d_%a at %d but broadcast at %d"
                       App_msg.pp m pp_proc p t tb :: !violations
                 | None ->
                   violations :=
                     str "no-creation: %a in d_%a at %d was never broadcast"
                       App_msg.pp m pp_proc p t :: !violations)
              seq)
         revs)
    run.e_snapshots;
  of_violations (List.rev !violations)

(* TOB-No-duplication: no message appears twice in any d_i(t). *)
let check_no_duplication run =
  let violations = ref [] in
  Array.iteri
    (fun p revs ->
       List.iter
         (fun (t, seq) ->
            let ids = List.map App_msg.id seq in
            if List.length (List.sort_uniq App_msg.compare_id ids) <> List.length ids then
              violations :=
                str "no-duplication: duplicate in d_%a at %d: %a" pp_proc p t
                  App_msg.pp_seq seq :: !violations)
         revs)
    run.e_snapshots;
  of_violations (List.rev !violations)

(* TOB-Agreement (finite-run form): a message in the final d of one correct
   process is in the final d of every correct process. *)
let check_agreement run =
  let correct = correct_procs run in
  let violations = ref [] in
  List.iter
    (fun p ->
       List.iter
         (fun m ->
            List.iter
              (fun q ->
                 if not (List.exists (App_msg.equal m) (final_d run q)) then
                   violations :=
                     str "agreement: %a in final d_%a but not in final d_%a"
                       App_msg.pp m pp_proc p pp_proc q :: !violations)
              correct)
         (final_d run p))
    correct;
  of_violations (List.sort_uniq String.compare (List.rev !violations))

(* The measured ETOB-Stability time: the earliest tau such that for every
   correct process, every revision at time >= tau extends (has as a prefix)
   the previous revision.  0 means the run satisfies strong TOB-Stability. *)
let stability_time run =
  let tau = ref 0 in
  List.iter
    (fun p ->
       let rec scan prev = function
         | [] -> ()
         | (t, seq) :: rest ->
           if not (App_msg.is_prefix prev seq) then tau := max !tau t;
           scan seq rest
       in
       scan [] run.e_snapshots.(p))
    (correct_procs run);
  !tau

(* Relative order of the common messages of two sequences agrees. *)
let orders_agree seq_a seq_b =
  let index seq = List.mapi (fun i m -> (App_msg.id m, i)) seq in
  let ia = index seq_a and ib = index seq_b in
  let common = List.filter (fun (id, _) -> List.mem_assoc id ib) ia in
  let rec pairs = function
    | [] -> true
    | (id1, i1) :: rest ->
      List.for_all
        (fun (id2, i2) ->
           let j1 = List.assoc id1 ib and j2 = List.assoc id2 ib in
           Int.compare i1 i2 = Int.compare j1 j2)
        rest
      && pairs rest
  in
  pairs common

(* The measured ETOB-Total-order time: the earliest tau such that at every
   event time >= tau, all pairs of correct processes order their common
   messages consistently. *)
let total_order_time run =
  let times =
    List.sort_uniq Int.compare
      (Array.to_list run.e_snapshots |> List.concat_map (List.map fst))
  in
  let correct = correct_procs run in
  let consistent_at t =
    let rec check = function
      | [] -> true
      | p :: rest ->
        List.for_all (fun q -> orders_agree (d_at run p t) (d_at run q t)) rest
        && check rest
    in
    check correct
  in
  List.fold_left (fun tau t -> if consistent_at t then tau else max tau (t + 1)) 0 times

(* TOB-Causal-Order: in every d_i(t), every dependency of a message that is
   present appears earlier.  The paper requires this at ALL times for
   Algorithm 5 — no tau. *)
let check_causal_order run =
  let violations = ref [] in
  Array.iteri
    (fun p revs ->
       List.iter
         (fun (t, seq) ->
            let indexed = List.mapi (fun i m -> (App_msg.id m, i)) seq in
            List.iteri
              (fun i m ->
                 List.iter
                   (fun dep ->
                      match List.assoc_opt dep indexed with
                      | Some j when j < i -> ()
                      | Some _ ->
                        violations :=
                          str "causal-order: dep %a after %a in d_%a at %d"
                            App_msg.pp_id dep App_msg.pp m pp_proc p t :: !violations
                      | None -> () (* dependency not delivered: order vacuous *))
                   m.App_msg.deps)
              seq)
         revs)
    run.e_snapshots;
  of_violations (List.rev !violations)

(* Algorithm 5 additionally delivers dependencies before dependents; checking
   presence is a stronger, implementation-specific property. *)
let check_deps_present run =
  let violations = ref [] in
  Array.iteri
    (fun p revs ->
       List.iter
         (fun (t, seq) ->
            let ids = App_msg.ids_of_seq seq in
            List.iter
              (fun m ->
                 List.iter
                   (fun dep ->
                      if not (App_msg.Id_set.mem dep ids) then
                        violations :=
                          str "deps-present: dep %a of %a missing from d_%a at %d"
                            App_msg.pp_id dep App_msg.pp m pp_proc p t :: !violations)
                   m.App_msg.deps)
              seq)
         revs)
    run.e_snapshots;
  of_violations (List.rev !violations)

(* The paper assumes broadcast messages are distinct; the (origin, sn)
   identification realizes the assumption as long as no process ever
   re-allocates a sequence number.  A crash-recovered process that lost
   its allocation state (amnesia — e.g. the skip-log-replay mutant of the
   recoverable wrapper) breaks exactly this: it broadcasts a second,
   different message under an already-used id.  We check the assumption
   rather than assume it. *)
let check_distinct_broadcasts run =
  let violations = ref [] in
  let seen = ref App_msg.Id_map.empty in
  List.iter
    (fun (t, p, m) ->
       let id = App_msg.id m in
       match App_msg.Id_map.find_opt id !seen with
       | None -> seen := App_msg.Id_map.add id (t, p) !seen
       | Some (t0, p0) ->
         violations :=
           str "distinct-broadcasts: id %a broadcast by %a at %d and again \
                by %a at %d (sequence number reused)"
             App_msg.pp_id id pp_proc p0 t0 pp_proc p t :: !violations)
    run.e_broadcasts;
  of_violations (List.rev !violations)

type etob_report = {
  validity : verdict;
  no_creation : verdict;
  no_duplication : verdict;
  agreement : verdict;
  causal_order : verdict;
  distinct_broadcasts : verdict;
  tau_stability : time;
  tau_total_order : time;
}

let etob_report run =
  { validity = check_validity run;
    no_creation = check_no_creation run;
    no_duplication = check_no_duplication run;
    agreement = check_agreement run;
    causal_order = check_causal_order run;
    distinct_broadcasts = check_distinct_broadcasts run;
    tau_stability = stability_time run;
    tau_total_order = total_order_time run }

let etob_base_ok r =
  r.validity.ok && r.no_creation.ok && r.no_duplication.ok && r.agreement.ok

(* The run satisfies the full (strong) TOB specification. *)
let is_strong_tob r = etob_base_ok r && r.tau_stability = 0 && r.tau_total_order = 0

let etob_convergence_time r = max r.tau_stability r.tau_total_order

(* Flatten a report into the list of violated properties, as the explorer
   consumes it.  [tau_bound] is the largest admissible convergence time for
   the run's adversity plan: 0 for a plan with no leader flapping (every
   adoption is a same-lineage promote from the stable leader, so strong
   stability/total-order must hold), or the plan's settle time plus slack
   otherwise.  [None] skips the tau check (eventual-only mode). *)
let etob_violations ?tau_bound r =
  let verdicts =
    [ ("validity", r.validity);
      ("no-creation", r.no_creation);
      ("no-duplication", r.no_duplication);
      ("agreement", r.agreement);
      ("causal-order", r.causal_order);
      ("distinct-broadcasts", r.distinct_broadcasts) ]
  in
  let base =
    (* Some checkers already lead their messages with their own name. *)
    let tag name msg =
      let prefix = name ^ ":" in
      if String.length msg >= String.length prefix
         && String.sub msg 0 (String.length prefix) = prefix
      then msg
      else Printf.sprintf "%s: %s" name msg
    in
    List.concat_map
      (fun (name, v) -> List.map (tag name) v.violations)
      verdicts
  in
  let tau =
    match tau_bound with
    | None -> []
    | Some bound ->
      let check name t =
        if t > bound then
          [ Printf.sprintf "%s: tau=%d exceeds bound %d" name t bound ]
        else []
      in
      check "tau-stability" r.tau_stability
      @ check "tau-total-order" r.tau_total_order
  in
  base @ tau

let pp_etob_report ppf r =
  Fmt.pf ppf
    "@[<v>validity: %a@,no-creation: %a@,no-duplication: %a@,agreement: %a@,\
     causal-order: %a@,distinct-broadcasts: %a@,\
     tau(stability)=%d tau(total-order)=%d@]"
    pp_verdict r.validity pp_verdict r.no_creation pp_verdict r.no_duplication
    pp_verdict r.agreement pp_verdict r.causal_order
    pp_verdict r.distinct_broadcasts r.tau_stability r.tau_total_order

(* The time by which every correct process has stably delivered m: the
   earliest t such that m is in d_p(t') for every correct p and t' >= t.
   None if some correct process never (stably) delivers m. *)
let stable_delivery_time run m =
  let per_proc p =
    let rec last_absent best = function
      | [] -> best
      | (t, seq) :: rest ->
        if List.exists (App_msg.equal m) seq then last_absent best rest
        else last_absent (Some t) rest
    in
    let rec first_present = function
      | [] -> None
      | (t, seq) :: rest ->
        if List.exists (App_msg.equal m) seq then Some t else first_present rest
    in
    match first_present run.e_snapshots.(p), last_absent None run.e_snapshots.(p) with
    | None, _ -> None
    | Some tp, None -> Some tp
    | Some tp, Some ta ->
      if ta < tp then Some tp
      else
        (* present, later absent: first presence AFTER the last absence. *)
        List.find_map
          (fun (t, seq) ->
             if t > ta && List.exists (App_msg.equal m) seq then Some t else None)
          run.e_snapshots.(p)
  in
  let correct = correct_procs run in
  let times = List.map per_proc correct in
  if List.exists (fun t -> t = None) times then None
  else Some (List.fold_left (fun acc t -> max acc (Option.get t)) 0 times)

(* ------------------------------------------------------------------ *)
(* Committed-prefix runs (Section 7 extension)                         *)
(* ------------------------------------------------------------------ *)

type commit_run = {
  m_pattern : Failures.pattern;
  m_series : (time * App_msg.t list) list array;  (* chronological per proc *)
}

let commit_run_of_trace pattern trace =
  let series = Array.make (Failures.n pattern) [] in
  List.iter
    (fun (t, p, o) ->
       match o with
       | Commit_prefix.Committed seq -> series.(p) <- (t, seq) :: series.(p)
       | _ -> ())
    (Trace.outputs trace);
  { m_pattern = pattern; m_series = Array.map List.rev series }

(* The defining property of the indication: a committed prefix is never
   rolled back — every announcement extends the previous one. *)
let check_commit_stability run =
  let violations = ref [] in
  Array.iteri
    (fun p entries ->
       let rec scan prev = function
         | [] -> ()
         | (t, seq) :: rest ->
           if not (App_msg.is_prefix prev seq) then
             violations :=
               str "commit-stability: commitment at %a revised at %d" pp_proc p t
               :: !violations;
           scan seq rest
       in
       scan [] entries)
    run.m_series;
  of_violations (List.rev !violations)

let final_committed run p =
  match List.rev run.m_series.(p) with [] -> [] | (_, seq) :: _ -> seq

(* Committed prefixes must be prefixes of what is eventually delivered. *)
let check_commit_consistent run etob =
  let violations = ref [] in
  List.iter
    (fun p ->
       let committed = final_committed run p in
       List.iter
         (fun q ->
            if not (App_msg.is_prefix committed (final_d etob q)) then
              violations :=
                str "commit-consistency: %a's committed prefix is not a prefix of \
                     final d_%a" pp_proc p pp_proc q :: !violations)
         (correct_procs etob))
    (Failures.correct run.m_pattern);
  of_violations (List.rev !violations)

(* The time by which every correct process knows m committed; None if some
   correct process never learns it. *)
let commit_time run m =
  let per_proc p =
    List.find_map
      (fun (t, seq) -> if List.exists (App_msg.equal m) seq then Some t else None)
      run.m_series.(p)
  in
  let times = List.map per_proc (Failures.correct run.m_pattern) in
  if List.exists (fun t -> t = None) times then None
  else Some (List.fold_left (fun acc t -> max acc (Option.get t)) 0 times)

let committed_count run p = List.length (final_committed run p)

(* ------------------------------------------------------------------ *)
(* EC runs                                                             *)
(* ------------------------------------------------------------------ *)

type ec_run = {
  c_pattern : Failures.pattern;
  c_horizon : time;
  c_proposals : (time * proc_id * int * Value.t) list;
  c_decisions : (time * proc_id * int * Value.t) list;
}

let ec_run_of_trace ?(layer = Ec_intf.default_layer) pattern trace =
  let proposals = ref [] and decisions = ref [] in
  List.iter
    (fun (t, p, o) ->
       match o with
       | Ec_intf.Proposed_ec { layer = l; instance; value } when l = layer ->
         proposals := (t, p, instance, value) :: !proposals
       | Ec_intf.Decide_ec { layer = l; instance; value } when l = layer ->
         decisions := (t, p, instance, value) :: !decisions
       | _ -> ())
    (Trace.outputs trace);
  { c_pattern = pattern;
    c_horizon = Trace.last_time trace;
    c_proposals = List.rev !proposals;
    c_decisions = List.rev !decisions }

(* EC-Integrity: no process responds twice to the same instance. *)
let check_ec_integrity run =
  let seen = Hashtbl.create 64 in
  let violations = ref [] in
  List.iter
    (fun (t, p, l, _) ->
       if Hashtbl.mem seen (p, l) then
         violations := str "ec-integrity: %a decided instance %d twice (at %d)"
             pp_proc p l t :: !violations
       else Hashtbl.add seen (p, l) ())
    run.c_decisions;
  of_violations (List.rev !violations)

(* EC-Validity: every decided value was proposed to the same instance. *)
let check_ec_validity run =
  of_violations
    (List.filter_map
       (fun (t, p, l, v) ->
          let proposed =
            List.exists (fun (_, _, l', v') -> l = l' && Value.equal v v')
              run.c_proposals
          in
          if proposed then None
          else Some (str "ec-validity: %a decided %a for instance %d at %d, never proposed"
                       pp_proc p Value.pp v l t))
       run.c_decisions)

(* EC-Termination (finite-run form): every correct process decided every
   instance in [1, instances]. *)
let check_ec_termination run ~instances =
  let violations = ref [] in
  List.iter
    (fun p ->
       let rec each l =
         if l <= instances then begin
           if not (List.exists (fun (_, p', l', _) -> p' = p && l' = l) run.c_decisions)
           then violations := str "ec-termination: %a never decided instance %d"
               pp_proc p l :: !violations;
           each (l + 1)
         end
       in
       each 1)
    (Failures.correct run.c_pattern);
  of_violations (List.rev !violations)

(* The measured EC-Agreement index: the smallest k such that all decisions
   for every instance >= k agree.  1 means agreement from the start. *)
let ec_agreement_index run =
  let disagreeing l =
    let values =
      List.filter_map (fun (_, _, l', v) -> if l = l' then Some v else None)
        run.c_decisions
    in
    match values with
    | [] -> false
    | v :: rest -> List.exists (fun v' -> not (Value.equal v v')) rest
  in
  let instances =
    List.sort_uniq Int.compare (List.map (fun (_, _, l, _) -> l) run.c_decisions)
  in
  List.fold_left (fun k l -> if disagreeing l then max k (l + 1) else k) 1 instances

let decided_instances run =
  List.sort_uniq Int.compare (List.map (fun (_, _, l, _) -> l) run.c_decisions)

type ec_report = {
  integrity : verdict;
  ec_validity : verdict;
  termination : verdict;
  agreement_index : int;
}

let ec_report run ~instances =
  { integrity = check_ec_integrity run;
    ec_validity = check_ec_validity run;
    termination = check_ec_termination run ~instances;
    agreement_index = ec_agreement_index run }

let ec_ok ?(agreement_by = max_int) r =
  r.integrity.ok && r.ec_validity.ok && r.termination.ok
  && r.agreement_index <= agreement_by

let pp_ec_report ppf r =
  Fmt.pf ppf "@[<v>integrity: %a@,validity: %a@,termination: %a@,agreement from k=%d@]"
    pp_verdict r.integrity pp_verdict r.ec_validity pp_verdict r.termination
    r.agreement_index

(* ------------------------------------------------------------------ *)
(* EIC runs (Appendix A)                                               *)
(* ------------------------------------------------------------------ *)

type eic_run = {
  i_pattern : Failures.pattern;
  i_proposals : (time * proc_id * int * Value.t) list;
  i_decisions : (time * proc_id * int * Value.t) list;  (* chronological *)
}

let eic_run_of_trace pattern trace =
  let proposals = ref [] and decisions = ref [] in
  List.iter
    (fun (t, p, o) ->
       match o with
       | Eic_intf.Proposed_eic { instance; value } ->
         proposals := (t, p, instance, value) :: !proposals
       | Eic_intf.Decide_eic { instance; value } ->
         decisions := (t, p, instance, value) :: !decisions
       | _ -> ())
    (Trace.outputs trace);
  { i_pattern = pattern;
    i_proposals = List.rev !proposals;
    i_decisions = List.rev !decisions }

(* The final (= last) response of p to instance l, if any. *)
let eic_final_response run p l =
  List.fold_left
    (fun acc (_, p', l', v) -> if p = p' && l = l' then Some v else acc)
    None run.i_decisions

(* The measured EIC-Integrity index: smallest k such that no process
   responds twice to any instance >= k. *)
let eic_integrity_index run =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (_, p, l, _) ->
       let c = Option.value ~default:0 (Hashtbl.find_opt counts (p, l)) in
       Hashtbl.replace counts (p, l) (c + 1))
    run.i_decisions;
  (* detlint: sorted — max over bindings is order-insensitive *)
  Hashtbl.fold (fun (_, l) c k -> if c > 1 then max k (l + 1) else k) counts 1

let eic_revocation_count run =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (_, p, l, _) ->
       let c = Option.value ~default:0 (Hashtbl.find_opt counts (p, l)) in
       Hashtbl.replace counts (p, l) (c + 1))
    run.i_decisions;
  (* detlint: sorted — sum over bindings is order-insensitive *)
  Hashtbl.fold (fun _ c acc -> acc + max 0 (c - 1)) counts 0

(* EIC-Agreement (finite-run form): the final responses of correct processes
   agree on every instance they have all responded to. *)
let check_eic_agreement run =
  let correct = Failures.correct run.i_pattern in
  let instances =
    List.sort_uniq Int.compare (List.map (fun (_, _, l, _) -> l) run.i_decisions)
  in
  let violations = ref [] in
  List.iter
    (fun l ->
       let finals = List.map (fun p -> eic_final_response run p l) correct in
       if List.for_all (fun v -> v <> None) finals then
         match finals with
         | Some v :: rest ->
           if List.exists (function Some v' -> not (Value.equal v v') | None -> false) rest
           then violations := str "eic-agreement: final responses differ for instance %d" l
               :: !violations
         | _ -> ())
    instances;
  of_violations (List.rev !violations)

(* EIC-Validity: every response value was proposed to the same instance. *)
let check_eic_validity run =
  of_violations
    (List.filter_map
       (fun (t, p, l, v) ->
          let proposed =
            List.exists (fun (_, _, l', v') -> l = l' && Value.equal v v')
              run.i_proposals
          in
          if proposed then None
          else Some (str "eic-validity: %a responded %a for instance %d at %d, never proposed"
                       pp_proc p Value.pp v l t))
       run.i_decisions)

(* EIC-Termination: every correct process responded at least once to every
   instance in [1, instances]. *)
let check_eic_termination run ~instances =
  let violations = ref [] in
  List.iter
    (fun p ->
       let rec each l =
         if l <= instances then begin
           if eic_final_response run p l = None then
             violations := str "eic-termination: %a never responded to instance %d"
                 pp_proc p l :: !violations;
           each (l + 1)
         end
       in
       each 1)
    (Failures.correct run.i_pattern);
  of_violations (List.rev !violations)
