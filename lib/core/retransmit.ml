(* Epoch-tagged retransmission links, factored out of [Recoverable] so any
   component that needs reliable delivery over the engine's lossy
   extensions (crash downtime windows, lossy partitions) can reuse one
   implementation: sender-side retransmission with per-destination
   sequence numbers, receiver-side dedup, and bounded exponential backoff.

   Frames carry the sender's incarnation [epoch] (its number of restarts,
   read off its stable store): a restarted sender's sequence numbers start
   over from 0, so without the epoch its peers' dedup sets would swallow
   every post-restart frame as a duplicate of the old incarnation's. *)

open Simulator
open Simulator.Types

type Msg.payload +=
  | Rlink of { epoch : int; seq : int; inner : Msg.payload }
  | Rlink_ack of { epoch : int; seq : int }

type config = {
  ack_timeout : int;  (** initial retransmission timeout, in ticks *)
  max_backoff : int;  (** retransmission backoff cap, in ticks *)
}

let default_config = { ack_timeout = 4; max_backoff = 32 }

module Int_map = Map.Make (Int)
module Int_set = Set.Make (Int)

type pending = {
  payload : Msg.payload;
  mutable next_retry : time;
  mutable backoff : int;
}

type t = {
  ctx : Engine.ctx;  (* the raw engine ctx *)
  cfg : config;
  epoch : int;  (* this incarnation's number (restarts so far) *)
  next_seq : int array;  (* per destination *)
  mutable unacked : pending Int_map.t array;  (* per destination *)
  src_epoch : int array;  (* per source: highest incarnation seen *)
  mutable seen : Int_set.t array;  (* per source: delivered frame seqs *)
  mutable retransmitted : int;
}

let create ?(config = default_config) ~epoch (ctx : Engine.ctx) =
  { ctx;
    cfg = config;
    epoch;
    next_seq = Array.make ctx.Engine.n 0;
    unacked = Array.make ctx.Engine.n Int_map.empty;
    src_epoch = Array.make ctx.Engine.n (-1);
    seen = Array.make ctx.Engine.n Int_set.empty;
    retransmitted = 0 }

let epoch t = t.epoch
let retransmitted t = t.retransmitted

let send t dst payload =
  let seq = t.next_seq.(dst) in
  t.next_seq.(dst) <- seq + 1;
  let now = t.ctx.Engine.now () in
  t.unacked.(dst) <-
    Int_map.add seq
      { payload; next_retry = now + t.cfg.ack_timeout;
        backoff = t.cfg.ack_timeout }
      t.unacked.(dst);
  t.ctx.Engine.send dst (Rlink { epoch = t.epoch; seq; inner = payload })

let broadcast t payload =
  List.iter (fun q -> send t q payload) (all_procs t.ctx.Engine.n)

(* Retransmit every overdue unacknowledged frame, doubling its backoff up
   to the cap.  Driven from the process's local timer. *)
let retry t =
  let now = t.ctx.Engine.now () in
  Array.iteri
    (fun dst pendings ->
       Int_map.iter
         (fun seq p ->
            if now >= p.next_retry then begin
              p.backoff <- min (2 * p.backoff) t.cfg.max_backoff;
              p.next_retry <- now + p.backoff;
              t.retransmitted <- t.retransmitted + 1;
              t.ctx.Engine.send dst
                (Rlink { epoch = t.epoch; seq; inner = p.payload })
            end)
         pendings)
    t.unacked

(* A frame from a newer incarnation of [src] supersedes the old one's
   dedup state; a frame from an older (dead) incarnation is dropped —
   nobody retransmits it, and its content is covered by the restarted
   sender's replay-and-rebroadcast.  Returns whether to deliver. *)
let admit t ~src ~epoch ~seq =
  if epoch < t.src_epoch.(src) then `Stale
  else begin
    if epoch > t.src_epoch.(src) then begin
      t.src_epoch.(src) <- epoch;
      t.seen.(src) <- Int_set.empty
    end;
    if Int_set.mem seq t.seen.(src) then `Duplicate
    else begin
      t.seen.(src) <- Int_set.add seq t.seen.(src);
      `Deliver
    end
  end

let ack t ~src ~epoch ~seq =
  if epoch = t.epoch then t.unacked.(src) <- Int_map.remove seq t.unacked.(src)

let () =
  Msg.register_payload_pp (fun ppf -> function
    | Rlink { epoch; seq; inner } ->
      Fmt.pf ppf "rlink[%d.%d](%a)" epoch seq Msg.pp_payload inner; true
    | Rlink_ack { epoch; seq } -> Fmt.pf ppf "rlink-ack[%d.%d]" epoch seq; true
    | _ -> false)
