(* Consensus values.

   The paper defines EC over binary values and notes the standard lift to
   multivalued consensus [23]; we work directly with a small multivalued
   domain rich enough for every construction in the paper:
   - [Flag]  — the binary case used by the lower-bound machinery (lib/cht);
   - [Num]   — generic multivalued tests;
   - [Seq]   — sequences of application messages, the values proposed by the
               EC-to-ETOB transformation (Algorithm 1);
   - [Vec]   — sequences of values, proposed by the EC-to-EIC transformation
               (Algorithm 6, "decision_i . v"). *)

type t =
  | Flag of bool
  | Num of int
  | Seq of App_msg.t list
  | Vec of t list

let rec equal a b =
  match a, b with
  | Flag x, Flag y -> x = y
  | Num x, Num y -> x = y
  | Seq xs, Seq ys ->
    List.length xs = List.length ys && List.for_all2 App_msg.equal xs ys
  | Vec xs, Vec ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | (Flag _ | Num _ | Seq _ | Vec _), _ -> false

let rec compare a b =
  let rank = function Flag _ -> 0 | Num _ -> 1 | Seq _ -> 2 | Vec _ -> 3 in
  match a, b with
  | Flag x, Flag y -> Bool.compare x y
  | Num x, Num y -> Int.compare x y
  | Seq xs, Seq ys -> List.compare App_msg.compare xs ys
  | Vec xs, Vec ys -> List.compare compare xs ys
  | _, _ -> Int.compare (rank a) (rank b)

let rec pp ppf = function
  | Flag b -> Fmt.pf ppf "%b" b
  | Num i -> Fmt.pf ppf "%d" i
  | Seq ms -> App_msg.pp_seq ppf ms
  | Vec vs -> Fmt.pf ppf "(%a)" (Fmt.list ~sep:Fmt.comma pp) vs

(* Scalar values embed into message tags for the ETOB-to-EC transformation
   (Algorithm 2 encodes the pair (l, v) inside a broadcast message). *)
let to_tag = function
  | Flag b -> "f:" ^ string_of_bool b
  | Num i -> "n:" ^ string_of_int i
  | Seq _ | Vec _ -> invalid_arg "Value.to_tag: only scalar values embed in tags"

let of_tag s =
  match String.length s with
  | len when len >= 2 && s.[1] = ':' ->
    let body = String.sub s 2 (len - 2) in
    (match s.[0] with
     | 'f' -> Option.map (fun b -> Flag b) (bool_of_string_opt body)
     | 'n' -> Option.map (fun i -> Num i) (int_of_string_opt body)
     | _ -> None)
  | _ -> None
