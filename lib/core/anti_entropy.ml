(* Anti-entropy catch-up for Algorithm 5's causality graph.

   Under the buffered partitions of Net.partitioned nothing is ever lost,
   so Algorithm 5 needs no repair: every update arrives eventually.  Lossy
   partitions (Net.lossy_partition and friends) break that: an update
   dropped on the floor is re-taught only if its content happens to ride a
   later full-graph re-gossip, i.e. only if someone on the knowing side
   broadcasts again after the heal.  This component closes the gap with
   periodic digest exchange:

   - Every [every] local timer rounds, broadcast a constant-size digest of
     the known messages: per origin, the longest contiguous
     sequence-number prefix plus the out-of-order extras.
   - A peer receiving a digest answers with exactly the messages the
     digest does not cover — an O(missing) delta, not the O(history) flood
     of re-sending the whole graph.
   - Per-peer exponential backoff (capped) keeps a slow or isolated peer
     from being re-sent the same delta every round; the backoff resets as
     soon as the peer's digest shows progress.
   - The receiver dedups: already-known messages are filtered before
     [learn], so repeated deltas are free and [learn] stays idempotent.

   [Flood] mode replaces the digest/delta pair with a periodic broadcast
   of the full message set — the strawman this layer exists to beat; bench
   E18 measures both.  The [Skip_digest] mutation never advertises its own
   digest (peers then never learn what it is missing), the negative
   control the explorer's watchdog-backed liveness targets must flag. *)

open Simulator
open Simulator.Types

(* Per origin: [(origin, prefix, extras)] — every sn < prefix is known,
   plus the (sorted) extras beyond the contiguous prefix. *)
type summary = (proc_id * int * int list) list

type Msg.payload +=
  | Ae_digest of summary
  | Ae_delta of App_msg.t list
  | Ae_full of App_msg.t list

type mode = Digest | Flood

type mutation = Skip_digest

let all_mutations = [ Skip_digest ]
let mutation_name = function Skip_digest -> "skip-digest"

let mutation_of_string s =
  List.find_opt (fun m -> mutation_name m = s) all_mutations

type config = {
  mode : mode;
  every : int;  (** digest broadcast period, in local timer rounds *)
  max_backoff : int;  (** per-peer delta resend backoff cap, in rounds *)
}

let default_config = { mode = Digest; every = 3; max_backoff = 8 }

type stats = {
  digests_sent : int;  (** digest broadcasts *)
  deltas_sent : int;  (** delta messages sent (one per answered digest) *)
  delta_msgs : int;  (** application messages carried in deltas *)
  floods_sent : int;  (** full-set broadcasts (Flood mode) *)
  flood_msgs : int;  (** application messages carried in floods, per recipient *)
  learned : int;  (** previously unknown messages integrated *)
}

type t = {
  ctx : Engine.ctx;
  cfg : config;
  mutation : mutation option;
  graph : unit -> Causal_graph.t;
  learn : App_msg.t list -> unit;
  mutable rounds : int;
  (* Per peer: fingerprint of the last delta sent, the round from which an
     identical delta may be re-sent, and the current backoff (rounds). *)
  last_key : string array;
  ok_round : int array;
  backoff : int array;
  mutable s_digests : int;
  mutable s_deltas : int;
  mutable s_delta_msgs : int;
  mutable s_floods : int;
  mutable s_flood_msgs : int;
  mutable s_learned : int;
}

let stats t =
  { digests_sent = t.s_digests;
    deltas_sent = t.s_deltas;
    delta_msgs = t.s_delta_msgs;
    floods_sent = t.s_floods;
    flood_msgs = t.s_flood_msgs;
    learned = t.s_learned }

(* [Causal_graph.messages] returns nodes in id order, so one pass groups
   consecutive runs per origin. *)
let summarize g : summary =
  let close origin sns acc =
    let sns = List.rev sns in
    let rec split prefix = function
      | sn :: rest when sn = prefix -> split (prefix + 1) rest
      | extras -> (prefix, extras)
    in
    let prefix, extras = split 0 sns in
    (origin, prefix, extras) :: acc
  in
  let rec go acc current = function
    | [] -> (match current with None -> acc | Some (o, sns) -> close o sns acc)
    | m :: rest ->
      let o = m.App_msg.origin and sn = m.App_msg.sn in
      (match current with
       | Some (o', sns) when o' = o -> go acc (Some (o, sn :: sns)) rest
       | Some (o', sns) -> go (close o' sns acc) (Some (o, [ sn ])) rest
       | None -> go acc (Some (o, [ sn ])) rest)
  in
  List.rev (go [] None (Causal_graph.messages g))

let covers (summary : summary) m =
  let rec find = function
    | [] -> false
    | (o, prefix, extras) :: rest ->
      if o = m.App_msg.origin then
        m.App_msg.sn < prefix || List.mem m.App_msg.sn extras
      else find rest
  in
  find summary

(* The messages this process knows and the digest's sender does not. *)
let missing_for t summary =
  List.filter (fun m -> not (covers summary m))
    (Causal_graph.messages (t.graph ()))

let key_of msgs =
  Digest.string
    (String.concat ";"
       (List.map
          (fun m -> Printf.sprintf "%d.%d" m.App_msg.origin m.App_msg.sn)
          msgs))

let send_delta t dst missing =
  t.s_deltas <- t.s_deltas + 1;
  t.s_delta_msgs <- t.s_delta_msgs + List.length missing;
  t.ctx.Engine.send dst (Ae_delta missing)

let on_digest t ~src summary =
  if src <> t.ctx.Engine.self then begin
    match missing_for t summary with
    | [] ->
      (* Peer is caught up (with us): forget the backoff state. *)
      t.last_key.(src) <- "";
      t.backoff.(src) <- 1
    | missing ->
      let key = key_of missing in
      if key <> t.last_key.(src) then begin
        (* The peer's need changed (it progressed, or we learned more):
           answer immediately and restart the backoff. *)
        t.last_key.(src) <- key;
        t.backoff.(src) <- 1;
        t.ok_round.(src) <- t.rounds + 1;
        send_delta t src missing
      end
      else if t.rounds >= t.ok_round.(src) then begin
        (* Same delta again: the peer (or our delta) is partitioned away.
           Re-send with doubled, capped backoff rather than every round. *)
        t.backoff.(src) <- min (2 * t.backoff.(src)) t.cfg.max_backoff;
        t.ok_round.(src) <- t.rounds + t.backoff.(src);
        send_delta t src missing
      end
  end

let integrate t msgs =
  let g = t.graph () in
  let fresh =
    List.filter (fun m -> not (Causal_graph.mem g (App_msg.id m))) msgs
  in
  if fresh <> [] then begin
    t.s_learned <- t.s_learned + List.length fresh;
    t.learn fresh
  end

let create ?(config = default_config) ?mutation (ctx : Engine.ctx) ~graph
    ~learn =
  if config.every < 1 then invalid_arg "Anti_entropy: every must be >= 1";
  if config.max_backoff < 1 then
    invalid_arg "Anti_entropy: max_backoff must be >= 1";
  let t =
    { ctx;
      cfg = config;
      mutation;
      graph;
      learn;
      rounds = 0;
      last_key = Array.make ctx.Engine.n "";
      ok_round = Array.make ctx.Engine.n 0;
      backoff = Array.make ctx.Engine.n 1;
      s_digests = 0;
      s_deltas = 0;
      s_delta_msgs = 0;
      s_floods = 0;
      s_flood_msgs = 0;
      s_learned = 0 }
  in
  let on_timer () =
    t.rounds <- t.rounds + 1;
    let skip_digest =
      match t.mutation with Some Skip_digest -> true | None -> false
    in
    if t.rounds mod t.cfg.every = 0 && not skip_digest then
      match t.cfg.mode with
      | Digest ->
        t.s_digests <- t.s_digests + 1;
        ctx.Engine.broadcast (Ae_digest (summarize (t.graph ())))
      | Flood ->
        let msgs = Causal_graph.messages (t.graph ()) in
        if msgs <> [] then begin
          t.s_floods <- t.s_floods + 1;
          t.s_flood_msgs <- t.s_flood_msgs + (List.length msgs * ctx.Engine.n);
          ctx.Engine.broadcast (Ae_full msgs)
        end
  in
  let on_message ~src payload =
    match payload with
    | Ae_digest summary -> on_digest t ~src summary
    | Ae_delta msgs | Ae_full msgs ->
      if src <> ctx.Engine.self then integrate t msgs
    | _ -> ()
  in
  let node =
    { Engine.on_message; on_timer; on_input = (fun _ -> ()) }
  in
  (t, node)

let pp_summary ppf summary =
  Fmt.pf ppf "%a"
    (Fmt.list ~sep:Fmt.comma (fun ppf (o, p, extras) ->
         Fmt.pf ppf "%d<%d%a" o p
           (Fmt.list ~sep:Fmt.nop (fun ppf sn -> Fmt.pf ppf "+%d" sn))
           extras))
    summary

let () =
  Msg.register_payload_pp (fun ppf -> function
    | Ae_digest summary -> Fmt.pf ppf "ae-digest(%a)" pp_summary summary; true
    | Ae_delta msgs -> Fmt.pf ppf "ae-delta(%a)" App_msg.pp_seq msgs; true
    | Ae_full msgs -> Fmt.pf ppf "ae-full(%a)" App_msg.pp_seq msgs; true
    | _ -> false)
