(* Scan driver: discovers .ml files under the given roots, runs the rule
   pass, applies per-file allowlists and returns a deterministic result
   (files sorted, findings in Finding.order). *)

type result_t = {
  files : int;  (* number of .ml files scanned *)
  findings : Finding.t list;  (* violations that stand (gate-failing) *)
  allowed : (Finding.t * string) list;  (* suppressed, with justification *)
}

(* [scan roots] walks each root (file or directory).  Child directories
   named [_build], [_opam], [_artifacts], [lint_fixtures] or starting
   with a dot are skipped — a root named so explicitly is still scanned.
   [strict] is fixture mode: path-scoped rules (D4 protocol dirs, D6
   lib-only) apply to every file.  Errors (unreadable file, parse error,
   malformed detlint comment) fail the whole scan. *)
val scan : ?strict:bool -> string list -> (result_t, string) result
