(* The rule engine: a single parsetree pass (Ast_iterator) plus one
   file-level check (D6).

   Rules are syntactic by design — the pass runs on the unTYPED tree, so
   it needs no build context and lints any .ml file in isolation
   (including the self-test fixtures, which never compile).  Where a rule
   would need types to be exact (D4), it uses a documented syntactic
   over/under-approximation; deliberate exceptions go through the
   allowlist (Allow), never through weakening the rule.

   Adding a rule: extend Finding.rule, give it an id/summary there, add
   its scope predicate and its match arm below (or a file-level check in
   Driver for non-AST properties), add a fixture under
   test/lint_fixtures/ triggering exactly that rule, and regenerate the
   golden report.  DESIGN.md §12 documents the process. *)

type ctx = {
  segs : string list;  (* normalized path segments, for scope tests *)
  strict : bool;  (* fixture mode: every path-scoped rule applies *)
  defines_compare : bool;  (* file let-binds [compare] itself *)
  emit : Finding.rule -> Location.t -> string -> unit;
}

let norm_segs path =
  String.split_on_char '/' path
  |> List.concat_map (String.split_on_char '\\')
  |> List.filter (fun s -> s <> "" && s <> "." && s <> "..")

(* [seg_pair segs a b] holds when ".../a/b/..." appears in the path. *)
let rec seg_pair segs a b =
  match segs with
  | x :: (y :: _ as rest) -> (x = a && y = b) || seg_pair rest a b
  | _ -> false

(* --- rule scopes ------------------------------------------------------ *)

(* D1 exemption: the one blessed randomness module. *)
let is_rng_module ctx = seg_pair ctx.segs "simulator" "rng.ml"

(* D2 exemption: benches measure wall-clock on purpose. *)
let in_bench ctx = List.mem "bench" ctx.segs

(* D4 scope: the directories whose values cross the wire or feed traces. *)
let protocol_dirs = [ "core"; "broadcast"; "consensus"; "cht" ]

let in_protocol ctx =
  ctx.strict
  || List.exists (fun d -> seg_pair ctx.segs "lib" d) protocol_dirs

(* D5 exemption: the persistence layer owns serialization and may compare
   physical cells (e.g. to detect torn rewrites). *)
let in_persist ctx = seg_pair ctx.segs "lib" "persist"

(* D6 scope: every module under lib/ must ship a sealed interface. *)
let wants_mli ctx = ctx.strict || List.mem "lib" ctx.segs

(* --- the parsetree pass ----------------------------------------------- *)

let loc_of (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

let emit ctx rule (loc : Location.t) msg = ctx.emit rule loc msg

let dotted lid = String.concat "." (Longident.flatten lid)

(* D3: the unordered-iteration entry points.  [to_seq*] are included:
   their order is just as unspecified as [iter]'s. *)
let hashtbl_iterators = [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let check_ident ctx lid loc =
  match Longident.flatten lid with
  | "Random" :: _ when not (is_rng_module ctx) ->
    emit ctx Finding.D1 loc
      (Printf.sprintf
         "unseeded randomness: `%s` — route all randomness through \
          Simulator.Rng so runs replay from a seed"
         (dotted lid))
  | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ]
    when not (in_bench ctx) ->
    emit ctx Finding.D2 loc
      (Printf.sprintf
         "wall-clock leakage: `%s` — simulation time is Engine.now; wall \
          clocks belong in bench/ only"
         (dotted lid))
  | [ "Hashtbl"; f ] when List.mem f hashtbl_iterators ->
    emit ctx Finding.D3 loc
      (Printf.sprintf
         "unordered iteration: `Hashtbl.%s` visits bindings in hash order — \
          sort the result (and say so with a `detlint: sorted` comment) or \
          iterate over sorted keys"
         f)
  | [ "Hashtbl"; "hash" ] when in_protocol ctx ->
    emit ctx Finding.D4 loc
      "polymorphic `Hashtbl.hash` at a protocol type — derive an explicit \
       hash from the message fields"
  | [ "Stdlib"; "compare" ] | [ "Pervasives"; "compare" ] when in_protocol ctx ->
    emit ctx Finding.D4 loc
      (Printf.sprintf
         "polymorphic `%s` in a protocol module — use the per-type compare \
          (Int.compare, List.compare, Msg-specific compare)"
         (dotted lid))
  | [ "compare" ] when in_protocol ctx && not ctx.defines_compare ->
    emit ctx Finding.D4 loc
      "bare polymorphic `compare` in a protocol module — use the per-type \
       compare (Int.compare, List.compare, Msg-specific compare)"
  | [ ("==" | "!=") as op ] when not (in_persist ctx) ->
    emit ctx Finding.D5 loc
      (Printf.sprintf
         "physical equality `%s` outside lib/persist — structural state must \
          not depend on sharing"
         op)
  | "Marshal" :: _ when not (in_persist ctx) ->
    emit ctx Finding.D5 loc
      (Printf.sprintf
         "`%s` outside lib/persist — serialization goes through the \
          checksummed Store layer"
         (dotted lid))
  | _ -> ()

(* D4's equality heuristic: [=]/[<>] is flagged only when an operand is a
   *parameterized* construction — a constructor with an argument, tuple,
   record, array or polymorphic variant literal.  Those comparisons
   recurse structurally into payloads (where vector clocks, closures and
   Id_sets live); nullary shape tests (`= None`, `<> []`) cannot, and
   stay legal. *)
let structured (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_construct (_, Some _)
  | Pexp_variant (_, Some _)
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | _ -> false

let check_apply ctx (f : Parsetree.expression) args =
  match f.pexp_desc with
  | Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); loc }
    when in_protocol ctx && List.exists (fun (_, a) -> structured a) args ->
    emit ctx Finding.D4 loc
      (Printf.sprintf
         "polymorphic `%s` against a structured literal in a protocol module \
          — compare with the per-type equal instead"
         op)
  | _ -> ()

(* Pre-pass: does the file let-bind [compare] anywhere?  If so, bare
   [compare] below refers (or will after its definition) to the local
   one, and flagging every recursive use would drown the signal.  The
   residual false negative — a bare Stdlib [compare] textually *above*
   the local binding — is accepted and documented. *)
let binds_compare (str : Parsetree.structure) =
  let found = ref false in
  let pat (it : Ast_iterator.iterator) (p : Parsetree.pattern) =
    (match p.ppat_desc with
     | Ppat_var { txt = "compare"; _ } -> found := true
     | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let it = { Ast_iterator.default_iterator with pat } in
  it.structure it str;
  !found

let check_structure ctx (str : Parsetree.structure) =
  let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    (match e.pexp_desc with
     | Pexp_ident { txt; loc } -> check_ident ctx txt loc
     | Pexp_apply (f, args) -> check_apply ctx f args
     | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it str

(* --- public entry ------------------------------------------------------ *)

let run ~file ~strict ~emit (str : Parsetree.structure) =
  let ctx =
    { segs = norm_segs file;
      strict;
      defines_compare = binds_compare str;
      emit }
  in
  check_structure ctx str

let missing_mli ~file ~strict =
  let ctx =
    { segs = norm_segs file; strict; defines_compare = false;
      emit = (fun _ _ _ -> ()) }
  in
  if wants_mli ctx && Filename.check_suffix file ".ml"
     && not (Sys.file_exists (file ^ "i"))
  then
    Some
      (Finding.make ~rule:Finding.D6 ~file ~line:1 ~col:0
         "module has no .mli — every library module ships a sealed interface \
          (rule D6); add one or allowlist with a `detlint: allow D6` comment")
  else None

let location_to_finding ~file rule (loc : Location.t) msg =
  let line, col = loc_of loc in
  Finding.make ~rule ~file ~line ~col msg
