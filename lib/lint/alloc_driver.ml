(* alloclint's driver: load cmts, index top-level functions, resolve the
   hot-path roots (attribute + registry), walk the call graph from each
   root with the A-rule pass, and apply the per-file allowlists.

   The scan is interprocedural but stays inside the scanned tree: a
   call into a function whose typedtree we loaded follows the edge; a
   call that leaves the tree is resolved against Hotpath's tables (or
   reported A2).  Functions are analyzed at most once, attributed to
   the first root (in sorted order) that reaches them, so output is
   deterministic and goldenable. *)

type fn = {
  f_key : string;   (* "Simulator.Pqueue.insert" *)
  f_unit : string;  (* "Simulator.Pqueue" *)
  f_file : string;  (* build-root-relative source *)
  f_hot_attr : bool;
  f_is_fun : bool;  (* literal function: body runs per call *)
  f_expr : Typedtree.expression;
}

type result_t = {
  cmts : int;
  functions : int;
  hot_roots : string list;
  findings : Finding.t list;  (* unallowlisted, in Finding.order *)
  allowed : (Finding.t * string) list;
}

(* Top-level bindings of one unit, plus any deeper binding that carries
   [@@alloc.zero] (annotated nested functions opt in; unannotated
   nested functions are analyzed inline by the rule pass instead). *)
let index_cmt table (c : Cmt_loader.cmt) =
  let add ~replace key entry =
    if replace || not (Hashtbl.mem table key) then
      Hashtbl.replace table key entry
  in
  let add_binding ~replace (vb : Typedtree.value_binding) =
    match vb.vb_pat.pat_desc with
    | Typedtree.Tpat_var (id, _) ->
      let key = c.unit_name ^ "." ^ Ident.name id in
      add ~replace key
        { f_key = key;
          f_unit = c.unit_name;
          f_file = c.source_file;
          f_hot_attr = Alloc_rules.has_alloc_attr vb.vb_attributes;
          f_is_fun =
            (match vb.vb_expr.exp_desc with
             | Typedtree.Texp_function _ -> true
             | _ -> false);
          f_expr = vb.vb_expr }
    | _ -> ()
  in
  List.iter
    (fun (item : Typedtree.structure_item) ->
       match item.str_desc with
       | Typedtree.Tstr_value (_, vbs) ->
         List.iter (add_binding ~replace:true) vbs
       | _ -> ())
    c.structure.str_items;
  let value_binding sub vb =
    if Alloc_rules.has_alloc_attr vb.Typedtree.vb_attributes then
      add_binding ~replace:false vb;
    Tast_iterator.default_iterator.value_binding sub vb
  in
  let it = { Tast_iterator.default_iterator with value_binding } in
  it.structure it c.structure

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Allowlists are read from the sources named by the cmts, resolved
   against [source_root]; cached per file. *)
let allowlist_for cache ~source_root file =
  match Hashtbl.find_opt cache file with
  | Some r -> r
  | None ->
    let path = Filename.concat source_root file in
    let r =
      match read_file path with
      | exception Sys_error e ->
        Error (Printf.sprintf "alloclint: cannot read source %s: %s" path e)
      | source -> Allow.scan ~file source
    in
    Hashtbl.add cache file r;
    r

let scan ?(registry = Hotpath.default_registry)
    ?(build_dir = Filename.concat "_build" "default") ?(source_root = ".")
    roots =
  match Cmt_loader.load ~build_dir ~roots with
  | Error _ as e -> e
  | Ok cmts ->
    let table = Hashtbl.create 256 in
    List.iter (index_cmt table) cmts;
    let missing =
      List.filter (fun k -> not (Hashtbl.mem table k)) registry
    in
    if missing <> [] then
      Error
        (Printf.sprintf
           "alloclint: hot-path registry names %s but no such function was \
            found in the scanned cmts — stale registry or missing build?"
           (String.concat ", " missing))
    else begin
      let attr_roots =
        (* detlint: sorted the fold feeds sort_uniq below, so hash order never escapes *)
        Hashtbl.fold (fun k f acc -> if f.f_hot_attr then k :: acc else acc)
          table []
      in
      let hot_roots =
        List.sort_uniq String.compare (registry @ attr_roots)
      in
      let allow_cache = Hashtbl.create 16 in
      let visited = Hashtbl.create 64 in
      let err = ref None in
      let findings = ref [] in
      let allowed = ref [] in
      let record root (fn : fn) =
        let raw, edges =
          Alloc_rules.analyze ~unit_name:fn.f_unit ~file:fn.f_file
            ~in_table:(Hashtbl.mem table) fn.f_expr
        in
        let raw =
          if fn.f_key = root then raw
          else
            List.map
              (fun (f : Finding.t) ->
                 { f with
                   Finding.message =
                     f.Finding.message
                     ^ Printf.sprintf " — on the hot path of `%s`" root })
              raw
        in
        (match allowlist_for allow_cache ~source_root fn.f_file with
         | Error e -> if !err = None then err := Some e
         | Ok allows ->
           List.iter
             (fun (f : Finding.t) ->
                match Allow.permits allows f.Finding.rule ~line:f.Finding.line with
                | Some reason -> allowed := (f, reason) :: !allowed
                | None -> findings := f :: !findings)
             raw);
        edges
      in
      let rec follow root key =
        if not (Hashtbl.mem visited key) then begin
          Hashtbl.add visited key ();
          match Hashtbl.find_opt table key with
          | None -> ()
          | Some fn when not fn.f_is_fun ->
            (* A top-level value (closure record, Int64 constant): its
               defining expression ran once at module init, so reading
               it from hot code is a pointer load, not a call. *)
            ()
          | Some fn ->
            let edges = record root fn in
            List.iter (follow root) edges
        end
      in
      List.iter (fun r -> follow r r) hot_roots;
      match !err with
      | Some e -> Error e
      | None ->
        Ok
          { cmts = List.length cmts;
            functions = Hashtbl.length table;
            hot_roots;
            findings = List.sort Finding.order !findings;
            allowed =
              List.sort (fun (a, _) (b, _) -> Finding.order a b) !allowed }
    end
