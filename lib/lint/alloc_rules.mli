(* The A-rule pass over one function body (see the .ml for the
   rule-by-rule definition of A1–A5). *)

(* Does an attribute list carry [@@alloc.zero]? *)
val has_alloc_attr : Parsetree.attributes -> bool

(* [analyze ~unit_name ~file ~in_table expr] scans one top-level
   binding's expression.  [unit_name] qualifies bare same-unit
   references ("Simulator.Pqueue"), [file] stamps findings, [in_table]
   answers whether a dotted key names a function in the current scan
   (those become call-graph edges instead of findings).  Returns the
   findings in source order and the sorted, deduplicated callee keys. *)
val analyze :
  unit_name:string ->
  file:string ->
  in_table:(string -> bool) ->
  Typedtree.expression ->
  Finding.t list * string list
