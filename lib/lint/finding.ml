(* Findings: one rule violation at one source location.

   The rule set is the repo's determinism contract (DESIGN.md §12): every
   guarantee downstream — golden byte-identical traces, digest-checked
   replays, WAL replay, AE heal proofs — assumes the simulator is
   deterministic by construction, and each rule bans one way of breaking
   that property silently. *)

type rule =
  | D1 | D2 | D3 | D4 | D5 | D6
  (* The A family is alloclint's (DESIGN.md §17): typedtree-level
     allocation and effect analysis of the hot-path registry, scanned
     from cmt files rather than from the parsetree. *)
  | A1 | A2 | A3 | A4 | A5

let all_rules = [ D1; D2; D3; D4; D5; D6; A1; A2; A3; A4; A5 ]

let rule_id = function
  | D1 -> "D1"
  | D2 -> "D2"
  | D3 -> "D3"
  | D4 -> "D4"
  | D5 -> "D5"
  | D6 -> "D6"
  | A1 -> "A1"
  | A2 -> "A2"
  | A3 -> "A3"
  | A4 -> "A4"
  | A5 -> "A5"

let rule_of_id = function
  | "D1" -> Some D1
  | "D2" -> Some D2
  | "D3" -> Some D3
  | "D4" -> Some D4
  | "D5" -> Some D5
  | "D6" -> Some D6
  | "A1" -> Some A1
  | "A2" -> Some A2
  | "A3" -> Some A3
  | "A4" -> Some A4
  | "A5" -> Some A5
  | _ -> None

let rule_summary = function
  | D1 -> "unseeded randomness: Random.* outside lib/simulator/rng.ml"
  | D2 -> "wall-clock leakage: Sys.time / Unix.gettimeofday / Unix.time outside bench/"
  | D3 -> "unordered Hashtbl iteration without a sortedness justification"
  | D4 -> "polymorphic compare/equality/hash at protocol types"
  | D5 -> "Marshal or physical equality (== / !=) outside lib/persist"
  | D6 -> "library module without a sealed .mli interface"
  | A1 -> "heap allocation reachable from a hot-path function"
  | A2 -> "call from hot code into a function of unknown allocation behavior"
  | A3 -> "polymorphic comparison/hash call that forces boxing in hot code"
  | A4 -> "Obj.* unsafe escape that blinds the allocation analysis"
  | A5 -> "growable structure (Buffer/Hashtbl/Queue/Stack) mutated in hot code"

type t = { rule : rule; file : string; line : int; col : int; message : string }

let make ~rule ~file ~line ~col message = { rule; file; line; col; message }

(* Total order used everywhere a report is emitted, so output is
   deterministic regardless of scan order. *)
let order a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare (rule_id a.rule) (rule_id b.rule)

let pp_human ppf t =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" t.file t.line t.col (rule_id t.rule)
    t.message
