(* Report rendering: machine-readable JSON (stable field order, sorted
   findings — byte-identical across runs, so it can be goldened like any
   other artifact) and human file:line:col diagnostics. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | '\r' -> Buffer.add_string b "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let finding_json ~extra (f : Finding.t) =
  Printf.sprintf
    "    { \"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \"col\": %d, \
     \"message\": \"%s\"%s }"
    (Finding.rule_id f.rule) (json_escape f.file) f.line f.col
    (json_escape f.message) extra

let block name items =
  if items = [] then Printf.sprintf "  \"%s\": []" name
  else
    Printf.sprintf "  \"%s\": [\n%s\n  ]" name (String.concat ",\n" items)

let to_json (r : Driver.result_t) =
  let findings = List.map (finding_json ~extra:"") r.findings in
  let allowed =
    List.map
      (fun (f, reason) ->
         finding_json
           ~extra:(Printf.sprintf ", \"allowed\": \"%s\"" (json_escape reason))
           f)
      r.allowed
  in
  String.concat "\n"
    [ "{";
      "  \"detlint\": 1,";
      Printf.sprintf "  \"files_scanned\": %d," r.files;
      block "findings" findings ^ ",";
      block "allowed" allowed;
      "}"; "" ]

let pp_human ppf (r : Driver.result_t) =
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp_human f) r.findings;
  Format.fprintf ppf "detlint: %d finding%s, %d allowlisted, %d files scanned@."
    (List.length r.findings)
    (if List.length r.findings = 1 then "" else "s")
    (List.length r.allowed) r.files
