(* Rendering of an alloclint scan result. *)

(* Stable, sorted, trailing-newline JSON — safe to golden. *)
val to_json : Alloc_driver.result_t -> string

(* file:line:col diagnostics plus a one-line summary. *)
val pp_human : Format.formatter -> Alloc_driver.result_t -> unit
