(* Loading typedtree implementations from a dune build tree's .cmt
   files (see the .ml for the dune layout facts this relies on). *)

(* "Simulator__Pqueue" -> "Simulator.Pqueue": dune's wrapped-module
   separator rewritten so unit names read as OCaml paths. *)
val normalize_unit : string -> string

type cmt = {
  unit_name : string;     (* wrapped unit, normalized: "Simulator.Pqueue" *)
  source_file : string;   (* build-root-relative, e.g. "lib/simulator/pqueue.ml" *)
  structure : Typedtree.structure;
}

(* Walk [build_dir] for .cmt files whose source lives under one of
   [roots] (build-root-relative directories).  Deduplicates by source
   file, sorts by source file, skips unreadable cmts.  Errors only if
   the build directory itself is missing. *)
val load : build_dir:string -> roots:string list -> (cmt list, string) result
