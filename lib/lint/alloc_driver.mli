(* alloclint's driver: cmt loading, function indexing, hot-root
   resolution, call-graph walk, allowlist application. *)

type result_t = {
  cmts : int;                 (* typedtrees loaded *)
  functions : int;            (* top-level functions indexed *)
  hot_roots : string list;    (* sorted: registry + [@@alloc.zero] *)
  findings : Finding.t list;  (* unallowlisted, in Finding.order *)
  allowed : (Finding.t * string) list;  (* suppressed + justification *)
}

(* [scan roots] analyzes every cmt under [build_dir] whose source lives
   under one of [roots] (build-root-relative source directories).
   [registry] defaults to {!Hotpath.default_registry}; a registry entry
   with no matching function is a hard error.  [source_root] locates
   the sources named by the cmts so allow directives can be read.
   Errors on missing build dir, unreadable sources, malformed allow
   directives, or a stale registry. *)
val scan :
  ?registry:string list ->
  ?build_dir:string ->
  ?source_root:string ->
  string list ->
  (result_t, string) result
