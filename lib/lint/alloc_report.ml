(* alloclint report rendering, in detlint's format: stable field order,
   sorted findings, byte-identical across runs — goldenable. *)

let to_json (r : Alloc_driver.result_t) =
  let findings = List.map (Report.finding_json ~extra:"") r.findings in
  let allowed =
    List.map
      (fun (f, reason) ->
         Report.finding_json
           ~extra:
             (Printf.sprintf ", \"allowed\": \"%s\""
                (Report.json_escape reason))
           f)
      r.allowed
  in
  let roots =
    List.map
      (fun k -> Printf.sprintf "    \"%s\"" (Report.json_escape k))
      r.hot_roots
  in
  String.concat "\n"
    [ "{";
      "  \"alloclint\": 1,";
      Printf.sprintf "  \"cmts_scanned\": %d," r.cmts;
      Printf.sprintf "  \"functions_indexed\": %d," r.functions;
      Report.block "hot_roots" roots ^ ",";
      Report.block "findings" findings ^ ",";
      Report.block "allowed" allowed;
      "}"; "" ]

let pp_human ppf (r : Alloc_driver.result_t) =
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp_human f) r.findings;
  Format.fprintf ppf
    "alloclint: %d finding%s, %d allowlisted, %d hot roots, %d functions \
     over %d cmts@."
    (List.length r.findings)
    (if List.length r.findings = 1 then "" else "s")
    (List.length r.allowed)
    (List.length r.hot_roots)
    r.functions r.cmts
