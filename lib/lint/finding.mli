(* A detlint finding: one rule violated at one source location. *)

type rule =
  | D1  (* unseeded randomness outside the simulator RNG *)
  | D2  (* wall-clock leakage outside bench/ *)
  | D3  (* unordered Hashtbl iteration without justification *)
  | D4  (* polymorphic compare/equality/hash at protocol types *)
  | D5  (* Marshal / physical equality outside lib/persist *)
  | D6  (* library module without a sealed .mli *)
  (* alloclint's typedtree rule family (DESIGN.md §17): *)
  | A1  (* heap allocation reachable from a hot-path function *)
  | A2  (* hot call into a function of unknown allocation behavior *)
  | A3  (* polymorphic compare/hash forcing boxing in hot code *)
  | A4  (* Obj.* unsafe escape blinding the analysis *)
  | A5  (* growable structure mutated in hot code *)

val all_rules : rule list
val rule_id : rule -> string
val rule_of_id : string -> rule option
val rule_summary : rule -> string

type t = {
  rule : rule;
  file : string;
  line : int;  (* 1-based *)
  col : int;   (* 0-based, compiler convention *)
  message : string;
}

val make : rule:rule -> file:string -> line:int -> col:int -> string -> t

(* Deterministic report order: file, then line, col, rule. *)
val order : t -> t -> int

val pp_human : Format.formatter -> t -> unit
