(* The detlint rule engine: one parsetree pass over an .ml file plus the
   file-level sealed-interface check.  Rules and scopes are documented in
   DESIGN.md §12; rules.ml explains how to add one. *)

(* Run the AST rules (D1-D5) over one parsed implementation.  [file] is
   the path reported in findings (its segments drive rule scopes);
   [strict] puts every path-scoped rule in force regardless of location
   (used by the fixture self-test).  [emit] receives raw findings before
   allowlisting. *)
val run :
  file:string ->
  strict:bool ->
  emit:(Finding.rule -> Location.t -> string -> unit) ->
  Parsetree.structure ->
  unit

(* D6: [Some finding] when [file] is in scope (under lib/, or always
   under [strict]) and has no sibling .mli. *)
val missing_mli : file:string -> strict:bool -> Finding.t option

(* Attach a location to a raw emission. *)
val location_to_finding :
  file:string -> Finding.rule -> Location.t -> string -> Finding.t
