(* detlint's driver: file discovery, parsing, allowlist application, and
   the aggregate result consumed by bin/detlint, the test suite and
   bench E19. *)

type result_t = {
  files : int;
  findings : Finding.t list;  (* unallowlisted, in Finding.order *)
  allowed : (Finding.t * string) list;  (* suppressed + justification *)
}

(* Subdirectories never descended into.  [lint_fixtures] is deliberately
   broken (the self-test corpus) and only scanned when named as a root
   explicitly; skips apply to children, not to roots. *)
let skipped_dirs =
  [ "_build"; "_opam"; "_artifacts"; "lint_fixtures"; "alloc_fixtures";
    "node_modules" ]

let skip_entry name =
  (String.length name > 0 && name.[0] = '.') || List.mem name skipped_dirs

let rec walk acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
            if skip_entry name then acc else walk acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

let parse_implementation ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception exn ->
    let detail =
      match Location.error_of_exn exn with
      | Some (`Ok report) ->
        Format.asprintf "%a" Location.print_report report
      | Some `Already_displayed | None -> Printexc.to_string exn
    in
    Error (Printf.sprintf "%s: parse error: %s" file (String.trim detail))

let lint_file ~strict file =
  match read_file file with
  | exception Sys_error e -> Error e
  | source ->
    (match Allow.scan ~file source with
     | Error _ as e -> e
     | Ok allowlist ->
       (match parse_implementation ~file source with
        | Error _ as e -> e
        | Ok ast ->
          let raw = ref [] in
          let emit rule loc msg =
            raw := Rules.location_to_finding ~file rule loc msg :: !raw
          in
          Rules.run ~file ~strict ~emit ast;
          let raw =
            match Rules.missing_mli ~file ~strict with
            | None -> !raw
            | Some f -> f :: !raw
          in
          let findings, allowed =
            List.fold_left
              (fun (fs, al) (f : Finding.t) ->
                 match Allow.permits allowlist f.rule ~line:f.line with
                 | Some reason -> (fs, (f, reason) :: al)
                 | None -> (f :: fs, al))
              ([], []) raw
          in
          Ok (findings, allowed)))

let scan ?(strict = false) roots =
  let files =
    try Ok (List.fold_left walk [] roots |> List.sort String.compare)
    with Sys_error e -> Error e
  in
  match files with
  | Error _ as e -> e
  | Ok files ->
    let rec go findings allowed = function
      | [] ->
        Ok
          { files = List.length files;
            findings = List.sort Finding.order findings;
            allowed =
              List.sort (fun (a, _) (b, _) -> Finding.order a b) allowed }
      | f :: rest ->
        (match lint_file ~strict f with
         | Error _ as e -> e
         | Ok (fs, al) -> go (fs @ findings) (al @ allowed) rest)
    in
    go [] [] files
