(* Per-file allowlists, read from special comments in the source text.

   Two forms are recognised (one comment per line, scanned textually —
   comments are invisible to the parsetree).  Both are ordinary comments
   whose text begins with "detlint:" right after the opener — the exact
   marker is in [marker] below — and both close on the same line:

     "detlint: sorted <optional detail>"
       shorthand for allowing D3 on this line or the next: the iteration
       result is order-insensitive (commutative accumulation) or sorted
       before anything trace-visible consumes it.

     "detlint: allow <RULE> <justification>"
       allows <RULE> (e.g. D5) on this line or the next.  The
       justification is mandatory: an allowlist entry with no reason is a
       scan error, so every deliberate exception is documented in place.

   A finding at line L is suppressed by an entry at line L (trailing
   comment) or line L-1 (comment above the statement).  Suppressed
   findings are not dropped silently: they are reported in the "allowed"
   section of the JSON report with their justification. *)

type entry = { a_line : int; a_rule : Finding.rule; a_reason : string }
type t = entry list

(* The canonical opener — comment-open, space, "detlint:" — so prose or
   strings that merely mention "detlint:" do not form a directive.
   Assembled from pieces to keep this very file directive-free. *)
let marker = "(" ^ "* detlint:"

(* Index of [sub] in [s] at or after [from], if any.  Naive scan: lines
   are short and the marker is rare. *)
let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  if m = 0 then None else go (max 0 from)

let trim = String.trim

(* Split off the first whitespace-delimited word. *)
let first_word s =
  let s = trim s in
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, trim (String.sub s i (String.length s - i)))

let parse_body ~file ~line body =
  let word, rest = first_word body in
  match word with
  | "sorted" ->
    let reason =
      if rest = "" then "iteration is order-insensitive or sorted before use"
      else rest
    in
    Ok (Some { a_line = line; a_rule = Finding.D3; a_reason = reason })
  | "allow" ->
    let rule_word, reason = first_word rest in
    (match Finding.rule_of_id rule_word with
     | None ->
       Error
         (Printf.sprintf "%s:%d: detlint comment names unknown rule %S" file
            line rule_word)
     | Some rule ->
       if reason = "" then
         Error
           (Printf.sprintf
              "%s:%d: detlint allow %s needs a justification (detlint: allow \
               %s <why>)"
              file line rule_word rule_word)
       else Ok (Some { a_line = line; a_rule = rule; a_reason = reason }))
  | _ ->
    Error
      (Printf.sprintf
         "%s:%d: unrecognised detlint comment %S (expected \"sorted ...\" or \
          \"allow <RULE> <why>\")"
         file line word)

(* Extract the detlint directive from one line, if present.  The comment
   must open and close on the same line; that keeps the scanner trivial
   and the directives greppable. *)
let scan_line ~file ~line s =
  match find_sub s marker 0 with
  | None -> Ok None
  | Some i ->
    let after = i + String.length marker in
    (match find_sub s "*)" after with
     | None ->
       Error
         (Printf.sprintf "%s:%d: detlint comment must close on the same line"
            file line)
     | Some j -> parse_body ~file ~line (String.sub s after (j - after)))

let split_lines s =
  (* String.split_on_char keeps a trailing empty chunk; harmless here. *)
  String.split_on_char '\n' s

let scan ~file source =
  let rec go line acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest ->
      (match scan_line ~file ~line l with
       | Error _ as e -> e
       | Ok None -> go (line + 1) acc rest
       | Ok (Some e) -> go (line + 1) (e :: acc) rest)
  in
  go 1 [] (split_lines source)

let permits t rule ~line =
  let matches e =
    e.a_rule = rule && (e.a_line = line || e.a_line = line - 1)
  in
  match List.find_opt matches t with
  | None -> None
  | Some e -> Some e.a_reason

let entries t = List.map (fun e -> (e.a_line, e.a_rule, e.a_reason)) t
