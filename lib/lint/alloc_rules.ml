(* The A-rule pass: analyze one function body from the typedtree and
   report every construct that can heap-allocate (or hide allocation)
   at dispatch time, plus the set of same-scan functions it calls so
   the driver can walk the call graph.

   What counts as what (DESIGN.md §17):

   A1 — direct allocation: closures (including `let f x = ...` inside a
        hot body: each execution of the [let] builds a closure block),
        tuples, records, non-constant constructors, polymorphic
        variants with payload, array literals, lazy thunks, partial
        application (the applied-prefix closure), and calls to builtins
        the tables name as allocating (string building, Printf, boxed
        int64/float arithmetic, raise-for-control-flow).
   A2 — allocation unknown: calls into externals absent from the
        tables, calls through function parameters or other local
        function values, and calls through computed function values
        (record fields, array slots).  Local [let]-bound function
        literals are NOT A2: their bodies sit in this same expression
        tree and are analyzed inline.
   A3 — polymorphic compare/hash: builtins from the Poly table, plus
        the comparison operators when any operand is not an immediate
        base type (int/bool/char/unit) — those compile to a
        polymorphic-compare call that walks and may box.
   A4 — Obj.* escapes: the analysis is blind past them.
   A5 — growable structures: Buffer/Hashtbl/Queue/Stack mutation whose
        amortized resizing allocates unpredictably mid-run.

   The pass is deliberately per-mention conservative: a bare reference
   to an allocating builtin (passed higher-order) is flagged like a
   call, and a mention of a same-scan function creates a call edge
   whether or not it is syntactically applied. *)

open Typedtree

type out = {
  mutable findings : Finding.t list;
  mutable edges : string list;  (* same-scan callee keys *)
}

let finding out rule (loc : Location.t) ~file msg =
  let p = loc.loc_start in
  out.findings <-
    Finding.make ~rule ~file ~line:p.pos_lnum ~col:(p.pos_cnum - p.pos_bol) msg
    :: out.findings

let edge out key =
  if not (List.mem key out.edges) then out.edges <- key :: out.edges

(* --- small type helpers ---------------------------------------------- *)

let rec type_repr ty =
  match Types.get_desc ty with
  | Types.Tpoly (t, _) -> type_repr t
  | d -> d

let is_arrow ty = match type_repr ty with Types.Tarrow _ -> true | _ -> false

(* Immediate base types compile comparison operators to direct machine
   comparisons; everything else goes through polymorphic compare.  The
   cmt typedtree keeps abbreviations unexpanded, so known int aliases
   (Types.time, Types.proc_id) are accepted by name. *)
let is_immediate_base ty =
  match type_repr ty with
  | Types.Tconstr (p, _, _) ->
    Path.same p Predef.path_int || Path.same p Predef.path_bool
    || Path.same p Predef.path_char
    || Path.same p Predef.path_unit
    || Hotpath.is_immediate_alias (Cmt_loader.normalize_unit (Path.name p))
  | _ -> false

let normalize_name p = Cmt_loader.normalize_unit (Path.name p)

(* --- the pass -------------------------------------------------------- *)

let has_alloc_attr attrs =
  List.exists
    (fun (a : Parsetree.attribute) -> a.attr_name.txt = Hotpath.attribute_name)
    attrs

(* Idents [let]-bound to function literals anywhere under [e]: calls
   through them are analyzed inline, not A2. *)
let collect_local_fns e =
  let acc = ref [] in
  let value_binding sub vb =
    (match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
     | (Tpat_var (id, _), Texp_function _) -> acc := id :: !acc
     | _ -> ());
    Tast_iterator.default_iterator.value_binding sub vb
  in
  let it = { Tast_iterator.default_iterator with value_binding } in
  it.expr it e;
  !acc

let analyze ~unit_name ~file ~in_table root_expr =
  let out = { findings = []; edges = [] } in
  let local_fns = collect_local_fns root_expr in
  let is_local_fn id = List.exists (Ident.same id) local_fns in
  (* A qualified (or table-resolved) mention, head position or not. *)
  let handle_mention loc path =
    let name = normalize_name path in
    match path with
    | Path.Pident _ ->
      (* Bare idents are local values or same-unit top-level functions;
         only the latter matter here.  Calls through local values are
         handled at the application site. *)
      if in_table (unit_name ^ "." ^ name) then
        edge out (unit_name ^ "." ^ name)
    | _ ->
      if in_table name then edge out name
      else if Hotpath.is_comparison_op name then
        (* Only classifiable with operands; handled at apply sites.  A
           bare higher-order mention is covered by the partial-
           application rule when it matters. *)
        ()
      else (
        match Hotpath.classify name with
        | Some Hotpath.Safe -> ()
        | Some (Hotpath.Allocates why) ->
          finding out Finding.A1 loc ~file (Printf.sprintf "`%s`: %s" name why)
        | Some (Hotpath.Poly why) ->
          finding out Finding.A3 loc ~file (Printf.sprintf "`%s`: %s" name why)
        | Some (Hotpath.Unsafe why) -> finding out Finding.A4 loc ~file why
        | Some (Hotpath.Growable why) ->
          finding out Finding.A5 loc ~file (Printf.sprintf "`%s`: %s" name why)
        | None ->
          finding out Finding.A2 loc ~file
            (Printf.sprintf
               "call into `%s` of unknown allocation behavior (not in the \
                scanned tree, not in the builtin tables)"
               name))
  in
  (* A call whose head is an identifier. *)
  let handle_call loc path (args : (_ * expression option) list) =
    let name = normalize_name path in
    if Hotpath.is_comparison_op name then (
      let operand =
        List.find_map (fun (_, a) -> a) args
      in
      match operand with
      | Some a when is_immediate_base a.exp_type -> ()
      | _ ->
        finding out Finding.A3 loc ~file
          (Printf.sprintf
             "`%s` at a non-immediate type compiles to a polymorphic-compare \
              call"
             name))
    else
      match path with
      | Path.Pident id ->
        if is_local_fn id then ()  (* body analyzed inline below *)
        else if in_table (unit_name ^ "." ^ name) then
          edge out (unit_name ^ "." ^ name)
        else
          finding out Finding.A2 loc ~file
            (Printf.sprintf
               "call through local function value `%s` of unknown allocation \
                behavior"
               (Ident.name id))
      | _ -> handle_mention loc path
  in
  (* [check_partial] is off when this apply's arrow-typed result is the
     head of an enclosing apply: reading a closure out of a structure
     and calling it at once (t.snapshot.(i) x) builds nothing — the A2
     computed-call finding already covers that pattern. *)
  let rec handle_apply sub ~check_partial e fn args =
    if check_partial && is_arrow e.exp_type then
      finding out Finding.A1 e.exp_loc ~file
        "partial application allocates a closure for the applied prefix";
    (match fn.exp_desc with
     | Texp_ident (path, _, _) -> handle_call fn.exp_loc path args
     | Texp_function _ ->
       (* Immediately-applied literal: the closure finding of the
          generic walk already covers the allocation. *)
       sub.Tast_iterator.expr sub fn
     | Texp_apply (fn', args') ->
       finding out Finding.A2 fn.exp_loc ~file
         "call through a computed function value of unknown allocation \
          behavior";
       handle_apply sub ~check_partial:false fn fn' args'
     | _ ->
       finding out Finding.A2 fn.exp_loc ~file
         "call through a computed function value of unknown allocation \
          behavior";
       sub.Tast_iterator.expr sub fn);
    List.iter (fun (_, a) -> Option.iter (sub.Tast_iterator.expr sub) a) args
  in
  let expr sub e =
    match e.exp_desc with
    | Texp_ident (path, _, _) -> handle_mention e.exp_loc path
    | Texp_apply (fn, args) -> handle_apply sub ~check_partial:true e fn args
    | Texp_function _ ->
      finding out Finding.A1 e.exp_loc ~file
        "closure allocation (building this function value heap-allocates)";
      Tast_iterator.default_iterator.expr sub e
    | Texp_tuple _ ->
      finding out Finding.A1 e.exp_loc ~file "tuple allocation";
      Tast_iterator.default_iterator.expr sub e
    | Texp_construct (_, cd, args) ->
      if args <> [] then
        finding out Finding.A1 e.exp_loc ~file
          (Printf.sprintf "constructor `%s` allocates its payload block"
             cd.Types.cstr_name);
      Tast_iterator.default_iterator.expr sub e
    | Texp_variant (_, Some _) ->
      finding out Finding.A1 e.exp_loc ~file
        "polymorphic-variant allocation";
      Tast_iterator.default_iterator.expr sub e
    | Texp_record _ ->
      finding out Finding.A1 e.exp_loc ~file "record allocation";
      Tast_iterator.default_iterator.expr sub e
    | Texp_array [] -> ()
    | Texp_array _ ->
      finding out Finding.A1 e.exp_loc ~file "array-literal allocation";
      Tast_iterator.default_iterator.expr sub e
    | Texp_lazy _ ->
      finding out Finding.A1 e.exp_loc ~file "lazy-thunk allocation";
      Tast_iterator.default_iterator.expr sub e
    | Texp_new _ ->
      finding out Finding.A1 e.exp_loc ~file "object allocation"
    | Texp_object _ ->
      finding out Finding.A1 e.exp_loc ~file "object allocation"
    | Texp_pack _ ->
      finding out Finding.A1 e.exp_loc ~file "first-class-module allocation";
      Tast_iterator.default_iterator.expr sub e
    | Texp_send _ ->
      finding out Finding.A2 e.exp_loc ~file
        "method dispatch of unknown allocation behavior";
      Tast_iterator.default_iterator.expr sub e
    | _ -> Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  (* The root's own parameter chain is the function under analysis, not
     a closure it allocates: unwrap it and analyze the bodies. *)
  let rec bodies e =
    match e.exp_desc with
    | Texp_function { cases = [ { c_guard = None; c_rhs; _ } ]; _ } ->
      bodies c_rhs
    | Texp_function { cases; _ } ->
      List.concat_map
        (fun c ->
           (match c.c_guard with Some g -> [ g ] | None -> []) @ [ c.c_rhs ])
        cases
    | _ -> [ e ]
  in
  List.iter (fun b -> it.expr it b) (bodies root_expr);
  (List.rev out.findings, List.sort String.compare out.edges)
