(* Rendering of a scan result. *)

(* Stable, sorted, trailing-newline JSON — safe to golden. *)
val to_json : Driver.result_t -> string

(* file:line:col diagnostics plus a one-line summary. *)
val pp_human : Format.formatter -> Driver.result_t -> unit
