(* Rendering of a scan result. *)

(* Stable, sorted, trailing-newline JSON — safe to golden. *)
val to_json : Driver.result_t -> string

(* Building blocks shared with alloclint's report: one finding as a
   JSON object line ([extra] is appended inside the braces), and a
   named JSON array block at report indent. *)
val json_escape : string -> string
val finding_json : extra:string -> Finding.t -> string
val block : string -> string list -> string

(* file:line:col diagnostics plus a one-line summary. *)
val pp_human : Format.formatter -> Driver.result_t -> unit
