(* The hot-path contract: which functions must be allocation-free, and
   what the analyzer assumes about the stdlib.

   Two sources declare a function hot:

   - the [@@alloc.zero] attribute on its binding (any nesting depth) —
     the in-source form, kept next to the code it constrains;
   - the registry below — the closed list of engine-critical entry
     points (DESIGN.md §17), so the gate cannot be silently weakened by
     deleting an attribute.

   Everything a hot function calls is analyzed transitively when its
   typedtree is available; calls that leave the analyzed universe are
   resolved against the classification tables below, and anything not
   listed is rule A2 (unknown allocation behavior).  The tables are
   deliberately small: they cover what hot code legitimately touches,
   not the whole stdlib — growing them requires arguing the entry here. *)

let attribute_name = "alloc.zero"

(* Function keys are dotted paths as recorded in cmt files with the
   dune wrapping separator normalized: unit "Simulator__Pqueue" binding
   "insert" is "Simulator.Pqueue.insert". *)
let default_registry =
  [ (* event-queue operations: one insert + one pop per simulated event *)
    "Simulator.Pqueue.insert";
    "Simulator.Pqueue.pop";
    (* the engine's per-event dispatch step *)
    "Simulator.Engine.dispatch";
    (* observer fan-out: fired on every protocol-visible event *)
    "Simulator.Listeners.fire";
    (* link delay/fault sampling: once per send *)
    "Simulator.Net.delay_of";
    "Simulator.Net.fault_of";
    (* aggregate-only observability: the long-sweep sink *)
    "Simulator.Sink.samples_push";
    (* deterministic randomness: drawn on every delay sample *)
    "Simulator.Rng.next_int64";
    "Simulator.Rng.next_nonneg";
    "Simulator.Rng.int";
    "Simulator.Rng.in_range";
    (* liveness test: consulted on every delivery and timer *)
    "Simulator.Failures.is_alive" ]

(* --- stdlib classification ------------------------------------------- *)

type builtin_class =
  | Safe  (* known not to allocate *)
  | Allocates of string  (* A1: allocates, with the reason *)
  | Poly of string  (* A3: polymorphic compare/hash, boxes or walks *)
  | Unsafe of string  (* A4: escapes the type system, blinds the pass *)
  | Growable of string  (* A5: growable-structure mutation, may resize *)

(* Non-allocating arithmetic, logic and access primitives.  Comparison
   operators are NOT here: they are classified per call site by operand
   type (immediate types compile to direct comparisons; anything else is
   a polymorphic-compare call, rule A3). *)
let safe_names =
  [ "+"; "-"; "*"; "/"; "mod"; "abs"; "succ"; "pred";
    "land"; "lor"; "lxor"; "lnot"; "lsl"; "lsr"; "asr";
    "not"; "&&"; "||"; "~-"; "~+";
    "ignore"; "fst"; "snd"; "incr"; "decr"; ":="; "!";
    "@@"; "|>";
    "min_int"; "max_int";
    "Array.get"; "Array.set"; "Array.length"; "Array.unsafe_get";
    "Array.unsafe_set"; "Array.blit"; "Array.fill"; "Array.iter";
    "Array.iteri"; "Array.fold_left"; "Array.exists";
    "String.length"; "String.get"; "String.unsafe_get"; "String.iter";
    "String.equal"; "String.compare";
    "Bytes.length"; "Bytes.get"; "Bytes.set"; "Bytes.unsafe_get";
    "Bytes.unsafe_set"; "Bytes.blit"; "Bytes.fill";
    "Char.code"; "Char.equal"; "Char.compare";
    "Int.compare"; "Int.equal"; "Int.max"; "Int.min"; "Int.abs";
    "Bool.not"; "Bool.equal";
    "Int64.to_int"; "Int64.equal"; "Int64.compare";
    "Int32.to_int"; "Int32.equal"; "Int32.compare";
    "Float.to_int"; "Float.equal"; "Float.compare";
    "List.length"; "List.iter"; "List.iteri"; "List.fold_left";
    "List.exists"; "List.for_all"; "List.nth"; "List.memq"; "List.hd";
    "Hashtbl.find"; "Hashtbl.mem"; "Hashtbl.length";
    "Option.is_some"; "Option.is_none"; "Option.get";
    "Sys.opaque_identity"; "Fun.id" ]

(* Known allocators, named precisely so a finding reads as a diagnosis. *)
let allocating_names =
  [ ("ref", "heap-allocates a mutable cell");
    ("raise", "exception raised for control flow on the hot path");
    ("raise_notrace", "exception raised for control flow on the hot path");
    ("failwith", "allocates and raises Failure for control flow");
    ("invalid_arg", "allocates and raises Invalid_argument for control flow");
    ("^", "string concatenation allocates the result");
    ("@", "list append allocates the result spine");
    ("string_of_int", "allocates the rendered string");
    ("float_of_int", "boxes the float result");
    ("Array.make", "allocates a fresh array");
    ("Array.init", "allocates a fresh array");
    ("Array.copy", "allocates a fresh array");
    ("Array.append", "allocates a fresh array");
    ("Array.sub", "allocates a fresh array");
    ("Array.of_list", "allocates a fresh array");
    ("Array.to_list", "allocates the result list");
    ("Array.concat", "allocates a fresh array");
    ("List.map", "allocates the result list");
    ("List.mapi", "allocates the result list");
    ("List.rev", "allocates the reversed list");
    ("List.append", "allocates the result spine");
    ("List.filter", "allocates the result list");
    ("List.init", "allocates the result list");
    ("List.concat", "allocates the result list");
    ("List.sort", "allocates intermediate lists");
    ("List.tl", "keeps the spine live and may allocate via Failure");
    ("String.sub", "allocates the substring");
    ("String.make", "allocates the string");
    ("String.init", "allocates the string");
    ("String.concat", "allocates the result string");
    ("Bytes.create", "allocates the buffer");
    ("Bytes.make", "allocates the buffer");
    ("Bytes.sub", "allocates the copy");
    ("Bytes.to_string", "allocates the string");
    ("Bytes.of_string", "allocates the buffer");
    ("Char.chr", "raises Invalid_argument on out-of-range input");
    ("Option.map", "allocates the Some cell");
    ("Option.some", "allocates the Some cell");
    ("Hashtbl.find_opt", "allocates the option result");
    ("Printf.printf", "format interpretation allocates");
    ("Printf.sprintf", "format interpretation allocates");
    ("Printf.eprintf", "format interpretation allocates");
    ("Printf.ksprintf", "format interpretation allocates");
    ("Format.printf", "format interpretation allocates");
    ("Format.sprintf", "format interpretation allocates");
    ("Format.asprintf", "format interpretation allocates");
    ("Format.fprintf", "format interpretation allocates");
    (* Boxed-number arithmetic: every result is a fresh box. *)
    ("+.", "boxes the float result");
    ("-.", "boxes the float result");
    ("*.", "boxes the float result");
    ("/.", "boxes the float result");
    ("Int64.add", "boxes the int64 result");
    ("Int64.sub", "boxes the int64 result");
    ("Int64.mul", "boxes the int64 result");
    ("Int64.div", "boxes the int64 result");
    ("Int64.rem", "boxes the int64 result");
    ("Int64.neg", "boxes the int64 result");
    ("Int64.logand", "boxes the int64 result");
    ("Int64.logor", "boxes the int64 result");
    ("Int64.logxor", "boxes the int64 result");
    ("Int64.shift_left", "boxes the int64 result");
    ("Int64.shift_right", "boxes the int64 result");
    ("Int64.shift_right_logical", "boxes the int64 result");
    ("Int64.of_int", "boxes the int64 result");
    ("Int32.add", "boxes the int32 result");
    ("Int32.of_int", "boxes the int32 result") ]

let poly_names =
  [ ("compare", "structural compare walks the value and boxes floats");
    ("min", "polymorphic min calls structural compare");
    ("max", "polymorphic max calls structural compare");
    ("Stdlib.compare", "structural compare walks the value and boxes floats");
    ("Hashtbl.hash", "polymorphic hash walks the value");
    ("List.mem", "membership test via structural equality");
    ("List.assoc", "lookup via structural equality");
    ("List.assoc_opt", "lookup via structural equality") ]

let growable_names =
  [ ("Buffer.add_char", "Buffer may grow (doubling copy) on the hot path");
    ("Buffer.add_string", "Buffer may grow (doubling copy) on the hot path");
    ("Buffer.add_substring", "Buffer may grow (doubling copy) on the hot path");
    ("Buffer.create", "allocates a growable buffer");
    ("Buffer.contents", "copies the accumulated bytes out");
    ("Hashtbl.add", "Hashtbl may resize (rehash of every binding)");
    ("Hashtbl.replace", "Hashtbl may resize (rehash of every binding)");
    ("Hashtbl.remove", "Hashtbl mutation on the hot path");
    ("Hashtbl.reset", "Hashtbl mutation on the hot path");
    ("Hashtbl.clear", "Hashtbl mutation on the hot path");
    ("Hashtbl.create", "allocates a growable table");
    ("Queue.add", "Queue cell allocation per element");
    ("Queue.push", "Queue cell allocation per element");
    ("Queue.pop", "Queue mutation on the hot path");
    ("Queue.take", "Queue mutation on the hot path");
    ("Stack.push", "Stack cell allocation per element");
    ("Stack.pop", "Stack mutation on the hot path") ]

(* The comparison operators classified per call site (see alloc_rules):
   listed here so the rule pass can recognize them. *)
let comparison_ops = [ "="; "<>"; "<"; ">"; "<="; ">=" ]

(* Type abbreviations of int used throughout the tree.  The typedtree
   records them unexpanded (expanding would need the serialized cmt
   environments reconstructed), so the comparison-operator check accepts
   them by name alongside the predefined immediate types. *)
let immediate_type_aliases =
  [ "Simulator.Types.time"; "Simulator.Types.proc_id";
    "Types.time"; "Types.proc_id" ]

let is_immediate_alias name = List.mem name immediate_type_aliases

let strip_stdlib name =
  let pfx = "Stdlib." in
  let lp = String.length pfx in
  if String.length name > lp && String.sub name 0 lp = pfx then
    String.sub name lp (String.length name - lp)
  else name

(* [classify name] resolves a fully-qualified external reference
   ("Stdlib.Array.get", "Stdlib.+", "Stdlib.Obj.magic") against the
   tables.  [None] means the name is outside the analyzer's universe:
   the caller reports A2. *)
let classify name =
  let name = strip_stdlib name in
  if String.length name >= 4 && String.sub name 0 4 = "Obj." then
    Some (Unsafe ("`Obj." ^ String.sub name 4 (String.length name - 4)
                  ^ "` defeats the allocation analysis"))
  else if List.mem name safe_names then Some Safe
  else
    match List.assoc_opt name allocating_names with
    | Some why -> Some (Allocates why)
    | None ->
      match List.assoc_opt name poly_names with
      | Some why -> Some (Poly why)
      | None ->
        match List.assoc_opt name growable_names with
        | Some why -> Some (Growable why)
        | None -> None

let is_comparison_op name = List.mem (strip_stdlib name) comparison_ops
