(* Allowlist directives read from `(* detlint: ... *)` comments.

   Forms: `(* detlint: sorted <detail> *)` (D3 shorthand) and
   `(* detlint: allow <RULE> <justification> *)`.  An entry suppresses a
   finding of its rule on the same line or the next one. *)

type t

(* Scan one file's source text.  Errors on malformed directives (unknown
   rule, missing justification, unterminated comment) so bad allowlists
   cannot silently disable the gate. *)
val scan : file:string -> string -> (t, string) result

(* [permits t rule ~line] is the justification if an entry covers a
   finding of [rule] at [line]. *)
val permits : t -> Finding.rule -> line:int -> string option

(* All entries, as (line, rule, reason), for reporting. *)
val entries : t -> (int * Finding.rule * string) list
