(* Loading typedtrees from dune's .cmt output.

   detlint's D rules work from the parsetree (no build needed);
   the A rules need types and resolved paths, which only the cmt files
   carry.  This module walks a build tree (normally _build/default),
   reads every .cmt whose source lives under one of the requested
   source roots, and hands back the typedtree implementations keyed by
   their compilation-unit name.

   Facts this relies on (all checked against dune 3.x output):
   - libraries emit cmts under <dir>/.<lib>.objs/byte/ on a normal
     build; executables only do so under `dune build @check`;
   - [cmt_modname] is the wrapped unit name, "Simulator__Pqueue" for
     module Pqueue of library simulator — we normalize "__" to "."
     so keys read as OCaml paths;
   - [cmt_sourcefile] is the build-root-relative source path,
     e.g. "lib/simulator/pqueue.ml". *)

type cmt = {
  unit_name : string;     (* normalized: "Simulator.Pqueue" *)
  source_file : string;   (* build-root-relative .ml path *)
  structure : Typedtree.structure;
}

let normalize_unit s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && s.[!i] = '_' && s.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let rec walk acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left (fun acc name -> walk acc (Filename.concat path name)) acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

(* Does [src] live under one of the root prefixes?  Roots are
   build-root-relative directories ("lib", "test/alloc_fixtures"). *)
let under_roots roots src =
  List.exists
    (fun root ->
       let rl = String.length root in
       String.length src > rl
       && String.sub src 0 rl = root
       && (root = "" || src.[rl] = '/'))
    roots

let read_one path =
  match Cmt_format.read_cmt path with
  | exception _ -> None  (* stale or foreign cmt: skip, never fail the scan *)
  | info ->
    (match (info.cmt_annots, info.cmt_sourcefile) with
     | (Cmt_format.Implementation structure, Some src)
       when Filename.check_suffix src ".ml" ->
       Some
         { unit_name = normalize_unit info.cmt_modname;
           source_file = src;
           structure }
     | _ -> None)

let load ~build_dir ~roots =
  if not (Sys.file_exists build_dir && Sys.is_directory build_dir) then
    Error
      (Printf.sprintf
         "alloclint: build directory %s not found (run `dune build @check` \
          first)"
         build_dir)
  else begin
    let paths = walk [] build_dir |> List.sort String.compare in
    let seen = Hashtbl.create 64 in
    let cmts =
      List.filter_map
        (fun p ->
           match read_one p with
           | Some c when under_roots roots c.source_file ->
             if Hashtbl.mem seen c.source_file then None
             else begin
               Hashtbl.add seen c.source_file ();
               Some c
             end
           | _ -> None)
        paths
    in
    Ok
      (List.sort (fun a b -> String.compare a.source_file b.source_file) cmts)
  end
