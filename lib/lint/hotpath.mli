(* The hot-path contract: which functions must be allocation-free and
   how external references are classified by the A-rule pass. *)

(* Attribute marking a binding hot in-source: [@@alloc.zero]. *)
val attribute_name : string

(* Engine-critical functions that are hot regardless of annotation
   (dotted keys, e.g. "Simulator.Pqueue.insert").  A registry entry
   with no matching function in the scanned tree is a hard scan error:
   the gate must not weaken silently when code moves. *)
val default_registry : string list

type builtin_class =
  | Safe                  (* known not to allocate *)
  | Allocates of string   (* A1, with the reason *)
  | Poly of string        (* A3: polymorphic compare/hash *)
  | Unsafe of string      (* A4: Obj.* escape *)
  | Growable of string    (* A5: growable-structure use *)

(* Classify a fully-qualified external reference ("Stdlib.Array.get").
   [None] means unknown: the caller reports A2. *)
val classify : string -> builtin_class option

(* Comparison operators (=, <, ...) are classified per call site by
   operand type rather than by the tables; this recognizes them. *)
val is_comparison_op : string -> bool

(* Known int abbreviations (Types.time, Types.proc_id) accepted as
   immediate operand types without environment-based expansion. *)
val is_immediate_alias : string -> bool
