#!/usr/bin/env python3
"""Regenerate the committed binary-trace fixture corpus (test/fixtures/).

This is a second, independent implementation of the v1 wire format of
lib/persist/frame.ml — a frame is [u32le len][u32le crc32(payload)][payload],
a trace file is the 8-byte "ECTRACE"+version header followed by frames whose
payloads start with 'E' (event, LEB128 varints) or 'S' (spec text).  The
fixtures both pin the format against accidental drift and cross-validate the
OCaml codec against zlib's CRC-32.

Run from the repo root:  python3 scripts/make_trace_fixtures.py
"""

import os
import zlib

FIXTURES = os.path.join(os.path.dirname(__file__), "..", "test", "fixtures")

MAGIC = b"ECTRACE"
VERSION = 1


def varint(v: int) -> bytes:
    assert v >= 0
    out = bytearray()
    while True:
        if v < 0x80:
            out.append(v)
            return bytes(out)
        out.append(0x80 | (v & 0x7F))
        v >>= 7


def lstring(s: bytes) -> bytes:
    return varint(len(s)) + s


def frame(payload: bytes) -> bytes:
    return (
        len(payload).to_bytes(4, "little")
        + zlib.crc32(payload).to_bytes(4, "little")
        + payload
    )


def ev_input(t, proc, v):
    return frame(b"E\x00" + varint(t) + varint(proc) + lstring(v))


def ev_send(t, src, dst, uid):
    return frame(b"E\x02" + varint(t) + varint(src) + varint(dst) + varint(uid))


def ev_deliver(t, src, dst, uid, lat):
    return frame(
        b"E\x03" + varint(t) + varint(src) + varint(dst) + varint(uid) + varint(lat)
    )


def ev_crash(t, proc):
    return frame(b"E\x05" + varint(t) + varint(proc))


def spec(text: bytes) -> bytes:
    return frame(b"S" + text)


def header(version=VERSION) -> bytes:
    return MAGIC + bytes([version])


def write(name: str, data: bytes):
    path = os.path.join(FIXTURES, name)
    with open(path, "wb") as f:
        f.write(data)
    print(f"wrote {name}: {len(data)} bytes")


def main():
    frames = [
        ev_input(5, 1, b'post "a"\n'),
        ev_send(6, 1, 2, 300),
        ev_deliver(9, 1, 2, 300, 3),
        ev_crash(20, 0),
        spec(b"ecsim-spec v1\nfixture\n"),
    ]
    ok = header() + b"".join(frames)

    # Frame start offsets, for the pinned error positions of test_frame.ml.
    pos = 8
    for i, fr in enumerate(frames):
        print(f"frame {i} at byte {pos} ({len(fr)} bytes)")
        pos += len(fr)

    write("trace_v1_ok.bin", ok)

    # Torn tail: the last frame (the spec record) cut off mid-payload.
    write("trace_torn_tail.bin", ok[: len(ok) - len(frames[-1]) + 8 + 5])

    # Corrupt CRC: one payload byte of the send record damaged on disk.
    send_at = 8 + len(frames[0])
    bad = bytearray(ok)
    bad[send_at + 8 + 2] ^= 0x5A
    write("trace_bad_crc.bin", bytes(bad))

    # Unknown version: a future format version this decoder must refuse.
    write("trace_bad_version.bin", header(version=2) + frames[0])

    journal_fixtures()


# --- soak campaign journal fixtures (lib/persist/journal.ml +
# lib/soak/journal.ml) ---------------------------------------------------
#
# A journal is the 8-byte "ECSOAKJ"+version magic followed by bare frames
# whose payloads are the line-based campaign entry texts.  Same frame wire
# format as traces, different magic — pinned independently here.

JMAGIC = b"ECSOAKJ\x01"

JCONFIG = b"\n".join(
    [
        b"config v1",
        b"legs alg5",
        b"budget 4",
        b"seed 1",
        b"max-adversities 4",
        b"event-budget 1000",
        b"deadline-ms 500",
        b"max-findings 2",
        b"max-poisoned 1",
        b"artifacts _artifacts/soak",
    ]
)


def journal_fixtures():
    records = [
        JCONFIG,
        b"run 0 0123456789abcdef0123456789abcdef",
        b"poisoned 1 stuck event budget exceeded (1000 events)",
        b"checkpoint 2",
    ]
    jframes = [frame(r) for r in records]
    ok = JMAGIC + b"".join(jframes)
    write("journal_v1_ok.bin", ok)

    # Torn tail: the checkpoint frame cut off mid-payload (a crash during
    # the final append) — readers must keep the three whole records.
    write("journal_torn_tail.bin", ok[: len(ok) - 7])

    # Corrupt CRC: one payload byte of the run record damaged on disk —
    # the clean prefix ends after the config record.
    bad = bytearray(ok)
    off = len(JMAGIC) + len(jframes[0])
    bad[off + 8 + 1] ^= 0x5A
    write("journal_bad_crc.bin", bytes(bad))


if __name__ == "__main__":
    main()
