(* The binary framed trace codec and CRC32 WAL, locked down by a
   differential/golden battery:

   - CRC-32 known-answer vectors pin the checksum to the zlib/IEEE one.
   - Every golden scenario family (stable, crash, anti-entropy,
     recoverable) runs once with [Sink.jsonl] and once with
     [Sink.binary]; decoding the binary stream and exporting it with
     [Frame.to_jsonl] must reproduce the direct jsonl stream byte for
     byte — the two formats are held to lossless equivalence on real
     runs, not just on generated values.
   - QCheck roundtrips [decode . encode = id] over generated events and
     spec records; truncating or garbling a file yields a positioned
     error (or a clean prefix when the cut lands exactly on a record
     boundary) and never raises.
   - A committed fixture corpus (test/fixtures/trace_*.bin) pins the v1
     wire format: well-formed bytes decode to exactly the pinned items,
     and torn / CRC-damaged / wrong-version files fail with the pinned
     positioned errors.  The fixtures were written by an independent
     generator (scripts/make_trace_fixtures.py), so they also
     cross-validate the format against a second implementation.
   - The WAL differential: under every disk fault, the legacy Md5 store
     and the framed Crc32 store recover the identical decoded state
     (records, snapshot, loss/detection counters) — the checksum swap is
     invisible above the byte layer.
   - A binary `.trace.bin` artifact (event stream + embedded spec
     record) is a self-contained replay unit: a finding explored and
     shrunk under the ordinary pipeline replays from its binary artifact
     to the same digest. *)

open Simulator
open Ec_core
module Frame = Persist.Frame
module Store = Persist.Store
module Builder = Harness.Builder
module Adversity = Harness.Adversity
module Stacks = Harness.Stacks

let oracle =
  Stacks.Oracle { stabilize_at = 0; pre = Detectors.Omega.Self_trust }

(* ------------------------------------------------------------------ *)
(* CRC-32 known answers                                                *)
(* ------------------------------------------------------------------ *)

let test_crc32_vectors () =
  let check name expected s =
    Alcotest.(check string) name expected (Printf.sprintf "%08x" (Frame.crc32 s))
  in
  (* The canonical CRC-32/ISO-HDLC check value, plus zlib-verified
     vectors: any deviation means we are not computing the zlib/IEEE
     checksum any more. *)
  check "empty" "00000000" "";
  check "check value" "cbf43926" "123456789";
  check "single byte" "e8b7be43" "a";
  check "all byte values" "29058c73"
    (String.init 256 Char.chr);
  (* Incremental feed distributes over concatenation. *)
  let a = "hello " and b = "world" in
  Alcotest.(check int) "incremental = whole"
    (Frame.crc32 (a ^ b))
    (Frame.crc32_finish (Frame.crc32_feed (Frame.crc32_feed Frame.crc32_init a) b))

(* ------------------------------------------------------------------ *)
(* Golden-scenario differential: jsonl vs binary                       *)
(* ------------------------------------------------------------------ *)

let posts count from_time every = Builder.Posts { count; from_time; every }

let stable_b =
  { (Builder.create ~n:3 ~deadline:120
       ~delay:(Builder.Uniform { min_d = 1; max_d = 4 })
       (Builder.Etob Stacks.Algorithm_5))
    with Builder.workload = posts 6 8 5; omega = Some oracle }

let crash_b =
  { (Builder.create ~seed:13 ~n:4 ~deadline:160
       ~delay:(Builder.Uniform { min_d = 1; max_d = 4 })
       (Builder.Etob Stacks.Algorithm_5))
    with Builder.workload = posts 8 6 6;
         plan = Adversity.make [ Adversity.Crash { proc = 3; at = 40 } ];
         omega = Some oracle }

let ae_b =
  { (Builder.create ~n:4 ~deadline:240
       ~delay:(Builder.Uniform { min_d = 1; max_d = 3 })
       Builder.Etob_ae)
    with Builder.workload = posts 12 8 8;
         plan =
           Adversity.make
             [ Adversity.Lossy_partition
                 { left = [ 3 ]; from_time = 40; until_time = 120 } ];
         omega = Some oracle }

let recoverable_b =
  { (Builder.create ~seed:3 ~n:4 ~deadline:300
       ~delay:(Builder.Uniform { min_d = 1; max_d = 3 })
       (Builder.Recoverable { ae = false }))
    with Builder.workload = posts 12 8 20;
         plan =
           Adversity.make
             [ Adversity.Crash_recover { proc = 1; at = 60; recover_at = 140 } ];
         omega = Some oracle }

let scenarios =
  [ ("stable", stable_b); ("crash", crash_b); ("ae", ae_b);
    ("recoverable", recoverable_b) ]

let jsonl_lines_of b =
  let lines = ref [] in
  let sink = Sink.jsonl ~emit:(fun s -> lines := s :: !lines) in
  ignore (Builder.run { b with Builder.sink = Some sink });
  List.rev !lines

let binary_bytes_of b =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf Frame.header;
  let sink = Sink.binary ~emit:(Buffer.add_string buf) in
  ignore (Builder.run { b with Builder.sink = Some sink });
  Buffer.contents buf

let test_differential () =
  List.iter
    (fun (name, b) ->
       let direct = jsonl_lines_of b in
       let bytes = binary_bytes_of b in
       match Frame.decode bytes with
       | Error e ->
         Alcotest.failf "%s: binary decode failed: %a" name Frame.pp_error e
       | Ok items ->
         Alcotest.(check (list string))
           (name ^ ": decoded export byte-identical to jsonl")
           direct (Frame.to_jsonl items);
         let jsonl_bytes =
           List.fold_left (fun acc l -> acc + String.length l + 1) 0 direct
         in
         Alcotest.(check bool)
           (name ^ ": binary strictly smaller than jsonl") true
           (String.length bytes < jsonl_bytes))
    scenarios

(* The differential is only meaningful if the scenarios actually cover
   the whole event vocabulary.  Crash/recover marks are only emitted for
   downtime windows (a permanent crash-stop just stops being stepped, see
   Engine), so the recoverable scenario is where both must appear. *)
let test_differential_covers_marks () =
  let contains fragment l =
    let n = String.length l and m = String.length fragment in
    let rec go i = i + m <= n && (String.sub l i m = fragment || go (i + 1)) in
    go 0
  in
  let recov_lines = jsonl_lines_of recoverable_b in
  Alcotest.(check bool) "recoverable scenario logs a crash mark" true
    (List.exists (contains {|"ev":"crash"|}) recov_lines);
  Alcotest.(check bool) "recoverable scenario logs a recover mark" true
    (List.exists (contains {|"ev":"recover"|}) recov_lines)

(* ------------------------------------------------------------------ *)
(* QCheck roundtrips and damage properties                             *)
(* ------------------------------------------------------------------ *)

let encode_trace evs =
  Frame.header ^ String.concat "" (List.map Frame.event_record evs)

let roundtrip_test =
  QCheck.Test.make ~count:500 ~name:"frame: decode (encode evs) = evs"
    Qgen.frame_events_arb (fun evs ->
        match Frame.decode (encode_trace evs) with
        | Error _ -> false
        | Ok items -> Frame.events items = evs && Frame.spec items = None)

let spec_roundtrip_test =
  QCheck.Test.make ~count:200 ~name:"frame: last spec record wins, text intact"
    QCheck.(
      triple Qgen.frame_events_arb
        (string_gen_of_size Gen.(int_range 0 60) Gen.char)
        (string_gen_of_size Gen.(int_range 0 60) Gen.char))
    (fun (evs, s1, s2) ->
       let file =
         Frame.header ^ Frame.spec_record s1
         ^ String.concat "" (List.map Frame.event_record evs)
         ^ Frame.spec_record s2
       in
       match Frame.decode file with
       | Error _ -> false
       | Ok items -> Frame.spec items = Some s2 && Frame.events items = evs)

(* Truncation at any byte: a cut exactly on a record boundary yields the
   clean prefix; any other cut yields a positioned error.  Decoding never
   raises either way. *)
let truncation_test =
  QCheck.Test.make ~count:500 ~name:"frame: truncation = prefix or positioned error"
    QCheck.(pair Qgen.frame_events_arb small_nat)
    (fun (evs, k) ->
       let s = encode_trace evs in
       let cut = k mod String.length s in
       let prefix = String.sub s 0 cut in
       let boundaries =
         (* file positions just after the header and after each record *)
         let rec go acc pos = function
           | [] -> List.rev acc
           | ev :: rest ->
             let pos = pos + String.length (Frame.event_record ev) in
             go (pos :: acc) pos rest
         in
         go [ 8 ] 8 evs
       in
       match Frame.decode prefix with
       | Ok items ->
         List.mem cut boundaries
         && Frame.events items
            = (let keep =
                 List.length (List.filter (fun b -> b <= cut) boundaries) - 1
               in
               List.filteri (fun i _ -> i < keep) evs)
       | Error e -> (not (List.mem cut boundaries)) && e.Frame.pos >= 0)

(* Garbling any single byte is always detected: header damage, length
   damage, CRC damage and payload damage all surface as an error (CRC-32
   catches every single-byte corruption), never as an exception and never
   as silently different data. *)
let garble_test =
  QCheck.Test.make ~count:500 ~name:"frame: single-byte garble = positioned error"
    QCheck.(pair Qgen.frame_events_arb small_nat)
    (fun (evs, k) ->
       QCheck.assume (evs <> []);
       let s = Bytes.of_string (encode_trace evs) in
       let pos = k mod Bytes.length s in
       Bytes.set s pos (Char.chr (Char.code (Bytes.get s pos) lxor 0xff));
       match Frame.decode (Bytes.to_string s) with
       | Error e -> e.Frame.pos >= 0 && e.Frame.pos <= Bytes.length s
       | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Fixture corpus: the committed v1 wire format                        *)
(* ------------------------------------------------------------------ *)

let read_fixture name =
  In_channel.with_open_bin (Filename.concat "fixtures" name)
    In_channel.input_all

let fixture_spec_text = "ecsim-spec v1\nfixture\n"

let fixture_items =
  [ Frame.Event (Frame.Input { t = 5; proc = 1; v = "post \"a\"\n" });
    Frame.Event (Frame.Send { t = 6; src = 1; dst = 2; uid = 300 });
    Frame.Event (Frame.Deliver { t = 9; src = 1; dst = 2; uid = 300; lat = 3 });
    Frame.Event (Frame.Crash { t = 20; proc = 0 });
    Frame.Spec fixture_spec_text ]

let test_fixture_ok () =
  match Frame.decode (read_fixture "trace_v1_ok.bin") with
  | Error e -> Alcotest.failf "well-formed fixture: %a" Frame.pp_error e
  | Ok items ->
    Alcotest.(check bool) "pinned items" true (items = fixture_items);
    Alcotest.(check (list string)) "pinned jsonl export"
      [ {|{"ev":"input","t":5,"proc":1,"v":"post \"a\"\n"}|};
        {|{"ev":"send","t":6,"src":1,"dst":2,"uid":300}|};
        {|{"ev":"deliver","t":9,"src":1,"dst":2,"uid":300,"lat":3}|};
        {|{"ev":"crash","t":20,"proc":0}|} ]
      (Frame.to_jsonl items);
    Alcotest.(check (option string)) "pinned spec" (Some fixture_spec_text)
      (Frame.spec items)

let check_fixture_error name expected_pos expected_reason_prefix =
  match Frame.decode (read_fixture name) with
  | Ok _ -> Alcotest.failf "%s decoded cleanly" name
  | Error e ->
    Alcotest.(check int) (name ^ ": pinned error position") expected_pos
      e.Frame.pos;
    let prefix_len = String.length expected_reason_prefix in
    Alcotest.(check string) (name ^ ": pinned error reason")
      expected_reason_prefix
      (String.sub e.Frame.reason 0 (min prefix_len (String.length e.Frame.reason)))

let test_fixture_torn_tail () =
  (* the spec record's frame (starting at byte 73) is torn mid-payload *)
  check_fixture_error "trace_torn_tail.bin" 73 "truncated frame payload"

let test_fixture_bad_crc () =
  (* one payload byte of the send record (frame at byte 30) is damaged *)
  check_fixture_error "trace_bad_crc.bin" 30 "frame checksum mismatch"

let test_fixture_bad_version () =
  check_fixture_error "trace_bad_version.bin" 7
    "unsupported format version 2 (expected 1)"

(* ------------------------------------------------------------------ *)
(* WAL differential: Md5 vs Crc32 under every disk fault               *)
(* ------------------------------------------------------------------ *)

let wal_case_arb =
  QCheck.make
    ~print:(fun (payloads, snapshot, sync_at, fault) ->
        Printf.sprintf "payloads=%s snapshot=%s sync_at=%d fault=%s"
          (QCheck.Print.(list string) payloads)
          (QCheck.Print.(option string) snapshot)
          sync_at
          (Store.fault_to_string fault))
    QCheck.Gen.(
      let* payloads = Qgen.wal_payloads_gen in
      let* snapshot = option Qgen.wal_payload_gen in
      let* sync_at = int_range 0 (List.length payloads - 1) in
      let* fault =
        oneofl
          [ Store.Torn_tail; Store.Lost_suffix 1; Store.Lost_suffix 2;
            Store.Corrupt_record ]
      in
      return (payloads, snapshot, sync_at, fault))

let replay checksum (payloads, snapshot, sync_at, fault) =
  let s = Store.create ~checksum () in
  ignore (Store.open_ s);
  Option.iter (Store.install_snapshot s) snapshot;
  List.iteri
    (fun i p ->
       Store.append s p;
       if i = sync_at then Store.sync s)
    payloads;
  Store.arm_fault s fault;
  let o = Store.open_ s in
  let st = Store.stats s in
  ( o.Store.snapshot, o.Store.records,
    st.Store.records_lost, st.Store.corrupt_detected )

let wal_differential_test =
  QCheck.Test.make ~count:500
    ~name:"store: Md5 and Crc32 recover identical decoded state"
    wal_case_arb
    (fun case ->
       let md5 = replay Store.Md5 case
       and crc = replay Store.Crc32 case in
       let (snapshot, records, _, _) = crc in
       let (payloads, snap_in, _, _) = case in
       (* identical across schemes... *)
       md5 = crc
       (* ...and structurally sane: the snapshot round-trips and the
          recovered log is a prefix of what was appended. *)
       && snapshot = snap_in
       && List.length records <= List.length payloads
       && List.for_all2 String.equal records
            (List.filteri (fun i _ -> i < List.length records) payloads))

let wal_roundtrip_test =
  QCheck.Test.make ~count:300
    ~name:"store: faultless crash replays every byte-arbitrary record"
    Qgen.wal_payloads_arb
    (fun payloads ->
       List.for_all
         (fun checksum ->
            let s = Store.create ~checksum () in
            ignore (Store.open_ s);
            List.iter (Store.append s) payloads;
            let o = Store.open_ s in
            o.Store.records = payloads)
         [ Store.Md5; Store.Crc32 ])

let test_snapshot_checksummed () =
  List.iter
    (fun checksum ->
       let s = Store.create ~checksum () in
       ignore (Store.open_ s);
       Store.install_snapshot s "state \x00\xff bytes";
       Store.append s "after";
       Store.arm_fault s Store.Torn_tail;
       let o = Store.open_ s in
       Alcotest.(check (option string))
         (Store.checksum_name checksum ^ ": snapshot survives intact")
         (Some "state \x00\xff bytes") o.Store.snapshot;
       Alcotest.(check (list string))
         (Store.checksum_name checksum ^ ": torn dirty record discarded")
         [] o.Store.records;
       Alcotest.(check int)
         (Store.checksum_name checksum ^ ": tear detected")
         1 (Store.stats s).Store.corrupt_detected)
    [ Store.Md5; Store.Crc32 ]

(* ------------------------------------------------------------------ *)
(* Binary artifacts are self-contained replay units                    *)
(* ------------------------------------------------------------------ *)

let with_temp_bin f =
  let path = Filename.temp_file "ecsim_test" ".trace.bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let replay_binary_artifact path =
  match Builder.binary_spec path with
  | Error e -> Alcotest.fail e
  | Ok spec_text ->
    (match Builder.of_string spec_text with
     | Error e -> Alcotest.failf "embedded spec does not parse: %s" e
     | Ok b ->
       (spec_text, Builder.run ~digest:true ~catch:true b))

let test_binary_artifact_digest_roundtrip () =
  with_temp_bin (fun path ->
      let b = crash_b in
      let o =
        Builder.run ~digest:true
          { b with Builder.trace_out = Some (path, Builder.Binary) }
      in
      Builder.append_binary_spec path ~digest:o.Builder.digest
        ~violations:o.Builder.violations b;
      let spec_text, o' = replay_binary_artifact path in
      Alcotest.(check (option string)) "digest recorded in artifact"
        (Some o.Builder.digest)
        (Builder.recorded_digest spec_text);
      Alcotest.(check string) "replayed digest matches" o.Builder.digest
        o'.Builder.digest)

(* The full loop the smoke gate also drives: catch a seeded mutant by
   exploring generated plans, shrink the finding under the ordinary
   (jsonl-era) pipeline, then replay its binary artifact back to the
   same digest. *)
let test_shrunk_finding_replays_from_binary () =
  let n = 4 and deadline = 160 in
  let mk plan =
    { (Builder.create ~n ~deadline
         ~delay:(Builder.Uniform { min_d = 1; max_d = 4 })
         (Builder.Etob Stacks.Algorithm_5))
      with Builder.workload = Builder.Auto_posts { count = 6; stretch = false };
           plan;
           omega = Some oracle;
           checkers = [ Builder.Etob_spec Builder.Tau_auto ];
           mutation = Some Etob_omega.Skip_dependency_wait }
  in
  let gen i =
    (* detlint: allow D1 the state is derived from the fixed seed and the plan index, so every exploration step replays deterministically *)
    let rand = Random.State.make [| 0x5eed; i |] in
    mk (QCheck.Gen.generate1 ~rand (Builder.plan_gen ~n ~deadline))
  in
  let e = Builder.explore ~gen ~budget:200 () in
  match e.Builder.found with
  | None -> Alcotest.fail "seeded mutant not caught within budget"
  | Some o ->
    let shrunk =
      Builder.shrink
        ~rebuild:(fun plan -> { o.Builder.builder with Builder.plan })
        o
    in
    Alcotest.(check bool) "shrunk finding still violates" true
      (shrunk.Builder.violations <> []);
    with_temp_bin (fun path ->
        let sb = shrunk.Builder.builder in
        let o2 =
          Builder.run ~digest:true ~catch:true
            { sb with Builder.trace_out = Some (path, Builder.Binary) }
        in
        Alcotest.(check string) "shrunk finding is deterministic"
          shrunk.Builder.digest o2.Builder.digest;
        Builder.append_binary_spec path ~digest:o2.Builder.digest
          ~violations:o2.Builder.violations sb;
        let _, o3 = replay_binary_artifact path in
        Alcotest.(check string) "binary artifact replays to same digest"
          shrunk.Builder.digest o3.Builder.digest;
        Alcotest.(check bool) "replay reproduces the violation" true
          (o3.Builder.violations <> []))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "frame"
    [ ( "crc32",
        [ Alcotest.test_case "known answers" `Quick test_crc32_vectors ] );
      ( "differential",
        [ Alcotest.test_case "jsonl vs binary on golden scenarios" `Quick
            test_differential;
          Alcotest.test_case "scenarios cover crash/recover marks" `Quick
            test_differential_covers_marks ] );
      ( "roundtrip",
        [ QCheck_alcotest.to_alcotest roundtrip_test;
          QCheck_alcotest.to_alcotest spec_roundtrip_test;
          QCheck_alcotest.to_alcotest truncation_test;
          QCheck_alcotest.to_alcotest garble_test ] );
      ( "fixtures",
        [ Alcotest.test_case "well-formed v1" `Quick test_fixture_ok;
          Alcotest.test_case "torn tail" `Quick test_fixture_torn_tail;
          Alcotest.test_case "corrupt CRC" `Quick test_fixture_bad_crc;
          Alcotest.test_case "unknown version" `Quick test_fixture_bad_version
        ] );
      ( "wal",
        [ QCheck_alcotest.to_alcotest wal_differential_test;
          QCheck_alcotest.to_alcotest wal_roundtrip_test;
          Alcotest.test_case "snapshot checksummed" `Quick
            test_snapshot_checksummed ] );
      ( "artifact",
        [ Alcotest.test_case "digest roundtrip" `Quick
            test_binary_artifact_digest_roundtrip;
          Alcotest.test_case "shrunk finding replays from binary" `Slow
            test_shrunk_finding_replays_from_binary ] ) ]
