(* Shared QCheck arbitraries and shrinkers over simulator and explorer
   domain values: failure-pattern crash lists, adversity plans and base
   delay-model bounds.

   The adversity generators live in [Harness.Builder] since the builder
   refactor (the builder's spec-file roundtrip property runs over the same
   space); this module re-exports them under the historical names and
   keeps only the simulator-level generators local.

   Plans generated here are deliberately NOT fairness-clamped (unlike
   [Explore.Explorer.random_plan], which keeps plans recoverable so that
   liveness checks are meaningful): safety properties must hold under any
   plan whatsoever, so these generators cover the whole space — drop
   windows that never heal, partitions to the horizon, flapping forever.
   They are [Adversity.make]-normalized, so generated plans equal their
   own text-form roundtrip.  Shrinkers are structural: drop whole
   elements, then substitute the strictly weaker variants of
   [Adversity.weaken]. *)

module Builder = Harness.Builder

(* ------------------------------------------------------------------ *)
(* Failure patterns, as crash lists                                    *)
(* ------------------------------------------------------------------ *)

(* Up to [max_faulty] crashes among processes 1..n-1 (process 0 always
   stays correct, so any environment admits the result), at arbitrary
   times within the horizon.  Duplicate processes are fine: [of_crashes]
   keeps the earliest time. *)
let crash_list_gen ~n ~max_faulty ~horizon =
  let open QCheck.Gen in
  list_size
    (int_range 0 (min max_faulty (n - 1)))
    (pair (int_range 1 (n - 1)) (int_range 0 horizon))

let crash_list_arb ~n ~max_faulty ~horizon =
  QCheck.make
    ~print:QCheck.Print.(list (pair int int))
    ~shrink:QCheck.Shrink.list
    (crash_list_gen ~n ~max_faulty ~horizon)

let pattern_of_crashes ~n crashes = Simulator.Failures.of_crashes ~n crashes

(* ------------------------------------------------------------------ *)
(* Adversity plans (re-exported from Harness.Builder)                  *)
(* ------------------------------------------------------------------ *)

let subset_gen = Builder.subset_gen
let window_gen = Builder.window_gen
let spec_gen = Builder.spec_gen
let plan_gen = Builder.plan_gen
let spec_shrink = Builder.spec_shrink
let plan_arb = Builder.plan_arb
let recovery_spec_gen = Builder.recovery_spec_gen
let recovery_plan_gen = Builder.recovery_plan_gen
let recovery_plan_arb = Builder.recovery_plan_arb
let partition_loss_spec_gen = Builder.partition_loss_spec_gen
let partition_recovery_plan_gen = Builder.partition_recovery_plan_gen
let partition_recovery_plan_arb = Builder.partition_recovery_plan_arb

(* ------------------------------------------------------------------ *)
(* Base delay-model bounds (Net.uniform parameters)                    *)
(* ------------------------------------------------------------------ *)

let delay_bounds_gen =
  let open QCheck.Gen in
  let* min_delay = int_range 1 4 in
  let* span = int_range 0 4 in
  return (min_delay, min_delay + span)

let delay_bounds_arb =
  QCheck.make
    ~print:QCheck.Print.(pair int int)
    ~shrink:QCheck.Shrink.(pair nil nil)
    delay_bounds_gen

(* ------------------------------------------------------------------ *)
(* Binary trace records (Persist.Frame) and WAL payloads               *)
(* ------------------------------------------------------------------ *)

module Frame = Persist.Frame

(* Rendered values cover the whole byte range — JSON metacharacters,
   control characters, NUL, high bytes — so roundtrips exercise every
   encoder path, and times/uids reach multi-byte varint territory. *)
let frame_string_gen =
  let open QCheck.Gen in
  string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 24)

let frame_event_gen =
  let open QCheck.Gen in
  let t = int_range 0 1_000_000 in
  let proc = int_range 0 15 in
  let uid = int_range 0 10_000_000 in
  oneof
    [ (let* t = t in
       let* proc = proc in
       let* v = frame_string_gen in
       return (Frame.Input { t; proc; v }));
      (let* t = t in
       let* proc = proc in
       let* v = frame_string_gen in
       return (Frame.Output { t; proc; v }));
      (let* t = t in
       let* src = proc in
       let* dst = proc in
       let* uid = uid in
       return (Frame.Send { t; src; dst; uid }));
      (let* t = t in
       let* src = proc in
       let* dst = proc in
       let* uid = uid in
       let* lat = int_range 0 1_000 in
       return (Frame.Deliver { t; src; dst; uid; lat }));
      (let* t = t in
       let* src = proc in
       let* dst = proc in
       let* uid = uid in
       return (Frame.Drop { t; src; dst; uid }));
      (let* t = t in
       let* proc = proc in
       return (Frame.Crash { t; proc }));
      (let* t = t in
       let* proc = proc in
       return (Frame.Recover { t; proc })) ]

let frame_events_gen =
  QCheck.Gen.(list_size (int_range 0 40) frame_event_gen)

let frame_events_arb =
  QCheck.make
    ~print:(fun evs ->
        String.concat "\n" (List.map Frame.event_to_jsonl evs))
    ~shrink:QCheck.Shrink.list frame_events_gen

(* WAL payloads in the shape protocols actually log (short text records,
   see lib/core/recoverable.ml) but over arbitrary bytes.  Non-empty:
   protocols never append the empty record, and the documented Md5/Crc32
   behavioural corner is exactly the torn empty record (Store.mli). *)
let wal_payload_gen =
  QCheck.Gen.(
    string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 1 60))

let wal_payloads_gen =
  QCheck.Gen.(list_size (int_range 1 24) wal_payload_gen)

let wal_payloads_arb =
  QCheck.make
    ~print:QCheck.Print.(list string)
    ~shrink:QCheck.Shrink.(list ~shrink:string)
    wal_payloads_gen

(* ------------------------------------------------------------------ *)
(* Service-layer client populations                                    *)
(* ------------------------------------------------------------------ *)

(* These generators live with the spec in [Harness.Service_spec] so the
   smoke gate (`ecsim service --smoke`) can sample them without the test
   tree; re-exported here so test arbitraries and the builder roundtrip
   property draw from the same space. *)
let service_arrival_gen = Harness.Service_spec.arrival_gen
let service_spec_gen = Harness.Service_spec.gen
let service_spec_arb = Harness.Service_spec.arbitrary
