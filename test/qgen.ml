(* Shared QCheck arbitraries and shrinkers over simulator and explorer
   domain values: failure-pattern crash lists, adversity plans and base
   delay-model bounds.

   The adversity generators live in [Harness.Builder] since the builder
   refactor (the builder's spec-file roundtrip property runs over the same
   space); this module re-exports them under the historical names and
   keeps only the simulator-level generators local.

   Plans generated here are deliberately NOT fairness-clamped (unlike
   [Explore.Explorer.random_plan], which keeps plans recoverable so that
   liveness checks are meaningful): safety properties must hold under any
   plan whatsoever, so these generators cover the whole space — drop
   windows that never heal, partitions to the horizon, flapping forever.
   They are [Adversity.make]-normalized, so generated plans equal their
   own text-form roundtrip.  Shrinkers are structural: drop whole
   elements, then substitute the strictly weaker variants of
   [Adversity.weaken]. *)

module Builder = Harness.Builder

(* ------------------------------------------------------------------ *)
(* Failure patterns, as crash lists                                    *)
(* ------------------------------------------------------------------ *)

(* Up to [max_faulty] crashes among processes 1..n-1 (process 0 always
   stays correct, so any environment admits the result), at arbitrary
   times within the horizon.  Duplicate processes are fine: [of_crashes]
   keeps the earliest time. *)
let crash_list_gen ~n ~max_faulty ~horizon =
  let open QCheck.Gen in
  list_size
    (int_range 0 (min max_faulty (n - 1)))
    (pair (int_range 1 (n - 1)) (int_range 0 horizon))

let crash_list_arb ~n ~max_faulty ~horizon =
  QCheck.make
    ~print:QCheck.Print.(list (pair int int))
    ~shrink:QCheck.Shrink.list
    (crash_list_gen ~n ~max_faulty ~horizon)

let pattern_of_crashes ~n crashes = Simulator.Failures.of_crashes ~n crashes

(* ------------------------------------------------------------------ *)
(* Adversity plans (re-exported from Harness.Builder)                  *)
(* ------------------------------------------------------------------ *)

let subset_gen = Builder.subset_gen
let window_gen = Builder.window_gen
let spec_gen = Builder.spec_gen
let plan_gen = Builder.plan_gen
let spec_shrink = Builder.spec_shrink
let plan_arb = Builder.plan_arb
let recovery_spec_gen = Builder.recovery_spec_gen
let recovery_plan_gen = Builder.recovery_plan_gen
let recovery_plan_arb = Builder.recovery_plan_arb
let partition_loss_spec_gen = Builder.partition_loss_spec_gen
let partition_recovery_plan_gen = Builder.partition_recovery_plan_gen
let partition_recovery_plan_arb = Builder.partition_recovery_plan_arb

(* ------------------------------------------------------------------ *)
(* Base delay-model bounds (Net.uniform parameters)                    *)
(* ------------------------------------------------------------------ *)

let delay_bounds_gen =
  let open QCheck.Gen in
  let* min_delay = int_range 1 4 in
  let* span = int_range 0 4 in
  return (min_delay, min_delay + span)

let delay_bounds_arb =
  QCheck.make
    ~print:QCheck.Print.(pair int int)
    ~shrink:QCheck.Shrink.(pair nil nil)
    delay_bounds_gen
