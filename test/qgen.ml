(* Shared QCheck arbitraries and shrinkers over simulator and explorer
   domain values: failure-pattern crash lists, adversity plans and base
   delay-model bounds.

   Plans generated here are deliberately NOT fairness-clamped (unlike
   [Explore.Explorer.random_plan], which keeps plans recoverable so that
   liveness checks are meaningful): safety properties must hold under any
   plan whatsoever, so these generators cover the whole space — drop
   windows that never heal, partitions to the horizon, flapping forever.
   Shrinkers are structural: drop whole elements, then substitute the
   strictly weaker variants of [Adversity.weaken]. *)

open Explore

(* ------------------------------------------------------------------ *)
(* Failure patterns, as crash lists                                    *)
(* ------------------------------------------------------------------ *)

(* Up to [max_faulty] crashes among processes 1..n-1 (process 0 always
   stays correct, so any environment admits the result), at arbitrary
   times within the horizon.  Duplicate processes are fine: [of_crashes]
   keeps the earliest time. *)
let crash_list_gen ~n ~max_faulty ~horizon =
  let open QCheck.Gen in
  list_size
    (int_range 0 (min max_faulty (n - 1)))
    (pair (int_range 1 (n - 1)) (int_range 0 horizon))

let crash_list_arb ~n ~max_faulty ~horizon =
  QCheck.make
    ~print:QCheck.Print.(list (pair int int))
    ~shrink:QCheck.Shrink.list
    (crash_list_gen ~n ~max_faulty ~horizon)

let pattern_of_crashes ~n crashes = Simulator.Failures.of_crashes ~n crashes

(* ------------------------------------------------------------------ *)
(* Adversity plans                                                     *)
(* ------------------------------------------------------------------ *)

(* A nonempty proper subset of 0..n-1, from a bitmask. *)
let subset_gen n =
  let open QCheck.Gen in
  let* mask = int_range 1 ((1 lsl n) - 2) in
  return (List.filter (fun p -> mask land (1 lsl p) <> 0) (List.init n Fun.id))

let window_gen deadline =
  let open QCheck.Gen in
  let* from_time = int_range 0 (deadline - 2) in
  let* len = int_range 1 (deadline - from_time) in
  return (from_time, from_time + len)

let spec_gen ~n ~deadline =
  let open QCheck.Gen in
  frequency
    [ ( 1,
        let* proc = int_range 1 (n - 1) in
        let* at = int_range 0 deadline in
        return (Adversity.Crash { proc; at }) );
      ( 2,
        let* left = subset_gen n in
        let* from_time, until_time = window_gen deadline in
        return (Adversity.Partition { left; from_time; until_time }) );
      ( 2,
        let* link =
          oneof
            [ return None;
              (let* src = int_range 0 (n - 1) in
               let* dst = int_range 0 (n - 1) in
               return (if src = dst then None else Some (src, dst))) ]
        in
        let* from_time, until_time = window_gen deadline in
        let* factor = int_range 2 6 in
        return (Adversity.Delay_spike { link; from_time; until_time; factor }) );
      ( 2,
        let* from_time, until_time = window_gen deadline in
        let* pct = int_range 1 100 in
        return (Adversity.Drop { from_time; until_time; pct }) );
      ( 2,
        let* from_time, until_time = window_gen deadline in
        let* copies = int_range 1 3 in
        return (Adversity.Duplicate { from_time; until_time; copies }) );
      ( 2,
        let* until_time = int_range 1 deadline in
        let* period = int_range 1 6 in
        return (Adversity.Omega_flap { until_time; period }) ) ]

let plan_gen ~n ~deadline =
  QCheck.Gen.(list_size (int_range 0 5) (spec_gen ~n ~deadline))

let spec_shrink spec = QCheck.Iter.of_list (Adversity.weaken spec)

let plan_arb ~n ~deadline =
  QCheck.make
    ~print:(fun plan -> String.concat "; " (Adversity.to_lines plan))
    ~shrink:(QCheck.Shrink.list ~shrink:spec_shrink)
    (plan_gen ~n ~deadline)

(* ------------------------------------------------------------------ *)
(* Recovery plans: downtime windows and disk faults                    *)
(* ------------------------------------------------------------------ *)

(* Crash-recover windows and disk faults over processes 1..n-1.  Windows
   may overlap, touch, or sit anywhere in the horizon, and disk faults
   may target processes that never restart (then they are no-ops): safety
   has to hold over the whole space, so nothing here is sanitized the way
   [Explorer.random_plan] sanitizes its liveness-friendly plans. *)
let recovery_spec_gen ~n ~deadline =
  let open QCheck.Gen in
  let* proc = int_range 1 (n - 1) in
  frequency
    [ ( 3,
        let* at = int_range 1 (deadline - 2) in
        let* len = int_range 1 (deadline - at) in
        return (Adversity.Crash_recover { proc; at; recover_at = at + len }) );
      ( 1,
        let* kind =
          oneofl
            [ Persist.Store.Torn_tail;
              Persist.Store.Lost_suffix 1;
              Persist.Store.Lost_suffix 3;
              Persist.Store.Corrupt_record ]
        in
        return (Adversity.Disk_fault { proc; kind }) ) ]

(* A recovery plan: at least one recovery-flavoured spec, mixed with the
   unclamped crash-stop specs of [spec_gen]. *)
let recovery_plan_gen ~n ~deadline =
  let open QCheck.Gen in
  let* base = list_size (int_range 0 2) (spec_gen ~n ~deadline) in
  let* rec_specs =
    list_size (int_range 1 3) (recovery_spec_gen ~n ~deadline)
  in
  return (base @ rec_specs)

let recovery_plan_arb ~n ~deadline =
  QCheck.make
    ~print:(fun plan -> String.concat "; " (Adversity.to_lines plan))
    ~shrink:(QCheck.Shrink.list ~shrink:spec_shrink)
    (recovery_plan_gen ~n ~deadline)

(* ------------------------------------------------------------------ *)
(* Message-losing partition schedules                                  *)
(* ------------------------------------------------------------------ *)

(* Lossy, one-way and flapping partitions anywhere in the horizon —
   including schedules that never heal before the deadline or cut the
   leader off asymmetrically.  Safety has to survive arbitrary message
   loss; liveness is legitimately lost under such plans and is never
   asserted over this space. *)
let partition_loss_spec_gen ~n ~deadline =
  let open QCheck.Gen in
  let* left = subset_gen n in
  frequency
    [ ( 2,
        let* from_time, until_time = window_gen deadline in
        return (Adversity.Lossy_partition { left; from_time; until_time }) );
      ( 1,
        let* from_time, until_time = window_gen deadline in
        return (Adversity.Oneway_partition { left; from_time; until_time }) );
      ( 1,
        let* from_time, until_time = window_gen deadline in
        let* period = int_range 1 6 in
        return
          (Adversity.Flapping_partition { left; from_time; until_time; period })
      ) ]

(* Partition-loss schedules composed with crash-recovery plans and a
   sprinkle of the generic unclamped adversity: the causal-order QCheck
   property of test_partition.ml runs over exactly this space. *)
let partition_recovery_plan_gen ~n ~deadline =
  let open QCheck.Gen in
  let* base = list_size (int_range 0 2) (spec_gen ~n ~deadline) in
  let* losses =
    list_size (int_range 1 3) (partition_loss_spec_gen ~n ~deadline)
  in
  let* rec_specs =
    list_size (int_range 0 2) (recovery_spec_gen ~n ~deadline)
  in
  return (base @ losses @ rec_specs)

let partition_recovery_plan_arb ~n ~deadline =
  QCheck.make
    ~print:(fun plan -> String.concat "; " (Adversity.to_lines plan))
    ~shrink:(QCheck.Shrink.list ~shrink:spec_shrink)
    (partition_recovery_plan_gen ~n ~deadline)

(* ------------------------------------------------------------------ *)
(* Base delay-model bounds (Net.uniform parameters)                    *)
(* ------------------------------------------------------------------ *)

let delay_bounds_gen =
  let open QCheck.Gen in
  let* min_delay = int_range 1 4 in
  let* span = int_range 0 4 in
  return (min_delay, min_delay + span)

let delay_bounds_arb =
  QCheck.make
    ~print:QCheck.Print.(pair int int)
    ~shrink:QCheck.Shrink.(pair nil nil)
    delay_bounds_gen
