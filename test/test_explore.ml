(* Tests for the adversarial exploration subsystem: adversity plans and
   their stable text form, the engine's link-fault injection, the bounded
   explorer with its greedy shrinker, repro files, and the property-based
   checks the explorer rests on (causal order under arbitrary adversity,
   differential agreement across the three ETOB stacks). *)

open Simulator
open Ec_core
open Explore
module Scenario = Harness.Scenario

(* ------------------------------------------------------------------ *)
(* Adversity: text form                                                *)
(* ------------------------------------------------------------------ *)

let full_plan =
  [ Adversity.Crash { proc = 2; at = 40 };
    Adversity.Partition { left = [ 0; 1 ]; from_time = 10; until_time = 50 };
    Adversity.Delay_spike
      { link = Some (1, 2); from_time = 5; until_time = 25; factor = 4 };
    Adversity.Delay_spike
      { link = None; from_time = 30; until_time = 42; factor = 2 };
    Adversity.Drop { from_time = 20; until_time = 26; pct = 75 };
    Adversity.Duplicate { from_time = 12; until_time = 18; copies = 2 };
    Adversity.Omega_flap { until_time = 60; period = 3 } ]

let test_adversity_roundtrip () =
  match Adversity.of_lines (Adversity.to_lines full_plan) with
  | Error e -> Alcotest.fail ("parse failed: " ^ e)
  | Ok plan ->
    Alcotest.(check bool) "all spec kinds roundtrip" true (plan = full_plan)

let test_adversity_rejects_garbage () =
  (match Adversity.of_line "crash p=zero at=40" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bad int accepted");
  match Adversity.of_line "meteor at=40" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown adversity accepted"

let prop_adversity_roundtrip =
  QCheck.Test.make ~name:"adversity: text form roundtrips" ~count:300
    (Qgen.plan_arb ~n:4 ~deadline:240)
    (fun plan ->
       match Adversity.of_lines (Adversity.to_lines plan) with
       | Ok plan' -> plan' = plan
       | Error _ -> false)

(* Weakening must strictly reduce the plan's reach: never later, never
   stronger — so the shrinker terminates and results stay minimal. *)
let prop_weaken_never_extends_settle =
  QCheck.Test.make ~name:"adversity: weaken never raises settle time" ~count:300
    (Qgen.plan_arb ~n:4 ~deadline:240)
    (fun plan ->
       let settle = Adversity.settle_time ~base_max:3 plan in
       List.for_all
         (fun spec ->
            List.for_all
              (fun weaker ->
                 Adversity.settle_time ~base_max:3 [ weaker ] <= settle)
              (Adversity.weaken spec))
         plan)

(* ------------------------------------------------------------------ *)
(* Link faults in the engine                                           *)
(* ------------------------------------------------------------------ *)

let fault_setup faults =
  { (Scenario.default ~n:3 ~deadline:100) with
    faults;
    delay = Net.uniform ~min:1 ~max:3 }

let fault_inputs = Scenario.spread_posts ~n:3 ~count:6 ~from_time:8 ~every:3

let run_with_faults faults =
  Scenario.run_etob ~inputs:fault_inputs (fault_setup faults)
    Scenario.Algorithm_5

let test_no_faults_instantiates_to_none () =
  (match Net.instantiate_faults Net.no_faults with
   | None -> ()
   | Some _ -> Alcotest.fail "no_faults must instantiate to None");
  match Net.instantiate_faults (Net.compose_faults [ Net.no_faults ]) with
  | None -> ()
  | Some _ -> Alcotest.fail "compose of no_faults must stay no_faults"

let test_drop_window_drops () =
  let clean = run_with_faults Net.no_faults in
  let dropped =
    run_with_faults (Net.drop_window ~from_time:0 ~until_time:40 100)
  in
  Alcotest.(check int) "clean run drops nothing" 0 (Trace.dropped clean);
  Alcotest.(check bool) "faulted run drops" true (Trace.dropped dropped > 0);
  Alcotest.(check bool) "fewer deliveries" true
    (Trace.delivered dropped < Trace.delivered clean)

let test_duplicate_window_duplicates () =
  let clean = run_with_faults Net.no_faults in
  let dup =
    run_with_faults (Net.duplicate_window ~from_time:0 ~until_time:40 2)
  in
  Alcotest.(check bool) "more deliveries than sends" true
    (Trace.delivered dup > Trace.sent dup);
  Alcotest.(check bool) "more deliveries than the clean run" true
    (Trace.delivered dup > Trace.delivered clean)

let test_fault_runs_deterministic () =
  let faults =
    Net.compose_faults
      [ Net.drop_window ~from_time:10 ~until_time:30 50;
        Net.duplicate_window ~from_time:20 ~until_time:45 1 ]
  in
  let show t = Format.asprintf "%a" Trace.pp t in
  Alcotest.(check string) "same config, same trace"
    (show (run_with_faults faults))
    (show (run_with_faults faults))

let test_compose_faults_drop_wins () =
  let always f = Net.fault_of_fn (fun ~src:_ ~dst:_ ~now:_ ~rng:_ -> f) in
  let composed =
    Net.compose_faults [ always (Net.Duplicate 2); always Net.Drop ]
  in
  match Net.instantiate_faults composed with
  | None -> Alcotest.fail "composed model is not no_faults"
  | Some fn ->
    let rng = Rng.create 1 in
    (match Net.fault_of fn ~src:0 ~dst:1 ~now:5 ~rng with
     | Net.Drop -> ()
     | _ -> Alcotest.fail "Drop must win over Duplicate")

(* ------------------------------------------------------------------ *)
(* Explorer                                                            *)
(* ------------------------------------------------------------------ *)

let target mutation = { Explorer.default_target with Explorer.mutation }

let test_explore_faithful_clean () =
  let e = Explorer.explore (target None) ~seed:1 ~budget:60 ~max_adversities:4 () in
  (match e.Explorer.found with
   | None -> ()
   | Some o ->
     Alcotest.failf "faithful Algorithm 5 flagged: %s; plan: %s"
       (String.concat "; " o.Explorer.violations)
       (String.concat "; " (Adversity.to_lines o.Explorer.plan)));
  Alcotest.(check int) "whole budget consumed" 60 e.Explorer.plans_run

let test_explore_parallel_matches_sequential () =
  let mutant = target (Some Etob_omega.Skip_dependency_wait) in
  let run domains =
    Explorer.explore ~domains mutant ~seed:1 ~budget:120 ~max_adversities:4 ()
  in
  match (run 1).Explorer.found, (run 3).Explorer.found with
  | Some a, Some b ->
    Alcotest.(check int) "same engine seed" a.Explorer.seed b.Explorer.seed;
    Alcotest.(check bool) "same plan" true (a.Explorer.plan = b.Explorer.plan)
  | _ -> Alcotest.fail "mutant not found within budget"

(* The mutation-test harness: every seeded single-decision bug of
   Algorithm 5 must be caught within a smoke-sized budget, shrink to at
   most 3 adversities, and leave a repro that replays byte-identically
   after a text roundtrip. *)
let test_explore_finds_all_mutants () =
  List.iter
    (fun m ->
       let name = Etob_omega.mutation_name m in
       let t = target (Some m) in
       let e = Explorer.explore t ~seed:1 ~budget:200 ~max_adversities:4 () in
       match e.Explorer.found with
       | None -> Alcotest.failf "mutant %s not found within 200 plans" name
       | Some o ->
         let shrunk = Explorer.shrink t o in
         Alcotest.(check bool) (name ^ ": still violates") true
           (shrunk.Explorer.violations <> []);
         Alcotest.(check bool) (name ^ ": shrunk to <= 3 adversities") true
           (Adversity.size shrunk.Explorer.plan <= 3);
         let repro = Repro.of_outcome t shrunk in
         (match Repro.of_string (Repro.to_string repro) with
          | Error e -> Alcotest.failf "%s: repro parse: %s" name e
          | Ok reread ->
            (match Repro.replay reread with
             | Ok _ -> ()
             | Error e -> Alcotest.failf "%s: replay: %s" name e)))
    Etob_omega.all_mutations

let test_repro_replay_rejects_wrong_digest () =
  let t = target (Some Etob_omega.Drop_graph_union) in
  let e = Explorer.explore t ~seed:1 ~budget:200 ~max_adversities:4 () in
  match e.Explorer.found with
  | None -> Alcotest.fail "mutant not found"
  | Some o ->
    let repro =
      { (Repro.of_outcome t o) with Repro.digest = String.make 32 '0' }
    in
    (match Repro.replay repro with
     | Error _ -> ()
     | Ok _ -> Alcotest.fail "digest mismatch must fail the replay")

(* ------------------------------------------------------------------ *)
(* Recovery: explorer, repro format, parse errors                      *)
(* ------------------------------------------------------------------ *)

(* The recovery analogue of the mutation-test harness: restarting with
   amnesia must be caught within a smoke-sized budget, shrink small, and
   leave a replayable repro (whose text form carries the recovery
   headers). *)
let test_explore_finds_recovery_mutants () =
  List.iter
    (fun m ->
       let name = Recoverable.mutation_name m in
       let t =
         { Explorer.default_target with
           Explorer.recovery = true;
           rmutation = Some m }
       in
       let e = Explorer.explore t ~seed:1 ~budget:200 ~max_adversities:4 () in
       match e.Explorer.found with
       | None -> Alcotest.failf "mutant %s not found within 200 plans" name
       | Some o ->
         let shrunk = Explorer.shrink t o in
         Alcotest.(check bool) (name ^ ": still violates") true
           (shrunk.Explorer.violations <> []);
         Alcotest.(check bool) (name ^ ": shrunk to <= 3 adversities") true
           (Adversity.size shrunk.Explorer.plan <= 3);
         let repro = Repro.of_outcome t shrunk in
         (match Repro.of_string (Repro.to_string repro) with
          | Error e -> Alcotest.failf "%s: repro parse: %s" name e
          | Ok reread ->
            Alcotest.(check bool) (name ^ ": recovery header survives") true
              reread.Repro.target.Explorer.recovery;
            Alcotest.(check bool) (name ^ ": rmutant header survives") true
              (reread.Repro.target.Explorer.rmutation = Some m);
            (match Repro.replay reread with
             | Ok _ -> ()
             | Error e -> Alcotest.failf "%s: replay: %s" name e)))
    Recoverable.all_mutations

(* A faithful run under a recovery plan must stay clean — the explorer's
   recovery adversities themselves are not violations. *)
let test_explore_faithful_recovery_clean () =
  let t = { Explorer.default_target with Explorer.recovery = true } in
  let e = Explorer.explore t ~seed:1 ~budget:60 ~max_adversities:4 () in
  match e.Explorer.found with
  | None -> ()
  | Some o ->
    Alcotest.failf "faithful recoverable stack flagged: %s; plan: %s"
      (String.concat "; " o.Explorer.violations)
      (String.concat "; " (Adversity.to_lines o.Explorer.plan))

(* Malformed and truncated repro files fail with the offending line
   named, never an escaping exception. *)
let test_repro_parse_errors_name_the_line () =
  let t =
    { Explorer.default_target with
      Explorer.recovery = true;
      rmutation = Some Recoverable.Skip_log_replay }
  in
  let repro =
    { Repro.target = t;
      seed = 7;
      plan =
        [ Adversity.Crash_recover { proc = 1; at = 40; recover_at = 80 };
          Adversity.Disk_fault { proc = 1; kind = Persist.Store.Torn_tail } ];
      digest = String.make 32 'a';
      violations = [ "distinct-broadcasts: something" ] }
  in
  let text = Repro.to_string repro in
  (* The well-formed file parses back to the same value. *)
  (match Repro.of_string text with
   | Ok r ->
     Alcotest.(check bool) "roundtrip" true
       (r.Repro.plan = repro.Repro.plan && r.Repro.seed = 7
        && r.Repro.target.Explorer.recovery
        && r.Repro.target.Explorer.rmutation
           = Some Recoverable.Skip_log_replay)
   | Error e -> Alcotest.failf "well-formed file rejected: %s" e);
  let expect_error label mangled fragment =
    match Repro.of_string mangled with
    | Ok _ -> Alcotest.failf "%s: accepted" label
    | Error msg ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        m = 0 || go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S names the problem (%S)" label msg fragment)
        true (contains msg fragment)
  in
  expect_error "empty file" "" "empty file";
  expect_error "wrong header" "not a repro\nimpl alg5\n" "line 1";
  let lines = String.split_on_char '\n' text in
  let mangle i f =
    String.concat "\n" (List.mapi (fun j l -> if j = i then f l else l) lines)
  in
  (* Line 4 is "n 4": break its integer and expect the line number. *)
  expect_error "bad integer" (mangle 3 (fun _ -> "n four")) "line 4";
  expect_error "unknown header" (mangle 6 (fun _ -> "meteor 9")) "line 7";
  (* Claim more plan lines than the file holds. *)
  expect_error "truncated plan"
    (String.concat "\n"
       (List.map (fun l -> if l = "plan 2" then "plan 5" else l) lines))
    "plan section truncated";
  (* Drop the end line. *)
  expect_error "missing end"
    (String.concat "\n" (List.filter (fun l -> l <> "end") lines))
    "missing end";
  (* Damage one adversity line inside the plan section. *)
  expect_error "bad adversity"
    (String.concat "\n"
       (List.map
          (fun l ->
             if String.length l >= 8 && String.sub l 0 8 = "crashrec"
             then "crashrec p=1 at=80 until=40"
             else l)
          lines))
    "line"

(* ------------------------------------------------------------------ *)
(* Safety under arbitrary adversity (property-based)                   *)
(* ------------------------------------------------------------------ *)

(* Causal order is a safety claim of Algorithm 5 ("TOB-Causal-Order holds
   at all times"): it may not depend on fairness, so the plans here are
   unclamped — drops that never heal, flapping to the horizon.  Liveness
   properties (validity, convergence) legitimately fail under such plans
   and are not asserted. *)
let prop_causal_order_under_any_plan =
  QCheck.Test.make ~name:"alg5: causal order under arbitrary adversity"
    ~count:60
    QCheck.(
      pair (Qgen.plan_arb ~n:4 ~deadline:240) (pair small_nat Qgen.delay_bounds_arb))
    (fun (plan, (seed, (base_min, base_max))) ->
       let t = { (target None) with Explorer.base_min; base_max } in
       let o = Explorer.run_plan t ~seed plan in
       match o.Explorer.report with
       | None -> false (* the run raised *)
       | Some r ->
         r.Properties.causal_order.Properties.ok
         && r.Properties.no_creation.Properties.ok
         && r.Properties.no_duplication.Properties.ok)

(* The recoverable stack's safety net: under arbitrary downtime windows
   and disk faults (on top of the usual unclamped adversity), the
   faithful stack must never reorder causally, forge, duplicate — or
   reuse a sequence number, which is exactly what the durable log is for.
   Liveness is legitimately lost under such plans and is not asserted. *)
let prop_recovery_safety_under_any_plan =
  QCheck.Test.make
    ~name:"recoverable alg5: safety under arbitrary windows and disk faults"
    ~count:40
    QCheck.(
      pair
        (Qgen.recovery_plan_arb ~n:4 ~deadline:240)
        (pair small_nat Qgen.delay_bounds_arb))
    (fun (plan, (seed, (base_min, base_max))) ->
       let t =
         { (target None) with Explorer.recovery = true; base_min; base_max }
       in
       let o = Explorer.run_plan t ~seed plan in
       match o.Explorer.report with
       | None -> false (* the run raised *)
       | Some r ->
         r.Properties.causal_order.Properties.ok
         && r.Properties.no_creation.Properties.ok
         && r.Properties.no_duplication.Properties.ok
         && r.Properties.distinct_broadcasts.Properties.ok)

(* Random failure patterns stay inside their declared contract. *)
let prop_random_pattern_within_contract =
  QCheck.Test.make ~name:"failures: crash lists build admitted patterns"
    ~count:300
    (Qgen.crash_list_arb ~n:5 ~max_faulty:4 ~horizon:100)
    (fun crashes ->
       let f = Qgen.pattern_of_crashes ~n:5 crashes in
       Failures.admits (Failures.t_resilient 4) f
       && Failures.is_correct f 0
       && List.for_all
            (fun (p, _) -> Failures.is_faulty f p)
            crashes)

(* ------------------------------------------------------------------ *)
(* Differential: the three ETOB stacks agree                           *)
(* ------------------------------------------------------------------ *)

let impls =
  [ Scenario.Algorithm_5; Scenario.Paxos_baseline; Scenario.Algorithm_1_over_4 ]

let final_run impl ~seed =
  let t = { Explorer.default_target with Explorer.impl } in
  let setup = Explorer.base_setup t ~seed in
  let trace = Scenario.run_etob ~inputs:(Explorer.inputs t) setup impl in
  Properties.etob_run_of_trace setup.Scenario.pattern trace

let sorted_ids run proc =
  List.sort compare (List.map App_msg.id (Properties.final_d run proc))

(* Within one stack, every pair of processes orders the common messages
   the same way; across stacks, the delivered sets coincide (the total
   orders themselves may differ — any linearization is legal). *)
let prop_impls_agree_differentially =
  QCheck.Test.make ~name:"etob stacks: orders agree, delivered sets equal"
    ~count:10 QCheck.small_nat
    (fun seed ->
       let runs = List.map (fun impl -> final_run impl ~seed) impls in
       let n = Explorer.default_target.Explorer.n in
       List.for_all
         (fun run ->
            List.for_all
              (fun p ->
                 List.for_all
                   (fun q ->
                      Properties.orders_agree (Properties.final_d run p)
                        (Properties.final_d run q))
                   (List.init n Fun.id))
              (List.init n Fun.id))
         runs
       &&
       match List.map (fun run -> sorted_ids run 0) runs with
       | [] -> false
       | ids :: rest -> List.for_all (fun other -> other = ids) rest)

let test_impls_clean_on_empty_plan () =
  List.iter
    (fun impl ->
       let t = { Explorer.default_target with Explorer.impl } in
       let o = Explorer.run_plan t ~seed:1 [] in
       Alcotest.(check (list string))
         (Explorer.impl_name impl ^ ": clean on the empty plan") []
         o.Explorer.violations)
    impls

(* ------------------------------------------------------------------ *)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "explore"
    [ ("adversity",
       [ Alcotest.test_case "roundtrip all kinds" `Quick test_adversity_roundtrip;
         Alcotest.test_case "rejects garbage" `Quick test_adversity_rejects_garbage ]
       @ qc [ prop_adversity_roundtrip; prop_weaken_never_extends_settle ]);
      ("faults",
       [ Alcotest.test_case "no_faults is free" `Quick
           test_no_faults_instantiates_to_none;
         Alcotest.test_case "drop window" `Quick test_drop_window_drops;
         Alcotest.test_case "duplicate window" `Quick
           test_duplicate_window_duplicates;
         Alcotest.test_case "deterministic" `Quick test_fault_runs_deterministic;
         Alcotest.test_case "compose: drop wins" `Quick
           test_compose_faults_drop_wins ]);
      ("explorer",
       [ Alcotest.test_case "faithful clean" `Quick test_explore_faithful_clean;
         Alcotest.test_case "parallel matches sequential" `Quick
           test_explore_parallel_matches_sequential;
         Alcotest.test_case "finds all mutants" `Quick
           test_explore_finds_all_mutants;
         Alcotest.test_case "replay rejects wrong digest" `Quick
           test_repro_replay_rejects_wrong_digest ]);
      ("recovery",
       [ Alcotest.test_case "finds recovery mutants" `Quick
           test_explore_finds_recovery_mutants;
         Alcotest.test_case "faithful recovery clean" `Quick
           test_explore_faithful_recovery_clean;
         Alcotest.test_case "repro parse errors name the line" `Quick
           test_repro_parse_errors_name_the_line ]
       @ qc [ prop_recovery_safety_under_any_plan ]);
      ("properties",
       qc
         [ prop_causal_order_under_any_plan;
           prop_random_pattern_within_contract ]);
      ("differential",
       [ Alcotest.test_case "clean on empty plan" `Quick
           test_impls_clean_on_empty_plan ]
       @ qc [ prop_impls_agree_differentially ]);
    ]
